// Benchmark harness: one benchmark per paper table/figure (the E1–E12
// index of DESIGN.md) plus the ablation benches DESIGN.md calls out.
// Run with: go test -bench=. -benchmem
package repro

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/contenttree"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/encoder"
	"repro/internal/experiments"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/ocpn"
	"repro/internal/petri"
	"repro/internal/player"
	"repro/internal/publish"
	"repro/internal/relay"
	"repro/internal/session"
	"repro/internal/streaming"
	"repro/internal/vclock"
)

func mustProfile(b *testing.B, name string) codec.Profile {
	b.Helper()
	p, err := codec.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func benchLecture(b *testing.B, profileName string, dur time.Duration, slides int) *capture.Lecture {
	b.Helper()
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "bench", Duration: dur, Profile: mustProfile(b, profileName),
		SlideCount: slides, AnnotationEvery: dur / 3, Seed: 2002,
	})
	if err != nil {
		b.Fatal(err)
	}
	return lec
}

// BenchmarkE1ContentTree regenerates Fig 1/2: building and validating the
// paper's multiple-level content tree.
func BenchmarkE1ContentTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tree := contenttree.New()
		steps := []struct {
			id    string
			level int
		}{{"S0", 0}, {"S1", 1}, {"S2", 2}, {"S3", 1}, {"S4", 2}}
		for _, s := range steps {
			if err := tree.Attach(s.id, 20*time.Second, s.level); err != nil {
				b.Fatal(err)
			}
		}
		if err := tree.Validate(); err != nil {
			b.Fatal(err)
		}
		if tree.PresentationTime(2) != 100*time.Second {
			b.Fatal("paper value mismatch")
		}
	}
}

// BenchmarkE2E3E4TreeOps measures the §2.3/Fig 3/Fig 4 operations at a
// realistic tree size.
func BenchmarkE2E3E4TreeOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tree := contenttree.New()
		if err := tree.Attach("root", time.Second, 0); err != nil {
			b.Fatal(err)
		}
		for j := 1; j <= 100; j++ {
			level := 1 + (j+1)%2 // alternate 1,2,1,2,… starting at level 1
			if err := tree.Attach(fmt.Sprintf("n%d", j), time.Second, level); err != nil {
				b.Fatal(err)
			}
		}
		if err := tree.Insert("ins", time.Second, "n50"); err != nil {
			b.Fatal(err)
		}
		// n50 is now a leaf child of "ins": delete it (Fig 4 operation).
		if err := tree.Delete("n50"); err != nil {
			b.Fatal(err)
		}
		_ = tree.LevelNodes()
	}
}

// BenchmarkE5Publish regenerates Fig 5: the full publish workflow (raw
// recording on disk → synchronized container).
func BenchmarkE5Publish(b *testing.B) {
	lec := benchLecture(b, "modem-56k", 10*time.Second, 4)
	dir := b.TempDir()
	paths, err := publish.WriteRawLecture(lec, dir)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := fmt.Sprintf("%s/out%d.asf", dir, i)
		if _, err := publish.Publish(publish.Request{
			VideoPath: paths.VideoPath, SlidesDir: paths.SlidesDir, OutputPath: out,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6ContentTreeBuild regenerates Fig 6: content tree construction
// from a published slide deck.
func BenchmarkE6ContentTreeBuild(b *testing.B) {
	lec := benchLecture(b, "modem-56k", 60*time.Second, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := publish.BuildContentTree(lec.Title, lec.Slides, lec.Duration, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7EndToEnd regenerates Fig 7: encoder → simulated network →
// client, per link class.
func BenchmarkE7EndToEnd(b *testing.B) {
	links := map[string]netsim.Link{
		"lan":   netsim.LinkLAN,
		"dsl":   netsim.LinkDSL,
		"modem": netsim.LinkModem56k,
		"wifi":  netsim.LinkLossyWiFi,
	}
	for name, link := range links {
		b.Run(name, func(b *testing.B) {
			cfg := core.E2EConfig{
				Lecture: capture.LectureConfig{
					Title: "bench", Duration: 10 * time.Second,
					Profile: mustProfile(b, "modem-56k"), SlideCount: 4, Seed: 2002,
				},
				Link:         link,
				StartupDelay: time.Second,
				LeadTime:     time.Second,
			}
			var lastSkew time.Duration
			for i := 0; i < b.N; i++ {
				res, err := core.RunEndToEnd(cfg)
				if err != nil {
					b.Fatal(err)
				}
				lastSkew = res.MaxSkew
			}
			b.ReportMetric(float64(lastSkew.Microseconds())/1000, "maxskew-ms")
		})
	}
}

// BenchmarkE8Profiles regenerates the profile ladder table: encoding cost
// and output size per bandwidth profile.
func BenchmarkE8Profiles(b *testing.B) {
	for _, p := range codec.Ladder() {
		b.Run(p.Name, func(b *testing.B) {
			var bytesOut int64
			for i := 0; i < b.N; i++ {
				lec, err := capture.NewLecture(capture.LectureConfig{
					Title: "bench", Duration: 5 * time.Second, Profile: p,
					SlideCount: 2, Seed: 2002,
				})
				if err != nil {
					b.Fatal(err)
				}
				var buf bytes.Buffer
				if _, err := encoder.EncodeLecture(lec, encoder.Config{}, &buf); err != nil {
					b.Fatal(err)
				}
				bytesOut = int64(buf.Len())
			}
			b.ReportMetric(float64(bytesOut)/1024, "KiB-out")
			b.ReportMetric(p.Quality(), "quality-dB")
		})
	}
}

// BenchmarkE9Models regenerates the model comparison: building and
// simulating each synchronization model under the interaction scenario.
func BenchmarkE9Models(b *testing.B) {
	lec := benchLecture(b, "modem-56k", 60*time.Second, 6)
	pres := lec.ToPresentation()
	sc := ocpn.Scenario{
		Interactions: []ocpn.Interaction{
			{Kind: ocpn.Pause, At: 15 * time.Second},
			{Kind: ocpn.Resume, At: 25 * time.Second},
		},
		Arrivals: []ocpn.Arrival{{SegmentID: "video03", At: 24 * time.Second}},
	}
	for _, kind := range []ocpn.ModelKind{ocpn.OCPN, ocpn.XOCPN, ocpn.Extended} {
		b.Run(kind.String(), func(b *testing.B) {
			var mis int
			for i := 0; i < b.N; i++ {
				model, err := ocpn.Build(kind, pres)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := model.Simulate(sc)
				if err != nil {
					b.Fatal(err)
				}
				mis = rep.MisScheduled
			}
			b.ReportMetric(float64(mis), "mis-scheduled")
		})
	}
}

// BenchmarkE10Floor regenerates the floor-control experiment: full
// request/grant/release rotations across contending users.
func BenchmarkE10Floor(b *testing.B) {
	for _, users := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clk := vclock.NewVirtual()
				floor := session.NewFloor(clk)
				for u := 0; u < users; u++ {
					if _, err := floor.Request(fmt.Sprintf("u%d", u)); err != nil {
						b.Fatal(err)
					}
				}
				for u := 0; u < users; u++ {
					clk.Advance(time.Second)
					if err := floor.Release(floor.Holder()); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkE11Monotone regenerates the Abstractor property check.
func BenchmarkE11Monotone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE11(50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12Scalability regenerates the live fan-out scalability series.
func BenchmarkE12Scalability(b *testing.B) {
	lec := benchLecture(b, "modem-56k", 5*time.Second, 2)
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{Live: true}, &buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := asf.NewReader(bytes.NewReader(data))
				h, err := r.ReadHeader()
				if err != nil {
					b.Fatal(err)
				}
				var pkts []asf.Packet
				for {
					p, err := r.ReadPacket()
					if err != nil {
						break
					}
					pkts = append(pkts, p)
				}
				row, err := experiments.FanOut(h, pkts, clients)
				if err != nil {
					b.Fatal(err)
				}
				if row.Delivered == 0 {
					b.Fatal("nothing delivered")
				}
			}
		})
	}
}

// BenchmarkAblationJitterBuffer compares player jitter-buffer depths on
// the same stream (DESIGN.md ablation #1).
func BenchmarkAblationJitterBuffer(b *testing.B) {
	lec := benchLecture(b, "modem-56k", 10*time.Second, 4)
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{}, &buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	for _, depth := range []int{0, 1, 32, 256} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pl := player.New(player.Options{JitterBufferDepth: depth})
				if _, err := pl.Play(bytes.NewReader(data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPacing compares send-time pacing against
// as-fast-as-possible transmission through a bandwidth-limited link
// (DESIGN.md ablation #2). The measured effect is sender-queue build-up:
// paced transmission keeps each packet's queueing delay bounded by the
// burstiness of one send instant, while ASAP transmission queues the whole
// file, so the tail packet waits for the entire serialization.
func BenchmarkAblationPacing(b *testing.B) {
	lec := benchLecture(b, "modem-56k", 10*time.Second, 4)
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{LeadTime: time.Second}, &buf); err != nil {
		b.Fatal(err)
	}
	packets := decodePackets(b, buf.Bytes())

	run := func(b *testing.B, paced bool) {
		var worst time.Duration
		for i := 0; i < b.N; i++ {
			// A link with ~2.5× headroom over the stream rate: pacing keeps
			// the queue empty, ASAP transmission serializes the whole file
			// up front and the tail arrives late.
			link := netsim.Link{BitsPerSecond: 128_000, Latency: 30 * time.Millisecond, Seed: 1}
			link.Reset()
			worst = 0
			for _, p := range packets {
				sendAt := p.SendAt
				if !paced {
					sendAt = 0
				}
				d := link.Transmit(sendAt, len(p.Payload))
				if d.Lost {
					continue
				}
				// Queueing delay: how long the packet waited behind
				// earlier traffic before its own serialization began.
				if q := d.DepartedAt - d.SentAt; q > worst {
					worst = q
				}
			}
		}
		b.ReportMetric(float64(worst.Microseconds())/1000, "max-queue-ms")
	}
	b.Run("paced", func(b *testing.B) { run(b, true) })
	b.Run("unpaced", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationScriptPlacement compares header-table scripts against
// in-band script packets (DESIGN.md ablation #3).
func BenchmarkAblationScriptPlacement(b *testing.B) {
	lec := benchLecture(b, "modem-56k", 10*time.Second, 4)
	var stored, live bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{}, &stored); err != nil {
		b.Fatal(err)
	}
	if _, err := encoder.EncodeLecture(lec, encoder.Config{Live: true}, &live); err != nil {
		b.Fatal(err)
	}
	cases := map[string][]byte{"header": stored.Bytes(), "inband": live.Bytes()}
	for name, data := range cases {
		b.Run(name, func(b *testing.B) {
			var slides int
			for i := 0; i < b.N; i++ {
				m, err := player.New(player.Options{}).Play(bytes.NewReader(data))
				if err != nil {
					b.Fatal(err)
				}
				slides = m.SlidesShown
			}
			b.ReportMetric(float64(slides), "slides")
		})
	}
}

// BenchmarkPetriFire measures raw Petri-net firing throughput, the engine
// under every synchronization model.
func BenchmarkPetriFire(b *testing.B) {
	n := petri.NewNet("bench")
	if err := n.AddPlace(petri.Place{ID: "p1"}); err != nil {
		b.Fatal(err)
	}
	if err := n.AddPlace(petri.Place{ID: "p2"}); err != nil {
		b.Fatal(err)
	}
	if err := n.AddTransition(petri.Transition{ID: "t12"}); err != nil {
		b.Fatal(err)
	}
	if err := n.AddTransition(petri.Transition{ID: "t21"}); err != nil {
		b.Fatal(err)
	}
	if err := n.AddInput("p1", "t12", 1); err != nil {
		b.Fatal(err)
	}
	if err := n.AddOutput("t12", "p2", 1); err != nil {
		b.Fatal(err)
	}
	if err := n.AddInput("p2", "t21", 1); err != nil {
		b.Fatal(err)
	}
	if err := n.AddOutput("t21", "p1", 1); err != nil {
		b.Fatal(err)
	}
	m := petri.Marking{"p1": 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, err := n.Fire(m, "t12")
		if err != nil {
			b.Fatal(err)
		}
		m, err = n.Fire(next, "t21")
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkASFRoundTrip measures container encode+decode throughput.
func BenchmarkASFRoundTrip(b *testing.B) {
	payload := bytes.Repeat([]byte{0xAB}, 1400)
	pkt := asf.Packet{
		Stream: 1, Kind: 1, Flags: asf.PacketKeyframe,
		PTS: time.Second, Dur: 40 * time.Millisecond, SendAt: time.Second,
		Payload: payload,
	}
	data, err := asf.EncodePacket(pkt)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asf.EncodePacket(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func decodePackets(b *testing.B, data []byte) []asf.Packet {
	b.Helper()
	r := asf.NewReader(bytes.NewReader(data))
	if _, err := r.ReadHeader(); err != nil {
		b.Fatal(err)
	}
	var pkts []asf.Packet
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		pkts = append(pkts, p)
	}
	return pkts
}

// BenchmarkRelayFanOut measures the edge tier's fan-out throughput: one
// origin channel feeding an edge over a real HTTP subscription, the edge
// re-fanning-out to N local subscribers. The reported drop rate is the
// subscriber flow-control policy kicking in under burst load.
func BenchmarkRelayFanOut(b *testing.B) {
	lec := benchLecture(b, "modem-56k", 5*time.Second, 2)
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{Live: true}, &buf); err != nil {
		b.Fatal(err)
	}
	h, packets, _, err := asf.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			origin := streaming.NewServer(nil)
			originCh, err := origin.CreateChannel("bench", h)
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(origin.Handler())
			defer ts.Close()
			edge := relay.NewEdge(ts.URL, streaming.NewServer(nil))
			if err := edge.RelayChannel("bench"); err != nil {
				b.Fatal(err)
			}
			edgeCh, ok := edge.Server.Channel("bench")
			if !ok {
				b.Fatal("relayed channel missing")
			}
			for i := 0; i < clients; i++ {
				sub, err := edgeCh.Subscribe()
				if err != nil {
					b.Fatal(err)
				}
				defer sub.Close()
				go func(s *streaming.Subscriber) {
					for range s.C {
					}
				}(sub)
			}
			b.SetBytes(int64(len(packets[0].Payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := originCh.Publish(packets[i%len(packets)]); err != nil {
					b.Fatal(err)
				}
			}
			// Wait for the relay pipe to drain; origin-side drops (the
			// edge subscription falling behind) never reach the edge.
			deadline := time.Now().Add(30 * time.Second)
			for edgeCh.Published()+originCh.Dropped() < int64(b.N) {
				if !time.Now().Before(deadline) {
					b.Fatalf("relay drained %d of %d packets", edgeCh.Published(), b.N)
				}
				time.Sleep(100 * time.Microsecond)
			}
			b.StopTimer()
			relayed := edgeCh.Published()
			b.ReportMetric(float64(relayed)/float64(b.N), "relayed-frac")
			b.ReportMetric(float64(edgeCh.Dropped())/float64(b.N), "edge-drop-frac")
			originCh.Close()
		})
	}
}

// BenchmarkE13Session measures interactive-session evaluation cost.
func BenchmarkE13Session(b *testing.B) {
	lec := benchLecture(b, "modem-56k", 10*time.Second, 4)
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{}, &buf); err != nil {
		b.Fatal(err)
	}
	header, packets, ix, err := asf.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	controls := []player.Control{
		{Kind: player.CtlPause, At: 3 * time.Second},
		{Kind: player.CtlResume, At: 5 * time.Second},
		{Kind: player.CtlSeek, At: 8 * time.Second, Target: 2 * time.Second},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := player.RunSession(header, packets, ix, controls); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE15Admission measures reservation throughput under contention.
func BenchmarkE15Admission(b *testing.B) {
	adm := streaming.NewAdmission(1 << 40)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			token, err := adm.Reserve(48_000)
			if err != nil {
				b.Error(err)
				return
			}
			adm.Release(token)
		}
	})
}

// BenchmarkE14Compose measures Allen-relation constraint solving.
func BenchmarkE14Compose(b *testing.B) {
	s := time.Second
	segs := []media.Segment{
		{ID: "video", Kind: media.KindVideo, Duration: 30 * s},
		{ID: "audio", Kind: media.KindAudio, Duration: 30 * s},
		{ID: "slide1", Kind: media.KindImage, Duration: 10 * s},
		{ID: "slide2", Kind: media.KindImage, Duration: 10 * s},
		{ID: "slide3", Kind: media.KindImage, Duration: 10 * s},
	}
	constraints := []ocpn.Constraint{
		{Rel: ocpn.RelEquals, A: "video", B: "audio"},
		{Rel: ocpn.RelStarts, A: "slide1", B: "video"},
		{Rel: ocpn.RelMeets, A: "slide1", B: "slide2"},
		{Rel: ocpn.RelMeets, A: "slide2", B: "slide3"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ocpn.Compose("bench", segs, constraints); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE16Plan measures per-audience presentation planning.
func BenchmarkE16Plan(b *testing.B) {
	lec := benchLecture(b, "dsl-300k", 60*time.Second, 9)
	tree, err := publish.BuildContentTree(lec.Title, lec.Slides, lec.Duration, 0)
	if err != nil {
		b.Fatal(err)
	}
	aud := dynamic.Audience{AvailableTime: 30 * time.Second, BandwidthBps: 768_000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dynamic.PlanFor(tree, lec.Slides, lec.Duration, aud); err != nil {
			b.Fatal(err)
		}
	}
}

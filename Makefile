GO ?= go

RACE_PKGS := ./internal/streaming ./internal/session ./internal/core ./internal/relay ./internal/metrics ./internal/netsim ./internal/loadgen

.PHONY: all build test vet fmt-check race bench bench-smoke bench-cluster

all: build test vet fmt-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt must report no files; print the offenders when it does.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Seconds-long cluster load benchmark; CI runs it on every push so the
# swarm harness (internal/loadgen) stays runnable end to end.
bench-smoke:
	$(GO) run ./cmd/lodbench -scenario smoke -clients 60 -edges 2 -out BENCH_smoke.json

# The benchmark of record (BENCHMARKS.md); append its numbers to
# EXPERIMENTS.md when they move.
bench-cluster:
	$(GO) run ./cmd/lodbench -scenario mixed -clients 1000 -edges 3 -out BENCH_cluster.json

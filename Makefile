GO ?= go

RACE_PKGS := ./...

.PHONY: all build test vet fmt-check lint fuzz-smoke race bench bench-smoke bench-cluster bench-churn

all: build test vet fmt-check lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt must report no files; print the offenders when it does.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The repo-native static-analysis suite (internal/lint, driven by
# cmd/lodlint): wire-contract literals stay in internal/proto,
# virtual-clock packages take time from vclock.Clock, request paths stay
# cancellable, and internal handlers answer errors with the proto.Error
# JSON body. Successor to the retired api-check grep — it walks the AST,
# so Sprintf/concat compositions are caught and comments/tests are not.
lint:
	$(GO) run ./cmd/lodlint ./...

# Short seeded fuzz passes over the internal/proto parsers. Minutes-long
# fuzzing is for `go test -fuzz=... ./internal/proto` by hand; this is
# the CI smoke tier.
fuzz-smoke:
	$(GO) test ./internal/proto -run='^$$' -fuzz=FuzzStreamNameRoundTrip -fuzztime=5s
	$(GO) test ./internal/proto -run='^$$' -fuzz=FuzzParseStart -fuzztime=5s
	$(GO) test ./internal/proto -run='^$$' -fuzz=FuzzParseBandwidth -fuzztime=5s
	$(GO) test ./internal/proto -run='^$$' -fuzz=FuzzSplitExclude -fuzztime=5s

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Seconds-long cluster load benchmarks; CI runs them on every push so
# the swarm harness (internal/loadgen) stays runnable end to end. The
# churn case kills and restarts an edge mid-run, so the failover path
# (client retry/resume + registry failure reports) is exercised on
# every push, not just in the committed record.
bench-smoke:
	$(GO) run ./cmd/lodbench -scenario smoke -clients 60 -edges 2 -out BENCH_smoke.json
	$(GO) run ./cmd/lodbench -scenario 'churn?kills=1&firstkill=500ms&restartafter=1s&duration=2s&rate=40' \
		-clients 20 -edges 2 -out BENCH_churn_smoke.json

# The benchmarks of record (BENCHMARKS.md); append their numbers to
# EXPERIMENTS.md when they move.
bench-cluster:
	$(GO) run ./cmd/lodbench -scenario mixed -clients 1000 -edges 3 -out BENCH_cluster.json

bench-churn:
	$(GO) run ./cmd/lodbench -scenario churn -clients 400 -edges 3 -out BENCH_churn.json

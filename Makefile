GO ?= go

RACE_PKGS := ./...

.PHONY: all build test vet fmt-check lint fuzz-smoke race bench bench-smoke bench-profile bench-cluster bench-churn bench-fanout bench-scale bench-scale-smoke bench-registrychurn bench-registrychurn-smoke bench-flashcrowd bench-flashcrowd-smoke bench-zipf

all: build test vet fmt-check lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt must report no files; print the offenders when it does.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The repo-native static-analysis suite (internal/lint, driven by
# cmd/lodlint): wire-contract literals stay in internal/proto,
# virtual-clock packages take time from vclock.Clock, request paths stay
# cancellable, and internal handlers answer errors with the proto.Error
# JSON body. Successor to the retired api-check grep — it walks the AST,
# so Sprintf/concat compositions are caught and comments/tests are not.
lint:
	$(GO) run ./cmd/lodlint ./...

# Short seeded fuzz passes over the internal/proto parsers. Minutes-long
# fuzzing is for `go test -fuzz=... ./internal/proto` by hand; this is
# the CI smoke tier.
fuzz-smoke:
	$(GO) test ./internal/proto -run='^$$' -fuzz=FuzzStreamNameRoundTrip -fuzztime=5s
	$(GO) test ./internal/proto -run='^$$' -fuzz=FuzzParseStart -fuzztime=5s
	$(GO) test ./internal/proto -run='^$$' -fuzz=FuzzParseBandwidth -fuzztime=5s
	$(GO) test ./internal/proto -run='^$$' -fuzz=FuzzSplitExclude -fuzztime=5s
	$(GO) test ./internal/catalog -run='^$$' -fuzz=FuzzStateRoundTrip -fuzztime=5s

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Seconds-long cluster load benchmarks; CI runs them on every push so
# the swarm harness (internal/loadgen) stays runnable end to end. The
# churn case kills and restarts an edge mid-run, so the failover path
# (client retry/resume + registry failure reports) is exercised on
# every push, not just in the committed record.
bench-smoke:
	$(GO) run ./cmd/lodbench -scenario smoke -clients 60 -edges 2 -out BENCH_smoke.json
	$(GO) run ./cmd/lodbench -scenario 'churn?kills=1&firstkill=500ms&restartafter=1s&duration=2s&rate=40' \
		-clients 20 -edges 2 -out BENCH_churn_smoke.json

# A small fan-out run with CPU/heap profiles captured and the perf
# block asserted nonzero: keeps the profiling plumbing (-cpuprofile,
# -memprofile, perf measurement in loadgen.Run) working on every push.
# The profiles land next to the record for `go tool pprof`.
bench-profile:
	$(GO) run ./cmd/lodbench -scenario fanout -clients 200 -edges 1 \
		-cpuprofile fanout_cpu.pprof -memprofile fanout_mem.pprof \
		-assert-perf -out BENCH_fanout_smoke.json

# The benchmarks of record (BENCHMARKS.md); append their numbers to
# EXPERIMENTS.md when they move.
bench-cluster:
	$(GO) run ./cmd/lodbench -scenario mixed -clients 1000 -edges 3 -out BENCH_cluster.json

bench-churn:
	$(GO) run ./cmd/lodbench -scenario churn -clients 400 -edges 3 -out BENCH_churn.json

# Registry kill/restart mid-run: the control plane goes down for 1.2s,
# comes back restored from its durable catalog snapshot, and must serve
# redirects from restored membership before any edge re-heartbeats
# (cluster.snapshotRedirects in the record). Gated on zero session
# failures — clients ride the outage out on their failover budget.
bench-registrychurn:
	$(GO) run ./cmd/lodbench -scenario registrychurn -clients 400 -edges 3 -out BENCH_registrychurn.json

# The CI tier: same kill/restart cycle, seconds-long population.
bench-registrychurn-smoke:
	$(GO) run ./cmd/lodbench -scenario 'registrychurn?rate=60&firstkill=1s&restartafter=800ms&duration=2s' \
		-clients 60 -edges 2 -out BENCH_registrychurn_smoke.json

# The committed before/after pair is BENCH_fanout_before.json (pre
# zero-copy serving path, saturated at 2500 clients) against this run.
# GOMAXPROCS=1 makes the number a per-core serving capacity.
bench-fanout:
	GOMAXPROCS=1 $(GO) run ./cmd/lodbench -scenario fanout -clients 7500 -edges 1 -out BENCH_fanout.json

# "10× the cluster": 10k mixed-workload clients over a 16-edge fleet,
# the population split across 8 shard drivers. The record's
# cluster.redirectsPerSec and shards block are the headline numbers.
bench-scale:
	$(GO) run ./cmd/lodbench -scenario scale -clients 10000 -edges 16 -shards 8 -out BENCH_scale.json

# The CI tier of the scale scenario: small enough for seconds, but the
# same 16-edge fleet and sharded drivers, gated on zero session
# failures (lodbench exits nonzero on any) and on startup p99 staying
# under a generous regression bound.
bench-scale-smoke:
	$(GO) run ./cmd/lodbench -scenario 'scale?rate=400' -clients 400 -edges 16 -shards 4 \
		-assert-startup-p99 2s -out BENCH_scale_smoke.json

# The committed before/after pair for the popularity-aware edge cache:
# the same flash crowd once with the LRU baseline and once with
# W-TinyLFU admission + miss coalescing. cache.originBytes and
# cache.perAsset maxEdgePulls are the headline (BENCHMARKS.md).
bench-flashcrowd:
	$(GO) run ./cmd/lodbench -scenario 'flashcrowd?cachepolicy=lru' -clients 1200 -edges 2 -out BENCH_flashcrowd_lru.json
	$(GO) run ./cmd/lodbench -scenario flashcrowd -clients 1200 -edges 2 -out BENCH_flashcrowd.json

# The CI tier: the whole crowd lands inside ~50ms (rate=3000), so the
# hot asset's first pull is still in flight when the next demands
# arrive — the miss-coalescing case. Gated on zero session failures
# (lodbench exits nonzero on any) and on coalescing + admission holding
# duplicate origin pulls of the hot asset to at most one per edge.
bench-flashcrowd-smoke:
	$(GO) run ./cmd/lodbench -scenario 'flashcrowd?rate=3000' -clients 150 -edges 2 \
		-assert-hot-pulls 1 -out BENCH_flashcrowd_smoke.json

# Zipf-popular VOD over a tight cache: the cache.hitRate pair is the
# frequency-gated-admission headline.
bench-zipf:
	$(GO) run ./cmd/lodbench -scenario 'zipf?cachepolicy=lru' -clients 800 -edges 2 -out BENCH_zipf_lru.json
	$(GO) run ./cmd/lodbench -scenario zipf -clients 800 -edges 2 -out BENCH_zipf.json

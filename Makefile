GO ?= go

RACE_PKGS := ./internal/streaming ./internal/session ./internal/core ./internal/relay ./internal/metrics ./internal/netsim ./internal/loadgen ./internal/asf ./internal/player ./internal/client ./internal/proto

.PHONY: all build test vet fmt-check api-check race bench bench-smoke bench-cluster bench-churn

all: build test vet fmt-check api-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt must report no files; print the offenders when it does.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# The wire contract (route prefixes, the /v1 version prefix, the
# failover exclude header) lives in internal/proto and nowhere else:
# fail the build if a raw route literal or the exclude header name
# appears in any other non-test Go file. Tests are exempt — pinning the
# wire contract with literals from the outside is exactly their job.
api-check:
	@bad="$$(grep -rnE '"(/v1)?/(vod|live|group|fetch|registry)|X-Lod-Exclude' \
		--include='*.go' cmd internal examples *.go \
		| grep -v '^internal/proto/' | grep -v '_test\.go:')"; \
	if [ -n "$$bad" ]; then \
		echo "api-check: wire-contract literals outside internal/proto (use the proto constants):"; \
		echo "$$bad"; exit 1; \
	fi

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Seconds-long cluster load benchmarks; CI runs them on every push so
# the swarm harness (internal/loadgen) stays runnable end to end. The
# churn case kills and restarts an edge mid-run, so the failover path
# (client retry/resume + registry failure reports) is exercised on
# every push, not just in the committed record.
bench-smoke:
	$(GO) run ./cmd/lodbench -scenario smoke -clients 60 -edges 2 -out BENCH_smoke.json
	$(GO) run ./cmd/lodbench -scenario 'churn?kills=1&firstkill=500ms&restartafter=1s&duration=2s&rate=40' \
		-clients 20 -edges 2 -out BENCH_churn_smoke.json

# The benchmarks of record (BENCHMARKS.md); append their numbers to
# EXPERIMENTS.md when they move.
bench-cluster:
	$(GO) run ./cmd/lodbench -scenario mixed -clients 1000 -edges 3 -out BENCH_cluster.json

bench-churn:
	$(GO) run ./cmd/lodbench -scenario churn -clients 400 -edges 3 -out BENCH_churn.json

GO ?= go

RACE_PKGS := ./internal/streaming ./internal/session ./internal/core ./internal/relay ./internal/metrics

.PHONY: all build test vet fmt-check race bench

all: build test vet fmt-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt must report no files; print the offenders when it does.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/client"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/encoder"
	"repro/internal/metrics"
	"repro/internal/player"
	"repro/internal/proto"
	"repro/internal/publish"
	"repro/internal/relay"
	"repro/internal/session"
	"repro/internal/streaming"
	"repro/internal/testutil"
)

// mountMetrics serves h with the registry's GET /metrics and GET /status
// endpoints beside it, exactly as cmd/lodserver wires every role.
func mountMetrics(h http.Handler, reg *metrics.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", h)
	reg.Expose(mux)
	return mux
}

// scrapeMetrics fetches base+"/metrics" and parses the Prometheus text
// exposition into series name (with labels) → value.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s/metrics: %s", base, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestFullDistributedPipeline is the end-to-end integration test: record a
// lecture, publish it, serve it over a real HTTP socket at two bitrates,
// replay it (full and seeked), run the live classroom with floor control
// over the REST API, and cross-check every artifact.
func TestFullDistributedPipeline(t *testing.T) {
	workDir := t.TempDir()
	sys := core.NewSystem(nil)
	sys.Server.Pacing = false // wall-clock pacing is covered elsewhere

	// --- Record and publish. ---
	profile, err := codec.ByName("modem-56k")
	if err != nil {
		t.Fatal(err)
	}
	lec, err := sys.RecordLecture(capture.LectureConfig{
		Title: "Integration lecture", Duration: 12 * time.Second, Profile: profile,
		SlideCount: 4, AnnotationEvery: 5 * time.Second, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	pubRes, err := sys.PublishLecture(lec, workDir, "integration")
	if err != nil {
		t.Fatal(err)
	}
	if pubRes.Slides != 4 {
		t.Fatalf("published %d slides", pubRes.Slides)
	}

	// --- A second, richer variant forms a multi-rate group. ---
	rich, err := codec.ByName("dsl-300k")
	if err != nil {
		t.Fatal(err)
	}
	richLec, err := sys.RecordLecture(capture.LectureConfig{
		Title: "Integration lecture", Duration: 12 * time.Second, Profile: rich,
		SlideCount: 4, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	var richBuf bytes.Buffer
	if _, err := encoder.EncodeLecture(richLec, encoder.Config{}, &richBuf); err != nil {
		t.Fatal(err)
	}
	richAsset, err := sys.Server.RegisterAsset("integration-rich", asf.NewReader(bytes.NewReader(richBuf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	group, err := sys.Server.CreateRateGroup("integration-group")
	if err != nil {
		t.Fatal(err)
	}
	baseAsset, _ := sys.Server.Asset("integration")
	group.AddVariant(baseAsset)
	group.AddVariant(richAsset)

	// --- Serve over a real socket. ---
	ts := httptest.NewServer(sys.Server.Handler())
	defer ts.Close()

	// Full VOD replay over HTTP.
	m, err := player.New(player.Options{}).PlayURL(context.Background(), ts.URL+"/vod/integration")
	if err != nil {
		t.Fatal(err)
	}
	if m.SlidesShown != 4 || m.BrokenFrames != 0 {
		t.Fatalf("VOD replay: slides=%d broken=%d", m.SlidesShown, m.BrokenFrames)
	}

	// Seeked replay delivers strictly fewer packets but still works.
	seeked, err := player.New(player.Options{}).PlayURL(context.Background(), ts.URL+"/vod/integration?start=6s")
	if err != nil {
		t.Fatal(err)
	}
	if seeked.BytesRead >= m.BytesRead {
		t.Fatalf("seeked replay read %d bytes, full read %d", seeked.BytesRead, m.BytesRead)
	}

	// Multi-rate selection: modem bandwidth gets the lean variant.
	lean, err := player.New(player.Options{}).PlayURL(context.Background(), ts.URL+"/group/integration-group?bw=60000")
	if err != nil {
		t.Fatal(err)
	}
	fat, err := player.New(player.Options{}).PlayURL(context.Background(), ts.URL+"/group/integration-group?bw=5000000")
	if err != nil {
		t.Fatal(err)
	}
	if lean.BytesRead >= fat.BytesRead {
		t.Fatalf("rate selection broken: lean %d bytes, fat %d bytes", lean.BytesRead, fat.BytesRead)
	}

	// --- Live broadcast to concurrent students. ---
	liveLec, err := sys.RecordLecture(capture.LectureConfig{
		Title: "Live integration", Duration: 3 * time.Second, Profile: profile,
		SlideCount: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.BroadcastLecture(liveLec, "live-int")
	if err != nil {
		t.Fatal(err)
	}
	const students = 4
	var wg sync.WaitGroup
	results := make([]*player.Metrics, students)
	errs := make([]error, students)
	for i := 0; i < students; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id], errs[id] = player.New(player.Options{}).PlayURL(context.Background(), ts.URL+"/live/live-int")
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for b.Channel.ClientCount() < students && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-b.Done():
	case <-time.After(30 * time.Second):
		_ = b.Stop()
		t.Fatal("broadcast did not finish")
	}
	wg.Wait()
	for i := 0; i < students; i++ {
		if errs[i] != nil {
			t.Fatalf("student %d: %v", i, errs[i])
		}
		if results[i].SlidesShown != 2 {
			t.Fatalf("student %d saw %d slides", i, results[i].SlidesShown)
		}
	}

	// --- Classroom REST API with floor control. ---
	class := session.NewClassroom("integration", nil)
	api := httptest.NewServer(session.NewAPI(class).Handler())
	defer api.Close()
	httpPost := func(path string, params url.Values) int {
		resp, err := api.Client().Post(api.URL+path+"?"+params.Encode(), "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := httpPost("/class/join", url.Values{"user": {"prof"}, "role": {"teacher"}}); code != 200 {
		t.Fatalf("teacher join: %d", code)
	}
	for i := 0; i < students; i++ {
		if code := httpPost("/class/join", url.Values{"user": {fmt.Sprintf("s%d", i)}}); code != 200 {
			t.Fatalf("student join: %d", code)
		}
	}
	if code := httpPost("/class/annotate", url.Values{"user": {"prof"}, "text": {"welcome"}}); code != 204 {
		t.Fatalf("teacher annotate: %d", code)
	}
	if code := httpPost("/class/floor/request", url.Values{"user": {"s0"}}); code != 200 {
		t.Fatalf("floor request: %d", code)
	}
	if code := httpPost("/class/annotate", url.Values{"user": {"s0"}, "text": {"question"}}); code != 204 {
		t.Fatalf("holder annotate: %d", code)
	}
	if code := httpPost("/class/floor/release", url.Values{"user": {"s0"}}); code != 200 {
		t.Fatalf("floor release: %d", code)
	}
	resp, err := api.Client().Get(api.URL + "/class/annotations?since=0")
	if err != nil {
		t.Fatal(err)
	}
	var anns []map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&anns); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(anns) != 2 {
		t.Fatalf("annotations = %d, want 2", len(anns))
	}
	if err := class.Floor.VerifyAgainstModel(); err != nil {
		t.Fatalf("floor log deviates from Petri model: %v", err)
	}

	// --- The content tree of the published lecture matches the recording. ---
	tree, err := publish.BuildContentTree(lec.Title, lec.Slides, lec.Duration, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.PresentationTime(tree.HighestLevel()) != lec.Duration {
		t.Fatal("content tree does not cover the lecture")
	}
	// Server statistics reflect the sessions we ran.
	st := sys.Server.Stats()
	if st.VODSessions < 4 || st.LiveSessions != students {
		t.Fatalf("server stats = %+v", st)
	}
}

// TestRelayCluster is the distributed deployment end-to-end: one origin,
// two edge nodes pulling through from it, and a cluster registry that
// 307-redirects clients to the less-loaded edge. Both a mirrored VOD
// asset and a relayed live channel are played through the cluster.
func TestRelayCluster(t *testing.T) {
	// --- Origin: one published asset and one live channel. ---
	profile, err := codec.ByName("modem-56k")
	if err != nil {
		t.Fatal(err)
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "Cluster lecture", Duration: 6 * time.Second, Profile: profile,
		SlideCount: 3, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	var vodBuf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{}, &vodBuf); err != nil {
		t.Fatal(err)
	}
	origin := streaming.NewServer(nil)
	origin.Pacing = false
	if _, err := origin.RegisterAsset("cluster-lec", asf.NewReader(bytes.NewReader(vodBuf.Bytes()))); err != nil {
		t.Fatal(err)
	}
	originTS := httptest.NewServer(mountMetrics(origin.Handler(), origin.Metrics()))
	defer originTS.Close()

	// --- Two edges and the registry. ---
	newEdge := func() (*relay.Edge, *httptest.Server) {
		srv := streaming.NewServer(nil)
		srv.Pacing = false
		edge := relay.NewEdge(originTS.URL, srv)
		ts := httptest.NewServer(mountMetrics(edge.Handler(), srv.Metrics()))
		t.Cleanup(ts.Close)
		return edge, ts
	}
	edgeA, edgeATS := newEdge()
	edgeB, edgeBTS := newEdge()

	registry := relay.NewRegistry(nil)
	regTS := httptest.NewServer(mountMetrics(registry.Handler(), registry.Metrics()))
	defer regTS.Close()
	if err := relay.RegisterWith(nil, regTS.URL, relay.NodeInfo{ID: "edge-a", URL: edgeATS.URL}); err != nil {
		t.Fatal(err)
	}
	if err := relay.RegisterWith(nil, regTS.URL, relay.NodeInfo{ID: "edge-b", URL: edgeBTS.URL}); err != nil {
		t.Fatal(err)
	}

	// --- VOD through the cluster, via the session SDK: the session asks
	// the registry, follows the /v1 307, and the chosen edge mirrors the
	// asset on first demand. ---
	sdk := client.New(regTS.URL)
	playVOD := func() *player.Metrics {
		t.Helper()
		sess, err := sdk.Open(context.Background(), client.Spec{Kind: client.VOD, Name: "cluster-lec"})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sess.Play()
		if err != nil {
			t.Fatal(err)
		}
		if st := sess.Stats(); st.Edge == "" {
			t.Fatalf("session stats = %+v, want a serving edge", st)
		}
		return m
	}
	direct, err := player.New(player.Options{}).PlayURL(context.Background(), originTS.URL+"/vod/cluster-lec")
	if err != nil {
		t.Fatal(err)
	}
	viaCluster := playVOD()
	if viaCluster.SlidesShown != 3 || viaCluster.BrokenFrames != 0 {
		t.Fatalf("cluster VOD replay: %+v", viaCluster)
	}
	if viaCluster.BytesRead != direct.BytesRead {
		t.Fatalf("cluster replay read %d bytes, direct %d", viaCluster.BytesRead, direct.BytesRead)
	}
	// The consistent-hash ring pins the asset to one edge, so a second
	// play lands on the same edge and is served from its mirror — the
	// asset is mirrored once, not once per edge.
	playVOD()
	type clusterNode struct {
		id   string
		edge *relay.Edge
		ts   *httptest.Server
	}
	pair := []clusterNode{{"edge-a", edgeA, edgeATS}, {"edge-b", edgeB, edgeBTS}}
	prefInfo, err := registry.PickFor(proto.StreamPath(proto.StreamVOD, "cluster-lec"))
	if err != nil {
		t.Fatal(err)
	}
	pref, other := pair[0], pair[1]
	if prefInfo.ID == pair[1].id {
		pref, other = pair[1], pair[0]
	}
	if _, ok := pref.edge.Server.Asset("cluster-lec"); !ok {
		t.Fatalf("preferred edge %s never mirrored the asset", pref.id)
	}
	if _, ok := other.edge.Server.Asset("cluster-lec"); ok {
		t.Fatal("asset mirrored onto both edges despite ring affinity")
	}
	if got := origin.Stats().MirrorFetches; got != 1 {
		t.Fatalf("origin mirror fetches = %d, want the preferred edge's single pull", got)
	}

	// The preferred edge is reported dead: the next play falls back to
	// the other edge, which mirrors on first demand — failover costs one
	// extra origin pull, not a reshuffle of every asset.
	if !registry.ReportFailure(pref.id) {
		t.Fatalf("failure report for %s ignored", pref.id)
	}
	playVOD()
	if _, ok := other.edge.Server.Asset("cluster-lec"); !ok {
		t.Fatalf("fallback edge %s never mirrored the asset", other.id)
	}
	if got := origin.Stats().MirrorFetches; got != 2 {
		t.Fatalf("origin mirror fetches = %d, want one per edge", got)
	}
	if got := origin.Stats().VODSessions; got != 1 {
		t.Fatalf("origin VOD sessions = %d, want only the direct play", got)
	}
	// The preferred edge revives on its next heartbeat; affinity snaps
	// back and a third play is served from its existing mirror.
	if _, err := relay.Heartbeat(nil, regTS.URL, pref.id, relay.SnapshotStats(pref.edge.Server)); err != nil {
		t.Fatal(err)
	}
	playVOD()
	if got := origin.Stats().MirrorFetches; got != 2 {
		t.Fatalf("origin mirror fetches = %d after revival, want the mirrors to be reused", got)
	}

	// --- Both API forms redirect to the ring's preferred edge, each
	// preserving the version the client spoke; naming that edge's host
	// in the failover header diverts to the other. ---
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	for _, path := range []string{"/vod/cluster-lec", "/v1/vod/cluster-lec"} {
		resp, err := noFollow.Get(regTS.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTemporaryRedirect {
			t.Fatalf("registry status for %s = %d, want 307", path, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != pref.ts.URL+path {
			t.Fatalf("redirect went to %q, want the preferred edge %q", loc, pref.ts.URL+path)
		}
		req, err := http.NewRequest(http.MethodGet, regTS.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(proto.ExcludeHeader, pref.ts.URL)
		resp, err = noFollow.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if loc := resp.Header.Get("Location"); loc != other.ts.URL+path {
			t.Fatalf("excluded redirect went to %q, want the other edge %q", loc, other.ts.URL+path)
		}
	}

	// --- Live through the cluster: each edge subscribes to the origin
	// once and re-fans-out to its own clients. ---
	liveLec, err := capture.NewLecture(capture.LectureConfig{
		Title: "Cluster live", Duration: 3 * time.Second, Profile: profile,
		SlideCount: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var liveBuf bytes.Buffer
	if _, err := encoder.EncodeLecture(liveLec, encoder.Config{Live: true}, &liveBuf); err != nil {
		t.Fatal(err)
	}
	h, packets, _, err := asf.ReadAll(bytes.NewReader(liveBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := origin.CreateChannel("cluster-live", h)
	if err != nil {
		t.Fatal(err)
	}

	// One student pinned to each edge; the edges relay a single origin
	// subscription apiece.
	const students = 2
	var wg sync.WaitGroup
	results := make([]*player.Metrics, students)
	errs := make([]error, students)
	for i, base := range []string{edgeATS.URL, edgeBTS.URL} {
		wg.Add(1)
		go func(id int, url string) {
			defer wg.Done()
			// Pinned to an edge (not through the registry), on the /v1 form.
			results[id], errs[id] = player.New(player.Options{}).PlayURL(context.Background(),
				url+proto.Versioned(proto.StreamPath(proto.StreamLive, "cluster-live")))
		}(i, base)
	}
	deadline := time.Now().Add(10 * time.Second)
	for ch.ClientCount() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := ch.ClientCount(); got != 2 {
		t.Fatalf("origin live subscribers = %d, want one per edge", got)
	}
	// Wait for each student to attach to its edge channel so nobody
	// misses the first slide.
	for _, e := range []*relay.Edge{edgeA, edgeB} {
		for time.Now().Before(deadline) {
			if ec, ok := e.Server.Channel("cluster-live"); ok && ec.ClientCount() >= 1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	for _, p := range packets {
		if err := ch.Publish(p); err != nil {
			t.Fatal(err)
		}
	}
	ch.Close()
	wg.Wait()
	for i := 0; i < students; i++ {
		if errs[i] != nil {
			t.Fatalf("student %d: %v", i, errs[i])
		}
		if results[i].SlidesShown != 2 || results[i].BrokenFrames != 0 {
			t.Fatalf("student %d metrics: %+v", i, results[i])
		}
	}
	if got := origin.Stats().LiveSessions; got != 2 {
		t.Fatalf("origin live sessions = %d, want one per edge", got)
	}
	for name, e := range map[string]*relay.Edge{"A": edgeA, "B": edgeB} {
		st := e.Server.Stats()
		if st.LiveSessions != 1 {
			t.Fatalf("edge %s served %d live sessions, want 1", name, st.LiveSessions)
		}
	}

	// --- Observability: every role reports the traffic above on its
	// GET /metrics endpoint. ---
	ma := scrapeMetrics(t, edgeATS.URL)
	if ma["lod_edge_cache_hits_total"] < 1 {
		t.Fatalf("edge A cache hits = %v, want >= 1 (third cluster play)", ma["lod_edge_cache_hits_total"])
	}
	if ma["lod_edge_cache_misses_total"] < 1 {
		t.Fatalf("edge A cache misses = %v, want >= 1 (first mirror)", ma["lod_edge_cache_misses_total"])
	}
	if ma["lod_bytes_sent_total"] <= 0 {
		t.Fatal("edge A reports no bytes sent")
	}
	if ma["lod_edge_origin_bytes_total"] <= 0 {
		t.Fatal("edge A reports no origin bytes pulled")
	}
	if ma[`lod_sessions_started_total{kind="live"}`] != 1 {
		t.Fatalf("edge A live sessions metric = %v, want 1", ma[`lod_sessions_started_total{kind="live"}`])
	}
	if mb := scrapeMetrics(t, edgeBTS.URL); mb["lod_edge_cache_misses_total"] < 1 {
		t.Fatalf("edge B cache misses = %v, want >= 1", mb["lod_edge_cache_misses_total"])
	}
	mo := scrapeMetrics(t, originTS.URL)
	if mo["lod_mirror_fetches_total"] != 2 {
		t.Fatalf("origin mirror fetch metric = %v, want one per edge", mo["lod_mirror_fetches_total"])
	}
	if mo["lod_bytes_sent_total"] <= 0 {
		t.Fatal("origin reports no bytes sent")
	}
	mr := scrapeMetrics(t, regTS.URL)
	if mr["lod_registry_redirects_total"] < 3 {
		t.Fatalf("registry redirects = %v, want >= 3", mr["lod_registry_redirects_total"])
	}
	if mr["lod_registry_nodes_alive"] != 2 {
		t.Fatalf("registry alive nodes = %v, want 2", mr["lod_registry_nodes_alive"])
	}

	// --- Per-node health through the SDK control plane: both edges
	// alive, with fresh heartbeats. ---
	nodes, err := sdk.Nodes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Fatalf("node listing = %+v, want 2 entries", nodes)
	}
	for _, n := range nodes {
		if n.Health != proto.HealthAlive || !n.Alive {
			t.Fatalf("node %s health = %q, want alive", n.ID, n.Health)
		}
	}
}

// TestClusterEdgeCacheBounded runs an origin+edge cluster whose edge
// cache budget holds only two of the origin's three assets: concurrent
// cluster traffic must all play intact while the LRU evicts over-budget
// mirrors, and the eviction counter must show on GET /metrics.
func TestClusterEdgeCacheBounded(t *testing.T) {
	profile, err := codec.ByName("modem-56k")
	if err != nil {
		t.Fatal(err)
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "Bounded lecture", Duration: 4 * time.Second, Profile: profile,
		SlideCount: 2, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{}, &buf); err != nil {
		t.Fatal(err)
	}
	origin := streaming.NewServer(nil)
	origin.Pacing = false
	const assets = 3
	for i := 0; i < assets; i++ {
		name := fmt.Sprintf("lec%d", i)
		if _, err := origin.RegisterAsset(name, asf.NewReader(bytes.NewReader(buf.Bytes()))); err != nil {
			t.Fatal(err)
		}
	}
	originTS := httptest.NewServer(origin.Handler())
	defer originTS.Close()
	asset, _ := origin.Asset("lec0")

	edgeSrv := streaming.NewServer(nil)
	edgeSrv.Pacing = false
	edge := relay.NewEdge(originTS.URL, edgeSrv)
	edge.CacheBytes = 2 * asset.Bytes() // below the 3-asset total: must evict
	edgeTS := httptest.NewServer(mountMetrics(edge.Handler(), edgeSrv.Metrics()))
	defer edgeTS.Close()

	direct, err := player.New(player.Options{}).PlayURL(context.Background(), originTS.URL+"/vod/lec0")
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent churn across all three assets: mirrors, hits, and
	// evictions interleave with live sessions. Pinning must keep every
	// in-flight session intact.
	const players = 9
	var wg sync.WaitGroup
	errs := make([]error, players)
	reads := make([]int64, players)
	for i := 0; i < players; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m, err := player.New(player.Options{}).PlayURL(context.Background(), edgeTS.URL+fmt.Sprintf("/vod/lec%d", id%assets))
			if err != nil {
				errs[id] = err
				return
			}
			reads[id] = m.BytesRead
		}(i)
	}
	wg.Wait()
	for i := 0; i < players; i++ {
		if errs[i] != nil {
			t.Fatalf("player %d failed under cache pressure: %v", i, errs[i])
		}
		if reads[i] != direct.BytesRead {
			t.Fatalf("player %d read %d bytes, direct read %d", i, reads[i], direct.BytesRead)
		}
	}

	// A deterministic sweep with no concurrent pins: demanding all three
	// assets one after another forces at least one eviction, and the
	// final residency fits the budget again.
	for _, name := range []string{"lec0", "lec1", "lec2", "lec0"} {
		if _, err := player.New(player.Options{}).PlayURL(context.Background(), edgeTS.URL+"/vod/"+name); err != nil {
			t.Fatalf("sequential replay of %s failed: %v", name, err)
		}
	}
	m := scrapeMetrics(t, edgeTS.URL)
	if m["lod_edge_cache_evictions_total"] < 1 {
		t.Fatalf("evictions = %v, want >= 1 with %d bytes for %d assets",
			m["lod_edge_cache_evictions_total"], edge.CacheBytes, assets)
	}
	if got := m["lod_edge_cache_bytes"]; got > float64(edge.CacheBytes) {
		t.Fatalf("resident cache bytes = %v, over the %d budget", got, edge.CacheBytes)
	}
	if m["lod_edge_cache_misses_total"] < assets {
		t.Fatalf("misses = %v, want >= %d", m["lod_edge_cache_misses_total"], assets)
	}
	if m["lod_edge_cache_hits_total"] < 1 {
		t.Fatalf("hits = %v, want >= 1", m["lod_edge_cache_hits_total"])
	}
}

// TestCatalogHotSwap drives the durable control plane end to end over
// real sockets: a running origin/edge/registry cluster with live
// heartbeat loops takes a brand-new publish, a republish of an asset an
// edge has already mirrored, and an unpublish while a read is in
// flight — each change reaching the serving tier through the catalog
// version carried on heartbeat answers, with no restarts anywhere.
func TestCatalogHotSwap(t *testing.T) {
	profile, err := codec.ByName("modem-56k")
	if err != nil {
		t.Fatal(err)
	}
	encode := func(title string, dur time.Duration) []byte {
		t.Helper()
		lec, err := capture.NewLecture(capture.LectureConfig{
			Title: title, Duration: dur, Profile: profile, SlideCount: 2, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := encoder.EncodeLecture(lec, encoder.Config{}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	origin := streaming.NewServer(nil)
	origin.Pacing = false
	gen1 := encode("swap gen 1", 4*time.Second)
	if _, err := origin.RegisterAsset("swap-lec", asf.NewReader(bytes.NewReader(gen1))); err != nil {
		t.Fatal(err)
	}
	originTS := httptest.NewServer(origin.Handler())
	defer originTS.Close()

	registry := relay.NewRegistry(nil)
	defer registry.Close()
	regTS := httptest.NewServer(registry.Handler())
	defer regTS.Close()
	if _, err := registry.PublishAsset("swap-lec"); err != nil {
		t.Fatal(err)
	}

	// Two edges on the full production wiring: heartbeat loops whose
	// answers carry the catalog version, re-syncing on every advance.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type node struct {
		edge *relay.Edge
		ts   *httptest.Server
	}
	var nodes []node
	for _, id := range []string{"hot-a", "hot-b"} {
		srv := streaming.NewServer(nil)
		srv.Pacing = false
		edge := relay.NewEdge(originTS.URL, srv)
		ts := httptest.NewServer(edge.Handler())
		defer ts.Close()
		nodes = append(nodes, node{edge, ts})
		hb := &relay.Heartbeats{
			Registry: regTS.URL,
			Info:     relay.NodeInfo{ID: id, URL: ts.URL},
			Snapshot: func() relay.NodeStats { return relay.SnapshotStats(srv) },
			Interval: 10 * time.Millisecond,
			OnCatalog: func(uint64) {
				if err := edge.SyncCatalogFrom(nil, regTS.URL); err != nil {
					t.Logf("catalog sync: %v", err)
				}
			},
		}
		go func() { _ = hb.Run(ctx) }()
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return len(registry.Nodes()) == 2
	}, "edges never registered")

	sdk := client.New(regTS.URL)
	play := func(name string) (*player.Metrics, error) {
		sess, err := sdk.Open(context.Background(), client.Spec{Kind: client.VOD, Name: name})
		if err != nil {
			return nil, err
		}
		return sess.Play()
	}
	directBytes := func(name string) int64 {
		t.Helper()
		m, err := player.New(player.Options{}).PlayURL(context.Background(), originTS.URL+"/vod/"+name)
		if err != nil {
			t.Fatal(err)
		}
		return m.BytesRead
	}

	m, err := play("swap-lec")
	if err != nil {
		t.Fatal(err)
	}
	if want := directBytes("swap-lec"); m.BytesRead != want {
		t.Fatalf("cluster play read %d bytes, origin serves %d", m.BytesRead, want)
	}
	serving := -1
	for i, n := range nodes {
		if _, ok := n.edge.Server.Asset("swap-lec"); ok {
			serving = i
		}
	}
	if serving < 0 {
		t.Fatal("no edge mirrored the asset")
	}

	// --- A brand-new asset published live: origin push, then the
	// catalog announcement. New sessions can open it immediately — the
	// edge mirror is pulled on first demand. ---
	hot := encode("hot lecture", 2*time.Second)
	if err := relay.PublishAsset(nil, originTS.URL, "hot-lec", bytes.NewReader(hot)); err != nil {
		t.Fatal(err)
	}
	if _, err := relay.PublishCatalog(nil, regTS.URL, proto.PublishMsg{
		Asset: &proto.CatalogAsset{Name: "hot-lec"},
	}); err != nil {
		t.Fatal(err)
	}
	if m, err = play("hot-lec"); err != nil {
		t.Fatal(err)
	}
	if want := directBytes("hot-lec"); m.BytesRead != want {
		t.Fatalf("hot-published play read %d bytes, want %d", m.BytesRead, want)
	}

	// --- Republish the mirrored asset with new bytes: the rev bump
	// rides the next heartbeat and invalidates the stale mirror, so the
	// next play re-pulls gen 2. ---
	gen2 := encode("swap gen 2", 2*time.Second)
	if err := relay.PublishAsset(nil, originTS.URL, "swap-lec", bytes.NewReader(gen2)); err != nil {
		t.Fatal(err)
	}
	if _, err := relay.PublishCatalog(nil, regTS.URL, proto.PublishMsg{
		Asset: &proto.CatalogAsset{Name: "swap-lec"},
	}); err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		_, ok := nodes[serving].edge.Server.Asset("swap-lec")
		return !ok
	}, "stale mirror never invalidated after republish")
	if m, err = play("swap-lec"); err != nil {
		t.Fatal(err)
	}
	if want := directBytes("swap-lec"); m.BytesRead != want {
		t.Fatalf("post-republish play read %d bytes, want gen 2's %d", m.BytesRead, want)
	}

	// --- Unpublish while a read is in flight: the open stream finishes
	// on its own reference; once the catalog change propagates, new
	// opens fail cluster-wide. ---
	servingTS := nodes[serving].ts
	resp, err := http.Get(servingTS.URL + "/vod/swap-lec")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	inflight := asf.NewReader(resp.Body)
	if _, err := inflight.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	if err := relay.UnpublishAsset(nil, originTS.URL, "swap-lec"); err != nil {
		t.Fatal(err)
	}
	if _, err := relay.UnpublishCatalog(nil, regTS.URL, proto.UnpublishMsg{Asset: "swap-lec"}); err != nil {
		t.Fatal(err)
	}
	packets := 0
	for {
		if _, err := inflight.ReadPacket(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("in-flight stream broken by unpublish: %v", err)
		}
		packets++
	}
	if packets == 0 {
		t.Fatal("in-flight stream delivered nothing")
	}
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		for _, n := range nodes {
			if _, ok := n.edge.Server.Asset("swap-lec"); ok {
				return false
			}
		}
		return true
	}, "mirrors survived the unpublish")
	if _, err := play("swap-lec"); err == nil {
		t.Fatal("unpublished asset still playable through the cluster")
	}
}

// Package capture provides simulated live media sources: the "attached
// devices (video camera or microphone)" the paper's configuration module
// lets the user encode from (§2.5), and a synthetic lecture generator that
// stands in for the MPEG-4 lecture video plus slide directory the
// publishing workflow of §3 consumes.
//
// All sources are deterministic given their seed, so experiments that
// re-run a capture reproduce byte-identical streams.
package capture

import (
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/media"
)

// Device identifies a simulated capture device.
type Device int

// Devices.
const (
	DeviceCamera Device = iota + 1
	DeviceMicrophone
)

// String implements fmt.Stringer.
func (d Device) String() string {
	switch d {
	case DeviceCamera:
		return "camera"
	case DeviceMicrophone:
		return "microphone"
	default:
		return fmt.Sprintf("device(%d)", int(d))
	}
}

// Source produces timed samples up to a duration. Implementations are not
// safe for concurrent use.
type Source interface {
	// Next returns the next sample, or false when the source is exhausted.
	Next() (media.Sample, bool)
	// Kind is the medium the source produces.
	Kind() media.Kind
}

// CameraSource simulates a camera by driving the simulated video encoder.
// It emits exactly duration/frameInterval frames so captures of the same
// nominal length always hold the same frame count regardless of how the
// interval rounds.
type CameraSource struct {
	enc       *codec.VideoEncoder
	remaining int
}

var _ Source = (*CameraSource)(nil)

// NewCamera creates a camera capture lasting the given duration, encoded
// with the profile.
func NewCamera(p codec.Profile, duration time.Duration, seed int64) (*CameraSource, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("capture: non-positive duration %v", duration)
	}
	enc, err := codec.NewVideoEncoder(p, seed)
	if err != nil {
		return nil, err
	}
	return &CameraSource{enc: enc, remaining: int(duration / p.FrameInterval())}, nil
}

// Next implements Source.
func (c *CameraSource) Next() (media.Sample, bool) {
	if c.remaining <= 0 {
		return media.Sample{}, false
	}
	c.remaining--
	return c.enc.NextFrame(), true
}

// Kind implements Source.
func (c *CameraSource) Kind() media.Kind { return media.KindVideo }

// MicrophoneSource simulates a microphone via the simulated audio encoder.
type MicrophoneSource struct {
	enc       *codec.AudioEncoder
	remaining int
}

var _ Source = (*MicrophoneSource)(nil)

// NewMicrophone creates a microphone capture lasting the given duration.
func NewMicrophone(p codec.Profile, duration time.Duration) (*MicrophoneSource, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("capture: non-positive duration %v", duration)
	}
	enc, err := codec.NewAudioEncoder(p)
	if err != nil {
		return nil, err
	}
	return &MicrophoneSource{enc: enc, remaining: int(duration / p.AudioBlock)}, nil
}

// Next implements Source.
func (m *MicrophoneSource) Next() (media.Sample, bool) {
	if m.remaining <= 0 {
		return media.Sample{}, false
	}
	m.remaining--
	return m.enc.NextBlock(), true
}

// Kind implements Source.
func (m *MicrophoneSource) Kind() media.Kind { return media.KindAudio }

// Slide is one presentation slide with its display time.
type Slide struct {
	// Name is the slide file name, e.g. "slide03.png".
	Name string
	// At is the presentation time at which the slide is shown.
	At time.Duration
	// Image is the (synthetic) slide image payload.
	Image []byte
}

// Annotation is a timed annotation/comment the teacher makes while
// lecturing (§ abstract: "all the annotations/comments").
type Annotation struct {
	At   time.Duration
	Text string
}

// Lecture is a complete synthetic lecture: the recorded AV plus the slide
// deck and annotations the publishing manager synchronizes.
type Lecture struct {
	Title       string
	Duration    time.Duration
	Profile     codec.Profile
	Video       []media.Sample
	Audio       []media.Sample
	Slides      []Slide
	Annotations []Annotation
}

// LectureConfig parameterizes the synthetic lecture generator.
type LectureConfig struct {
	Title    string
	Duration time.Duration
	Profile  codec.Profile
	// SlideCount is the number of slides, spread evenly across the run.
	SlideCount int
	// AnnotationEvery inserts an annotation at this interval; zero
	// disables annotations.
	AnnotationEvery time.Duration
	// SlideBytes is the synthetic image size per slide.
	SlideBytes int
	Seed       int64
}

// NewLecture generates the synthetic lecture.
func NewLecture(cfg LectureConfig) (*Lecture, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("capture: lecture duration %v", cfg.Duration)
	}
	if cfg.SlideCount < 1 {
		return nil, fmt.Errorf("capture: lecture needs at least one slide, got %d", cfg.SlideCount)
	}
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if cfg.SlideBytes <= 0 {
		cfg.SlideBytes = 24 << 10
	}
	if cfg.Title == "" {
		cfg.Title = "Untitled lecture"
	}

	cam, err := NewCamera(cfg.Profile, cfg.Duration, cfg.Seed)
	if err != nil {
		return nil, err
	}
	mic, err := NewMicrophone(cfg.Profile, cfg.Duration)
	if err != nil {
		return nil, err
	}
	lec := &Lecture{Title: cfg.Title, Duration: cfg.Duration, Profile: cfg.Profile}
	for {
		s, ok := cam.Next()
		if !ok {
			break
		}
		lec.Video = append(lec.Video, s)
	}
	for {
		s, ok := mic.Next()
		if !ok {
			break
		}
		lec.Audio = append(lec.Audio, s)
	}

	interval := cfg.Duration / time.Duration(cfg.SlideCount)
	for i := 0; i < cfg.SlideCount; i++ {
		img := make([]byte, cfg.SlideBytes)
		for j := range img {
			img[j] = byte(int(cfg.Seed) + i*131 + j*7)
		}
		lec.Slides = append(lec.Slides, Slide{
			Name:  fmt.Sprintf("slide%02d.png", i+1),
			At:    time.Duration(i) * interval,
			Image: img,
		})
	}
	if cfg.AnnotationEvery > 0 {
		idx := 1
		for at := cfg.AnnotationEvery; at < cfg.Duration; at += cfg.AnnotationEvery {
			lec.Annotations = append(lec.Annotations, Annotation{
				At:   at,
				Text: fmt.Sprintf("annotation %d: see slide notes", idx),
			})
			idx++
		}
	}
	return lec, nil
}

// SlideAt returns the slide visible at the given presentation time.
func (l *Lecture) SlideAt(at time.Duration) (Slide, bool) {
	var cur Slide
	found := false
	for _, s := range l.Slides {
		if s.At <= at {
			cur = s
			found = true
		}
	}
	return cur, found
}

// ToPresentation converts the lecture into the flat segment model used by
// the content tree and synchronization builders: one video segment per
// slide interval (so slide flips are synchronization points) plus image
// segments for the slides.
func (l *Lecture) ToPresentation() media.Presentation {
	p := media.Presentation{Title: l.Title}
	for i, s := range l.Slides {
		end := l.Duration
		if i+1 < len(l.Slides) {
			end = l.Slides[i+1].At
		}
		p.Segments = append(p.Segments, media.Segment{
			ID:       fmt.Sprintf("video%02d", i+1),
			Kind:     media.KindVideo,
			Stream:   media.StreamVideo,
			Start:    s.At,
			Duration: end - s.At,
			QoS: media.QoS{
				BitsPerSecond: l.Profile.VideoBitsPerSecond,
				MaxSkew:       80 * time.Millisecond,
				MaxJitter:     40 * time.Millisecond,
			},
		})
		p.Segments = append(p.Segments, media.Segment{
			ID:       fmt.Sprintf("slide%02d", i+1),
			Kind:     media.KindImage,
			Stream:   media.StreamImage,
			Start:    s.At,
			Duration: end - s.At,
			Payload:  []byte(s.Name),
			QoS:      media.QoS{MaxSkew: 500 * time.Millisecond},
		})
	}
	return p
}

package capture

import (
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/media"
)

func testProfile(t *testing.T) codec.Profile {
	t.Helper()
	p, err := codec.ByName("dsl-300k")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDeviceString(t *testing.T) {
	if DeviceCamera.String() != "camera" || DeviceMicrophone.String() != "microphone" {
		t.Fatal("device names wrong")
	}
	if got := Device(9).String(); got != "device(9)" {
		t.Fatalf("unknown device = %q", got)
	}
}

func TestCameraProducesFullDuration(t *testing.T) {
	p := testProfile(t)
	cam, err := NewCamera(p, 2*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cam.Kind() != media.KindVideo {
		t.Fatal("camera kind wrong")
	}
	var n int
	var last media.Sample
	for {
		s, ok := cam.Next()
		if !ok {
			break
		}
		last = s
		n++
	}
	if want := 2 * p.FrameRate; n != want {
		t.Fatalf("camera produced %d frames, want %d", n, want)
	}
	if lastEnd := last.PTS + last.Duration; lastEnd != 2*time.Second {
		t.Fatalf("last frame ends at %v, want 2s", lastEnd)
	}
	// Exhausted source stays exhausted.
	if _, ok := cam.Next(); ok {
		t.Fatal("camera produced after exhaustion")
	}
}

func TestMicrophoneProducesFullDuration(t *testing.T) {
	p := testProfile(t)
	mic, err := NewMicrophone(p, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if mic.Kind() != media.KindAudio {
		t.Fatal("microphone kind wrong")
	}
	var n int
	for {
		_, ok := mic.Next()
		if !ok {
			break
		}
		n++
	}
	if want := int(2 * time.Second / p.AudioBlock); n != want {
		t.Fatalf("microphone produced %d blocks, want %d", n, want)
	}
}

func TestSourceValidation(t *testing.T) {
	p := testProfile(t)
	if _, err := NewCamera(p, 0, 1); err == nil {
		t.Error("zero-duration camera accepted")
	}
	if _, err := NewMicrophone(p, -time.Second); err == nil {
		t.Error("negative-duration microphone accepted")
	}
	if _, err := NewCamera(codec.Profile{}, time.Second, 1); err == nil {
		t.Error("invalid profile accepted")
	}
}

func defaultLectureConfig(t *testing.T) LectureConfig {
	return LectureConfig{
		Title:           "Distributed Systems 101",
		Duration:        60 * time.Second,
		Profile:         testProfile(t),
		SlideCount:      6,
		AnnotationEvery: 25 * time.Second,
		Seed:            42,
	}
}

func TestNewLectureShape(t *testing.T) {
	lec, err := NewLecture(defaultLectureConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	p := testProfile(t)
	if got, want := len(lec.Video), 60*p.FrameRate; got != want {
		t.Errorf("video frames = %d, want %d", got, want)
	}
	if got, want := len(lec.Audio), int(60*time.Second/p.AudioBlock); got != want {
		t.Errorf("audio blocks = %d, want %d", got, want)
	}
	if len(lec.Slides) != 6 {
		t.Errorf("slides = %d, want 6", len(lec.Slides))
	}
	// Slides every 10 s.
	for i, s := range lec.Slides {
		if want := time.Duration(i) * 10 * time.Second; s.At != want {
			t.Errorf("slide %d at %v, want %v", i, s.At, want)
		}
		if len(s.Image) == 0 {
			t.Errorf("slide %d has empty image", i)
		}
	}
	// Annotations at 25 s and 50 s.
	if len(lec.Annotations) != 2 {
		t.Fatalf("annotations = %d, want 2", len(lec.Annotations))
	}
	if lec.Annotations[1].At != 50*time.Second {
		t.Errorf("annotation[1] at %v", lec.Annotations[1].At)
	}
}

func TestNewLectureValidation(t *testing.T) {
	cfg := defaultLectureConfig(t)
	cfg.Duration = 0
	if _, err := NewLecture(cfg); err == nil {
		t.Error("zero duration accepted")
	}
	cfg = defaultLectureConfig(t)
	cfg.SlideCount = 0
	if _, err := NewLecture(cfg); err == nil {
		t.Error("zero slides accepted")
	}
	cfg = defaultLectureConfig(t)
	cfg.Profile = codec.Profile{}
	if _, err := NewLecture(cfg); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestLectureDeterministic(t *testing.T) {
	a, err := NewLecture(defaultLectureConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLecture(defaultLectureConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Video) != len(b.Video) {
		t.Fatal("video lengths differ")
	}
	for i := range a.Video {
		if len(a.Video[i].Data) != len(b.Video[i].Data) {
			t.Fatalf("frame %d size differs", i)
		}
	}
	if string(a.Slides[3].Image) != string(b.Slides[3].Image) {
		t.Fatal("slide images differ across identical seeds")
	}
}

func TestSlideAt(t *testing.T) {
	lec, err := NewLecture(defaultLectureConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	s, ok := lec.SlideAt(25 * time.Second)
	if !ok || s.Name != "slide03.png" {
		t.Fatalf("SlideAt(25s) = %v,%v; want slide03", s.Name, ok)
	}
	s, ok = lec.SlideAt(0)
	if !ok || s.Name != "slide01.png" {
		t.Fatalf("SlideAt(0) = %v,%v", s.Name, ok)
	}
}

func TestToPresentation(t *testing.T) {
	lec, err := NewLecture(defaultLectureConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	p := lec.ToPresentation()
	if err := p.Validate(); err != nil {
		t.Fatalf("presentation invalid: %v", err)
	}
	// 6 video segments + 6 slide segments.
	if len(p.Segments) != 12 {
		t.Fatalf("segments = %d, want 12", len(p.Segments))
	}
	if p.Duration() != 60*time.Second {
		t.Fatalf("duration = %v, want 60s", p.Duration())
	}
	// Video and slide segments pair up in time.
	by := p.ByStream()
	videos := by[media.StreamVideo]
	slides := by[media.StreamImage]
	if len(videos) != 6 || len(slides) != 6 {
		t.Fatalf("videos=%d slides=%d", len(videos), len(slides))
	}
	for i := range videos {
		if videos[i].Start != slides[i].Start {
			t.Errorf("pair %d misaligned: video %v slide %v", i, videos[i].Start, slides[i].Start)
		}
	}
}

package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestCtxhttpFlagsInternal(t *testing.T) {
	linttest.Run(t, lint.Ctxhttp, testdata("ctxhttp"), "repro/internal/relay")
}

func TestCtxhttpAllowsContextRootsInCmd(t *testing.T) {
	linttest.Run(t, lint.Ctxhttp, testdata("ctxhttp", "cmd"), "repro/cmd/lodplay")
}

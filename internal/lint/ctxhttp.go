package lint

import (
	"go/ast"
)

// Ctxhttp enforces cancellation hygiene on the request path. Drain
// (PR 4) and failover (PR 5) only work because every in-flight HTTP
// call can be cancelled through its context; a single http.Get pins a
// session to a dead edge until TCP gives up. The analyzer flags:
//
//   - the context-free request helpers http.Get/Post/PostForm/Head
//     anywhere in the tree (build the request with
//     http.NewRequestWithContext instead);
//   - http.NewRequest, which silently attaches context.Background
//     (use http.NewRequestWithContext);
//   - context.Background()/context.TODO() inside internal packages,
//     which sever the caller's cancellation chain — internal code takes
//     a ctx parameter; only the binaries in cmd/ and the examples own
//     context roots.
//
// A deliberate detached context (a lifecycle owned by a handle with
// its own Stop, say) is annotated with `//lodlint:allow bare-ctx` and a
// justification.
var Ctxhttp = &Analyzer{
	Name:  "ctxhttp",
	Alias: "bare-ctx",
	Doc:   "HTTP requests carry the caller's context; internal packages never mint context roots",
	Run:   runCtxhttp,
}

// ctxFreeHTTPFuncs are the net/http package helpers that issue a
// request with no context attached.
var ctxFreeHTTPFuncs = map[string]bool{
	"Get":      true,
	"Post":     true,
	"PostForm": true,
	"Head":     true,
}

func runCtxhttp(pass *Pass) {
	internal := pathIsInternal(pass.Pkg.ImportPath)
	for _, f := range pass.Pkg.Files {
		httpNames := importNames(f, "net/http")
		eachPkgCall(f, httpNames, func(call *ast.CallExpr, sel *ast.SelectorExpr) {
			switch {
			case ctxFreeHTTPFuncs[sel.Sel.Name]:
				pass.Reportf(call.Pos(),
					"http.%s is not cancellable: build the request with http.NewRequestWithContext and the caller's context so drain/failover can abort it",
					sel.Sel.Name)
			case sel.Sel.Name == "NewRequest":
				pass.Reportf(call.Pos(),
					"http.NewRequest attaches context.Background: use http.NewRequestWithContext with the caller's context")
			}
		})
		if !internal {
			continue
		}
		ctxNames := importNames(f, "context")
		eachPkgCall(f, ctxNames, func(call *ast.CallExpr, sel *ast.SelectorExpr) {
			if name := sel.Sel.Name; name == "Background" || name == "TODO" {
				pass.Reportf(call.Pos(),
					"context.%s in an internal package severs the caller's cancellation chain: accept a ctx parameter (a deliberately detached lifecycle may carry %s bare-ctx)",
					name, AllowDirective)
			}
		})
	}
}

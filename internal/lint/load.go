package lint

import (
	"bytes"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// LoadDir parses the non-test Go files of a single directory as one
// Package under the given import path. It is the loader behind
// linttest (testdata packages are not resolvable through `go list`).
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return parsePackage(importPath, dir, names)
}

// LoadPatterns resolves Go package patterns (e.g. "./...") through
// `go list` and parses every matched package's non-test files. Test
// files are deliberately out of scope for the whole suite: pinning the
// wire contract with raw literals from the outside, or reading the
// wall clock, is exactly a test's job.
func LoadPatterns(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-f",
		"{{.ImportPath}}\t{{.Dir}}\t{{join .GoFiles \",\"}}"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []*Package
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 || parts[2] == "" {
			continue // no buildable non-test files
		}
		pkg, err := parsePackage(parts[0], parts[1], strings.Split(parts[2], ","))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// parsePackage parses the named files (relative to dir) with comments,
// which the allow-directive filter needs.
func parsePackage(importPath, dir string, names []string) (*Package, error) {
	pkg := &Package{ImportPath: importPath, Fset: token.NewFileSet()}
	for _, name := range names {
		f, err := parser.ParseFile(pkg.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	return pkg, nil
}

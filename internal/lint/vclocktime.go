package lint

import (
	"go/ast"
	"strings"
)

// Vclocktime forbids taking time directly from the time package inside
// the virtual-clock-participating packages. Those packages pace, sleep,
// and timestamp on a vclock.Clock so that MemNet benchmarks and
// simulation tests stay deterministic; one stray time.Now silently
// reintroduces wall-clock nondeterminism. Genuine wall-clock sites
// (e.g. a report's generation timestamp) carry the
// `//lodlint:allow wall-clock` directive — and vclock.Real is exactly
// the wall clock for everyone who wants it through the interface.
var Vclocktime = &Analyzer{
	Name:  "vclocktime",
	Alias: "wall-clock",
	Doc:   "virtual-clock packages take time from vclock.Clock, not the time package",
	Run:   runVclocktime,
}

// vclockPackages are the packages whose time flows through
// vclock.Clock. internal/vclock itself is the one place allowed to
// touch the time package (Real wraps it), and is deliberately absent.
var vclockPackages = []string{
	"internal/streaming",
	"internal/player",
	"internal/relay",
	"internal/netsim",
	"internal/loadgen",
	"internal/catalog",
	"internal/edgecache",
}

// vclockForbidden are the time-package members that read or schedule on
// the wall clock. Since and Until are included: both call time.Now
// internally.
var vclockForbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

func runVclocktime(pass *Pass) {
	enforced := false
	for _, p := range vclockPackages {
		if pathHasSuffix(pass.Pkg.ImportPath, p) {
			enforced = true
			break
		}
	}
	if !enforced {
		return
	}
	short := pass.Pkg.ImportPath
	if i := strings.LastIndex(short, "/"); i >= 0 {
		short = short[i+1:]
	}
	for _, f := range pass.Pkg.Files {
		timeNames := importNames(f, "time")
		eachPkgSelector(f, timeNames, func(sel *ast.SelectorExpr) {
			if !vclockForbidden[sel.Sel.Name] {
				return
			}
			pass.Reportf(sel.Pos(),
				"time.%s in virtual-clock package %s: take time from a vclock.Clock (use vclock.Real for the wall clock, or annotate a genuine wall-clock site with %s wall-clock)",
				sel.Sel.Name, short, AllowDirective)
		})
	}
}

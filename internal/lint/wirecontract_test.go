package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func testdata(elem ...string) string {
	return filepath.Join(append([]string{"testdata", "src"}, elem...)...)
}

func TestWirecontractFlags(t *testing.T) {
	linttest.Run(t, lint.Wirecontract, testdata("wirecontract"), "repro/internal/relay")
}

func TestWirecontractExemptsProto(t *testing.T) {
	linttest.Run(t, lint.Wirecontract, testdata("wirecontract", "proto"), "repro/internal/proto")
}

// Package a holds the same literals as the flagged fixture but is
// analyzed under the internal/proto import path, where the wire
// contract is *defined* — nothing here may be reported.
package a

const (
	PrefixVOD     = "/vod/"
	VersionPrefix = "/v1"
	ExcludeHeader = "X-Lod-Exclude"
	startParam    = "?start="
)

// Package a exercises the wirecontract analyzer under a non-exempt
// import path. A comment mentioning /vod/lec-1 or X-Lod-Exclude is
// never flagged — only string literals are examined.
package a

import "fmt"

const badPrefix = "/vod/" // want `wire-contract literal "/vod/"`

var (
	badVersioned = "/v1/live/talk"                  // want `wire-contract literal "/v1/live/talk"`
	badVersion   = "/v1"                            // want `wire-contract literal "/v1"`
	badHeader    = "X-Lod-Exclude"                  // want `wire-contract literal "X-Lod-Exclude"`
	badLower     = "x-lod-exclude"                  // want `route, header, and query-parameter strings live in internal/proto`
	badParam     = "?start=30s"                     // want `wire-contract literal "\?start=30s"`
	badAmpParam  = "&bw="                           // want `wire-contract literal "&bw="`
	badRegistry  = "/registry/nodes"                // want `wire-contract literal "/registry/nodes"`
	badConcat    = "/v1" + "/fetch/" + "lec"        // want `wire-contract literal "/v1"` `wire-contract literal "/fetch/"`
	badSprintf   = fmt.Sprintf("%s/live/x", "h")    // want `wire-contract literal "%s/live/x"`
	badQuery     = fmt.Sprintf("/group/g?bw=%d", 9) // want `wire-contract literal "/group/g\?bw=%d"`

	allowedLit = "/vod/pinned" //lodlint:allow wire-literal pinned fixture path

	// Prose and near-misses stay clean.
	okProse   = "not a vod/live/group stream path"
	okWord    = "supervod"
	okSlash   = "/video/intro"
	okVerb    = "%d groups"
	okKindTag = `{"kind":"vod"}`
)

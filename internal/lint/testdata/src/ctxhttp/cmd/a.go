// Package a is analyzed under a cmd/ import path: binaries own their
// context roots, so context.Background is fine — but a context-free
// request helper is still a finding everywhere.
package a

import (
	"context"
	"net/http"
)

func main_() error {
	ctx := context.Background()
	_ = ctx
	_, err := http.Get("http://registry.lod/status") // want `http\.Get is not cancellable`
	return err
}

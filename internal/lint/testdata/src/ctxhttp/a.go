// Package a exercises the ctxhttp analyzer under an internal import
// path, where both the context-free http helpers and context roots are
// findings.
package a

import (
	"context"
	"io"
	"net/http"
)

func fetch(ctx context.Context, url string) error {
	resp, err := http.Get(url) // want `http\.Get is not cancellable`
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	if _, err := http.Post(url, "text/plain", nil); err != nil { // want `http\.Post is not cancellable`
		return err
	}
	if _, err := http.Head(url); err != nil { // want `http\.Head is not cancellable`
		return err
	}
	if _, err := http.NewRequest(http.MethodGet, url, nil); err != nil { // want `http\.NewRequest attaches context\.Background`
		return err
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	_, err = http.DefaultClient.Do(req)
	return err
}

func roots() context.Context {
	ctx := context.Background() // want `context\.Background in an internal package severs the caller's cancellation chain`
	_ = context.TODO()          // want `context\.TODO in an internal package severs the caller's cancellation chain`

	//lodlint:allow bare-ctx the broadcast owns its lifecycle via Stop
	detached := context.Background()
	_ = detached
	return ctx
}

func reader(r io.Reader) io.Reader { return r }

// Package a uses the wall clock freely: analyzed under an import path
// (internal/codec) that does not participate in the virtual clock,
// nothing here is reported.
package a

import "time"

func wall() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}

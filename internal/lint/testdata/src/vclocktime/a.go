// Package a exercises the vclocktime analyzer under a
// virtual-clock-participating import path (internal/streaming).
package a

import (
	"time"

	tm "time"
)

func clocky(d time.Duration) {
	now := time.Now() // want `time\.Now in virtual-clock package streaming`
	_ = now
	time.Sleep(d)               // want `time\.Sleep in virtual-clock package streaming`
	<-time.After(d)             // want `time\.After in virtual-clock package streaming`
	_ = time.NewTimer(d)        // want `time\.NewTimer in virtual-clock package streaming`
	_ = time.NewTicker(d)       // want `time\.NewTicker in virtual-clock package streaming`
	_ = time.Since(time.Time{}) // want `time\.Since in virtual-clock package streaming`
	_ = time.Until(time.Time{}) // want `time\.Until in virtual-clock package streaming`

	_ = tm.Now() // want `time\.Now in virtual-clock package streaming`

	generated := time.Now() //lodlint:allow wall-clock report timestamps are wall time
	_ = generated

	//lodlint:allow wall-clock the directive on its own line covers the next one
	stamped := time.Now()
	_ = stamped

	// Types and constants off the wall clock stay usable.
	var at time.Time
	var dur time.Duration = 3 * time.Millisecond
	_, _ = at, dur
}

// shadowed proves a local named like the package is not a finding.
func shadowed() {
	type fake struct{ Now func() int }
	time := fake{Now: func() int { return 0 }}
	_ = time.Now()
}

// Package a is analyzed under a cmd/ import path: binaries render for
// humans, not for the wire, so http.Error is out of protoerror's
// scope.
package a

import "net/http"

func cliHandler(w http.ResponseWriter) {
	http.Error(w, "local tool error", http.StatusInternalServerError)
}

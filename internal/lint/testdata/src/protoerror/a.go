// Package a exercises the protoerror analyzer under an internal server
// import path.
package a

import "net/http"

func handler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed) // want `http\.Error writes a bare text line`
		return
	}
	//lodlint:allow http-error the draining refusal predates /v1 clients
	http.Error(w, "draining", http.StatusServiceUnavailable)

	// The contract helpers and non-error writes are clean.
	http.NotFound(w, r)
	w.WriteHeader(http.StatusNoContent)
}

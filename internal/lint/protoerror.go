package lint

import (
	"go/ast"
)

// Protoerror flags http.Error in the internal server packages. The /v1
// contract answers failures with the proto.Error JSON body
// (proto.WriteError / proto.WriteErr), which clients branch on without
// parsing prose; http.Error's bare text line predates the contract and
// every surviving call site is a handler that slipped through PR 5's
// sweep. The cmd/ binaries and examples are out of scope — they render
// for humans, not for the wire.
var Protoerror = &Analyzer{
	Name:  "protoerror",
	Alias: "http-error",
	Doc:   "internal server handlers answer errors with proto.WriteError/WriteErr, not http.Error",
	Run:   runProtoerror,
}

func runProtoerror(pass *Pass) {
	if !pathIsInternal(pass.Pkg.ImportPath) || pathHasSuffix(pass.Pkg.ImportPath, "internal/proto") {
		return
	}
	for _, f := range pass.Pkg.Files {
		httpNames := importNames(f, "net/http")
		eachPkgCall(f, httpNames, func(call *ast.CallExpr, sel *ast.SelectorExpr) {
			if sel.Sel.Name != "Error" {
				return
			}
			pass.Reportf(call.Pos(),
				"http.Error writes a bare text line: the /v1 contract is the proto.Error JSON body — use proto.WriteError (or proto.WriteErr for *proto.Error values)")
		})
	}
}

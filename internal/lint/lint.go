// Package lint is the repo-native static-analysis suite behind `make
// lint` (cmd/lodlint): a small go/analysis-style framework plus four
// analyzers that turn the repository's load-bearing conventions into
// mechanically checked invariants.
//
// The conventions — and the analyzer that guards each — are:
//
//   - wirecontract: every wire-contract string (route prefixes, the /v1
//     version prefix, the failover exclude header, the start/bw query
//     parameters) lives in internal/proto and nowhere else. The
//     AST-level check supersedes the old `make api-check` grep: it also
//     catches literals composed through fmt.Sprintf or concatenation,
//     and it cannot false-positive on comments, because it only looks
//     at string literals.
//   - vclocktime: packages that participate in the virtual clock
//     (streaming, player, relay, netsim, loadgen) must take time from a
//     vclock.Clock, never from time.Now/Sleep/After/... directly —
//     otherwise MemNet benchmarks silently lose determinism.
//   - ctxhttp: HTTP requests are built with NewRequestWithContext and
//     internal packages derive contexts from their callers, so drain
//     and failover can actually cancel in-flight work.
//   - protoerror: server handlers answer errors with
//     proto.WriteError/WriteErr (the Error JSON body is the /v1
//     contract), not http.Error's text line.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic, testdata packages with `// want` expectations — see
// linttest) but is built only on the standard library's go/ast and
// go/parser, so the module keeps zero external dependencies. Analysis
// is purely syntactic: package-level references are resolved through
// each file's import table, which is exact for the patterns checked
// here (method calls on values, e.g. an *http.Client's Get, are out of
// scope and documented as such in DESIGN.md).
//
// # Escape hatch
//
// A finding that is genuinely intentional is suppressed with a
// directive comment on the offending line or on the line directly
// above it:
//
//	//lodlint:allow wall-clock  (report timestamps are wall time)
//
// The keyword is the analyzer's name or its alias (wirecontract:
// wire-literal, vclocktime: wall-clock, ctxhttp: bare-ctx, protoerror:
// http-error). Everything after the keyword is free-form justification.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named check over a package's syntax.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -checks selections,
	// and //lodlint:allow directives.
	Name string
	// Alias is an alternative //lodlint:allow keyword (e.g. vclocktime
	// answers to "wall-clock"); empty means the name only.
	Alias string
	// Doc is the one-line description `lodlint -list` prints.
	Doc string
	// Run reports the analyzer's findings on pass.Pkg via pass.Reportf.
	Run func(pass *Pass)
}

// Allows reports whether the directive keyword kw addresses this
// analyzer.
func (a *Analyzer) Allows(kw string) bool {
	return kw == a.Name || (a.Alias != "" && kw == a.Alias)
}

// Package is one parsed package as the analyzers see it: the non-test
// Go files, their shared FileSet, and the import path the scoping
// rules key on.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the go-vet-style "file:line:col: message [analyzer]"
// form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// AllowDirective is the comment prefix that suppresses a finding.
const AllowDirective = "//lodlint:allow"

// allowedLines maps source line → the directive keywords allowed there.
// A directive allows its own line (end-of-line form) and the line below
// it (own-line form above the finding).
func allowedLines(fset *token.FileSet, f *ast.File) map[int][]string {
	var out map[int][]string
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, AllowDirective)
			if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			if out == nil {
				out = make(map[int][]string)
			}
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], fields[0])
			out[line+1] = append(out[line+1], fields[0])
		}
	}
	return out
}

// Run executes the analyzers over the packages, drops findings covered
// by //lodlint:allow directives, and returns the survivors sorted by
// position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allowed := make(map[string]map[int][]string) // filename → line → keywords
		for _, f := range pkg.Files {
			if m := allowedLines(pkg.Fset, f); m != nil {
				allowed[pkg.Fset.Position(f.Pos()).Filename] = m
			}
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			a.Run(pass)
			for _, d := range pass.diags {
				if kws, ok := allowed[d.Pos.Filename][d.Pos.Line]; ok {
					suppressed := false
					for _, kw := range kws {
						if a.Allows(kw) {
							suppressed = true
							break
						}
					}
					if suppressed {
						continue
					}
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Wirecontract, Vclocktime, Ctxhttp, Protoerror}
}

// importNames returns every identifier that refers to the given import
// path in file f: the explicit local names and/or the path's last
// segment, empty when f does not import the path. Blank and dot imports
// (which this repository never uses) contribute nothing.
func importNames(f *ast.File, path string) map[string]bool {
	var out map[string]bool
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p != path {
			continue
		}
		name := p
		if i := strings.LastIndex(p, "/"); i >= 0 {
			name = p[i+1:]
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				continue
			}
			name = imp.Name.Name
		}
		if out == nil {
			out = make(map[string]bool)
		}
		out[name] = true
	}
	return out
}

// isPkgRef reports whether ident is a reference to a package imported
// under one of the given names — i.e. it is not resolved to any
// declaration in the file (parameters, locals, and same-file
// package-level objects all carry a parser-resolved Obj).
func isPkgRef(ident *ast.Ident, pkgNames map[string]bool) bool {
	return pkgNames[ident.Name] && ident.Obj == nil
}

// eachPkgSelector walks f and calls fn for every selector expression
// pkg.Name whose receiver is a reference to a package imported under
// one of pkgNames.
func eachPkgSelector(f *ast.File, pkgNames map[string]bool, fn func(sel *ast.SelectorExpr)) {
	if len(pkgNames) == 0 {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && isPkgRef(id, pkgNames) {
			fn(sel)
		}
		return true
	})
}

// eachPkgCall walks f and calls fn for every call pkg.Name(...) whose
// receiver is a reference to a package imported under one of pkgNames.
func eachPkgCall(f *ast.File, pkgNames map[string]bool, fn func(call *ast.CallExpr, sel *ast.SelectorExpr)) {
	if len(pkgNames) == 0 {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && isPkgRef(id, pkgNames) {
			fn(call, sel)
		}
		return true
	})
}

// pathIsInternal reports whether an import path names one of the
// module's internal packages (the scope in which context hygiene and
// the proto error contract are enforced).
func pathIsInternal(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}

// pathHasSuffix reports whether path is, or ends with, the given
// package suffix (e.g. "internal/proto" matches "repro/internal/proto").
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestVclocktimeFlags(t *testing.T) {
	linttest.Run(t, lint.Vclocktime, testdata("vclocktime"), "repro/internal/streaming")
}

func TestVclocktimeIgnoresOutsidePackages(t *testing.T) {
	linttest.Run(t, lint.Vclocktime, testdata("vclocktime", "outside"), "repro/internal/codec")
}

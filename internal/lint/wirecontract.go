package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/proto"
)

// Wirecontract flags wire-contract string literals outside
// internal/proto: route prefixes (versioned or legacy), the version
// prefix itself, the failover exclude header, and the streaming query
// parameters. It is the AST-level successor of the retired `make
// api-check` grep: because it examines string literals — including
// fmt.Sprintf format strings and concatenation operands — it catches
// compositions like "%s/live/x" that the grep missed, and it cannot
// trip over comments or unrelated prose, which the grep could.
var Wirecontract = &Analyzer{
	Name:  "wirecontract",
	Alias: "wire-literal",
	Doc:   "wire-contract strings (routes, /" + proto.Version + ", " + proto.ExcludeHeader + ", query params) belong in internal/proto",
	Run:   runWirecontract,
}

// The patterns are built from the proto constants themselves, so the
// analyzer can never drift from the contract it enforces (and this
// package contains no raw wire literals of its own).
var (
	// routeFamilies is vod|live|group|fetch|registry, quoted for regexp
	// use.
	routeFamilies = func() string {
		prefixes := []string{proto.PrefixVOD, proto.PrefixLive, proto.PrefixGroup, proto.PrefixFetch}
		names := make([]string, 0, len(prefixes)+1)
		for _, p := range prefixes {
			names = append(names, regexp.QuoteMeta(strings.Trim(p, "/")))
		}
		// The registry control-plane routes share one first segment.
		reg := strings.TrimPrefix(proto.PathRegister, "/")
		if i := strings.Index(reg, "/"); i > 0 {
			reg = reg[:i]
		}
		return strings.Join(append(names, regexp.QuoteMeta(reg)), "|")
	}()

	// A route mention is path-like: the family segment is slash-led,
	// starts the string or follows a non-alphanumeric boundary, and is
	// followed by a path/query continuation or the end of the string.
	// That keeps prose such as "not a vod/live/group stream path" out.
	routeLitRe = regexp.MustCompile(
		`(^|[^a-zA-Z0-9])(/` + regexp.QuoteMeta(proto.Version) + `)?/(` + routeFamilies + `)([/?]|$)`)

	// The bare version prefix ("/v1", "/v1/...") is contract too: new
	// surfaces compose it with proto.Versioned, never by hand.
	versionLitRe = regexp.MustCompile(
		`(^|[^a-zA-Z0-9])/` + regexp.QuoteMeta(proto.Version) + `([/?]|$)`)

	// Query-parameter assembly ("?start=", "&bw=", or a literal that is
	// itself the assignment) belongs to FormatStart and url.Values with
	// the proto.Param* names.
	paramLitRe = regexp.MustCompile(
		`(^|[?&])(` + regexp.QuoteMeta(proto.ParamStart) + `|` + regexp.QuoteMeta(proto.ParamBandwidth) + `)=`)

	// Format verbs act as value boundaries: "%s/live/x" composes a
	// route even though 's' is a letter. Collapse them before matching.
	verbRe        = regexp.MustCompile(`%[^a-zA-Z%]*[a-zA-Z]`)
	doublePercent = strings.Repeat("%", 2)
)

func runWirecontract(pass *Pass) {
	if pathHasSuffix(pass.Pkg.ImportPath, "internal/proto") {
		return
	}
	for _, f := range pass.Pkg.Files {
		importPaths := make(map[token.Pos]bool)
		for _, imp := range f.Imports {
			importPaths[imp.Path.Pos()] = true
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING || importPaths[lit.Pos()] {
				return true
			}
			val, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if frag := wireFragment(val); frag != "" {
				pass.Reportf(lit.Pos(),
					"wire-contract literal %q (%s): route, header, and query-parameter strings live in internal/proto — compose with its constants and builders",
					val, frag)
			}
			return true
		})
	}
}

// wireFragment returns the contract fragment a literal embeds, or ""
// when the literal is clean.
func wireFragment(s string) string {
	if h := proto.ExcludeHeader; strings.Contains(strings.ToLower(s), strings.ToLower(h)) {
		return h
	}
	// Collapse %-verbs to a boundary marker so formatted compositions
	// match; literal %% is just a percent sign.
	collapsed := verbRe.ReplaceAllString(strings.ReplaceAll(s, doublePercent, "%"), "\x00")
	for _, re := range []*regexp.Regexp{routeLitRe, versionLitRe, paramLitRe} {
		if m := re.FindString(collapsed); m != "" {
			return strings.Trim(strings.ReplaceAll(m, "\x00", ""), " \t")
		}
	}
	return ""
}

// Package linttest runs a lint.Analyzer over a testdata package and
// checks its findings against `// want "regexp"` expectations, the
// golang.org/x/tools/go/analysis/analysistest idiom:
//
//	resp, err := http.Get(url) // want `http\.Get is not cancellable`
//
// Every diagnostic must match a want on its line and every want must be
// matched by a diagnostic; a line may carry several quoted or
// backquoted want patterns. Files under testdata are parsed, never
// compiled, so they may reference packages loosely — but they are kept
// gofmt-clean because the repository-wide fmt-check walks them.
package linttest

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Run analyzes the package in dir under the given import path (the
// analyzers scope their rules by import path, so testdata chooses which
// regime it is tested under) and reports expectation mismatches on t.
func Run(t *testing.T, a *lint.Analyzer, dir, importPath string) {
	t.Helper()
	pkg, err := lint.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	wants := collectWants(t, pkg)
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})

	matched := make(map[*want]bool)
	for _, d := range diags {
		w := matchWant(wants[lineKey{d.Pos.Filename, d.Pos.Line}], matched, d.Message)
		if w == nil {
			t.Errorf("%s: unexpected diagnostic: %s", posOf(d.Pos), d.Message)
			continue
		}
		matched[w] = true
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !matched[w] {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re.String())
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct{ re *regexp.Regexp }

// matchWant returns a want whose pattern matches msg, preferring one
// not yet consumed so several wants on a line pair with several
// diagnostics.
func matchWant(ws []*want, matched map[*want]bool, msg string) *want {
	var fallback *want
	for _, w := range ws {
		if !w.re.MatchString(msg) {
			continue
		}
		if !matched[w] {
			return w
		}
		fallback = w
	}
	return fallback
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.+)$`)

// collectWants extracts the want expectations from every comment in the
// package.
func collectWants(t *testing.T, pkg *lint.Package) map[lineKey][]*want {
	t.Helper()
	out := make(map[lineKey][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posOf(pos), pat, err)
					}
					key := lineKey{pos.Filename, pos.Line}
					out[key] = append(out[key], &want{re: re})
				}
			}
		}
	}
	return out
}

// splitPatterns parses the quoted/backquoted patterns after a want
// keyword.
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		q := s[0]
		if q != '"' && q != '`' {
			t.Fatalf("%s: want patterns must be quoted or backquoted, got %q", posOf(pos), s)
		}
		end := strings.IndexByte(s[1:], q)
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", posOf(pos), s)
		}
		raw := s[:end+2]
		pat, err := strconv.Unquote(raw)
		if err != nil {
			t.Fatalf("%s: bad want pattern %s: %v", posOf(pos), raw, err)
		}
		out = append(out, pat)
		s = s[end+2:]
	}
}

func posOf(p token.Position) string { return fmt.Sprintf("%s:%d", p.Filename, p.Line) }

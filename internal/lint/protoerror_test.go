package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

func TestProtoerrorFlagsInternalHandlers(t *testing.T) {
	linttest.Run(t, lint.Protoerror, testdata("protoerror"), "repro/internal/streaming")
}

func TestProtoerrorIgnoresCommands(t *testing.T) {
	linttest.Run(t, lint.Protoerror, testdata("protoerror", "outside"), "repro/cmd/lodplay")
}

// Package contenttree implements the multiple-level content tree of the
// paper's §2.2–2.4: the Abstractor's internal data structure for organizing
// a web-based multimedia presentation at several abstraction levels.
//
// A content tree is a finite set of one or more nodes with a designated
// root at level 0; the children of a level-q node are at level q+1, and
// siblings ordered left to right represent the presentation sequence. A
// node is a presentation segment. The presentation at level q plays, in
// pre-order, every segment whose level is at most q, so higher levels give
// longer (more detailed) presentations and lower levels give summaries.
//
// Interpretation notes, pinned by the paper's worked examples:
//
//   - LevelNodes[q] (the paper's "LevelNodes[q]->value") is the cumulative
//     presentation time of all nodes at level <= q. In the §2.3 build the
//     five segments S0..S4 (20 time units each, levels 0,1,2,1,2) yield
//     LevelNodes = {20, 60, 100}.
//   - Attach adds the new node as the rightmost child of the rightmost
//     node at level-1 (building the presentation left to right).
//   - Insert (Fig 3) places the new node at an existing node's position;
//     the displaced node and its children all become children of the new
//     node. Inserting S5 at level 1 over S3 turns {S0;S1,S3;S2,S4} into
//     {S0;S1,S5;S2,S3,S4}: LevelNodes goes {20,60,100} -> {20,60,120} with
//     the highest level still 2, exactly as Figure 3 reports.
//   - Delete (Fig 4) removes a node and its children are adopted by the
//     left sibling (the paper: "the S5's children will be adopted by S5's
//     siblings S1"); with no left sibling the right sibling adopts them.
package contenttree

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Sentinel errors reported by tree operations.
var (
	// ErrNotFound is returned when a referenced node ID does not exist.
	ErrNotFound = errors.New("contenttree: node not found")
	// ErrDuplicateID is returned when adding a node whose ID already exists.
	ErrDuplicateID = errors.New("contenttree: duplicate node id")
	// ErrNoParent is returned when attaching at a level with no candidate
	// parent at level-1.
	ErrNoParent = errors.New("contenttree: no parent exists at level-1")
	// ErrHasRoot is returned when attaching a second level-0 node.
	ErrHasRoot = errors.New("contenttree: tree already has a root")
	// ErrDeleteRoot is returned when deleting or displacing the root.
	ErrDeleteRoot = errors.New("contenttree: cannot remove the root")
	// ErrNoAdopter is returned when a deleted node's children have no
	// sibling to adopt them.
	ErrNoAdopter = errors.New("contenttree: deleted node's children have no sibling to adopt them")
	// ErrEmpty is returned for operations that need a non-empty tree.
	ErrEmpty = errors.New("contenttree: tree is empty")
)

// Node is one presentation segment in the content tree.
type Node struct {
	// ID is the segment identifier ("S0", "S1", … in the paper).
	ID string
	// Duration is the segment's presentation time.
	Duration time.Duration
	// Children are ordered left to right (presentation sequence).
	Children []*Node

	parent *Node
}

// Parent returns the node's parent, or nil for the root.
func (n *Node) Parent() *Node { return n.parent }

// Level returns the node's level: root is 0, children of level q are q+1.
func (n *Node) Level() int {
	lvl := 0
	for p := n.parent; p != nil; p = p.parent {
		lvl++
	}
	return lvl
}

// Tree is a multiple-level content tree. The zero value is an empty tree
// ready for use.
type Tree struct {
	root  *Node
	index map[string]*Node
}

// New returns an empty content tree.
func New() *Tree {
	return &Tree{index: make(map[string]*Node)}
}

// ensureIndex lazily initializes the index so the zero value works.
func (t *Tree) ensureIndex() {
	if t.index == nil {
		t.index = make(map[string]*Node)
	}
}

// Root returns the root node, or nil for an empty tree.
func (t *Tree) Root() *Node { return t.root }

// Len returns the number of nodes in the tree.
func (t *Tree) Len() int { return len(t.index) }

// Find returns the node with the given ID, or nil.
func (t *Tree) Find(id string) *Node {
	t.ensureIndex()
	return t.index[id]
}

// HighestLevel returns the deepest level present (the paper's
// "highestLevel"), or -1 for an empty tree.
func (t *Tree) HighestLevel() int {
	if t.root == nil {
		return -1
	}
	deepest := 0
	t.walk(t.root, 0, func(_ *Node, lvl int) bool {
		if lvl > deepest {
			deepest = lvl
		}
		return true
	})
	return deepest
}

// Attach adds a segment at the given level, following the paper's build
// procedure (§2.3): level 0 creates the root; level q>0 appends the node as
// the rightmost child of the rightmost node at level q-1.
func (t *Tree) Attach(id string, dur time.Duration, level int) error {
	t.ensureIndex()
	if id == "" {
		return errors.New("contenttree: empty node id")
	}
	if dur < 0 {
		return fmt.Errorf("contenttree: node %s has negative duration %v", id, dur)
	}
	if level < 0 {
		return fmt.Errorf("contenttree: negative level %d", level)
	}
	if _, exists := t.index[id]; exists {
		return fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	n := &Node{ID: id, Duration: dur}
	if level == 0 {
		if t.root != nil {
			return ErrHasRoot
		}
		t.root = n
		t.index[id] = n
		return nil
	}
	parent := t.rightmostAtLevel(level - 1)
	if parent == nil {
		return fmt.Errorf("%w (attaching %s at level %d)", ErrNoParent, id, level)
	}
	n.parent = parent
	parent.Children = append(parent.Children, n)
	t.index[id] = n
	return nil
}

// rightmostAtLevel returns the rightmost node at exactly the given level.
func (t *Tree) rightmostAtLevel(level int) *Node {
	var found *Node
	t.walk(t.root, 0, func(n *Node, lvl int) bool {
		if lvl == level {
			found = n // pre-order keeps overwriting; last one is rightmost
		}
		return true
	})
	return found
}

// Insert places a new segment at the tree position currently occupied by
// target (Fig 3): the new node takes target's slot at target's level, and
// target together with target's children become the new node's children.
// The root cannot be displaced.
func (t *Tree) Insert(id string, dur time.Duration, targetID string) error {
	t.ensureIndex()
	if _, exists := t.index[id]; exists {
		return fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	if dur < 0 {
		return fmt.Errorf("contenttree: node %s has negative duration %v", id, dur)
	}
	target := t.index[targetID]
	if target == nil {
		return fmt.Errorf("%w: %s", ErrNotFound, targetID)
	}
	if target == t.root {
		return ErrDeleteRoot
	}
	parent := target.parent
	slot := childIndex(parent, target)
	n := &Node{ID: id, Duration: dur, parent: parent}
	parent.Children[slot] = n

	// Target is demoted one level; its former children are adopted by the
	// new node as target's right siblings, keeping the highest level bound.
	adopted := target.Children
	target.Children = nil
	target.parent = n
	n.Children = append(n.Children, target)
	for _, c := range adopted {
		c.parent = n
		n.Children = append(n.Children, c)
	}
	t.index[id] = n
	return nil
}

// Delete removes the node with the given ID (Fig 4). Its children are
// adopted by the left sibling, or by the right sibling when there is no
// left sibling, preserving presentation order. Deleting the root is only
// allowed when the root is the sole node.
func (t *Tree) Delete(id string) error {
	t.ensureIndex()
	n := t.index[id]
	if n == nil {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if n == t.root {
		if len(n.Children) > 0 {
			return ErrDeleteRoot
		}
		t.root = nil
		delete(t.index, id)
		return nil
	}
	parent := n.parent
	slot := childIndex(parent, n)
	if len(n.Children) > 0 {
		var adopter *Node
		switch {
		case slot > 0:
			adopter = parent.Children[slot-1]
		case slot+1 < len(parent.Children):
			adopter = parent.Children[slot+1]
		default:
			return fmt.Errorf("%w (deleting %s)", ErrNoAdopter, id)
		}
		if slot > 0 {
			// Left sibling adopts: children append on its right.
			for _, c := range n.Children {
				c.parent = adopter
				adopter.Children = append(adopter.Children, c)
			}
		} else {
			// Right sibling adopts: children prepend, preserving sequence.
			for _, c := range n.Children {
				c.parent = adopter
			}
			adopter.Children = append(append([]*Node{}, n.Children...), adopter.Children...)
		}
		n.Children = nil
	}
	parent.Children = append(parent.Children[:slot], parent.Children[slot+1:]...)
	n.parent = nil
	delete(t.index, id)
	return nil
}

// Detach removes the node and its entire subtree from the tree.
func (t *Tree) Detach(id string) error {
	t.ensureIndex()
	n := t.index[id]
	if n == nil {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if n == t.root {
		t.root = nil
		t.index = make(map[string]*Node)
		return nil
	}
	parent := n.parent
	slot := childIndex(parent, n)
	parent.Children = append(parent.Children[:slot], parent.Children[slot+1:]...)
	n.parent = nil
	t.walk(n, 0, func(d *Node, _ int) bool {
		delete(t.index, d.ID)
		return true
	})
	return nil
}

func childIndex(parent, child *Node) int {
	for i, c := range parent.Children {
		if c == child {
			return i
		}
	}
	return -1
}

// PresentationTime returns the total presentation time at the given level:
// the sum of durations of every node whose level is at most level (the
// paper's LevelNodes[level]->value). Levels beyond the highest level return
// the full presentation time.
func (t *Tree) PresentationTime(level int) time.Duration {
	var total time.Duration
	t.walk(t.root, 0, func(n *Node, lvl int) bool {
		if lvl <= level {
			total += n.Duration
		}
		return lvl < level // no need to descend past the requested level
	})
	return total
}

// LevelNodes returns the cumulative presentation time per level, index q
// holding the paper's LevelNodes[q]->value. Empty trees return nil.
func (t *Tree) LevelNodes() []time.Duration {
	highest := t.HighestLevel()
	if highest < 0 {
		return nil
	}
	out := make([]time.Duration, highest+1)
	t.walk(t.root, 0, func(n *Node, lvl int) bool {
		for q := lvl; q <= highest; q++ {
			out[q] += n.Duration
		}
		return true
	})
	return out
}

// ExtractLevel returns the presentation at the given abstraction level: the
// pre-order sequence of every node with level <= level. This is the
// "flexible teaching material" of §2.2 — level 0 is the shortest summary.
func (t *Tree) ExtractLevel(level int) []*Node {
	var seq []*Node
	t.walk(t.root, 0, func(n *Node, lvl int) bool {
		if lvl <= level {
			seq = append(seq, n)
		}
		return lvl < level
	})
	return seq
}

// ExtractLevelIDs is ExtractLevel projected to node IDs, convenient for
// assertions and display.
func (t *Tree) ExtractLevelIDs(level int) []string {
	nodes := t.ExtractLevel(level)
	ids := make([]string, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID
	}
	return ids
}

// Walk visits every node in pre-order with its level, stopping early if fn
// returns false for descending into a subtree's children.
func (t *Tree) Walk(fn func(n *Node, level int) bool) {
	t.walk(t.root, 0, fn)
}

func (t *Tree) walk(n *Node, lvl int, fn func(*Node, int) bool) {
	if n == nil {
		return
	}
	descend := fn(n, lvl)
	if !descend {
		return
	}
	for _, c := range n.Children {
		t.walk(c, lvl+1, fn)
	}
}

// Validate checks the "well-defined" property of Fig 2: the index matches
// the structure, parent pointers are consistent, IDs are unique and
// non-empty, and durations are non-negative.
func (t *Tree) Validate() error {
	t.ensureIndex()
	if t.root == nil {
		if len(t.index) != 0 {
			return fmt.Errorf("contenttree: empty tree with %d indexed nodes", len(t.index))
		}
		return nil
	}
	if t.root.parent != nil {
		return errors.New("contenttree: root has a parent")
	}
	seen := make(map[string]bool, len(t.index))
	var problem error
	t.walk(t.root, 0, func(n *Node, _ int) bool {
		if problem != nil {
			return false
		}
		switch {
		case n.ID == "":
			problem = errors.New("contenttree: node with empty id")
		case seen[n.ID]:
			problem = fmt.Errorf("%w in structure: %s", ErrDuplicateID, n.ID)
		case t.index[n.ID] != n:
			problem = fmt.Errorf("contenttree: node %s missing from index", n.ID)
		case n.Duration < 0:
			problem = fmt.Errorf("contenttree: node %s has negative duration", n.ID)
		}
		seen[n.ID] = true
		for _, c := range n.Children {
			if c.parent != n {
				problem = fmt.Errorf("contenttree: node %s has wrong parent pointer", c.ID)
			}
		}
		return problem == nil
	})
	if problem != nil {
		return problem
	}
	if len(seen) != len(t.index) {
		return fmt.Errorf("contenttree: index has %d nodes, structure has %d", len(t.index), len(seen))
	}
	return nil
}

// String renders the tree as an indented outline, one node per line:
//
//	S0 (20s)
//	  S1 (20s)
//	    S2 (20s)
func (t *Tree) String() string {
	if t.root == nil {
		return "(empty)"
	}
	var b strings.Builder
	t.walk(t.root, 0, func(n *Node, lvl int) bool {
		fmt.Fprintf(&b, "%s%s (%v)\n", strings.Repeat("  ", lvl), n.ID, n.Duration)
		return true
	})
	return b.String()
}

// nodeJSON is the serialized node form.
type nodeJSON struct {
	ID          string     `json:"id"`
	DurationSec float64    `json:"durationSec"`
	Children    []nodeJSON `json:"children,omitempty"`
}

// MarshalJSON encodes the tree structure.
func (t *Tree) MarshalJSON() ([]byte, error) {
	if t.root == nil {
		return []byte("null"), nil
	}
	return json.Marshal(toJSON(t.root))
}

func toJSON(n *Node) nodeJSON {
	j := nodeJSON{ID: n.ID, DurationSec: n.Duration.Seconds()}
	for _, c := range n.Children {
		j.Children = append(j.Children, toJSON(c))
	}
	return j
}

// UnmarshalJSON decodes a tree previously produced by MarshalJSON.
func (t *Tree) UnmarshalJSON(data []byte) error {
	t.root = nil
	t.index = make(map[string]*Node)
	var j *nodeJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("contenttree: decode: %w", err)
	}
	if j == nil {
		return nil
	}
	root, err := fromJSON(*j, nil, t.index)
	if err != nil {
		return err
	}
	t.root = root
	return nil
}

func fromJSON(j nodeJSON, parent *Node, index map[string]*Node) (*Node, error) {
	if j.ID == "" {
		return nil, errors.New("contenttree: decode: node with empty id")
	}
	if _, dup := index[j.ID]; dup {
		return nil, fmt.Errorf("contenttree: decode: %w: %s", ErrDuplicateID, j.ID)
	}
	n := &Node{
		ID:       j.ID,
		Duration: time.Duration(j.DurationSec * float64(time.Second)),
		parent:   parent,
	}
	index[j.ID] = n
	for _, cj := range j.Children {
		c, err := fromJSON(cj, n, index)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, c)
	}
	return n, nil
}

// IDs returns the sorted set of node IDs (diagnostics helper).
func (t *Tree) IDs() []string {
	t.ensureIndex()
	ids := make([]string, 0, len(t.index))
	for id := range t.index {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

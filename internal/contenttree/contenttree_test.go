package contenttree

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"
)

const unit = 20 * time.Second // the paper's examples use 20-unit segments

// buildPaperTree reproduces the §2.3 build: S0(l0) S1(l1) S2(l2) S3(l1)
// S4(l2), each 20 units, yielding the tree S0(S1(S2), S3(S4)).
func buildPaperTree(t *testing.T) *Tree {
	t.Helper()
	tree := New()
	steps := []struct {
		id    string
		level int
	}{
		{"S0", 0}, {"S1", 1}, {"S2", 2}, {"S3", 1}, {"S4", 2},
	}
	for _, s := range steps {
		if err := tree.Attach(s.id, unit, s.level); err != nil {
			t.Fatalf("Attach(%s, level %d): %v", s.id, s.level, err)
		}
	}
	return tree
}

func levelSeconds(tr *Tree) []float64 {
	lv := tr.LevelNodes()
	out := make([]float64, len(lv))
	for i, d := range lv {
		out[i] = d.Seconds()
	}
	return out
}

// TestSection23BuildSteps reproduces the paper's §2.3 step table exactly:
// after each add, highestLevel and LevelNodes[] must match the published
// values (E2 in DESIGN.md).
func TestSection23BuildSteps(t *testing.T) {
	tree := New()

	// Step 1: add S0.
	if err := tree.Attach("S0", unit, 0); err != nil {
		t.Fatalf("add S0: %v", err)
	}
	if got := tree.HighestLevel(); got != 0 {
		t.Fatalf("after S0 highestLevel = %d, want 0", got)
	}
	if got := tree.PresentationTime(0); got != 20*time.Second {
		t.Fatalf("after S0 LevelNodes[0] = %v, want 20s", got)
	}

	// Step 2: add S1.
	if err := tree.Attach("S1", unit, 1); err != nil {
		t.Fatalf("add S1: %v", err)
	}
	if got := tree.HighestLevel(); got != 1 {
		t.Fatalf("after S1 highestLevel = %d, want 1", got)
	}
	if got := tree.PresentationTime(1); got != 40*time.Second {
		t.Fatalf("after S1 LevelNodes[1] = %v, want 40s", got)
	}

	// Step 3: add S2.
	if err := tree.Attach("S2", unit, 2); err != nil {
		t.Fatalf("add S2: %v", err)
	}
	if got := tree.HighestLevel(); got != 2 {
		t.Fatalf("after S2 highestLevel = %d, want 2", got)
	}
	if got := tree.PresentationTime(2); got != 60*time.Second {
		t.Fatalf("after S2 LevelNodes[2] = %v, want 60s", got)
	}

	// Step 4: add S3 and S4 (the paper's final step reports the combined
	// state: highestLevel = 2, LevelNodes[1] = 60, LevelNodes[2] = 100).
	if err := tree.Attach("S3", unit, 1); err != nil {
		t.Fatalf("add S3: %v", err)
	}
	if err := tree.Attach("S4", unit, 2); err != nil {
		t.Fatalf("add S4: %v", err)
	}
	if got := tree.HighestLevel(); got != 2 {
		t.Fatalf("final highestLevel = %d, want 2", got)
	}
	if got := tree.PresentationTime(1); got != 60*time.Second {
		t.Fatalf("final LevelNodes[1] = %v, want 60s", got)
	}
	if got := tree.PresentationTime(2); got != 100*time.Second {
		t.Fatalf("final LevelNodes[2] = %v, want 100s", got)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestFigure1Tree checks the structural shape after the §2.3 build (E1):
// S0 at the root with S1 and S3 at level 1 refining it, and S2, S4 at
// level 2 refining S1 and S3 respectively.
func TestFigure1Tree(t *testing.T) {
	tree := buildPaperTree(t)

	root := tree.Root()
	if root == nil || root.ID != "S0" {
		t.Fatalf("root = %v, want S0", root)
	}
	if got := childIDs(root); !reflect.DeepEqual(got, []string{"S1", "S3"}) {
		t.Fatalf("root children = %v, want [S1 S3]", got)
	}
	if got := childIDs(tree.Find("S1")); !reflect.DeepEqual(got, []string{"S2"}) {
		t.Fatalf("S1 children = %v, want [S2]", got)
	}
	if got := childIDs(tree.Find("S3")); !reflect.DeepEqual(got, []string{"S4"}) {
		t.Fatalf("S3 children = %v, want [S4]", got)
	}
	for id, want := range map[string]int{"S0": 0, "S1": 1, "S2": 2, "S3": 1, "S4": 2} {
		if got := tree.Find(id).Level(); got != want {
			t.Errorf("%s.Level() = %d, want %d", id, got, want)
		}
	}
}

func childIDs(n *Node) []string {
	var out []string
	for _, c := range n.Children {
		out = append(out, c.ID)
	}
	return out
}

// TestFigure3Insert reproduces the Fig 3 insert (E3): inserting S5 (level 1,
// 20 units) over S3 leaves highestLevel = 2 and LevelNodes = {20, 60, 120}.
func TestFigure3Insert(t *testing.T) {
	tree := buildPaperTree(t)
	if err := tree.Insert("S5", unit, "S3"); err != nil {
		t.Fatalf("Insert(S5 over S3): %v", err)
	}
	if got := tree.HighestLevel(); got != 2 {
		t.Fatalf("highestLevel = %d, want 2", got)
	}
	want := []float64{20, 60, 120}
	if got := levelSeconds(tree); !reflect.DeepEqual(got, want) {
		t.Fatalf("LevelNodes = %v, want %v", got, want)
	}
	// Structure: S5 took S3's slot; S3 and S3's old child S4 are S5's
	// children, in sequence order.
	s5 := tree.Find("S5")
	if got := s5.Level(); got != 1 {
		t.Fatalf("S5.Level() = %d, want 1", got)
	}
	if got := childIDs(s5); !reflect.DeepEqual(got, []string{"S3", "S4"}) {
		t.Fatalf("S5 children = %v, want [S3 S4]", got)
	}
	if got := childIDs(tree.Root()); !reflect.DeepEqual(got, []string{"S1", "S5"}) {
		t.Fatalf("root children = %v, want [S1 S5]", got)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestFigure4Delete reproduces the Fig 4 delete (E4): deleting S5 (level 1)
// hands its children to its sibling S1.
func TestFigure4Delete(t *testing.T) {
	tree := buildPaperTree(t)
	if err := tree.Insert("S5", unit, "S3"); err != nil {
		t.Fatalf("setup insert: %v", err)
	}
	if err := tree.Delete("S5"); err != nil {
		t.Fatalf("Delete(S5): %v", err)
	}
	if tree.Find("S5") != nil {
		t.Fatal("S5 still present after delete")
	}
	// S5's children (S3, S4) are adopted by the left sibling S1, appended
	// after S1's own child S2.
	if got := childIDs(tree.Find("S1")); !reflect.DeepEqual(got, []string{"S2", "S3", "S4"}) {
		t.Fatalf("S1 children = %v, want [S2 S3 S4]", got)
	}
	if got := childIDs(tree.Root()); !reflect.DeepEqual(got, []string{"S1"}) {
		t.Fatalf("root children = %v, want [S1]", got)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDeleteAdoptionByRightSibling(t *testing.T) {
	tree := New()
	for _, s := range []struct {
		id    string
		level int
	}{{"R", 0}, {"A", 1}, {"B", 1}} {
		if err := tree.Attach(s.id, unit, s.level); err != nil {
			t.Fatalf("Attach(%s): %v", s.id, err)
		}
	}
	// Give A a child, then delete A: B (the right sibling) must adopt it
	// and the child must come before B's own children in sequence.
	if err := tree.Attach("B1", unit, 2); err != nil { // child of rightmost level-1 = B
		t.Fatalf("Attach(B1): %v", err)
	}
	a := tree.Find("A")
	child := &Node{ID: "A1", Duration: unit}
	child.parent = a
	a.Children = append(a.Children, child)
	tree.index["A1"] = child

	if err := tree.Delete("A"); err != nil {
		t.Fatalf("Delete(A): %v", err)
	}
	if got := childIDs(tree.Find("B")); !reflect.DeepEqual(got, []string{"A1", "B1"}) {
		t.Fatalf("B children = %v, want [A1 B1]", got)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDeleteLeafNoChildren(t *testing.T) {
	tree := buildPaperTree(t)
	if err := tree.Delete("S2"); err != nil {
		t.Fatalf("Delete(S2): %v", err)
	}
	if got := childIDs(tree.Find("S1")); got != nil {
		t.Fatalf("S1 children = %v, want none", got)
	}
	if tree.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", tree.Len())
	}
}

func TestDeleteOnlyChildWithChildrenFails(t *testing.T) {
	tree := New()
	for _, s := range []struct {
		id    string
		level int
	}{{"R", 0}, {"A", 1}, {"A1", 2}} {
		if err := tree.Attach(s.id, unit, s.level); err != nil {
			t.Fatalf("Attach(%s): %v", s.id, err)
		}
	}
	err := tree.Delete("A")
	if !errors.Is(err, ErrNoAdopter) {
		t.Fatalf("Delete(A) = %v, want ErrNoAdopter", err)
	}
}

func TestDeleteRootRules(t *testing.T) {
	tree := buildPaperTree(t)
	if err := tree.Delete("S0"); !errors.Is(err, ErrDeleteRoot) {
		t.Fatalf("Delete(root with children) = %v, want ErrDeleteRoot", err)
	}
	solo := New()
	if err := solo.Attach("only", unit, 0); err != nil {
		t.Fatal(err)
	}
	if err := solo.Delete("only"); err != nil {
		t.Fatalf("Delete(sole root): %v", err)
	}
	if solo.Root() != nil || solo.Len() != 0 {
		t.Fatal("tree not empty after deleting sole root")
	}
}

func TestDetachRemovesSubtree(t *testing.T) {
	tree := buildPaperTree(t)
	if err := tree.Detach("S1"); err != nil {
		t.Fatalf("Detach(S1): %v", err)
	}
	if tree.Find("S1") != nil || tree.Find("S2") != nil {
		t.Fatal("detached subtree still indexed")
	}
	if got := childIDs(tree.Root()); !reflect.DeepEqual(got, []string{"S3"}) {
		t.Fatalf("root children = %v, want [S3]", got)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDetachRootEmptiesTree(t *testing.T) {
	tree := buildPaperTree(t)
	if err := tree.Detach("S0"); err != nil {
		t.Fatalf("Detach(S0): %v", err)
	}
	if tree.Root() != nil || tree.Len() != 0 {
		t.Fatal("tree not empty after detaching root")
	}
}

func TestAttachErrors(t *testing.T) {
	tree := New()
	if err := tree.Attach("", unit, 0); err == nil {
		t.Error("empty id accepted")
	}
	if err := tree.Attach("x", -unit, 0); err == nil {
		t.Error("negative duration accepted")
	}
	if err := tree.Attach("x", unit, -1); err == nil {
		t.Error("negative level accepted")
	}
	if err := tree.Attach("orphan", unit, 1); !errors.Is(err, ErrNoParent) {
		t.Errorf("Attach at level 1 of empty tree = %v, want ErrNoParent", err)
	}
	if err := tree.Attach("root", unit, 0); err != nil {
		t.Fatal(err)
	}
	if err := tree.Attach("root2", unit, 0); !errors.Is(err, ErrHasRoot) {
		t.Errorf("second root = %v, want ErrHasRoot", err)
	}
	if err := tree.Attach("root", unit, 1); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate id = %v, want ErrDuplicateID", err)
	}
	if err := tree.Attach("deep", unit, 2); !errors.Is(err, ErrNoParent) {
		t.Errorf("skip level = %v, want ErrNoParent", err)
	}
}

func TestInsertErrors(t *testing.T) {
	tree := buildPaperTree(t)
	if err := tree.Insert("S1", unit, "S3"); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate insert = %v, want ErrDuplicateID", err)
	}
	if err := tree.Insert("N", unit, "missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("insert over missing = %v, want ErrNotFound", err)
	}
	if err := tree.Insert("N", unit, "S0"); !errors.Is(err, ErrDeleteRoot) {
		t.Errorf("insert over root = %v, want ErrDeleteRoot", err)
	}
	if err := tree.Insert("N", -unit, "S3"); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestExtractLevelSequences(t *testing.T) {
	tree := buildPaperTree(t)
	tests := []struct {
		level int
		want  []string
	}{
		{0, []string{"S0"}},
		{1, []string{"S0", "S1", "S3"}},
		{2, []string{"S0", "S1", "S2", "S3", "S4"}},
		{9, []string{"S0", "S1", "S2", "S3", "S4"}}, // beyond highest: full
	}
	for _, tt := range tests {
		if got := tree.ExtractLevelIDs(tt.level); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("ExtractLevelIDs(%d) = %v, want %v", tt.level, got, tt.want)
		}
	}
}

func TestLevelNodesMatchesPresentationTime(t *testing.T) {
	tree := buildPaperTree(t)
	lv := tree.LevelNodes()
	for q := range lv {
		if got := tree.PresentationTime(q); got != lv[q] {
			t.Errorf("PresentationTime(%d) = %v, LevelNodes[%d] = %v", q, got, q, lv[q])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tree := buildPaperTree(t)
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	restored := New()
	if err := json.Unmarshal(data, restored); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := restored.Validate(); err != nil {
		t.Fatalf("restored tree invalid: %v", err)
	}
	if got, want := restored.ExtractLevelIDs(9), tree.ExtractLevelIDs(9); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored sequence %v, want %v", got, want)
	}
	if got, want := levelSeconds(restored), levelSeconds(tree); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored LevelNodes %v, want %v", got, want)
	}
}

func TestJSONEmptyTree(t *testing.T) {
	empty := New()
	data, err := json.Marshal(empty)
	if err != nil {
		t.Fatalf("marshal empty: %v", err)
	}
	if string(data) != "null" {
		t.Fatalf("empty tree marshals to %s, want null", data)
	}
	restored := New()
	if err := json.Unmarshal(data, restored); err != nil {
		t.Fatalf("unmarshal empty: %v", err)
	}
	if restored.Root() != nil {
		t.Fatal("restored empty tree has a root")
	}
}

func TestJSONRejectsDuplicates(t *testing.T) {
	bad := []byte(`{"id":"a","durationSec":1,"children":[{"id":"a","durationSec":1}]}`)
	restored := New()
	if err := json.Unmarshal(bad, restored); err == nil {
		t.Fatal("duplicate IDs accepted in decode")
	}
}

func TestStringRendering(t *testing.T) {
	if got := New().String(); got != "(empty)" {
		t.Fatalf("empty String() = %q", got)
	}
	tree := buildPaperTree(t)
	want := "S0 (20s)\n  S1 (20s)\n    S2 (20s)\n  S3 (20s)\n    S4 (20s)\n"
	if got := tree.String(); got != want {
		t.Fatalf("String() =\n%s\nwant\n%s", got, want)
	}
}

func TestZeroValueTreeUsable(t *testing.T) {
	var tree Tree
	if err := tree.Attach("r", unit, 0); err != nil {
		t.Fatalf("zero-value Attach: %v", err)
	}
	if tree.Find("r") == nil {
		t.Fatal("zero-value Find failed")
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("zero-value Validate: %v", err)
	}
}

package contenttree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// randomTree builds a pseudo-random valid tree from a seed: a root plus up
// to n attaches at levels chosen to always have a parent.
func randomTree(seed int64, n int) *Tree {
	rng := rand.New(rand.NewSource(seed))
	tree := New()
	_ = tree.Attach("n0", time.Duration(1+rng.Intn(60))*time.Second, 0)
	for i := 1; i <= n; i++ {
		level := 1 + rng.Intn(tree.HighestLevel()+1) // ≤ highest+1, so a parent exists
		id := "n" + itoa(i)
		_ = tree.Attach(id, time.Duration(1+rng.Intn(60))*time.Second, level)
	}
	return tree
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// TestLevelTimeMonotone is the E11 property: "the higher level gives the
// longer presentation" — LevelNodes must be non-decreasing in level, and
// strictly increasing whenever the deeper level is non-empty with positive
// durations.
func TestLevelTimeMonotone(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		tree := randomTree(seed, int(sz%40)+1)
		lv := tree.LevelNodes()
		for q := 1; q < len(lv); q++ {
			if lv[q] < lv[q-1] {
				return false
			}
			// Levels present in a tree built by Attach always hold at least
			// one node with positive duration, so the increase is strict.
			if lv[q] == lv[q-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAttachAlwaysValid checks that any sequence of valid attaches keeps the
// well-defined property.
func TestAttachAlwaysValid(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		tree := randomTree(seed, int(sz%50)+1)
		return tree.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestInsertPreservesTotalTimePlusNew checks the Fig 3 accounting property:
// an insert adds exactly the new node's duration to the full presentation
// time and never deepens the tree by more than one level.
func TestInsertPreservesTotalTimePlusNew(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomTree(seed, int(sz%30)+2)
		before := tree.PresentationTime(tree.HighestLevel())
		depthBefore := tree.HighestLevel()

		// Pick any non-root node as the target.
		ids := tree.IDs()
		var target string
		for _, id := range ids {
			n := tree.Find(id)
			if n != tree.Root() && rng.Intn(3) == 0 {
				target = id
				break
			}
		}
		if target == "" {
			for _, id := range ids {
				if tree.Find(id) != tree.Root() {
					target = id
					break
				}
			}
		}
		if target == "" {
			return true // single-node tree: nothing to insert over
		}
		newDur := time.Duration(1+rng.Intn(30)) * time.Second
		if err := tree.Insert("inserted", newDur, target); err != nil {
			return false
		}
		if tree.Validate() != nil {
			return false
		}
		after := tree.PresentationTime(tree.HighestLevel())
		if after != before+newDur {
			return false
		}
		return tree.HighestLevel() <= depthBefore+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestDeletePreservesOtherNodes checks that deleting a node removes exactly
// that node's duration and keeps every other node reachable.
func TestDeletePreservesOtherNodes(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		tree := randomTree(seed, int(sz%30)+2)
		ids := tree.IDs()
		victimIdx := rng.Intn(len(ids))
		victim := ids[victimIdx]
		node := tree.Find(victim)
		if node == tree.Root() {
			return true // covered by dedicated root tests
		}
		total := tree.PresentationTime(tree.HighestLevel())
		count := tree.Len()
		err := tree.Delete(victim)
		if err != nil {
			// The only acceptable failure is a childful node with no
			// adopting sibling.
			return len(node.Children) > 0
		}
		if tree.Validate() != nil {
			return false
		}
		if tree.Len() != count-1 {
			return false
		}
		newTotal := tree.PresentationTime(tree.HighestLevel() + 10)
		return newTotal == total-node.Duration
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestExtractLevelPrefixProperty checks that lower-level extractions are
// subsequences of higher-level ones (the summary is always contained in the
// detailed presentation, in order).
func TestExtractLevelPrefixProperty(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		tree := randomTree(seed, int(sz%40)+1)
		high := tree.HighestLevel()
		full := tree.ExtractLevelIDs(high)
		for q := 0; q < high; q++ {
			if !isSubsequence(tree.ExtractLevelIDs(q), full) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func isSubsequence(sub, full []string) bool {
	i := 0
	for _, s := range full {
		if i < len(sub) && sub[i] == s {
			i++
		}
	}
	return i == len(sub)
}

// TestJSONRoundTripProperty checks marshal/unmarshal identity on random trees.
func TestJSONRoundTripProperty(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		tree := randomTree(seed, int(sz%40)+1)
		data, err := tree.MarshalJSON()
		if err != nil {
			return false
		}
		restored := New()
		if err := restored.UnmarshalJSON(data); err != nil {
			return false
		}
		if restored.Validate() != nil {
			return false
		}
		h := tree.HighestLevel()
		return reflect.DeepEqual(restored.ExtractLevelIDs(h), tree.ExtractLevelIDs(h)) &&
			reflect.DeepEqual(restored.LevelNodes(), tree.LevelNodes())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestRunSmokeScenario is the end-to-end harness test: a small swarm of
// every workload kind through a real origin/registry/edge cluster over
// the in-process network. It runs in a few seconds and under -race.
func TestRunSmokeScenario(t *testing.T) {
	s, err := ParseScenario("smoke?rate=60")
	if err != nil {
		t.Fatal(err)
	}
	const clients, edges = 16, 2
	rep, err := Run(context.Background(), s, clients, edges)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Schema != ReportSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Sessions.Requested != clients {
		t.Errorf("requested = %d, want %d", rep.Sessions.Requested, clients)
	}
	if rep.Sessions.Failed > 0 {
		t.Errorf("%d sessions failed: %v", rep.Sessions.Failed, rep.Sessions.Errors)
	}
	if rep.Sessions.Completed != clients {
		t.Errorf("completed = %d, want %d", rep.Sessions.Completed, clients)
	}
	// Every client entered through the registry.
	if rep.Cluster.Redirects < float64(clients) {
		t.Errorf("redirects = %v, want >= %d", rep.Cluster.Redirects, clients)
	}
	if rep.Cluster.NoEdge != 0 {
		t.Errorf("noEdge = %v", rep.Cluster.NoEdge)
	}
	if len(rep.Cluster.Edges) != edges {
		t.Fatalf("edge reports = %d", len(rep.Cluster.Edges))
	}
	// Both edges took traffic and mirrored from the origin.
	var bytesSent, misses, firstPkt float64
	for _, e := range rep.Cluster.Edges {
		bytesSent += e.BytesSent
		misses += e.CacheMisses
		firstPkt += e.FirstPacketMs
	}
	if firstPkt <= 0 {
		t.Error("no edge reported VOD first-packet latency")
	}
	if bytesSent <= 0 {
		t.Error("edges sent no bytes")
	}
	if misses < 1 {
		t.Error("no edge ever pulled from the origin")
	}
	if rep.Cluster.OriginMirrors < 1 {
		t.Errorf("origin mirror fetches = %v", rep.Cluster.OriginMirrors)
	}
	if rep.Throughput.Bytes <= 0 || rep.Throughput.VideoFrames <= 0 {
		t.Errorf("throughput = %+v", rep.Throughput)
	}
	if rep.StartupMs.Max <= 0 {
		t.Errorf("startup quantiles empty: %+v", rep.StartupMs)
	}
	if rep.WallSeconds <= 0 || rep.WallSeconds > 30 {
		t.Errorf("wall = %vs", rep.WallSeconds)
	}

	// The record round-trips as JSON with its identifying fields intact.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{"schema", "scenario", "config", "sessions", "startupMs", "rebuffer", "cluster", "throughput"} {
		if _, ok := back[key]; !ok {
			t.Errorf("report JSON missing %q", key)
		}
	}
	if back["scenario"] != "smoke" {
		t.Errorf("scenario field = %v", back["scenario"])
	}
	if rep.Summary() == "" {
		t.Error("empty summary")
	}
}

// TestRunRejectsInvalidInput covers the argument guard rails.
func TestRunRejectsInvalidInput(t *testing.T) {
	s, err := ParseScenario("smoke")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), s, 0, 1); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := Run(context.Background(), Scenario{}, 1, 1); err == nil {
		t.Error("zero-value scenario accepted")
	}
	if _, err := StartCluster(context.Background(), s, 0, time.Second); err == nil {
		t.Error("zero edges accepted")
	}
}

// TestRunSessionKindsDeterministic replays one session id twice and
// expects the identical request target.
func TestRunSessionKindsDeterministic(t *testing.T) {
	s, err := ParseScenario("smoke")
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartCluster(context.Background(), s, 1, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AwaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	a := c.RunSession(context.Background(), 3, KindSeek)
	b := c.RunSession(context.Background(), 3, KindSeek)
	if a.URL != b.URL {
		t.Fatalf("same id drew different targets: %q vs %q", a.URL, b.URL)
	}
	if a.Err != "" || b.Err != "" {
		t.Fatalf("session errors: %q / %q", a.Err, b.Err)
	}
}

package loadgen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Offsets expands the arrival process into n session-start offsets from
// the scenario start, in non-decreasing order. Offsets are
// deterministic for a given (process, rate, burst, seed, n), so reruns
// of a scenario fire the same schedule.
func (a Arrival) Offsets(n int, seed int64) ([]time.Duration, error) {
	if n < 0 {
		return nil, fmt.Errorf("loadgen: negative client count %d", n)
	}
	if a.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: arrival rate %v must be positive", a.Rate)
	}
	out := make([]time.Duration, n)
	switch a.Process {
	case "uniform":
		gap := time.Duration(float64(time.Second) / a.Rate)
		for i := range out {
			out[i] = time.Duration(i) * gap
		}
	case "poisson":
		rng := rand.New(rand.NewSource(seed))
		var at time.Duration
		for i := range out {
			out[i] = at
			at += time.Duration(rng.ExpFloat64() / a.Rate * float64(time.Second))
		}
	case "burst":
		if a.Burst < 1 {
			return nil, fmt.Errorf("loadgen: burst arrival needs burst >= 1, got %d", a.Burst)
		}
		// Groups of Burst arrive together, spaced so the long-run rate
		// still averages Rate clients per second.
		gap := time.Duration(float64(a.Burst) / a.Rate * float64(time.Second))
		for i := range out {
			out[i] = time.Duration(i/a.Burst) * gap
		}
	case "flash":
		// A flash crowd: every arrival is an independent uniform draw
		// over the whole window (n/Rate seconds, preserving the long-run
		// rate), then sorted — the crowd has no pacing at all, so
		// arbitrarily deep pile-ups happen at the front of the window.
		rng := rand.New(rand.NewSource(seed))
		window := float64(n) / a.Rate * float64(time.Second)
		for i := range out {
			out[i] = time.Duration(rng.Float64() * window)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q (have poisson, uniform, burst, flash)", a.Process)
	}
	return out, nil
}

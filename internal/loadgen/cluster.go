package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/encoder"
	"repro/internal/netsim"
	"repro/internal/relay"
	"repro/internal/streaming"
	"repro/internal/vclock"
)

// Cluster hosts names on the in-process network.
const (
	originHost   = "origin.lod"
	registryHost = "registry.lod"
)

// RegistryURL is the base URL virtual clients send every request to;
// the registry 307-redirects them to an edge.
const RegistryURL = "http://" + registryHost

// Cluster is one in-process streaming cluster: an origin holding the
// scenario's content, a registry balancing redirects, and N edges
// pulling through from the origin — every role a real HTTP server on a
// netsim.MemNet, wired exactly like the cmd/lodserver roles, plus the
// heartbeat loops between them.
type Cluster struct {
	Scenario Scenario
	Origin   *streaming.Server
	Registry *relay.Registry
	Edges    []*relay.Edge
	EdgeIDs  []string

	// AssetNames, GroupNames, LiveNames are the request targets the
	// scenario's content produced.
	AssetNames []string
	GroupNames []string
	LiveNames  []string

	net     *netsim.MemNet
	client  *http.Client
	servers []*http.Server
	cancel  context.CancelFunc
	done    []chan struct{} // live pumps + heartbeat loops
}

// StartCluster builds and starts the cluster for a scenario: content
// encoded and registered on the origin, live channels pumping in real
// time for liveFor, edges registered and heartbeating. Call Close when
// done.
func StartCluster(s Scenario, edges int, liveFor time.Duration) (*Cluster, error) {
	if edges < 1 {
		return nil, fmt.Errorf("loadgen: need at least one edge, got %d", edges)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Cluster{
		Scenario: s,
		Origin:   streaming.NewServer(nil),
		Registry: relay.NewRegistry(nil),
		net:      netsim.NewMemNet(),
		cancel:   cancel,
	}
	c.client = c.net.Client()
	if err := c.populateOrigin(ctx, liveFor); err != nil {
		c.Close()
		return nil, err
	}

	if err := c.serve(originHost, c.Origin.Handler()); err != nil {
		c.Close()
		return nil, err
	}
	if err := c.serve(registryHost, c.Registry.Handler()); err != nil {
		c.Close()
		return nil, err
	}

	for i := 0; i < edges; i++ {
		id := fmt.Sprintf("edge-%d", i+1)
		srv := streaming.NewServer(nil)
		edge := relay.NewEdge("http://"+originHost, srv)
		edge.Client = c.client
		edge.CacheBytes = s.CacheBytes
		host := id + ".lod"
		if err := c.serve(host, edge.Handler()); err != nil {
			c.Close()
			return nil, err
		}
		c.Edges = append(c.Edges, edge)
		c.EdgeIDs = append(c.EdgeIDs, id)

		hb := make(chan struct{})
		c.done = append(c.done, hb)
		go func(id, host string, srv *streaming.Server) {
			defer close(hb)
			_ = relay.RunHeartbeats(ctx, c.client, RegistryURL,
				relay.NodeInfo{ID: id, URL: "http://" + host},
				func() relay.NodeStats { return relay.SnapshotStats(srv) },
				250*time.Millisecond)
		}(id, host, srv)
	}
	return c, nil
}

// populateOrigin encodes the scenario's content and registers it:
// stored assets, multi-rate groups (lean + rich variants), and live
// channels pumped at presentation pace for liveFor.
func (c *Cluster) populateOrigin(ctx context.Context, liveFor time.Duration) error {
	s := c.Scenario
	slides := s.Slides
	if slides < 1 {
		slides = 2
	}
	encodeWith := func(profileName string, duration time.Duration, live bool) ([]byte, error) {
		profile, err := codec.ByName(profileName)
		if err != nil {
			return nil, err
		}
		lec, err := capture.NewLecture(capture.LectureConfig{
			Title: "loadgen " + s.Name, Duration: duration, Profile: profile,
			SlideCount: slides, Seed: s.Seed,
		})
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if _, err := encoder.EncodeLecture(lec, encoder.Config{Live: live, LeadTime: s.LeadTime}, &buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}

	base, err := encodeWith(s.Profile, s.AssetDuration, false)
	if err != nil {
		return err
	}
	for i := 0; i < s.Assets; i++ {
		name := fmt.Sprintf("lec-%d", i)
		if _, err := c.Origin.RegisterAsset(name, asf.NewReader(bytes.NewReader(base))); err != nil {
			return err
		}
		c.AssetNames = append(c.AssetNames, name)
	}

	if s.Groups > 0 {
		rich, err := encodeWith(s.RichProfile, s.AssetDuration, false)
		if err != nil {
			return err
		}
		for i := 0; i < s.Groups; i++ {
			name := fmt.Sprintf("grp-%d", i)
			lean, err := c.Origin.RegisterAsset(name+"-lean", asf.NewReader(bytes.NewReader(base)))
			if err != nil {
				return err
			}
			richA, err := c.Origin.RegisterAsset(name+"-rich", asf.NewReader(bytes.NewReader(rich)))
			if err != nil {
				return err
			}
			g, err := c.Origin.CreateRateGroup(name)
			if err != nil {
				return err
			}
			g.AddVariant(lean)
			g.AddVariant(richA)
			c.GroupNames = append(c.GroupNames, name)
		}
	}

	if s.LiveChannels > 0 {
		liveBytes, err := encodeWith(s.Profile, liveFor, true)
		if err != nil {
			return err
		}
		h, packets, _, err := asf.ReadAll(bytes.NewReader(liveBytes))
		if err != nil {
			return err
		}
		for i := 0; i < s.LiveChannels; i++ {
			name := fmt.Sprintf("live-%d", i)
			ch, err := c.Origin.CreateChannel(name, h)
			if err != nil {
				return err
			}
			c.LiveNames = append(c.LiveNames, name)
			pump := make(chan struct{})
			c.done = append(c.done, pump)
			go func(ch *streaming.Channel) {
				defer close(pump)
				defer ch.Close()
				_ = ch.PublishPaced(ctx, vclock.Real{}, packets)
			}(ch)
		}
	}
	return nil
}

// serve mounts h as an HTTP server on the named memnet host.
func (c *Cluster) serve(host string, h http.Handler) error {
	l, err := c.net.Listen(host)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: h}
	c.servers = append(c.servers, srv)
	go srv.Serve(l)
	return nil
}

// Client returns the swarm's shared HTTP client over the in-process
// network. It follows redirects and is safe for concurrent use.
func (c *Cluster) Client() *http.Client { return c.client }

// AwaitReady blocks until every edge is registered and alive in the
// registry, so the first client join cannot race the cluster coming up.
func (c *Cluster) AwaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		alive := 0
		for _, n := range c.Registry.Nodes() {
			if n.Alive {
				alive++
			}
		}
		if alive >= len(c.Edges) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: %d/%d edges alive after %v", alive, len(c.Edges), timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// Close stops heartbeats and live pumps, closes every HTTP server, and
// tears the in-process network down.
func (c *Cluster) Close() {
	c.cancel()
	for _, srv := range c.servers {
		_ = srv.Close()
	}
	c.net.Close()
	for _, d := range c.done {
		<-d
	}
}

package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/catalog"
	"repro/internal/client"
	"repro/internal/codec"
	"repro/internal/edgecache"
	"repro/internal/encoder"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/relay"
	"repro/internal/streaming"
)

// Cluster hosts names on the in-process network.
const (
	originHost   = "origin.lod"
	registryHost = "registry.lod"
)

// RegistryURL is the base URL virtual clients send every request to;
// the registry 307-redirects them to an edge.
const RegistryURL = "http://" + registryHost

// Cluster is one in-process streaming cluster: an origin holding the
// scenario's content, a registry balancing redirects, and N edges
// pulling through from the origin — every role a real HTTP server on a
// netsim.MemNet, wired exactly like the cmd/lodserver roles, plus the
// heartbeat loops between them.
//
// Edges are individually killable (KillEdge) and restartable
// (RestartEdge), which is how the churn scenarios exercise failover:
// a kill severs the edge's connections and silences its heartbeats
// without telling the registry — death is discovered by client failure
// reports or TTL expiry, exactly like a crashed process. The registry
// itself is killable too (KillRegistry/RestartRegistry): a restart
// builds a brand-new relay.Registry over the same on-disk catalog
// state, exactly like a registry process crash-looping on a durable
// -state-dir.
type Cluster struct {
	Scenario Scenario
	Origin   *streaming.Server
	Edges    []*relay.Edge
	EdgeIDs  []string

	// AssetNames, GroupNames, LiveNames are the request targets the
	// scenario's content produced.
	AssetNames []string
	GroupNames []string
	LiveNames  []string

	// pop is the compiled Scenario.Popularity model; sessionSpec draws
	// every content name through it.
	pop popularity

	net     *netsim.MemNet
	ctx     context.Context
	client  *http.Client
	sdk     *client.Client // the session SDK every virtual client opens through
	servers []*http.Server // origin + registry
	cancel  context.CancelFunc
	done    []chan struct{} // live pumps
	wg      sync.WaitGroup  // heartbeat loops, one per edge up-time

	edgeMu sync.Mutex
	edgeRT []*edgeRuntime

	// Registry runtime: the relay.Registry instance is replaceable
	// mid-run (KillRegistry/RestartRegistry), so everything reading it
	// goes through regMu and the Registry() accessor. regAccum banks the
	// metric deltas of dead registry instances — a restarted registry
	// starts its counters at zero, so the run's registry numbers are the
	// sum over every instance's window (RegistryWindowDelta).
	regMu       sync.Mutex
	registry    *relay.Registry
	regSrv      *http.Server
	regAlive    bool
	regBase     metrics.Snapshot // window start within the current instance
	regAccum    metrics.Snapshot // banked deltas of previous instances
	regRestarts int
	stateDir    string // registry catalog state; "" = memory-only store
	ownStateDir bool   // we created stateDir; remove it in Close
}

// edgeRuntime is the killable part of one edge: its listener-facing
// HTTP server and heartbeat loop. The relay.Edge and its
// streaming.Server persist across kill/restart (a warm restart — the
// mirror cache and metric history survive; what dies are the
// connections and the cluster's knowledge of the node).
type edgeRuntime struct {
	id, host string
	edge     *relay.Edge
	handler  http.Handler
	httpSrv  *http.Server
	stopHB   context.CancelFunc
	alive    bool
}

// StartCluster builds and starts the cluster for a scenario: content
// encoded and registered on the origin, live channels pumping in real
// time for liveFor, edges registered and heartbeating. The cluster's
// background work (live pumps, heartbeats) stops when ctx is cancelled
// or Close is called, whichever comes first. Call Close when done.
func StartCluster(ctx context.Context, s Scenario, edges int, liveFor time.Duration) (*Cluster, error) {
	if edges < 1 {
		return nil, fmt.Errorf("loadgen: need at least one edge, got %d", edges)
	}
	if s.Churn.Enabled() && !s.Churn.KillRegistry && edges < 2 {
		return nil, fmt.Errorf("loadgen: churn needs at least two edges to fail over between, got %d", edges)
	}
	ctx, cancel := context.WithCancel(ctx)
	c := &Cluster{
		Scenario: s,
		Origin:   streaming.NewServer(nil),
		net:      netsim.NewMemNet(),
		ctx:      ctx,
		cancel:   cancel,
	}
	pop, err := parsePopularity(s.Popularity)
	if err != nil {
		cancel()
		return nil, err
	}
	c.pop = pop
	// Registry churn needs on-disk catalog state to restore from; a
	// registry that is never killed keeps its state in memory only.
	if s.Churn.KillRegistry {
		dir, err := os.MkdirTemp("", "lod-state-")
		if err != nil {
			cancel()
			return nil, err
		}
		c.stateDir, c.ownStateDir = dir, true
	}
	store, err := catalog.Open(c.stateDir)
	if err != nil {
		cancel()
		if c.ownStateDir {
			_ = os.RemoveAll(c.stateDir)
		}
		return nil, err
	}
	c.registry = relay.NewRegistryWithStore(nil, store)
	c.client = c.net.Client()
	c.sdk = client.New(RegistryURL,
		client.WithHTTPClient(c.client),
		client.WithBackoff(s.FailoverBackoff))
	if err := c.populateOrigin(ctx, liveFor); err != nil {
		c.Close()
		return nil, err
	}

	if err := c.serve(originHost, c.Origin.Handler()); err != nil {
		c.Close()
		return nil, err
	}
	if err := c.serveRegistryLocked(); err != nil {
		c.Close()
		return nil, err
	}

	for i := 0; i < edges; i++ {
		id := fmt.Sprintf("edge-%d", i+1)
		srv := streaming.NewServer(nil)
		edge := relay.NewEdge("http://"+originHost, srv)
		edge.Client = c.client
		edge.CacheBytes = s.CacheBytes
		if s.CachePolicy == "lru" {
			// The recency-only baseline the flashcrowd/zipf benchmark
			// pairs compare frequency-gated admission against.
			edge.ConfigureCache(edgecache.Config{Policy: edgecache.LRU})
		}
		rt := &edgeRuntime{id: id, host: id + ".lod", edge: edge, handler: edge.Handler()}
		c.Edges = append(c.Edges, edge)
		c.EdgeIDs = append(c.EdgeIDs, id)
		c.edgeRT = append(c.edgeRT, rt)
		if err := c.startEdgeLocked(rt); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// startEdgeLocked brings one edge up: listener, HTTP server, heartbeat
// loop. Callers hold edgeMu or are still single-threaded in
// StartCluster.
func (c *Cluster) startEdgeLocked(rt *edgeRuntime) error {
	l, err := c.net.Listen(rt.host)
	if err != nil {
		return err
	}
	// A fresh http.Server per up-time: a closed one cannot be reused.
	rt.httpSrv = &http.Server{Handler: rt.handler}
	go rt.httpSrv.Serve(l)

	hbCtx, stop := context.WithCancel(c.ctx)
	rt.stopHB = stop
	srv := rt.edge.Server
	edge := rt.edge
	hb := &relay.Heartbeats{
		Client:   c.client,
		Registry: RegistryURL,
		Info:     relay.NodeInfo{ID: rt.id, URL: "http://" + rt.host},
		Snapshot: func() relay.NodeStats { return relay.SnapshotStats(srv) },
		Interval: 250 * time.Millisecond,
		Clock:    c.Scenario.clock(),
		// Heartbeat answers carry the catalog version; when it moves the
		// edge re-fetches the catalog and drops stale mirrors.
		OnCatalog: func(uint64) { _ = edge.SyncCatalogFrom(c.client, RegistryURL) },
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		_ = hb.Run(hbCtx)
	}()
	rt.alive = true
	return nil
}

// KillEdge abruptly stops edge i (0-based): its HTTP server closes —
// severing every in-flight session mid-stream and freeing its host —
// and its heartbeats stop. The registry is deliberately NOT told;
// clients discover the death and report it, or the TTL expires. Kill of
// an already-down edge is an error.
func (c *Cluster) KillEdge(i int) error {
	c.edgeMu.Lock()
	defer c.edgeMu.Unlock()
	if i < 0 || i >= len(c.edgeRT) {
		return fmt.Errorf("loadgen: no edge %d", i)
	}
	rt := c.edgeRT[i]
	if !rt.alive {
		return fmt.Errorf("loadgen: edge %s already down", rt.id)
	}
	rt.stopHB()
	_ = rt.httpSrv.Close()
	rt.alive = false
	return nil
}

// RestartEdge brings a killed edge back up: new listener, new HTTP
// server, fresh heartbeat loop whose registration revives the node at
// the registry. The edge's mirror cache survives (warm restart).
func (c *Cluster) RestartEdge(i int) error {
	c.edgeMu.Lock()
	defer c.edgeMu.Unlock()
	if i < 0 || i >= len(c.edgeRT) {
		return fmt.Errorf("loadgen: no edge %d", i)
	}
	rt := c.edgeRT[i]
	if rt.alive {
		return fmt.Errorf("loadgen: edge %s already up", rt.id)
	}
	return c.startEdgeLocked(rt)
}

// EdgeAlive reports whether edge i is currently serving.
func (c *Cluster) EdgeAlive(i int) bool {
	c.edgeMu.Lock()
	defer c.edgeMu.Unlock()
	return i >= 0 && i < len(c.edgeRT) && c.edgeRT[i].alive
}

// Registry returns the current registry instance. It changes across
// KillRegistry/RestartRegistry, so callers must not cache it across a
// churn window.
func (c *Cluster) Registry() *relay.Registry {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	return c.registry
}

// serveRegistryLocked mounts the current registry instance on the
// registry host. Callers hold regMu or are still single-threaded in
// StartCluster.
func (c *Cluster) serveRegistryLocked() error {
	l, err := c.net.Listen(registryHost)
	if err != nil {
		return err
	}
	c.regSrv = &http.Server{Handler: c.registry.Handler()}
	go c.regSrv.Serve(l)
	c.regAlive = true
	return nil
}

// KillRegistry abruptly stops the registry: its HTTP server closes —
// refusing every control-plane request — and its catalog store shuts
// down. Edges and clients are deliberately NOT told; heartbeats fail
// until the restart and clients retry through their failover budget,
// exactly like a crashed registry process. The dead instance's metric
// window is banked so the run's registry numbers span every instance.
func (c *Cluster) KillRegistry() error {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	if !c.regAlive {
		return fmt.Errorf("loadgen: registry already down")
	}
	d := c.registry.Metrics().Snapshot().Delta(c.regBase)
	if c.regAccum == nil {
		c.regAccum = metrics.Snapshot{}
	}
	for k, v := range d {
		c.regAccum[k] += v
	}
	_ = c.regSrv.Close()
	c.registry.Close()
	c.regAlive = false
	return nil
}

// RestartRegistry brings a killed registry back as a brand-new
// relay.Registry restored from the on-disk catalog state the dead one
// persisted: node membership (draining marks included) comes back from
// the snapshot, so the restored registry redirects clients before any
// edge has re-heartbeated.
func (c *Cluster) RestartRegistry() error {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	if c.regAlive {
		return fmt.Errorf("loadgen: registry already up")
	}
	store, err := catalog.Open(c.stateDir)
	if err != nil {
		return err
	}
	c.registry = relay.NewRegistryWithStore(nil, store)
	c.regBase = nil // fresh instance: counters start at zero
	c.regRestarts++
	return c.serveRegistryLocked()
}

// RegistryAlive reports whether the registry is currently serving.
func (c *Cluster) RegistryAlive() bool {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	return c.regAlive
}

// RegistryRestarts counts RestartRegistry calls so far.
func (c *Cluster) RegistryRestarts() int {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	return c.regRestarts
}

// MarkRegistryWindow starts the registry metric window the next
// RegistryWindowDelta reports over, discarding banked history.
func (c *Cluster) MarkRegistryWindow() {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	c.regBase = c.registry.Metrics().Snapshot()
	c.regAccum = nil
}

// RegistryWindowDelta returns the registry metric delta since
// MarkRegistryWindow, summed across every registry instance that served
// during the window (kill/restart cycles included).
func (c *Cluster) RegistryWindowDelta() metrics.Snapshot {
	c.regMu.Lock()
	defer c.regMu.Unlock()
	out := metrics.Snapshot{}
	for k, v := range c.regAccum {
		out[k] += v
	}
	for k, v := range c.registry.Metrics().Snapshot().Delta(c.regBase) {
		out[k] += v
	}
	return out
}

// populateOrigin encodes the scenario's content and registers it:
// stored assets, multi-rate groups (lean + rich variants), and live
// channels pumped at presentation pace for liveFor.
func (c *Cluster) populateOrigin(ctx context.Context, liveFor time.Duration) error {
	s := c.Scenario
	slides := s.Slides
	if slides < 1 {
		slides = 2
	}
	encodeWith := func(profileName string, duration time.Duration, live bool) ([]byte, error) {
		profile, err := codec.ByName(profileName)
		if err != nil {
			return nil, err
		}
		lec, err := capture.NewLecture(capture.LectureConfig{
			Title: "loadgen " + s.Name, Duration: duration, Profile: profile,
			SlideCount: slides, Seed: s.Seed,
		})
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if _, err := encoder.EncodeLecture(lec, encoder.Config{Live: live, LeadTime: s.LeadTime}, &buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}

	base, err := encodeWith(s.Profile, s.AssetDuration, false)
	if err != nil {
		return err
	}
	for i := 0; i < s.Assets; i++ {
		name := fmt.Sprintf("lec-%d", i)
		if _, err := c.Origin.RegisterAsset(name, asf.NewReader(bytes.NewReader(base))); err != nil {
			return err
		}
		// Announce in the registry's catalog, so restored registries and
		// edge invalidation see the real published content set.
		if _, err := c.registry.PublishAsset(name); err != nil {
			return err
		}
		c.AssetNames = append(c.AssetNames, name)
	}

	if s.Groups > 0 {
		rich, err := encodeWith(s.RichProfile, s.AssetDuration, false)
		if err != nil {
			return err
		}
		for i := 0; i < s.Groups; i++ {
			name := fmt.Sprintf("grp-%d", i)
			lean, err := c.Origin.RegisterAsset(name+"-lean", asf.NewReader(bytes.NewReader(base)))
			if err != nil {
				return err
			}
			richA, err := c.Origin.RegisterAsset(name+"-rich", asf.NewReader(bytes.NewReader(rich)))
			if err != nil {
				return err
			}
			g, err := c.Origin.CreateRateGroup(name)
			if err != nil {
				return err
			}
			g.AddVariant(lean)
			g.AddVariant(richA)
			if _, err := c.registry.PublishGroup(name, []string{name + "-lean", name + "-rich"}); err != nil {
				return err
			}
			c.GroupNames = append(c.GroupNames, name)
		}
	}

	if s.LiveChannels > 0 {
		liveBytes, err := encodeWith(s.Profile, liveFor, true)
		if err != nil {
			return err
		}
		h, packets, _, err := asf.ReadAll(bytes.NewReader(liveBytes))
		if err != nil {
			return err
		}
		for i := 0; i < s.LiveChannels; i++ {
			name := fmt.Sprintf("live-%d", i)
			ch, err := c.Origin.CreateChannel(name, h)
			if err != nil {
				return err
			}
			c.LiveNames = append(c.LiveNames, name)
			pump := make(chan struct{})
			c.done = append(c.done, pump)
			go func(ch *streaming.Channel) {
				defer close(pump)
				defer ch.Close()
				_ = ch.PublishPaced(ctx, s.clock(), packets)
			}(ch)
		}
	}
	return nil
}

// serve mounts h as an HTTP server on the named memnet host.
func (c *Cluster) serve(host string, h http.Handler) error {
	l, err := c.net.Listen(host)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: h}
	c.servers = append(c.servers, srv)
	go srv.Serve(l)
	return nil
}

// Client returns the swarm's shared HTTP client over the in-process
// network. It follows redirects and is safe for concurrent use.
func (c *Cluster) Client() *http.Client { return c.client }

// AwaitReady blocks until every edge is registered and alive in the
// registry, so the first client join cannot race the cluster coming up.
func (c *Cluster) AwaitReady(timeout time.Duration) error {
	clock := c.Scenario.clock()
	deadline := clock.Now().Add(timeout)
	for {
		alive := 0
		for _, n := range c.Registry().Nodes() {
			if n.Alive {
				alive++
			}
		}
		if alive >= len(c.Edges) {
			return nil
		}
		if clock.Now().After(deadline) {
			return fmt.Errorf("loadgen: %d/%d edges alive after %v", alive, len(c.Edges), timeout)
		}
		clock.Sleep(time.Millisecond)
	}
}

// Close stops heartbeats and live pumps, closes every HTTP server
// (edges included), and tears the in-process network down.
func (c *Cluster) Close() {
	c.cancel()
	for _, srv := range c.servers {
		_ = srv.Close()
	}
	c.regMu.Lock()
	if c.regAlive {
		_ = c.regSrv.Close()
		c.regAlive = false
	}
	if c.registry != nil {
		c.registry.Close() // idempotent: a killed instance is already closed
	}
	if c.ownStateDir {
		_ = os.RemoveAll(c.stateDir)
	}
	c.regMu.Unlock()
	c.edgeMu.Lock()
	for _, rt := range c.edgeRT {
		if rt.alive {
			_ = rt.httpSrv.Close()
			rt.alive = false
		}
	}
	c.edgeMu.Unlock()
	c.net.Close()
	for _, d := range c.done {
		<-d
	}
	c.wg.Wait()
}

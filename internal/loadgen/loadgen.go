// Package loadgen is the cluster-scale load-generation harness: it
// drives swarms of virtual clients — mixed VOD, seek, multi-rate-group
// and live workloads under configurable arrival processes and
// per-client link shaping — against a real in-process streaming
// cluster (origin + registry + N edges), and folds what happened into
// one machine-readable benchmark record (BENCH_*.json, schema
// documented in BENCHMARKS.md).
//
// Everything runs inside one process but over real HTTP: the cluster
// roles listen on a netsim.MemNet (net.Pipe connections, so thousands
// of concurrent sessions never touch a TCP port), clients follow the
// registry's 307 redirects exactly like production clients, and edges
// pull through from the origin and heartbeat their load like
// cmd/lodserver wires them. Client-side behaviour is the real
// internal/player in realtime mode (anchored to the first packet), so
// stalls are genuine rebuffer events; cluster-side numbers are metric
// snapshot deltas (metrics.Snapshot) over the run window, so they
// isolate exactly the benchmark's traffic.
//
// The entry point is Run; cmd/lodbench wraps it:
//
//	lodbench -scenario mixed -clients 1000 -edges 3
//
// Scenarios are deterministic in their choices (workload mix, arrival
// offsets, seek positions, link jitter are all seeded); the measured
// latencies are wall-clock and vary by machine, which is the point —
// record them per machine in EXPERIMENTS.md.
package loadgen

import (
	"fmt"
	"math/rand"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/vclock"
)

// Kind names one virtual-client workload.
type Kind string

// Workload kinds.
const (
	// KindVOD plays a stored asset front to back.
	KindVOD Kind = "vod"
	// KindSeek plays a stored asset from a seeded ?start offset.
	KindSeek Kind = "seek"
	// KindGroup requests a multi-rate group with the client's link
	// bandwidth and plays whichever variant the server selects.
	KindGroup Kind = "group"
	// KindLive joins a live broadcast and plays until it ends.
	KindLive Kind = "live"
	// KindLiveFan joins a live broadcast and drains the raw container
	// as fast as the server can write it — no player, no pacing, no
	// packet parsing. Fan-out capacity benchmarks use it so the
	// server's per-subscriber write path is the bottleneck being
	// measured, not the broadcast's presentation rate.
	KindLiveFan Kind = "livefan"
)

// Share is one weighted entry of a scenario's workload mix.
type Share struct {
	Kind   Kind `json:"kind"`
	Weight int  `json:"weight"`
}

// ChurnSpec schedules edge kills (and optional restarts) over a run:
// the scenario's churn driver abruptly stops an edge — severing its
// in-flight sessions and silencing its heartbeats, exactly like a
// crashed process — at FirstKill after the swarm starts and every Every
// thereafter, rotating round-robin over the cluster's edges. When
// RestartAfter is positive the killed edge comes back up and re-registers
// that long after each kill; the driver is sequential, so at most one
// edge is down at a time and the cluster always has somewhere to fail
// over to. Zero Kills disables churn.
//
// KillRegistry redirects the whole schedule at the control plane: each
// kill takes down the registry instead of an edge, and RestartAfter
// later a brand-new registry instance comes up restored from the
// durable catalog snapshot (Cluster.RestartRegistry). RestartAfter must
// be positive in that mode — a run cannot end without a registry to
// snapshot.
type ChurnSpec struct {
	Kills        int           `json:"kills"`
	FirstKill    time.Duration `json:"-"`
	Every        time.Duration `json:"-"`
	RestartAfter time.Duration `json:"-"`
	KillRegistry bool          `json:"killRegistry,omitempty"`
}

// Enabled reports whether the spec schedules any kills.
func (c ChurnSpec) Enabled() bool { return c.Kills > 0 }

// Arrival describes how client session starts are spread over time.
type Arrival struct {
	// Process is "poisson" (exponential gaps), "uniform" (fixed gaps),
	// or "burst" (groups of Burst arriving together).
	Process string `json:"process"`
	// Rate is the long-run arrival rate in clients per second.
	Rate float64 `json:"ratePerSec"`
	// Burst is the group size for the "burst" process.
	Burst int `json:"burst,omitempty"`
}

// Scenario is one named, fully parameterized workload. All choices a
// scenario makes (mix, arrivals, seeks, link jitter) derive from Seed,
// so two runs of the same scenario issue the same requests in the same
// pattern; only the measured timings differ.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description"`

	// Content on the origin.
	Assets        int           `json:"assets"`       // stored lectures lec-0..lec-{n-1}
	AssetDuration time.Duration `json:"-"`            // presentation length of each
	Profile       string        `json:"profile"`      // base codec profile
	RichProfile   string        `json:"richProfile"`  // rich variant for groups
	Groups        int           `json:"groups"`       // multi-rate groups grp-0..
	LiveChannels  int           `json:"liveChannels"` // live broadcasts live-0..
	Slides        int           `json:"slides"`       // slides per lecture
	// LeadTime is how far ahead of each packet's presentation time the
	// content allows the server to send it (encoder.Config.LeadTime).
	// Zero means a zero-slack schedule where any transit jitter counts
	// as a stall; realistic scenarios give the client buffer some
	// send-ahead to absorb jitter, so stalls mean the cluster fell
	// behind, not that the schedule was unmeetable by construction.
	LeadTime time.Duration `json:"-"`

	// Client behaviour.
	Mix               []Share     `json:"mix"`
	Arrival           Arrival     `json:"arrival"`
	Link              netsim.Link `json:"-"`                  // per-client prototype; cloned per client
	ClientBandwidth   int64       `json:"clientBandwidthBps"` // declared on /group?bw=
	JitterBufferDepth int         `json:"jitterBufferDepth"`
	// FailoverAttempts is how many extra registry round trips a client
	// makes after an edge refuses its connection, answers 5xx, or drops
	// the stream mid-session — VOD resumes at the last received media
	// offset via ?start=. Zero disables failover: the first failure
	// fails the session.
	FailoverAttempts int `json:"failoverAttempts"`
	// FailoverBackoff is the base of the bounded exponential backoff
	// between attempts (relay.FailoverBackoff).
	FailoverBackoff time.Duration `json:"-"`
	// Popularity weights which stored asset (and group or live channel)
	// each client demands: "" or "uniform" (every name equally likely),
	// "zipf:s=<s>[,v=<v>]" (Zipf-distributed ranks, lec-0 the most
	// popular), or "hot:frac=<f>" (probability f of the single hot
	// name, uniform otherwise). See popularity.go for the grammar.
	Popularity string `json:"popularity,omitempty"`

	// Cluster knobs.
	// CachePolicy selects the edges' mirror-cache policy: "" or
	// "tinylfu" (the default frequency-gated admission), or "lru"
	// (recency-only eviction — the baseline the flashcrowd benchmark
	// pair compares against).
	CachePolicy string `json:"cachePolicy,omitempty"`

	CacheBytes int64 `json:"cacheBytes"` // per-edge mirror budget; 0 = unbounded
	// Churn kills (and restarts) edges mid-run; see ChurnSpec. Running a
	// churn scenario needs at least two edges.
	Churn ChurnSpec `json:"churn"`

	// Clock drives every wait the harness itself makes — arrival
	// offsets, churn schedules, readiness polls, heartbeats, failover
	// backoff, and the first-byte/startup stamps. Nil uses the real
	// clock; a simulated clock makes the whole run schedule
	// deterministic. Not part of the scenario's identity, so it is
	// excluded from the JSON record.
	Clock vclock.Clock `json:"-"`

	Seed int64 `json:"seed"`
}

// clock returns the scenario's clock, defaulting to the wall clock.
func (s Scenario) clock() vclock.Clock {
	if s.Clock != nil {
		return s.Clock
	}
	return vclock.Real{}
}

// Validate reports the first structural problem with the scenario.
func (s Scenario) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("loadgen: scenario has no name")
	case s.Assets < 1:
		return fmt.Errorf("loadgen: scenario %s: needs at least one asset", s.Name)
	case s.AssetDuration <= 0:
		return fmt.Errorf("loadgen: scenario %s: asset duration %v", s.Name, s.AssetDuration)
	case s.LeadTime < 0:
		return fmt.Errorf("loadgen: scenario %s: negative lead time %v", s.Name, s.LeadTime)
	case len(s.Mix) == 0:
		return fmt.Errorf("loadgen: scenario %s: empty workload mix", s.Name)
	case s.FailoverAttempts < 0:
		return fmt.Errorf("loadgen: scenario %s: negative failover attempts %d", s.Name, s.FailoverAttempts)
	case s.FailoverBackoff < 0:
		return fmt.Errorf("loadgen: scenario %s: negative failover backoff %v", s.Name, s.FailoverBackoff)
	case s.Churn.Kills < 0:
		return fmt.Errorf("loadgen: scenario %s: negative churn kills %d", s.Name, s.Churn.Kills)
	case s.Churn.FirstKill < 0 || s.Churn.RestartAfter < 0:
		return fmt.Errorf("loadgen: scenario %s: negative churn delay", s.Name)
	case s.Churn.Kills > 1 && s.Churn.Every <= 0:
		return fmt.Errorf("loadgen: scenario %s: %d churn kills need a positive interval", s.Name, s.Churn.Kills)
	case s.Churn.KillRegistry && s.Churn.Kills > 0 && s.Churn.RestartAfter <= 0:
		return fmt.Errorf("loadgen: scenario %s: registry churn needs a positive restartafter", s.Name)
	}
	total := 0
	for _, sh := range s.Mix {
		if sh.Weight <= 0 {
			return fmt.Errorf("loadgen: scenario %s: non-positive weight for %q", s.Name, sh.Kind)
		}
		switch sh.Kind {
		case KindVOD, KindSeek, KindGroup, KindLive, KindLiveFan:
		default:
			return fmt.Errorf("loadgen: scenario %s: unknown workload kind %q", s.Name, sh.Kind)
		}
		if sh.Kind == KindGroup && s.Groups < 1 {
			return fmt.Errorf("loadgen: scenario %s: group workload but no groups", s.Name)
		}
		if (sh.Kind == KindLive || sh.Kind == KindLiveFan) && s.LiveChannels < 1 {
			return fmt.Errorf("loadgen: scenario %s: live workload but no live channels", s.Name)
		}
		total += sh.Weight
	}
	if total <= 0 {
		return fmt.Errorf("loadgen: scenario %s: zero total mix weight", s.Name)
	}
	if _, err := parsePopularity(s.Popularity); err != nil {
		return fmt.Errorf("loadgen: scenario %s: %v", s.Name, err)
	}
	switch s.CachePolicy {
	case "", "tinylfu", "lru":
	default:
		return fmt.Errorf("loadgen: scenario %s: unknown cache policy %q (have tinylfu, lru)", s.Name, s.CachePolicy)
	}
	if err := s.Link.Validate(); err != nil {
		return err
	}
	if _, err := s.Arrival.Offsets(1, s.Seed); err != nil {
		return err
	}
	return nil
}

// pickKind draws one workload kind from the mix.
func (s Scenario) pickKind(rng *rand.Rand) Kind {
	total := 0
	for _, sh := range s.Mix {
		total += sh.Weight
	}
	n := rng.Intn(total)
	for _, sh := range s.Mix {
		if n < sh.Weight {
			return sh.Kind
		}
		n -= sh.Weight
	}
	return s.Mix[len(s.Mix)-1].Kind
}

// Scenarios returns the named scenarios, sorted by name. "mixed" is the
// cluster benchmark of record; "smoke" is the seconds-long CI variant;
// "churn" kills and restarts edges mid-run and demands the swarm
// survive via failover. Every scenario gives clients a few failover
// attempts so a transient refusal doesn't fail an otherwise-healthy
// run.
func Scenarios() []Scenario {
	out := []Scenario{
		{
			Name:        "churn",
			Description: "edges killed and restarted mid-run; sessions must survive via registry failover and ?start resume",
			Assets:      4, AssetDuration: 4 * time.Second,
			Profile: "modem-56k", LiveChannels: 1, Slides: 3,
			Mix: []Share{
				{KindVOD, 60}, {KindSeek, 25}, {KindLive, 15},
			},
			Arrival:           Arrival{Process: "poisson", Rate: 100},
			Link:              netsim.Link{BitsPerSecond: 2_000_000, Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond},
			JitterBufferDepth: 2,
			LeadTime:          500 * time.Millisecond,
			FailoverAttempts:  6, FailoverBackoff: 100 * time.Millisecond,
			Churn: ChurnSpec{Kills: 2, FirstKill: time.Second, Every: 2 * time.Second, RestartAfter: 1500 * time.Millisecond},
			Seed:  1,
		},
		{
			Name: "fanout",
			Description: "raw-drain live fan-out: every client rips one broadcast as fast as the server can write it; " +
				"measures per-packet serving cost (perf block is the headline)",
			Assets:        1, // content template for the broadcast; no VOD traffic
			AssetDuration: 3 * time.Second,
			Profile:       "dsl-300k", LiveChannels: 1, Slides: 2,
			Mix: []Share{{KindLiveFan, 100}},
			// Everyone piles in at once so the whole broadcast runs at
			// full subscriber count. No link shaping: a modeled last
			// mile would become the bottleneck instead of the serving
			// path.
			Arrival:          Arrival{Process: "burst", Rate: 2000, Burst: 500},
			LeadTime:         300 * time.Millisecond,
			FailoverAttempts: 3, FailoverBackoff: 50 * time.Millisecond,
			Seed: 1,
		},
		{
			Name: "flashcrowd",
			Description: "a flash crowd piles onto a few hot lectures through a tight edge cache; admission must keep " +
				"the hot set resident against long-tail churn and miss coalescing must collapse the duplicate origin pulls " +
				"(cache.originBytes and cache.perAsset maxEdgePulls are the headline; run with cachepolicy=lru for the baseline pair)",
			Assets: 96, AssetDuration: 800 * time.Millisecond,
			Profile: "modem-56k", Slides: 2,
			Mix: []Share{{KindVOD, 100}},
			// The pile-up spans many session lifetimes, so mid-tail assets
			// go idle (unpinned) between demands — the window where capacity
			// pressure can evict them and admission policy decides whether
			// the one-hit-wonder tail churns them out. Actively streamed
			// assets are pinned under either policy, so the pair isolates
			// the replacement decision, not crash-protection.
			Arrival:          Arrival{Process: "flash", Rate: 40},
			Link:             netsim.Link{BitsPerSecond: 10_000_000, Latency: 2 * time.Millisecond},
			Popularity:       "zipf:s=1.4",
			CacheBytes:       768 << 10, // ~a quarter of one edge's catalog share
			LeadTime:         300 * time.Millisecond,
			FailoverAttempts: 3, FailoverBackoff: 50 * time.Millisecond,
			Seed: 1,
		},
		{
			Name:        "mixed",
			Description: "the cluster benchmark of record: VOD + seek + multi-rate + live against origin/registry/edges",
			Assets:      6, AssetDuration: 4 * time.Second,
			Profile: "modem-56k", RichProfile: "dsl-300k",
			Groups: 2, LiveChannels: 1, Slides: 3,
			Mix: []Share{
				{KindVOD, 50}, {KindSeek, 15}, {KindGroup, 20}, {KindLive, 15},
			},
			Arrival:         Arrival{Process: "poisson", Rate: 150},
			Link:            netsim.Link{BitsPerSecond: 768_000, Latency: 15 * time.Millisecond, Jitter: 5 * time.Millisecond},
			ClientBandwidth: 768_000, JitterBufferDepth: 4,
			LeadTime:         500 * time.Millisecond,
			FailoverAttempts: 3, FailoverBackoff: 100 * time.Millisecond,
			Seed: 1,
		},
		{
			Name:        "vod",
			Description: "pure stored-asset replay; isolates mirror pull-through and edge cache behaviour",
			Assets:      8, AssetDuration: 4 * time.Second,
			Profile: "modem-56k", Slides: 3,
			Mix:              []Share{{KindVOD, 100}},
			Arrival:          Arrival{Process: "poisson", Rate: 200},
			Link:             netsim.Link{BitsPerSecond: 2_000_000, Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond},
			LeadTime:         500 * time.Millisecond,
			FailoverAttempts: 3, FailoverBackoff: 100 * time.Millisecond,
			Seed: 1,
		},
		{
			Name:        "seek",
			Description: "seek-heavy replay; stresses the keyframe index and anchored tail playback",
			Assets:      4, AssetDuration: 6 * time.Second,
			Profile: "modem-56k", Slides: 4,
			Mix:              []Share{{KindVOD, 30}, {KindSeek, 70}},
			Arrival:          Arrival{Process: "uniform", Rate: 150},
			Link:             netsim.Link{BitsPerSecond: 2_000_000, Latency: 5 * time.Millisecond},
			LeadTime:         500 * time.Millisecond,
			FailoverAttempts: 3, FailoverBackoff: 100 * time.Millisecond,
			Seed: 1,
		},
		{
			Name:        "live",
			Description: "flash-crowd joins of live broadcasts; stresses relay fan-out and catch-up bursts",
			Assets:      1, AssetDuration: 4 * time.Second,
			Profile: "modem-56k", LiveChannels: 2, Slides: 2,
			Mix:              []Share{{KindLive, 100}},
			Arrival:          Arrival{Process: "burst", Rate: 150, Burst: 50},
			Link:             netsim.Link{BitsPerSecond: 2_000_000, Latency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond},
			LeadTime:         500 * time.Millisecond,
			FailoverAttempts: 3, FailoverBackoff: 100 * time.Millisecond,
			Seed: 1,
		},
		{
			Name: "registrychurn",
			Description: "the registry is killed mid-run and restarted from its durable catalog snapshot; " +
				"sessions must ride out the control-plane outage on their failover budget and the restored " +
				"registry must serve redirects from restored membership before any edge re-heartbeats " +
				"(cluster.snapshotRedirects is the headline)",
			Assets: 6, AssetDuration: 4 * time.Second,
			Profile: "modem-56k", RichProfile: "dsl-300k",
			Groups: 2, LiveChannels: 1, Slides: 3,
			Mix: []Share{
				{KindVOD, 50}, {KindSeek, 15}, {KindGroup, 20}, {KindLive, 15},
			},
			Arrival:         Arrival{Process: "poisson", Rate: 100},
			Link:            netsim.Link{BitsPerSecond: 2_000_000, Latency: 5 * time.Millisecond, Jitter: 2 * time.Millisecond},
			ClientBandwidth: 768_000, JitterBufferDepth: 4,
			LeadTime: 500 * time.Millisecond,
			// A generous retry budget: clients arriving during the outage
			// must outlast it (bounded backoff sums to well past the
			// 1.2s restart window).
			FailoverAttempts: 8, FailoverBackoff: 100 * time.Millisecond,
			Churn: ChurnSpec{Kills: 1, FirstKill: 2 * time.Second, RestartAfter: 1200 * time.Millisecond, KillRegistry: true},
			Seed:  1,
		},
		{
			Name: "scale",
			Description: "10× the cluster: tens of thousands of mixed-workload clients over a 16-edge fleet; " +
				"exercises the sharded load drivers and the registry's consistent-hash redirect path " +
				"(cluster.redirectsPerSec and the shards block are the headline)",
			Assets: 32, AssetDuration: 2 * time.Second,
			Profile: "modem-56k", RichProfile: "dsl-300k",
			Groups: 4, LiveChannels: 2, Slides: 2,
			Mix: []Share{
				{KindVOD, 55}, {KindSeek, 20}, {KindGroup, 15}, {KindLive, 10},
			},
			// A fast arrival ramp so the fleet holds thousands of
			// concurrent sessions; a light link keeps the modeled last
			// mile from becoming the bottleneck being measured.
			Arrival:         Arrival{Process: "poisson", Rate: 1200},
			Link:            netsim.Link{BitsPerSecond: 10_000_000, Latency: 2 * time.Millisecond},
			ClientBandwidth: 768_000, JitterBufferDepth: 2,
			LeadTime:         500 * time.Millisecond,
			FailoverAttempts: 3, FailoverBackoff: 50 * time.Millisecond,
			Seed: 1,
		},
		{
			Name:        "smoke",
			Description: "seconds-long CI mixed workload over a bounded edge cache",
			Assets:      3, AssetDuration: 1500 * time.Millisecond,
			Profile: "modem-56k", RichProfile: "isdn-128k",
			Groups: 1, LiveChannels: 1, Slides: 2,
			Mix: []Share{
				{KindVOD, 50}, {KindSeek, 20}, {KindGroup, 20}, {KindLive, 10},
			},
			Arrival:         Arrival{Process: "uniform", Rate: 120},
			Link:            netsim.Link{BitsPerSecond: 10_000_000, Latency: 2 * time.Millisecond},
			ClientBandwidth: 128_000, JitterBufferDepth: 2,
			CacheBytes:       1 << 20,
			LeadTime:         300 * time.Millisecond,
			FailoverAttempts: 3, FailoverBackoff: 50 * time.Millisecond,
			Seed: 1,
		},
		{
			Name: "zipf",
			Description: "Zipf-popular VOD over a long-tail catalog and a tight edge cache; frequency-gated admission " +
				"must hold the hot head resident against one-hit-wonder tail churn " +
				"(cache.hitRate vs a cachepolicy=lru baseline is the headline)",
			Assets: 192, AssetDuration: 800 * time.Millisecond,
			Profile: "modem-56k", RichProfile: "isdn-128k",
			Groups: 2, Slides: 2,
			Mix:              []Share{{KindVOD, 85}, {KindGroup, 15}},
			Arrival:          Arrival{Process: "poisson", Rate: 60},
			Link:             netsim.Link{BitsPerSecond: 10_000_000, Latency: 2 * time.Millisecond},
			Popularity:       "zipf:s=1.3",
			CacheBytes:       768 << 10, // well under the catalog's footprint
			LeadTime:         300 * time.Millisecond,
			FailoverAttempts: 3, FailoverBackoff: 50 * time.Millisecond,
			Seed: 1,
		},
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ParseScenario resolves a scenario spec: a scenario name, optionally
// followed by query-style overrides, e.g.
//
//	mixed
//	mixed?assets=12&duration=2s&process=burst&rate=400&burst=100&seed=7
//
// Recognized override keys: assets, duration, process, rate, burst,
// seed, leadtime, cachebytes, popularity (the asset-popularity model,
// e.g. popularity=zipf:s=1.1), cachepolicy (tinylfu or lru), failover
// (retry attempts), backoff, kills, firstkill, every, restartafter,
// killregistry (the churn schedule). Unknown names and keys are
// errors, as are overrides that leave the scenario invalid.
func ParseScenario(spec string) (Scenario, error) {
	name, query, hasQuery := strings.Cut(spec, "?")
	var sc Scenario
	found := false
	for _, s := range Scenarios() {
		if s.Name == name {
			sc, found = s, true
			break
		}
	}
	if !found {
		names := make([]string, 0)
		for _, s := range Scenarios() {
			names = append(names, s.Name)
		}
		return Scenario{}, fmt.Errorf("loadgen: unknown scenario %q (have %s)", name, strings.Join(names, ", "))
	}
	if hasQuery {
		vals, err := url.ParseQuery(query)
		if err != nil {
			return Scenario{}, fmt.Errorf("loadgen: scenario overrides: %w", err)
		}
		for key, vv := range vals {
			v := vv[len(vv)-1]
			var err error
			switch key {
			case "assets":
				sc.Assets, err = strconv.Atoi(v)
			case "duration":
				sc.AssetDuration, err = time.ParseDuration(v)
			case "process":
				sc.Arrival.Process = v
			case "rate":
				sc.Arrival.Rate, err = strconv.ParseFloat(v, 64)
			case "burst":
				sc.Arrival.Burst, err = strconv.Atoi(v)
			case "seed":
				sc.Seed, err = strconv.ParseInt(v, 10, 64)
			case "leadtime":
				sc.LeadTime, err = time.ParseDuration(v)
			case "cachebytes":
				sc.CacheBytes, err = strconv.ParseInt(v, 10, 64)
			case "popularity":
				sc.Popularity = v
			case "cachepolicy":
				sc.CachePolicy = v
			case "failover":
				sc.FailoverAttempts, err = strconv.Atoi(v)
			case "backoff":
				sc.FailoverBackoff, err = time.ParseDuration(v)
			case "kills":
				sc.Churn.Kills, err = strconv.Atoi(v)
			case "firstkill":
				sc.Churn.FirstKill, err = time.ParseDuration(v)
			case "every":
				sc.Churn.Every, err = time.ParseDuration(v)
			case "restartafter":
				sc.Churn.RestartAfter, err = time.ParseDuration(v)
			case "killregistry":
				sc.Churn.KillRegistry, err = strconv.ParseBool(v)
			default:
				return Scenario{}, fmt.Errorf("loadgen: unknown scenario override %q", key)
			}
			if err != nil {
				return Scenario{}, fmt.Errorf("loadgen: scenario override %s=%q: %v", key, v, err)
			}
		}
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

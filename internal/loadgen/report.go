package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/edgecache"
	"repro/internal/metrics"
)

// ReportSchema identifies the BENCH_*.json layout; bump it when a
// field changes meaning. Every field is documented in BENCHMARKS.md.
const ReportSchema = "lod-bench/1"

// Quantiles summarizes a distribution in milliseconds.
type Quantiles struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

func quantiles(vals []float64) Quantiles {
	if len(vals) == 0 {
		return Quantiles{}
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Quantiles{
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(sorted)),
	}
}

// RunConfig records the knobs the run was launched with.
type RunConfig struct {
	Clients          int      `json:"clients"`
	Edges            int      `json:"edges"`
	Seed             int64    `json:"seed"`
	Arrival          Arrival  `json:"arrival"`
	Assets           int      `json:"assets"`
	AssetDurationSec float64  `json:"assetDurationSec"`
	Profile          string   `json:"profile"`
	RichProfile      string   `json:"richProfile,omitempty"`
	Groups           int      `json:"groups"`
	LiveChannels     int      `json:"liveChannels"`
	Mix              []Share  `json:"mix"`
	Link             LinkSpec `json:"link"`
	LeadTimeMs       float64  `json:"leadTimeMs"`
	CacheBytes       int64    `json:"cacheBytes"`
	// Popularity/CachePolicy are the asset-popularity model and the
	// edges' cache policy the run used; absent for uniform popularity
	// and the default (tinylfu) policy.
	Popularity  string `json:"popularity,omitempty"`
	CachePolicy string `json:"cachePolicy,omitempty"`
	// FailoverAttempts/FailoverBackoffMs are the clients' retry budget
	// after an edge failure; see Scenario.
	FailoverAttempts  int     `json:"failoverAttempts"`
	FailoverBackoffMs float64 `json:"failoverBackoffMs,omitempty"`
	// Churn is the edge kill/restart schedule the run executed; absent
	// when the scenario had none.
	Churn *ChurnConfig `json:"churn,omitempty"`
	// Shards is how many shard drivers split the client population
	// (RunSharded); the session population itself is shard-invariant.
	Shards int `json:"shards"`
}

// ShardInfo is one shard driver's summary in the record: which
// contiguous slice of the population it owned and how it fared. The
// latency distributions are NOT summarized per shard — quantiles are
// computed once over the union of raw samples (averaging per-shard
// p99s yields a number that is not a percentile of anything).
type ShardInfo struct {
	Index   int `json:"index"`
	Clients int `json:"clients"`
	// WallSeconds is t0 → the shard's last session finishing; the
	// spread across shards is the merge-skew the scale scenario watches.
	WallSeconds float64 `json:"wallSeconds"`
	Completed   int     `json:"completed"`
	Failed      int     `json:"failed"`
}

// ChurnConfig is the JSON form of a scenario's churn schedule.
type ChurnConfig struct {
	Kills           int     `json:"kills"`
	FirstKillSec    float64 `json:"firstKillSec"`
	EverySec        float64 `json:"everySec"`
	RestartAfterSec float64 `json:"restartAfterSec"`
	// KillRegistry marks a control-plane churn run: the kills hit the
	// registry (restored from its durable snapshot) instead of edges.
	KillRegistry bool `json:"killRegistry,omitempty"`
}

// LinkSpec is the JSON form of the per-client link prototype.
type LinkSpec struct {
	BitsPerSecond int64   `json:"bitsPerSecond"`
	LatencyMs     float64 `json:"latencyMs"`
	JitterMs      float64 `json:"jitterMs"`
	LossRate      float64 `json:"lossRate"`
}

// SessionsInfo aggregates session outcomes.
type SessionsInfo struct {
	Requested int            `json:"requested"`
	Completed int            `json:"completed"`
	Failed    int            `json:"failed"`
	ByKind    map[string]int `json:"byKind"`
	// FailedOver counts completed sessions that needed at least one
	// failover — they survived an edge death rather than running clean.
	FailedOver int `json:"failedOver"`
	// Failovers/Retries are the totals across every session (failed
	// ones included): serving-edge failures ridden out, and extra
	// registry round trips of any kind.
	Failovers int `json:"failovers"`
	Retries   int `json:"retries"`
	// Errors maps failure text to occurrence count (at most a handful
	// of distinct strings survive; inspect failures with them).
	Errors map[string]int `json:"errors,omitempty"`
}

// RebufferInfo aggregates client stall (rebuffer) behaviour.
type RebufferInfo struct {
	SessionsWithStalls int     `json:"sessionsWithStalls"`
	Events             int     `json:"events"`
	TotalMs            float64 `json:"totalMs"`
	MeanPerSessionMs   float64 `json:"meanPerSessionMs"`
}

// ThroughputInfo aggregates delivered media.
type ThroughputInfo struct {
	Bytes             int64   `json:"bytes"`
	MeanBitsPerSecond float64 `json:"meanBitsPerSecond"`
	VideoFrames       int64   `json:"videoFrames"`
	BrokenFrames      int64   `json:"brokenFrames"`
	SlidesShown       int64   `json:"slidesShown"`
}

// PerfInfo is the hot-path serving-cost block of the record: how fast
// the cluster's servers (origin + every edge) wrote media packets over
// the run window, and what each written packet cost in allocations and
// wall time. The inputs are metric deltas (lod_packets_sent_total,
// lod_bytes_sent_total) and a runtime.MemStats delta captured around
// the client swarm, so the numbers isolate exactly the benchmark's
// traffic. AllocsPerPacket is the allocation-regression signal: the
// zero-copy fan-out keeps it flat as subscriber counts grow, and
// `make bench-profile` fails when any of these fields is zero.
type PerfInfo struct {
	// PacketsPerSec / BytesPerSec are server-side media packets and
	// payload bytes written per wall-clock second, summed across the
	// origin and every edge.
	PacketsPerSec float64 `json:"packetsPerSec"`
	BytesPerSec   float64 `json:"bytesPerSec"`
	// AllocsPerPacket is whole-process heap allocations per written
	// packet (runtime.MemStats Mallocs delta / packets). Client-side
	// allocations are included, so compare like scenarios only.
	AllocsPerPacket float64 `json:"allocsPerPacket"`
	// NsPerPacket is wall-clock nanoseconds per written packet. With
	// GOMAXPROCS=1 it bounds the CPU cost of serving one packet.
	NsPerPacket float64 `json:"nsPerPacket"`
}

// EdgeReport is one edge's metric delta over the run window.
type EdgeReport struct {
	ID              string  `json:"id"`
	Redirects       float64 `json:"redirects"`
	SessionsVOD     float64 `json:"sessionsVod"`
	SessionsLive    float64 `json:"sessionsLive"`
	PacketsSent     float64 `json:"packetsSent"`
	BytesSent       float64 `json:"bytesSent"`
	CacheHits       float64 `json:"cacheHits"`
	CacheMisses     float64 `json:"cacheMisses"`
	CacheEvictions  float64 `json:"cacheEvictions"`
	OriginBytes     float64 `json:"originBytes"`
	PacketsPaced    float64 `json:"packetsPaced"`
	FirstPacketMs   float64 `json:"firstPacketMsMean"`
	PacingLagMsMean float64 `json:"pacingLagMsMean"`
	// CoalescedPulls/AdmissionRejects/PrewarmFetches are the edge's
	// popularity-aware cache counters over the window: demands that
	// attached to an in-flight origin pull instead of issuing their own,
	// window candidates the frequency duel refused to admit, and
	// rate-group siblings fetched ahead of demand.
	CoalescedPulls   float64 `json:"coalescedPulls,omitempty"`
	AdmissionRejects float64 `json:"admissionRejects,omitempty"`
	PrewarmFetches   float64 `json:"prewarmFetches,omitempty"`
}

// AssetCacheStat is one asset's cache-demand ledger summed over every
// edge: local cache hits, origin pulls, and the worst single edge's
// pull count. The ledger survives eviction, so a hot asset that was
// churned out and re-pulled shows MaxEdgePulls > 1 — the duplicate-pull
// signal the flashcrowd smoke gate asserts on.
type AssetCacheStat struct {
	Name         string `json:"name"`
	Hits         int64  `json:"hits"`
	Pulls        int64  `json:"pulls"`
	MaxEdgePulls int64  `json:"maxEdgePulls"`
}

// CacheInfo is the edge-cache block of the record: the cluster-wide
// view of how the popularity-aware cache fared over the run window.
type CacheInfo struct {
	// Policy is the admission policy the edges ran ("tinylfu" or "lru").
	Policy string `json:"policy"`
	// HitRate is cluster-wide hits/(hits+misses) — the same number as
	// cluster.cacheHitRate, repeated here so the cache block is
	// self-contained for comparisons.
	HitRate float64 `json:"hitRate"`
	// OriginBytes is the bytes every edge pulled from the origin over
	// the window — the egress the cache exists to suppress.
	OriginBytes float64 `json:"originBytes"`
	// CoalescedPulls counts demands that attached to an in-flight pull
	// (singleflight followers) instead of fetching themselves.
	CoalescedPulls float64 `json:"coalescedPulls"`
	// AdmissionRejects/PrewarmFetches sum the per-edge counters.
	AdmissionRejects float64 `json:"admissionRejects"`
	PrewarmFetches   float64 `json:"prewarmFetches"`
	// DuplicatePulls counts origin pulls beyond the first per
	// (edge, asset) pair: 0 means no edge ever re-fetched an asset it
	// had already mirrored once.
	DuplicatePulls int64 `json:"duplicatePulls"`
	// PerAsset is the top-K (10) assets by demand (hits + pulls).
	PerAsset []AssetCacheStat `json:"perAsset,omitempty"`
}

// ClusterReport is the server-side view of the run, from metric
// snapshot deltas.
type ClusterReport struct {
	Redirects float64 `json:"redirects"`
	// RedirectsPerSec is the registry's redirect answer rate over the
	// run window — the control-plane throughput the consistent-hash
	// ring keeps flat as the fleet grows (BenchmarkRegistryRedirect
	// measures its upper bound).
	RedirectsPerSec float64 `json:"redirectsPerSec"`
	NoEdge          float64 `json:"noEdge"`
	CacheHitRate    float64 `json:"cacheHitRate"`
	OriginMirrors   float64 `json:"originMirrorFetches"`
	OriginBytes     float64 `json:"originBytesSent"`
	OriginLive      float64 `json:"originLiveRelays"`
	// NodeDeaths counts registry death marks over the run window, both
	// reasons folded (client failure reports and graceful drains);
	// FailureReports counts the raw client reports that drove them.
	NodeDeaths     float64 `json:"nodeDeaths"`
	FailureReports float64 `json:"failureReports"`
	// RegistryRestarts counts registry kill/restart cycles the run
	// executed (registry churn); SnapshotRedirects counts redirects a
	// restored registry answered from snapshot-restored membership
	// before the node's first post-restart heartbeat — the proof the
	// durable control plane routed traffic while edges were still
	// silent. Both absent when the registry never restarted.
	RegistryRestarts  int          `json:"registryRestarts,omitempty"`
	SnapshotRedirects float64      `json:"snapshotRedirects,omitempty"`
	Edges             []EdgeReport `json:"edges"`
}

// Report is the complete benchmark record emitted as BENCH_*.json.
type Report struct {
	Schema      string `json:"schema"`
	Scenario    string `json:"scenario"`
	Description string `json:"description"`
	GeneratedAt string `json:"generatedAt"`
	GoVersion   string `json:"goVersion"`
	NumCPU      int    `json:"numCPU"`
	// GoMaxProcs is the scheduler's P count for the run — the "per
	// core" divisor for the perf block (GOMAXPROCS=1 runs measure
	// per-core serving capacity directly).
	GoMaxProcs int `json:"goMaxProcs"`

	Config      RunConfig `json:"config"`
	WallSeconds float64   `json:"wallSeconds"`

	Sessions       SessionsInfo   `json:"sessions"`
	StartupMs      Quantiles      `json:"startupMs"`
	PacingJitterMs Quantiles      `json:"pacingJitterMs"`
	Rebuffer       RebufferInfo   `json:"rebuffer"`
	Throughput     ThroughputInfo `json:"throughput"`
	Perf           PerfInfo       `json:"perf"`
	Cluster        ClusterReport  `json:"cluster"`
	// Cache is the edge-cache block; absent when the run collected no
	// per-edge cache ledgers (merge fixtures, pre-cache records).
	Cache *CacheInfo `json:"cache,omitempty"`
	// Shards carries the per-shard driver timings; one entry per shard,
	// ordered by index.
	Shards []ShardInfo `json:"shards"`
}

// buildReport folds session results and metric deltas into the record.
// allocs is the process-wide heap-allocation count (MemStats.Mallocs
// delta) over the swarm window, feeding Perf.AllocsPerPacket.
func buildReport(s Scenario, clients, edges int, wall time.Duration, allocs uint64,
	results []SessionResult, registryDelta, originDelta metrics.Snapshot,
	edgeIDs []string, edgeDeltas []metrics.Snapshot, edgeCaches [][]edgecache.AssetStats,
	shards []ShardInfo, registryRestarts int) *Report {

	r := &Report{
		Schema:      ReportSchema,
		Scenario:    s.Name,
		Description: s.Description,
		//lodlint:allow wall-clock GeneratedAt is a record timestamp, not a schedule
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Config: RunConfig{
			Clients: clients, Edges: edges, Seed: s.Seed,
			Arrival: s.Arrival, Assets: s.Assets,
			AssetDurationSec: s.AssetDuration.Seconds(),
			Profile:          s.Profile, RichProfile: s.RichProfile,
			Groups: s.Groups, LiveChannels: s.LiveChannels, Mix: s.Mix,
			Link: LinkSpec{
				BitsPerSecond: s.Link.BitsPerSecond,
				LatencyMs:     float64(s.Link.Latency) / float64(time.Millisecond),
				JitterMs:      float64(s.Link.Jitter) / float64(time.Millisecond),
				LossRate:      s.Link.LossRate,
			},
			LeadTimeMs:        float64(s.LeadTime) / float64(time.Millisecond),
			CacheBytes:        s.CacheBytes,
			Popularity:        s.Popularity,
			CachePolicy:       s.CachePolicy,
			FailoverAttempts:  s.FailoverAttempts,
			FailoverBackoffMs: float64(s.FailoverBackoff) / float64(time.Millisecond),
		},
		WallSeconds: wall.Seconds(),
		Sessions:    SessionsInfo{Requested: len(results), ByKind: make(map[string]int)},
		Shards:      shards,
	}
	r.Config.Shards = len(shards)
	if s.Churn.Enabled() {
		r.Config.Churn = &ChurnConfig{
			Kills:           s.Churn.Kills,
			FirstKillSec:    s.Churn.FirstKill.Seconds(),
			EverySec:        s.Churn.Every.Seconds(),
			RestartAfterSec: s.Churn.RestartAfter.Seconds(),
			KillRegistry:    s.Churn.KillRegistry,
		}
	}

	var startups, skews []float64
	for _, res := range results {
		r.Sessions.ByKind[string(res.Kind)]++
		r.Sessions.Failovers += res.Failovers
		r.Sessions.Retries += res.Retries
		if res.Err != "" {
			r.Sessions.Failed++
			if r.Sessions.Errors == nil {
				r.Sessions.Errors = make(map[string]int)
			}
			msg := res.Err
			if len(msg) > 120 {
				msg = msg[:120]
			}
			r.Sessions.Errors[msg]++
			continue
		}
		r.Sessions.Completed++
		if res.Failovers > 0 {
			r.Sessions.FailedOver++
		}
		startups = append(startups, res.StartupMs)
		skews = append(skews, res.MaxSkewMs)
		if res.Stalls > 0 {
			r.Rebuffer.SessionsWithStalls++
		}
		r.Rebuffer.Events += res.Stalls
		r.Rebuffer.TotalMs += res.StallMs
		r.Throughput.Bytes += res.BytesRead
		r.Throughput.VideoFrames += int64(res.VideoFrames)
		r.Throughput.BrokenFrames += int64(res.BrokenFrames)
		r.Throughput.SlidesShown += int64(res.SlidesShown)
	}
	r.StartupMs = quantiles(startups)
	r.PacingJitterMs = quantiles(skews)
	if r.Sessions.Completed > 0 {
		r.Rebuffer.MeanPerSessionMs = r.Rebuffer.TotalMs / float64(r.Sessions.Completed)
	}
	if wall > 0 {
		r.Throughput.MeanBitsPerSecond = float64(r.Throughput.Bytes) * 8 / wall.Seconds()
	}

	r.Cluster = ClusterReport{
		Redirects:         registryDelta.Get("lod_registry_redirects_total"),
		NoEdge:            registryDelta.Get("lod_registry_no_edge_total"),
		OriginMirrors:     originDelta.Get("lod_mirror_fetches_total"),
		OriginBytes:       originDelta.Get("lod_bytes_sent_total"),
		OriginLive:        originDelta.Get(`lod_sessions_started_total{kind="live"}`),
		NodeDeaths:        registryDelta.Sum("lod_registry_node_deaths_total"),
		FailureReports:    registryDelta.Get("lod_registry_failure_reports_total"),
		RegistryRestarts:  registryRestarts,
		SnapshotRedirects: registryDelta.Get("lod_registry_snapshot_redirects_total"),
	}
	if wall > 0 {
		r.Cluster.RedirectsPerSec = r.Cluster.Redirects / wall.Seconds()
	}
	var hits, misses float64
	// Histogram series render as name_count{labels}/name_sum{labels} in
	// a Snapshot; labels ride after the suffix. The mean folds every
	// labeled series of the family together (vod + live first-packet
	// latencies, for example).
	histMean := func(d metrics.Snapshot, name string) float64 {
		count := d.Sum(name + "_count")
		if count == 0 {
			return 0
		}
		return d.Sum(name+"_sum") / count * 1000 // seconds → ms
	}
	for i, d := range edgeDeltas {
		e := EdgeReport{
			ID:               edgeIDs[i],
			Redirects:        registryDelta.Get(fmt.Sprintf(`lod_registry_node_redirects_total{node="%s"}`, edgeIDs[i])),
			SessionsVOD:      d.Get(`lod_sessions_started_total{kind="vod"}`),
			SessionsLive:     d.Get(`lod_sessions_started_total{kind="live"}`),
			PacketsSent:      d.Get("lod_packets_sent_total"),
			BytesSent:        d.Get("lod_bytes_sent_total"),
			CacheHits:        d.Get("lod_edge_cache_hits_total"),
			CacheMisses:      d.Get("lod_edge_cache_misses_total"),
			CacheEvictions:   d.Get("lod_edge_cache_evictions_total"),
			OriginBytes:      d.Get("lod_edge_origin_bytes_total"),
			PacketsPaced:     d.Get("lod_packets_paced_total"),
			FirstPacketMs:    histMean(d, "lod_first_packet_seconds"),
			PacingLagMsMean:  histMean(d, "lod_pacing_lag_seconds"),
			CoalescedPulls:   d.Get("lod_edge_coalesced_pulls_total"),
			AdmissionRejects: d.Get("lod_edge_admission_rejects_total"),
			PrewarmFetches:   d.Get("lod_edge_prewarm_fetches_total"),
		}
		hits += e.CacheHits
		misses += e.CacheMisses
		r.Cluster.Edges = append(r.Cluster.Edges, e)
	}
	if hits+misses > 0 {
		r.Cluster.CacheHitRate = hits / (hits + misses)
	}
	if cache := buildCacheInfo(s, r.Cluster, edgeCaches); cache != nil {
		r.Cache = cache
	}

	// Serving-cost block: packets and payload bytes written by every
	// server in the cluster over the window, per second and per packet.
	pkts := originDelta.Get("lod_packets_sent_total")
	byts := originDelta.Get("lod_bytes_sent_total")
	for _, d := range edgeDeltas {
		pkts += d.Get("lod_packets_sent_total")
		byts += d.Get("lod_bytes_sent_total")
	}
	if wall > 0 && pkts > 0 {
		r.Perf = PerfInfo{
			PacketsPerSec:   pkts / wall.Seconds(),
			BytesPerSec:     byts / wall.Seconds(),
			AllocsPerPacket: float64(allocs) / pkts,
			NsPerPacket:     float64(wall.Nanoseconds()) / pkts,
		}
	}
	return r
}

// cachePerAssetTopK bounds the record's cache.perAsset list.
const cachePerAssetTopK = 10

// buildCacheInfo folds the per-edge asset demand ledgers
// (relay.Edge.CacheStats) and the cache counters already summed into
// the cluster block into the record's cache block; nil when the run
// collected no ledgers (merge fixtures, cache-less scenarios).
func buildCacheInfo(s Scenario, cl ClusterReport, edgeCaches [][]edgecache.AssetStats) *CacheInfo {
	if len(edgeCaches) == 0 {
		return nil
	}
	policy := s.CachePolicy
	if policy == "" {
		policy = string(edgecache.TinyLFU)
	}
	info := &CacheInfo{Policy: policy, HitRate: cl.CacheHitRate}
	for _, e := range cl.Edges {
		info.OriginBytes += e.OriginBytes
		info.CoalescedPulls += e.CoalescedPulls
		info.AdmissionRejects += e.AdmissionRejects
		info.PrewarmFetches += e.PrewarmFetches
	}
	perAsset := make(map[string]*AssetCacheStat)
	for _, stats := range edgeCaches {
		for _, st := range stats {
			a := perAsset[st.Name]
			if a == nil {
				a = &AssetCacheStat{Name: st.Name}
				perAsset[st.Name] = a
			}
			a.Hits += int64(st.Hits)
			a.Pulls += int64(st.Pulls)
			if int64(st.Pulls) > a.MaxEdgePulls {
				a.MaxEdgePulls = int64(st.Pulls)
			}
			if st.Pulls > 1 {
				info.DuplicatePulls += int64(st.Pulls) - 1
			}
		}
	}
	list := make([]AssetCacheStat, 0, len(perAsset))
	for _, a := range perAsset {
		list = append(list, *a)
	}
	sort.Slice(list, func(i, j int) bool {
		di, dj := list[i].Hits+list[i].Pulls, list[j].Hits+list[j].Pulls
		if di != dj {
			return di > dj
		}
		return list[i].Name < list[j].Name
	})
	if len(list) > cachePerAssetTopK {
		list = list[:cachePerAssetTopK]
	}
	info.PerAsset = list
	return info
}

// WriteJSON writes the indented record.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders the few lines a human wants after a run.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: %d clients over %d edges in %.1fs\n",
		r.Scenario, r.Sessions.Requested, r.Config.Edges, r.WallSeconds)
	fmt.Fprintf(&b, "  sessions: %d ok, %d failed (", r.Sessions.Completed, r.Sessions.Failed)
	kinds := make([]string, 0, len(r.Sessions.ByKind))
	for k := range r.Sessions.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for i, k := range kinds {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %d", k, r.Sessions.ByKind[k])
	}
	b.WriteString(")\n")
	if r.Sessions.Failovers > 0 || r.Sessions.Retries > 0 || r.Cluster.NodeDeaths > 0 {
		fmt.Fprintf(&b, "  churn: %d sessions survived via failover (%d failovers, %d retries), %d node deaths\n",
			r.Sessions.FailedOver, r.Sessions.Failovers, r.Sessions.Retries, int64(r.Cluster.NodeDeaths))
	}
	if r.Cluster.RegistryRestarts > 0 {
		fmt.Fprintf(&b, "  registry: %d restarts, %d redirects served from the restored snapshot\n",
			r.Cluster.RegistryRestarts, int64(r.Cluster.SnapshotRedirects))
	}
	fmt.Fprintf(&b, "  startup ms: p50 %.1f  p90 %.1f  p99 %.1f  max %.1f\n",
		r.StartupMs.P50, r.StartupMs.P90, r.StartupMs.P99, r.StartupMs.Max)
	fmt.Fprintf(&b, "  rebuffer: %d sessions stalled, %d events, %.1f ms total\n",
		r.Rebuffer.SessionsWithStalls, r.Rebuffer.Events, r.Rebuffer.TotalMs)
	fmt.Fprintf(&b, "  pacing jitter ms (max skew/session): p50 %.1f  p99 %.1f  max %.1f\n",
		r.PacingJitterMs.P50, r.PacingJitterMs.P99, r.PacingJitterMs.Max)
	fmt.Fprintf(&b, "  delivered: %.1f MB (%.2f Mbit/s), %d video frames (%d broken)\n",
		float64(r.Throughput.Bytes)/1e6, r.Throughput.MeanBitsPerSecond/1e6,
		r.Throughput.VideoFrames, r.Throughput.BrokenFrames)
	fmt.Fprintf(&b, "  cluster: %d redirects (%.0f/s), cache hit rate %.2f, %d origin mirror fetches\n",
		int64(r.Cluster.Redirects), r.Cluster.RedirectsPerSec, r.Cluster.CacheHitRate, int64(r.Cluster.OriginMirrors))
	if c := r.Cache; c != nil {
		fmt.Fprintf(&b, "  cache (%s): %.1f MB from origin, %d coalesced, %d rejected, %d prewarmed, %d duplicate pulls\n",
			c.Policy, c.OriginBytes/1e6, int64(c.CoalescedPulls), int64(c.AdmissionRejects),
			int64(c.PrewarmFetches), c.DuplicatePulls)
		if len(c.PerAsset) > 0 {
			top := c.PerAsset[0]
			fmt.Fprintf(&b, "  hottest asset %s: %d hits, %d pulls (worst edge pulled %d×)\n",
				top.Name, top.Hits, top.Pulls, top.MaxEdgePulls)
		}
	}
	if len(r.Shards) > 1 {
		min, max := r.Shards[0].WallSeconds, r.Shards[0].WallSeconds
		for _, sh := range r.Shards[1:] {
			if sh.WallSeconds < min {
				min = sh.WallSeconds
			}
			if sh.WallSeconds > max {
				max = sh.WallSeconds
			}
		}
		fmt.Fprintf(&b, "  shards: %d drivers, wall %.1f–%.1fs\n", len(r.Shards), min, max)
	}
	if r.Perf.PacketsPerSec > 0 {
		fmt.Fprintf(&b, "  serving: %.0f packets/s, %.2f MB/s, %.1f allocs/packet, %.0f ns/packet\n",
			r.Perf.PacketsPerSec, r.Perf.BytesPerSec/1e6, r.Perf.AllocsPerPacket, r.Perf.NsPerPacket)
	}
	return b.String()
}

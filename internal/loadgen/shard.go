package loadgen

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/vclock"
)

// ShardRun is one shard driver's raw output: the session results of
// the contiguous client-ID range the shard owned, plus the shard's own
// wall time (t0 → its last session finishing). The swarm is split
// across a pool of independent shard drivers so nothing mutable is
// shared on the session hot path — each shard owns its result buffer,
// its arrival timer wheel, and its session SDK over a private HTTP
// connection pool; the only shared objects are the MemNet (it IS the
// network) and the cluster under test.
type ShardRun struct {
	Index int
	// Start is the first global client ID in the shard; IDs are
	// contiguous, so client IDs are Start..Start+len(Results)-1.
	Start   int
	Results []SessionResult
	Wall    time.Duration
}

// shardBounds splits clients into shards near-equal contiguous ranges:
// bounds[i]..bounds[i+1] is shard i's half-open ID range. Deterministic
// in (clients, shards) only, so the split itself never perturbs which
// client runs which session.
func shardBounds(clients, shards int) []int {
	bounds := make([]int, shards+1)
	for i := 1; i <= shards; i++ {
		bounds[i] = clients * i / shards
	}
	return bounds
}

// newSDK builds a shard-local session SDK over its own HTTP client
// (own transport, own idle-connection pool), so concurrent shard
// drivers contend on the network, not on a shared connection-pool
// mutex or SDK state.
func (c *Cluster) newSDK() *client.Client {
	return client.New(RegistryURL,
		client.WithHTTPClient(c.net.Client()),
		client.WithBackoff(c.Scenario.FailoverBackoff))
}

// runShard drives the clients in [lo, hi): each arrives at
// t0+offsets[id] on the shard's own timer wheel and runs its
// predetermined workload kind through the shard's own SDK. Results
// land in the shard-local buffer at id-lo; nothing here writes outside
// the shard.
func (c *Cluster) runShard(ctx context.Context, idx, lo, hi int, kinds []Kind, offsets []time.Duration, t0 time.Time) ShardRun {
	clock := c.Scenario.clock()
	sdk := c.newSDK()
	arrivals := vclock.NewWheel(clock, vclock.DefaultGranularity)
	results := make([]SessionResult, hi-lo)
	var wg sync.WaitGroup
	for j := range results {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			id := lo + j
			if wait := t0.Add(offsets[id]).Sub(clock.Now()); wait > 0 {
				if err := arrivals.Sleep(ctx, wait); err != nil {
					results[j] = SessionResult{ID: id, Kind: kinds[id], Err: err.Error()}
					return
				}
			}
			results[j] = c.runSessionWith(ctx, sdk, id, kinds[id])
		}(j)
	}
	wg.Wait()
	return ShardRun{Index: idx, Start: lo, Results: results, Wall: clock.Now().Sub(t0)}
}

// MergeShardRuns folds per-shard outputs into the single ID-ordered
// session-result slice buildReport consumes, plus the per-shard
// summaries the record's shards block carries. The merge is
// deterministic and order-independent — shards are sorted by index
// before concatenation, so a report built from shuffled inputs is
// byte-identical — and it recombines distributions from the raw
// per-session samples: quantiles are computed downstream over the
// union, never averaged across shards (the classic "mean of p99s"
// mistake produces a number that is not any percentile of anything).
func MergeShardRuns(runs []ShardRun) ([]SessionResult, []ShardInfo) {
	sorted := append([]ShardRun(nil), runs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	var results []SessionResult
	infos := make([]ShardInfo, 0, len(sorted))
	for _, r := range sorted {
		info := ShardInfo{
			Index:       r.Index,
			Clients:     len(r.Results),
			WallSeconds: r.Wall.Seconds(),
		}
		for _, res := range r.Results {
			if res.Err != "" {
				info.Failed++
			} else {
				info.Completed++
			}
		}
		results = append(results, r.Results...)
		infos = append(infos, info)
	}
	return results, infos
}

package loadgen

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/proto"
)

// registryCatalog decodes the registry's persisted catalog listing.
func registryCatalog(t *testing.T, c *Cluster) proto.Catalog {
	t.Helper()
	var cat proto.Catalog
	if err := json.Unmarshal(c.Registry().CatalogJSON(), &cat); err != nil {
		t.Fatal(err)
	}
	return cat
}

// TestClusterKillAndRestartRegistry covers the control-plane churn
// primitives: a killed registry stops answering, and a restart brings
// it back restored from the durable state dir — same membership, same
// catalog — before any edge has re-heartbeated.
func TestClusterKillAndRestartRegistry(t *testing.T) {
	s, err := ParseScenario("registrychurn?kills=0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartCluster(context.Background(), s, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AwaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	assetsBefore := len(registryCatalog(t, c).Assets)
	if assetsBefore == 0 {
		t.Fatal("populated cluster published no catalog assets")
	}

	if err := c.KillRegistry(); err != nil {
		t.Fatal(err)
	}
	if c.RegistryAlive() {
		t.Fatal("registry still alive after kill")
	}
	if err := c.KillRegistry(); err == nil {
		t.Fatal("double kill accepted")
	}
	if _, err := c.Client().Get(RegistryURL + "/nodes"); err == nil {
		t.Fatal("killed registry still answering")
	}

	if err := c.RestartRegistry(); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartRegistry(); err == nil {
		t.Fatal("double restart accepted")
	}
	if c.RegistryRestarts() != 1 {
		t.Fatalf("restarts = %d, want 1", c.RegistryRestarts())
	}
	// Restored from the snapshot: full membership and catalog are back
	// immediately, no heartbeat round needed.
	if got := len(c.Registry().Nodes()); got != 2 {
		t.Fatalf("restored %d nodes, want 2", got)
	}
	if got := len(registryCatalog(t, c).Assets); got != assetsBefore {
		t.Fatalf("restored %d catalog assets, want %d", got, assetsBefore)
	}
	if err := c.AwaitReady(5 * time.Second); err != nil {
		t.Fatalf("cluster not ready after registry restart: %v", err)
	}
}

// TestRunRegistryChurnScenario runs the registrychurn family end to
// end, small: the control plane dies and comes back mid-swarm, and
// every session rides the outage out on its failover budget.
func TestRunRegistryChurnScenario(t *testing.T) {
	s, err := ParseScenario("registrychurn?rate=50&firstkill=400ms&restartafter=600ms&duration=2s")
	if err != nil {
		t.Fatal(err)
	}
	const clients, edges = 12, 2
	rep, err := Run(context.Background(), s, clients, edges)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions.Failed > 0 {
		t.Fatalf("%d sessions failed across the registry outage: %v",
			rep.Sessions.Failed, rep.Sessions.Errors)
	}
	if rep.Sessions.Completed != clients {
		t.Fatalf("completed = %d, want %d", rep.Sessions.Completed, clients)
	}
	if rep.Cluster.RegistryRestarts != 1 {
		t.Fatalf("registryRestarts = %d, want 1", rep.Cluster.RegistryRestarts)
	}
	if rep.Config.Churn == nil || !rep.Config.Churn.KillRegistry {
		t.Fatalf("killRegistry missing from the record: %+v", rep.Config.Churn)
	}
}

// TestRegistryChurnValidation: registry churn needs a restart time (the
// cluster has exactly one control plane, there is no failing over to a
// second registry), but does not need a second edge.
func TestRegistryChurnValidation(t *testing.T) {
	base, err := ParseScenario("registrychurn")
	if err != nil {
		t.Fatal(err)
	}
	bad := base
	bad.Churn.RestartAfter = 0
	if err := bad.Validate(); err == nil {
		t.Error("registry churn without restartafter accepted")
	}
	// A single edge is fine: the registry outage is what is under test.
	c, err := StartCluster(context.Background(), base, 1, time.Second)
	if err != nil {
		t.Fatalf("registry churn on a single-edge cluster refused: %v", err)
	}
	c.Close()
}

package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/edgecache"
	"repro/internal/metrics"
	"repro/internal/vclock"
)

// Run executes one scenario: start the cluster, release the swarm on
// the arrival schedule, wait for every session to finish, and return
// the benchmark record. It blocks for the run's wall time (bounded by
// the arrival window plus the content length); cancel ctx to abort
// early, which fails the in-flight sessions but still reports. Run is
// RunSharded with a single shard driver.
//
// A scenario with churn enabled additionally runs the kill/restart
// driver alongside the swarm: edges go down mid-run and sessions are
// expected to complete via failover (see ChurnSpec and
// Cluster.KillEdge).
func Run(ctx context.Context, s Scenario, clients, edges int) (*Report, error) {
	return RunSharded(ctx, s, clients, edges, 1)
}

// RunSharded is Run with the client population split across a pool of
// independent shard drivers (ShardRun): shard i owns a contiguous
// ID range, its own arrival wheel, its own SDK and HTTP connection
// pool, and its own result buffer, so tens of thousands of concurrent
// sessions never serialize on harness-side shared state. Which client
// runs which session is decided before sharding from the scenario seed
// alone, so the same seed produces the same session population — and
// the same completion/failure totals — at any shard count; only the
// measured timings differ. Per-shard timings are merged into one
// record (MergeShardRuns) and reported in the record's shards block.
func RunSharded(ctx context.Context, s Scenario, clients, edges, shards int) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if clients < 1 {
		return nil, fmt.Errorf("loadgen: need at least one client, got %d", clients)
	}
	if shards < 1 {
		return nil, fmt.Errorf("loadgen: need at least one shard, got %d", shards)
	}
	if shards > clients {
		shards = clients
	}
	offsets, err := s.Arrival.Offsets(clients, s.Seed)
	if err != nil {
		return nil, err
	}
	window := offsets[len(offsets)-1]
	// Live broadcasts must outlive the last joiner by a full session.
	liveFor := window + s.AssetDuration + 2*time.Second

	cluster, err := StartCluster(ctx, s, edges, liveFor)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	if err := cluster.AwaitReady(10 * time.Second); err != nil {
		return nil, err
	}

	// Draw each client's workload kind up front, deterministically.
	mixRng := rand.New(rand.NewSource(s.Seed))
	kinds := make([]Kind, clients)
	for i := range kinds {
		kinds[i] = s.pickKind(mixRng)
	}

	// Registry metrics are windowed through the cluster (not a raw
	// snapshot) because registry churn can replace the instance mid-run.
	cluster.MarkRegistryWindow()
	originPre := cluster.Origin.Metrics().Snapshot()
	edgePre := make([]metrics.Snapshot, len(cluster.Edges))
	for i, e := range cluster.Edges {
		edgePre[i] = e.Server.Metrics().Snapshot()
	}

	clock := s.clock()
	t0 := clock.Now()
	// The Mallocs delta around the swarm (cluster setup and content
	// encoding excluded) feeds the record's perf.allocsPerPacket — the
	// allocation-regression signal for the zero-copy serving path.
	var memPre runtime.MemStats
	runtime.ReadMemStats(&memPre)
	churnCtx, stopChurn := context.WithCancel(ctx)
	var churnWG sync.WaitGroup
	if s.Churn.Enabled() {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			runChurn(churnCtx, clock, cluster, s.Churn, t0, edges)
		}()
	}
	// The shard pool: each driver owns a contiguous ID range with its
	// own arrival wheel, SDK, and result buffer (see ShardRun). kinds
	// and offsets were drawn above, before the split, so the session
	// population is shard-count-invariant.
	bounds := shardBounds(clients, shards)
	runs := make([]ShardRun, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runs[i] = cluster.runShard(ctx, i, bounds[i], bounds[i+1], kinds, offsets, t0)
		}(i)
	}
	wg.Wait()
	stopChurn()
	churnWG.Wait()
	wall := clock.Now().Sub(t0)
	var memPost runtime.MemStats
	runtime.ReadMemStats(&memPost)
	allocs := memPost.Mallocs - memPre.Mallocs

	regDelta := cluster.RegistryWindowDelta()
	originDelta := cluster.Origin.Metrics().Snapshot().Delta(originPre)
	edgeDeltas := make([]metrics.Snapshot, len(cluster.Edges))
	edgeCaches := make([][]edgecache.AssetStats, len(cluster.Edges))
	for i, e := range cluster.Edges {
		edgeDeltas[i] = e.Server.Metrics().Snapshot().Delta(edgePre[i])
		edgeCaches[i] = e.CacheStats()
	}

	results, shardInfos := MergeShardRuns(runs)
	return buildReport(s, clients, edges, wall, allocs, results, regDelta, originDelta,
		cluster.EdgeIDs, edgeDeltas, edgeCaches, shardInfos, cluster.RegistryRestarts()), nil
}

// runChurn executes a scenario's kill/restart schedule against the live
// cluster: kill k fires at t0 + FirstKill + k·Every, victims rotate
// round-robin, and each killed edge restarts RestartAfter later before
// the next kill is considered — the driver is sequential, so at most
// one edge is ever down and the registry always has a failover target.
// A RestartAfter of zero leaves victims down for the rest of the run.
//
// With KillRegistry set, the victim is the registry itself instead:
// each kill takes the control plane down for RestartAfter, then brings
// up a fresh registry restored from the durable catalog snapshot
// (Scenario validation guarantees RestartAfter is positive here — a
// run cannot end registry-less).
func runChurn(ctx context.Context, clock vclock.Clock, c *Cluster, spec ChurnSpec, t0 time.Time, edges int) {
	for k := 0; k < spec.Kills; k++ {
		due := t0.Add(spec.FirstKill + time.Duration(k)*spec.Every)
		if !sleepCtx(ctx, clock, due.Sub(clock.Now())) {
			return
		}
		if spec.KillRegistry {
			if err := c.KillRegistry(); err != nil {
				continue
			}
			alive := sleepCtx(ctx, clock, spec.RestartAfter)
			// Restart even on cancellation so the final metric snapshots
			// and teardown have a registry to talk to.
			_ = c.RestartRegistry()
			if !alive {
				return
			}
			continue
		}
		victim := k % edges
		if err := c.KillEdge(victim); err != nil {
			continue // already down (restartless schedule lapped itself)
		}
		if spec.RestartAfter <= 0 {
			continue
		}
		alive := sleepCtx(ctx, clock, spec.RestartAfter)
		// Restart even on cancellation so the cluster is whole for the
		// final metric snapshots and teardown.
		_ = c.RestartEdge(victim)
		if !alive {
			return
		}
	}
}

package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/netsim"
	"repro/internal/player"
)

// SessionResult is what one virtual client measured.
type SessionResult struct {
	ID   int    `json:"-"`
	Kind Kind   `json:"kind"`
	URL  string `json:"-"`
	// Edge is the host that actually served the stream after the
	// registry's redirect.
	Edge string `json:"edge"`
	// Err is the failure, empty on success.
	Err string `json:"err,omitempty"`

	// StartupMs is request issued → first stream byte received,
	// redirect and modeled link transit included — the client half of
	// startup latency.
	StartupMs float64 `json:"startupMs"`
	// DurationMs is the playback time on the anchored schedule.
	DurationMs float64 `json:"durationMs"`
	// Stalls/StallMs are rebuffer events: items that missed their
	// anchored presentation deadline, and by how much in total.
	Stalls  int     `json:"stalls"`
	StallMs float64 `json:"stallMs"`
	// MaxSkewMs/MeanSkewMs are presentation lateness over the session —
	// the client-observed pacing jitter.
	MaxSkewMs  float64 `json:"maxSkewMs"`
	MeanSkewMs float64 `json:"meanSkewMs"`

	BytesRead    int64 `json:"bytesRead"`
	VideoFrames  int   `json:"videoFrames"`
	BrokenFrames int   `json:"brokenFrames"`
	SlidesShown  int   `json:"slidesShown"`
}

// sessionTarget builds the request path for one client draw.
func (c *Cluster) sessionTarget(kind Kind, rng *rand.Rand) string {
	s := c.Scenario
	switch kind {
	case KindVOD:
		return "/vod/" + c.AssetNames[rng.Intn(len(c.AssetNames))]
	case KindSeek:
		name := c.AssetNames[rng.Intn(len(c.AssetNames))]
		// Seek somewhere in the middle half of the presentation.
		at := time.Duration((0.25 + 0.5*rng.Float64()) * float64(s.AssetDuration))
		return fmt.Sprintf("/vod/%s?start=%dms", name, at.Milliseconds())
	case KindGroup:
		name := c.GroupNames[rng.Intn(len(c.GroupNames))]
		bw := s.ClientBandwidth
		if bw <= 0 {
			bw = 1 << 30
		}
		return fmt.Sprintf("/group/%s?bw=%d", name, bw)
	case KindLive:
		return "/live/" + c.LiveNames[rng.Intn(len(c.LiveNames))]
	}
	return "/vod/" + c.AssetNames[0]
}

// firstByteReader stamps the arrival of the first stream byte.
type firstByteReader struct {
	r  io.Reader
	at *time.Time
}

func (f *firstByteReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if n > 0 && f.at.IsZero() {
		*f.at = time.Now()
	}
	return n, err
}

// RunSession executes one virtual client: request the registry, follow
// the redirect, and play the stream in realtime through the client's
// private shaped link. The id seeds every per-client draw, so a rerun
// issues the identical session.
func (c *Cluster) RunSession(ctx context.Context, id int, kind Kind) SessionResult {
	s := c.Scenario
	rng := rand.New(rand.NewSource(s.Seed<<20 + int64(id)))
	res := SessionResult{ID: id, Kind: kind}
	res.URL = RegistryURL + c.sessionTarget(kind, rng)

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, res.URL, nil)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	t0 := time.Now()
	resp, err := c.client.Do(req)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	defer resp.Body.Close()
	if resp.Request != nil && resp.Request.URL != nil {
		res.Edge = resp.Request.URL.Host
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 128))
		res.Err = fmt.Sprintf("status %s: %s", resp.Status, body)
		return res
	}

	// Each client owns a private clone of the scenario link — netsim.Link
	// is not safe for concurrent use, so the prototype is never shared.
	var link *netsim.Link
	if s.Link != (netsim.Link{}) {
		link = s.Link.Clone(s.Seed<<20 + int64(id))
	}
	// The first-byte stamp sits outside the link shaping, so StartupMs
	// includes the modeled last-mile transit, consistent with the
	// stall/skew numbers the player measures on post-shaping arrivals.
	var firstByte time.Time
	body := &firstByteReader{r: netsim.NewLinkReader(resp.Body, link, nil), at: &firstByte}

	m, err := player.New(player.Options{
		Realtime:            true,
		AnchorToFirstPacket: true,
		JitterBufferDepth:   s.JitterBufferDepth,
		// Below ~50ms lateness is OS timer/scheduler noise, not
		// rebuffering; it still lands in the skew statistics.
		StallTolerance: 50 * time.Millisecond,
	}).Play(body)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if !firstByte.IsZero() {
		res.StartupMs = float64(firstByte.Sub(t0)) / float64(time.Millisecond)
	}
	res.DurationMs = float64(m.Duration) / float64(time.Millisecond)
	res.Stalls = m.Stalls
	res.StallMs = float64(m.StallTime) / float64(time.Millisecond)
	res.MaxSkewMs = float64(m.MaxSkew) / float64(time.Millisecond)
	res.MeanSkewMs = float64(m.MeanSkew) / float64(time.Millisecond)
	res.BytesRead = m.BytesRead
	res.VideoFrames = m.VideoFrames
	res.BrokenFrames = m.BrokenFrames
	res.SlidesShown = m.SlidesShown
	return res
}

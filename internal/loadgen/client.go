package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/netsim"
	"repro/internal/player"
	"repro/internal/relay"
)

// SessionResult is what one virtual client measured.
type SessionResult struct {
	ID   int    `json:"-"`
	Kind Kind   `json:"kind"`
	URL  string `json:"-"`
	// Edge is the host that actually served the stream after the
	// registry's redirect — the last one, when the session failed over.
	Edge string `json:"edge"`
	// Err is the failure, empty on success.
	Err string `json:"err,omitempty"`

	// Failovers counts serving-edge failures the session rode out: the
	// edge refused the connection, answered 5xx, or severed the stream
	// mid-session, and the client went back to the registry. A session
	// with Err=="" and Failovers>0 survived via failover rather than
	// cleanly.
	Failovers int `json:"failovers,omitempty"`
	// Retries counts every extra registry round trip the session made,
	// failovers plus no-edge (503) backoffs.
	Retries int `json:"retries,omitempty"`

	// StartupMs is request issued → first stream byte received,
	// redirect and modeled link transit included — the client half of
	// startup latency.
	StartupMs float64 `json:"startupMs"`
	// DurationMs is the playback time on the anchored schedule, summed
	// across failover segments.
	DurationMs float64 `json:"durationMs"`
	// Stalls/StallMs are rebuffer events: items that missed their
	// anchored presentation deadline, and by how much in total.
	Stalls  int     `json:"stalls"`
	StallMs float64 `json:"stallMs"`
	// MaxSkewMs/MeanSkewMs are presentation lateness over the session —
	// the client-observed pacing jitter.
	MaxSkewMs  float64 `json:"maxSkewMs"`
	MeanSkewMs float64 `json:"meanSkewMs"`

	BytesRead    int64 `json:"bytesRead"`
	VideoFrames  int   `json:"videoFrames"`
	BrokenFrames int   `json:"brokenFrames"`
	SlidesShown  int   `json:"slidesShown"`
}

// sessionTarget builds the request path for one client draw.
func (c *Cluster) sessionTarget(kind Kind, rng *rand.Rand) string {
	s := c.Scenario
	switch kind {
	case KindVOD:
		return "/vod/" + c.AssetNames[rng.Intn(len(c.AssetNames))]
	case KindSeek:
		name := c.AssetNames[rng.Intn(len(c.AssetNames))]
		// Seek somewhere in the middle half of the presentation.
		at := time.Duration((0.25 + 0.5*rng.Float64()) * float64(s.AssetDuration))
		return fmt.Sprintf("/vod/%s?start=%dms", name, at.Milliseconds())
	case KindGroup:
		name := c.GroupNames[rng.Intn(len(c.GroupNames))]
		bw := s.ClientBandwidth
		if bw <= 0 {
			bw = 1 << 30
		}
		return fmt.Sprintf("/group/%s?bw=%d", name, bw)
	case KindLive:
		return "/live/" + c.LiveNames[rng.Intn(len(c.LiveNames))]
	}
	return "/vod/" + c.AssetNames[0]
}

// firstByteReader stamps the arrival of the first stream byte.
type firstByteReader struct {
	r  io.Reader
	at *time.Time
}

func (f *firstByteReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if n > 0 && f.at.IsZero() {
		*f.at = time.Now()
	}
	return n, err
}

// RunSession executes one virtual client: request the registry, follow
// the redirect, and play the stream in realtime through the client's
// private shaped link. The id seeds every per-client draw, so a rerun
// issues the identical session.
//
// When the scenario grants FailoverAttempts, a session whose edge
// refuses the connection or severs the stream mid-play goes back to the
// registry — reporting the dead edge and excluding it from the next
// pick — and, for stored content, resumes at the last media offset it
// received via ?start=. The result's Failovers/Retries counts let the
// report distinguish sessions that survived via failover from clean
// runs.
func (c *Cluster) RunSession(ctx context.Context, id int, kind Kind) SessionResult {
	s := c.Scenario
	rng := rand.New(rand.NewSource(s.Seed<<20 + int64(id)))
	res := SessionResult{ID: id, Kind: kind}
	target := c.sessionTarget(kind, rng)
	res.URL = RegistryURL + target

	// Each client owns a private clone of the scenario link — netsim.Link
	// is not safe for concurrent use, so the prototype is never shared.
	// Failover segments of the same session run sequentially, so they
	// share the clone.
	var link *netsim.Link
	if s.Link != (netsim.Link{}) {
		link = s.Link.Clone(s.Seed<<20 + int64(id))
	}
	opts := player.Options{
		Realtime:            true,
		AnchorToFirstPacket: true,
		JitterBufferDepth:   s.JitterBufferDepth,
		// Below ~50ms lateness is OS timer/scheduler noise, not
		// rebuffering; it still lands in the skew statistics.
		StallTolerance: 50 * time.Millisecond,
	}

	// The first-byte stamp sits outside the link shaping, so StartupMs
	// includes the modeled last-mile transit, consistent with the
	// stall/skew numbers the player measures on post-shaping arrivals.
	// Only the very first byte of the whole session stamps it; failover
	// reconnects don't reset startup.
	var firstByte time.Time
	t0 := time.Now()
	session := &relay.FailoverSession{
		Fetcher:  relay.NewStreamFetcher(RegistryURL, c.client),
		Target:   target,
		Live:     kind == KindLive,
		Attempts: s.FailoverAttempts,
		Backoff:  s.FailoverBackoff,
		Player:   opts,
		WrapBody: func(r io.Reader) io.Reader {
			return &firstByteReader{r: netsim.NewLinkReader(r, link, nil), at: &firstByte}
		},
		OnRetry: func(edge string, _ error) {
			res.Retries++
			if edge != "" {
				res.Failovers++
			}
		},
	}
	agg, edge, err := session.Run(ctx)
	res.Edge = edge
	if err != nil {
		res.Err = err.Error()
	}

	if !firstByte.IsZero() {
		res.StartupMs = float64(firstByte.Sub(t0)) / float64(time.Millisecond)
	}
	res.DurationMs = float64(agg.Duration) / float64(time.Millisecond)
	res.Stalls = agg.Stalls
	res.StallMs = float64(agg.StallTime) / float64(time.Millisecond)
	res.MaxSkewMs = float64(agg.MaxSkew) / float64(time.Millisecond)
	res.MeanSkewMs = float64(agg.MeanSkew) / float64(time.Millisecond)
	res.BytesRead = agg.BytesRead
	res.VideoFrames = agg.VideoFrames
	res.BrokenFrames = agg.BrokenFrames
	res.SlidesShown = agg.SlidesShown
	return res
}

// sleepCtx waits for d or until ctx is cancelled, reporting whether the
// full wait elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

package loadgen

import (
	"context"
	"io"
	"math/rand"
	"time"

	"repro/internal/client"
	"repro/internal/netsim"
	"repro/internal/player"
	"repro/internal/vclock"
)

// SessionResult is what one virtual client measured.
type SessionResult struct {
	ID   int    `json:"-"`
	Kind Kind   `json:"kind"`
	URL  string `json:"-"`
	// Edge is the host that actually served the stream after the
	// registry's redirect — the last one, when the session failed over.
	Edge string `json:"edge"`
	// Err is the failure, empty on success.
	Err string `json:"err,omitempty"`

	// Failovers counts serving-edge failures the session rode out: the
	// edge refused the connection, answered 5xx, or severed the stream
	// mid-session, and the client went back to the registry. A session
	// with Err=="" and Failovers>0 survived via failover rather than
	// cleanly.
	Failovers int `json:"failovers,omitempty"`
	// Retries counts every extra registry round trip the session made,
	// failovers plus no-edge (503) backoffs.
	Retries int `json:"retries,omitempty"`

	// StartupMs is request issued → first stream byte received,
	// redirect and modeled link transit included — the client half of
	// startup latency.
	StartupMs float64 `json:"startupMs"`
	// DurationMs is the playback time on the anchored schedule, summed
	// across failover segments.
	DurationMs float64 `json:"durationMs"`
	// Stalls/StallMs are rebuffer events: items that missed their
	// anchored presentation deadline, and by how much in total.
	Stalls  int     `json:"stalls"`
	StallMs float64 `json:"stallMs"`
	// MaxSkewMs/MeanSkewMs are presentation lateness over the session —
	// the client-observed pacing jitter.
	MaxSkewMs  float64 `json:"maxSkewMs"`
	MeanSkewMs float64 `json:"meanSkewMs"`

	BytesRead    int64 `json:"bytesRead"`
	VideoFrames  int   `json:"videoFrames"`
	BrokenFrames int   `json:"brokenFrames"`
	SlidesShown  int   `json:"slidesShown"`
}

// sessionSpec draws one client's stream spec. Path construction is the
// SDK's job (client.Spec.Target → proto.StreamPath), so asset names
// with spaces, slashes, or query metacharacters are percent-encoded by
// construction — the loadgen side of the edge→origin escaping fix.
// Name draws go through the scenario's popularity model (c.pop) with
// the client's own rng, so the drawn population is identical however
// the swarm is sharded.
func (c *Cluster) sessionSpec(kind Kind, rng *rand.Rand) client.Spec {
	s := c.Scenario
	switch kind {
	case KindSeek:
		name := c.AssetNames[c.pop.pick(rng, len(c.AssetNames))]
		// Seek somewhere in the middle half of the presentation.
		at := time.Duration((0.25 + 0.5*rng.Float64()) * float64(s.AssetDuration))
		return client.Spec{Kind: client.VOD, Name: name, Start: at}
	case KindGroup:
		name := c.GroupNames[c.pop.pick(rng, len(c.GroupNames))]
		bw := s.ClientBandwidth
		if bw <= 0 {
			bw = 1 << 30
		}
		return client.Spec{Kind: client.Group, Name: name, Bandwidth: bw}
	case KindLive, KindLiveFan:
		return client.Spec{Kind: client.Live, Name: c.LiveNames[c.pop.pick(rng, len(c.LiveNames))]}
	case KindVOD:
		return client.Spec{Kind: client.VOD, Name: c.AssetNames[c.pop.pick(rng, len(c.AssetNames))]}
	}
	return client.Spec{Kind: client.VOD, Name: c.AssetNames[0]}
}

// firstByteReader stamps the arrival of the first stream byte on the
// scenario's clock.
type firstByteReader struct {
	r     io.Reader
	clock vclock.Clock
	at    *time.Time
}

func (f *firstByteReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if n > 0 && f.at.IsZero() {
		*f.at = f.clock.Now()
	}
	return n, err
}

// RunSession executes one virtual client: open the drawn spec through
// the cluster's session SDK (internal/client) and play the stream in
// realtime through the client's private shaped link. The id seeds every
// per-client draw, so a rerun issues the identical session.
//
// When the scenario grants FailoverAttempts, a session whose edge
// refuses the connection or severs the stream mid-play goes back to the
// registry — reporting the dead edge and excluding it from the next
// pick — and, for stored content, resumes at the last media offset it
// received. The session's Stats feed the result's Failovers/Retries,
// so the report can distinguish sessions that survived via failover
// from clean runs.
func (c *Cluster) RunSession(ctx context.Context, id int, kind Kind) SessionResult {
	return c.runSessionWith(ctx, c.sdk, id, kind)
}

// runSessionWith is RunSession against an explicit session SDK — shard
// drivers pass their own so concurrent shards never share a connection
// pool. The SDK choice changes transport affinity only; every draw
// still derives from (seed, id), so results are SDK-independent.
func (c *Cluster) runSessionWith(ctx context.Context, sdk *client.Client, id int, kind Kind) SessionResult {
	s := c.Scenario
	rng := rand.New(rand.NewSource(s.Seed<<20 + int64(id)))
	res := SessionResult{ID: id, Kind: kind}
	spec := c.sessionSpec(kind, rng)
	spec.Failover = s.FailoverAttempts
	res.URL = RegistryURL + spec.Target()

	// Each client owns a private clone of the scenario link — netsim.Link
	// is not safe for concurrent use, so the prototype is never shared.
	// Failover segments of the same session run sequentially, so they
	// share the clone.
	var link *netsim.Link
	if s.Link != (netsim.Link{}) {
		link = s.Link.Clone(s.Seed<<20 + int64(id))
	}
	spec.Player = player.Options{
		Realtime:            true,
		AnchorToFirstPacket: true,
		JitterBufferDepth:   s.JitterBufferDepth,
		// Below ~50ms lateness is OS timer/scheduler noise, not
		// rebuffering; it still lands in the skew statistics.
		StallTolerance: 50 * time.Millisecond,
	}

	// The first-byte stamp sits outside the link shaping, so StartupMs
	// includes the modeled last-mile transit, consistent with the
	// stall/skew numbers the player measures on post-shaping arrivals.
	// Only the very first byte of the whole session stamps it; failover
	// reconnects don't reset startup.
	clock := s.clock()
	var firstByte time.Time
	spec.WrapBody = func(r io.Reader) io.Reader {
		return &firstByteReader{r: netsim.NewLinkReader(r, link, nil), clock: clock, at: &firstByte}
	}

	t0 := clock.Now()
	session, err := sdk.Open(ctx, spec)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if kind == KindLiveFan {
		return c.drainSession(session, spec, res, clock, t0, &firstByte)
	}
	agg, err := session.Play()
	st := session.Stats()
	res.Edge = st.Edge
	res.Failovers = st.Failovers
	res.Retries = st.Retries
	if err != nil {
		res.Err = err.Error()
	}

	if !firstByte.IsZero() {
		res.StartupMs = float64(firstByte.Sub(t0)) / float64(time.Millisecond)
	}
	res.DurationMs = float64(agg.Duration) / float64(time.Millisecond)
	res.Stalls = agg.Stalls
	res.StallMs = float64(agg.StallTime) / float64(time.Millisecond)
	res.MaxSkewMs = float64(agg.MaxSkew) / float64(time.Millisecond)
	res.MeanSkewMs = float64(agg.MeanSkew) / float64(time.Millisecond)
	res.BytesRead = agg.BytesRead
	res.VideoFrames = agg.VideoFrames
	res.BrokenFrames = agg.BrokenFrames
	res.SlidesShown = agg.SlidesShown
	return res
}

// drainSession is the KindLiveFan session body: rip the raw container
// body as fast as it arrives, counting bytes but never parsing packets
// or pacing presentation. The session ends when the broadcast does.
// Because the client costs almost nothing, the server's per-subscriber
// write path is what saturates — the number the fanout scenario exists
// to measure.
func (c *Cluster) drainSession(session client.Session, spec client.Spec,
	res SessionResult, clock vclock.Clock, t0 time.Time, firstByte *time.Time) SessionResult {

	body, err := session.Fetch()
	st := session.Stats()
	res.Edge = st.Edge
	res.Failovers = st.Failovers
	res.Retries = st.Retries
	if err != nil {
		res.Err = err.Error()
		return res
	}
	defer body.Close()
	// Fetch hands back the raw response body; route it through the
	// spec's wrapper anyway so the first-byte stamp (and any link
	// shaping the scenario insists on) behaves like every other kind.
	r := io.Reader(body)
	if spec.WrapBody != nil {
		r = spec.WrapBody(body)
	}
	n, err := io.Copy(io.Discard, r)
	res.BytesRead = n
	if err != nil {
		res.Err = err.Error()
	}
	if !firstByte.IsZero() {
		res.StartupMs = float64(firstByte.Sub(t0)) / float64(time.Millisecond)
	}
	res.DurationMs = float64(clock.Now().Sub(t0)) / float64(time.Millisecond)
	return res
}

// sleepCtx waits for d on the clock or until ctx is cancelled,
// reporting whether the full wait elapsed.
func sleepCtx(ctx context.Context, clock vclock.Clock, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	select {
	case <-clock.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

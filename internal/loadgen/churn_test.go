package loadgen

import (
	"context"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestClusterKillAndRestartEdge covers the churn primitives: a killed
// edge stops answering and stops heartbeating; a restarted one rejoins
// the registry and serves again.
func TestClusterKillAndRestartEdge(t *testing.T) {
	s, err := ParseScenario("smoke")
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartCluster(context.Background(), s, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AwaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	if err := c.KillEdge(0); err != nil {
		t.Fatal(err)
	}
	if c.EdgeAlive(0) {
		t.Fatal("edge 0 still alive after kill")
	}
	if err := c.KillEdge(0); err == nil {
		t.Fatal("double kill accepted")
	}
	// The corpse refuses connections.
	if _, err := c.Client().Get("http://edge-1.lod/assets"); err == nil {
		t.Fatal("killed edge still answering")
	}
	// The registry was NOT told (crash semantics): the node only falls
	// off via TTL or a client's failure report.
	if !c.Registry().ReportFailure("edge-1.lod") {
		t.Fatal("killed edge was already dead at the registry; kill should be silent")
	}

	if err := c.RestartEdge(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartEdge(0); err == nil {
		t.Fatal("double restart accepted")
	}
	if err := c.AwaitReady(5 * time.Second); err != nil {
		t.Fatalf("restarted edge never rejoined: %v", err)
	}
	resp, err := c.Client().Get("http://edge-1.lod/assets")
	if err != nil {
		t.Fatalf("restarted edge unreachable: %v", err)
	}
	resp.Body.Close()

	if err := c.KillEdge(5); err == nil {
		t.Fatal("out-of-range kill accepted")
	}
}

// TestSessionFailsOverMidStream is the tentpole integration test: kill
// the edge serving a VOD session mid-stream and assert the session
// completes on the other edge, resuming rather than restarting, with
// the failover visible in its result.
func TestSessionFailsOverMidStream(t *testing.T) {
	// The churn scenario's content (4s assets) with churn itself
	// disabled: this test kills by hand, precisely when the stream is
	// known to be in flight.
	s, err := ParseScenario("churn?kills=0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartCluster(context.Background(), s, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.AwaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	resc := make(chan SessionResult, 1)
	go func() { resc <- c.RunSession(context.Background(), 1, KindVOD) }()

	// Find the edge the session landed on.
	serving := -1
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		for i, e := range c.Edges {
			if e.Server.Stats().ActiveClients > 0 {
				serving = i
			}
		}
		return serving >= 0
	}, "session never started streaming")
	// Let some media flow so the resume has an offset to carry.
	time.Sleep(300 * time.Millisecond)
	if err := c.KillEdge(serving); err != nil {
		t.Fatal(err)
	}

	res := <-resc
	if res.Err != "" {
		t.Fatalf("session failed despite failover: %s (failovers=%d retries=%d)", res.Err, res.Failovers, res.Retries)
	}
	if res.Failovers < 1 {
		t.Fatalf("session claims a clean run after its edge was killed: %+v", res)
	}
	killedHost := c.EdgeIDs[serving] + ".lod"
	if res.Edge == killedHost {
		t.Fatalf("final edge %s is the killed one", res.Edge)
	}
	if res.VideoFrames == 0 || res.BytesRead == 0 {
		t.Fatalf("no media delivered: %+v", res)
	}
	// The client's failure report killed the node at the registry, so
	// later clients are spared the corpse without waiting out the TTL.
	dead := false
	for _, n := range c.Registry().Nodes() {
		if n.ID == c.EdgeIDs[serving] && n.Dead {
			dead = true
		}
	}
	if !dead {
		t.Fatal("killed edge not marked dead at the registry")
	}
}

// TestRunChurnScenario runs the churn scenario family end to end, small:
// one kill and restart mid-swarm, every session expected to survive.
func TestRunChurnScenario(t *testing.T) {
	s, err := ParseScenario("churn?kills=1&firstkill=400ms&restartafter=800ms&duration=2s&rate=50&backoff=50ms")
	if err != nil {
		t.Fatal(err)
	}
	const clients, edges = 12, 2
	rep, err := Run(context.Background(), s, clients, edges)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions.Failed > 0 {
		t.Fatalf("%d sessions failed under churn: %v", rep.Sessions.Failed, rep.Sessions.Errors)
	}
	if rep.Sessions.Completed != clients {
		t.Fatalf("completed = %d, want %d", rep.Sessions.Completed, clients)
	}
	if rep.Sessions.Failovers < 1 || rep.Sessions.FailedOver < 1 {
		t.Fatalf("no failovers recorded (failovers=%d failedOver=%d); the kill missed every session",
			rep.Sessions.Failovers, rep.Sessions.FailedOver)
	}
	if rep.Cluster.NodeDeaths < 1 {
		t.Fatalf("nodeDeaths = %v; the dead edge was never reported", rep.Cluster.NodeDeaths)
	}
	if rep.Cluster.FailureReports < 1 {
		t.Fatalf("failureReports = %v", rep.Cluster.FailureReports)
	}
	if rep.Config.Churn == nil || rep.Config.Churn.Kills != 1 {
		t.Fatalf("churn config missing from the record: %+v", rep.Config.Churn)
	}
	if rep.Config.FailoverAttempts < 1 {
		t.Fatalf("failover attempts missing from the record: %+v", rep.Config)
	}
}

// TestChurnScenarioValidation covers the new guard rails.
func TestChurnScenarioValidation(t *testing.T) {
	base, err := ParseScenario("churn")
	if err != nil {
		t.Fatal(err)
	}
	bad := base
	bad.Churn = ChurnSpec{Kills: 3} // several kills, no interval
	if err := bad.Validate(); err == nil {
		t.Error("multi-kill churn without interval accepted")
	}
	bad = base
	bad.FailoverAttempts = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative failover attempts accepted")
	}
	bad = base
	bad.Churn.FirstKill = -time.Second
	if err := bad.Validate(); err == nil {
		t.Error("negative first kill accepted")
	}
	// Churn demands a cluster with somewhere to fail over to.
	if _, err := StartCluster(context.Background(), base, 1, time.Second); err == nil {
		t.Error("churn on a single-edge cluster accepted")
	}
}

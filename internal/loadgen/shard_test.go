package loadgen

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/metrics"
)

// -update regenerates the committed merge golden from the current
// writer: go test ./internal/loadgen -run MergeShardRunsGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestShardBounds pins the population split: contiguous, exhaustive,
// near-equal ranges that depend on (clients, shards) alone.
func TestShardBounds(t *testing.T) {
	cases := []struct{ clients, shards int }{
		{1, 1}, {10, 1}, {10, 3}, {16, 4}, {17, 4}, {10000, 8}, {7, 7},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%dc%ds", tc.clients, tc.shards), func(t *testing.T) {
			b := shardBounds(tc.clients, tc.shards)
			if len(b) != tc.shards+1 {
				t.Fatalf("len(bounds) = %d, want %d", len(b), tc.shards+1)
			}
			if b[0] != 0 || b[tc.shards] != tc.clients {
				t.Fatalf("bounds %v don't cover [0, %d)", b, tc.clients)
			}
			min, max := tc.clients, 0
			for i := 0; i < tc.shards; i++ {
				n := b[i+1] - b[i]
				if n < 1 {
					t.Fatalf("shard %d is empty: bounds %v", i, b)
				}
				if n < min {
					min = n
				}
				if n > max {
					max = n
				}
			}
			if max-min > 1 {
				t.Fatalf("shard sizes spread %d–%d, want near-equal: %v", min, max, b)
			}
		})
	}
}

// mergeFixture is a fixed synthetic shard-pool output: three shards
// with deliberately different latency shapes (shard 0 carries the lone
// outlier), failures, and failovers, so the merged record exercises
// every aggregation path without running a cluster.
func mergeFixture() (Scenario, []ShardRun) {
	sc := Scenario{
		Name:        "merge-golden",
		Description: "synthetic shard-merge fixture",
		Assets:      2, AssetDuration: time.Second,
		Profile: "modem-56k",
		Mix:     []Share{{KindVOD, 3}, {KindLive, 1}},
		Arrival: Arrival{Process: "uniform", Rate: 10},
		Seed:    7,
	}
	session := func(id int, kind Kind, startup float64, stalls int, err string) SessionResult {
		res := SessionResult{
			ID: id, Kind: kind, Edge: "edge-1", Err: err,
			StartupMs: startup, DurationMs: 1000,
			Stalls: stalls, StallMs: float64(stalls) * 40,
			MaxSkewMs: startup / 10, MeanSkewMs: startup / 20,
			BytesRead: 1 << 14, VideoFrames: 50, SlidesShown: 2,
		}
		if err != "" {
			res = SessionResult{ID: id, Kind: kind, Err: err}
		}
		return res
	}
	runs := []ShardRun{
		{Index: 0, Start: 0, Wall: 4200 * time.Millisecond, Results: []SessionResult{
			session(0, KindVOD, 12, 0, ""),
			session(1, KindVOD, 900, 2, ""), // the union's p99 tail lives here
			session(2, KindLive, 15, 0, ""),
		}},
		{Index: 1, Start: 3, Wall: 3900 * time.Millisecond, Results: []SessionResult{
			session(3, KindVOD, 18, 0, ""),
			session(4, KindVOD, 22, 1, ""),
			session(5, KindVOD, 0, 0, "edge refused"),
		}},
		{Index: 2, Start: 6, Wall: 4050 * time.Millisecond, Results: []SessionResult{
			session(6, KindLive, 25, 0, ""),
			session(7, KindVOD, 30, 0, ""),
			session(8, KindVOD, 28, 0, ""),
		}},
	}
	// One survivor-by-failover so sessions.failedOver is nonzero.
	runs[2].Results[1].Failovers = 1
	runs[2].Results[1].Retries = 2
	return sc, runs
}

// mergedReport folds the fixture runs into a full record and strips the
// environment-dependent provenance so the bytes are machine-stable.
func mergedReport(sc Scenario, runs []ShardRun) *Report {
	results, infos := MergeShardRuns(runs)
	rep := buildReport(sc, len(results), 2, 4200*time.Millisecond, 0, results,
		metrics.Snapshot{}, metrics.Snapshot{}, nil, nil, nil, infos, 0)
	rep.GeneratedAt = "2026-01-01T00:00:00Z"
	rep.GoVersion = "go-fixed"
	rep.NumCPU = 1
	rep.GoMaxProcs = 1
	return rep
}

// TestMergeShardRunsGolden is the merge's byte-stability contract: the
// record built from the fixture matches the committed golden exactly,
// and feeding the shards in any order produces the identical bytes —
// the merge sorts by shard index, it does not trust arrival order.
func TestMergeShardRunsGolden(t *testing.T) {
	sc, runs := mergeFixture()
	var got bytes.Buffer
	if err := mergedReport(sc, runs).WriteJSON(&got); err != nil {
		t.Fatal(err)
	}

	shuffled := []ShardRun{runs[2], runs[0], runs[1]}
	var again bytes.Buffer
	if err := mergedReport(sc, shuffled).WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), again.Bytes()) {
		t.Fatal("merge is order-dependent: shuffled shard input changed the record bytes")
	}

	golden := filepath.Join("testdata", "merge_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("merged record drifted from golden %s (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s",
			golden, got.Bytes(), want)
	}
}

// TestMergeQuantileRecombination pins the percentile math: the merged
// p99 is the p99 of the union of raw samples, not the mean of per-shard
// p99s — the classic aggregation bug this test exists to catch. The
// fixture puts the whole tail in shard 0, so the two numbers differ by
// an order of magnitude.
func TestMergeQuantileRecombination(t *testing.T) {
	sc, runs := mergeFixture()
	rep := mergedReport(sc, runs)

	var union []float64
	var meanOfP99s float64
	for _, r := range runs {
		var startups []float64
		for _, res := range r.Results {
			if res.Err == "" {
				startups = append(startups, res.StartupMs)
			}
		}
		union = append(union, startups...)
		meanOfP99s += quantiles(startups).P99
	}
	meanOfP99s /= float64(len(runs))

	wantP99 := quantiles(union).P99
	if rep.StartupMs.P99 != wantP99 {
		t.Errorf("merged p99 = %v, want union p99 %v", rep.StartupMs.P99, wantP99)
	}
	if rep.StartupMs.P99 == meanOfP99s {
		t.Errorf("merged p99 equals the mean of per-shard p99s (%v); the fixture no longer discriminates", meanOfP99s)
	}
	if wantP99 < 5*meanOfP99s/3 && meanOfP99s < 5*wantP99/3 {
		t.Errorf("fixture too tame: union p99 %v vs mean-of-p99s %v should differ sharply", wantP99, meanOfP99s)
	}

	// The shards block mirrors the fixture.
	if len(rep.Shards) != len(runs) {
		t.Fatalf("shards block has %d entries, want %d", len(rep.Shards), len(runs))
	}
	if rep.Config.Shards != len(runs) {
		t.Errorf("config.shards = %d, want %d", rep.Config.Shards, len(runs))
	}
	totalClients, completed, failed := 0, 0, 0
	for i, sh := range rep.Shards {
		if sh.Index != i {
			t.Errorf("shards[%d].index = %d, want sorted order", i, sh.Index)
		}
		totalClients += sh.Clients
		completed += sh.Completed
		failed += sh.Failed
	}
	if totalClients != rep.Sessions.Requested {
		t.Errorf("shard clients sum to %d, sessions.requested = %d", totalClients, rep.Sessions.Requested)
	}
	if completed != rep.Sessions.Completed || failed != rep.Sessions.Failed {
		t.Errorf("shard totals %d/%d, sessions block %d/%d",
			completed, failed, rep.Sessions.Completed, rep.Sessions.Failed)
	}
}

// TestRunShardedShardCountInvariant is the determinism contract behind
// -shards: the same seed produces the same session population — the
// same kinds, the same completion and failure totals, the same frames
// delivered — at any shard count; only the measured timings move.
func TestRunShardedShardCountInvariant(t *testing.T) {
	s, err := ParseScenario("smoke?rate=120")
	if err != nil {
		t.Fatal(err)
	}
	const clients, edges = 24, 2
	one, err := RunSharded(context.Background(), s, clients, edges, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunSharded(context.Background(), s, clients, edges, 4)
	if err != nil {
		t.Fatal(err)
	}

	if one.Config.Shards != 1 || four.Config.Shards != 4 {
		t.Fatalf("config.shards = %d / %d, want 1 / 4", one.Config.Shards, four.Config.Shards)
	}
	if len(one.Shards) != 1 || len(four.Shards) != 4 {
		t.Fatalf("shards blocks = %d / %d entries, want 1 / 4", len(one.Shards), len(four.Shards))
	}
	if one.Sessions.Requested != clients || four.Sessions.Requested != clients {
		t.Fatalf("requested = %d / %d, want %d", one.Sessions.Requested, four.Sessions.Requested, clients)
	}
	if one.Sessions.Failed != 0 || four.Sessions.Failed != 0 {
		t.Fatalf("failures: shards=1 %v, shards=4 %v", one.Sessions.Errors, four.Sessions.Errors)
	}
	if one.Sessions.Completed != four.Sessions.Completed {
		t.Errorf("completed = %d vs %d across shard counts", one.Sessions.Completed, four.Sessions.Completed)
	}
	if !reflect.DeepEqual(one.Sessions.ByKind, four.Sessions.ByKind) {
		t.Errorf("session mix moved with the shard count: %v vs %v", one.Sessions.ByKind, four.Sessions.ByKind)
	}
	if one.Throughput.VideoFrames != four.Throughput.VideoFrames ||
		one.Throughput.SlidesShown != four.Throughput.SlidesShown {
		t.Errorf("delivered media moved with the shard count: %+v vs %+v", one.Throughput, four.Throughput)
	}
	var clientsAcross int
	for _, sh := range four.Shards {
		clientsAcross += sh.Clients
	}
	if clientsAcross != clients {
		t.Errorf("4-shard split covers %d clients, want %d", clientsAcross, clients)
	}
}

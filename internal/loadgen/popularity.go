package loadgen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// popularity is a scenario's asset-popularity model: the distribution a
// client draws a content index from when it picks which lecture, group,
// or channel to demand. Rank 0 (lec-0, grp-0, live-0) is always the
// most popular name, so the hot set is stable across runs and shard
// counts — the drawing rng is per-client (seeded from the global client
// id), which is what makes the population shard-count-invariant.
//
// The spec grammar (Scenario.Popularity, URL-query-safe — parameters
// separate with commas, never "&"):
//
//	""                     — alias for uniform
//	"uniform"              — every name equally likely
//	"zipf:s=1.1"           — Zipf-distributed ranks (optionally ",v=2";
//	                         s > 1, v >= 1, rand.NewZipf's parameters)
//	"hot:frac=0.9"         — probability frac of the single hot name
//	                         (index 0), a uniform draw over the whole
//	                         population otherwise
type popularity struct {
	mode string  // "uniform", "zipf", or "hot"
	s, v float64 // zipf shape
	frac float64 // hot-set probability mass
}

// parsePopularity validates and compiles a popularity spec.
func parsePopularity(spec string) (popularity, error) {
	mode, params, _ := strings.Cut(spec, ":")
	p := popularity{mode: mode, s: 1.1, v: 1, frac: 0.9}
	switch mode {
	case "":
		p.mode = "uniform"
	case "uniform":
		if params != "" {
			return popularity{}, fmt.Errorf("loadgen: uniform popularity takes no parameters, got %q", params)
		}
	case "zipf", "hot":
		for _, kv := range strings.Split(params, ",") {
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return popularity{}, fmt.Errorf("loadgen: popularity parameter %q is not key=value", kv)
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return popularity{}, fmt.Errorf("loadgen: popularity parameter %s=%q: %v", key, val, err)
			}
			switch {
			case mode == "zipf" && key == "s":
				p.s = f
			case mode == "zipf" && key == "v":
				p.v = f
			case mode == "hot" && key == "frac":
				p.frac = f
			default:
				return popularity{}, fmt.Errorf("loadgen: unknown %s popularity parameter %q", mode, key)
			}
		}
	default:
		return popularity{}, fmt.Errorf("loadgen: unknown popularity model %q (have uniform, zipf, hot)", mode)
	}
	switch {
	case p.mode == "zipf" && p.s <= 1:
		return popularity{}, fmt.Errorf("loadgen: zipf popularity needs s > 1, got %v", p.s)
	case p.mode == "zipf" && p.v < 1:
		return popularity{}, fmt.Errorf("loadgen: zipf popularity needs v >= 1, got %v", p.v)
	case p.mode == "hot" && (p.frac <= 0 || p.frac > 1):
		return popularity{}, fmt.Errorf("loadgen: hot popularity needs 0 < frac <= 1, got %v", p.frac)
	}
	return p, nil
}

// pick draws one index in [0, n) from the model using the caller's rng.
// Rank 0 is the most popular index.
func (p popularity) pick(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	switch p.mode {
	case "zipf":
		// NewZipf consumes no randomness at construction, so building it
		// per draw keeps the per-client rng stream identical to a shared
		// generator while staying goroutine-free.
		return int(rand.NewZipf(rng, p.s, p.v, uint64(n-1)).Uint64())
	case "hot":
		if rng.Float64() < p.frac {
			return 0
		}
		return rng.Intn(n)
	}
	return rng.Intn(n)
}

package loadgen

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestNamedScenariosValidate(t *testing.T) {
	all := Scenarios()
	if len(all) < 4 {
		t.Fatalf("only %d named scenarios", len(all))
	}
	seen := make(map[string]bool)
	for _, s := range all {
		if err := s.Validate(); err != nil {
			t.Errorf("scenario %s invalid: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %s", s.Name)
		}
		seen[s.Name] = true
	}
	for _, want := range []string{"mixed", "smoke", "vod", "live", "seek", "flashcrowd", "zipf"} {
		if !seen[want] {
			t.Errorf("missing scenario %q", want)
		}
	}
}

func TestParseScenarioPlain(t *testing.T) {
	s, err := ParseScenario("mixed")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "mixed" || s.Assets < 1 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestParseScenarioOverrides(t *testing.T) {
	s, err := ParseScenario("mixed?assets=12&duration=2s&process=burst&rate=400&burst=100&seed=9&cachebytes=65536")
	if err != nil {
		t.Fatal(err)
	}
	if s.Assets != 12 {
		t.Errorf("assets = %d", s.Assets)
	}
	if s.AssetDuration != 2*time.Second {
		t.Errorf("duration = %v", s.AssetDuration)
	}
	if s.Arrival.Process != "burst" || s.Arrival.Rate != 400 || s.Arrival.Burst != 100 {
		t.Errorf("arrival = %+v", s.Arrival)
	}
	if s.Seed != 9 || s.CacheBytes != 65536 {
		t.Errorf("seed/cache = %d/%d", s.Seed, s.CacheBytes)
	}

	s, err = ParseScenario("flashcrowd?popularity=zipf:s=1.3,v=2&cachepolicy=lru")
	if err != nil {
		t.Fatal(err)
	}
	if s.Popularity != "zipf:s=1.3,v=2" {
		t.Errorf("popularity = %q", s.Popularity)
	}
	if s.CachePolicy != "lru" {
		t.Errorf("cachePolicy = %q", s.CachePolicy)
	}
}

func TestParseScenarioErrors(t *testing.T) {
	cases := []string{
		"nope",                        // unknown name
		"mixed?bogus=1",               // unknown key
		"mixed?assets=x",              // bad value
		"mixed?assets=0",              // invalid after override
		"mixed?duration=-3s",          // invalid duration
		"mixed?process=teleport",      // invalid process
		"mixed?process=burst",         // burst without size (mixed has Burst 0)
		"mixed?rate=0",                // zero rate
		"mixed?popularity=zipf:s=0.5", // zipf needs s > 1
		"mixed?popularity=heavy",      // unknown popularity model
		"mixed?cachepolicy=arc",       // unknown cache policy
	}
	for _, spec := range cases {
		if _, err := ParseScenario(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if _, err := ParseScenario("nope"); err == nil || !strings.Contains(err.Error(), "mixed") {
		t.Error("unknown-scenario error does not list the valid names")
	}
}

func TestPickKindFollowsWeights(t *testing.T) {
	s, err := ParseScenario("mixed")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	counts := make(map[Kind]int)
	const n = 10000
	for i := 0; i < n; i++ {
		counts[s.pickKind(rng)]++
	}
	total := 0
	for _, sh := range s.Mix {
		total += sh.Weight
	}
	for _, sh := range s.Mix {
		want := float64(n) * float64(sh.Weight) / float64(total)
		got := float64(counts[sh.Kind])
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("kind %s drawn %v times, want ≈%v", sh.Kind, got, want)
		}
	}
}

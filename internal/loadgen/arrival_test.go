package loadgen

import (
	"math"
	"testing"
	"time"
)

func TestArrivalOffsetsUniform(t *testing.T) {
	a := Arrival{Process: "uniform", Rate: 100}
	off, err := a.Offsets(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(off) != 10 {
		t.Fatalf("len = %d", len(off))
	}
	for i, o := range off {
		want := time.Duration(i) * 10 * time.Millisecond
		if o != want {
			t.Fatalf("offset[%d] = %v, want %v", i, o, want)
		}
	}
}

func TestArrivalOffsetsPoisson(t *testing.T) {
	a := Arrival{Process: "poisson", Rate: 200}
	const n = 2000
	off, err := a.Offsets(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if off[i] < off[i-1] {
			t.Fatalf("offsets not sorted at %d: %v < %v", i, off[i], off[i-1])
		}
	}
	// The window for n arrivals at rate r concentrates around n/r.
	want := float64(n) / a.Rate
	got := off[n-1].Seconds()
	if math.Abs(got-want) > want/2 {
		t.Fatalf("poisson window = %.2fs, want ≈%.2fs", got, want)
	}
	// Determinism: same seed, same schedule; different seed, different.
	again, _ := a.Offsets(n, 7)
	for i := range off {
		if off[i] != again[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	other, _ := a.Offsets(n, 8)
	same := true
	for i := range off {
		if off[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestArrivalOffsetsBurst(t *testing.T) {
	a := Arrival{Process: "burst", Rate: 100, Burst: 25}
	off, err := a.Offsets(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Bursts of 25 spaced 250ms: clients 0-24 at 0, 25-49 at 250ms,
	// 50-59 at 500ms.
	if off[0] != 0 || off[24] != 0 {
		t.Fatalf("first burst not simultaneous: %v %v", off[0], off[24])
	}
	if off[25] != 250*time.Millisecond || off[49] != 250*time.Millisecond {
		t.Fatalf("second burst at %v/%v, want 250ms", off[25], off[49])
	}
	if off[59] != 500*time.Millisecond {
		t.Fatalf("third burst at %v, want 500ms", off[59])
	}
}

func TestArrivalOffsetsFlash(t *testing.T) {
	a := Arrival{Process: "flash", Rate: 400}
	const n = 2000
	off, err := a.Offsets(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	window := float64(n) / a.Rate
	for i, o := range off {
		if i > 0 && o < off[i-1] {
			t.Fatalf("offsets not sorted at %d: %v < %v", i, o, off[i-1])
		}
		if o < 0 || o.Seconds() > window {
			t.Fatalf("offset[%d] = %v outside the %gs window", i, o, window)
		}
	}
	// Determinism: same seed, same schedule; different seed, different.
	again, _ := a.Offsets(n, 3)
	for i := range off {
		if off[i] != again[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	other, _ := a.Offsets(n, 4)
	same := true
	for i := range off {
		if off[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
	// The long-run rate is preserved: the full window is ≈ n/Rate.
	if got := off[n-1].Seconds(); math.Abs(got-window) > window/4 {
		t.Fatalf("flash window = %.2fs, want ≈%.2fs", got, window)
	}
}

func TestArrivalOffsetsErrors(t *testing.T) {
	cases := []Arrival{
		{Process: "poisson", Rate: 0},
		{Process: "nope", Rate: 10},
		{Process: "burst", Rate: 10, Burst: 0},
	}
	for _, a := range cases {
		if _, err := a.Offsets(5, 1); err == nil {
			t.Fatalf("arrival %+v accepted", a)
		}
	}
	if _, err := (Arrival{Process: "uniform", Rate: 10}).Offsets(-1, 1); err == nil {
		t.Fatal("negative count accepted")
	}
}

package loadgen

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestParsePopularity(t *testing.T) {
	valid := map[string]popularity{
		"":                  {mode: "uniform", s: 1.1, v: 1, frac: 0.9},
		"uniform":           {mode: "uniform", s: 1.1, v: 1, frac: 0.9},
		"zipf":              {mode: "zipf", s: 1.1, v: 1, frac: 0.9},
		"zipf:s=1.5":        {mode: "zipf", s: 1.5, v: 1, frac: 0.9},
		"zipf:s=1.2,v=3":    {mode: "zipf", s: 1.2, v: 3, frac: 0.9},
		"hot:frac=0.75":     {mode: "hot", s: 1.1, v: 1, frac: 0.75},
		"hot":               {mode: "hot", s: 1.1, v: 1, frac: 0.9},
		"zipf:v=2":          {mode: "zipf", s: 1.1, v: 2, frac: 0.9},
		"hot:frac=1":        {mode: "hot", s: 1.1, v: 1, frac: 1},
		"zipf:s=1.01,v=1.5": {mode: "zipf", s: 1.01, v: 1.5, frac: 0.9},
	}
	for spec, want := range valid {
		got, err := parsePopularity(spec)
		if err != nil {
			t.Errorf("parsePopularity(%q): %v", spec, err)
			continue
		}
		if got != want {
			t.Errorf("parsePopularity(%q) = %+v, want %+v", spec, got, want)
		}
	}
	invalid := []string{
		"zipfian",          // unknown model
		"uniform:s=2",      // uniform takes no parameters
		"zipf:s=1",         // s must exceed 1
		"zipf:s=0.5",       // s must exceed 1
		"zipf:v=0.5",       // v must be >= 1
		"zipf:frac=0.5",    // hot's parameter on zipf
		"hot:s=1.2",        // zipf's parameter on hot
		"hot:frac=0",       // frac must be positive
		"hot:frac=1.5",     // frac must be <= 1
		"hot:frac",         // not key=value
		"zipf:s=abc",       // not a number
		"zipf:s=1.1&v=2",   // "&" is not the separator (commas are)
		"zipf:s=1.1;junk",  // not key=value
		"hot:frac=0.9,x=1", // unknown parameter
	}
	for _, spec := range invalid {
		if _, err := parsePopularity(spec); err == nil {
			t.Errorf("parsePopularity(%q) accepted an invalid spec", spec)
		}
	}
}

// TestPopularityPickShapes sanity-checks each model's distribution with
// a seeded rng: uniform is flat-ish, zipf is head-heavy with rank 0 on
// top, and hot puts at least frac of the mass on index 0.
func TestPopularityPickShapes(t *testing.T) {
	const n, draws = 8, 20000
	histogram := func(spec string) []int {
		t.Helper()
		p, err := parsePopularity(spec)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			idx := p.pick(rng, n)
			if idx < 0 || idx >= n {
				t.Fatalf("%s: pick returned %d, out of [0, %d)", spec, idx, n)
			}
			counts[idx]++
		}
		return counts
	}

	uni := histogram("uniform")
	for i, c := range uni {
		if c < draws/n/2 || c > draws/n*2 {
			t.Errorf("uniform: index %d drew %d of %d, expected near %d", i, c, draws, draws/n)
		}
	}

	zipf := histogram("zipf:s=1.1")
	if zipf[0] < draws/3 {
		t.Errorf("zipf: rank 0 drew %d of %d, expected a dominant head", zipf[0], draws)
	}
	if zipf[0] <= zipf[1] || zipf[1] <= zipf[n-1] {
		t.Errorf("zipf: histogram %v is not head-heavy", zipf)
	}

	hot := histogram("hot:frac=0.9")
	if float64(hot[0]) < 0.85*draws {
		t.Errorf("hot: index 0 drew %d of %d, expected >= ~90%%", hot[0], draws)
	}

	// n <= 1 always picks 0, whatever the model.
	for _, spec := range []string{"uniform", "zipf:s=1.1", "hot:frac=0.9"} {
		p, _ := parsePopularity(spec)
		rng := rand.New(rand.NewSource(1))
		if got := p.pick(rng, 1); got != 0 {
			t.Errorf("%s: pick(n=1) = %d, want 0", spec, got)
		}
		if got := p.pick(rng, 0); got != 0 {
			t.Errorf("%s: pick(n=0) = %d, want 0", spec, got)
		}
	}
}

// TestZipfPopulationShardCountInvariant is the popularity side of the
// determinism contract behind -shards (see
// TestRunShardedShardCountInvariant): every name draw derives from the
// client's global id alone — rng seeded Seed<<20+id, exactly as
// runSessionWith does — so partitioning the population into shards, in
// any order, reproduces the identical drawn multiset of asset names.
func TestZipfPopulationShardCountInvariant(t *testing.T) {
	s, err := ParseScenario("zipf?assets=12")
	if err != nil {
		t.Fatal(err)
	}
	const clients = 600
	c := &Cluster{Scenario: s}
	for i := 0; i < s.Assets; i++ {
		c.AssetNames = append(c.AssetNames, fmt.Sprintf("lec-%d", i))
	}
	for i := 0; i < s.Groups; i++ {
		c.GroupNames = append(c.GroupNames, fmt.Sprintf("grp-%d", i))
	}
	if c.pop, err = parsePopularity(s.Popularity); err != nil {
		t.Fatal(err)
	}

	// Kinds are drawn once, before any shard split (as RunSharded does).
	mixRng := rand.New(rand.NewSource(s.Seed))
	kinds := make([]Kind, clients)
	for i := range kinds {
		kinds[i] = s.pickKind(mixRng)
	}
	population := func(ids []int) map[string]int {
		counts := make(map[string]int)
		for _, id := range ids {
			rng := rand.New(rand.NewSource(s.Seed<<20 + int64(id)))
			counts[c.sessionSpec(kinds[id], rng).Name]++
		}
		return counts
	}

	// One shard: ids in order. Four shards: each contiguous quarter
	// drained round-robin, the interleaving a concurrent shard pool
	// produces.
	oneShard := make([]int, clients)
	for i := range oneShard {
		oneShard[i] = i
	}
	var fourShards []int
	const per = clients / 4
	for off := 0; off < per; off++ {
		for shard := 0; shard < 4; shard++ {
			fourShards = append(fourShards, shard*per+off)
		}
	}

	one, four := population(oneShard), population(fourShards)
	if !reflect.DeepEqual(one, four) {
		t.Errorf("drawn population moved with the shard split:\n1 shard:  %v\n4 shards: %v", one, four)
	}

	// And the population is actually Zipf-shaped: lec-0 dominates.
	if one["lec-0"] <= one["lec-1"] || one["lec-0"] < clients/4 {
		t.Errorf("zipf population lost its head: %v", one)
	}
}

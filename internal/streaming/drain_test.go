package streaming

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/testutil"
)

// TestDrainRefusesNewSessionsAndWaits: a draining server answers new
// streaming requests with 503 while letting in-flight sessions finish,
// and Drain returns once the last one has.
func TestDrainRefusesNewSessionsAndWaits(t *testing.T) {
	srv := NewServer(nil)
	srv.Pacing = true // the session must outlive the drain calls below
	data := encodeTestAsset(t, 2*time.Second)
	if _, err := srv.RegisterAsset("lec", asf.NewReader(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One session in flight, paced over ~2s of presentation.
	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/vod/lec")
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		r := asf.NewReader(resp.Body)
		if _, err := r.ReadHeader(); err != nil {
			done <- err
			return
		}
		for {
			if _, err := r.ReadPacket(); err != nil {
				done <- nil // EOF: served to the end despite the drain
				return
			}
		}
	}()
	testutil.WaitUntil(t, 5*time.Second, func() bool { return srv.Stats().ActiveClients > 0 },
		"session never started")

	// Draining: new sessions are refused on every streaming endpoint.
	srv.SetDraining(true)
	if !srv.Draining() {
		t.Fatal("Draining() = false after SetDraining(true)")
	}
	rejectsBefore := srv.Stats().RejectedJoins
	for _, path := range []string{"/vod/lec", "/live/nope", "/group/nope"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("GET %s while draining = %d, want 503", path, resp.StatusCode)
		}
	}
	if got := srv.Stats().RejectedJoins - rejectsBefore; got != 3 {
		t.Fatalf("drain refusals counted = %d, want 3", got)
	}
	// Mirror fetches keep working: draining stops viewers, not the
	// relay tier.
	resp, err := http.Get(ts.URL + "/fetch/lec")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /fetch while draining = %d, want 200", resp.StatusCode)
	}

	// Drain with the session still running times out and says so.
	shortCtx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	err = srv.Drain(shortCtx)
	cancel()
	if err == nil {
		t.Fatal("Drain returned with a session still active")
	}

	// With a real deadline the session completes and Drain succeeds.
	ctx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain = %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight session broken by drain: %v", err)
	}

	// Un-draining reopens the door.
	srv.SetDraining(false)
	resp, err = http.Get(ts.URL + "/vod/lec")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after undrain = %d, want 200", resp.StatusCode)
	}
}

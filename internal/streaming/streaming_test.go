package streaming

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/encoder"
	"repro/internal/media"
	"repro/internal/testutil"
)

// encodeTestAsset produces a short stored lecture container.
func encodeTestAsset(t testing.TB, dur time.Duration) []byte {
	t.Helper()
	p, err := codec.ByName("modem-56k")
	if err != nil {
		t.Fatal(err)
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "stream test", Duration: dur, Profile: p, SlideCount: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{}, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRegisterAndListAssets(t *testing.T) {
	srv := NewServer(nil)
	data := encodeTestAsset(t, 2*time.Second)
	a, err := srv.RegisterAsset("lec1", asf.NewReader(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Header.Title != "stream test" {
		t.Fatalf("title = %q", a.Header.Title)
	}
	if len(a.Packets) == 0 || a.Bytes() == 0 {
		t.Fatal("asset has no packets")
	}
	if _, err := srv.RegisterAsset("lec1", asf.NewReader(bytes.NewReader(data))); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate register = %v", err)
	}
	if got := srv.AssetNames(); len(got) != 1 || got[0] != "lec1" {
		t.Fatalf("AssetNames = %v", got)
	}
	if _, ok := srv.Asset("lec1"); !ok {
		t.Fatal("Asset lookup failed")
	}
}

func TestVODEndpointUnpaced(t *testing.T) {
	srv := NewServer(nil)
	srv.Pacing = false // no real-time pacing in unit tests
	data := encodeTestAsset(t, 2*time.Second)
	if _, err := srv.RegisterAsset("lec1", asf.NewReader(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/vod/lec1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := asf.NewReader(resp.Body)
	h, err := r.ReadHeader()
	if err != nil {
		t.Fatal(err)
	}
	if h.Title != "stream test" {
		t.Fatalf("title = %q", h.Title)
	}
	n := 0
	for {
		if _, err := r.ReadPacket(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	asset, _ := srv.Asset("lec1")
	if n != len(asset.Packets) {
		t.Fatalf("received %d packets, asset has %d", n, len(asset.Packets))
	}
	st := srv.Stats()
	if st.VODSessions != 1 || st.PacketsSent != int64(n) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVODNotFound(t *testing.T) {
	srv := NewServer(nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/vod/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestAssetsEndpoint(t *testing.T) {
	srv := NewServer(nil)
	data := encodeTestAsset(t, time.Second)
	if _, err := srv.RegisterAsset("a1", asf.NewReader(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/assets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["name"] != "a1" {
		t.Fatalf("assets = %v", got)
	}
}

func liveHeader(t *testing.T) asf.Header {
	t.Helper()
	return asf.Header{
		Title: "live test",
		Streams: []asf.StreamProps{
			{ID: media.StreamVideo, Kind: media.KindVideo, Codec: "sim-mpeg4", BitsPerSecond: 56_000},
			{ID: media.StreamScript, Kind: media.KindScript, Codec: "script"},
		},
	}
}

func videoPacket(pts time.Duration, key bool, size int) asf.Packet {
	var flags uint8
	if key {
		flags |= asf.PacketKeyframe
	}
	return asf.Packet{
		Stream: media.StreamVideo, Kind: media.KindVideo, Flags: flags,
		PTS: pts, SendAt: pts, Payload: bytes.Repeat([]byte{1}, size),
	}
}

func TestChannelPublishSubscribe(t *testing.T) {
	ch, err := NewChannel("c1", liveHeader(t))
	if err != nil {
		t.Fatal(err)
	}
	if !ch.Header().Live() {
		t.Fatal("channel header not marked live")
	}

	// Publish a keyframe + delta before anyone joins: it forms the backlog.
	if err := ch.Publish(videoPacket(0, true, 100)); err != nil {
		t.Fatal(err)
	}
	if err := ch.Publish(videoPacket(time.Second, false, 50)); err != nil {
		t.Fatal(err)
	}

	sub, err := ch.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if len(sub.Backlog) != 2 {
		t.Fatalf("backlog = %d packets, want 2", len(sub.Backlog))
	}
	if !sub.Backlog[0].Keyframe() {
		t.Fatal("backlog does not start at a keyframe")
	}

	// New keyframe resets the backlog for later joiners.
	if err := ch.Publish(videoPacket(2*time.Second, true, 100)); err != nil {
		t.Fatal(err)
	}
	sub2, err := ch.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	if len(sub2.Backlog) != 1 {
		t.Fatalf("late joiner backlog = %d, want 1 (fresh keyframe)", len(sub2.Backlog))
	}

	// The first subscriber received the live packet.
	select {
	case p := <-sub.C:
		if p.PTS() != 2*time.Second {
			t.Fatalf("live packet PTS %v", p.PTS())
		}
	default:
		t.Fatal("live packet not delivered")
	}
	if ch.ClientCount() != 2 {
		t.Fatalf("clients = %d", ch.ClientCount())
	}
	if ch.Published() != 3 {
		t.Fatalf("published = %d", ch.Published())
	}
}

func TestChannelSlowSubscriberDrops(t *testing.T) {
	ch, err := NewChannel("slow", liveHeader(t))
	if err != nil {
		t.Fatal(err)
	}
	ch.SubscriberBuffer = 2
	sub, err := ch.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 5; i++ {
		if err := ch.Publish(videoPacket(time.Duration(i)*time.Second, false, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if ch.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", ch.Dropped())
	}
}

func TestChannelClose(t *testing.T) {
	ch, err := NewChannel("c", liveHeader(t))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := ch.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	ch.Close()
	if _, open := <-sub.C; open {
		t.Fatal("subscriber channel still open after Close")
	}
	if err := ch.Publish(videoPacket(0, true, 1)); !errors.Is(err, ErrChanClosed) {
		t.Fatalf("publish after close = %v", err)
	}
	if _, err := ch.Subscribe(); !errors.Is(err, ErrChanClosed) {
		t.Fatalf("subscribe after close = %v", err)
	}
	ch.Close() // idempotent
}

func TestSubscriberCloseIdempotent(t *testing.T) {
	ch, err := NewChannel("c", liveHeader(t))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := ch.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
	sub.Close()
	if ch.ClientCount() != 0 {
		t.Fatal("subscriber not removed")
	}
}

func TestPublishPacedCancellation(t *testing.T) {
	ch, err := NewChannel("c", liveHeader(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pkts := []asf.Packet{videoPacket(time.Hour, true, 1)}
	if err := ch.PublishPaced(ctx, nil, pkts); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestLiveEndpointEndToEnd(t *testing.T) {
	srv := NewServer(nil)
	ch, err := srv.CreateChannel("class", liveHeader(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateChannel("class", liveHeader(t)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate channel = %v", err)
	}
	if _, ok := srv.Channel("class"); !ok {
		t.Fatal("channel lookup failed")
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Client joins and reads in a goroutine.
	var wg sync.WaitGroup
	received := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := ts.Client().Get(ts.URL + "/live/class")
		if err != nil {
			t.Errorf("join: %v", err)
			received <- -1
			return
		}
		defer resp.Body.Close()
		r := asf.NewReader(resp.Body)
		if _, err := r.ReadHeader(); err != nil {
			t.Errorf("live header: %v", err)
			received <- -1
			return
		}
		n := 0
		for {
			_, err := r.ReadPacket()
			if err != nil {
				break // EOF when channel closes
			}
			n++
		}
		received <- n
	}()

	// Wait for the subscriber to attach, then publish and close.
	testutil.WaitUntil(t, 5*time.Second, func() bool { return ch.ClientCount() > 0 },
		"live subscriber never attached")
	for i := 0; i < 10; i++ {
		if err := ch.Publish(videoPacket(time.Duration(i)*100*time.Millisecond, i == 0, 64)); err != nil {
			t.Fatal(err)
		}
	}
	ch.Close()
	wg.Wait()

	if n := <-received; n != 10 {
		t.Fatalf("client received %d packets, want 10", n)
	}
	st := srv.Stats()
	if st.LiveSessions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLiveEndpointClosedChannelRejects(t *testing.T) {
	srv := NewServer(nil)
	ch, err := srv.CreateChannel("done", liveHeader(t))
	if err != nil {
		t.Fatal(err)
	}
	ch.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/live/done")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 410 {
		t.Fatalf("status = %d, want 410 Gone", resp.StatusCode)
	}
	if srv.Stats().RejectedJoins != 1 {
		t.Fatal("rejected join not counted")
	}
}

func TestChannelsEndpoint(t *testing.T) {
	srv := NewServer(nil)
	if _, err := srv.CreateChannel("c1", liveHeader(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/channels")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0]["name"] != "c1" {
		t.Fatalf("channels = %v", got)
	}
}

// lectureForProfile encodes a live lecture at an explicit profile.
func lectureForProfile(t *testing.T, p codec.Profile, dur time.Duration, slides int) ([]byte, error) {
	t.Helper()
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "late join", Duration: dur, Profile: p, SlideCount: slides, Seed: 12,
	})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{Live: true}, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

package streaming

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/encoder"
)

// encodeAtProfile encodes the same lecture at the named profile.
func encodeAtProfile(t *testing.T, profileName string) []byte {
	t.Helper()
	p, err := codec.ByName(profileName)
	if err != nil {
		t.Fatal(err)
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "multi", Duration: 2 * time.Second, Profile: p, SlideCount: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{}, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func setupGroup(t *testing.T) (*Server, *RateGroup) {
	t.Helper()
	srv := NewServer(nil)
	srv.Pacing = false
	g, err := srv.CreateRateGroup("lecture")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"modem-28k", "isdn-128k", "dsl-768k"} {
		data := encodeAtProfile(t, name)
		a, err := srv.RegisterAsset("lecture-"+name, asf.NewReader(bytes.NewReader(data)))
		if err != nil {
			t.Fatal(err)
		}
		g.AddVariant(a)
	}
	return srv, g
}

func TestRateGroupSelect(t *testing.T) {
	_, g := setupGroup(t)
	tests := []struct {
		bw   int64
		want string
	}{
		{10_000, "lecture-modem-28k"},    // below all: smallest
		{50_000, "lecture-modem-28k"},    // fits 28k only
		{200_000, "lecture-isdn-128k"},   // fits 128k
		{10_000_000, "lecture-dsl-768k"}, // fits all: richest
	}
	for _, tt := range tests {
		a, ok := g.Select(tt.bw)
		if !ok {
			t.Fatalf("Select(%d) found nothing", tt.bw)
		}
		if a.Name != tt.want {
			t.Errorf("Select(%d) = %s, want %s", tt.bw, a.Name, tt.want)
		}
	}
	if vs := g.Variants(); len(vs) != 3 {
		t.Fatalf("variants = %d", len(vs))
	}
}

func TestRateGroupEmptySelect(t *testing.T) {
	g := &RateGroup{Name: "empty"}
	if _, ok := g.Select(1000); ok {
		t.Fatal("empty group selected a variant")
	}
}

func TestCreateRateGroupDuplicate(t *testing.T) {
	srv := NewServer(nil)
	if _, err := srv.CreateRateGroup("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateRateGroup("g"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate group = %v", err)
	}
	if _, ok := srv.RateGroup("g"); !ok {
		t.Fatal("group lookup failed")
	}
}

func TestGroupEndpointSelectsByBandwidth(t *testing.T) {
	srv, _ := setupGroup(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A modem student gets the 28k variant.
	resp, err := ts.Client().Get(ts.URL + "/group/lecture?bw=56000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := asf.NewReader(resp.Body)
	h, err := r.ReadHeader()
	if err != nil {
		t.Fatal(err)
	}
	var video int64
	for _, st := range h.Streams {
		video += st.BitsPerSecond
	}
	if video > 56_000 {
		t.Fatalf("56k client got a %d bps stream", video)
	}

	// A LAN student gets the richest variant.
	resp2, err := ts.Client().Get(ts.URL + "/group/lecture?bw=10000000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	r2 := asf.NewReader(resp2.Body)
	h2, err := r2.ReadHeader()
	if err != nil {
		t.Fatal(err)
	}
	var video2 int64
	for _, st := range h2.Streams {
		video2 += st.BitsPerSecond
	}
	if video2 <= video {
		t.Fatalf("LAN client got %d bps, modem client %d bps", video2, video)
	}
}

func TestGroupEndpointErrors(t *testing.T) {
	srv, _ := setupGroup(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/group/none")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("missing group status %d", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/group/lecture?bw=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad bw status %d", resp.StatusCode)
	}
	// Empty group 404s.
	if _, err := srv.CreateRateGroup("empty"); err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Get(ts.URL + "/group/empty")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("empty group status %d", resp.StatusCode)
	}
}

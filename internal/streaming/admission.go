package streaming

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/asf"
)

// ErrOverloaded is returned when a reservation would exceed capacity.
var ErrOverloaded = errors.New("streaming: server bandwidth capacity exceeded")

// Admission implements XOCPN-style channel set-up at the server: before a
// session starts, the bandwidth its streams require (declared in the
// container header, the QoS the paper's channels carry) is reserved
// against the server's uplink capacity. Sessions that do not fit are
// rejected rather than degrading everyone — the multimedia call-admission
// policy. The zero value admits everything (no capacity configured).
type Admission struct {
	mu sync.Mutex
	// CapacityBps is the total uplink budget; zero means unlimited.
	CapacityBps int64
	reserved    int64
	sessions    map[string]int64
	nextID      int
	rejected    int64
}

// NewAdmission creates an admission controller with the given capacity.
func NewAdmission(capacityBps int64) *Admission {
	return &Admission{CapacityBps: capacityBps}
}

// Reserve admits a session needing bps of bandwidth, returning a
// reservation token to release later. A zero-capacity controller admits
// everything.
func (a *Admission) Reserve(bps int64) (string, error) {
	if bps < 0 {
		return "", fmt.Errorf("streaming: negative bandwidth %d", bps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.CapacityBps > 0 && a.reserved+bps > a.CapacityBps {
		a.rejected++
		return "", fmt.Errorf("%w: %d + %d > %d", ErrOverloaded, a.reserved, bps, a.CapacityBps)
	}
	if a.sessions == nil {
		a.sessions = make(map[string]int64)
	}
	a.nextID++
	token := fmt.Sprintf("r%d", a.nextID)
	a.sessions[token] = bps
	a.reserved += bps
	return token, nil
}

// Release frees a reservation. Unknown tokens are ignored (idempotent).
func (a *Admission) Release(token string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if bps, ok := a.sessions[token]; ok {
		a.reserved -= bps
		delete(a.sessions, token)
	}
}

// Reserved returns the currently reserved bandwidth.
func (a *Admission) Reserved() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reserved
}

// Rejected returns how many sessions were refused.
func (a *Admission) Rejected() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rejected
}

// Sessions returns the number of active reservations.
func (a *Admission) Sessions() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.sessions)
}

// headerRate sums a header's declared per-stream bit rates — the session's
// QoS requirement used for admission.
func headerRate(h asf.Header) int64 {
	var total int64
	for _, st := range h.Streams {
		total += st.BitsPerSecond
	}
	return total
}

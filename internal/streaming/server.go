// Package streaming implements the Lecture-on-Demand server: stored-asset
// streaming (video-on-demand replay of published lectures) and live
// broadcast channels fed by an encoder session, both over HTTP as in the
// paper's §2.5 ("broadcast their encoded content in real time after
// finished configuring the server HTTP port and the URL").
//
// Endpoints (each serves under the /v1 prefix and its legacy
// unversioned alias; the route constants live in internal/proto, the
// single source of truth for the wire contract):
//
//	GET /v1/vod/{asset}        — stream a stored container, paced by packet
//	                             send times; ?start=<dur> seeks via the
//	                             index (a malformed or negative start is a
//	                             400 with a proto.Error body)
//	GET /v1/live/{channel}     — join a live broadcast; the header plus the
//	                             most recent keyframe-aligned packets are
//	                             replayed so a decoder can start, then
//	                             packets follow live
//	GET /v1/group/{name}?bw=N  — multi-bitrate selection: the richest
//	                             variant fitting N bits/s is streamed as
//	                             VOD
//	GET /v1/fetch/{asset}      — whole-container transfer (header, packets,
//	                             index) as fast as the link allows; the
//	                             origin→edge mirror path used by the relay
//	                             tier (internal/relay), exempt from pacing
//	                             and admission control
//	GET /v1/assets             — JSON list of stored assets
//	GET /v1/channels           — JSON list of live channels
//	GET /v1/groups             — JSON list of multi-rate groups and their
//	                             variant asset names (used by edges to
//	                             mirror whole groups)
//
// When Server.Admission is configured, every VOD/live session first
// reserves its declared stream bandwidth (XOCPN channel set-up);
// over-capacity requests receive 503. Edge nodes built on this server
// (see internal/relay) subscribe to /live/{channel} and mirror assets
// through /fetch/{asset} to re-serve both locally.
//
// Every server owns a metrics registry (Metrics) counting sessions
// started and active, packets and bytes sent, packets delayed by
// pacing, admission rejects, mirror fetches, declared bandwidth in
// flight, per-endpoint handling latency, time to first media packet
// (lod_first_packet_seconds, the server half of startup latency), and
// how far behind schedule paced packets fall under load
// (lod_pacing_lag_seconds). Mount it with
// Metrics().Expose(mux) to serve GET /metrics and GET /status next to
// the streaming endpoints, as cmd/lodserver does on every role.
package streaming

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/asf"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/vclock"
)

// Errors.
var (
	ErrNotFound   = errors.New("streaming: not found")
	ErrDuplicate  = errors.New("streaming: already exists")
	ErrChanClosed = errors.New("streaming: channel closed")
)

// Asset is one stored container registered with the server.
type Asset struct {
	Name   string
	Header asf.Header
	// Packets are the asset's packets in send order.
	Packets []asf.Packet
	// Index is the keyframe index (for future seek support).
	Index asf.Index

	// seekPos maps a packet sequence number to its position in Packets,
	// built once on first use; Packets must not change after that.
	seekOnce sync.Once
	seekPos  map[uint32]int

	// shared caches the pre-encoded wire form of Packets, built once on
	// first streaming use and then handed to every session — the VOD
	// half of zero-copy serving. Packets must not change after that.
	sharedOnce sync.Once
	shared     []*asf.Shared
}

// SharedPackets returns the asset's packets in pre-encoded shared form
// (asf.Shared): encoded exactly once, then written as-is by every
// session and mirror fetch. Encoding stops at the first invalid packet,
// matching the truncation the old per-session encode produced.
func (a *Asset) SharedPackets() []*asf.Shared {
	a.sharedOnce.Do(func() {
		a.shared = make([]*asf.Shared, 0, len(a.Packets))
		for _, p := range a.Packets {
			sp, err := asf.NewShared(p)
			if err != nil {
				break
			}
			a.shared = append(a.shared, sp)
		}
	})
	return a.shared
}

// Bytes returns the total payload size.
func (a *Asset) Bytes() int64 {
	var n int64
	for _, p := range a.Packets {
		n += int64(len(p.Payload))
	}
	return n
}

// SeekIndex returns the position in Packets of the last keyframe at or
// before the given presentation time, or 0 when the index has no entry
// that early (play from the beginning). Lookups are O(1): the seq→position
// map is computed once per asset, not rescanned per seek.
func (a *Asset) SeekIndex(at time.Duration) int {
	seq, ok := a.Index.Locate(at)
	if !ok {
		return 0
	}
	a.seekOnce.Do(a.buildSeekPos)
	if i, ok := a.seekPos[seq]; ok {
		return i
	}
	return 0
}

func (a *Asset) buildSeekPos() {
	a.seekPos = make(map[uint32]int, len(a.Packets))
	for i, p := range a.Packets {
		// First occurrence wins, matching the first-match semantics of the
		// linear scan this map replaces.
		if _, dup := a.seekPos[p.Seq]; !dup {
			a.seekPos[p.Seq] = i
		}
	}
}

// ServerStats counts server activity.
type ServerStats struct {
	VODSessions   int64
	LiveSessions  int64
	PacketsSent   int64
	BytesSent     int64
	ActiveClients int64
	RejectedJoins int64
	// MirrorFetches counts whole-container transfers served from /fetch/,
	// i.e. edge nodes pulling assets through the relay tier.
	MirrorFetches int64
	// InFlightBps is the summed declared bandwidth of the sessions
	// currently streaming — the load signal the relay registry balances
	// on (see relay.NodeStats.Load).
	InFlightBps int64
}

// Server is the LOD streaming server. Create with NewServer, register
// assets and channels, and expose via Handler.
type Server struct {
	clock vclock.Clock
	// pacer batches every paced VOD session's sleeps onto shared slot
	// timers (vclock.Wheel): thousands of concurrent sessions share a
	// handful of timer slots instead of allocating a timer per packet.
	pacer *vclock.Wheel

	mu       sync.RWMutex
	assets   map[string]*Asset
	channels map[string]*Channel
	groups   map[string]*RateGroup
	stats    ServerStats
	// assetSessions counts the sessions currently streaming each asset,
	// so cache eviction (relay.Edge) can pin assets that are in use.
	assetSessions map[string]int

	metrics *metrics.Registry
	inst    serverInstruments

	// draining, when set, refuses new VOD/live/group sessions with 503
	// so the node can finish its in-flight sessions and shut down; see
	// SetDraining and Drain. Mirror fetches and listings stay served —
	// draining stops accepting viewers, not cluster housekeeping.
	draining bool

	// Pacing controls whether VOD sessions honor packet send times; when
	// false packets are written as fast as possible (the pacing ablation).
	Pacing bool
	// Admission, when set, performs XOCPN-style bandwidth reservation
	// before every VOD/live session; over-capacity requests get 503.
	Admission *Admission
}

// NewServer creates a server on the given clock (nil = real clock).
func NewServer(clock vclock.Clock) *Server {
	if clock == nil {
		clock = vclock.Real{}
	}
	s := &Server{
		clock:         clock,
		pacer:         vclock.NewWheel(clock, vclock.DefaultGranularity),
		assets:        make(map[string]*Asset),
		channels:      make(map[string]*Channel),
		assetSessions: make(map[string]int),
		metrics:       metrics.NewRegistry(),
		Pacing:        true,
	}
	s.inst = newServerInstruments(s.metrics)
	return s
}

// serverInstruments are the server's metric handles, created once so
// the hot paths never touch the registry's lookup lock.
type serverInstruments struct {
	vodStarted   *metrics.Counter
	liveStarted  *metrics.Counter
	active       *metrics.Gauge
	inFlightBps  *metrics.Gauge
	packetsSent  *metrics.Counter
	bytesSent    *metrics.Counter
	packetsPaced *metrics.Counter
	rejects      *metrics.Counter
	mirrors      *metrics.Counter
	// firstPacketVOD/Live time request arrival → first media packet
	// written, the server-side half of a client's startup latency.
	firstPacketVOD  *metrics.Histogram
	firstPacketLive *metrics.Histogram
	// pacingLag records how far behind its scheduled send time a paced
	// VOD packet was written; growth under load is the server-side
	// pacing-jitter signal the load benchmarks track.
	pacingLag *metrics.Histogram
}

// Bucket bounds for the startup/pacing histograms: these measure
// sub-second scheduling behaviour, not whole-session durations, so
// they need finer resolution than DefBuckets.
var (
	firstPacketBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}
	pacingLagBuckets   = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}
)

func newServerInstruments(reg *metrics.Registry) serverInstruments {
	started := "Streaming sessions started, by kind."
	firstPacket := "Seconds from request arrival to the first media packet written, by kind."
	return serverInstruments{
		vodStarted:  reg.Counter("lod_sessions_started_total", started, metrics.Label{Key: "kind", Value: "vod"}),
		liveStarted: reg.Counter("lod_sessions_started_total", started, metrics.Label{Key: "kind", Value: "live"}),
		active:      reg.Gauge("lod_sessions_active", "Sessions currently streaming."),
		inFlightBps: reg.Gauge("lod_inflight_bps", "Summed declared bandwidth of active sessions, bits/s."),
		packetsSent: reg.Counter("lod_packets_sent_total", "Media packets written to clients."),
		bytesSent:   reg.Counter("lod_bytes_sent_total", "Payload bytes written to clients."),
		packetsPaced: reg.Counter("lod_packets_paced_total",
			"VOD packets that waited for their send time (pacing delays)."),
		rejects: reg.Counter("lod_admission_rejects_total", "Sessions refused by admission control or closed channels."),
		mirrors: reg.Counter("lod_mirror_fetches_total",
			"Whole-container transfers served from "+proto.PrefixFetch+" (edge mirror pulls)."),
		firstPacketVOD: reg.Histogram("lod_first_packet_seconds", firstPacket,
			firstPacketBuckets, metrics.Label{Key: "kind", Value: "vod"}),
		firstPacketLive: reg.Histogram("lod_first_packet_seconds", firstPacket,
			firstPacketBuckets, metrics.Label{Key: "kind", Value: "live"}),
		pacingLag: reg.Histogram("lod_pacing_lag_seconds",
			"How far behind its scheduled send time each paced VOD packet was written.",
			pacingLagBuckets),
	}
}

// Metrics returns the server's metric registry; mount its /metrics and
// /status endpoints with Metrics().Expose(mux).
func (s *Server) Metrics() *metrics.Registry { return s.metrics }

// parseAsset reads a whole stored container into a ready-to-serve
// Asset: seek positions built and shared packets pre-encoded, all
// before any server lock is taken — registration under traffic never
// parses inside the lock.
func parseAsset(name string, r *asf.Reader) (*Asset, error) {
	h, err := r.ReadHeader()
	if err != nil {
		return nil, fmt.Errorf("streaming: register %q: %w", name, err)
	}
	a := &Asset{Name: name, Header: h}
	for {
		p, err := r.ReadPacket()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("streaming: register %q: %w", name, err)
		}
		a.Packets = append(a.Packets, p)
	}
	a.Index = r.Index()
	a.seekOnce.Do(a.buildSeekPos)
	a.SharedPackets() // pre-encode now so the first session pays nothing
	return a, nil
}

// RegisterAsset parses a stored container and registers it by name. An
// already-registered name is ErrDuplicate — the pull-through mirror
// path must not clobber a copy that raced it; live replacement is
// PublishAsset.
func (s *Server) RegisterAsset(name string, r *asf.Reader) (*Asset, error) {
	a, err := parseAsset(name, r)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.assets[name]; ok {
		return nil, fmt.Errorf("%w: asset %q", ErrDuplicate, name)
	}
	s.assets[name] = a
	return a, nil
}

// PublishAsset parses a stored container and registers it by name,
// replacing any existing asset — the live publish path. The new copy is
// built fully aside and swapped in under the lock, so concurrent opens
// see either the old asset or the new one, never a partial state;
// sessions already streaming the old copy hold their own reference and
// finish on the old bytes.
func (s *Server) PublishAsset(name string, r *asf.Reader) (*Asset, error) {
	a, err := parseAsset(name, r)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.assets[name] = a
	s.mu.Unlock()
	return a, nil
}

// Asset returns a registered asset.
func (s *Server) Asset(name string) (*Asset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.assets[name]
	return a, ok
}

// RemoveAsset unregisters an asset, reporting whether it was present.
// Sessions already streaming it keep their reference and finish
// normally; only new lookups miss. This is the eviction hook of the
// edge's bounded mirror cache (relay.Edge).
func (s *Server) RemoveAsset(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.assets[name]; !ok {
		return false
	}
	delete(s.assets, name)
	return true
}

// AssetActiveSessions returns how many sessions are currently streaming
// the named asset — the pin signal keeping hot assets out of cache
// eviction.
func (s *Server) AssetActiveSessions(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.assetSessions[name]
}

// AssetNames returns registered asset names, sorted.
func (s *Server) AssetNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.assets))
	for n := range s.assets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetDraining switches refusal of new streaming sessions: while
// draining, /vod/, /live/ and /group/ answer 503 (counted as rejects)
// and in-flight sessions run to completion. A node going down cleanly
// deregisters from its registry, sets draining, and waits with Drain.
func (s *Server) SetDraining(v bool) {
	s.mu.Lock()
	s.draining = v
	s.mu.Unlock()
}

// Draining reports whether new sessions are being refused.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// Drain marks the server draining and blocks until every active session
// has finished or ctx expires (returning ctx's error with sessions
// still live). It is the graceful half of edge churn: the abrupt half —
// a kill — simply severs connections and lets clients fail over.
func (s *Server) Drain(ctx context.Context) error {
	s.SetDraining(true)
	for {
		if s.Stats().ActiveClients == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("streaming: drain: %d sessions still active: %w",
				s.Stats().ActiveClients, ctx.Err())
		case <-s.clock.After(10 * time.Millisecond):
		}
	}
}

// refuseDraining answers a streaming request with 503 when the server
// is draining, reporting whether it did.
func (s *Server) refuseDraining(w http.ResponseWriter) bool {
	if !s.Draining() {
		return false
	}
	s.reject()
	proto.WriteError(w, http.StatusServiceUnavailable, "streaming: server draining")
	return true
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

func (s *Server) addSent(packets, bytes int64) {
	s.mu.Lock()
	s.stats.PacketsSent += packets
	s.stats.BytesSent += bytes
	s.mu.Unlock()
	s.inst.packetsSent.Add(packets)
	s.inst.bytesSent.Add(bytes)
}

// beginStream books one started session of the given kind: stats,
// active/in-flight instruments, and — for stored assets — the per-asset
// session count that pins the asset against cache eviction. The
// returned func undoes the per-session parts and must be deferred.
func (s *Server) beginStream(kind, asset string, bps int64) func() {
	s.mu.Lock()
	if kind == "live" {
		s.stats.LiveSessions++
	} else {
		s.stats.VODSessions++
	}
	s.stats.ActiveClients++
	s.stats.InFlightBps += bps
	if asset != "" {
		s.assetSessions[asset]++
	}
	s.mu.Unlock()
	if kind == "live" {
		s.inst.liveStarted.Inc()
	} else {
		s.inst.vodStarted.Inc()
	}
	s.inst.active.Inc()
	s.inst.inFlightBps.Add(bps)
	return func() {
		s.mu.Lock()
		s.stats.ActiveClients--
		s.stats.InFlightBps -= bps
		if asset != "" {
			if s.assetSessions[asset]--; s.assetSessions[asset] <= 0 {
				delete(s.assetSessions, asset)
			}
		}
		s.mu.Unlock()
		s.inst.active.Dec()
		s.inst.inFlightBps.Add(-bps)
	}
}

// reject books one refused session.
func (s *Server) reject() {
	s.mu.Lock()
	s.stats.RejectedJoins++
	s.mu.Unlock()
	s.inst.rejects.Inc()
}

// timed wraps a handler with the per-endpoint latency histogram. For
// the streaming endpoints the observed time spans the whole session,
// so the upper buckets record session durations rather than
// request-response latency.
func (s *Server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.Histogram("lod_request_seconds",
		"Request handling time by endpoint; whole session duration for streaming endpoints.",
		nil, metrics.Label{Key: "endpoint", Value: endpoint})
	return func(w http.ResponseWriter, r *http.Request) {
		start := s.clock.Now()
		defer func() { hist.Observe(s.clock.Now().Sub(start).Seconds()) }()
		h(w, r)
	}
}

// Handler returns the HTTP handler exposing the server. Every route is
// mounted under both the /v1 prefix and its legacy unversioned alias;
// both forms share one handler (and one latency series) per endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(path, endpoint string, h http.HandlerFunc) {
		proto.HandleFunc(mux, path, s.timed(endpoint, h))
	}
	handle(proto.PrefixVOD, "vod", s.handleVOD)
	handle(proto.PrefixLive, "live", s.handleLive)
	handle(proto.PrefixGroup, "group", s.handleGroup)
	handle(proto.PrefixFetch, "fetch", s.handleFetch)
	handle(proto.PrefixPublish, "publish", s.handlePublish)
	handle(proto.PrefixUnpublish, "unpublish", s.handleUnpublish)
	handle(proto.PathAssets, "assets", s.handleAssets)
	handle(proto.PathChannels, "channels", s.handleChannels)
	handle(proto.PathGroups, "groups", s.handleGroups)
	return mux
}

// handlePublish accepts a stored container in the request body and
// publishes it under the path name, replacing any existing asset —
// the live half of the durable control plane. The container is parsed
// and pre-encoded fully before the swap, so a malformed upload changes
// nothing and concurrent opens never see a partial asset.
func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		proto.WriteError(w, http.StatusMethodNotAllowed, "streaming: publish requires POST")
		return
	}
	name := proto.RouteName(r.URL.Path, proto.PrefixPublish)
	if name == "" {
		proto.WriteError(w, http.StatusBadRequest, "streaming: publish: empty asset name")
		return
	}
	if _, err := s.PublishAsset(name, asf.NewReader(r.Body)); err != nil {
		proto.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleUnpublish removes the named asset or multi-rate group.
// In-flight sessions finish on their own references; new opens 404.
func (s *Server) handleUnpublish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		proto.WriteError(w, http.StatusMethodNotAllowed, "streaming: unpublish requires POST")
		return
	}
	name := proto.RouteName(r.URL.Path, proto.PrefixUnpublish)
	if name == "" {
		proto.WriteError(w, http.StatusBadRequest, "streaming: unpublish: empty asset name")
		return
	}
	removedAsset := s.RemoveAsset(name)
	removedGroup := s.RemoveRateGroup(name)
	if !removedAsset && !removedGroup {
		proto.WriteError(w, http.StatusNotFound, "streaming: unknown asset "+name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// GroupInfo describes one multi-rate group in the /groups listing.
type GroupInfo struct {
	Name string `json:"name"`
	// Variants are the group's asset names in ascending rate order.
	Variants []string `json:"variants"`
}

// Groups lists every registered multi-rate group, sorted by name.
func (s *Server) Groups() []GroupInfo {
	s.mu.RLock()
	groups := make([]*RateGroup, 0, len(s.groups))
	for _, g := range s.groups {
		groups = append(groups, g)
	}
	s.mu.RUnlock()
	out := make([]GroupInfo, 0, len(groups))
	for _, g := range groups {
		info := GroupInfo{Name: g.Name}
		for _, a := range g.Variants() {
			info.Variants = append(info.Variants, a.Name)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *Server) handleGroups(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.Groups()); err != nil {
		proto.WriteError(w, http.StatusInternalServerError, err.Error())
	}
}

// handleFetch transfers a whole stored container — header, every packet,
// and the trailing index — without pacing or admission control. It is the
// origin-side mirror path of the relay tier: edges pull an asset once and
// then serve it to their own clients.
func (s *Server) handleFetch(w http.ResponseWriter, r *http.Request) {
	name := proto.StreamName(r.URL.Path, proto.StreamFetch)
	asset, ok := s.Asset(name)
	if !ok {
		proto.WriteError(w, http.StatusNotFound, "streaming: unknown asset "+name)
		return
	}
	s.mu.Lock()
	s.stats.MirrorFetches++
	s.mu.Unlock()
	s.inst.mirrors.Inc()

	w.Header().Set("Content-Type", "application/x-wmp-stream")
	writer, err := asf.NewWriter(w, asset.Header)
	if err != nil {
		proto.WriteError(w, http.StatusInternalServerError, err.Error())
		return
	}
	var sentPkts, sentBytes int64
	for _, sp := range asset.SharedPackets() {
		if r.Context().Err() != nil {
			break
		}
		if err := writer.WriteShared(sp); err != nil {
			break // mirror went away
		}
		sentPkts++
		sentBytes += int64(sp.PayloadLen())
	}
	_ = writer.Close()
	s.addSent(sentPkts, sentBytes)
}

func (s *Server) handleAssets(w http.ResponseWriter, _ *http.Request) {
	type info struct {
		Name        string  `json:"name"`
		Title       string  `json:"title"`
		DurationSec float64 `json:"durationSec"`
		Packets     int     `json:"packets"`
		Bytes       int64   `json:"bytes"`
	}
	s.mu.RLock()
	out := make([]info, 0, len(s.assets))
	for _, a := range s.assets {
		out = append(out, info{
			Name: a.Name, Title: a.Header.Title,
			DurationSec: a.Header.Duration.Seconds(),
			Packets:     len(a.Packets), Bytes: a.Bytes(),
		})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		proto.WriteError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) handleChannels(w http.ResponseWriter, _ *http.Request) {
	type info struct {
		Name    string `json:"name"`
		Title   string `json:"title"`
		Clients int    `json:"clients"`
		Closed  bool   `json:"closed"`
	}
	s.mu.RLock()
	out := make([]info, 0, len(s.channels))
	for _, c := range s.channels {
		out = append(out, info{Name: c.Name, Title: c.Header().Title, Clients: c.ClientCount(), Closed: c.Closed()})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		proto.WriteError(w, http.StatusInternalServerError, err.Error())
	}
}

// handleVOD streams a stored asset, pacing by send times. A `start` query
// parameter (Go duration, e.g. ?start=30s) seeks to the last keyframe at
// or before that presentation time using the stored index; a malformed
// or negative value is answered with 400 and a proto.Error body rather
// than silently played from the top.
func (s *Server) handleVOD(w http.ResponseWriter, r *http.Request) {
	reqStart := s.clock.Now()
	if s.refuseDraining(w) {
		return
	}
	name := proto.StreamName(r.URL.Path, proto.StreamVOD)
	asset, ok := s.Asset(name)
	if !ok {
		// proto.Error body, not a bare text 404: an unpublished asset's
		// rejections are part of the /v1 contract like any other error.
		proto.WriteError(w, http.StatusNotFound, "streaming: unknown asset "+name)
		return
	}
	firstIdx := 0
	if raw := r.URL.Query().Get(proto.ParamStart); raw != "" {
		at, err := proto.ParseStart(raw)
		if err != nil {
			proto.WriteErr(w, err)
			return
		}
		firstIdx = asset.SeekIndex(at)
	}
	rate := headerRate(asset.Header)
	if s.Admission != nil {
		token, err := s.Admission.Reserve(rate)
		if err != nil {
			s.reject()
			proto.WriteError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		defer s.Admission.Release(token)
	}
	defer s.beginStream("vod", asset.Name, rate)()

	w.Header().Set("Content-Type", "application/x-wmp-stream")
	writer, err := asf.NewWriter(w, asset.Header)
	if err != nil {
		proto.WriteError(w, http.StatusInternalServerError, err.Error())
		return
	}
	flusher, _ := w.(http.Flusher)

	start := s.clock.Now()
	var sentPkts, sentBytes int64
	shared := asset.SharedPackets()
	if firstIdx > len(shared) {
		firstIdx = len(shared)
	}
	var sendBase time.Duration
	if firstIdx < len(shared) {
		sendBase = shared[firstIdx].SendAt()
	}
	for _, sp := range shared[firstIdx:] {
		if s.Pacing {
			due := start.Add(sp.SendAt() - sendBase)
			if wait := due.Sub(s.clock.Now()); wait > 0 {
				s.inst.packetsPaced.Inc()
				// The wheel batches this session's sleep with every
				// other paced session's; granularity-rounded lateness
				// is recorded by pacingLag like any other skew.
				if err := s.pacer.Sleep(r.Context(), wait); err != nil {
					s.addSent(sentPkts, sentBytes)
					return
				}
			} else if wait < 0 {
				s.inst.pacingLag.Observe((-wait).Seconds())
			}
		}
		if r.Context().Err() != nil {
			break
		}
		if err := writer.WriteShared(sp); err != nil {
			break // client went away
		}
		if sentPkts == 0 {
			s.inst.firstPacketVOD.Observe(s.clock.Now().Sub(reqStart).Seconds())
		}
		sentPkts++
		sentBytes += int64(sp.PayloadLen())
		if flusher != nil {
			flusher.Flush()
		}
	}
	// Stored streams end with their index for seek-capable clients.
	_ = writer.Close()
	s.addSent(sentPkts, sentBytes)
}

// handleLive attaches the client to a live channel.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	reqStart := s.clock.Now()
	if s.refuseDraining(w) {
		return
	}
	name := proto.StreamName(r.URL.Path, proto.StreamLive)
	s.mu.RLock()
	ch, ok := s.channels[name]
	s.mu.RUnlock()
	if !ok {
		proto.WriteError(w, http.StatusNotFound, "streaming: unknown channel "+name)
		return
	}
	rate := headerRate(ch.Header())
	if s.Admission != nil {
		token, err := s.Admission.Reserve(rate)
		if err != nil {
			s.reject()
			proto.WriteError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		defer s.Admission.Release(token)
	}
	defer s.beginStream("live", "", rate)()

	w.Header().Set("Content-Type", "application/x-wmp-stream")
	sub, err := ch.Subscribe()
	if err != nil {
		s.reject()
		proto.WriteError(w, http.StatusGone, err.Error())
		return
	}
	defer sub.Close()

	writer, err := asf.NewWriter(w, ch.Header())
	if err != nil {
		proto.WriteError(w, http.StatusInternalServerError, err.Error())
		return
	}
	flusher, _ := w.(http.Flusher)
	// Send the header immediately so the client can parse stream
	// properties before the first packet flows.
	if err := writer.WriteHeader(); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}

	var sentPkts, sentBytes int64
	defer func() { s.addSent(sentPkts, sentBytes) }()
	firstPacket := func() {
		if sentPkts == 0 {
			s.inst.firstPacketLive.Observe(s.clock.Now().Sub(reqStart).Seconds())
		}
	}

	// Replay the catch-up burst. Shared packets go out as-is: one write
	// of the already-encoded buffer per packet, one flush for the burst.
	for _, sp := range sub.Backlog {
		if err := writer.WriteShared(sp); err != nil {
			return
		}
		firstPacket()
		sentPkts++
		sentBytes += int64(sp.PayloadLen())
	}
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case sp, open := <-sub.C:
			if !open {
				return // channel closed by the encoder
			}
			if err := writer.WriteShared(sp); err != nil {
				return
			}
			firstPacket()
			sentPkts++
			sentBytes += int64(sp.PayloadLen())
			// Coalesce: drain whatever else is already queued before
			// flushing once. Under fan-out load this turns N tiny HTTP
			// chunks into one big one — the write-batching half of the
			// hot-path work — while an idle channel still flushes every
			// packet immediately.
			for drained := false; !drained; {
				select {
				case sp2, open2 := <-sub.C:
					if !open2 {
						if flusher != nil {
							flusher.Flush()
						}
						return
					}
					if err := writer.WriteShared(sp2); err != nil {
						return
					}
					sentPkts++
					sentBytes += int64(sp2.PayloadLen())
				default:
					drained = true
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

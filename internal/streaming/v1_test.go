package streaming

import (
	"bytes"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/asf"
)

// TestServerServesBothAPIVersions pins the /v1 rollout rule on the
// streaming server: every endpoint answers identically under the /v1
// prefix and its legacy unversioned alias.
func TestServerServesBothAPIVersions(t *testing.T) {
	srv := NewServer(nil)
	srv.Pacing = false
	data := encodeTestAsset(t, time.Second)
	if _, err := srv.RegisterAsset("lec", asf.NewReader(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	// Streams: byte-identical through either form.
	legacyCode, legacyBody := get("/vod/lec")
	v1Code, v1Body := get("/v1/vod/lec")
	if legacyCode != 200 || v1Code != 200 || !bytes.Equal(legacyBody, v1Body) {
		t.Fatalf("vod mismatch: legacy %d (%d bytes), v1 %d (%d bytes)",
			legacyCode, len(legacyBody), v1Code, len(v1Body))
	}
	if fetchCode, fetchBody := get("/v1/fetch/lec"); fetchCode != 200 || len(fetchBody) == 0 {
		t.Fatalf("v1 fetch = %d (%d bytes)", fetchCode, len(fetchBody))
	}

	// Listings: same JSON either way.
	for _, path := range []string{"/assets", "/channels", "/groups"} {
		lc, lb := get(path)
		vc, vb := get("/v1" + path)
		if lc != 200 || vc != 200 || !bytes.Equal(lb, vb) {
			t.Fatalf("listing %s mismatch: legacy %d, v1 %d", path, lc, vc)
		}
	}

	// Missing assets 404 under both forms.
	if code, _ := get("/v1/vod/nope"); code != 404 {
		t.Fatalf("v1 missing asset = %d, want 404", code)
	}

	// Both forms share one session accounting.
	if got := srv.Stats().VODSessions; got != 2 {
		t.Fatalf("VOD sessions = %d, want 2 (one per form)", got)
	}
}

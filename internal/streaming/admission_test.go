package streaming

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/testutil"
	"repro/internal/vclock"
)

func TestAdmissionReserveRelease(t *testing.T) {
	a := NewAdmission(100_000)
	t1, err := a.Reserve(60_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Reserved() != 60_000 || a.Sessions() != 1 {
		t.Fatalf("reserved=%d sessions=%d", a.Reserved(), a.Sessions())
	}
	// Second reservation exceeds capacity.
	if _, err := a.Reserve(60_000); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-capacity reserve = %v", err)
	}
	if a.Rejected() != 1 {
		t.Fatalf("rejected = %d", a.Rejected())
	}
	// A smaller one fits.
	t2, err := a.Reserve(40_000)
	if err != nil {
		t.Fatal(err)
	}
	a.Release(t1)
	if a.Reserved() != 40_000 {
		t.Fatalf("reserved after release = %d", a.Reserved())
	}
	a.Release(t1) // idempotent
	a.Release(t2)
	if a.Reserved() != 0 || a.Sessions() != 0 {
		t.Fatalf("not empty after releases: %d/%d", a.Reserved(), a.Sessions())
	}
}

func TestAdmissionZeroCapacityAdmitsAll(t *testing.T) {
	var a Admission
	for i := 0; i < 100; i++ {
		if _, err := a.Reserve(1 << 30); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAdmissionNegativeBandwidth(t *testing.T) {
	a := NewAdmission(1000)
	if _, err := a.Reserve(-1); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

// TestVODAdmissionControl verifies the paper-style call admission: with
// capacity for two modem sessions, the third concurrent VOD request gets
// 503 and no session leaks its reservation.
func TestVODAdmissionControl(t *testing.T) {
	clk := vclock.NewVirtual() // pacing stalls sessions so they stay active
	srv := NewServer(clk)
	data := encodeTestAsset(t, 5*time.Second)
	asset, err := srv.RegisterAsset("lec", asf.NewReader(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	rate := headerRate(asset.Header)
	srv.Admission = NewAdmission(2 * rate)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Two sessions admitted and parked on the paced clock.
	var resps []*http.Response
	for i := 0; i < 2; i++ {
		resp, err := ts.Client().Get(ts.URL + "/vod/lec")
		if err != nil {
			t.Fatal(err)
		}
		resps = append(resps, resp)
		r := asf.NewReader(resp.Body)
		if _, err := r.ReadHeader(); err != nil {
			t.Fatalf("session %d header: %v", i, err)
		}
	}
	// Wait until both reservations are in place.
	testutil.WaitUntil(t, 5*time.Second, func() bool { return srv.Admission.Sessions() >= 2 },
		"both admitted sessions never reserved bandwidth")
	// Third is refused.
	resp3, err := ts.Client().Get(ts.URL + "/vod/lec")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third session status %d, want 503", resp3.StatusCode)
	}
	if srv.Stats().RejectedJoins != 1 {
		t.Fatalf("rejected joins = %d", srv.Stats().RejectedJoins)
	}
	// Hang up the admitted sessions; reservations drain.
	for _, resp := range resps {
		resp.Body.Close()
	}
	testutil.WaitUntil(t, 5*time.Second, func() bool { return srv.Admission.Sessions() == 0 },
		"reservations leaked after sessions hung up")
}

// TestLiveAdmissionControl mirrors the check for live channels.
func TestLiveAdmissionControl(t *testing.T) {
	srv := NewServer(nil)
	ch, err := srv.CreateChannel("c", liveHeader(t))
	if err != nil {
		t.Fatal(err)
	}
	srv.Admission = NewAdmission(headerRate(ch.Header())) // room for one
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := ts.Client().Get(ts.URL + "/live/c")
		if err != nil {
			t.Errorf("first join: %v", err)
			return
		}
		defer resp.Body.Close()
		r := asf.NewReader(resp.Body)
		if _, err := r.ReadHeader(); err != nil {
			t.Errorf("live header: %v", err)
			return
		}
		for {
			if _, err := r.ReadPacket(); err != nil {
				return
			}
		}
	}()
	testutil.WaitUntil(t, 5*time.Second, func() bool { return ch.ClientCount() > 0 },
		"first live subscriber never attached")
	// Second join exceeds capacity.
	resp2, err := ts.Client().Get(ts.URL + "/live/c")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second join status %d, want 503", resp2.StatusCode)
	}
	ch.Close()
	wg.Wait()
}

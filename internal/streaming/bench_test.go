package streaming

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/media"
)

// benchHeader is a minimal valid live header for channel benchmarks.
func benchHeader() asf.Header {
	return asf.Header{
		Title:       "bench",
		PacketAlign: 2048,
		Streams: []asf.StreamProps{
			{ID: 1, Kind: media.KindVideo, BitsPerSecond: 256_000},
		},
	}
}

// benchShared builds one pre-encoded keyframe video packet (~1 KiB
// payload), the shape the origin's live pump publishes in steady state.
func benchShared(b testing.TB) *asf.Shared {
	b.Helper()
	payload := bytes.Repeat([]byte{0xAB}, 1024)
	sp, err := asf.NewShared(asf.Packet{
		Stream:  1,
		Kind:    media.KindVideo,
		Flags:   asf.PacketKeyframe,
		PTS:     time.Second,
		Dur:     66 * time.Millisecond,
		SendAt:  time.Second,
		Seq:     7,
		Payload: payload,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sp
}

// BenchmarkChannelPublish measures the live fan-out hot path: one
// PublishShared against 1, 100, and 10000 attached subscribers, each
// drained by its own goroutine. The steady-state publish must not
// allocate — the shared buffer is handed out by pointer and the
// keyframe backlog reset reuses the slice's capacity — so allocs/op
// should report 0 regardless of subscriber count.
func BenchmarkChannelPublish(b *testing.B) {
	for _, subs := range []int{1, 100, 10000} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			ch, err := NewChannel("bench", benchHeader())
			if err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			for i := 0; i < subs; i++ {
				sub, err := ch.Subscribe()
				if err != nil {
					b.Fatal(err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range sub.C {
					}
				}()
			}
			sp := benchShared(b)
			// Warm the backlog slice so capacity reuse is in effect.
			if err := ch.PublishShared(sp); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ch.PublishShared(sp); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ch.Close()
			wg.Wait()
		})
	}
}

// TestChannelPublishSharedAllocFree pins the fan-out allocation
// contract: after warm-up, publishing a pre-encoded packet to 100
// subscribers performs zero heap allocations. A regression here (a
// per-subscriber copy, a backlog reallocation, a boxed send) is the
// first symptom of losing the zero-copy property, so it fails loudly
// rather than only showing up as a slow benchmark.
func TestChannelPublishSharedAllocFree(t *testing.T) {
	ch, err := NewChannel("allocs", benchHeader())
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	const subs = 100
	for i := 0; i < subs; i++ {
		sub, err := ch.Subscribe()
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for range sub.C {
			}
		}()
	}
	sp := benchShared(t)
	if err := ch.PublishShared(sp); err != nil { // warm-up: size the backlog
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := ch.PublishShared(sp); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("PublishShared allocates %.2f times per packet with %d subscribers; want 0", avg, subs)
	}
}

// BenchmarkVODServe measures a whole stored-lecture session over HTTP:
// register once, then each iteration fetches /vod and drains the body.
// Pacing is off so the serving path — shared-packet writes, coalesced
// header+payload buffers — is the measured cost, not the play-out
// schedule.
func BenchmarkVODServe(b *testing.B) {
	srv := NewServer(nil)
	srv.Pacing = false
	data := encodeTestAsset(b, 2*time.Second)
	if _, err := srv.RegisterAsset("lec1", asf.NewReader(bytes.NewReader(data))); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(ts.URL + "/vod/lec1")
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("empty VOD response")
		}
		b.SetBytes(n)
	}
}

package streaming

import (
	"fmt"
	"net/http"
	"sort"
	"sync"

	"repro/internal/proto"
)

// RateGroup bundles encodings of the same presentation at several
// bandwidth profiles — the server side of §2.5's "different bandwidth
// profile selection window". A client requests the group with its link
// bandwidth and receives the richest variant that fits.
type RateGroup struct {
	Name string

	mu       sync.RWMutex
	variants []*Asset // sorted ascending by total bit rate
}

// variantRate estimates an asset's aggregate media bit rate from its
// declared stream properties.
func variantRate(a *Asset) int64 {
	var total int64
	for _, st := range a.Header.Streams {
		total += st.BitsPerSecond
	}
	return total
}

// AddVariant registers one encoding in the group.
func (g *RateGroup) AddVariant(a *Asset) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.variants = append(g.variants, a)
	sort.SliceStable(g.variants, func(i, j int) bool {
		return variantRate(g.variants[i]) < variantRate(g.variants[j])
	})
}

// Select returns the richest variant whose rate fits within the given
// bandwidth, falling back to the smallest variant; false when empty.
func (g *RateGroup) Select(bitsPerSecond int64) (*Asset, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(g.variants) == 0 {
		return nil, false
	}
	best := g.variants[0]
	for _, v := range g.variants {
		if variantRate(v) <= bitsPerSecond {
			best = v
		}
	}
	return best, true
}

// Variants returns the group's assets in ascending rate order.
func (g *RateGroup) Variants() []*Asset {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*Asset, len(g.variants))
	copy(out, g.variants)
	return out
}

// CreateRateGroup registers an empty multi-rate group on the server.
func (s *Server) CreateRateGroup(name string) (*RateGroup, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.groups == nil {
		s.groups = make(map[string]*RateGroup)
	}
	if _, ok := s.groups[name]; ok {
		return nil, fmt.Errorf("%w: group %q", ErrDuplicate, name)
	}
	g := &RateGroup{Name: name}
	s.groups[name] = g
	return g, nil
}

// RateGroup returns a registered group.
func (s *Server) RateGroup(name string) (*RateGroup, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	g, ok := s.groups[name]
	return g, ok
}

// RemoveRateGroup unregisters a multi-rate group, reporting whether it
// was present. Its variant assets stay registered (they may be served
// directly or belong to other groups); sessions streaming a variant
// finish normally. The unpublish/catalog-invalidation hook.
func (s *Server) RemoveRateGroup(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.groups[name]; !ok {
		return false
	}
	delete(s.groups, name)
	return true
}

// handleGroup serves /group/{name}?bw=<bits per second>: it selects the
// best-fitting variant and streams it exactly like a VOD session.
func (s *Server) handleGroup(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	name := proto.StreamName(r.URL.Path, proto.StreamGroup)
	g, ok := s.RateGroup(name)
	if !ok {
		proto.WriteError(w, http.StatusNotFound, "streaming: unknown group "+name)
		return
	}
	bw := int64(1 << 62)
	if raw := r.URL.Query().Get(proto.ParamBandwidth); raw != "" {
		v, err := proto.ParseBandwidth(raw)
		if err != nil {
			proto.WriteErr(w, err)
			return
		}
		bw = v
	}
	asset, ok := g.Select(bw)
	if !ok {
		proto.WriteError(w, http.StatusNotFound, "empty group")
		return
	}
	// Rewrite the path (already decoded, so the raw name concatenates
	// onto the prefix) and delegate to the VOD handler.
	r2 := r.Clone(r.Context())
	r2.URL.Path = proto.PrefixVOD + asset.Name
	s.handleVOD(w, r2)
}

package streaming

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/asf"
	"repro/internal/media"
	"repro/internal/vclock"
)

// DefaultSubscriberBuffer is the per-subscriber packet queue depth. A slow
// client that falls further behind than this has packets dropped rather
// than stalling the broadcast (the server-side flow-control policy).
const DefaultSubscriberBuffer = 256

// Channel is one live broadcast: an encoder publishes packets, any number
// of subscribers receive them. New subscribers get a catch-up backlog
// starting at the most recent video keyframe so their decoder can start
// immediately.
//
// Fan-out is zero-copy: a packet is encoded exactly once at publish
// (asf.NewShared) and every subscriber — and every late joiner's
// backlog replay — receives a pointer to the same immutable wire
// buffer. Nothing downstream may mutate a *asf.Shared.
type Channel struct {
	Name string

	mu        sync.Mutex
	header    asf.Header
	backlog   []*asf.Shared
	subs      map[int]*Subscriber
	nextID    int
	closed    bool
	published int64
	dropped   int64
	// SubscriberBuffer overrides DefaultSubscriberBuffer when positive.
	SubscriberBuffer int
}

// Subscriber is one attached client.
type Subscriber struct {
	// C delivers live packets; closed when the broadcast ends. Packets
	// are shared immutable buffers — read-only for every receiver.
	C <-chan *asf.Shared
	// Backlog is the catch-up burst to send before live packets.
	Backlog []*asf.Shared

	ch   *Channel
	id   int
	send chan *asf.Shared
	once sync.Once
}

// NewChannel creates a live channel with the stream header clients will be
// sent on join. The header's live flag is forced on.
func NewChannel(name string, h asf.Header) (*Channel, error) {
	h.Flags |= asf.FlagLive
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &Channel{
		Name:   name,
		header: h,
		subs:   make(map[int]*Subscriber),
	}, nil
}

// Header returns the channel's stream header.
func (c *Channel) Header() asf.Header {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.header
}

// ClientCount returns the number of attached subscribers.
func (c *Channel) ClientCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.subs)
}

// Closed reports whether the broadcast has ended.
func (c *Channel) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Published returns the number of packets published.
func (c *Channel) Published() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.published
}

// Dropped returns packets dropped across all slow subscribers.
func (c *Channel) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Publish encodes the packet once and fans the shared form out to every
// subscriber; see PublishShared. The publisher keeps ownership of
// p.Payload — the encode copies it — so callers may reuse their payload
// buffer immediately.
func (c *Channel) Publish(p asf.Packet) error {
	sp, err := asf.NewShared(p)
	if err != nil {
		return err
	}
	return c.PublishShared(sp)
}

// PublishShared fans a pre-encoded packet out to every subscriber and
// maintains the keyframe-aligned backlog. Slow subscribers lose the
// packet. This is the allocation-free steady-state path: the shared
// buffer is handed out by pointer, and the backlog slice's capacity is
// reused across keyframe resets.
func (c *Channel) PublishShared(sp *asf.Shared) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrChanClosed
	}
	c.published++
	// Reset the catch-up window at video keyframes so joins start clean.
	if sp.Keyframe() && sp.Kind() == media.KindVideo {
		c.backlog = c.backlog[:0]
	}
	c.backlog = append(c.backlog, sp)
	for _, sub := range c.subs {
		select {
		case sub.send <- sp:
		default:
			c.dropped++
		}
	}
	return nil
}

// Subscribe attaches a new client, returning its live queue and the
// catch-up backlog.
func (c *Channel) Subscribe() (*Subscriber, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrChanClosed
	}
	depth := c.SubscriberBuffer
	if depth <= 0 {
		depth = DefaultSubscriberBuffer
	}
	send := make(chan *asf.Shared, depth)
	sub := &Subscriber{
		C:       send,
		send:    send,
		Backlog: append([]*asf.Shared(nil), c.backlog...),
		ch:      c,
		id:      c.nextID,
	}
	c.subs[c.nextID] = sub
	c.nextID++
	return sub, nil
}

// Close detaches the subscriber. Safe to call multiple times.
func (s *Subscriber) Close() {
	s.once.Do(func() {
		s.ch.mu.Lock()
		delete(s.ch.subs, s.id)
		s.ch.mu.Unlock()
	})
}

// Close ends the broadcast: all subscriber queues are closed after the
// packets already queued.
func (c *Channel) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for id, sub := range c.subs {
		close(sub.send)
		delete(c.subs, id)
	}
}

// PublishPaced publishes the packets honoring their send times against the
// clock, stopping early if ctx is cancelled. It is the bridge between a
// stored/encoded packet sequence and a live broadcast. Each packet is
// encoded into its shared form once, up front, so the pacing loop's
// publishes are allocation-free.
func (c *Channel) PublishPaced(ctx context.Context, clock vclock.Clock, packets []asf.Packet) error {
	if clock == nil {
		clock = vclock.Real{}
	}
	shared := make([]*asf.Shared, len(packets))
	for i, p := range packets {
		sp, err := asf.NewShared(p)
		if err != nil {
			return err
		}
		shared[i] = sp
	}
	start := clock.Now()
	for _, sp := range shared {
		due := start.Add(sp.SendAt())
		if wait := due.Sub(clock.Now()); wait > 0 {
			select {
			case <-clock.After(wait):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := c.PublishShared(sp); err != nil {
			return err
		}
	}
	return nil
}

// CreateChannel registers a new live channel on the server.
func (s *Server) CreateChannel(name string, h asf.Header) (*Channel, error) {
	ch, err := NewChannel(name, h)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.channels[name]; ok {
		return nil, fmt.Errorf("%w: channel %q", ErrDuplicate, name)
	}
	s.channels[name] = ch
	return ch, nil
}

// Channel returns a registered live channel.
func (s *Server) Channel(name string) (*Channel, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ch, ok := s.channels[name]
	return ch, ok
}

package streaming

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/testutil"
	"repro/internal/vclock"
)

// TestVODClientDisconnectMidStream verifies that a client cancelling its
// request mid-stream releases the server session cleanly: ActiveClients
// returns to zero and partial-send statistics are recorded.
func TestVODClientDisconnectMidStream(t *testing.T) {
	clk := vclock.NewVirtual()
	srv := NewServer(clk) // pacing on a virtual clock: packets block
	data := encodeTestAsset(t, 5*time.Second)
	if _, err := srv.RegisterAsset("lec", asf.NewReader(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/vod/lec", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the header, then hang up. The server is parked in clock.After
	// for the next paced packet; cancellation must unblock it.
	r := asf.NewReader(resp.Body)
	if _, err := r.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	testutil.WaitUntil(t, 5*time.Second, func() bool { return srv.Stats().ActiveClients == 0 },
		"ActiveClients never returned to 0 after disconnect")
}

// TestLiveSubscriberDisconnectDuringBroadcast verifies a live client
// leaving mid-broadcast is detached without affecting other clients.
func TestLiveSubscriberDisconnectDuringBroadcast(t *testing.T) {
	srv := NewServer(nil)
	ch, err := srv.CreateChannel("c", liveHeader(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/live/c", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	testutil.WaitUntil(t, 5*time.Second, func() bool { return ch.ClientCount() == 1 },
		"subscriber never attached")
	cancel()
	resp.Body.Close()
	testutil.WaitUntil(t, 5*time.Second, func() bool { return ch.ClientCount() == 0 },
		"subscriber not detached after disconnect")
	// Publishing still works for a fresh client.
	sub, err := ch.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := ch.Publish(videoPacket(0, true, 8)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.C:
	default:
		t.Fatal("fresh subscriber missed the packet")
	}
}

// TestRegisterAssetCorruptStream verifies corrupt input is rejected at
// registration, not at serve time.
func TestRegisterAssetCorruptStream(t *testing.T) {
	srv := NewServer(nil)
	data := encodeTestAsset(t, time.Second)
	data[len(data)/2] ^= 0xFF
	if _, err := srv.RegisterAsset("bad", asf.NewReader(bytes.NewReader(data))); err == nil {
		// Flipping one byte might hit padding inside a payload... but the
		// CRC covers every payload byte, so any payload flip must surface.
		// Header/index flips surface as parse errors. Either way err != nil
		// unless the flip landed in truly dead space, which this format
		// does not have.
		t.Fatal("corrupt asset registered successfully")
	}
}

// TestVODUnpacedIgnoresVirtualClock covers the Pacing=false path with a
// virtual clock: the stream completes without anyone advancing time.
func TestVODUnpacedIgnoresVirtualClock(t *testing.T) {
	clk := vclock.NewVirtual()
	srv := NewServer(clk)
	srv.Pacing = false
	data := encodeTestAsset(t, 2*time.Second)
	if _, err := srv.RegisterAsset("lec", asf.NewReader(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/vod/lec")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := asf.NewReader(resp.Body)
	if _, err := r.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := r.ReadPacket(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no packets received")
	}
}

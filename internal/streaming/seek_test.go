package streaming

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/asf"
)

func TestVODSeekSkipsEarlyPackets(t *testing.T) {
	srv := NewServer(nil)
	srv.Pacing = false
	data := encodeTestAsset(t, 4*time.Second)
	asset, err := srv.RegisterAsset("lec", asf.NewReader(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(asset.Index) == 0 {
		t.Fatal("asset has no index; seek test needs keyframes")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	full := countVODPackets(t, ts.URL+"/vod/lec")
	seeked := countVODPackets(t, ts.URL+"/vod/lec?start=2s")
	if seeked >= full {
		t.Fatalf("seeked stream has %d packets, full has %d", seeked, full)
	}
	if seeked == 0 {
		t.Fatal("seeked stream empty")
	}
}

func TestVODSeekStartsAtKeyframe(t *testing.T) {
	srv := NewServer(nil)
	srv.Pacing = false
	data := encodeTestAsset(t, 4*time.Second)
	if _, err := srv.RegisterAsset("lec", asf.NewReader(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/vod/lec?start=2s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := asf.NewReader(resp.Body)
	if _, err := r.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	first, err := r.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !first.Keyframe() {
		t.Fatalf("seeked stream starts with a non-keyframe (stream %d, pts %v)", first.Stream, first.PTS)
	}
	if first.PTS > 2*time.Second {
		t.Fatalf("seek overshot: first packet pts %v", first.PTS)
	}
}

// TestVODSeekStartParameterTable pins the hardened ?start contract: a
// valid duration seeks (200), a malformed or negative one is refused
// with 400 and a proto.Error JSON body naming the parameter — never
// silently played from the top.
func TestVODSeekStartParameterTable(t *testing.T) {
	srv := NewServer(nil)
	srv.Pacing = false
	data := encodeTestAsset(t, time.Second)
	if _, err := srv.RegisterAsset("lec", asf.NewReader(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		query  string
		status int
	}{
		{"", 200},             // no seek: full stream
		{"?start=0s", 200},    // explicit zero is a valid seek
		{"?start=500ms", 200}, // mid-stream seek
		{"?start=99h", 200},   // past the end: plays from the last keyframe
		{"?start=bogus", 400}, // not a duration
		{"?start=30", 400},    // bare number is not a Go duration
		{"?start=-5s", 400},   // negative offset
		{"?start=-1ns", 400},  // barely negative still refused
		{"?start=%2Ds", 400},  // encoded junk decodes to "-s": malformed
	} {
		for _, prefix := range []string{"/vod/lec", "/v1/vod/lec"} {
			resp, err := ts.Client().Get(ts.URL + prefix + tc.query)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status {
				t.Fatalf("GET %s%s status %d, want %d", prefix, tc.query, resp.StatusCode, tc.status)
			}
			if tc.status == 400 {
				// The refusal carries the typed proto error body.
				var perr struct {
					Status  int    `json:"status"`
					Message string `json:"error"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&perr); err != nil {
					t.Fatalf("GET %s%s: undecodable error body: %v", prefix, tc.query, err)
				}
				if perr.Status != 400 || !strings.Contains(perr.Message, "start") {
					t.Fatalf("GET %s%s error body = %+v", prefix, tc.query, perr)
				}
			}
			resp.Body.Close()
		}
	}
}

func TestSeekIndexBounds(t *testing.T) {
	a := &Asset{
		Packets: []asf.Packet{
			{Seq: 0, Flags: asf.PacketKeyframe, PTS: 0},
			{Seq: 1, PTS: time.Second},
			{Seq: 2, Flags: asf.PacketKeyframe, PTS: 2 * time.Second},
		},
		Index: asf.Index{{PTS: 0, Seq: 0}, {PTS: 2 * time.Second, Seq: 2}},
	}
	if got := a.SeekIndex(0); got != 0 {
		t.Fatalf("SeekIndex(0) = %d", got)
	}
	if got := a.SeekIndex(90 * time.Second); got != 2 {
		t.Fatalf("SeekIndex(90s) = %d", got)
	}
	if got := a.SeekIndex(1500 * time.Millisecond); got != 0 {
		t.Fatalf("SeekIndex(1.5s) = %d", got)
	}
	empty := &Asset{Packets: []asf.Packet{{Seq: 0}}}
	if got := empty.SeekIndex(time.Second); got != 0 {
		t.Fatalf("no-index SeekIndex = %d", got)
	}
}

// TestSeekIndexConcurrent exercises the memoized seq→position map under
// concurrent seeks, the load pattern of many clients joining mid-lecture.
func TestSeekIndexConcurrent(t *testing.T) {
	srv := NewServer(nil)
	data := encodeTestAsset(t, 4*time.Second)
	asset, err := srv.RegisterAsset("lec", asf.NewReader(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, 5)
	for i := range want {
		want[i] = asset.SeekIndex(time.Duration(i) * time.Second)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(want)*50; i++ {
				at := time.Duration(i%len(want)) * time.Second
				if got := asset.SeekIndex(at); got != want[i%len(want)] {
					t.Errorf("SeekIndex(%v) = %d, want %d", at, got, want[i%len(want)])
					return
				}
			}
		}()
	}
	wg.Wait()
	// An index entry pointing at a sequence number no packet carries
	// (truncated or hand-edited file) still plays from the start.
	odd := &Asset{
		Packets: []asf.Packet{{Seq: 5, PTS: 0}},
		Index:   asf.Index{{PTS: 0, Seq: 99}},
	}
	if got := odd.SeekIndex(time.Second); got != 0 {
		t.Fatalf("dangling index entry SeekIndex = %d", got)
	}
}

func countVODPackets(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := asf.NewReader(resp.Body)
	if _, err := r.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := r.ReadPacket(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	return n
}

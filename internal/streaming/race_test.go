package streaming

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/media"
)

// patternByte derives the payload fill byte for a sequence number, so a
// reader can verify a packet's bytes from its header alone.
func patternByte(seq uint32) byte { return byte(seq*31 + 7) }

// checkPattern verifies every payload byte matches the packet's seq.
func checkPattern(p asf.Packet) error {
	want := patternByte(p.Seq)
	for i, b := range p.Payload {
		if b != want {
			return fmt.Errorf("packet %d payload[%d] = %#x, want %#x", p.Seq, i, b, want)
		}
	}
	return nil
}

// TestChannelSharedBuffersImmutable drives the zero-copy fan-out under
// maximum contention and proves the shared buffers are never mutated
// after publish. One publisher REUSES a single payload buffer for every
// packet — legal, because NewShared copies — and scribbles garbage over
// it right after each Publish returns. Meanwhile subscribers attach at
// staggered points and verify that every packet they see (backlog
// replay and live) still carries the byte pattern its seq dictates.
// Run under -race this also catches any unsynchronized write to the
// shared wire image; the pattern check catches logical corruption the
// race detector can't see (a copy taken too late, a pooled buffer
// recycled too early).
func TestChannelSharedBuffersImmutable(t *testing.T) {
	const (
		packets     = 400
		payloadSize = 512
		subscribers = 16
	)
	h := asf.Header{
		Title:       "immutable",
		PacketAlign: 2048,
		Streams:     []asf.StreamProps{{ID: 1, Kind: media.KindVideo, BitsPerSecond: 256_000}},
	}
	ch, err := NewChannel("immutable", h)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, subscribers)

	// Subscribers join while the broadcast is running so each sees a
	// different backlog/live split; every packet must check out.
	var subWG sync.WaitGroup
	subscribe := func() {
		defer wg.Done()
		sub, err := ch.Subscribe()
		subWG.Done() // joined (or failed): unblock the publisher's stagger
		if err != nil {
			errc <- err
			return
		}
		defer sub.Close()
		for _, sp := range sub.Backlog {
			if err := checkPattern(sp.Packet()); err != nil {
				errc <- fmt.Errorf("backlog: %w", err)
				return
			}
		}
		for sp := range sub.C {
			if err := checkPattern(sp.Packet()); err != nil {
				errc <- fmt.Errorf("live: %w", err)
				return
			}
		}
	}

	payload := make([]byte, payloadSize) // ONE buffer reused across all publishes
	pub := func(seq uint32, flags uint8) {
		for i := range payload {
			payload[i] = patternByte(seq)
		}
		p := asf.Packet{
			Stream: 1, Kind: media.KindVideo, Flags: flags,
			PTS: time.Duration(seq) * time.Millisecond, Seq: seq, Payload: payload,
		}
		if err := ch.Publish(p); err != nil {
			t.Error(err)
			return
		}
		// The publisher owns its buffer again the moment Publish returns:
		// scribbling here must not be visible to any subscriber.
		for i := range payload {
			payload[i] = 0xFF
		}
	}

	joinEvery := packets / subscribers
	for seq := 0; seq < packets; seq++ {
		flags := uint8(0)
		if seq%20 == 0 {
			flags = asf.PacketKeyframe // periodic backlog resets
		}
		pub(uint32(seq), flags)
		if seq%joinEvery == 0 && seq/joinEvery < subscribers {
			wg.Add(1)
			subWG.Add(1)
			go subscribe()
			subWG.Wait() // ensure the join lands at this packet boundary
		}
	}
	ch.Close()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := ch.Published(); got != packets {
		t.Fatalf("published %d packets, want %d", got, packets)
	}
}

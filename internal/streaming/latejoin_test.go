package streaming

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/codec"
	"repro/internal/media"
	"repro/internal/player"
)

// TestLateJoinDecodesCleanly reproduces the paper's mid-broadcast join:
// a student who joins a live channel halfway through must receive a
// keyframe-aligned backlog so their decoder starts without broken frames,
// and must still see every remaining slide flip via in-band scripts.
func TestLateJoinDecodesCleanly(t *testing.T) {
	// Encode a live lecture and split its packets in half.
	data := encodeLiveLecture(t)
	h, packets, _, err := asf.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	half := len(packets) / 2

	ch, err := NewChannel("late", h)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range packets[:half] {
		if err := ch.Publish(p); err != nil {
			t.Fatal(err)
		}
	}
	// The student joins now.
	sub, err := ch.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for _, p := range packets[half:] {
		if err := ch.Publish(p); err != nil {
			t.Fatal(err)
		}
	}
	ch.Close()

	// Assemble the student's byte stream: header + backlog + live.
	var stream bytes.Buffer
	w, err := asf.NewWriter(&stream, ch.Header())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sub.Backlog {
		if err := w.WriteShared(p); err != nil {
			t.Fatal(err)
		}
	}
	for p := range sub.C {
		if err := w.WriteShared(p); err != nil {
			t.Fatal(err)
		}
	}

	if len(sub.Backlog) == 0 {
		t.Fatal("late joiner received no catch-up backlog")
	}
	// The backlog must start at a video keyframe.
	first := sub.Backlog[0]
	if !(first.Keyframe() && first.Kind() == media.KindVideo) {
		t.Fatalf("backlog starts with %v keyframe=%v", first.Kind(), first.Keyframe())
	}

	// Play the joined-late stream: zero broken frames (the chain starts at
	// an I-frame) and at least the remaining slide flips.
	m, err := player.New(player.Options{}).Play(bytes.NewReader(stream.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m.BrokenFrames != 0 {
		t.Fatalf("late joiner decoded %d broken frames", m.BrokenFrames)
	}
	if m.VideoFrames == 0 {
		t.Fatal("late joiner saw no video")
	}
	if m.SlidesShown == 0 {
		t.Fatal("late joiner saw no slide flips (in-band scripts missing)")
	}
}

func encodeLiveLecture(t *testing.T) []byte {
	t.Helper()
	p, err := codec.ByName("isdn-128k")
	if err != nil {
		t.Fatal(err)
	}
	// 10 s at GOP 75/15fps gives a keyframe at 0 s and 5 s: joining after
	// half the packets lands inside GOP 2, whose keyframe heads the
	// backlog.
	lec, err := lectureForProfile(t, p, 10*time.Second, 4)
	if err != nil {
		t.Fatal(err)
	}
	return lec
}

package streaming

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/asf"
)

func TestFetchRoundTripsWholeContainer(t *testing.T) {
	srv := NewServer(nil)
	srv.Pacing = true // fetch must ignore pacing entirely
	data := encodeTestAsset(t, 4*time.Second)
	asset, err := srv.RegisterAsset("lec", asf.NewReader(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/fetch/lec")
	if err != nil {
		t.Fatal(err)
	}
	h, packets, ix, err := asf.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	// A 4s asset transferred unpaced arrives in far less than play time.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("fetch took %v; looks paced", elapsed)
	}
	if h.Title != asset.Header.Title {
		t.Fatalf("header title %q, want %q", h.Title, asset.Header.Title)
	}
	if len(packets) != len(asset.Packets) {
		t.Fatalf("fetched %d packets, asset has %d", len(packets), len(asset.Packets))
	}
	if len(ix) == 0 || len(ix) != len(asset.Index) {
		t.Fatalf("fetched index has %d entries, asset has %d", len(ix), len(asset.Index))
	}

	// A mirror registering the fetched stream reproduces the asset.
	mirror := NewServer(nil)
	resp, err = http.Get(ts.URL + "/fetch/lec")
	if err != nil {
		t.Fatal(err)
	}
	mirrored, err := mirror.RegisterAsset("lec", asf.NewReader(resp.Body))
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if mirrored.Bytes() != asset.Bytes() || len(mirrored.Index) != len(asset.Index) {
		t.Fatalf("mirror: %d bytes / %d index entries, want %d / %d",
			mirrored.Bytes(), len(mirrored.Index), asset.Bytes(), len(asset.Index))
	}

	if got := srv.Stats().MirrorFetches; got != 2 {
		t.Fatalf("MirrorFetches = %d, want 2", got)
	}
	resp, err = http.Get(ts.URL + "/fetch/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fetch status = %d", resp.StatusCode)
	}
}

func TestFetchBypassesAdmission(t *testing.T) {
	srv := NewServer(nil)
	srv.Admission = NewAdmission(1) // too small for any client session
	data := encodeTestAsset(t, time.Second)
	if _, err := srv.RegisterAsset("lec", asf.NewReader(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Client sessions are rejected at this capacity...
	resp, err := http.Get(ts.URL + "/vod/lec")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("VOD status = %d, want 503", resp.StatusCode)
	}
	// ...but the server-to-server mirror path still works.
	resp, err = http.Get(ts.URL + "/fetch/lec")
	if err != nil {
		t.Fatal(err)
	}
	_, packets, _, err := asf.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(packets) == 0 {
		t.Fatalf("fetch under full admission: %d packets, err %v", len(packets), err)
	}
}

package streaming

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/encoder"
	"repro/internal/proto"
)

// encodeTitledAsset builds a stored container whose header title tells
// readers which publish generation they received.
func encodeTitledAsset(t testing.TB, title string, dur time.Duration) []byte {
	t.Helper()
	p, err := codec.ByName("modem-56k")
	if err != nil {
		t.Fatal(err)
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: title, Duration: dur, Profile: p, SlideCount: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{}, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// post sends body to url and returns the response, closed by cleanup.
func post(t *testing.T, ts *httptest.Server, path string, body []byte) *http.Response {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// decodeProtoError asserts the body is the proto.Error JSON envelope.
func decodeProtoError(t *testing.T, resp *http.Response) proto.Error {
	t.Helper()
	var pe proto.Error
	if err := json.NewDecoder(resp.Body).Decode(&pe); err != nil {
		t.Fatalf("error body is not proto.Error JSON: %v", err)
	}
	if pe.Status != resp.StatusCode || pe.Message == "" {
		t.Fatalf("error envelope = %+v for status %d", pe, resp.StatusCode)
	}
	return pe
}

// TestPublishUnpublishEndpoints drives the live-publish control
// endpoints over the wire: a POSTed container becomes streamable, a
// malformed one changes nothing, and unpublish turns new opens into
// proto.Error 404s.
func TestPublishUnpublishEndpoints(t *testing.T) {
	srv := NewServer(nil)
	srv.Pacing = false
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	data := encodeTitledAsset(t, "gen-1", time.Second)
	if resp := post(t, ts, "/v1/publish/lec-pub", data); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("publish status = %d, want 204", resp.StatusCode)
	}
	resp, err := ts.Client().Get(ts.URL + "/vod/lec-pub")
	if err != nil {
		t.Fatal(err)
	}
	h, err := asf.NewReader(resp.Body).ReadHeader()
	resp.Body.Close()
	if err != nil || h.Title != "gen-1" {
		t.Fatalf("streamed header = %+v, %v", h, err)
	}

	// A corrupt upload is refused atomically: 400, asset untouched.
	if resp := post(t, ts, "/v1/publish/lec-pub", []byte("not a container")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt publish status = %d, want 400", resp.StatusCode)
	} else {
		decodeProtoError(t, resp)
	}
	if _, ok := srv.Asset("lec-pub"); !ok {
		t.Fatal("asset lost after rejected publish")
	}

	// Wrong method and empty names answer with the proto envelope too.
	getResp, err := ts.Client().Get(ts.URL + "/v1/publish/lec-pub")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET publish status = %d, want 405", getResp.StatusCode)
	}
	decodeProtoError(t, getResp)

	if resp := post(t, ts, "/v1/unpublish/lec-pub", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("unpublish status = %d, want 204", resp.StatusCode)
	}
	vodResp, err := ts.Client().Get(ts.URL + "/vod/lec-pub")
	if err != nil {
		t.Fatal(err)
	}
	defer vodResp.Body.Close()
	if vodResp.StatusCode != http.StatusNotFound {
		t.Fatalf("vod after unpublish = %d, want 404", vodResp.StatusCode)
	}
	if pe := decodeProtoError(t, vodResp); !strings.Contains(pe.Message, "lec-pub") {
		t.Fatalf("404 body does not name the asset: %+v", pe)
	}

	// Unpublishing what was never there is a proto 404, not a panic or 204.
	if resp := post(t, ts, "/v1/unpublish/lec-pub", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double unpublish status = %d, want 404", resp.StatusCode)
	} else {
		decodeProtoError(t, resp)
	}
}

// TestPublishReplaceUnderTraffic republishes an asset while readers
// stream it. Every session must decode one complete, internally
// consistent generation — old or new, never a splice — because the
// handler holds its own *Asset reference across the swap.
func TestPublishReplaceUnderTraffic(t *testing.T) {
	srv := NewServer(nil)
	srv.Pacing = false
	gen1 := encodeTitledAsset(t, "gen-1", 2*time.Second)
	gen2 := encodeTitledAsset(t, "gen-2", time.Second)
	if _, err := srv.RegisterAsset("lec-swap", asf.NewReader(bytes.NewReader(gen1))); err != nil {
		t.Fatal(err)
	}
	wantPackets := map[string]int{}
	for title, raw := range map[string][]byte{"gen-1": gen1, "gen-2": gen2} {
		a, err := parseAsset(title, asf.NewReader(bytes.NewReader(raw)))
		if err != nil {
			t.Fatal(err)
		}
		wantPackets[title] = len(a.Packets)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const readers = 16
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	sawGen := make(chan string, readers)
	start := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := ts.Client().Get(ts.URL + "/vod/lec-swap")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			r := asf.NewReader(resp.Body)
			h, err := r.ReadHeader()
			if err != nil {
				errs <- err
				return
			}
			n := 0
			for {
				if _, err := r.ReadPacket(); err == io.EOF {
					break
				} else if err != nil {
					errs <- err
					return
				}
				n++
			}
			if want := wantPackets[h.Title]; n != want {
				errs <- &proto.Error{Status: 0, Message: h.Title + ": spliced stream"}
				return
			}
			sawGen <- h.Title
		}()
	}
	close(start)
	// Swap generations while the readers are in flight.
	if resp := post(t, ts, "/v1/publish/lec-swap", gen2); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("replace status = %d, want 204", resp.StatusCode)
	}
	wg.Wait()
	close(errs)
	close(sawGen)
	for err := range errs {
		t.Fatal(err)
	}
	for title := range sawGen {
		if title != "gen-1" && title != "gen-2" {
			t.Fatalf("reader saw unknown generation %q", title)
		}
	}
	// After the dust settles, new opens get gen-2 only.
	resp, err := ts.Client().Get(ts.URL + "/vod/lec-swap")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if h, err := asf.NewReader(resp.Body).ReadHeader(); err != nil || h.Title != "gen-2" {
		t.Fatalf("post-swap header = %+v, %v", h, err)
	}
}

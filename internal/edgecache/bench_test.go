package edgecache

import (
	"fmt"
	"testing"
)

// The sketch sits on the per-demand hot path (every hit and every
// pull); it must not allocate.
func TestSketchOpsAllocFree(t *testing.T) {
	sk := newSketch(1024)
	h := hashString("lec-0")
	if got := testing.AllocsPerRun(1000, func() { sk.increment(h) }); got != 0 {
		t.Fatalf("increment allocates %v per op, want 0", got)
	}
	if got := testing.AllocsPerRun(1000, func() { _ = sk.estimate(h) }); got != 0 {
		t.Fatalf("estimate allocates %v per op, want 0", got)
	}
	if got := testing.AllocsPerRun(1000, func() { _ = hashString("lec-0") }); got != 0 {
		t.Fatalf("hashString allocates %v per op, want 0", got)
	}
}

// Steady-state Touch (resident asset, ledger already open) is the
// common case under a hot workload; it must not allocate either.
func TestTouchSteadyStateAllocFree(t *testing.T) {
	c := New(Config{})
	c.Add("lec-0", 1024)
	c.Touch("lec-0")
	if got := testing.AllocsPerRun(1000, func() { c.Touch("lec-0") }); got != 0 {
		t.Fatalf("Touch allocates %v per op, want 0", got)
	}
}

func BenchmarkSketchIncrement(b *testing.B) {
	sk := newSketch(1024)
	hashes := make([]uint64, 64)
	for i := range hashes {
		hashes[i] = hashString(fmt.Sprintf("lec-%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.increment(hashes[i&63])
	}
}

func BenchmarkSketchEstimate(b *testing.B) {
	sk := newSketch(1024)
	hashes := make([]uint64, 64)
	for i := range hashes {
		hashes[i] = hashString(fmt.Sprintf("lec-%d", i))
		sk.increment(hashes[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sk.estimate(hashes[i&63])
	}
}

func BenchmarkCacheTouchHit(b *testing.B) {
	c := New(Config{})
	names := make([]string, 32)
	for i := range names {
		names[i] = fmt.Sprintf("lec-%d", i)
		c.Add(names[i], 1024)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Touch(names[i&31])
	}
}

// Admission under churn: every iteration adds a fresh one-hit wonder
// and enforces the budget, driving the window-overflow duel.
func BenchmarkCacheAdmissionChurn(b *testing.B) {
	c := New(Config{})
	c.Add("hot", 1024)
	for i := 0; i < 8; i++ {
		c.Touch("hot")
	}
	names := make([]string, 64)
	for i := range names {
		names[i] = fmt.Sprintf("cold-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := names[i&63]
		c.Add(name, 1024)
		c.RecordPull(name)
		c.Enforce(4096, "", nil)
	}
}

package edgecache

import (
	"math/rand"
	"testing"
)

func lruCache() *Cache { return New(Config{Policy: LRU}) }

func TestLRUOrdering(t *testing.T) {
	c := lruCache()
	c.Add("a", 1)
	c.Add("b", 1)
	c.Add("c", 1)
	c.Touch("a") // a becomes most recent: order a, c, b

	evicted, rejected := c.Enforce(2, "", nil)
	if len(rejected) != 0 {
		t.Fatalf("LRU rejected %v, want none", rejected)
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if got := c.Names(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("names = %v, want [a c]", got)
	}
}

func TestLRUReAddRefreshesSize(t *testing.T) {
	c := lruCache()
	c.Add("a", 10)
	c.Add("b", 1)
	c.Add("a", 4) // size shrinks, recency bumps
	if got := c.Bytes(); got != 5 {
		t.Fatalf("bytes = %d, want 5", got)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
	if got := c.Names(); got[0] != "a" {
		t.Fatalf("names = %v, want a first after re-add", got)
	}
}

func TestLRUPinnedSurvival(t *testing.T) {
	c := lruCache()
	c.Add("a", 1)
	c.Add("b", 1)
	c.Add("c", 1)
	pinned := func(name string) bool { return name == "a" }

	evicted, _ := c.Enforce(1, "", pinned)
	if len(evicted) != 2 {
		t.Fatalf("evicted %v, want two entries", evicted)
	}
	for _, name := range evicted {
		if name == "a" {
			t.Fatal("pinned asset a was evicted")
		}
	}
	if !c.Contains("a") || c.Bytes() != 1 {
		t.Fatalf("want only pinned a resident, have %v", c.Names())
	}
}

func TestEnforceUnboundedBudgetIsNoop(t *testing.T) {
	for _, budget := range []int64{0, -1} {
		c := New(Config{})
		c.Add("a", 100)
		evicted, rejected := c.Enforce(budget, "", nil)
		if len(evicted) != 0 || len(rejected) != 0 {
			t.Fatalf("budget %d: evicted %v rejected %v, want none", budget, evicted, rejected)
		}
	}
}

// A hot asset promoted into the main segment must survive a parade of
// one-hit wonders overflowing the window: the duel rejects them.
func TestAdmissionRejectsOneHitWonder(t *testing.T) {
	c := New(Config{})
	c.Add("hot", 4)
	for i := 0; i < 5; i++ {
		c.Touch("hot")
	}
	if evicted, rejected := c.Enforce(10, "", nil); len(evicted)+len(rejected) != 0 {
		t.Fatalf("promotion pass dropped %v/%v", evicted, rejected)
	}

	c.Add("one", 4)
	c.RecordPull("one")
	c.Add("two", 4)
	c.RecordPull("two")

	evicted, rejected := c.Enforce(10, "", nil)
	if len(evicted) != 0 {
		t.Fatalf("evicted %v, want none (hot must survive)", evicted)
	}
	if len(rejected) != 1 || rejected[0] != "one" {
		t.Fatalf("rejected %v, want [one]", rejected)
	}
	if !c.Contains("hot") {
		t.Fatal("hot asset lost residency to a one-hit wonder")
	}
}

// A window candidate with a higher frequency estimate than the main
// segment's coldest entry wins the duel: the victim is evicted and the
// candidate promoted.
func TestAdmissionEvictsColderVictim(t *testing.T) {
	c := New(Config{})
	c.Add("cold", 4)
	c.RecordPull("cold")
	c.Enforce(10, "", nil) // promotes cold into main (room available)
	c.Add("warm", 4)
	for i := 0; i < 4; i++ {
		c.Touch("warm")
	}
	c.Enforce(10, "", nil) // promotes warm; main back is now cold
	c.Add("rising", 4)
	for i := 0; i < 6; i++ {
		c.Touch("rising")
	}

	evicted, rejected := c.Enforce(10, "", nil)
	if len(rejected) != 0 {
		t.Fatalf("rejected %v, want none", rejected)
	}
	if len(evicted) != 1 || evicted[0] != "cold" {
		t.Fatalf("evicted %v, want [cold]", evicted)
	}
	if !c.Contains("rising") || !c.Contains("warm") {
		t.Fatalf("resident %v, want rising and warm", c.Names())
	}
}

func TestEnforceNeverDropsExcept(t *testing.T) {
	c := New(Config{})
	c.Add("a", 4)
	c.Add("b", 4)
	c.Add("demanded", 4)
	evicted, rejected := c.Enforce(4, "demanded", nil)
	for _, name := range append(append([]string{}, evicted...), rejected...) {
		if name == "demanded" {
			t.Fatal("except asset was dropped")
		}
	}
	if !c.Contains("demanded") {
		t.Fatal("except asset lost residency")
	}
}

// Pinned window entries stay windowed and resident, and the capacity
// pass leaves the cache over budget rather than drop them.
func TestAdmissionLeavesPinnedWindowEntries(t *testing.T) {
	c := New(Config{})
	c.Add("p1", 6)
	c.Add("p2", 6)
	pinned := func(string) bool { return true }
	evicted, rejected := c.Enforce(8, "", pinned)
	if len(evicted)+len(rejected) != 0 {
		t.Fatalf("dropped %v/%v despite pins", evicted, rejected)
	}
	if got := c.Bytes(); got != 12 {
		t.Fatalf("bytes = %d, want 12 (over budget, all pinned)", got)
	}
}

func TestStatsLedgerSurvivesEviction(t *testing.T) {
	c := New(Config{})
	c.Add("a", 4)
	c.RecordPull("a")
	c.Touch("a")
	c.Touch("a")
	c.Remove("a")
	c.Add("a", 4)
	c.RecordPull("a")

	stats := c.Stats()
	if len(stats) != 1 {
		t.Fatalf("stats = %v, want one asset", stats)
	}
	if st := stats[0]; st.Name != "a" || st.Hits != 2 || st.Pulls != 2 {
		t.Fatalf("stats[0] = %+v, want a hits=2 pulls=2", st)
	}
}

func TestStatsSortedByDemand(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 3; i++ {
		c.Touch("busy")
	}
	c.RecordPull("quiet")
	c.RecordPull("also-quiet")
	stats := c.Stats()
	if len(stats) != 3 || stats[0].Name != "busy" {
		t.Fatalf("stats = %v, want busy first", stats)
	}
	if stats[1].Name != "also-quiet" || stats[2].Name != "quiet" {
		t.Fatalf("ties not name-ordered: %v", stats)
	}
}

func TestOnHotFiresOnce(t *testing.T) {
	var fired []string
	c := New(Config{PrewarmThreshold: 3, OnHot: func(name string) { fired = append(fired, name) }})
	for i := 0; i < 6; i++ {
		c.Touch("hot")
	}
	c.RecordPull("hot")
	if len(fired) != 1 || fired[0] != "hot" {
		t.Fatalf("OnHot fired %v, want exactly [hot]", fired)
	}
}

func TestOnHotReentrant(t *testing.T) {
	var c *Cache
	c = New(Config{PrewarmThreshold: 2, OnHot: func(name string) {
		// A prewarm callback mirrors a sibling: must not deadlock.
		c.Add(name+"-sibling", 1)
		c.RecordPull(name + "-sibling")
	}})
	c.Touch("hot")
	c.Touch("hot")
	if !c.Contains("hot-sibling") {
		t.Fatal("re-entrant OnHot did not take effect")
	}
}

// Property check: under random traffic the byte ledger always matches
// the resident set, and an unpinned Enforce always lands on budget.
func TestCacheInvariantsUnderRandomOps(t *testing.T) {
	for _, policy := range []Policy{TinyLFU, LRU} {
		rng := rand.New(rand.NewSource(7))
		c := New(Config{Policy: policy})
		sizes := map[string]int64{}
		names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		for step := 0; step < 4000; step++ {
			name := names[rng.Intn(len(names))]
			switch rng.Intn(5) {
			case 0:
				size := int64(1 + rng.Intn(9))
				c.Add(name, size)
				sizes[name] = size
			case 1:
				c.Touch(name)
			case 2:
				c.RecordPull(name)
			case 3:
				if c.Remove(name) {
					delete(sizes, name)
				}
			case 4:
				budget := int64(5 + rng.Intn(30))
				evicted, rejected := c.Enforce(budget, "", nil)
				for _, n := range append(append([]string{}, evicted...), rejected...) {
					delete(sizes, n)
				}
				if got := c.Bytes(); got > budget {
					t.Fatalf("[%s] step %d: bytes %d over budget %d with no pins", policy, step, got, budget)
				}
			}
			var want int64
			for _, s := range sizes {
				want += s
			}
			if got := c.Bytes(); got != want {
				t.Fatalf("[%s] step %d: bytes = %d, want %d", policy, step, got, want)
			}
			if got := c.Len(); got != len(sizes) {
				t.Fatalf("[%s] step %d: len = %d, want %d", policy, step, got, len(sizes))
			}
			if got := len(c.Names()); got != len(sizes) {
				t.Fatalf("[%s] step %d: names = %d entries, want %d", policy, step, got, len(sizes))
			}
		}
	}
}

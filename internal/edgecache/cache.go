package edgecache

import (
	"sort"
	"sync"
)

// Policy selects the cache's replacement strategy.
type Policy string

// Policies. TinyLFU is the default: a small recency window in front of
// a frequency-gated main segment. LRU is the pre-admission behaviour —
// one recency list, evict the tail — kept so before/after benchmarks
// can run both policies over identical traffic.
const (
	TinyLFU Policy = "tinylfu"
	LRU     Policy = "lru"
)

// Default tuning. The window gets a small slice of the byte budget —
// enough for the newest mirrors to prove themselves — and the sketch
// is sized far above any realistic resident-asset count.
const (
	defaultWindowFrac     = 0.10
	defaultSketchCounters = 1024
)

// Config parameterizes a Cache. The zero value is a TinyLFU cache with
// default window fraction and sketch size and no prewarm hook.
type Config struct {
	// Policy is TinyLFU (default) or LRU.
	Policy Policy
	// WindowFrac is the fraction of the byte budget held by the
	// admission window (TinyLFU only); defaults to 0.10.
	WindowFrac float64
	// SketchCounters sizes the frequency sketch (rounded up to a power
	// of two); defaults to 1024.
	SketchCounters int
	// PrewarmThreshold is the sketch frequency estimate (1–15) at which
	// OnHot fires, once per asset. Zero disables the hook.
	PrewarmThreshold int
	// OnHot is called — outside the cache's lock, at most once per
	// asset — when an asset's estimated frequency crosses
	// PrewarmThreshold. The edge uses it to prewarm rate-group
	// siblings.
	OnHot func(name string)
}

// entry is one resident asset. Entries are their own typed list nodes
// (prev/next), so recency bookkeeping never goes through container/list
// and its interface{} boxing.
type entry struct {
	name       string
	size       int64
	hash       uint64
	window     bool // which segment the entry lives in
	prev, next *entry
}

// entryList is an intrusive doubly-linked recency list of entries:
// front is most recent, back is the eviction end.
type entryList struct {
	front, back *entry
	bytes       int64
}

func (l *entryList) pushFront(e *entry) {
	e.prev, e.next = nil, l.front
	if l.front != nil {
		l.front.prev = e
	}
	l.front = e
	if l.back == nil {
		l.back = e
	}
	l.bytes += e.size
}

func (l *entryList) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.back = e.prev
	}
	e.prev, e.next = nil, nil
	l.bytes -= e.size
}

func (l *entryList) moveToFront(e *entry) {
	if l.front == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}

// assetStat is the per-asset demand ledger. It outlives residency —
// hits and pulls accumulate across evictions and re-mirrors — which is
// exactly what the bench report's per-asset block and the duplicate-
// pull count need.
type assetStat struct {
	hits, pulls uint64
	hot         bool // OnHot already fired for this asset
}

// AssetStats is one asset's cumulative cache traffic.
type AssetStats struct {
	Name  string
	Hits  uint64 // demands served from resident content
	Pulls uint64 // origin pulls performed (first mirror + every re-mirror)
}

// Cache is the admission-controlled mirror cache. All methods are safe
// for concurrent use. The cache tracks names and sizes; the caller owns
// the actual bytes and removes them when Enforce names victims.
type Cache struct {
	cfg Config

	mu         sync.Mutex
	sketch     *sketch
	entries    map[string]*entry
	window     entryList
	main       entryList
	stats      map[string]*assetStat
	pendingHot []string
}

// New builds a cache from cfg (zero value: TinyLFU defaults).
func New(cfg Config) *Cache {
	if cfg.Policy == "" {
		cfg.Policy = TinyLFU
	}
	if cfg.WindowFrac <= 0 || cfg.WindowFrac > 1 {
		cfg.WindowFrac = defaultWindowFrac
	}
	if cfg.SketchCounters <= 0 {
		cfg.SketchCounters = defaultSketchCounters
	}
	return &Cache{
		cfg:     cfg,
		sketch:  newSketch(cfg.SketchCounters),
		entries: make(map[string]*entry),
		stats:   make(map[string]*assetStat),
	}
}

// Policy returns the cache's replacement policy.
func (c *Cache) Policy() Policy { return c.cfg.Policy }

// Add books an asset as resident (insert or size refresh). New entries
// land in the recency window (TinyLFU) or the single list (LRU);
// re-added entries refresh their size and recency in place. Add does
// not count demand — Touch and RecordPull do — so reinstating a
// pin-rescued victim never skews the frequency sketch.
func (c *Cache) Add(name string, size int64) {
	c.mu.Lock()
	if e, ok := c.entries[name]; ok {
		l := c.list(e)
		l.bytes += size - e.size
		e.size = size
		l.moveToFront(e)
		c.mu.Unlock()
		return
	}
	e := &entry{name: name, size: size, hash: hashString(name), window: c.cfg.Policy == TinyLFU}
	c.entries[name] = e
	c.list(e).pushFront(e)
	c.mu.Unlock()
}

// Touch records a demand served from resident content: a frequency
// observation, a recency bump, and a per-asset hit.
func (c *Cache) Touch(name string) {
	c.mu.Lock()
	h := hashString(name)
	c.sketch.increment(h)
	c.stat(name).hits++
	if e, ok := c.entries[name]; ok {
		c.list(e).moveToFront(e)
	}
	c.checkHot(name, h)
	c.mu.Unlock()
	c.fireHot()
}

// RecordPull records a demand that went to the origin: a frequency
// observation and a per-asset pull. Call it once per completed origin
// fetch, before or after Add.
func (c *Cache) RecordPull(name string) {
	c.mu.Lock()
	h := hashString(name)
	c.sketch.increment(h)
	c.stat(name).pulls++
	c.checkHot(name, h)
	c.mu.Unlock()
	c.fireHot()
}

// Remove drops an asset from residency accounting, reporting whether it
// was tracked. Its demand ledger survives.
func (c *Cache) Remove(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return false
	}
	c.list(e).remove(e)
	delete(c.entries, name)
	return true
}

// Contains reports whether an asset is booked as resident.
func (c *Cache) Contains(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[name]
	return ok
}

// Bytes returns the summed size of resident entries.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.window.bytes + c.main.bytes
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Names returns resident names, most recent first, window segment
// before main.
func (c *Cache) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for e := c.window.front; e != nil; e = e.next {
		out = append(out, e.name)
	}
	for e := c.main.front; e != nil; e = e.next {
		out = append(out, e.name)
	}
	return out
}

// Frequency returns the sketch's current estimate for an asset.
func (c *Cache) Frequency(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sketch.estimate(hashString(name))
}

// Stats returns the cumulative per-asset demand ledger, sorted by
// hits+pulls descending (name ascending on ties, so output is
// deterministic).
func (c *Cache) Stats() []AssetStats {
	c.mu.Lock()
	out := make([]AssetStats, 0, len(c.stats))
	for name, st := range c.stats {
		out = append(out, AssetStats{Name: name, Hits: st.hits, Pulls: st.pulls})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].Hits+out[i].Pulls, out[j].Hits+out[j].Pulls
		if di != dj {
			return di > dj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Enforce brings the cache toward the byte budget and returns the names
// the caller must drop: evicted (lost to capacity pressure or a lost
// frequency duel while resident in main) and rejected (window
// candidates that failed the frequency duel against the main segment's
// coldest resident — the one-hit wonders). Neither list ever contains
// `except` (the demand in progress) or a name pinned() reports true
// for; pins may leave the cache over budget, which a later Enforce
// resolves once they release. budget <= 0 means unbounded: nothing is
// evicted or rejected.
func (c *Cache) Enforce(budget int64, except string, pinned func(string) bool) (evicted, rejected []string) {
	if budget <= 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	if c.cfg.Policy != TinyLFU {
		// LRU: evict strictly by recency until the budget holds.
		for c.window.bytes+c.main.bytes > budget {
			victim := c.evictable(&c.main, except, pinned)
			if victim == nil {
				break // everything left is pinned or mid-demand
			}
			c.drop(victim)
			evicted = append(evicted, victim.name)
		}
		return evicted, rejected
	}
	evicted, rejected = c.reclaim(budget, except, pinned)
	c.drainWindow(budget, except, pinned)
	return evicted, rejected
}

// reclaim is the TinyLFU capacity loop: while over budget, the window's
// coldest unpinned entry duels the main segment's lowest-frequency
// unpinned entry. Strictly greater estimated frequency wins the
// newcomer a seat (the main victim is evicted, the candidate promoted);
// otherwise the candidate is rejected. With only one side able to give
// ground, that side's candidate is evicted outright. Runs under c.mu.
func (c *Cache) reclaim(budget int64, except string, pinned func(string) bool) (evicted, rejected []string) {
	for c.window.bytes+c.main.bytes > budget {
		cand := c.evictable(&c.window, except, pinned)
		victim := c.coldestMain(except, pinned)
		switch {
		case cand == nil && victim == nil:
			return evicted, rejected // everything left is pinned or mid-demand
		case cand == nil:
			c.drop(victim)
			evicted = append(evicted, victim.name)
		case victim == nil:
			c.drop(cand)
			evicted = append(evicted, cand.name)
		// The duel: strictly greater wins, so a single-demand newcomer
		// can never displace an equally-counted (or hotter) resident.
		case c.sketch.estimate(cand.hash) > c.sketch.estimate(victim.hash):
			c.drop(victim)
			evicted = append(evicted, victim.name)
			c.promote(cand)
		default:
			c.drop(cand)
			rejected = append(rejected, cand.name)
		}
	}
	return evicted, rejected
}

// drainWindow promotes the window's overflow into the main segment once
// the budget holds, keeping the window small enough to stay a probation
// area rather than a shadow cache. Pinned and in-demand entries stay
// windowed — the demand pinning them is still proving their popularity.
// Runs under c.mu.
func (c *Cache) drainWindow(budget int64, except string, pinned func(string) bool) {
	target := int64(float64(budget) * c.cfg.WindowFrac)
	if target < 1 {
		target = 1
	}
	for c.window.bytes > target {
		cand := c.evictable(&c.window, except, pinned)
		if cand == nil {
			return
		}
		c.promote(cand)
	}
}

// coldestMain returns the main entry with the lowest frequency estimate
// (ties broken toward the eviction end), skipping except and pinned
// entries — the victim a window candidate duels. Frequency, not
// recency, picks the victim so a freshly promoted one-hit wonder can
// never outlive a long-resident hot asset. Runs under c.mu.
func (c *Cache) coldestMain(except string, pinned func(string) bool) *entry {
	var victim *entry
	best := 16
	for e := c.main.back; e != nil; e = e.prev {
		if e.name == except || (pinned != nil && pinned(e.name)) {
			continue
		}
		if f := c.sketch.estimate(e.hash); f < best {
			best, victim = f, e
		}
	}
	return victim
}

// evictable returns the coldest entry of l that is neither except nor
// pinned, or nil.
func (c *Cache) evictable(l *entryList, except string, pinned func(string) bool) *entry {
	for e := l.back; e != nil; e = e.prev {
		if e.name == except || (pinned != nil && pinned(e.name)) {
			continue
		}
		return e
	}
	return nil
}

// promote moves a window entry to the main segment's recent end. Runs
// under c.mu.
func (c *Cache) promote(e *entry) {
	c.window.remove(e)
	e.window = false
	c.main.pushFront(e)
}

// drop removes an entry from its list and the index. Runs under c.mu.
func (c *Cache) drop(e *entry) {
	c.list(e).remove(e)
	delete(c.entries, e.name)
}

func (c *Cache) list(e *entry) *entryList {
	if e.window {
		return &c.window
	}
	return &c.main
}

func (c *Cache) stat(name string) *assetStat {
	st, ok := c.stats[name]
	if !ok {
		st = &assetStat{}
		c.stats[name] = st
	}
	return st
}

// checkHot queues the OnHot callback when an asset's estimate crosses
// the prewarm threshold for the first time. Runs under c.mu; the
// callback itself fires from fireHot after the lock is released.
func (c *Cache) checkHot(name string, h uint64) {
	if c.cfg.PrewarmThreshold <= 0 || c.cfg.OnHot == nil {
		return
	}
	st := c.stat(name)
	if st.hot || c.sketch.estimate(h) < c.cfg.PrewarmThreshold {
		return
	}
	st.hot = true
	c.pendingHot = append(c.pendingHot, name)
}

// fireHot delivers queued OnHot callbacks outside the lock, so a
// callback may re-enter the cache (mirror a sibling, say) freely.
func (c *Cache) fireHot() {
	if c.cfg.OnHot == nil {
		return
	}
	c.mu.Lock()
	pending := c.pendingHot
	c.pendingHot = nil
	c.mu.Unlock()
	for _, name := range pending {
		c.cfg.OnHot(name)
	}
}

package edgecache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitForWaiters polls until the flight has an in-flight call for key
// (i.e. the leader is inside fn), so followers launched afterwards are
// guaranteed to attach rather than lead.
func waitForCall(t *testing.T, f *Flight, key string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		f.mu.Lock()
		_, ok := f.calls[key]
		f.mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no call in flight")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFlightCoalescesWaiters(t *testing.T) {
	var f Flight
	var calls atomic.Int64
	gate := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, err := f.Do(nil, "asset/lec-0", func() error {
			calls.Add(1)
			<-gate
			return nil
		})
		leaderDone <- err
	}()
	waitForCall(t, &f, "asset/lec-0")

	const followers = 16
	var wg sync.WaitGroup
	var shared atomic.Int64
	errs := make(chan error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := f.Do(nil, "asset/lec-0", func() error {
				calls.Add(1)
				return nil
			})
			if s {
				shared.Add(1)
			}
			errs <- err
		}()
	}
	// Let the followers reach the attach point, then release the leader.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v", err)
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("follower err = %v", err)
		}
	}
	// Every follower that attached shares the single leader fetch; any
	// straggler that arrived after completion led its own call. Under
	// the gate + waitForCall choreography all should attach.
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if got := shared.Load(); got != followers {
		t.Fatalf("%d followers shared, want %d", got, followers)
	}
}

func TestFlightPropagatesFailure(t *testing.T) {
	var f Flight
	wantErr := errors.New("origin fetch failed")
	gate := make(chan struct{})

	go func() {
		f.Do(nil, "k", func() error { <-gate; return wantErr })
	}()
	waitForCall(t, &f, "k")

	const followers = 8
	errs := make(chan error, followers)
	for i := 0; i < followers; i++ {
		go func() {
			_, err := f.Do(nil, "k", func() error { return nil })
			errs <- err
		}()
	}
	time.Sleep(5 * time.Millisecond)
	close(gate)
	for i := 0; i < followers; i++ {
		if err := <-errs; !errors.Is(err, wantErr) {
			t.Fatalf("follower err = %v, want %v", err, wantErr)
		}
	}
}

func TestFlightFollowerCtxCancel(t *testing.T) {
	var f Flight
	gate := make(chan struct{})
	leaderErr := make(chan error, 1)

	go func() {
		_, err := f.Do(nil, "k", func() error { <-gate; return nil })
		leaderErr <- err
	}()
	waitForCall(t, &f, "k")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	shared, err := f.Do(ctx, "k", func() error {
		t.Error("cancelled follower ran fn")
		return nil
	})
	if !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower: shared=%v err=%v, want shared ctx.Canceled", shared, err)
	}

	// The leader's fetch is unaffected by the follower bailing out.
	close(gate)
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader err = %v", err)
	}
}

func TestFlightKeysIndependent(t *testing.T) {
	var f Flight
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("asset/lec-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Do(nil, key, func() error { calls.Add(1); return nil })
		}()
	}
	wg.Wait()
	if got := calls.Load(); got != 4 {
		t.Fatalf("fn ran %d times, want 4 (one per key)", got)
	}
}

func TestFlightSequentialCallsEachRun(t *testing.T) {
	var f Flight
	var calls int
	for i := 0; i < 3; i++ {
		shared, err := f.Do(nil, "k", func() error { calls++; return nil })
		if shared || err != nil {
			t.Fatalf("call %d: shared=%v err=%v", i, shared, err)
		}
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3", calls)
	}
}

// Hammer the flight from many goroutines across overlapping keys; run
// with -race this shakes out locking mistakes in the attach/complete
// windows.
func TestFlightStress(t *testing.T) {
	var f Flight
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%5)
				if _, err := f.Do(nil, key, func() error { return nil }); err != nil {
					t.Errorf("Do(%s) = %v", key, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

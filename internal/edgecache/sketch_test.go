package edgecache

import (
	"fmt"
	"testing"
)

func TestSketchCountsAndSaturates(t *testing.T) {
	sk := newSketch(1024)
	h := hashString("lec-0")
	if got := sk.estimate(h); got != 0 {
		t.Fatalf("fresh estimate = %d, want 0", got)
	}
	for i := 1; i <= 20; i++ {
		sk.increment(h)
		want := i
		if want > 15 {
			want = 15
		}
		if got := sk.estimate(h); got != want {
			t.Fatalf("after %d increments estimate = %d, want %d", i, got, want)
		}
	}
}

func TestSketchHalvesAfterSampleBudget(t *testing.T) {
	sk := newSketch(64) // 64 counters → resetAt = 640
	hot := hashString("hot")
	for i := 0; i < 12; i++ {
		sk.increment(hot)
	}
	before := sk.estimate(hot)
	// Spend the remaining sample budget on distinct filler keys (a
	// repeated key saturates and stops counting as a sample), stopping
	// at the first halving. Fillers may collide with hot's rows and
	// nudge the estimate up along the way; only a halving drops it.
	for i := 0; i < 2000 && sk.estimate(hot) >= before; i++ {
		sk.increment(hashString(fmt.Sprintf("filler-%d", i)))
	}
	after := sk.estimate(hot)
	if after >= before {
		t.Fatalf("estimate did not age: before %d, after %d", before, after)
	}
	if after < before/2 {
		t.Fatalf("single halving cut too deep: before %d, after %d", before, after)
	}
}

func TestSketchKeysIndependent(t *testing.T) {
	sk := newSketch(4096)
	for i := 0; i < 10; i++ {
		sk.increment(hashString("popular"))
	}
	// A cold key may collide on some rows, but the count-min estimate
	// over four rows should stay well below the hot key's count.
	if got := sk.estimate(hashString("unrelated")); got >= 10 {
		t.Fatalf("cold key estimate = %d, want < 10", got)
	}
	if got := sk.estimate(hashString("popular")); got != 10 {
		t.Fatalf("hot key estimate = %d, want 10", got)
	}
}

func TestSketchSizing(t *testing.T) {
	for _, tc := range []struct{ n, counters int }{{0, 64}, {64, 64}, {65, 128}, {1000, 1024}} {
		sk := newSketch(tc.n)
		if got := len(sk.table) * 16; got != tc.counters {
			t.Fatalf("newSketch(%d) holds %d counters, want %d", tc.n, got, tc.counters)
		}
		if sk.mask != uint64(tc.counters-1) {
			t.Fatalf("newSketch(%d) mask = %d, want %d", tc.n, sk.mask, tc.counters-1)
		}
	}
}

func TestHashStringDeterministic(t *testing.T) {
	if hashString("lec-3") != hashString("lec-3") {
		t.Fatal("hashString not deterministic")
	}
	if hashString("lec-3") == hashString("lec-4") {
		t.Fatal("distinct names hash equal")
	}
}

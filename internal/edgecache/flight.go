package edgecache

import (
	"context"
	"sync"
)

// call is one in-flight fetch: the leader closes done when fn returns,
// and followers read err afterwards.
type call struct {
	done chan struct{}
	err  error
}

// Flight coalesces concurrent fetches per key: the first caller for a
// key runs fn, every concurrent caller for the same key waits for that
// one result instead of issuing its own. Keys are independent.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*call
}

// Do runs fn for key, unless a call for key is already in flight — then
// it waits for that call's result instead. shared reports whether this
// caller attached to another caller's fetch. A nil ctx waits without
// cancellation (the edge's internal mirror paths have no request
// context); a follower whose ctx expires returns ctx.Err() immediately
// while the leader's fetch continues for the remaining waiters. The
// leader's error — nil or not — is propagated to every attached waiter.
func (f *Flight) Do(ctx context.Context, key string, fn func() error) (shared bool, err error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]*call)
	}
	if cl, ok := f.calls[key]; ok {
		f.mu.Unlock()
		if ctx == nil {
			<-cl.done
			return true, cl.err
		}
		select {
		case <-cl.done:
			return true, cl.err
		case <-ctx.Done():
			return true, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	f.calls[key] = cl
	f.mu.Unlock()

	cl.err = fn()

	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(cl.done)
	return false, cl.err
}

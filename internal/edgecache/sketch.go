// Package edgecache is the edge tier's mirror cache: a W-TinyLFU-style
// admission-controlled, byte-budgeted cache over asset names, plus the
// singleflight coalescer that collapses concurrent origin pulls for the
// same asset into one.
//
// The cache tracks names and sizes only — the bytes themselves live in
// the edge's streaming.Server — and decides which mirrors stay resident
// under a byte budget. Unlike a plain LRU, admission is gated by a
// compact frequency sketch: a newly pulled asset lands in a small
// recency window, and overflowing the window into the main segment
// requires beating the main segment's eviction candidate on estimated
// demand frequency. A one-hit wonder therefore churns through the
// window without ever displacing a hot asset. The plain-LRU behaviour
// remains available as a policy (Config.Policy) so benchmarks can run
// the old cache against the new one on identical traffic.
//
// Nothing in this package touches the wall clock: aging is count-based
// (the sketch halves itself every sampleFactor×counters observations),
// so behaviour is identical under virtual-clock simulation.
package edgecache

// sketch is a 4-bit count-min sketch: four counter rows folded into one
// power-of-two table of 64-bit words, sixteen 4-bit counters per word.
// Estimates saturate at 15; every sampleFactor×counters observations
// all counters halve, so the sketch tracks recent popularity rather
// than all-time totals (the "periodic halving" that makes TinyLFU's
// frequency window slide).
type sketch struct {
	table   []uint64
	mask    uint64 // counter-index mask (len(table)*16 - 1)
	samples uint64
	resetAt uint64
}

// sampleFactor scales the halving period: counters halve after
// sampleFactor observations per counter slot, mirroring the 10×
// sample-to-capacity ratio TinyLFU's false-positive analysis assumes.
const sampleFactor = 10

// newSketch sizes the sketch for at least n counters, rounded up to a
// power of two, minimum 64.
func newSketch(n int) *sketch {
	counters := 64
	for counters < n {
		counters <<= 1
	}
	return &sketch{
		table:   make([]uint64, counters/16),
		mask:    uint64(counters - 1),
		resetAt: uint64(counters) * sampleFactor,
	}
}

// hashString is FNV-1a 64 — deterministic across processes (unlike
// maphash), allocation-free, and good enough spread for the four
// derived counter positions.
func hashString(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// spread remixes the base hash into the i-th row's counter index
// (h1 + i·h2 double hashing with an avalanche over the sum).
func (sk *sketch) spread(h uint64, i uint64) uint64 {
	x := h + i*(h>>32|h<<32|1)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x & sk.mask
}

// increment bumps the four counters for h (saturating at 15) and
// halves everything when the sample budget is spent. Every observation
// counts toward the budget — even ones landing on saturated counters —
// so aging can never stall on a fully saturated table.
func (sk *sketch) increment(h uint64) {
	for i := uint64(0); i < 4; i++ {
		ci := sk.spread(h, i)
		word, shift := ci>>4, (ci&15)<<2
		if (sk.table[word]>>shift)&0xf < 15 {
			sk.table[word] += 1 << shift
		}
	}
	sk.samples++
	if sk.samples >= sk.resetAt {
		sk.halve()
	}
}

// estimate returns the frequency estimate for h: the minimum of its
// four counters (count-min), in [0, 15].
func (sk *sketch) estimate(h uint64) int {
	min := 15
	for i := uint64(0); i < 4; i++ {
		ci := sk.spread(h, i)
		if c := int((sk.table[ci>>4] >> ((ci & 15) << 2)) & 0xf); c < min {
			min = c
		}
	}
	return min
}

// halve ages the sketch: every 4-bit counter shifts right one bit in
// place (0x7777… masks the bits that would bleed across counter
// boundaries), and the sample count halves with it.
func (sk *sketch) halve() {
	for i := range sk.table {
		sk.table[i] = (sk.table[i] >> 1) & 0x7777777777777777
	}
	sk.samples /= 2
}

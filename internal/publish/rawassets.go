package publish

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/capture"
	"repro/internal/encoder"
	"repro/internal/media"
)

// RawLecturePaths locates the on-disk artifacts WriteRawLecture produced.
type RawLecturePaths struct {
	VideoPath   string
	SlidesDir   string
	Annotations string
}

// WriteRawLecture materializes a captured lecture as the raw inputs the
// publishing manager's form expects (Fig 5(a)): an AV-only container at
// dir/video.asf, slide images plus timing manifest under dir/slides/, and
// dir/slides/annotations.txt. This is the bridge between the recording
// step and the publishing step of the paper's workflow.
func WriteRawLecture(lec *capture.Lecture, dir string) (RawLecturePaths, error) {
	var paths RawLecturePaths
	slidesDir := filepath.Join(dir, "slides")
	if err := os.MkdirAll(slidesDir, 0o755); err != nil {
		return paths, fmt.Errorf("publish: mkdir: %w", err)
	}

	// AV-only container: no scripts, no slides.
	videoPath := filepath.Join(dir, "video.asf")
	f, err := os.Create(videoPath)
	if err != nil {
		return paths, fmt.Errorf("publish: create video: %w", err)
	}
	sess, err := encoder.New(encoder.Config{Title: lec.Title, Profile: lec.Profile})
	if err != nil {
		_ = f.Close()
		return paths, err
	}
	sess.AddSource(encoder.NewSampleSource(media.KindVideo, lec.Video))
	sess.AddSource(encoder.NewSampleSource(media.KindAudio, lec.Audio))
	bw := bufio.NewWriter(f)
	if _, err := sess.EncodeTo(bw); err != nil {
		_ = f.Close()
		return paths, err
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close()
		return paths, fmt.Errorf("publish: flush video: %w", err)
	}
	if err := f.Close(); err != nil {
		return paths, fmt.Errorf("publish: close video: %w", err)
	}

	// Slides and timing manifest.
	var manifest []byte
	for _, s := range lec.Slides {
		if err := os.WriteFile(filepath.Join(slidesDir, s.Name), s.Image, 0o644); err != nil {
			return paths, fmt.Errorf("publish: write slide: %w", err)
		}
		manifest = append(manifest, []byte(fmt.Sprintf("%s %s\n", s.Name, s.At))...)
	}
	if err := os.WriteFile(filepath.Join(slidesDir, TimingManifest), manifest, 0o644); err != nil {
		return paths, fmt.Errorf("publish: write timing: %w", err)
	}

	// Annotations.
	var ann []byte
	for _, a := range lec.Annotations {
		ann = append(ann, []byte(fmt.Sprintf("%s %s\n", a.At, a.Text))...)
	}
	annPath := filepath.Join(slidesDir, AnnotationsFile)
	if err := os.WriteFile(annPath, ann, 0o644); err != nil {
		return paths, fmt.Errorf("publish: write annotations: %w", err)
	}

	paths = RawLecturePaths{VideoPath: videoPath, SlidesDir: slidesDir, Annotations: annPath}
	return paths, nil
}

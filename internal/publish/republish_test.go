package publish

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/player"
	"repro/internal/session"
	"repro/internal/vclock"
)

// TestRepublishWithClassAnnotations exercises the full cross-module flow
// the paper's abstract describes ("along with … all the
// annotations/comments"): a live class produces annotations through floor
// control; the Indexer merges them into the stored lecture; replay then
// shows both the original slide scripts and the class's annotations.
func TestRepublishWithClassAnnotations(t *testing.T) {
	dir := t.TempDir()
	p, err := codec.ByName("modem-56k")
	if err != nil {
		t.Fatal(err)
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "Republish test", Duration: 6 * time.Second, Profile: p,
		SlideCount: 3, Seed: 5, // no recorded annotations
	})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := WriteRawLecture(lec, dir)
	if err != nil {
		t.Fatal(err)
	}
	published := filepath.Join(dir, "published.asf")
	if _, err := Publish(Request{
		VideoPath: paths.VideoPath, SlidesDir: paths.SlidesDir, OutputPath: published,
	}); err != nil {
		t.Fatal(err)
	}

	// A classroom session on a virtual clock yields timed annotations.
	clk := vclock.NewVirtual()
	class := session.NewClassroom("live", clk)
	if _, err := class.Join("prof", session.RoleTeacher); err != nil {
		t.Fatal(err)
	}
	if _, err := class.Join("s1", session.RoleStudent); err != nil {
		t.Fatal(err)
	}
	start := clk.Now()
	clk.Advance(2 * time.Second)
	if err := class.Annotate("prof", "key definition here"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	if _, err := class.Floor.Request("s1"); err != nil {
		t.Fatal(err)
	}
	if err := class.Annotate("s1", "does this hold for cycles?"); err != nil {
		t.Fatal(err)
	}

	// Convert classroom history into script commands relative to the
	// lecture start and merge them with the Indexer.
	var cmds []asf.ScriptCommand
	for _, ann := range class.History() {
		cmds = append(cmds, asf.ScriptCommand{
			At:    ann.At.Sub(start),
			Type:  "annotation",
			Param: ann.Author + ": " + ann.Text,
		})
	}
	src, err := os.ReadFile(published)
	if err != nil {
		t.Fatal(err)
	}
	var dst bytes.Buffer
	ixer := asf.Indexer{}
	total, err := ixer.AddScripts(bytes.NewReader(src), &dst, cmds)
	if err != nil {
		t.Fatal(err)
	}
	// 3 slide commands + 2 class annotations.
	if total != 5 {
		t.Fatalf("merged scripts = %d, want 5", total)
	}

	// Replay the republished asset: both slides and annotations render.
	m, err := player.New(player.Options{}).Play(bytes.NewReader(dst.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if m.SlidesShown != 3 {
		t.Fatalf("slides = %d", m.SlidesShown)
	}
	if m.Annotations != 2 {
		t.Fatalf("annotations = %d, want 2", m.Annotations)
	}
	// The annotations appear at the classroom instants.
	var annPTS []time.Duration
	for _, e := range m.Events {
		if e.Kind == player.EventAnnotation {
			annPTS = append(annPTS, e.PTS)
		}
	}
	if len(annPTS) != 2 || annPTS[0] != 2*time.Second || annPTS[1] != 4*time.Second {
		t.Fatalf("annotation times = %v", annPTS)
	}
}

// Package publish implements the paper's web publishing manager (§3,
// Figure 5): "User must fill the path of video file (MPEG4) and the
// directory of the presented slides. Our system could make the video and
// presented slides synchronized with the temporal script commands as an
// advanced stream format (ASF) file automatically."
//
// Publish reads a recorded audio/video container, a slide directory with a
// timing manifest, and optional annotations, and produces one synchronized
// container whose header (and, for live republish, in-band packets) carry
// the slide-flip and annotation script commands. It also constructs the
// multi-level content tree of the published presentation (Figure 6).
package publish

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/contenttree"
	"repro/internal/encoder"
	"repro/internal/media"
)

// TimingManifest is the file name inside a slide directory mapping slides
// to display times. Each line: "<file> <offset>", e.g. "slide01.png 0s".
// Without a manifest, slides are spread evenly across the video duration.
const TimingManifest = "timing.txt"

// AnnotationsFile is the optional annotations file: "<offset> <text>".
const AnnotationsFile = "annotations.txt"

// Errors.
var (
	ErrNoSlides = errors.New("publish: slide directory contains no slides")
)

// Request is one publishing operation (the Fig 5(a) form).
type Request struct {
	// Title of the published presentation.
	Title string
	// VideoPath is the recorded AV container (the paper's "path of video
	// file (MPEG4)").
	VideoPath string
	// SlidesDir is "the directory of the presented slides".
	SlidesDir string
	// AnnotationsPath optionally points to an annotations file; empty
	// means SlidesDir/annotations.txt if present.
	AnnotationsPath string
	// OutputPath is where the synchronized container is written.
	OutputPath string
	// Live re-publishes as a live-style stream with in-band scripts.
	Live bool
	// SectionSize groups this many slides per content-tree section; zero
	// chooses ceil(sqrt(len(slides))).
	SectionSize int
}

// Result summarizes a publish operation.
type Result struct {
	// AssetPath is the written container.
	AssetPath string
	// Scripts is the number of script commands embedded.
	Scripts int
	// Slides is the number of slides synchronized.
	Slides int
	// Tree is the multi-level content tree of the presentation (Fig 6).
	Tree *contenttree.Tree
	// Stats are the remux statistics.
	Stats encoder.Stats
	// Duration is the published presentation length.
	Duration time.Duration
}

// Publish runs the full §3 workflow.
func Publish(req Request) (*Result, error) {
	if req.VideoPath == "" || req.SlidesDir == "" || req.OutputPath == "" {
		return nil, errors.New("publish: VideoPath, SlidesDir and OutputPath are required")
	}
	videoSamples, audioSamples, header, err := readVideoContainer(req.VideoPath)
	if err != nil {
		return nil, err
	}
	duration := header.Duration
	if duration == 0 {
		for _, s := range videoSamples {
			if end := s.PTS + s.Duration; end > duration {
				duration = end
			}
		}
	}
	slides, err := readSlides(req.SlidesDir, duration)
	if err != nil {
		return nil, err
	}
	annPath := req.AnnotationsPath
	if annPath == "" {
		annPath = filepath.Join(req.SlidesDir, AnnotationsFile)
	}
	annotations, err := readAnnotations(annPath)
	if err != nil {
		return nil, err
	}

	// Temporal script commands: one slide flip per slide, one annotation
	// command per annotation.
	var scripts []asf.ScriptCommand
	for _, s := range slides {
		scripts = append(scripts, asf.ScriptCommand{At: s.At, Type: "slide", Param: s.Name})
	}
	for _, a := range annotations {
		scripts = append(scripts, asf.ScriptCommand{At: a.At, Type: "annotation", Param: a.Text})
	}
	sort.SliceStable(scripts, func(i, j int) bool { return scripts[i].At < scripts[j].At })

	title := req.Title
	if title == "" {
		title = header.Title
	}

	// Remux through an encoder session.
	profile, err := profileFromHeader(header)
	if err != nil {
		return nil, err
	}
	sess, err := encoder.New(encoder.Config{
		Title:   title,
		Profile: profile,
		Live:    req.Live,
		Scripts: scripts,
	})
	if err != nil {
		return nil, err
	}
	if len(videoSamples) > 0 {
		sess.AddSource(encoder.NewSampleSource(media.KindVideo, videoSamples))
	}
	if len(audioSamples) > 0 {
		sess.AddSource(encoder.NewSampleSource(media.KindAudio, audioSamples))
	}
	sess.AddSlides(slides)

	out, err := os.Create(req.OutputPath)
	if err != nil {
		return nil, fmt.Errorf("publish: create output: %w", err)
	}
	stats, err := sess.EncodeTo(out)
	if cerr := out.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("publish: close output: %w", cerr)
	}
	if err != nil {
		return nil, err
	}

	tree, err := BuildContentTree(title, slides, duration, req.SectionSize)
	if err != nil {
		return nil, err
	}
	return &Result{
		AssetPath: req.OutputPath,
		Scripts:   len(scripts),
		Slides:    len(slides),
		Tree:      tree,
		Stats:     stats,
		Duration:  duration,
	}, nil
}

// readVideoContainer loads AV samples back out of a stored container.
func readVideoContainer(path string) (video, audio []media.Sample, h asf.Header, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, h, fmt.Errorf("publish: open video: %w", err)
	}
	defer func() {
		_ = f.Close()
	}()
	r := asf.NewReader(bufio.NewReader(f))
	h, err = r.ReadHeader()
	if err != nil {
		return nil, nil, h, fmt.Errorf("publish: video header: %w", err)
	}
	for {
		p, rerr := r.ReadPacket()
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				break
			}
			return nil, nil, h, fmt.Errorf("publish: video packet: %w", rerr)
		}
		s := media.Sample{
			Stream: p.Stream, Kind: p.Kind, PTS: p.PTS, Duration: p.Dur,
			Keyframe: p.Keyframe(), Data: p.Payload,
		}
		switch p.Kind {
		case media.KindVideo:
			video = append(video, s)
		case media.KindAudio:
			audio = append(audio, s)
		}
	}
	return video, audio, h, nil
}

// profileFromHeader picks the ladder profile whose video bit rate is
// closest to the recorded stream's, so the remuxed header advertises
// comparable rates.
func profileFromHeader(h asf.Header) (codec.Profile, error) {
	videoRate := streamRate(h, media.StreamVideo)
	ps := codec.Ladder()
	best := ps[0]
	bestDiff := int64(math.MaxInt64)
	for _, p := range ps {
		diff := p.VideoBitsPerSecond - videoRate
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			best, bestDiff = p, diff
		}
	}
	return best, nil
}

func streamRate(h asf.Header, id media.StreamID) int64 {
	if st, ok := h.StreamByID(id); ok {
		return st.BitsPerSecond
	}
	return 0
}

// readSlides loads the slide images and their display times.
func readSlides(dir string, videoDur time.Duration) ([]capture.Slide, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("publish: read slides dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if name == TimingManifest || name == AnnotationsFile {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, ErrNoSlides
	}

	timing, err := readTiming(filepath.Join(dir, TimingManifest))
	if err != nil {
		return nil, err
	}
	slides := make([]capture.Slide, 0, len(names))
	interval := videoDur / time.Duration(len(names))
	for i, name := range names {
		img, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("publish: read slide %s: %w", name, err)
		}
		at, ok := timing[name]
		if !ok {
			at = time.Duration(i) * interval
		}
		slides = append(slides, capture.Slide{Name: name, At: at, Image: img})
	}
	sort.SliceStable(slides, func(i, j int) bool { return slides[i].At < slides[j].At })
	return slides, nil
}

// readTiming parses the timing manifest; a missing file yields an empty map.
func readTiming(path string) (map[string]time.Duration, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return map[string]time.Duration{}, nil
		}
		return nil, fmt.Errorf("publish: open timing manifest: %w", err)
	}
	defer func() {
		_ = f.Close()
	}()
	out := make(map[string]time.Duration)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("publish: timing manifest line %d: want \"<file> <offset>\"", line)
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return nil, fmt.Errorf("publish: timing manifest line %d: %w", line, err)
		}
		if d < 0 {
			return nil, fmt.Errorf("publish: timing manifest line %d: negative offset", line)
		}
		out[fields[0]] = d
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("publish: timing manifest: %w", err)
	}
	return out, nil
}

// readAnnotations parses "<offset> <text...>" lines; a missing file is fine.
func readAnnotations(path string) ([]capture.Annotation, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("publish: open annotations: %w", err)
	}
	defer func() {
		_ = f.Close()
	}()
	var out []capture.Annotation
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.SplitN(text, " ", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("publish: annotations line %d: want \"<offset> <text>\"", line)
		}
		d, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("publish: annotations line %d: %w", line, err)
		}
		out = append(out, capture.Annotation{At: d, Text: fields[1]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("publish: annotations: %w", err)
	}
	return out, nil
}

// BuildContentTree constructs the Figure 6 multi-level content tree of a
// published presentation: the intro slide interval is the level-0 summary,
// section-head slides form level 1, and the remaining slides sit at level 2
// under their section heads. Extracting level q yields presentations of
// increasing length, per §2.2.
func BuildContentTree(title string, slides []capture.Slide, total time.Duration, sectionSize int) (*contenttree.Tree, error) {
	if len(slides) == 0 {
		return nil, ErrNoSlides
	}
	if sectionSize <= 0 {
		sectionSize = int(math.Ceil(math.Sqrt(float64(len(slides)))))
	}
	intervals := make([]time.Duration, len(slides))
	for i := range slides {
		end := total
		if i+1 < len(slides) {
			end = slides[i+1].At
		}
		intervals[i] = end - slides[i].At
		if intervals[i] < 0 {
			return nil, fmt.Errorf("publish: slide %s starts after the presentation ends", slides[i].Name)
		}
	}
	tree := contenttree.New()
	if err := tree.Attach(rootID(title), intervals[0], 0); err != nil {
		return nil, err
	}
	for i := 1; i < len(slides); i++ {
		level := 2
		if (i-1)%sectionSize == 0 {
			level = 1 // section head
		}
		if err := tree.Attach(slides[i].Name, intervals[i], level); err != nil {
			return nil, err
		}
	}
	return tree, nil
}

func rootID(title string) string {
	if title == "" {
		return "presentation"
	}
	return title
}

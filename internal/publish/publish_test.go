package publish

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/contenttree"
	"repro/internal/player"
)

func makeLecture(t *testing.T, dur time.Duration, slideCount int) *capture.Lecture {
	t.Helper()
	p, err := codec.ByName("modem-56k")
	if err != nil {
		t.Fatal(err)
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "Publish test", Duration: dur, Profile: p,
		SlideCount: slideCount, AnnotationEvery: dur / 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return lec
}

func TestWriteRawLectureLayout(t *testing.T) {
	dir := t.TempDir()
	lec := makeLecture(t, 4*time.Second, 4)
	paths, err := WriteRawLecture(lec, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{
		paths.VideoPath,
		filepath.Join(paths.SlidesDir, "slide01.png"),
		filepath.Join(paths.SlidesDir, "slide04.png"),
		filepath.Join(paths.SlidesDir, TimingManifest),
		paths.Annotations,
	} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("missing artifact %s: %v", p, err)
		}
	}
}

// TestFigure5PublishReplay is the E5 experiment: publish the lecture from
// its raw parts, then replay and verify the slide flips appear at the
// recorded times (Fig 5(b) "replay the representation").
func TestFigure5PublishReplay(t *testing.T) {
	dir := t.TempDir()
	lec := makeLecture(t, 6*time.Second, 6)
	paths, err := WriteRawLecture(lec, dir)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "published.asf")
	res, err := Publish(Request{
		Title:      lec.Title,
		VideoPath:  paths.VideoPath,
		SlidesDir:  paths.SlidesDir,
		OutputPath: out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Slides != 6 {
		t.Fatalf("published %d slides, want 6", res.Slides)
	}
	// 6 slide commands + 2 annotations.
	if res.Scripts != 8 {
		t.Fatalf("scripts = %d, want 8", res.Scripts)
	}
	if res.Duration != 6*time.Second {
		t.Fatalf("duration = %v", res.Duration)
	}

	// Replay: the player must flip every slide at its recorded time.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := player.New(player.Options{}).Play(f)
	if err != nil {
		t.Fatal(err)
	}
	flips := m.SlideEvents()
	if len(flips) != len(lec.Slides) {
		t.Fatalf("replay flipped %d slides, want %d", len(flips), len(lec.Slides))
	}
	for i, fl := range flips {
		if fl.Param != lec.Slides[i].Name || fl.PTS != lec.Slides[i].At {
			t.Errorf("flip %d = %q@%v, want %q@%v", i, fl.Param, fl.PTS, lec.Slides[i].Name, lec.Slides[i].At)
		}
	}
	if m.Annotations != len(lec.Annotations) {
		t.Errorf("replayed %d annotations, want %d", m.Annotations, len(lec.Annotations))
	}
	if m.VideoFrames != len(lec.Video) {
		t.Errorf("replayed %d video frames, want %d", m.VideoFrames, len(lec.Video))
	}
	if m.BrokenFrames != 0 {
		t.Errorf("%d broken frames on clean replay", m.BrokenFrames)
	}
}

// TestFigure6PublishedTree is the E6 experiment: the published lecture's
// content tree has the intro at level 0, section heads at level 1, slides
// at level 2, and monotone per-level presentation times.
func TestFigure6PublishedTree(t *testing.T) {
	lec := makeLecture(t, 9*time.Second, 9)
	tree, err := BuildContentTree(lec.Title, lec.Slides, lec.Duration, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 9 {
		t.Fatalf("tree has %d nodes, want 9", tree.Len())
	}
	if tree.HighestLevel() != 2 {
		t.Fatalf("highest level = %d, want 2", tree.HighestLevel())
	}
	lv := tree.LevelNodes()
	for q := 1; q < len(lv); q++ {
		if lv[q] <= lv[q-1] {
			t.Fatalf("LevelNodes not strictly increasing: %v", lv)
		}
	}
	// Full extraction covers the whole lecture.
	if lv[len(lv)-1] != 9*time.Second {
		t.Fatalf("full presentation time = %v, want 9s", lv[len(lv)-1])
	}
	// Root is the intro interval.
	if tree.Root().ID != lec.Title {
		t.Fatalf("root = %q", tree.Root().ID)
	}
}

func TestPublishWithoutTimingManifestSpreadsEvenly(t *testing.T) {
	dir := t.TempDir()
	lec := makeLecture(t, 4*time.Second, 4)
	paths, err := WriteRawLecture(lec, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(paths.SlidesDir, TimingManifest)); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.asf")
	res, err := Publish(Request{
		VideoPath: paths.VideoPath, SlidesDir: paths.SlidesDir, OutputPath: out,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 slides across 4 s: flips at 0,1,2,3 s.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := player.New(player.Options{}).Play(f)
	if err != nil {
		t.Fatal(err)
	}
	flips := m.SlideEvents()
	if len(flips) != 4 {
		t.Fatalf("flips = %d", len(flips))
	}
	for i, fl := range flips {
		if want := time.Duration(i) * time.Second; fl.PTS != want {
			t.Errorf("flip %d at %v, want %v", i, fl.PTS, want)
		}
	}
	_ = res
}

func TestPublishValidation(t *testing.T) {
	if _, err := Publish(Request{}); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := Publish(Request{VideoPath: "/nope", SlidesDir: "/nope", OutputPath: "/tmp/x"}); err == nil {
		t.Error("missing video accepted")
	}
}

func TestPublishEmptySlidesDir(t *testing.T) {
	dir := t.TempDir()
	lec := makeLecture(t, 2*time.Second, 2)
	paths, err := WriteRawLecture(lec, dir)
	if err != nil {
		t.Fatal(err)
	}
	empty := filepath.Join(dir, "empty")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	_, err = Publish(Request{
		VideoPath: paths.VideoPath, SlidesDir: empty,
		OutputPath: filepath.Join(dir, "out.asf"),
	})
	if !errors.Is(err, ErrNoSlides) {
		t.Fatalf("err = %v, want ErrNoSlides", err)
	}
}

func TestReadTimingErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, TimingManifest)

	cases := []struct {
		name    string
		content string
		wantErr bool
	}{
		{"good", "a.png 5s\n# comment\n\nb.png 10s\n", false},
		{"bad fields", "a.png\n", true},
		{"bad duration", "a.png xyz\n", true},
		{"negative", "a.png -5s\n", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := readTiming(path)
			if (err != nil) != tc.wantErr {
				t.Fatalf("readTiming err = %v, wantErr = %v", err, tc.wantErr)
			}
		})
	}
	// Missing manifest is fine.
	if _, err := readTiming(filepath.Join(dir, "absent.txt")); err != nil {
		t.Fatalf("missing manifest: %v", err)
	}
}

func TestReadAnnotationsErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, AnnotationsFile)
	if err := os.WriteFile(path, []byte("25s see chapter three\n50s recap\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	anns, err := readAnnotations(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 2 || anns[0].Text != "see chapter three" || anns[0].At != 25*time.Second {
		t.Fatalf("annotations = %+v", anns)
	}
	if err := os.WriteFile(path, []byte("nonsense\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readAnnotations(path); err == nil {
		t.Fatal("bad annotations accepted")
	}
	if got, err := readAnnotations(filepath.Join(dir, "absent")); err != nil || got != nil {
		t.Fatalf("missing annotations = %v,%v", got, err)
	}
}

func TestBuildContentTreeSectionSize(t *testing.T) {
	lec := makeLecture(t, 8*time.Second, 8)
	tree, err := BuildContentTree("T", lec.Slides, lec.Duration, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Slides 2..8 (7 nodes): section heads at positions 1, 4, 7 → three
	// level-1 nodes, the other four at level 2.
	counts := map[int]int{}
	tree.Walk(func(_ *contenttree.Node, lvl int) bool {
		counts[lvl]++
		return true
	})
	if counts[0] != 1 || counts[1] != 3 || counts[2] != 4 {
		t.Fatalf("level counts = %v, want {0:1 1:3 2:4}", counts)
	}
}

func TestBuildContentTreeErrors(t *testing.T) {
	if _, err := BuildContentTree("T", nil, time.Second, 0); !errors.Is(err, ErrNoSlides) {
		t.Fatalf("empty slides = %v", err)
	}
	bad := []capture.Slide{{Name: "late.png", At: 10 * time.Second}}
	if _, err := BuildContentTree("T", bad, time.Second, 0); err == nil {
		t.Fatal("slide past end accepted")
	}
}

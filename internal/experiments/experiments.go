// Package experiments regenerates every table and figure of the paper's
// evaluation (the E1–E12 index in DESIGN.md). Each Run* function is
// deterministic, returns both structured results and a formatted text
// block, and is exercised by cmd/lodbench and the repository benchmarks.
package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/contenttree"
)

// Result is one regenerated experiment artifact.
type Result struct {
	ID    string
	Title string
	Text  string
}

// render formats rows as an aligned table.
func render(header []string, rows [][]string) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	_ = w.Flush()
	return b.String()
}

const paperUnit = 20 * time.Second

// paperTree builds the §2.3 example tree S0(S1(S2), S3(S4)).
func paperTree() (*contenttree.Tree, error) {
	tree := contenttree.New()
	steps := []struct {
		id    string
		level int
	}{
		{"S0", 0}, {"S1", 1}, {"S2", 2}, {"S3", 1}, {"S4", 2},
	}
	for _, s := range steps {
		if err := tree.Attach(s.id, paperUnit, s.level); err != nil {
			return nil, err
		}
	}
	return tree, nil
}

func levelRow(tree *contenttree.Tree) []string {
	lv := tree.LevelNodes()
	out := make([]string, len(lv))
	for i, d := range lv {
		out[i] = fmt.Sprintf("LevelNodes[%d]=%.0f", i, d.Seconds())
	}
	return out
}

// RunE1 regenerates Figures 1 and 2: the multiple-level content tree shape
// and its well-definedness.
func RunE1() (*Result, error) {
	tree, err := paperTree()
	if err != nil {
		return nil, err
	}
	if err := tree.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: E1 tree not well-defined: %w", err)
	}
	var b strings.Builder
	b.WriteString("Multiple-level content tree (Figure 1/2):\n")
	b.WriteString(tree.String())
	fmt.Fprintf(&b, "highestLevel = %d\n", tree.HighestLevel())
	fmt.Fprintf(&b, "%s\n", strings.Join(levelRow(tree), "  "))
	fmt.Fprintf(&b, "level extractions: L0=%v L1=%v L2=%v\n",
		tree.ExtractLevelIDs(0), tree.ExtractLevelIDs(1), tree.ExtractLevelIDs(2))
	return &Result{ID: "E1", Title: "Content tree shape (Fig 1, Fig 2)", Text: b.String()}, nil
}

// RunE2 regenerates the §2.3 build-step table: the LevelNodes values after
// each add, matching the paper's published numbers.
func RunE2() (*Result, error) {
	tree := contenttree.New()
	type step struct {
		name  string
		id    string
		level int
	}
	steps := []step{
		{"Step 1: add S0", "S0", 0},
		{"Step 2: add S1", "S1", 1},
		{"Step 3: add S2", "S2", 2},
		{"Step 4: add S3", "S3", 1},
		{"Step 4: add S4", "S4", 2},
	}
	rows := make([][]string, 0, len(steps))
	for _, s := range steps {
		if err := tree.Attach(s.id, paperUnit, s.level); err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			s.name,
			fmt.Sprintf("highestLevel=%d", tree.HighestLevel()),
			strings.Join(levelRow(tree), " "),
		})
	}
	// Verify against the paper's stated values.
	want := []float64{20, 60, 100}
	lv := tree.LevelNodes()
	for q, w := range want {
		if lv[q].Seconds() != w {
			return nil, fmt.Errorf("experiments: E2 LevelNodes[%d] = %v, paper says %v", q, lv[q].Seconds(), w)
		}
	}
	return &Result{
		ID: "E2", Title: "§2.3 build steps (paper: final LevelNodes {20,60,100})",
		Text: render([]string{"step", "highestLevel", "LevelNodes"}, rows),
	}, nil
}

// RunE3 regenerates Figure 3: inserting S5 at level 1 over S3 yields
// LevelNodes {20, 60, 120} with highestLevel still 2.
func RunE3() (*Result, error) {
	tree, err := paperTree()
	if err != nil {
		return nil, err
	}
	before := strings.Join(levelRow(tree), " ")
	if err := tree.Insert("S5", paperUnit, "S3"); err != nil {
		return nil, err
	}
	after := strings.Join(levelRow(tree), " ")
	lv := tree.LevelNodes()
	want := []float64{20, 60, 120}
	for q, w := range want {
		if lv[q].Seconds() != w {
			return nil, fmt.Errorf("experiments: E3 LevelNodes[%d] = %v, paper says %v", q, lv[q].Seconds(), w)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "before insert: %s\n", before)
	fmt.Fprintf(&b, "insert S5 (level 1) over S3\n")
	fmt.Fprintf(&b, "after insert:  %s  highestLevel=%d\n", after, tree.HighestLevel())
	b.WriteString(tree.String())
	return &Result{ID: "E3", Title: "Figure 3 insert (paper: {20,60,120}, highestLevel 2)", Text: b.String()}, nil
}

// RunE4 regenerates Figure 4: deleting S5 hands its children to sibling S1.
func RunE4() (*Result, error) {
	tree, err := paperTree()
	if err != nil {
		return nil, err
	}
	if err := tree.Insert("S5", paperUnit, "S3"); err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("before delete:\n")
	b.WriteString(tree.String())
	if err := tree.Delete("S5"); err != nil {
		return nil, err
	}
	b.WriteString("delete S5 (level 1) — children adopted by sibling S1:\n")
	b.WriteString(tree.String())
	s1 := tree.Find("S1")
	if s1 == nil || len(s1.Children) != 3 {
		return nil, fmt.Errorf("experiments: E4 adoption failed")
	}
	return &Result{ID: "E4", Title: "Figure 4 delete (children adopted by S1)", Text: b.String()}, nil
}

package experiments

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/encoder"
	"repro/internal/netsim"
	"repro/internal/ocpn"
	"repro/internal/player"
	"repro/internal/publish"
)

// stdLecture is the reference lecture used by the system experiments: the
// paper's motivating scenario, a one-hour lecture scaled to 60 s with 12
// slides and periodic annotations.
func stdLecture(profileName string, dur time.Duration, slides int) (capture.LectureConfig, error) {
	p, err := codec.ByName(profileName)
	if err != nil {
		return capture.LectureConfig{}, err
	}
	return capture.LectureConfig{
		Title:           "Distributed Systems — Lecture 1",
		Duration:        dur,
		Profile:         p,
		SlideCount:      slides,
		AnnotationEvery: dur / 4,
		Seed:            2002,
	}, nil
}

// RunE5 regenerates Figure 5: publish a recorded lecture (video path +
// slide directory) into a synchronized container, then replay it and
// verify every slide flips at its recorded instant.
func RunE5(workDir string) (*Result, error) {
	if workDir == "" {
		dir, err := os.MkdirTemp("", "wmps-e5-")
		if err != nil {
			return nil, err
		}
		defer func() {
			_ = os.RemoveAll(dir)
		}()
		workDir = dir
	}
	cfg, err := stdLecture("dsl-300k", 60*time.Second, 12)
	if err != nil {
		return nil, err
	}
	sys := core.NewSystem(nil)
	lec, err := sys.RecordLecture(cfg)
	if err != nil {
		return nil, err
	}
	res, err := sys.PublishLecture(lec, workDir, "lecture1")
	if err != nil {
		return nil, err
	}
	m, err := sys.Replay("lecture1", player.Options{})
	if err != nil {
		return nil, err
	}

	rows := make([][]string, 0, len(m.SlideEvents()))
	for i, fl := range m.SlideEvents() {
		want := lec.Slides[i].At
		ok := "OK"
		if fl.PTS != want || fl.Param != lec.Slides[i].Name {
			ok = "MISMATCH"
		}
		rows = append(rows, []string{
			fl.Param, want.String(), fl.PTS.String(), ok,
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "published %s: %d packets, %d scripts, %.1f kB\n",
		res.AssetPath, res.Stats.Packets, res.Scripts, float64(res.Stats.Bytes)/1000)
	b.WriteString(render([]string{"slide", "recorded at", "replayed at", "sync"}, rows))
	fmt.Fprintf(&b, "replay: %d video frames, %d audio blocks, %d annotations, %d broken frames\n",
		m.VideoFrames, m.AudioBlocks, m.Annotations, m.BrokenFrames)
	return &Result{ID: "E5", Title: "Figure 5 publish + replay", Text: b.String()}, nil
}

// RunE6 regenerates Figure 6: the multi-level content tree of the
// published presentation.
func RunE6() (*Result, error) {
	cfg, err := stdLecture("dsl-300k", 60*time.Second, 12)
	if err != nil {
		return nil, err
	}
	lec, err := capture.NewLecture(cfg)
	if err != nil {
		return nil, err
	}
	tree, err := publish.BuildContentTree(lec.Title, lec.Slides, lec.Duration, 0)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString(tree.String())
	lv := tree.LevelNodes()
	for q, d := range lv {
		fmt.Fprintf(&b, "presentation at level %d: %v (%v)\n", q, d, tree.ExtractLevelIDs(q))
	}
	return &Result{ID: "E6", Title: "Figure 6 published content tree", Text: b.String()}, nil
}

// RunE7 regenerates Figure 7: end-to-end synchronized playback across a
// sweep of network links, reporting skew, lateness, and decodability.
func RunE7() (*Result, error) {
	cfg, err := stdLecture("modem-56k", 30*time.Second, 6)
	if err != nil {
		return nil, err
	}
	links := []struct {
		name string
		link netsim.Link
	}{
		{"lan-10m", netsim.LinkLAN},
		{"dsl-768k", netsim.LinkDSL},
		{"modem-56k", netsim.LinkModem56k},
		{"lossy-wifi", netsim.LinkLossyWiFi},
	}
	rows := make([][]string, 0, len(links))
	for _, l := range links {
		res, err := core.RunEndToEnd(core.E2EConfig{
			Lecture:      cfg,
			Link:         l.link,
			StartupDelay: time.Second,
			LeadTime:     time.Second,
		})
		if err != nil {
			return nil, err
		}
		sync := "yes"
		if !res.Synchronized(80*time.Millisecond, 500*time.Millisecond) {
			sync = "no"
		}
		rows = append(rows, []string{
			l.name,
			fmt.Sprintf("%d/%d", res.Packets-res.Lost, res.Packets),
			res.MaxSkew.Truncate(time.Millisecond).String(),
			res.MeanSkew.Truncate(time.Millisecond).String(),
			fmt.Sprintf("%d", res.LateEvents),
			fmt.Sprintf("%.3f", res.DecodableFrac),
			res.MaxSlideSkew.Truncate(time.Millisecond).String(),
			sync,
		})
	}
	text := render([]string{
		"link", "delivered", "max skew", "mean skew", "late", "decodable", "slide skew", "in sync",
	}, rows)
	return &Result{ID: "E7", Title: "Figure 7 end-to-end synchronized playback", Text: text}, nil
}

// RunE8 regenerates the §2.1/§2.5 profile ladder: the same lecture encoded
// at every bandwidth profile, reporting size, achieved rate, resolution,
// and the quality proxy ("more high bit rate means … more high-resolution
// content").
func RunE8() (*Result, error) {
	rows := make([][]string, 0, len(codec.Ladder()))
	for _, p := range codec.Ladder() {
		lec, err := capture.NewLecture(capture.LectureConfig{
			Title: "ladder", Duration: 30 * time.Second, Profile: p,
			SlideCount: 6, Seed: 2002,
		})
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		stats, err := encoder.EncodeLecture(lec, encoder.Config{}, &buf)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			p.Name,
			p.Audience,
			fmt.Sprintf("%dx%d@%d", p.Width, p.Height, p.FrameRate),
			fmt.Sprintf("%d", p.TotalBitsPerSecond()/1000),
			fmt.Sprintf("%d", stats.MediaBitsPerSecond()/1000),
			fmt.Sprintf("%.1f", float64(buf.Len())/1024),
			fmt.Sprintf("%.1f", p.Quality()),
		})
	}
	text := render([]string{
		"profile", "audience", "video", "target kbps", "achieved media kbps", "file KiB", "quality dB",
	}, rows)
	return &Result{ID: "E8", Title: "Bandwidth profile ladder (30 s lecture)", Text: text}, nil
}

// RunE9 regenerates the §1 model comparison: the same presentation and
// scenario (user pause + one late segment) under OCPN, XOCPN, and the
// extended timed Petri net, counting mis-scheduled segments.
func RunE9() (*Result, error) {
	cfg, err := stdLecture("modem-56k", 60*time.Second, 6)
	if err != nil {
		return nil, err
	}
	lec, err := capture.NewLecture(cfg)
	if err != nil {
		return nil, err
	}
	p := lec.ToPresentation()
	sc := ocpn.Scenario{
		Interactions: []ocpn.Interaction{
			{Kind: ocpn.Pause, At: 15 * time.Second},
			{Kind: ocpn.Resume, At: 25 * time.Second},
			{Kind: ocpn.Skip, At: 5 * time.Second, SegmentID: "video05"},
			{Kind: ocpn.Skip, At: 5 * time.Second, SegmentID: "slide05"},
		},
		Arrivals: []ocpn.Arrival{
			{SegmentID: "video03", At: 24 * time.Second},
		},
	}
	reports, err := ocpn.CompareModels(p, sc)
	if err != nil {
		return nil, err
	}
	rows := make([][]string, 0, 3)
	for _, kind := range []ocpn.ModelKind{ocpn.OCPN, ocpn.XOCPN, ocpn.Extended} {
		rep := reports[kind]
		var reasons []string
		for _, s := range rep.Segments {
			if s.MisScheduled {
				reasons = append(reasons, fmt.Sprintf("%s(%s)", s.ID, s.Reason))
			}
		}
		detail := strings.Join(reasons, "; ")
		if detail == "" {
			detail = "-"
		}
		rows = append(rows, []string{
			kind.String(),
			fmt.Sprintf("%d/%d", rep.MisScheduled, len(rep.Segments)),
			detail,
		})
	}
	text := render([]string{"model", "mis-scheduled", "deviations"}, rows)
	text += "\nscenario: pause 15s→25s, skip segment 5, segment video03 data 9s late\n"
	return &Result{ID: "E9", Title: "Synchronization model comparison (OCPN vs XOCPN vs extended)", Text: text}, nil
}

package experiments

import (
	"strings"
	"testing"
)

func TestRunAllExperiments(t *testing.T) {
	results, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 16 {
		t.Fatalf("ran %d experiments, want 16", len(results))
	}
	for _, r := range results {
		if r.Text == "" {
			t.Errorf("%s produced no output", r.ID)
		}
		if r.Title == "" {
			t.Errorf("%s has no title", r.ID)
		}
	}
}

func TestE2MatchesPaperValues(t *testing.T) {
	res, err := RunE2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"LevelNodes[0]=20", "LevelNodes[1]=60", "LevelNodes[2]=100"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("E2 output missing %q:\n%s", want, res.Text)
		}
	}
}

func TestE3MatchesPaperValues(t *testing.T) {
	res, err := RunE3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "LevelNodes[2]=120") {
		t.Errorf("E3 output missing post-insert value:\n%s", res.Text)
	}
}

func TestE9ShowsModelOrdering(t *testing.T) {
	res, err := RunE9()
	if err != nil {
		t.Fatal(err)
	}
	// The extended model's row must report 0 mis-schedules.
	lines := strings.Split(res.Text, "\n")
	var extLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "ExtendedTimedPN") {
			extLine = l
		}
	}
	if extLine == "" {
		t.Fatalf("no extended model row:\n%s", res.Text)
	}
	if !strings.Contains(extLine, "0/") {
		t.Errorf("extended model mis-scheduled: %s", extLine)
	}
}

func TestE10SmallAndLarge(t *testing.T) {
	for _, n := range []int{2, 5, 32} {
		if _, err := RunE10(n); err != nil {
			t.Errorf("E10(%d): %v", n, err)
		}
	}
}

func TestE12SmallScale(t *testing.T) {
	res, err := RunE12(4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "clients") {
		t.Fatalf("E12 output malformed:\n%s", res.Text)
	}
}

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != 16 || ids[0] != "E1" || ids[15] != "E16" {
		t.Fatalf("IDs = %v", ids)
	}
}

package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/dynamic"
	"repro/internal/encoder"
	"repro/internal/media"
	"repro/internal/ocpn"
	"repro/internal/player"
	"repro/internal/publish"
	"repro/internal/streaming"
)

// RunE13 exercises the extension experiment: interactive playback controls
// (the §1 "dynamical operations of users") on a stored lecture — pause
// shifts the tail, seek jumps to a keyframe, and every wall timeline stays
// ordered.
func RunE13() (*Result, error) {
	cfg, err := stdLecture("modem-56k", 30*time.Second, 6)
	if err != nil {
		return nil, err
	}
	lec, err := capture.NewLecture(cfg)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{}, &buf); err != nil {
		return nil, err
	}
	header, packets, ix, err := asf.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, err
	}

	scenarios := []struct {
		name     string
		controls []player.Control
	}{
		{"uncontrolled", nil},
		{"pause 10s→15s", []player.Control{
			{Kind: player.CtlPause, At: 10 * time.Second},
			{Kind: player.CtlResume, At: 15 * time.Second},
		}},
		{"seek to 20s at wall 5s", []player.Control{
			{Kind: player.CtlSeek, At: 5 * time.Second, Target: 20 * time.Second},
		}},
		{"seek back to 0 at wall 25s", []player.Control{
			{Kind: player.CtlSeek, At: 25 * time.Second, Target: 0},
		}},
	}
	rows := make([][]string, 0, len(scenarios))
	for _, sc := range scenarios {
		res, err := player.RunSession(header, packets, ix, sc.controls)
		if err != nil {
			return nil, err
		}
		ordered := "yes"
		if !res.EventsInWallOrder() {
			ordered = "NO"
		}
		rows = append(rows, []string{
			sc.name,
			fmt.Sprintf("%d", len(res.Events)),
			fmt.Sprintf("%d", len(res.SlideFlips)),
			res.TotalPaused.String(),
			fmt.Sprintf("%d", res.Seeks),
			res.EndedAt.String(),
			ordered,
		})
	}
	text := render([]string{"scenario", "events", "flips", "paused", "seeks", "ended", "ordered"}, rows)
	return &Result{ID: "E13", Title: "Interactive playback controls (extension)", Text: text}, nil
}

// RunE14 exercises the extension experiment: composing a presentation from
// Allen temporal relations and scheduling it with OCPN.
func RunE14() (*Result, error) {
	s := time.Second
	segs := []media.Segment{
		{ID: "video", Kind: media.KindVideo, Duration: 30 * s},
		{ID: "audio", Kind: media.KindAudio, Duration: 30 * s},
		{ID: "slide1", Kind: media.KindImage, Duration: 10 * s},
		{ID: "slide2", Kind: media.KindImage, Duration: 10 * s},
		{ID: "slide3", Kind: media.KindImage, Duration: 10 * s},
		{ID: "caption", Kind: media.KindText, Duration: 4 * s},
	}
	constraints := []ocpn.Constraint{
		{Rel: ocpn.RelEquals, A: "video", B: "audio"},
		{Rel: ocpn.RelStarts, A: "slide1", B: "video"},
		{Rel: ocpn.RelMeets, A: "slide1", B: "slide2"},
		{Rel: ocpn.RelMeets, A: "slide2", B: "slide3"},
		{Rel: ocpn.RelDuring, A: "video", B: "caption", Offset: 13 * s},
	}
	p, err := ocpn.Compose("composed lecture", segs, constraints)
	if err != nil {
		return nil, err
	}
	model, err := ocpn.Build(ocpn.OCPN, p)
	if err != nil {
		return nil, err
	}
	rep, err := model.Simulate(ocpn.Scenario{})
	if err != nil {
		return nil, err
	}

	rows := make([][]string, 0, len(p.Segments))
	for _, seg := range p.Segments {
		rows = append(rows, []string{seg.ID, seg.Start.String(), seg.End().String()})
	}
	var b strings.Builder
	b.WriteString("constraints: audio equals video; slide1 starts video; slide1→slide2→slide3 meet; caption during video @13s\n")
	b.WriteString(render([]string{"segment", "start", "end"}, rows))
	fmt.Fprintf(&b, "OCPN schedule of the composed presentation: %d/%d segments on time\n",
		len(rep.Segments)-rep.MisScheduled, len(rep.Segments))
	return &Result{ID: "E14", Title: "Allen-relation composition (extension)", Text: b.String()}, nil
}

// RunE15 exercises the extension experiment: XOCPN-style call admission at
// the server. With capacity for N modem sessions, session N+1 is refused
// instead of degrading everyone.
func RunE15() (*Result, error) {
	cfg, err := stdLecture("modem-56k", 5*time.Second, 2)
	if err != nil {
		return nil, err
	}
	lec, err := capture.NewLecture(cfg)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{}, &buf); err != nil {
		return nil, err
	}
	header, _, _, err := asf.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, err
	}
	var rate int64
	for _, st := range header.Streams {
		rate += st.BitsPerSecond
	}

	rows := make([][]string, 0, 4)
	for _, capSessions := range []int{1, 2, 4, 8} {
		adm := streaming.NewAdmission(int64(capSessions) * rate)
		admitted := 0
		var tokens []string
		for i := 0; i < 10; i++ {
			token, err := adm.Reserve(rate)
			if err != nil {
				continue
			}
			admitted++
			tokens = append(tokens, token)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d sessions (%d kbps)", capSessions, int64(capSessions)*rate/1000),
			fmt.Sprintf("%d/10", admitted),
			fmt.Sprintf("%d", adm.Rejected()),
		})
		for _, tok := range tokens {
			adm.Release(tok)
		}
	}
	text := render([]string{"uplink capacity", "admitted", "rejected"}, rows)
	text += fmt.Sprintf("\nper-session QoS requirement: %d kbps (from stream properties)\n", rate/1000)
	return &Result{ID: "E15", Title: "Bandwidth admission control (extension)", Text: text}, nil
}

// RunE16 exercises the "dynamic presentations" differentiator (§1): the
// same published lecture is fitted to audiences with different time and
// bandwidth budgets — each audience watches a different presentation.
func RunE16() (*Result, error) {
	cfg, err := stdLecture("dsl-300k", 60*time.Second, 9)
	if err != nil {
		return nil, err
	}
	lec, err := capture.NewLecture(cfg)
	if err != nil {
		return nil, err
	}
	tree, err := publish.BuildContentTree(lec.Title, lec.Slides, lec.Duration, 0)
	if err != nil {
		return nil, err
	}
	audiences := []struct {
		name string
		aud  dynamic.Audience
	}{
		{"browsing (10 s, modem)", dynamic.Audience{AvailableTime: 10 * time.Second, BandwidthBps: 56_000}},
		{"revision (30 s, DSL)", dynamic.Audience{AvailableTime: 30 * time.Second, BandwidthBps: 768_000}},
		{"full course (unlimited, LAN)", dynamic.Audience{}},
	}
	rows := make([][]string, 0, len(audiences))
	for _, a := range audiences {
		plan, err := dynamic.PlanFor(tree, lec.Slides, lec.Duration, a.aud)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			a.name,
			fmt.Sprintf("%d", plan.Level),
			plan.Duration.String(),
			plan.Profile.Name,
			fmt.Sprintf("%d segments, %d controls", len(plan.SegmentIDs), len(plan.Controls)),
		})
	}
	text := render([]string{"audience", "level", "duration", "profile", "plan"}, rows)
	text += "\nsame stored lecture; each audience receives a different presentation\n"
	return &Result{ID: "E16", Title: "Dynamic presentations per audience (extension)", Text: text}, nil
}

package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment with default parameters.
type Runner func() (*Result, error)

// Registry maps experiment IDs to their runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"E1":  RunE1,
		"E2":  RunE2,
		"E3":  RunE3,
		"E4":  RunE4,
		"E5":  func() (*Result, error) { return RunE5("") },
		"E6":  RunE6,
		"E7":  RunE7,
		"E8":  RunE8,
		"E9":  RunE9,
		"E10": func() (*Result, error) { return RunE10(8) },
		"E11": func() (*Result, error) { return RunE11(500) },
		"E12": func() (*Result, error) { return RunE12(128) },
		"E13": RunE13,
		"E14": RunE14,
		"E15": RunE15,
		"E16": RunE16,
	}
}

// IDs returns the experiment IDs in numeric order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(ids[i], "E%d", &a)
		fmt.Sscanf(ids[j], "E%d", &b)
		return a < b
	})
	return ids
}

// RunAll executes every experiment in order.
func RunAll() ([]*Result, error) {
	var out []*Result
	reg := Registry()
	for _, id := range IDs() {
		res, err := reg[id]()
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", id, err)
		}
		out = append(out, res)
	}
	return out, nil
}

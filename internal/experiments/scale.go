package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"bytes"
	"math/rand"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/contenttree"
	"repro/internal/encoder"
	"repro/internal/session"
	"repro/internal/streaming"
	"repro/internal/vclock"
)

// RunE10 regenerates the floor-control experiment: n students contend for
// the floor on a virtual clock; the arbiter must grant fairly (FIFO), keep
// mutual exclusion, and match the Petri-net model.
func RunE10(users int) (*Result, error) {
	if users < 2 {
		users = 8
	}
	clk := vclock.NewVirtual()
	floor := session.NewFloor(clk)

	// Everyone requests at t=0; the floor rotates every 2 s.
	order := make([]string, 0, users)
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("student%02d", i)
		order = append(order, u)
		if _, err := floor.Request(u); err != nil {
			return nil, err
		}
	}
	var grantOrder []string
	for i := 0; i < users; i++ {
		holder := floor.Holder()
		grantOrder = append(grantOrder, holder)
		clk.Advance(2 * time.Second)
		if err := floor.Release(holder); err != nil {
			return nil, err
		}
	}
	// FIFO fairness: grant order equals request order.
	for i := range order {
		if grantOrder[i] != order[i] {
			return nil, fmt.Errorf("experiments: E10 fairness violated: %v vs %v", grantOrder, order)
		}
	}
	if err := floor.VerifyAgainstModel(); err != nil {
		return nil, fmt.Errorf("experiments: E10 model deviation: %w", err)
	}
	st := floor.Stats()
	var b strings.Builder
	fmt.Fprintf(&b, "users=%d grants=%d revocations=%d\n", users, st.Grants, st.Revocations)
	fmt.Fprintf(&b, "max wait=%v mean wait=%v\n", st.MaxWait, st.TotalWait/time.Duration(st.Grants))
	fmt.Fprintf(&b, "grant order FIFO-fair: yes; trace verified against Petri-net model: yes\n")
	return &Result{ID: "E10", Title: fmt.Sprintf("Floor control with %d users", users), Text: b.String()}, nil
}

// RunE11 regenerates the §2.2 Abstractor property: across random content
// trees, the presentation time is strictly monotone in the level ("the
// higher level gives the longer presentation").
func RunE11(trees int) (*Result, error) {
	if trees <= 0 {
		trees = 500
	}
	rng := rand.New(rand.NewSource(2002))
	checked, maxDepth := 0, 0
	for i := 0; i < trees; i++ {
		tree := contenttree.New()
		if err := tree.Attach("n0", time.Duration(1+rng.Intn(30))*time.Second, 0); err != nil {
			return nil, err
		}
		n := 1 + rng.Intn(40)
		for j := 1; j <= n; j++ {
			level := 1 + rng.Intn(tree.HighestLevel()+1)
			if err := tree.Attach(fmt.Sprintf("n%d", j), time.Duration(1+rng.Intn(30))*time.Second, level); err != nil {
				return nil, err
			}
		}
		lv := tree.LevelNodes()
		for q := 1; q < len(lv); q++ {
			if lv[q] <= lv[q-1] {
				return nil, fmt.Errorf("experiments: E11 monotonicity violated in tree %d: %v", i, lv)
			}
		}
		if d := tree.HighestLevel(); d > maxDepth {
			maxDepth = d
		}
		checked++
	}
	text := fmt.Sprintf("checked %d random trees (max depth %d): presentation time strictly increases with level\n",
		checked, maxDepth)
	return &Result{ID: "E11", Title: "Abstractor monotonicity property", Text: text}, nil
}

// E12Row is one scalability measurement.
type E12Row struct {
	Clients   int
	Packets   int64
	Delivered int64
	Dropped   int64
	Wall      time.Duration
}

// RunE12 regenerates the live-broadcast scalability experiment: one
// channel, 1→maxClients concurrent subscribers, all packets of a 10 s
// lecture fanned out; reports delivery and wall time per packet-delivery.
func RunE12(maxClients int) (*Result, error) {
	if maxClients <= 0 {
		maxClients = 128
	}
	p, err := codec.ByName("modem-56k")
	if err != nil {
		return nil, err
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "scale", Duration: 10 * time.Second, Profile: p, SlideCount: 2, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{Live: true}, &buf); err != nil {
		return nil, err
	}
	packets, header, err := decodeAll(buf.Bytes())
	if err != nil {
		return nil, err
	}

	var rows [][]string
	var data []E12Row
	for clients := 1; clients <= maxClients; clients *= 2 {
		row, err := FanOut(header, packets, clients)
		if err != nil {
			return nil, err
		}
		data = append(data, row)
		perDelivery := time.Duration(0)
		if row.Delivered > 0 {
			perDelivery = row.Wall / time.Duration(row.Delivered)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Clients),
			fmt.Sprintf("%d", row.Packets),
			fmt.Sprintf("%d", row.Delivered),
			fmt.Sprintf("%d", row.Dropped),
			row.Wall.Truncate(time.Microsecond).String(),
			perDelivery.Truncate(time.Nanosecond).String(),
		})
	}
	_ = data
	text := render([]string{"clients", "packets", "delivered", "dropped", "wall", "per delivery"}, rows)
	return &Result{ID: "E12", Title: "Live broadcast scalability (in-memory fan-out)", Text: text}, nil
}

func decodeAll(data []byte) ([]asf.Packet, asf.Header, error) {
	h, pkts, _, err := asf.ReadAll(bytes.NewReader(data))
	return pkts, h, err
}

// FanOut publishes all packets to a channel with the given number of
// actively draining subscribers and measures the wall time.
func FanOut(h asf.Header, packets []asf.Packet, clients int) (E12Row, error) {
	ch, err := streaming.NewChannel("scale", h)
	if err != nil {
		return E12Row{}, err
	}
	var delivered int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		sub, err := ch.Subscribe()
		if err != nil {
			return E12Row{}, err
		}
		wg.Add(1)
		go func(s *streaming.Subscriber) {
			defer wg.Done()
			defer s.Close()
			count := int64(len(s.Backlog))
			for range s.C {
				count++
			}
			mu.Lock()
			delivered += count
			mu.Unlock()
		}(sub)
	}
	start := time.Now()
	for _, p := range packets {
		if err := ch.Publish(p); err != nil {
			return E12Row{}, err
		}
	}
	ch.Close()
	wg.Wait()
	wall := time.Since(start)
	return E12Row{
		Clients:   clients,
		Packets:   int64(len(packets)),
		Delivered: delivered,
		Dropped:   ch.Dropped(),
		Wall:      wall,
	}, nil
}

package relay

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/vclock"
)

// ringNodes builds bare nodes for direct ring tests.
func ringNodes(n int) []*regNode {
	out := make([]*regNode, n)
	for i := range out {
		out[i] = &regNode{info: NodeInfo{ID: fmt.Sprintf("edge-%d", i+1)}}
	}
	return out
}

// assetCorpus is a fixed, seeded corpus of stream paths — the keys the
// rebalance and balance properties are stated over.
func assetCorpus(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("/vod/lec-%d-%d", i, rng.Intn(1<<20))
	}
	return out
}

// TestRingDistributionBalance states and checks the ring's balance
// bound: with ringVnodes virtual nodes per edge, every edge's share of
// a large key corpus stays within the stated multiple of the ideal
// 1/n share. Table-driven and seeded, so a hash or vnode-count change
// that skews the ring fails loudly with the observed shares.
func TestRingDistributionBalance(t *testing.T) {
	cases := []struct {
		edges    int
		keys     int
		min, max float64 // acceptable share as a multiple of ideal 1/n
	}{
		{edges: 16, keys: 10000, min: 0.55, max: 1.45},
		{edges: 64, keys: 20000, min: 0.45, max: 1.65},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%dedges", tc.edges), func(t *testing.T) {
			ring := buildRing(ringNodes(tc.edges))
			counts := make(map[string]int)
			for _, key := range assetCorpus(tc.keys, 42) {
				n := ring.pick(key)
				if n == nil {
					t.Fatal("pick returned nil on a populated ring")
				}
				counts[n.info.ID]++
			}
			if len(counts) != tc.edges {
				t.Fatalf("only %d/%d edges own any keys", len(counts), tc.edges)
			}
			ideal := float64(tc.keys) / float64(tc.edges)
			for id, c := range counts {
				share := float64(c) / ideal
				if share < tc.min || share > tc.max {
					t.Errorf("%s owns %d keys (%.2f× ideal), want within [%.2f, %.2f]×",
						id, c, share, tc.min, tc.max)
				}
			}
		})
	}
}

// TestRingRebalanceStability checks the consistent-hashing contract on
// a fixed corpus: adding one edge to n remaps roughly 1/(n+1) of the
// keys and every remapped key lands on the newcomer; removing one edge
// remaps exactly the removed edge's keys and nothing else.
func TestRingRebalanceStability(t *testing.T) {
	for _, edges := range []int{16, 64} {
		t.Run(fmt.Sprintf("%dedges", edges), func(t *testing.T) {
			corpus := assetCorpus(10000, 7)
			nodes := ringNodes(edges + 1)
			base := buildRing(nodes[:edges])

			// Add one edge: only ~1/(n+1) of the corpus moves, all of it
			// to the new node.
			grown := buildRing(nodes)
			moved := 0
			for _, key := range corpus {
				was, is := base.pick(key), grown.pick(key)
				if was == is {
					continue
				}
				moved++
				if is != nodes[edges] {
					t.Fatalf("key %q moved from %s to %s, not to the new edge",
						key, was.info.ID, is.info.ID)
				}
			}
			ideal := float64(len(corpus)) / float64(edges+1)
			if f := float64(moved); f < 0.4*ideal || f > 2.0*ideal {
				t.Errorf("adding an edge moved %d keys, want ~%.0f (0.4×–2.0×)", moved, ideal)
			}

			// Remove one edge: keys owned by survivors must not move.
			removed := nodes[0]
			shrunk := buildRing(nodes[1 : edges+1])
			orphans := 0
			for _, key := range corpus {
				was := grown.pick(key)
				if was == removed {
					orphans++
					continue
				}
				if is := shrunk.pick(key); is != was {
					t.Fatalf("key %q owned by %s moved to %s when %s was removed",
						key, was.info.ID, is.info.ID, removed.info.ID)
				}
			}
			if orphans == 0 {
				t.Error("removed edge owned no keys; the removal property was vacuous")
			}
		})
	}
}

// TestRingEmptyAndSingle covers the degenerate rings.
func TestRingEmptyAndSingle(t *testing.T) {
	if n := buildRing(nil).pick("/vod/x"); n != nil {
		t.Fatalf("empty ring picked %v", n.info)
	}
	one := ringNodes(1)
	ring := buildRing(one)
	for _, key := range assetCorpus(100, 3) {
		if n := ring.pick(key); n != one[0] {
			t.Fatalf("single-node ring picked %v", n)
		}
	}
}

// TestPickForKeyAffinity is the registry-level contract: the same
// stream path keeps landing on the same edge while it lives, falls
// back to a live node when its edge dies, and snaps back once the edge
// revives — the behaviour that concentrates each asset's mirror on one
// edge without giving up failover.
func TestPickForKeyAffinity(t *testing.T) {
	g := NewRegistry(nil)
	for i := 1; i <= 4; i++ {
		if err := g.Register(NodeInfo{ID: fmt.Sprintf("e%d", i), URL: fmt.Sprintf("http://edge-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}

	const key = "/vod/lec-0"
	first, err := g.PickFor(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, err := g.PickFor(key)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != first.ID {
			t.Fatalf("pick %d for %s = %s, want stable %s", i, key, got.ID, first.ID)
		}
	}

	// Different keys spread: 64 keys over 4 edges must not all map to one.
	targets := make(map[string]bool)
	for i := 0; i < 64; i++ {
		got, err := g.PickFor(fmt.Sprintf("/vod/lec-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		targets[got.ID] = true
	}
	if len(targets) < 2 {
		t.Fatalf("64 keys all landed on %v", targets)
	}

	// The preferred edge dies: the key falls back to a live node.
	if !g.ReportFailure(first.ID) {
		t.Fatalf("failure report for %s ignored", first.ID)
	}
	fallback, err := g.PickFor(key)
	if err != nil {
		t.Fatal(err)
	}
	if fallback.ID == first.ID {
		t.Fatalf("dead edge %s still picked", first.ID)
	}
	// Excluding the fallback too picks yet another node.
	third, err := g.PickFor(key, fallback.ID)
	if err != nil {
		t.Fatal(err)
	}
	if third.ID == first.ID || third.ID == fallback.ID {
		t.Fatalf("exclude ignored: got %s", third.ID)
	}

	// Revival restores the affinity.
	if err := g.Heartbeat(first.ID, NodeStats{}); err != nil {
		t.Fatal(err)
	}
	got, err := g.PickFor(key)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != first.ID {
		t.Fatalf("after revival pick = %s, want %s", got.ID, first.ID)
	}
}

// TestPickForExpiredPreferredFallsBack: a preferred node whose
// heartbeats stopped (TTL expiry, no death mark — the passive signal)
// must not be handed to clients just because it is still on the ring.
func TestPickForExpiredPreferredFallsBack(t *testing.T) {
	clk := vclock.NewVirtual()
	g := NewRegistry(clk)
	for i := 1; i <= 4; i++ {
		if err := g.Register(NodeInfo{ID: fmt.Sprintf("e%d", i), URL: fmt.Sprintf("http://edge-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	const key = "/vod/lec-0"
	preferred, err := g.PickFor(key)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(DefaultNodeTTL + time.Second)
	// Everyone but the preferred node heartbeats back to life.
	for i := 1; i <= 4; i++ {
		if id := fmt.Sprintf("e%d", i); id != preferred.ID {
			if err := g.Heartbeat(id, NodeStats{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := g.PickFor(key)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID == preferred.ID {
		t.Fatalf("TTL-expired preferred node %s still picked", preferred.ID)
	}
}

// TestPickForAllocFree is the allocation regression gate on the
// redirect hot path: a keyed pick with a populated exclude list must
// not allocate — the exclude resolution rides the byRef index and a
// stack buffer, and the ring lookup is a binary search over an
// immutable array.
func TestPickForAllocFree(t *testing.T) {
	g := NewRegistry(nil)
	for i := 1; i <= 16; i++ {
		if err := g.Register(NodeInfo{ID: fmt.Sprintf("e%d", i), URL: fmt.Sprintf("http://edge-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	exclude := []string{"edge-3", "e7"}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := g.PickFor("/vod/lec-5", exclude...); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PickFor allocates %.1f per op, want 0", allocs)
	}
}

// TestRegistryRingChurnRace hammers the ring swap: concurrent picks,
// heartbeats, kills, drains, and re-registrations must never tear the
// ring or trip the race detector (`make race` runs this under -race).
func TestRegistryRingChurnRace(t *testing.T) {
	g := NewRegistry(nil)
	const nodes = 8
	ids := make([]string, nodes)
	for i := range ids {
		ids[i] = fmt.Sprintf("e%d", i+1)
		if err := g.Register(NodeInfo{ID: ids[i], URL: fmt.Sprintf("http://edge-%d", i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("/vod/lec-%d", rng.Intn(64))
				if rng.Intn(4) == 0 {
					_, _ = g.PickFor(key, ids[rng.Intn(nodes)])
				} else {
					_, _ = g.PickFor(key)
				}
			}
		}(int64(w))
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < 300; i++ {
				id := ids[rng.Intn(nodes)]
				switch rng.Intn(4) {
				case 0:
					g.ReportFailure(id)
				case 1:
					_ = g.Heartbeat(id, NodeStats{ActiveClients: int64(rng.Intn(50))})
				case 2:
					g.Deregister(id)
				default:
					_ = g.Register(NodeInfo{ID: id, URL: "http://edge-" + id})
				}
			}
		}(int64(w))
	}
	wg.Wait()
	// The structures stay consistent after the storm: revive everyone
	// and every node must be pickable again.
	for _, id := range ids {
		if err := g.Register(NodeInfo{ID: id, URL: "http://" + id + ".lod"}); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[string]bool)
	for i := 0; i < 512; i++ {
		n, err := g.PickFor(fmt.Sprintf("/vod/lec-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		seen[n.ID] = true
	}
	if len(seen) < 2 {
		t.Fatalf("after churn only %v take traffic", seen)
	}
}

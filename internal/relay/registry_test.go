package relay

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/streaming"
	"repro/internal/testutil"
	"repro/internal/vclock"
)

func TestRegistryRegisterValidation(t *testing.T) {
	g := NewRegistry(nil)
	if err := g.Register(NodeInfo{ID: "", URL: "http://a"}); err == nil {
		t.Fatal("empty id accepted")
	}
	for _, bad := range []string{"", "no-scheme", ":8080", "http://"} {
		if err := g.Register(NodeInfo{ID: "n1", URL: bad}); err == nil {
			t.Fatalf("bad URL %q accepted", bad)
		}
	}
	if err := g.Register(NodeInfo{ID: "n1", URL: "http://edge1:8081"}); err != nil {
		t.Fatal(err)
	}
	// Re-registration updates the URL in place.
	if err := g.Register(NodeInfo{ID: "n1", URL: "http://edge1:9999"}); err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	if len(nodes) != 1 || nodes[0].URL != "http://edge1:9999" {
		t.Fatalf("nodes = %+v", nodes)
	}
}

func TestRegistryHeartbeatUnknownNode(t *testing.T) {
	g := NewRegistry(nil)
	if err := g.Heartbeat("ghost", NodeStats{}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("heartbeat unknown = %v", err)
	}
}

func TestRegistryPickLeastLoaded(t *testing.T) {
	g := NewRegistry(nil)
	if _, err := g.Pick(); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("pick on empty registry = %v", err)
	}
	for _, n := range []NodeInfo{
		{ID: "a", URL: "http://edge-a"},
		{ID: "b", URL: "http://edge-b"},
	} {
		if err := g.Register(n); err != nil {
			t.Fatal(err)
		}
	}
	// Equal load: ties break on ID, and each pick counts as an
	// assignment, so consecutive picks alternate.
	first, err := g.Pick()
	if err != nil {
		t.Fatal(err)
	}
	if first.ID != "a" {
		t.Fatalf("first pick = %q, want tie-break on a", first.ID)
	}
	second, err := g.Pick()
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != "b" {
		t.Fatalf("second pick = %q, want b (a has a pending assignment)", second.ID)
	}

	// A heartbeat resets assignments and reports real load: loaded node b
	// loses to idle node a.
	if err := g.Heartbeat("a", NodeStats{ActiveClients: 0}); err != nil {
		t.Fatal(err)
	}
	if err := g.Heartbeat("b", NodeStats{ActiveClients: 7}); err != nil {
		t.Fatal(err)
	}
	got, err := g.Pick()
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "a" {
		t.Fatalf("pick = %q, want idle node a", got.ID)
	}
}

func TestRegistryCapacityFractionBreaksTies(t *testing.T) {
	g := NewRegistry(nil)
	for _, n := range []NodeInfo{
		{ID: "near-full", URL: "http://edge-a"},
		{ID: "roomy", URL: "http://edge-b"},
	} {
		if err := g.Register(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Heartbeat("near-full", NodeStats{ActiveClients: 1, ReservedBps: 900, CapacityBps: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := g.Heartbeat("roomy", NodeStats{ActiveClients: 1, ReservedBps: 100, CapacityBps: 1000}); err != nil {
		t.Fatal(err)
	}
	got, err := g.Pick()
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "roomy" {
		t.Fatalf("pick = %q, want the node with admission headroom", got.ID)
	}
}

func TestRegistryPrefersBytesInFlight(t *testing.T) {
	g := NewRegistry(nil)
	for _, n := range []NodeInfo{
		{ID: "busy", URL: "http://edge-a"},
		{ID: "light", URL: "http://edge-b"},
	} {
		if err := g.Register(n); err != nil {
			t.Fatal(err)
		}
	}
	// "busy" serves fewer sessions but far more bandwidth: one rich DSL
	// stream outweighs three modem streams, so bandwidth decides.
	if err := g.Heartbeat("busy", NodeStats{ActiveClients: 1, InFlightBps: 3_000_000}); err != nil {
		t.Fatal(err)
	}
	if err := g.Heartbeat("light", NodeStats{ActiveClients: 3, InFlightBps: 168_000}); err != nil {
		t.Fatal(err)
	}
	got, err := g.Pick()
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "light" {
		t.Fatalf("pick = %q, want the node with less bandwidth in flight", got.ID)
	}
}

func TestRegistryMetrics(t *testing.T) {
	clk := vclock.NewVirtual()
	g := NewRegistry(clk)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	// No live edge: the lost redirect is counted.
	resp, err := http.Get(ts.URL + "/vod/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := g.Register(NodeInfo{ID: "e1", URL: "http://edge-1"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(3 * time.Second)
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err = noFollow.Get(ts.URL + "/vod/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	status := g.Metrics().Status()
	if status["lod_registry_no_edge_total"] != 1 {
		t.Fatalf("no-edge counter = %v", status["lod_registry_no_edge_total"])
	}
	if status["lod_registry_redirects_total"] != 1 {
		t.Fatalf("redirects = %v", status["lod_registry_redirects_total"])
	}
	if status[`lod_registry_node_redirects_total{node="e1"}`] != 1 {
		t.Fatalf("per-node redirects = %v", status)
	}
	if status["lod_registry_nodes_alive"] != 1 {
		t.Fatalf("alive gauge = %v", status["lod_registry_nodes_alive"])
	}
	if got := status[`lod_registry_heartbeat_age_seconds{node="e1"}`]; got != 3 {
		t.Fatalf("heartbeat age = %v, want 3 (virtual seconds)", got)
	}
}

// TestRegistryRegisterScrapeNoDeadlock hammers (re-)registration and
// picks against concurrent metric scrapes. Register must create its
// metric series outside the node lock: scrapes hold the metric
// registry's lock while their gauge functions take the node lock, so
// the reverse order deadlocks (this test then times out).
func TestRegistryRegisterScrapeNoDeadlock(t *testing.T) {
	g := NewRegistry(nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := g.Register(NodeInfo{ID: fmt.Sprintf("n%d", i%8), URL: "http://edge"}); err != nil {
					t.Error(err)
					return
				}
				_, _ = g.Pick()
			}
		}()
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = g.Metrics().WritePrometheus(io.Discard)
				_ = g.Metrics().Status()
			}
		}()
	}
	wg.Wait()
}

func TestRegistryTTLExpiresSilentNodes(t *testing.T) {
	clk := vclock.NewVirtual()
	g := NewRegistry(clk)
	if err := g.Register(NodeInfo{ID: "a", URL: "http://edge-a"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(DefaultNodeTTL + time.Second)
	if _, err := g.Pick(); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("pick after TTL = %v, want ErrNoNodes", err)
	}
	// A heartbeat revives the node.
	if err := g.Heartbeat("a", NodeStats{}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Pick(); err != nil {
		t.Fatalf("pick after heartbeat = %v", err)
	}
}

func TestRegistryHTTPRoundTrip(t *testing.T) {
	g := NewRegistry(nil)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	// Register and heartbeat through the client helpers.
	if err := RegisterWith(nil, ts.URL, NodeInfo{ID: "e1", URL: "http://edge1:8081"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Heartbeat(nil, ts.URL, "e1", NodeStats{ActiveClients: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Heartbeat(nil, ts.URL, "nope", NodeStats{}); err == nil {
		t.Fatal("heartbeat for unregistered node accepted")
	}

	// Node listing reflects the heartbeat.
	resp, err := http.Get(ts.URL + "/registry/nodes")
	if err != nil {
		t.Fatal(err)
	}
	var nodes []NodeStatus
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(nodes) != 1 || nodes[0].Stats.ActiveClients != 2 || !nodes[0].Alive {
		t.Fatalf("nodes = %+v", nodes)
	}

	// Redirects preserve path and query and do not follow.
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err = noFollow.Get(ts.URL + "/vod/lecture1?start=30s")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("redirect status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "http://edge1:8081/vod/lecture1?start=30s" {
		t.Fatalf("Location = %q", loc)
	}

	// Percent-encoded names survive the redirect untouched.
	resp, err = noFollow.Get(ts.URL + "/vod/week%2F1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if loc := resp.Header.Get("Location"); loc != "http://edge1:8081/vod/week%2F1" {
		t.Fatalf("escaped Location = %q", loc)
	}

	// GET on the mutation endpoints is rejected.
	for _, path := range []string{"/registry/register", "/registry/heartbeat"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s status = %d", path, resp.StatusCode)
		}
	}
}

// TestHeartbeatsSurviveRegistryRestart: an edge whose registry restarts
// (losing its node table) must notice the 404 and re-register, or the
// cluster would route around a healthy edge forever.
func TestHeartbeatsSurviveRegistryRestart(t *testing.T) {
	var cur atomic.Pointer[Registry]
	cur.Store(NewRegistry(nil))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur.Load().Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- RunHeartbeats(ctx, nil, ts.URL, NodeInfo{ID: "e1", URL: "http://edge1:8081"},
			func() NodeStats { return NodeStats{} }, 2*time.Millisecond, nil)
	}()

	waitRegistered := func(g *Registry) {
		t.Helper()
		testutil.WaitUntil(t, 10*time.Second, func() bool {
			nodes := g.Nodes()
			return len(nodes) == 1 && nodes[0].ID == "e1"
		}, "node never (re)registered")
	}
	waitRegistered(cur.Load())

	// Registry "restart": a fresh instance with an empty node table.
	fresh := NewRegistry(nil)
	cur.Store(fresh)
	waitRegistered(fresh)

	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("RunHeartbeats returned %v", err)
	}
}

func TestSnapshotStats(t *testing.T) {
	srv := streaming.NewServer(nil)
	srv.Admission = streaming.NewAdmission(1_000_000)
	token, err := srv.Admission.Reserve(300_000)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Admission.Release(token)
	st := SnapshotStats(srv)
	if st.ReservedBps != 300_000 || st.CapacityBps != 1_000_000 {
		t.Fatalf("snapshot = %+v", st)
	}
	if got := st.Load(); got != 0.3 {
		t.Fatalf("Load() = %v, want 0.3", got)
	}
	if !strings.Contains(ErrNoNodes.Error(), "relay") {
		t.Fatal("error missing package prefix")
	}
}

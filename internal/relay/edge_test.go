package relay

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/encoder"
	"repro/internal/streaming"
	"repro/internal/testutil"
)

func encodeTestLecture(t *testing.T, dur time.Duration, live bool) []byte {
	t.Helper()
	p, err := codec.ByName("modem-56k")
	if err != nil {
		t.Fatal(err)
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "relay test", Duration: dur, Profile: p, SlideCount: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{Live: live}, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newOriginWithAsset builds an origin server holding one stored asset and
// returns it with its test listener.
func newOriginWithAsset(t *testing.T, name string) (*streaming.Server, *httptest.Server) {
	t.Helper()
	origin := streaming.NewServer(nil)
	origin.Pacing = false
	data := encodeTestLecture(t, 2*time.Second, false)
	if _, err := origin.RegisterAsset(name, asf.NewReader(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(origin.Handler())
	t.Cleanup(ts.Close)
	return origin, ts
}

func readStream(t *testing.T, url string) (asf.Header, []asf.Packet) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	r := asf.NewReader(resp.Body)
	h, err := r.ReadHeader()
	if err != nil {
		t.Fatal(err)
	}
	var pkts []asf.Packet
	for {
		p, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p)
	}
	return h, pkts
}

func TestEdgeMirrorsAssetOnDemand(t *testing.T) {
	origin, originTS := newOriginWithAsset(t, "lec")
	edgeSrv := streaming.NewServer(nil)
	edgeSrv.Pacing = false
	edge := NewEdge(originTS.URL, edgeSrv)
	edgeTS := httptest.NewServer(edge.Handler())
	defer edgeTS.Close()

	_, direct := readStream(t, originTS.URL+"/vod/lec")
	hdr, mirrored := readStream(t, edgeTS.URL+"/vod/lec")
	if len(mirrored) != len(direct) {
		t.Fatalf("edge served %d packets, origin %d", len(mirrored), len(direct))
	}
	if hdr.Title != "relay test" {
		t.Fatalf("edge header title = %q", hdr.Title)
	}
	if _, ok := edgeSrv.Asset("lec"); !ok {
		t.Fatal("asset not cached on the edge")
	}

	// The second demand is served from the edge cache: no new origin fetch.
	if got := origin.Stats().MirrorFetches; got != 1 {
		t.Fatalf("origin mirror fetches = %d, want 1", got)
	}
	if _, again := readStream(t, edgeTS.URL+"/vod/lec"); len(again) != len(direct) {
		t.Fatal("cached replay differs")
	}
	if got := origin.Stats().MirrorFetches; got != 1 {
		t.Fatalf("origin mirror fetches after cached replay = %d, want 1", got)
	}

	// Seeks work against the mirrored index.
	_, seeked := readStream(t, edgeTS.URL+"/vod/lec?start=1s")
	if len(seeked) == 0 || len(seeked) >= len(direct) {
		t.Fatalf("seeked mirror served %d packets, full %d", len(seeked), len(direct))
	}

	// Unknown assets are the client's 404, not a relay error.
	resp, err := http.Get(edgeTS.URL + "/vod/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown asset status = %d, want 404", resp.StatusCode)
	}
}

func TestEdgeConcurrentDemandsShareOneFetch(t *testing.T) {
	origin, originTS := newOriginWithAsset(t, "lec")
	edgeSrv := streaming.NewServer(nil)
	edgeSrv.Pacing = false
	edge := NewEdge(originTS.URL, edgeSrv)

	const demands = 8
	var wg sync.WaitGroup
	errs := make([]error, demands)
	for i := 0; i < demands; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = edge.MirrorAsset("lec")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("demand %d: %v", i, err)
		}
	}
	if got := origin.Stats().MirrorFetches; got != 1 {
		t.Fatalf("origin mirror fetches = %d, want 1 (singleflight)", got)
	}
}

func TestEdgeMirrorsRateGroup(t *testing.T) {
	origin := streaming.NewServer(nil)
	origin.Pacing = false
	leanData := encodeTestLecture(t, 2*time.Second, false)
	lean, err := origin.RegisterAsset("lean", asf.NewReader(bytes.NewReader(leanData)))
	if err != nil {
		t.Fatal(err)
	}
	richData := encodeRichLecture(t, 2*time.Second)
	rich, err := origin.RegisterAsset("rich", asf.NewReader(bytes.NewReader(richData)))
	if err != nil {
		t.Fatal(err)
	}
	group, err := origin.CreateRateGroup("lecture")
	if err != nil {
		t.Fatal(err)
	}
	group.AddVariant(lean)
	group.AddVariant(rich)
	originTS := httptest.NewServer(origin.Handler())
	defer originTS.Close()

	edgeSrv := streaming.NewServer(nil)
	edgeSrv.Pacing = false
	edge := NewEdge(originTS.URL, edgeSrv)
	edgeTS := httptest.NewServer(edge.Handler())
	defer edgeTS.Close()

	// Low bandwidth gets the lean variant, high bandwidth the rich one —
	// through the edge, which mirrors the whole group on first demand.
	_, leanPkts := readStream(t, edgeTS.URL+"/group/lecture?bw=60000")
	_, richPkts := readStream(t, edgeTS.URL+"/group/lecture?bw=5000000")
	leanBytes, richBytes := 0, 0
	for _, p := range leanPkts {
		leanBytes += len(p.Payload)
	}
	for _, p := range richPkts {
		richBytes += len(p.Payload)
	}
	if leanBytes >= richBytes {
		t.Fatalf("edge rate selection broken: lean %d bytes, rich %d bytes", leanBytes, richBytes)
	}
	if _, ok := edgeSrv.Asset("lean"); !ok {
		t.Fatal("lean variant not mirrored")
	}
	if _, ok := edgeSrv.Asset("rich"); !ok {
		t.Fatal("rich variant not mirrored")
	}
	if got := origin.Stats().MirrorFetches; got != 2 {
		t.Fatalf("origin mirror fetches = %d, want one per variant", got)
	}

	// Unknown groups are 404.
	resp, err := http.Get(edgeTS.URL + "/group/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown group status = %d, want 404", resp.StatusCode)
	}
}

func encodeRichLecture(t *testing.T, dur time.Duration) []byte {
	t.Helper()
	p, err := codec.ByName("dsl-300k")
	if err != nil {
		t.Fatal(err)
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "relay test rich", Duration: dur, Profile: p, SlideCount: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{}, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEdgeMirrorOriginDown(t *testing.T) {
	_, originTS := newOriginWithAsset(t, "lec")
	originTS.Close()
	edge := NewEdge(originTS.URL, nil)
	err := edge.MirrorAsset("lec")
	if err == nil {
		t.Fatal("mirror from dead origin succeeded")
	}
	if errors.Is(err, streaming.ErrNotFound) {
		t.Fatalf("dead origin misreported as not-found: %v", err)
	}
}

func TestEdgeRelaysLiveChannel(t *testing.T) {
	data := encodeTestLecture(t, 2*time.Second, true)
	h, packets, _, err := asf.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	origin := streaming.NewServer(nil)
	originCh, err := origin.CreateChannel("lecture", h)
	if err != nil {
		t.Fatal(err)
	}
	originTS := httptest.NewServer(origin.Handler())
	defer originTS.Close()

	edgeSrv := streaming.NewServer(nil)
	edge := NewEdge(originTS.URL, edgeSrv)
	edgeTS := httptest.NewServer(edge.Handler())
	defer edgeTS.Close()

	// A client joining through the edge triggers the origin subscription.
	type result struct {
		pkts []asf.Packet
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get(edgeTS.URL + "/live/lecture")
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		r := asf.NewReader(resp.Body)
		if _, err := r.ReadHeader(); err != nil {
			resc <- result{err: err}
			return
		}
		var pkts []asf.Packet
		for {
			p, err := r.ReadPacket()
			if err != nil {
				resc <- result{pkts: pkts}
				return
			}
			pkts = append(pkts, p)
		}
	}()

	// Wait for the relay chain to attach: the edge subscribes upstream,
	// the client subscribes to the edge.
	testutil.WaitUntil(t, 10*time.Second, func() bool { return originCh.ClientCount() >= 1 },
		"edge never subscribed upstream")
	var edgeCh *streaming.Channel
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		ch, ok := edgeSrv.Channel("lecture")
		edgeCh = ch
		return ok
	}, "edge never created the relayed channel")
	testutil.WaitUntil(t, 10*time.Second, func() bool { return edgeCh.ClientCount() >= 1 },
		"client never attached to the relayed channel")
	if originCh.ClientCount() != 1 {
		t.Fatalf("origin has %d subscribers, want exactly the edge", originCh.ClientCount())
	}

	for _, p := range packets {
		if err := originCh.Publish(p); err != nil {
			t.Fatal(err)
		}
	}
	originCh.Close()

	res := <-resc
	if res.err != nil {
		t.Fatal(res.err)
	}
	if len(res.pkts) != len(packets) {
		t.Fatalf("client received %d packets, published %d", len(res.pkts), len(packets))
	}
	// The origin's broadcast end propagates: the edge channel closes too.
	testutil.WaitUntil(t, 10*time.Second, edgeCh.Closed,
		"edge channel still open after origin close")

	// A late join on a finished relayed broadcast is 410, as on the origin.
	resp, err := http.Get(edgeTS.URL + "/live/lecture")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("late join status = %d, want 410", resp.StatusCode)
	}

	// Unknown channels are 404.
	resp, err = http.Get(edgeTS.URL + "/live/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown channel status = %d, want 404", resp.StatusCode)
	}
}

// TestEdgeMirrorsEscapedAssetName guards the pull-URL escaping bugfix:
// an asset whose name needs percent-encoding ("lecture 1%", names with
// ?/#) must survive the full registry→edge→origin chain. Before the
// fix the edge built its origin fetch URL from the decoded path, so the
// origin saw a mangled name and the mirror 404ed or fetched the wrong
// asset.
func TestEdgeMirrorsEscapedAssetName(t *testing.T) {
	const name = "lecture 1% ?#&"
	origin, originTS := newOriginWithAsset(t, name)
	edgeSrv := streaming.NewServer(nil)
	edgeSrv.Pacing = false
	edge := NewEdge(originTS.URL, edgeSrv)
	edgeTS := httptest.NewServer(edge.Handler())
	defer edgeTS.Close()

	g := NewRegistry(nil)
	if err := g.Register(NodeInfo{ID: "e1", URL: edgeTS.URL}); err != nil {
		t.Fatal(err)
	}
	regTS := httptest.NewServer(g.Handler())
	defer regTS.Close()

	// Through the registry: the 307 preserves the escaped path, the edge
	// decodes it, and the edge's origin pull re-escapes it.
	_, direct := readStream(t, originTS.URL+"/vod/"+url.PathEscape(name))
	hdr, mirrored := readStream(t, regTS.URL+"/vod/"+url.PathEscape(name))
	if len(mirrored) == 0 || len(mirrored) != len(direct) {
		t.Fatalf("mirrored %d packets through registry+edge, origin serves %d", len(mirrored), len(direct))
	}
	if hdr.Title != "relay test" {
		t.Fatalf("mirrored header title = %q", hdr.Title)
	}
	if _, ok := edgeSrv.Asset(name); !ok {
		t.Fatalf("edge cached under wrong name: have %v", edgeSrv.AssetNames())
	}
	if got := origin.Stats().MirrorFetches; got != 1 {
		t.Fatalf("origin mirror fetches = %d, want 1", got)
	}
}

// TestEdgeRelaysEscapedChannelName is the live half of the escaping
// fix: the edge's upstream /live subscription URL must re-escape the
// channel name.
func TestEdgeRelaysEscapedChannelName(t *testing.T) {
	const name = "aula magna 100%"
	data := encodeTestLecture(t, time.Second, true)
	h, packets, _, err := asf.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	origin := streaming.NewServer(nil)
	originCh, err := origin.CreateChannel(name, h)
	if err != nil {
		t.Fatal(err)
	}
	originTS := httptest.NewServer(origin.Handler())
	defer originTS.Close()

	edgeSrv := streaming.NewServer(nil)
	edge := NewEdge(originTS.URL, edgeSrv)
	edgeTS := httptest.NewServer(edge.Handler())
	defer edgeTS.Close()

	resc := make(chan error, 1)
	go func() {
		resp, err := http.Get(edgeTS.URL + "/live/" + url.PathEscape(name))
		if err != nil {
			resc <- err
			return
		}
		defer resp.Body.Close()
		r := asf.NewReader(resp.Body)
		if _, err := r.ReadHeader(); err != nil {
			resc <- err
			return
		}
		for {
			if _, err := r.ReadPacket(); err != nil {
				resc <- nil
				return
			}
		}
	}()

	// Wait for the whole relay chain to attach, as the unescaped live
	// test does: edge subscribed upstream, local channel created under
	// the decoded name, client subscribed to it.
	testutil.WaitUntil(t, 10*time.Second, func() bool { return originCh.ClientCount() >= 1 },
		"edge never subscribed upstream with the escaped name")
	var edgeCh *streaming.Channel
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		ch, ok := edgeSrv.Channel(name)
		edgeCh = ch
		return ok
	}, "edge relayed channel never appeared under the decoded name")
	testutil.WaitUntil(t, 10*time.Second, func() bool { return edgeCh.ClientCount() >= 1 },
		"client never attached to the relayed channel")
	for _, p := range packets {
		if err := originCh.Publish(p); err != nil {
			t.Fatal(err)
		}
	}
	originCh.Close()
	if err := <-resc; err != nil {
		t.Fatal(err)
	}
}

package relay

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/streaming"
	"repro/internal/testutil"
)

func mustRegister(t *testing.T, g *Registry, nodes ...NodeInfo) {
	t.Helper()
	for _, n := range nodes {
		if err := g.Register(n); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegistryReportFailureKillsNodeImmediately(t *testing.T) {
	g := NewRegistry(nil)
	mustRegister(t, g,
		NodeInfo{ID: "a", URL: "http://edge-a:8081"},
		NodeInfo{ID: "b", URL: "http://edge-b:8081"})

	// Reported by URL host — the only name a redirected client holds.
	if !g.ReportFailure("edge-a:8081") {
		t.Fatal("live node not killed by report")
	}
	if g.ReportFailure("edge-a:8081") {
		t.Fatal("second report of the same corpse claims a fresh kill")
	}
	if g.ReportFailure("ghost") {
		t.Fatal("unknown node reported killed")
	}
	for i := 0; i < 4; i++ {
		n, err := g.Pick()
		if err != nil {
			t.Fatal(err)
		}
		if n.ID == "a" {
			t.Fatal("Pick returned a node reported dead")
		}
	}
	for _, n := range g.Nodes() {
		if n.ID == "a" && (n.Alive || !n.Dead) {
			t.Fatalf("reported node status = %+v, want dead", n)
		}
	}

	// A heartbeat revives it: the node is demonstrably back.
	if err := g.Heartbeat("a", NodeStats{}); err != nil {
		t.Fatal(err)
	}
	if err := g.Heartbeat("b", NodeStats{ActiveClients: 50}); err != nil {
		t.Fatal(err)
	}
	n, err := g.Pick()
	if err != nil {
		t.Fatal(err)
	}
	if n.ID != "a" {
		t.Fatalf("revived idle node not picked, got %s", n.ID)
	}
}

func TestRegistryDeregisterMarksNodeDraining(t *testing.T) {
	g := NewRegistry(nil)
	mustRegister(t, g, NodeInfo{ID: "a", URL: "http://edge-a:8081"})
	if !g.Deregister("a") {
		t.Fatal("known node not deregistered")
	}
	if g.Deregister("a") {
		t.Fatal("second deregister reported a state change")
	}
	if _, err := g.Pick(); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("pick after deregister = %v, want ErrNoNodes", err)
	}
	// The node stays listed so operators can watch the shutdown, with
	// health "draining" and no redirect eligibility.
	nodes := g.Nodes()
	if len(nodes) != 1 || nodes[0].Health != proto.HealthDraining || nodes[0].Alive {
		t.Fatalf("nodes after deregister = %+v, want one draining entry", nodes)
	}
	// A stray heartbeat racing the shutdown must not resurrect it...
	if err := g.Heartbeat("a", NodeStats{}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Pick(); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("pick after draining heartbeat = %v, want ErrNoNodes", err)
	}
	// ...but an explicit re-registration (a restarted node) brings it back.
	mustRegister(t, g, NodeInfo{ID: "a", URL: "http://edge-a:8081"})
	if n, err := g.Pick(); err != nil || n.ID != "a" {
		t.Fatalf("pick after re-register = %v, %v", n, err)
	}
	if got := g.Nodes()[0].Health; got != proto.HealthAlive {
		t.Fatalf("health after re-register = %q", got)
	}
	// Deregister of an unknown node is a quiet no-op.
	if g.Deregister("ghost") {
		t.Fatal("unknown node deregistered")
	}
}

func TestRegistryPickHonorsExcludes(t *testing.T) {
	g := NewRegistry(nil)
	mustRegister(t, g,
		NodeInfo{ID: "a", URL: "http://edge-a:8081"},
		NodeInfo{ID: "b", URL: "http://edge-b:8081"})
	// Make a strictly the better node; excluding it must still pick b.
	if err := g.Heartbeat("b", NodeStats{ActiveClients: 9}); err != nil {
		t.Fatal(err)
	}
	n, err := g.Pick("edge-a:8081")
	if err != nil {
		t.Fatal(err)
	}
	if n.ID != "b" {
		t.Fatalf("pick with exclude = %s, want b", n.ID)
	}
	// Excluding by node ID works too.
	if n, err = g.Pick("a"); err != nil || n.ID != "b" {
		t.Fatalf("pick excluding by ID = %v %v", n, err)
	}
	// Everything excluded: no nodes, the client's cue to reset.
	if _, err := g.Pick("a", "b"); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("pick with all excluded = %v, want ErrNoNodes", err)
	}
}

func TestRegistryHTTPFailureFeedback(t *testing.T) {
	g := NewRegistry(nil)
	mustRegister(t, g,
		NodeInfo{ID: "a", URL: "http://edge-a:8081"},
		NodeInfo{ID: "b", URL: "http://edge-b:8081"})
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	// The exclude header steers the redirect away from the named host.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/vod/lec", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(ExcludeHeader, "edge-a:8081")
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noFollow.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.Contains(loc, "edge-b") {
		t.Fatalf("redirect with exclude landed on %q", loc)
	}

	// A posted failure report kills the node for subsequent redirects.
	if err := ReportFailure(nil, ts.URL, "edge-b:8081"); err != nil {
		t.Fatal(err)
	}
	resp, err = noFollow.Do(req) // still excluding a, and b is now dead
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status after killing the last candidate = %d, want 503", resp.StatusCode)
	}

	// Deregister drains the other node: nothing remains.
	if err := Deregister(nil, ts.URL, "a"); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/vod/lec")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status after drain = %d, want 503", resp.StatusCode)
	}

	// Malformed reports are rejected.
	for _, body := range []string{`{"node":""}`, `{`} {
		resp, err := http.Post(ts.URL+"/registry/report-failure", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("report %q status = %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestRejoinAfterRegistryRestartHeartbeatsImmediately guards the churn
// bugfix: when a registry restart forces an edge to re-register, the
// edge must post its stats right away instead of leaving the registry
// to score it idle until the next tick — the join pile-on the immediate
// first heartbeat exists to prevent.
func TestRejoinAfterRegistryRestartHeartbeatsImmediately(t *testing.T) {
	const interval = 400 * time.Millisecond
	var cur atomic.Pointer[Registry]
	cur.Store(NewRegistry(nil))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur.Load().Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = RunHeartbeats(ctx, nil, ts.URL, NodeInfo{ID: "e1", URL: "http://edge1:8081"},
			func() NodeStats { return NodeStats{ActiveClients: 7} }, interval, nil)
	}()

	waitStats := func(g *Registry, timeout time.Duration) time.Duration {
		t.Helper()
		t0 := time.Now()
		testutil.WaitUntil(t, timeout, func() bool {
			nodes := g.Nodes()
			return len(nodes) == 1 && nodes[0].Stats.ActiveClients == 7
		}, "node never reported stats")
		return time.Since(t0)
	}
	waitStats(cur.Load(), 5*time.Second)

	// Registry "restart": fresh instance, empty node table. The edge's
	// next heartbeat 404s, it re-registers, and — the fix — posts stats
	// in the same breath rather than one full interval later.
	fresh := NewRegistry(nil)
	cur.Store(fresh)
	testutil.WaitUntil(t, 5*time.Second, func() bool { return len(fresh.Nodes()) == 1 },
		"node never re-registered")
	if lag := waitStats(fresh, interval); lag > interval/2 {
		t.Fatalf("stats arrived %v after rejoin; an immediate heartbeat should beat %v", lag, interval/2)
	}
}

func TestStreamFetcherFailsOverToLiveEdge(t *testing.T) {
	g := NewRegistry(nil)
	reg := httptest.NewServer(g.Handler())
	defer reg.Close()

	// One healthy edge and one corpse (its listener is closed).
	_, originTS := newOriginWithAsset(t, "lec")
	edgeSrv := streaming.NewServer(nil)
	edgeSrv.Pacing = false
	live := httptest.NewServer(NewEdge(originTS.URL, edgeSrv).Handler())
	defer live.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from now on

	mustRegister(t, g,
		NodeInfo{ID: "dead", URL: deadURL},
		NodeInfo{ID: "live", URL: live.URL})
	// Make the corpse the preferred pick so the fetcher must escape it.
	if err := g.Heartbeat("live", NodeStats{ActiveClients: 5}); err != nil {
		t.Fatal(err)
	}

	f := NewStreamFetcher(reg.URL, nil)
	var resp *http.Response
	var err error
	for attempt := 1; attempt <= 3; attempt++ {
		var edgeHost string
		resp, edgeHost, err = f.Fetch(context.Background(), "/vod/lec")
		if err == nil {
			defer resp.Body.Close()
			if wantHost(t, live.URL) != edgeHost {
				t.Fatalf("served by %s, want the live edge", edgeHost)
			}
			break
		}
		if !Retryable(err) {
			t.Fatalf("attempt %d: non-retryable %v", attempt, err)
		}
	}
	if err != nil {
		t.Fatalf("failover never succeeded: %v", err)
	}
	// The corpse was reported: the registry marks it dead for everyone.
	for _, n := range g.Nodes() {
		if n.ID == "dead" && !n.Dead {
			t.Fatal("dead edge not reported to the registry")
		}
	}
	if got := f.Excluded(); len(got) != 1 {
		t.Fatalf("excluded = %v, want just the corpse", got)
	}
}

func wantHost(t *testing.T, raw string) string {
	t.Helper()
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

func TestWithStart(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"/vod/lec", "/vod/lec?start=1500ms"},
		{"/vod/lec?start=250ms", "/vod/lec?start=1500ms"},
		{"/group/g?bw=768000", "/group/g?bw=768000&start=1500ms"},
	} {
		if got := WithStart(tc.in, 1500*time.Millisecond); got != tc.want {
			t.Errorf("WithStart(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestStartOf guards the seek-resume seed: a session severed before
// any media arrived must resume at its original seek point, which
// WithStart would otherwise override with 0.
func TestStartOf(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"/vod/lec", 0},
		{"/vod/lec?start=3000ms", 3 * time.Second},
		{"/vod/lec?start=2s&other=1", 2 * time.Second},
		{"/group/g?bw=768000", 0},
		{"/vod/lec?start=garbage", 0},
		{"/vod/lec?start=-5s", 0},
	} {
		if got := StartOf(tc.in); got != tc.want {
			t.Errorf("StartOf(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// Round trip with WithStart: the seeded offset survives a pre-media
	// sever (resume offset == original start).
	target := "/vod/lec?start=3000ms"
	if got := WithStart(target, StartOf(target)); got != "/vod/lec?start=3000ms" {
		t.Errorf("pre-media resume target = %q", got)
	}
}

func TestFailoverBackoffBounded(t *testing.T) {
	if d := FailoverBackoff(100*time.Millisecond, 1); d != 100*time.Millisecond {
		t.Fatalf("attempt 1 = %v", d)
	}
	if d := FailoverBackoff(100*time.Millisecond, 3); d != 400*time.Millisecond {
		t.Fatalf("attempt 3 = %v", d)
	}
	for _, n := range []int{6, 20, 63} {
		if d := FailoverBackoff(100*time.Millisecond, n); d != 2*time.Second {
			t.Fatalf("attempt %d = %v, want the 2s cap", n, d)
		}
	}
	if d := FailoverBackoff(0, 1); d != 50*time.Millisecond {
		t.Fatalf("zero base attempt 1 = %v, want the 50ms default", d)
	}
}

package relay

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/vclock"
)

// DefaultNodeTTL is how long a node stays eligible for redirects after
// its last registration or heartbeat.
const DefaultNodeTTL = 15 * time.Second

// pruneAfterTTLs is how many TTLs a node may go unseen before its entry
// is removed entirely. Dead and draining nodes stay listed (health
// reporting) for this grace window so operators can watch a shutdown,
// but a registry that outlives generations of edges on ephemeral
// addresses must not grow its node table forever — Deregister marks
// rather than deletes, so pruning is the only removal path.
const pruneAfterTTLs = 4

// ExcludeHeader is the request header a failing-over client sets on its
// registry request to name edge hosts (or node IDs) it must not be
// redirected back to — the nodes it just escaped. Values are
// comma-separated. Defined by the wire contract (internal/proto).
const ExcludeHeader = proto.ExcludeHeader

// Registry is the cluster's client entry point: edges register and
// heartbeat their load, clients request streams and are redirected (307)
// to the least-loaded live edge. Redirect counts per node, lost
// redirects (no live edge), live-node count, node deaths (failure
// reports and graceful drains), and per-node heartbeat ages are
// published on Metrics().
//
// Liveness is two-signal: a node expires passively when its heartbeats
// stop for TTL, and dies actively the moment a client reports a failed
// fetch (ReportFailure) or the node itself drains (Deregister) — so the
// cluster stops routing at a corpse in one round trip instead of one
// TTL. A dead node revives on its next heartbeat or registration; a
// draining node stays listed (health "draining" on GET /v1/registry/
// nodes) but takes no redirects until it explicitly re-registers —
// heartbeats alone cannot resurrect it, so a heartbeat racing a
// deliberate shutdown never undoes the drain.
//
// Redirects for asset-keyed requests route through a consistent-hash
// ring (hashRing) over the eligible nodes, so each asset concentrates
// on one edge and Pick is a binary search instead of a table scan; the
// ring is rebuilt on membership changes and swapped atomically, and
// PickFor falls back to the least-loaded eligible node when the ring's
// choice is dead, draining, expired, or excluded.
type Registry struct {
	clock vclock.Clock
	// TTL overrides DefaultNodeTTL when positive.
	TTL time.Duration

	// store is the durable control-plane state (internal/catalog): the
	// persisted node table the registry restores on start plus the
	// published-content catalog. Never nil — a registry without a state
	// dir runs on a memory-only store with identical semantics.
	store *catalog.Store

	metrics       *metrics.Registry
	redirects     *metrics.Counter
	noNode        *metrics.Counter
	reports       *metrics.Counter
	deathFailure  *metrics.Counter
	deathDrain    *metrics.Counter
	ringHits      *metrics.Counter
	ringFallback  *metrics.Counter
	snapRedirects *metrics.Counter

	// ring is the consistent-hash ring over the eligible nodes, swapped
	// atomically on every membership change so PickFor can do its
	// lookup without g.mu (a reader never sees a torn ring; staleness is
	// handled by re-validating the chosen node under the lock).
	ring atomic.Pointer[hashRing]

	mu    sync.Mutex
	nodes map[string]*regNode
	// eligible is the incrementally maintained not-dead, not-draining
	// subset of nodes — the least-loaded fallback scans it instead of
	// re-filtering the whole table (TTL expiry is still checked per
	// candidate: it is passive and cannot maintain a list). Membership
	// invariant: n is in eligible iff !n.dead && !n.draining.
	eligible []*regNode
	// byRef resolves every name a client may know a node by — ID, URL,
	// and URL host — in O(1), replacing the per-request scan the
	// exclude-list handling and failure reports used to do.
	byRef map[string]*regNode

	// nodesCache holds the rendered GET /v1/registry/nodes body so the
	// listing is served from stored bytes instead of re-marshaling per
	// request. Invalidated (set nil) by every node-table mutation, and
	// additionally bounded by nodesListingMaxAge because TTL expiry is
	// passive — time alone changes the health labels.
	nodesCache atomic.Pointer[nodesListing]
}

// nodesListing is one rendered node listing and when it was rendered.
type nodesListing struct {
	body []byte
	at   time.Time
}

// nodesListingMaxAge bounds how stale a cached node listing may be:
// heartbeat ages and TTL-derived health change with nothing but the
// clock, so mutation-invalidation alone would serve a frozen view.
const nodesListingMaxAge = time.Second

type regNode struct {
	info NodeInfo
	// host is the node URL's host part, the form clients know a failed
	// edge by (they hold a redirect target, not a node ID).
	host     string
	stats    NodeStats
	lastSeen time.Time
	// dead marks a node reported unreachable; it is skipped by Pick
	// until the next heartbeat or registration revives it.
	dead bool
	// draining marks a node that deregistered for a graceful shutdown:
	// skipped by Pick and reported with health "draining", revived only
	// by an explicit re-registration (never by a stray heartbeat).
	draining bool
	// assigned counts redirects issued since the last heartbeat, so that
	// a burst of joins between heartbeats still spreads across edges
	// (least-connections with local accounting).
	assigned int64
	// redirects is the node's lod_registry_node_redirects_total series,
	// created once at registration so the redirect hot path never takes
	// the metric registry's lookup lock.
	redirects *metrics.Counter
	// restored marks a node recreated from the durable snapshot rather
	// than a live registration: the restored registry redirects at it on
	// faith (its process most likely outlived the registry restart) and
	// clears the mark on its first post-restart registration or
	// heartbeat. Redirects issued while the mark is up are counted on
	// lod_registry_snapshot_redirects_total — the proof that the snapshot
	// carried traffic before the heartbeat round caught up.
	restored bool
}

// refs returns every name a client may know this node by: its ID, its
// URL, and its URL's host.
func (n *regNode) refs() [3]string {
	return [3]string{n.info.ID, n.info.URL, n.host}
}

// NewRegistry creates a registry on the given clock (nil = real clock)
// with a memory-only state store — nothing survives the process.
func NewRegistry(clock vclock.Clock) *Registry {
	return NewRegistryWithStore(clock, nil)
}

// NewRegistryWithStore creates a registry on the given clock (nil =
// real clock) backed by a durable state store (nil = memory-only). The
// store's persisted node table is restored immediately: every recorded
// node comes back marked `restored` with its liveness clock reset, so
// the registry serves redirects from the snapshot before the first
// post-restart heartbeat arrives; recorded draining marks are kept —
// a drain deliberately survives a registry restart. The registry owns
// the store from here on; Close releases it.
func NewRegistryWithStore(clock vclock.Clock, store *catalog.Store) *Registry {
	if clock == nil {
		clock = vclock.Real{}
	}
	if store == nil {
		// Open("") cannot fail: there is no directory to create or read.
		store, _ = catalog.Open("")
	}
	g := &Registry{
		clock:   clock,
		store:   store,
		nodes:   make(map[string]*regNode),
		byRef:   make(map[string]*regNode),
		metrics: metrics.NewRegistry(),
	}
	g.redirects = g.metrics.Counter("lod_registry_redirects_total", "Client redirects issued to edges.")
	g.noNode = g.metrics.Counter("lod_registry_no_edge_total", "Client requests refused because no edge was live.")
	g.reports = g.metrics.Counter("lod_registry_failure_reports_total", "Client reports of a failed edge fetch.")
	g.ringHits = g.metrics.Counter("lod_registry_ring_hits_total", "Keyed redirects served by the consistent-hash ring's preferred node.")
	g.ringFallback = g.metrics.Counter("lod_registry_ring_fallbacks_total", "Keyed redirects that fell back to least-loaded (preferred node dead, draining, expired, or excluded).")
	deaths := "Nodes marked dead before TTL expiry, by reason."
	g.deathFailure = g.metrics.Counter("lod_registry_node_deaths_total", deaths, metrics.Label{Key: "reason", Value: "failure"})
	g.deathDrain = g.metrics.Counter("lod_registry_node_deaths_total", deaths, metrics.Label{Key: "reason", Value: "drain"})
	g.snapRedirects = g.metrics.Counter("lod_registry_snapshot_redirects_total",
		"Redirects served at nodes restored from the durable snapshot before their first post-restart heartbeat.")
	g.metrics.GaugeFunc("lod_registry_nodes_alive", "Registered nodes within their TTL.", func() float64 {
		var alive float64
		for _, n := range g.Nodes() {
			if n.Alive {
				alive++
			}
		}
		return alive
	})
	g.metrics.GaugeFunc("lod_registry_catalog_version", "Current control-plane state version.", func() float64 {
		return float64(g.store.Version())
	})
	for _, rec := range g.store.State().Nodes {
		// A record that no longer parses as a node is skipped, not fatal —
		// the rest of the snapshot still restores.
		_ = g.addNode(NodeInfo{ID: rec.ID, URL: rec.URL}, rec.Draining, true)
	}
	return g
}

// Close releases the registry's durable store. The registry itself
// keeps answering (memory-state only) — Close is for the shutdown path
// and for handing the state directory to a successor registry.
func (g *Registry) Close() { g.store.Close() }

// Metrics returns the registry's metric registry; cmd/lodserver mounts
// it next to the redirect endpoints when hosting the registry role.
func (g *Registry) Metrics() *metrics.Registry { return g.metrics }

func (g *Registry) ttl() time.Duration {
	if g.TTL > 0 {
		return g.TTL
	}
	return DefaultNodeTTL
}

// syncEligibilityLocked reconciles n's membership in the eligible list
// with its dead/draining flags and rebuilds the ring when membership
// changed. Callers capture `was` (the membership before mutating the
// flags) and call this after. Holding g.mu is required.
func (g *Registry) syncEligibilityLocked(n *regNode, was bool) {
	is := !n.dead && !n.draining
	if is == was {
		return
	}
	if is {
		g.eligible = append(g.eligible, n)
	} else {
		g.dropEligibleLocked(n)
	}
	g.rebuildRingLocked()
}

// dropEligibleLocked removes n from the eligible list (no-op when
// absent). Mutation-path only; the pick path never calls it.
func (g *Registry) dropEligibleLocked(n *regNode) {
	for i, e := range g.eligible {
		if e == n {
			g.eligible = append(g.eligible[:i], g.eligible[i+1:]...)
			return
		}
	}
}

// rebuildRingLocked rebuilds the consistent-hash ring from the current
// eligible list and publishes it atomically. Holding g.mu serializes
// writers; readers load the pointer lock-free.
func (g *Registry) rebuildRingLocked() {
	g.ring.Store(buildRing(g.eligible))
}

// setRefsLocked points every ref of n (ID, URL, host) at n in the byRef
// index; dropRefsLocked removes them, but only where the index still
// points at n — two nodes registered on the same URL must not unhook
// each other.
func (g *Registry) setRefsLocked(n *regNode) {
	for _, ref := range n.refs() {
		if ref != "" {
			g.byRef[ref] = n
		}
	}
}

func (g *Registry) dropRefsLocked(n *regNode) {
	for _, ref := range n.refs() {
		if ref != "" && g.byRef[ref] == n {
			delete(g.byRef, ref)
		}
	}
}

// pruneLocked drops nodes not seen for pruneAfterTTLs TTLs — long-dead
// corpses and drained nodes that never came back. Callers hold g.mu.
// Alive nodes are never eligible: staying alive requires heartbeats,
// and every heartbeat refreshes lastSeen. A pruned node that was merely
// partitioned re-registers on its next heartbeat's ErrUnknownNode,
// exactly like after a registry restart.
func (g *Registry) pruneLocked() {
	cut := g.clock.Now().Add(-time.Duration(pruneAfterTTLs) * g.ttl())
	var pruned []string
	for id, n := range g.nodes {
		if n.lastSeen.Before(cut) {
			delete(g.nodes, id)
			g.dropRefsLocked(n)
			g.dropEligibleLocked(n)
			pruned = append(pruned, id)
		}
	}
	if pruned == nil {
		return
	}
	g.rebuildRingLocked()
	g.invalidateNodesListing()
	// Drop the pruned nodes from the durable record too, or a restart
	// would resurrect corpses the live registry already forgot. Apply
	// under g.mu is safe: the store goroutine takes no registry locks.
	_, _ = g.store.Apply(func(st *catalog.State) {
		for _, id := range pruned {
			st.RemoveNode(id)
		}
	})
}

// Register adds or refreshes a node. Re-registering an existing ID
// updates its URL and resets its liveness. The registration is recorded
// in the durable store (clearing any persisted draining mark), so a
// restarted registry restores the node table instead of waiting for
// every edge to stumble over ErrUnknownNode.
func (g *Registry) Register(info NodeInfo) error {
	if err := g.addNode(info, false, false); err != nil {
		return err
	}
	// A persist failure is not a registration failure: the in-memory
	// table already routes to the node, and the store kept its previous
	// consistent state. The durable record simply lags until the next
	// successful mutation.
	_, _ = g.store.Apply(func(st *catalog.State) {
		st.UpsertNode(catalog.NodeRecord{ID: info.ID, URL: info.URL})
	})
	return nil
}

// addNode is the shared in-memory half of Register and the
// restore-from-snapshot path: validate, create metric series, and
// insert/update the node under g.mu.
//
// The node's metric series are created OUTSIDE g.mu: scrapes hold the
// metrics registry's lock while calling gauge functions that take g.mu,
// so taking the locks in the opposite order here would deadlock the
// registry against a concurrent /metrics scrape.
func (g *Registry) addNode(info NodeInfo, draining, restored bool) error {
	if info.ID == "" {
		return &badNodeError{"empty node id"}
	}
	u, err := url.Parse(info.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return &badNodeError{"node URL must be absolute, got " + info.URL}
	}
	id := info.ID
	redirects := g.metrics.Counter("lod_registry_node_redirects_total",
		"Client redirects issued, by target node.",
		metrics.Label{Key: "node", Value: id})
	// Scrape-time gauge: how stale is this node's last heartbeat? A node
	// that re-registers simply refreshes the closure; series are never
	// unregistered, so a TTL-expired node keeps reporting its growing age.
	g.metrics.GaugeFunc("lod_registry_heartbeat_age_seconds",
		"Seconds since each node's last registration or heartbeat.",
		func() float64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			n, ok := g.nodes[id]
			if !ok {
				return -1
			}
			return g.clock.Now().Sub(n.lastSeen).Seconds()
		},
		metrics.Label{Key: "node", Value: id})

	g.mu.Lock()
	defer g.mu.Unlock()
	g.pruneLocked()
	n := g.nodes[info.ID]
	was := false
	if n == nil {
		n = &regNode{}
		g.nodes[info.ID] = n
	} else {
		was = !n.dead && !n.draining
		// Re-registration may move the node to a new URL; unhook the old
		// refs before indexing the new ones.
		g.dropRefsLocked(n)
	}
	n.info = info
	n.host = u.Host
	n.redirects = redirects
	n.lastSeen = g.clock.Now()
	n.dead = false
	n.draining = draining
	n.restored = restored
	g.setRefsLocked(n)
	g.syncEligibilityLocked(n, was)
	g.invalidateNodesListing()
	return nil
}

// Heartbeat records a node's load snapshot and refreshes its liveness.
// A heartbeat revives a node marked dead — the node is demonstrably
// back — but never a draining one: draining was the node's own
// deliberate exit, and a heartbeat racing the deregistration must not
// undo it. A drained node that restarts re-registers (RunHeartbeats
// always registers first), which clears the mark.
func (g *Registry) Heartbeat(id string, stats NodeStats) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.pruneLocked()
	n, ok := g.nodes[id]
	if !ok {
		return ErrUnknownNode
	}
	was := !n.dead && !n.draining
	n.stats = stats
	n.assigned = 0
	n.lastSeen = g.clock.Now()
	n.dead = false
	// The node has spoken for itself; it is no longer running on
	// snapshot faith.
	n.restored = false
	g.syncEligibilityLocked(n, was)
	g.invalidateNodesListing()
	return nil
}

// ReportFailure marks the node named by ref (node ID, URL, or URL host)
// dead right now, instead of letting it soak up redirects until its TTL
// runs out. It reports whether a live node was actually killed; reports
// about unknown, already-dead, or draining nodes are counted but
// otherwise ignored, so concurrent failing-over clients can all report
// the same corpse.
func (g *Registry) ReportFailure(ref string) bool {
	g.reports.Inc()
	g.mu.Lock()
	var killed bool
	if n := g.byRef[ref]; n != nil && !n.dead && !n.draining {
		n.dead = true
		g.syncEligibilityLocked(n, true)
		g.invalidateNodesListing()
		killed = true
	}
	g.mu.Unlock()
	if killed {
		g.deathFailure.Inc()
	}
	return killed
}

// Deregister marks a node draining — the graceful half of death, used
// by an edge shutting down so no client is redirected at it during its
// final seconds. The node stays listed (health "draining" in Nodes) so
// operators can watch the shutdown, then falls out entirely once it has
// been unseen for pruneAfterTTLs TTLs; only an explicit re-registration
// brings it back into rotation before that. Idempotent: draining an
// unknown or already-draining ID reports false.
func (g *Registry) Deregister(id string) bool {
	g.mu.Lock()
	n, ok := g.nodes[id]
	marked := ok && !n.draining
	if marked {
		was := !n.dead
		n.draining = true
		g.syncEligibilityLocked(n, was)
		g.invalidateNodesListing()
	}
	g.mu.Unlock()
	if marked {
		g.deathDrain.Inc()
		// The drain is durable: a registry restart must not resurrect a
		// node that deliberately exited rotation.
		_, _ = g.store.Apply(func(st *catalog.State) {
			st.SetNodeDraining(id, true)
		})
	}
	return marked
}

func (n *regNode) load() float64 {
	return n.stats.Load() + float64(n.assigned)
}

// health folds a node's liveness into the contract's one-word label.
func (n *regNode) health(cut time.Time) string {
	switch {
	case n.draining:
		return proto.HealthDraining
	case n.dead || n.lastSeen.Before(cut):
		return proto.HealthDead
	default:
		return proto.HealthAlive
	}
}

// Nodes returns the state of every registered node, sorted by ID, with
// each node's health (alive/dead/draining) and heartbeat age — the
// per-node view GET /v1/registry/nodes serves and lodplay
// -server-status prints.
func (g *Registry) Nodes() []NodeStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.pruneLocked()
	now := g.clock.Now()
	cut := now.Add(-g.ttl())
	out := make([]NodeStatus, 0, len(g.nodes))
	for _, n := range g.nodes {
		health := n.health(cut)
		out = append(out, NodeStatus{
			NodeInfo:        n.info,
			Stats:           n.stats,
			Assigned:        n.assigned,
			Load:            n.load(),
			Alive:           health == proto.HealthAlive,
			Dead:            n.dead,
			Health:          health,
			HeartbeatAgeSec: now.Sub(n.lastSeen).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// invalidateNodesListing drops the cached node-listing bytes; the next
// NodesJSON re-renders. Safe with or without g.mu — the pointer store
// is atomic.
func (g *Registry) invalidateNodesListing() {
	g.nodesCache.Store(nil)
}

// NodesJSON returns the GET /v1/registry/nodes body: the Nodes()
// listing rendered once per node-table change (plus a one-second
// staleness bound for the purely clock-driven fields) and served as
// stored bytes from then on — the listing hot path does zero marshal
// work per request. Callers must not mutate the returned slice.
func (g *Registry) NodesJSON() []byte {
	now := g.clock.Now()
	if l := g.nodesCache.Load(); l != nil && now.Sub(l.at) < nodesListingMaxAge && !l.at.After(now) {
		return l.body
	}
	body, err := json.Marshal(g.Nodes())
	if err != nil {
		// []NodeStatus holds only plain data; Marshal cannot fail on it.
		panic("relay: marshal node listing: " + err.Error())
	}
	body = append(body, '\n')
	g.nodesCache.Store(&nodesListing{body: body, at: now})
	return body
}

// CatalogVersion returns the current control-plane state version — the
// value of the CatalogVersionHeader on every control response.
func (g *Registry) CatalogVersion() uint64 { return g.store.Version() }

// CatalogJSON returns the GET /v1/registry/catalog body: the persisted
// catalog bytes, pre-marshaled by the store at swap time. Callers must
// not mutate the returned slice.
func (g *Registry) CatalogJSON() []byte { return g.store.CatalogJSON() }

// PublishAsset records an asset in the durable catalog (insert or
// republish — a republish bumps the entry's Rev, which is what tells
// edges their mirrored copy went stale). Returns the catalog version
// carrying the change.
func (g *Registry) PublishAsset(name string) (uint64, error) {
	if name == "" {
		return 0, &badNodeError{"empty asset name"}
	}
	st, err := g.store.Apply(func(st *catalog.State) { st.PublishAsset(name) })
	return st.Version, err
}

// UnpublishAsset removes an asset from the durable catalog, reporting
// whether it was published, and the catalog version after the call.
func (g *Registry) UnpublishAsset(name string) (uint64, bool, error) {
	var removed bool
	st, err := g.store.Apply(func(st *catalog.State) { removed = st.UnpublishAsset(name) })
	return st.Version, removed, err
}

// PublishGroup records a multi-rate group (and implicitly its variant
// list) in the durable catalog; semantics mirror PublishAsset.
func (g *Registry) PublishGroup(name string, variants []string) (uint64, error) {
	if name == "" {
		return 0, &badNodeError{"empty group name"}
	}
	st, err := g.store.Apply(func(st *catalog.State) { st.PublishGroup(name, variants) })
	return st.Version, err
}

// UnpublishGroup removes a group from the durable catalog; semantics
// mirror UnpublishAsset.
func (g *Registry) UnpublishGroup(name string) (uint64, bool, error) {
	var removed bool
	st, err := g.store.Apply(func(st *catalog.State) { removed = st.UnpublishGroup(name) })
	return st.Version, removed, err
}

// RollbackCatalog restores the published content of a retained catalog
// snapshot through the store's apply goroutine and returns the catalog
// version carrying the restore. Node membership is untouched and the
// version keeps growing; catalog.ErrNoSnapshot reports an unknown or
// pruned version.
func (g *Registry) RollbackCatalog(version uint64) (uint64, error) {
	st, err := g.store.Rollback(version)
	return st.Version, err
}

// Pick selects the least-loaded live node and counts the assignment.
// Ties break on node ID for determinism. Nodes named in exclude (by ID,
// URL, or URL host) are skipped, so a failing-over client is never
// bounced back to the node it just escaped; when every live node is
// excluded Pick returns ErrNoNodes and the client should drop its
// stale exclusions and retry.
func (g *Registry) Pick(exclude ...string) (NodeInfo, error) {
	return g.PickFor("", exclude...)
}

// PickFor selects the node serving key — a stream path in its
// unversioned form (proto.StreamPath), e.g. "/vod/lec-3" — and counts
// the assignment. A non-empty key routes through the consistent-hash
// ring: the preferred node is an O(log n) lookup, computable without
// scanning the node table, and stable across requests, so each asset
// concentrates on one edge and the cluster mirrors it once instead of
// once per edge. When the preferred node is dead, draining, expired,
// or excluded — or the key is empty — PickFor falls back to the
// least-loaded eligible node, exactly the old Pick behaviour.
//
// The ring lookup runs lock-free on an atomically published ring; only
// the validation and load accounting take g.mu. The whole path is
// allocation-free for exclude lists up to 8 entries (the failover SDK
// never accumulates more than the edge count).
func (g *Registry) PickFor(key string, exclude ...string) (NodeInfo, error) {
	var preferred *regNode
	if key != "" {
		if r := g.ring.Load(); r != nil {
			preferred = r.pick(key)
		}
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	cut := g.clock.Now().Add(-g.ttl())
	// Resolve the exclude refs to nodes once, O(1) each via the byRef
	// index — the old code re-matched every node against every ref on
	// every request. The stack buffer keeps the hot path alloc-free.
	var exclBuf [8]*regNode
	excl := exclBuf[:0]
	for _, ref := range exclude {
		if n := g.byRef[ref]; n != nil {
			excl = append(excl, n)
		}
	}
	usable := func(n *regNode) bool {
		if n.dead || n.draining || n.lastSeen.Before(cut) {
			return false
		}
		for _, x := range excl {
			if x == n {
				return false
			}
		}
		return true
	}

	if preferred != nil {
		if usable(preferred) {
			preferred.assigned++
			preferred.redirects.Inc()
			g.ringHits.Inc()
			if preferred.restored {
				g.snapRedirects.Inc()
			}
			return preferred.info, nil
		}
		g.ringFallback.Inc()
	}

	// Least-loaded fallback (and the whole path for unkeyed picks): scan
	// the incrementally maintained eligible list — dead and draining
	// nodes never appear in it, so a table full of corpses costs nothing.
	var best *regNode
	for _, n := range g.eligible {
		if !usable(n) {
			continue
		}
		if best == nil || n.load() < best.load() ||
			(n.load() == best.load() && n.info.ID < best.info.ID) {
			best = n
		}
	}
	if best == nil {
		return NodeInfo{}, ErrNoNodes
	}
	best.assigned++
	best.redirects.Inc()
	if best.restored {
		g.snapRedirects.Inc()
	}
	return best.info, nil
}

// Handler returns the registry's HTTP interface. Every route serves
// under the /v1 prefix and its legacy unversioned alias:
//
//	POST {/v1}/registry/register       — body: proto.NodeInfo JSON
//	POST {/v1}/registry/heartbeat      — body: proto.HeartbeatMsg JSON
//	POST {/v1}/registry/report-failure — body: proto.FailureReport JSON;
//	                                     marks the node dead immediately
//	POST {/v1}/registry/deregister     — body: proto.DeregisterMsg JSON;
//	                                     marks a shutting-down node
//	                                     draining
//	GET  {/v1}/registry/nodes          — JSON list of proto.NodeStatus
//	                                     (health + heartbeat age per node),
//	                                     served from cached bytes
//	GET  {/v1}/registry/catalog        — proto.Catalog JSON, the persisted
//	                                     bytes verbatim
//	POST {/v1}/registry/publish        — body: proto.PublishMsg JSON;
//	                                     records an asset or group in the
//	                                     durable catalog
//	POST {/v1}/registry/unpublish      — body: proto.UnpublishMsg JSON;
//	                                     404 when not in the catalog
//	GET  {/v1}/vod/..., /live/..., /group/...
//	                                   — 307 redirect to the edge the
//	                                     consistent-hash ring assigns the
//	                                     stream path (least-loaded when
//	                                     that node is down), path and
//	                                     query preserved; nodes named in
//	                                     the proto.ExcludeHeader are
//	                                     skipped; 503 when no edge is
//	                                     live
func (g *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	proto.HandleFunc(mux, proto.PathRegister, g.handleRegister)
	proto.HandleFunc(mux, proto.PathHeartbeat, g.handleHeartbeat)
	proto.HandleFunc(mux, proto.PathReportFailure, g.handleReportFailure)
	proto.HandleFunc(mux, proto.PathDeregister, g.handleDeregister)
	proto.HandleFunc(mux, proto.PathNodes, g.handleNodes)
	proto.HandleFunc(mux, proto.PathCatalog, g.handleCatalog)
	proto.HandleFunc(mux, proto.PathCatalogPublish, g.handleCatalogPublish)
	proto.HandleFunc(mux, proto.PathCatalogUnpublish, g.handleCatalogUnpublish)
	proto.HandleFunc(mux, proto.PathCatalogRollback, g.handleCatalogRollback)
	proto.HandleFunc(mux, proto.PrefixVOD, g.handleRedirect)
	proto.HandleFunc(mux, proto.PrefixLive, g.handleRedirect)
	proto.HandleFunc(mux, proto.PrefixGroup, g.handleRedirect)
	return mux
}

// setCatalogVersion stamps the response with the current catalog
// version. The string is pre-rendered at state-swap time, so this costs
// one atomic load on the redirect hot path.
func (g *Registry) setCatalogVersion(w http.ResponseWriter) {
	w.Header().Set(proto.CatalogVersionHeader, g.store.Current().VersionString)
}

func (g *Registry) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		proto.WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var info NodeInfo
	if err := json.NewDecoder(r.Body).Decode(&info); err != nil {
		proto.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := g.Register(info); err != nil {
		proto.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *Registry) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		proto.WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var msg proto.HeartbeatMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		proto.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := g.Heartbeat(msg.ID, msg.Stats); err != nil {
		status := http.StatusBadRequest
		if err == ErrUnknownNode {
			// An edge that outlived a registry restart must re-register.
			status = http.StatusNotFound
		}
		proto.WriteError(w, status, err.Error())
		return
	}
	// The heartbeat answer doubles as the catalog-change signal: an edge
	// seeing the version move re-fetches the catalog and invalidates
	// stale mirrors, with no extra polling round trip.
	g.setCatalogVersion(w)
	w.WriteHeader(http.StatusNoContent)
}

func (g *Registry) handleReportFailure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		proto.WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var msg proto.FailureReport
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		proto.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	if msg.Node == "" {
		proto.WriteError(w, http.StatusBadRequest, "relay: empty node reference")
		return
	}
	// Reports about unknown or already-dead nodes succeed too: the
	// report is advisory, and racing clients all report the same corpse.
	g.ReportFailure(msg.Node)
	w.WriteHeader(http.StatusNoContent)
}

func (g *Registry) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		proto.WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var msg proto.DeregisterMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		proto.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	if msg.ID == "" {
		proto.WriteError(w, http.StatusBadRequest, "relay: empty node id")
		return
	}
	g.Deregister(msg.ID)
	w.WriteHeader(http.StatusNoContent)
}

func (g *Registry) handleNodes(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	g.setCatalogVersion(w)
	_, _ = w.Write(g.NodesJSON())
}

func (g *Registry) handleCatalog(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	g.setCatalogVersion(w)
	_, _ = w.Write(g.CatalogJSON())
}

func (g *Registry) handleCatalogPublish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		proto.WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var msg proto.PublishMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		proto.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	var err error
	switch {
	case msg.Asset != nil && msg.Group == nil:
		_, err = g.PublishAsset(msg.Asset.Name)
	case msg.Group != nil && msg.Asset == nil:
		_, err = g.PublishGroup(msg.Group.Name, msg.Group.Variants)
	default:
		proto.WriteError(w, http.StatusBadRequest, "relay: publish wants exactly one of asset or group")
		return
	}
	if err != nil {
		proto.WriteErr(w, err)
		return
	}
	g.setCatalogVersion(w)
	w.WriteHeader(http.StatusNoContent)
}

func (g *Registry) handleCatalogUnpublish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		proto.WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var msg proto.UnpublishMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		proto.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	var (
		removed bool
		err     error
	)
	switch {
	case msg.Asset != "" && msg.Group == "":
		_, removed, err = g.UnpublishAsset(msg.Asset)
	case msg.Group != "" && msg.Asset == "":
		_, removed, err = g.UnpublishGroup(msg.Group)
	default:
		proto.WriteError(w, http.StatusBadRequest, "relay: unpublish wants exactly one of asset or group")
		return
	}
	if err != nil {
		proto.WriteErr(w, err)
		return
	}
	if !removed {
		proto.WriteError(w, http.StatusNotFound, "relay: not in catalog")
		return
	}
	g.setCatalogVersion(w)
	w.WriteHeader(http.StatusNoContent)
}

func (g *Registry) handleCatalogRollback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		proto.WriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var msg proto.RollbackMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		proto.WriteError(w, http.StatusBadRequest, err.Error())
		return
	}
	if msg.Version == 0 {
		proto.WriteError(w, http.StatusBadRequest, "relay: rollback wants a snapshot version")
		return
	}
	if _, err := g.RollbackCatalog(msg.Version); err != nil {
		if errors.Is(err, catalog.ErrNoSnapshot) {
			proto.WriteError(w, http.StatusNotFound, err.Error())
			return
		}
		proto.WriteErr(w, err)
		return
	}
	g.setCatalogVersion(w)
	w.WriteHeader(http.StatusNoContent)
}

func (g *Registry) handleRedirect(w http.ResponseWriter, r *http.Request) {
	exclude := proto.SplitExclude(r.Header.Get(proto.ExcludeHeader))
	// The ring key is the unversioned escaped path, so /v1/vod/x and its
	// legacy alias /vod/x land on the same edge, and the query (seek
	// offsets, bandwidth) never splits an asset across nodes.
	node, err := g.PickFor(proto.Unversioned(r.URL.EscapedPath()), exclude...)
	if err != nil {
		g.noNode.Inc()
		proto.WriteError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	g.redirects.Inc()
	// EscapedPath keeps percent-encoded names intact in the Location.
	target := strings.TrimSuffix(node.URL, "/") + r.URL.EscapedPath()
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	g.setCatalogVersion(w)
	http.Redirect(w, r, target, http.StatusTemporaryRedirect)
}

type badNodeError struct{ msg string }

func (e *badNodeError) Error() string { return "relay: " + e.msg }

package relay

import (
	"encoding/json"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/vclock"
)

// DefaultNodeTTL is how long a node stays eligible for redirects after
// its last registration or heartbeat.
const DefaultNodeTTL = 15 * time.Second

// Registry is the cluster's client entry point: edges register and
// heartbeat their load, clients request streams and are redirected (307)
// to the least-loaded live edge.
type Registry struct {
	clock vclock.Clock
	// TTL overrides DefaultNodeTTL when positive.
	TTL time.Duration

	mu    sync.Mutex
	nodes map[string]*regNode
}

type regNode struct {
	info     NodeInfo
	stats    NodeStats
	lastSeen time.Time
	// assigned counts redirects issued since the last heartbeat, so that
	// a burst of joins between heartbeats still spreads across edges
	// (least-connections with local accounting).
	assigned int64
}

// NodeStatus is the externally visible state of one registered node.
type NodeStatus struct {
	NodeInfo
	Stats NodeStats `json:"stats"`
	// Assigned is the number of redirects issued since the node's last
	// heartbeat.
	Assigned int64 `json:"assigned"`
	// Load is the score redirects are balanced on (lower wins).
	Load float64 `json:"load"`
	// Alive reports whether the node is within its TTL.
	Alive bool `json:"alive"`
}

// NewRegistry creates a registry on the given clock (nil = real clock).
func NewRegistry(clock vclock.Clock) *Registry {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &Registry{clock: clock, nodes: make(map[string]*regNode)}
}

func (g *Registry) ttl() time.Duration {
	if g.TTL > 0 {
		return g.TTL
	}
	return DefaultNodeTTL
}

// Register adds or refreshes a node. Re-registering an existing ID
// updates its URL and resets its liveness.
func (g *Registry) Register(info NodeInfo) error {
	if info.ID == "" {
		return &badNodeError{"empty node id"}
	}
	u, err := url.Parse(info.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return &badNodeError{"node URL must be absolute, got " + info.URL}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.nodes[info.ID]
	if n == nil {
		n = &regNode{}
		g.nodes[info.ID] = n
	}
	n.info = info
	n.lastSeen = g.clock.Now()
	return nil
}

// Heartbeat records a node's load snapshot and refreshes its liveness.
func (g *Registry) Heartbeat(id string, stats NodeStats) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n, ok := g.nodes[id]
	if !ok {
		return ErrUnknownNode
	}
	n.stats = stats
	n.assigned = 0
	n.lastSeen = g.clock.Now()
	return nil
}

func (n *regNode) load() float64 {
	return n.stats.Load() + float64(n.assigned)
}

// Nodes returns the state of every registered node, sorted by ID.
func (g *Registry) Nodes() []NodeStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	cut := g.clock.Now().Add(-g.ttl())
	out := make([]NodeStatus, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, NodeStatus{
			NodeInfo: n.info,
			Stats:    n.stats,
			Assigned: n.assigned,
			Load:     n.load(),
			Alive:    !n.lastSeen.Before(cut),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Pick selects the least-loaded live node and counts the assignment.
// Ties break on node ID for determinism.
func (g *Registry) Pick() (NodeInfo, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cut := g.clock.Now().Add(-g.ttl())
	var best *regNode
	for _, n := range g.nodes {
		if n.lastSeen.Before(cut) {
			continue
		}
		if best == nil || n.load() < best.load() ||
			(n.load() == best.load() && n.info.ID < best.info.ID) {
			best = n
		}
	}
	if best == nil {
		return NodeInfo{}, ErrNoNodes
	}
	best.assigned++
	return best.info, nil
}

// Handler returns the registry's HTTP interface:
//
//	POST /registry/register   — body: NodeInfo JSON
//	POST /registry/heartbeat  — body: {"id": ..., "stats": NodeStats} JSON
//	GET  /registry/nodes      — JSON list of NodeStatus
//	GET  /vod/..., /live/..., /group/...
//	                          — 307 redirect to the least-loaded edge,
//	                            path and query preserved; 503 when no
//	                            edge is live
func (g *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/registry/register", g.handleRegister)
	mux.HandleFunc("/registry/heartbeat", g.handleHeartbeat)
	mux.HandleFunc("/registry/nodes", g.handleNodes)
	mux.HandleFunc("/vod/", g.handleRedirect)
	mux.HandleFunc("/live/", g.handleRedirect)
	mux.HandleFunc("/group/", g.handleRedirect)
	return mux
}

func (g *Registry) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var info NodeInfo
	if err := json.NewDecoder(r.Body).Decode(&info); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := g.Register(info); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *Registry) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var msg heartbeatMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := g.Heartbeat(msg.ID, msg.Stats); err != nil {
		status := http.StatusBadRequest
		if err == ErrUnknownNode {
			// An edge that outlived a registry restart must re-register.
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *Registry) handleNodes(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(g.Nodes()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (g *Registry) handleRedirect(w http.ResponseWriter, r *http.Request) {
	node, err := g.Pick()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	// EscapedPath keeps percent-encoded names intact in the Location.
	target := strings.TrimSuffix(node.URL, "/") + r.URL.EscapedPath()
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	http.Redirect(w, r, target, http.StatusTemporaryRedirect)
}

type badNodeError struct{ msg string }

func (e *badNodeError) Error() string { return "relay: " + e.msg }

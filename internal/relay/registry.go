package relay

import (
	"encoding/json"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/vclock"
)

// DefaultNodeTTL is how long a node stays eligible for redirects after
// its last registration or heartbeat.
const DefaultNodeTTL = 15 * time.Second

// ExcludeHeader is the request header a failing-over client sets on its
// registry request to name edge hosts (or node IDs) it must not be
// redirected back to — the nodes it just escaped. Values are
// comma-separated.
const ExcludeHeader = "X-Lod-Exclude"

// Registry is the cluster's client entry point: edges register and
// heartbeat their load, clients request streams and are redirected (307)
// to the least-loaded live edge. Redirect counts per node, lost
// redirects (no live edge), live-node count, node deaths (failure
// reports and graceful drains), and per-node heartbeat ages are
// published on Metrics().
//
// Liveness is two-signal: a node expires passively when its heartbeats
// stop for TTL, and dies actively the moment a client reports a failed
// fetch (ReportFailure) or the node itself drains (Deregister) — so the
// cluster stops routing at a corpse in one round trip instead of one
// TTL. A dead node revives on its next heartbeat or registration.
type Registry struct {
	clock vclock.Clock
	// TTL overrides DefaultNodeTTL when positive.
	TTL time.Duration

	metrics      *metrics.Registry
	redirects    *metrics.Counter
	noNode       *metrics.Counter
	reports      *metrics.Counter
	deathFailure *metrics.Counter
	deathDrain   *metrics.Counter

	mu    sync.Mutex
	nodes map[string]*regNode
}

type regNode struct {
	info NodeInfo
	// host is the node URL's host part, the form clients know a failed
	// edge by (they hold a redirect target, not a node ID).
	host     string
	stats    NodeStats
	lastSeen time.Time
	// dead marks a node reported unreachable or drained; it is skipped
	// by Pick until the next heartbeat or registration revives it.
	dead bool
	// assigned counts redirects issued since the last heartbeat, so that
	// a burst of joins between heartbeats still spreads across edges
	// (least-connections with local accounting).
	assigned int64
	// redirects is the node's lod_registry_node_redirects_total series,
	// created once at registration so the redirect hot path never takes
	// the metric registry's lookup lock.
	redirects *metrics.Counter
}

// matches reports whether ref names this node: its ID, its URL, or its
// URL's host.
func (n *regNode) matches(ref string) bool {
	return ref != "" && (ref == n.info.ID || ref == n.info.URL || ref == n.host)
}

// NodeStatus is the externally visible state of one registered node.
type NodeStatus struct {
	NodeInfo
	Stats NodeStats `json:"stats"`
	// Assigned is the number of redirects issued since the node's last
	// heartbeat.
	Assigned int64 `json:"assigned"`
	// Load is the score redirects are balanced on (lower wins).
	Load float64 `json:"load"`
	// Alive reports whether the node is within its TTL and not marked
	// dead by a failure report or drain.
	Alive bool `json:"alive"`
	// Dead reports an active death mark (failure report or drain) that
	// the next heartbeat will clear.
	Dead bool `json:"dead,omitempty"`
}

// NewRegistry creates a registry on the given clock (nil = real clock).
func NewRegistry(clock vclock.Clock) *Registry {
	if clock == nil {
		clock = vclock.Real{}
	}
	g := &Registry{clock: clock, nodes: make(map[string]*regNode), metrics: metrics.NewRegistry()}
	g.redirects = g.metrics.Counter("lod_registry_redirects_total", "Client redirects issued to edges.")
	g.noNode = g.metrics.Counter("lod_registry_no_edge_total", "Client requests refused because no edge was live.")
	g.reports = g.metrics.Counter("lod_registry_failure_reports_total", "Client reports of a failed edge fetch.")
	deaths := "Nodes marked dead before TTL expiry, by reason."
	g.deathFailure = g.metrics.Counter("lod_registry_node_deaths_total", deaths, metrics.Label{Key: "reason", Value: "failure"})
	g.deathDrain = g.metrics.Counter("lod_registry_node_deaths_total", deaths, metrics.Label{Key: "reason", Value: "drain"})
	g.metrics.GaugeFunc("lod_registry_nodes_alive", "Registered nodes within their TTL.", func() float64 {
		var alive float64
		for _, n := range g.Nodes() {
			if n.Alive {
				alive++
			}
		}
		return alive
	})
	return g
}

// Metrics returns the registry's metric registry; cmd/lodserver mounts
// it next to the redirect endpoints when hosting the registry role.
func (g *Registry) Metrics() *metrics.Registry { return g.metrics }

func (g *Registry) ttl() time.Duration {
	if g.TTL > 0 {
		return g.TTL
	}
	return DefaultNodeTTL
}

// Register adds or refreshes a node. Re-registering an existing ID
// updates its URL and resets its liveness.
//
// The node's metric series are created OUTSIDE g.mu: scrapes hold the
// metrics registry's lock while calling gauge functions that take g.mu,
// so taking the locks in the opposite order here would deadlock the
// registry against a concurrent /metrics scrape.
func (g *Registry) Register(info NodeInfo) error {
	if info.ID == "" {
		return &badNodeError{"empty node id"}
	}
	u, err := url.Parse(info.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return &badNodeError{"node URL must be absolute, got " + info.URL}
	}
	id := info.ID
	redirects := g.metrics.Counter("lod_registry_node_redirects_total",
		"Client redirects issued, by target node.",
		metrics.Label{Key: "node", Value: id})
	// Scrape-time gauge: how stale is this node's last heartbeat? A node
	// that re-registers simply refreshes the closure; series are never
	// unregistered, so a TTL-expired node keeps reporting its growing age.
	g.metrics.GaugeFunc("lod_registry_heartbeat_age_seconds",
		"Seconds since each node's last registration or heartbeat.",
		func() float64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			n, ok := g.nodes[id]
			if !ok {
				return -1
			}
			return g.clock.Now().Sub(n.lastSeen).Seconds()
		},
		metrics.Label{Key: "node", Value: id})

	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.nodes[info.ID]
	if n == nil {
		n = &regNode{}
		g.nodes[info.ID] = n
	}
	n.info = info
	n.host = u.Host
	n.redirects = redirects
	n.lastSeen = g.clock.Now()
	n.dead = false
	return nil
}

// Heartbeat records a node's load snapshot and refreshes its liveness.
// A heartbeat revives a node marked dead: the node is demonstrably back.
func (g *Registry) Heartbeat(id string, stats NodeStats) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n, ok := g.nodes[id]
	if !ok {
		return ErrUnknownNode
	}
	n.stats = stats
	n.assigned = 0
	n.lastSeen = g.clock.Now()
	n.dead = false
	return nil
}

// ReportFailure marks the node named by ref (node ID, URL, or URL host)
// dead right now, instead of letting it soak up redirects until its TTL
// runs out. It reports whether a live node was actually killed; reports
// about unknown or already-dead nodes are counted but otherwise ignored,
// so concurrent failing-over clients can all report the same corpse.
func (g *Registry) ReportFailure(ref string) bool {
	g.reports.Inc()
	g.mu.Lock()
	var killed bool
	for _, n := range g.nodes {
		if n.matches(ref) && !n.dead {
			n.dead = true
			killed = true
			break
		}
	}
	g.mu.Unlock()
	if killed {
		g.deathFailure.Inc()
	}
	return killed
}

// Deregister removes a node — the graceful half of death, used by an
// edge draining for shutdown so no client is redirected at it during
// its final seconds. Idempotent: removing an unknown ID reports false.
func (g *Registry) Deregister(id string) bool {
	g.mu.Lock()
	_, ok := g.nodes[id]
	delete(g.nodes, id)
	g.mu.Unlock()
	if ok {
		g.deathDrain.Inc()
	}
	return ok
}

func (n *regNode) load() float64 {
	return n.stats.Load() + float64(n.assigned)
}

// Nodes returns the state of every registered node, sorted by ID.
func (g *Registry) Nodes() []NodeStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	cut := g.clock.Now().Add(-g.ttl())
	out := make([]NodeStatus, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, NodeStatus{
			NodeInfo: n.info,
			Stats:    n.stats,
			Assigned: n.assigned,
			Load:     n.load(),
			Alive:    !n.dead && !n.lastSeen.Before(cut),
			Dead:     n.dead,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Pick selects the least-loaded live node and counts the assignment.
// Ties break on node ID for determinism. Nodes named in exclude (by ID,
// URL, or URL host) are skipped, so a failing-over client is never
// bounced back to the node it just escaped; when every live node is
// excluded Pick returns ErrNoNodes and the client should drop its
// stale exclusions and retry.
func (g *Registry) Pick(exclude ...string) (NodeInfo, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cut := g.clock.Now().Add(-g.ttl())
	var best *regNode
next:
	for _, n := range g.nodes {
		if n.dead || n.lastSeen.Before(cut) {
			continue
		}
		for _, ref := range exclude {
			if n.matches(ref) {
				continue next
			}
		}
		if best == nil || n.load() < best.load() ||
			(n.load() == best.load() && n.info.ID < best.info.ID) {
			best = n
		}
	}
	if best == nil {
		return NodeInfo{}, ErrNoNodes
	}
	best.assigned++
	best.redirects.Inc()
	return best.info, nil
}

// Handler returns the registry's HTTP interface:
//
//	POST /registry/register       — body: NodeInfo JSON
//	POST /registry/heartbeat      — body: {"id": ..., "stats": NodeStats} JSON
//	POST /registry/report-failure — body: {"node": <id|URL|host>} JSON;
//	                                marks the node dead immediately
//	POST /registry/deregister     — body: {"id": ...} JSON; graceful
//	                                removal for a draining node
//	GET  /registry/nodes          — JSON list of NodeStatus
//	GET  /vod/..., /live/..., /group/...
//	                              — 307 redirect to the least-loaded edge,
//	                                path and query preserved; nodes named
//	                                in the X-Lod-Exclude header are
//	                                skipped; 503 when no edge is live
func (g *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/registry/register", g.handleRegister)
	mux.HandleFunc("/registry/heartbeat", g.handleHeartbeat)
	mux.HandleFunc("/registry/report-failure", g.handleReportFailure)
	mux.HandleFunc("/registry/deregister", g.handleDeregister)
	mux.HandleFunc("/registry/nodes", g.handleNodes)
	mux.HandleFunc("/vod/", g.handleRedirect)
	mux.HandleFunc("/live/", g.handleRedirect)
	mux.HandleFunc("/group/", g.handleRedirect)
	return mux
}

func (g *Registry) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var info NodeInfo
	if err := json.NewDecoder(r.Body).Decode(&info); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := g.Register(info); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *Registry) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var msg heartbeatMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := g.Heartbeat(msg.ID, msg.Stats); err != nil {
		status := http.StatusBadRequest
		if err == ErrUnknownNode {
			// An edge that outlived a registry restart must re-register.
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *Registry) handleReportFailure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var msg failureMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if msg.Node == "" {
		http.Error(w, "relay: empty node reference", http.StatusBadRequest)
		return
	}
	// Reports about unknown or already-dead nodes succeed too: the
	// report is advisory, and racing clients all report the same corpse.
	g.ReportFailure(msg.Node)
	w.WriteHeader(http.StatusNoContent)
}

func (g *Registry) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var msg deregisterMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if msg.ID == "" {
		http.Error(w, "relay: empty node id", http.StatusBadRequest)
		return
	}
	g.Deregister(msg.ID)
	w.WriteHeader(http.StatusNoContent)
}

func (g *Registry) handleNodes(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(g.Nodes()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (g *Registry) handleRedirect(w http.ResponseWriter, r *http.Request) {
	var exclude []string
	if raw := r.Header.Get(ExcludeHeader); raw != "" {
		for _, ref := range strings.Split(raw, ",") {
			if ref = strings.TrimSpace(ref); ref != "" {
				exclude = append(exclude, ref)
			}
		}
	}
	node, err := g.Pick(exclude...)
	if err != nil {
		g.noNode.Inc()
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	g.redirects.Inc()
	// EscapedPath keeps percent-encoded names intact in the Location.
	target := strings.TrimSuffix(node.URL, "/") + r.URL.EscapedPath()
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	http.Redirect(w, r, target, http.StatusTemporaryRedirect)
}

type badNodeError struct{ msg string }

func (e *badNodeError) Error() string { return "relay: " + e.msg }

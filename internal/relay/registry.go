package relay

import (
	"encoding/json"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/vclock"
)

// DefaultNodeTTL is how long a node stays eligible for redirects after
// its last registration or heartbeat.
const DefaultNodeTTL = 15 * time.Second

// Registry is the cluster's client entry point: edges register and
// heartbeat their load, clients request streams and are redirected (307)
// to the least-loaded live edge. Redirect counts per node, lost
// redirects (no live edge), live-node count, and per-node heartbeat
// ages are published on Metrics().
type Registry struct {
	clock vclock.Clock
	// TTL overrides DefaultNodeTTL when positive.
	TTL time.Duration

	metrics   *metrics.Registry
	redirects *metrics.Counter
	noNode    *metrics.Counter

	mu    sync.Mutex
	nodes map[string]*regNode
}

type regNode struct {
	info     NodeInfo
	stats    NodeStats
	lastSeen time.Time
	// assigned counts redirects issued since the last heartbeat, so that
	// a burst of joins between heartbeats still spreads across edges
	// (least-connections with local accounting).
	assigned int64
	// redirects is the node's lod_registry_node_redirects_total series,
	// created once at registration so the redirect hot path never takes
	// the metric registry's lookup lock.
	redirects *metrics.Counter
}

// NodeStatus is the externally visible state of one registered node.
type NodeStatus struct {
	NodeInfo
	Stats NodeStats `json:"stats"`
	// Assigned is the number of redirects issued since the node's last
	// heartbeat.
	Assigned int64 `json:"assigned"`
	// Load is the score redirects are balanced on (lower wins).
	Load float64 `json:"load"`
	// Alive reports whether the node is within its TTL.
	Alive bool `json:"alive"`
}

// NewRegistry creates a registry on the given clock (nil = real clock).
func NewRegistry(clock vclock.Clock) *Registry {
	if clock == nil {
		clock = vclock.Real{}
	}
	g := &Registry{clock: clock, nodes: make(map[string]*regNode), metrics: metrics.NewRegistry()}
	g.redirects = g.metrics.Counter("lod_registry_redirects_total", "Client redirects issued to edges.")
	g.noNode = g.metrics.Counter("lod_registry_no_edge_total", "Client requests refused because no edge was live.")
	g.metrics.GaugeFunc("lod_registry_nodes_alive", "Registered nodes within their TTL.", func() float64 {
		var alive float64
		for _, n := range g.Nodes() {
			if n.Alive {
				alive++
			}
		}
		return alive
	})
	return g
}

// Metrics returns the registry's metric registry; cmd/lodserver mounts
// it next to the redirect endpoints when hosting the registry role.
func (g *Registry) Metrics() *metrics.Registry { return g.metrics }

func (g *Registry) ttl() time.Duration {
	if g.TTL > 0 {
		return g.TTL
	}
	return DefaultNodeTTL
}

// Register adds or refreshes a node. Re-registering an existing ID
// updates its URL and resets its liveness.
//
// The node's metric series are created OUTSIDE g.mu: scrapes hold the
// metrics registry's lock while calling gauge functions that take g.mu,
// so taking the locks in the opposite order here would deadlock the
// registry against a concurrent /metrics scrape.
func (g *Registry) Register(info NodeInfo) error {
	if info.ID == "" {
		return &badNodeError{"empty node id"}
	}
	u, err := url.Parse(info.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return &badNodeError{"node URL must be absolute, got " + info.URL}
	}
	id := info.ID
	redirects := g.metrics.Counter("lod_registry_node_redirects_total",
		"Client redirects issued, by target node.",
		metrics.Label{Key: "node", Value: id})
	// Scrape-time gauge: how stale is this node's last heartbeat? A node
	// that re-registers simply refreshes the closure; series are never
	// unregistered, so a TTL-expired node keeps reporting its growing age.
	g.metrics.GaugeFunc("lod_registry_heartbeat_age_seconds",
		"Seconds since each node's last registration or heartbeat.",
		func() float64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			n, ok := g.nodes[id]
			if !ok {
				return -1
			}
			return g.clock.Now().Sub(n.lastSeen).Seconds()
		},
		metrics.Label{Key: "node", Value: id})

	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.nodes[info.ID]
	if n == nil {
		n = &regNode{}
		g.nodes[info.ID] = n
	}
	n.info = info
	n.redirects = redirects
	n.lastSeen = g.clock.Now()
	return nil
}

// Heartbeat records a node's load snapshot and refreshes its liveness.
func (g *Registry) Heartbeat(id string, stats NodeStats) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n, ok := g.nodes[id]
	if !ok {
		return ErrUnknownNode
	}
	n.stats = stats
	n.assigned = 0
	n.lastSeen = g.clock.Now()
	return nil
}

func (n *regNode) load() float64 {
	return n.stats.Load() + float64(n.assigned)
}

// Nodes returns the state of every registered node, sorted by ID.
func (g *Registry) Nodes() []NodeStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	cut := g.clock.Now().Add(-g.ttl())
	out := make([]NodeStatus, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, NodeStatus{
			NodeInfo: n.info,
			Stats:    n.stats,
			Assigned: n.assigned,
			Load:     n.load(),
			Alive:    !n.lastSeen.Before(cut),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Pick selects the least-loaded live node and counts the assignment.
// Ties break on node ID for determinism.
func (g *Registry) Pick() (NodeInfo, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cut := g.clock.Now().Add(-g.ttl())
	var best *regNode
	for _, n := range g.nodes {
		if n.lastSeen.Before(cut) {
			continue
		}
		if best == nil || n.load() < best.load() ||
			(n.load() == best.load() && n.info.ID < best.info.ID) {
			best = n
		}
	}
	if best == nil {
		return NodeInfo{}, ErrNoNodes
	}
	best.assigned++
	best.redirects.Inc()
	return best.info, nil
}

// Handler returns the registry's HTTP interface:
//
//	POST /registry/register   — body: NodeInfo JSON
//	POST /registry/heartbeat  — body: {"id": ..., "stats": NodeStats} JSON
//	GET  /registry/nodes      — JSON list of NodeStatus
//	GET  /vod/..., /live/..., /group/...
//	                          — 307 redirect to the least-loaded edge,
//	                            path and query preserved; 503 when no
//	                            edge is live
func (g *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/registry/register", g.handleRegister)
	mux.HandleFunc("/registry/heartbeat", g.handleHeartbeat)
	mux.HandleFunc("/registry/nodes", g.handleNodes)
	mux.HandleFunc("/vod/", g.handleRedirect)
	mux.HandleFunc("/live/", g.handleRedirect)
	mux.HandleFunc("/group/", g.handleRedirect)
	return mux
}

func (g *Registry) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var info NodeInfo
	if err := json.NewDecoder(r.Body).Decode(&info); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := g.Register(info); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *Registry) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var msg heartbeatMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := g.Heartbeat(msg.ID, msg.Stats); err != nil {
		status := http.StatusBadRequest
		if err == ErrUnknownNode {
			// An edge that outlived a registry restart must re-register.
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *Registry) handleNodes(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(g.Nodes()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (g *Registry) handleRedirect(w http.ResponseWriter, r *http.Request) {
	node, err := g.Pick()
	if err != nil {
		g.noNode.Inc()
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	g.redirects.Inc()
	// EscapedPath keeps percent-encoded names intact in the Location.
	target := strings.TrimSuffix(node.URL, "/") + r.URL.EscapedPath()
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	http.Redirect(w, r, target, http.StatusTemporaryRedirect)
}

type badNodeError struct{ msg string }

func (e *badNodeError) Error() string { return "relay: " + e.msg }

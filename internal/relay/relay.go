// Package relay implements the distributed origin→edge tier of the
// Lecture-on-Demand system: the paper's single streaming server scaled
// out to a cluster, as its §1 "distributed" deployment implies.
//
// Three roles cooperate:
//
//   - The origin is a plain streaming.Server holding the published assets
//     and live encoder channels.
//   - An Edge wraps its own streaming.Server and pulls content through
//     from the origin on first demand: live channels are subscribed once
//     over HTTP (/live/{channel}) and re-fanned-out locally, stored
//     assets are mirrored once (/fetch/{asset}) and then served from the
//     edge's memory, and multi-rate groups are mirrored variant by
//     variant (/groups).
//   - The Registry tracks the cluster's edges via registration and
//     periodic heartbeats carrying per-node load (ServerStats plus
//     admission-control reservations) and redirects incoming clients
//     (HTTP 307) to the least-loaded live edge. Load is compared on
//     reported bytes-in-flight — the summed declared bandwidth of the
//     node's active sessions — falling back to raw session count for
//     nodes that do not report it (see NodeStats.Load).
//
// Clients need no cluster awareness: they request /vod/... or /live/...
// from the registry and follow the redirect.
//
// The cluster is churn-tolerant: a client whose edge refuses the
// connection or severs the stream reports the node dead
// (POST /registry/report-failure) and retries through the registry,
// excluding the nodes it escaped (StreamFetcher); a draining node
// deregisters itself (POST /registry/deregister); and a dead node
// revives on its next heartbeat, so membership re-converges
// incrementally as edges die, restart, and rejoin.
//
// Both roles are observable: an Edge counts its mirror cache (hits,
// misses, LRU evictions, resident and origin-pulled bytes) on its
// server's metrics registry, and the Registry counts redirects and
// exposes per-node heartbeat ages on its own (Registry.Metrics). When
// Edge.CacheBytes is set, mirrored assets are evicted
// least-recently-demanded-first once the budget is exceeded, with
// in-use and grouped assets pinned — see Edge.
package relay

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/proto"
	"repro/internal/streaming"
	"repro/internal/vclock"
)

// Errors.
var (
	ErrNoNodes     = errors.New("relay: no live edge nodes")
	ErrUnknownNode = errors.New("relay: unknown node")
)

// The registry control-plane DTOs are defined once, in internal/proto
// (the wire contract); these aliases keep the relay API spelling that
// the rest of the tree grew up with.
type (
	// NodeInfo identifies one edge node in the cluster.
	NodeInfo = proto.NodeInfo
	// NodeStats is the load snapshot a node reports on each heartbeat;
	// its Load method is the balancing score Pick compares.
	NodeStats = proto.NodeStats
	// NodeStatus is the externally visible state of one registered
	// node, as served by GET /v1/registry/nodes.
	NodeStatus = proto.NodeStatus
)

// SnapshotStats reads a node's current load off its streaming server,
// including admission reservations when configured.
func SnapshotStats(srv *streaming.Server) NodeStats {
	st := srv.Stats()
	ns := NodeStats{
		ActiveClients: st.ActiveClients,
		PacketsSent:   st.PacketsSent,
		BytesSent:     st.BytesSent,
		InFlightBps:   st.InFlightBps,
	}
	if adm := srv.Admission; adm != nil {
		ns.ReservedBps = adm.Reserved()
		ns.CapacityBps = adm.CapacityBps
	}
	return ns
}

// httpError reports a non-2xx registry response with its status code, so
// callers can react to specific protocol statuses.
type httpError struct {
	URL    string
	Status int
	Msg    string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("relay: %s: status %d: %s", e.URL, e.Status, e.Msg)
}

func postJSON(client *http.Client, url string, v interface{}) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		perr := proto.ReadError(resp) // closes the body
		return &httpError{URL: url, Status: perr.Status, Msg: perr.Message}
	}
	resp.Body.Close()
	return nil
}

// RegisterWith announces the node to the registry at base. A nil client
// uses http.DefaultClient.
func RegisterWith(client *http.Client, base string, info NodeInfo) error {
	if client == nil {
		client = http.DefaultClient
	}
	return postJSON(client, base+proto.Versioned(proto.PathRegister), info)
}

// Heartbeat posts one load snapshot for the node to the registry at base.
// A registry that no longer knows the node (it restarted and lost its
// state) yields an error wrapping ErrUnknownNode: re-register and retry.
func Heartbeat(client *http.Client, base, id string, stats NodeStats) error {
	if client == nil {
		client = http.DefaultClient
	}
	err := postJSON(client, base+proto.Versioned(proto.PathHeartbeat), proto.HeartbeatMsg{ID: id, Stats: stats})
	var he *httpError
	if errors.As(err, &he) && he.Status == http.StatusNotFound {
		return fmt.Errorf("%w: %v", ErrUnknownNode, err)
	}
	return err
}

// ReportFailure tells the registry at base that the node named by ref
// (node ID, URL, or URL host — whichever the reporter knows) failed a
// fetch, so the registry marks it dead immediately instead of waiting
// out its TTL. A nil client uses http.DefaultClient.
func ReportFailure(client *http.Client, base, ref string) error {
	if client == nil {
		client = http.DefaultClient
	}
	return postJSON(client, base+proto.Versioned(proto.PathReportFailure), proto.FailureReport{Node: ref})
}

// Deregister tells the registry at base the node is draining — a
// draining edge calls this before it stops serving, so no client is
// redirected at it during shutdown. A nil client uses
// http.DefaultClient.
func Deregister(client *http.Client, base, id string) error {
	if client == nil {
		client = http.DefaultClient
	}
	return postJSON(client, base+proto.Versioned(proto.PathDeregister), proto.DeregisterMsg{ID: id})
}

// RunHeartbeats registers the node, posts one snapshot from snap
// immediately, and then posts a fresh snapshot every interval until ctx
// is cancelled. The immediate first heartbeat means the registry
// balances on the node's real load from its very first redirect instead
// of scoring the node zero for a whole interval — without it, a swarm
// of joins arriving right after an edge registers (the loadgen startup
// pattern) would pile onto the newcomer. The same applies after a
// registry restart: re-registering on ErrUnknownNode posts an immediate
// heartbeat too, so the rejoined node is never scored at load 0 for a
// full interval. Transient heartbeat failures are retried on the next
// tick; only the initial registration failure is fatal.
//
// RunHeartbeats does not deregister on cancellation: a draining caller
// that wants the registry told right away calls Deregister itself
// (cmd/lodserver does on SIGTERM), while a crash-simulation harness
// (loadgen churn) cancels silently and lets death detection do its job.
func RunHeartbeats(ctx context.Context, client *http.Client, base string, info NodeInfo, snap func() NodeStats, interval time.Duration, clock vclock.Clock) error {
	if clock == nil {
		clock = vclock.Real{}
	}
	if err := RegisterWith(client, base, info); err != nil {
		return err
	}
	_ = Heartbeat(client, base, info.ID, snap())
	if interval <= 0 {
		interval = 5 * time.Second
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-clock.After(interval):
			err := Heartbeat(client, base, info.ID, snap())
			// Rejoin only while the node is actually staying up: once ctx
			// is cancelled the node is shutting down, and a heartbeat that
			// raced a deliberate Deregister must not resurrect the entry.
			if errors.Is(err, ErrUnknownNode) && ctx.Err() == nil {
				// The registry restarted and forgot us; rejoin so the
				// cluster keeps routing clients here, and post stats at
				// once so the newcomer isn't scored idle until the next
				// tick (the join pile-on the immediate first heartbeat
				// exists to prevent). Failures retry on the next tick.
				if RegisterWith(client, base, info) == nil {
					_ = Heartbeat(client, base, info.ID, snap())
				}
			}
		}
	}
}

// Package relay implements the distributed origin→edge tier of the
// Lecture-on-Demand system: the paper's single streaming server scaled
// out to a cluster, as its §1 "distributed" deployment implies.
//
// Three roles cooperate:
//
//   - The origin is a plain streaming.Server holding the published assets
//     and live encoder channels.
//   - An Edge wraps its own streaming.Server and pulls content through
//     from the origin on first demand: live channels are subscribed once
//     over HTTP (/live/{channel}) and re-fanned-out locally, stored
//     assets are mirrored once (/fetch/{asset}) and then served from the
//     edge's memory, and multi-rate groups are mirrored variant by
//     variant (/groups).
//   - The Registry tracks the cluster's edges via registration and
//     periodic heartbeats carrying per-node load (ServerStats plus
//     admission-control reservations) and redirects incoming clients
//     (HTTP 307) to the least-loaded live edge. Load is compared on
//     reported bytes-in-flight — the summed declared bandwidth of the
//     node's active sessions — falling back to raw session count for
//     nodes that do not report it (see NodeStats.Load).
//
// Clients need no cluster awareness: they request /vod/... or /live/...
// from the registry and follow the redirect.
//
// The cluster is churn-tolerant: a client whose edge refuses the
// connection or severs the stream reports the node dead
// (POST /registry/report-failure) and retries through the registry,
// excluding the nodes it escaped (StreamFetcher); a draining node
// deregisters itself (POST /registry/deregister); and a dead node
// revives on its next heartbeat, so membership re-converges
// incrementally as edges die, restart, and rejoin.
//
// Both roles are observable: an Edge counts its mirror cache (hits,
// misses, LRU evictions, resident and origin-pulled bytes) on its
// server's metrics registry, and the Registry counts redirects and
// exposes per-node heartbeat ages on its own (Registry.Metrics). When
// Edge.CacheBytes is set, mirrored assets are evicted
// least-recently-demanded-first once the budget is exceeded, with
// in-use and grouped assets pinned — see Edge.
package relay

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/proto"
	"repro/internal/streaming"
)

// Errors.
var (
	ErrNoNodes     = errors.New("relay: no live edge nodes")
	ErrUnknownNode = errors.New("relay: unknown node")
)

// The registry control-plane DTOs are defined once, in internal/proto
// (the wire contract); these aliases keep the relay API spelling that
// the rest of the tree grew up with.
type (
	// NodeInfo identifies one edge node in the cluster.
	NodeInfo = proto.NodeInfo
	// NodeStats is the load snapshot a node reports on each heartbeat;
	// its Load method is the balancing score Pick compares.
	NodeStats = proto.NodeStats
	// NodeStatus is the externally visible state of one registered
	// node, as served by GET /v1/registry/nodes.
	NodeStatus = proto.NodeStatus
)

// SnapshotStats reads a node's current load off its streaming server,
// including admission reservations when configured.
func SnapshotStats(srv *streaming.Server) NodeStats {
	st := srv.Stats()
	ns := NodeStats{
		ActiveClients: st.ActiveClients,
		PacketsSent:   st.PacketsSent,
		BytesSent:     st.BytesSent,
		InFlightBps:   st.InFlightBps,
	}
	if adm := srv.Admission; adm != nil {
		ns.ReservedBps = adm.Reserved()
		ns.CapacityBps = adm.CapacityBps
	}
	return ns
}

// httpError reports a non-2xx registry response with its status code, so
// callers can react to specific protocol statuses.
type httpError struct {
	URL    string
	Status int
	Msg    string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("relay: %s: status %d: %s", e.URL, e.Status, e.Msg)
}

// IsNotFound reports whether err is a server answer saying the named
// thing does not exist (HTTP 404) — as opposed to a transport failure
// or a rejection. Unpublish tooling uses it to treat "already gone" as
// a skippable condition rather than a hard stop.
func IsNotFound(err error) bool {
	var he *httpError
	return errors.As(err, &he) && he.Status == http.StatusNotFound
}

func postJSON(client *http.Client, url string, v interface{}) error {
	_, err := postJSONVersioned(client, url, v)
	return err
}

// postJSONVersioned is postJSON returning the registry's catalog
// version header (0 when absent — older registries, non-registry
// targets).
func postJSONVersioned(client *http.Client, url string, v interface{}) (uint64, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		perr := proto.ReadError(resp) // closes the body
		return 0, &httpError{URL: url, Status: perr.Status, Msg: perr.Message}
	}
	ver, _ := proto.ParseCatalogVersion(resp.Header.Get(proto.CatalogVersionHeader))
	resp.Body.Close()
	return ver, nil
}

// RegisterWith announces the node to the registry at base. A nil client
// uses http.DefaultClient.
func RegisterWith(client *http.Client, base string, info NodeInfo) error {
	if client == nil {
		client = http.DefaultClient
	}
	return postJSON(client, base+proto.Versioned(proto.PathRegister), info)
}

// Heartbeat posts one load snapshot for the node to the registry at
// base, returning the registry's current catalog version (the
// CatalogVersionHeader on the answer; 0 from a pre-catalog registry) —
// the signal a node compares against its last synced version to decide
// whether to re-fetch the catalog. A registry that no longer knows the
// node (it restarted and lost its state) yields an error wrapping
// ErrUnknownNode: re-register and retry.
func Heartbeat(client *http.Client, base, id string, stats NodeStats) (uint64, error) {
	if client == nil {
		client = http.DefaultClient
	}
	ver, err := postJSONVersioned(client, base+proto.Versioned(proto.PathHeartbeat), proto.HeartbeatMsg{ID: id, Stats: stats})
	var he *httpError
	if errors.As(err, &he) && he.Status == http.StatusNotFound {
		return 0, fmt.Errorf("%w: %v", ErrUnknownNode, err)
	}
	return ver, err
}

// ReportFailure tells the registry at base that the node named by ref
// (node ID, URL, or URL host — whichever the reporter knows) failed a
// fetch, so the registry marks it dead immediately instead of waiting
// out its TTL. A nil client uses http.DefaultClient.
func ReportFailure(client *http.Client, base, ref string) error {
	if client == nil {
		client = http.DefaultClient
	}
	return postJSON(client, base+proto.Versioned(proto.PathReportFailure), proto.FailureReport{Node: ref})
}

// Deregister tells the registry at base the node is draining — a
// draining edge calls this before it stops serving, so no client is
// redirected at it during shutdown. A nil client uses
// http.DefaultClient.
func Deregister(client *http.Client, base, id string) error {
	if client == nil {
		client = http.DefaultClient
	}
	return postJSON(client, base+proto.Versioned(proto.PathDeregister), proto.DeregisterMsg{ID: id})
}

// GetCatalog fetches the registry's published-content catalog. A nil
// client uses http.DefaultClient.
func GetCatalog(client *http.Client, base string) (proto.Catalog, error) {
	if client == nil {
		client = http.DefaultClient
	}
	url := base + proto.Versioned(proto.PathCatalog)
	resp, err := client.Get(url)
	if err != nil {
		return proto.Catalog{}, err
	}
	if resp.StatusCode != http.StatusOK {
		perr := proto.ReadError(resp) // closes the body
		return proto.Catalog{}, &httpError{URL: url, Status: perr.Status, Msg: perr.Message}
	}
	defer resp.Body.Close()
	var cat proto.Catalog
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		return proto.Catalog{}, fmt.Errorf("relay: decode catalog from %s: %w", url, err)
	}
	return cat, nil
}

// PublishCatalog records a publish (asset or group) in the registry's
// durable catalog and returns the catalog version carrying it. A nil
// client uses http.DefaultClient.
func PublishCatalog(client *http.Client, base string, msg proto.PublishMsg) (uint64, error) {
	if client == nil {
		client = http.DefaultClient
	}
	return postJSONVersioned(client, base+proto.Versioned(proto.PathCatalogPublish), msg)
}

// UnpublishCatalog removes an entry from the registry's durable catalog
// and returns the catalog version carrying the removal. A nil client
// uses http.DefaultClient.
func UnpublishCatalog(client *http.Client, base string, msg proto.UnpublishMsg) (uint64, error) {
	if client == nil {
		client = http.DefaultClient
	}
	return postJSONVersioned(client, base+proto.Versioned(proto.PathCatalogUnpublish), msg)
}

// RollbackCatalog asks the registry to restore the published content of
// a retained catalog snapshot (POST /v1/registry/rollback) and returns
// the catalog version carrying the restore. A pruned or unknown
// snapshot version is a 404 (IsNotFound). A nil client uses
// http.DefaultClient.
func RollbackCatalog(client *http.Client, base string, version uint64) (uint64, error) {
	if client == nil {
		client = http.DefaultClient
	}
	return postJSONVersioned(client, base+proto.Versioned(proto.PathCatalogRollback), proto.RollbackMsg{Version: version})
}

// PublishAsset uploads a container to a streaming server's live publish
// endpoint (POST /v1/publish/{name}), registering or replacing the
// asset under traffic. A nil client uses http.DefaultClient.
func PublishAsset(client *http.Client, base, name string, body io.Reader) error {
	if client == nil {
		client = http.DefaultClient
	}
	url := base + proto.Versioned(proto.RoutePath(proto.PrefixPublish, name))
	resp, err := client.Post(url, "application/octet-stream", body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		perr := proto.ReadError(resp) // closes the body
		return &httpError{URL: url, Status: perr.Status, Msg: perr.Message}
	}
	resp.Body.Close()
	return nil
}

// UnpublishAsset removes an asset (or rate group) from a streaming
// server via its live unpublish endpoint (POST /v1/unpublish/{name}).
// In-flight sessions finish; new opens 404. A nil client uses
// http.DefaultClient.
func UnpublishAsset(client *http.Client, base, name string) error {
	if client == nil {
		client = http.DefaultClient
	}
	url := base + proto.Versioned(proto.RoutePath(proto.PrefixUnpublish, name))
	resp, err := client.Post(url, "application/json", nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		perr := proto.ReadError(resp) // closes the body
		return &httpError{URL: url, Status: perr.Status, Msg: perr.Message}
	}
	resp.Body.Close()
	return nil
}

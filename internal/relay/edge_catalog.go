package relay

import (
	"net/http"

	"repro/internal/proto"
)

// This file is the edge's half of the catalog hot-swap: the registry
// versions its published-content catalog (internal/catalog via
// Registry), edges learn of movement from the CatalogVersionHeader on
// their heartbeat answers (Heartbeats.OnCatalog), fetch the new catalog,
// and invalidate exactly the mirrored copies whose entries changed.

// SyncCatalog reconciles the edge's mirrors with a fetched catalog and
// returns the names of the mirrored copies it invalidated. The diff is
// against the edge's *previously synced* catalog, not against the
// edge's resident content: a mirror is dropped only when its catalog
// entry vanished (unpublish) or changed Rev (republish — the origin's
// bytes are new, so the cached copy is stale). Content the catalog
// never mentioned — legacy direct registrations, live channels — is
// deliberately untouched, and the very first sync only records the
// baseline. Catalogs at or below the last synced version are ignored
// (a catalog fetched from a lagging registry replica must not undo a
// newer sync).
//
// In-flight sessions on an invalidated asset finish unharmed:
// streaming.Server.RemoveAsset unlists the asset but running sessions
// keep their packet buffers; the next open misses and re-mirrors the
// fresh bytes from the origin.
func (e *Edge) SyncCatalog(cat proto.Catalog) []string {
	e.catMu.Lock()
	defer e.catMu.Unlock()
	if cat.Version <= e.catVersion && e.catAssets != nil {
		return nil
	}

	curAssets := make(map[string]uint64, len(cat.Assets))
	for _, a := range cat.Assets {
		curAssets[a.Name] = a.Rev
	}
	curGroups := make(map[string]catGroupRec, len(cat.Groups))
	// inAnyGroup marks variant names still referenced by the new
	// catalog, so invalidating a removed group never drops a variant
	// another live entry still needs.
	inAnyGroup := make(map[string]bool)
	for _, g := range cat.Groups {
		curGroups[g.Name] = catGroupRec{rev: g.Rev, variants: append([]string(nil), g.Variants...)}
		for _, v := range g.Variants {
			inAnyGroup[v] = true
		}
	}

	var invalidated []string
	if e.catAssets != nil { // not the baseline sync
		for name, rev := range e.catAssets {
			if cur, ok := curAssets[name]; !ok || cur != rev {
				if e.dropMirror(name) {
					invalidated = append(invalidated, name)
				}
			}
		}
		for name, rec := range e.catGroups {
			cur, ok := curGroups[name]
			if ok && cur.rev == rec.rev {
				continue
			}
			// The group definition is gone or re-cut: drop the local group
			// so the next /group/ demand re-mirrors it, and invalidate its
			// old variants unless the new catalog still wants them.
			if e.Server.RemoveRateGroup(name) {
				e.inst.invalidations.Inc()
			}
			for _, v := range rec.variants {
				if _, still := curAssets[v]; still || inAnyGroup[v] {
					continue
				}
				if e.dropMirror(v) {
					invalidated = append(invalidated, v)
				}
			}
		}
	}

	e.catVersion = cat.Version
	e.catAssets = curAssets
	e.catGroups = curGroups
	return invalidated
}

// dropMirror removes one stale mirrored asset: out of the cache
// accounting, off the edge server. Assets the cache never tracked were
// not mirrored by this edge (direct registrations) and are left alone.
func (e *Edge) dropMirror(name string) bool {
	if !e.cache.Remove(name) {
		return false
	}
	e.Server.RemoveAsset(name)
	e.inst.invalidations.Inc()
	e.inst.cacheBytes.Set(e.cache.Bytes())
	return true
}

// CatalogVersion returns the version of the last synced catalog.
func (e *Edge) CatalogVersion() uint64 {
	e.catMu.Lock()
	defer e.catMu.Unlock()
	return e.catVersion
}

// SyncCatalogFrom fetches the registry's catalog and applies it —
// the convenience Heartbeats.OnCatalog callbacks use. A nil client
// uses http.DefaultClient.
func (e *Edge) SyncCatalogFrom(client *http.Client, registry string) error {
	cat, err := GetCatalog(client, registry)
	if err != nil {
		return err
	}
	e.SyncCatalog(cat)
	return nil
}

package relay

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/proto"
)

// StreamFetcher is the client half of cluster failover: it resolves a
// stream path through the registry by following the 307 manually, so it
// always knows which edge host is serving — the piece an automatic
// redirect-following client loses, and exactly what a failure report
// needs to name. Across attempts it accumulates an exclude list (sent
// as the proto.ExcludeHeader) so the registry never bounces it back to
// a node it just escaped, and it reports mid-stream deaths back to the
// registry so the next client is spared the corpse.
//
// A fetcher serves one client session at a time; it is not safe for
// concurrent use. Both internal/loadgen's virtual clients and
// cmd/lodplay -failover run their retry loops on top of it.
type StreamFetcher struct {
	// Registry is the registry's base URL, without a trailing slash.
	Registry string
	// Client supplies the transport for registry and edge requests; nil
	// uses http.DefaultClient. Its redirect policy is ignored — the
	// fetcher follows the registry's 307 itself.
	Client *http.Client

	noFollow *http.Client
	exclude  []string
}

// NewStreamFetcher creates a fetcher resolving streams through the
// registry at base. A nil client uses http.DefaultClient's transport.
func NewStreamFetcher(base string, client *http.Client) *StreamFetcher {
	if client == nil {
		client = http.DefaultClient
	}
	return &StreamFetcher{
		Registry: strings.TrimSuffix(base, "/"),
		Client:   client,
		noFollow: &http.Client{
			Transport: client.Transport,
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		},
	}
}

// FetchError is one failed fetch attempt, classified for the caller's
// retry loop.
type FetchError struct {
	// Edge is the edge host that failed; empty when the registry leg
	// failed instead.
	Edge string
	// Retryable reports whether another attempt through the registry
	// can reasonably succeed (connection refused, stream severed, no
	// edge momentarily live) as opposed to a deterministic failure
	// (missing asset, malformed request).
	Retryable bool
	Err       error
}

// Error implements error.
func (e *FetchError) Error() string {
	if e.Edge != "" {
		return fmt.Sprintf("relay: fetch via edge %s: %v", e.Edge, e.Err)
	}
	return fmt.Sprintf("relay: fetch via registry: %v", e.Err)
}

// Unwrap exposes the underlying cause.
func (e *FetchError) Unwrap() error { return e.Err }

// Retryable reports whether err is a fetch failure another registry
// round trip may cure.
func Retryable(err error) bool {
	var fe *FetchError
	return errors.As(err, &fe) && fe.Retryable
}

// Fetch resolves target (a path plus optional query, e.g.
// /vod/lec-1?start=2s, in either the /v1 or the legacy form) through
// the registry and returns the serving
// edge's 200 response, with the edge host it landed on. The caller owns
// the response body. Failures return a *FetchError; retryable ones have
// already updated the fetcher's exclude list and, for dead edges, the
// registry — call Fetch again after backing off.
func (f *StreamFetcher) Fetch(ctx context.Context, target string) (*http.Response, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.Registry+target, nil)
	if err != nil {
		return nil, "", &FetchError{Err: err}
	}
	if len(f.exclude) > 0 {
		req.Header.Set(proto.ExcludeHeader, proto.JoinExclude(f.exclude))
	}
	resp, err := f.noFollow.Do(req)
	if err != nil {
		// The registry leg itself failed; transient networks recover, so
		// let the bounded retry loop decide when to give up.
		return nil, "", &FetchError{Retryable: true, Err: err}
	}
	switch resp.StatusCode {
	case http.StatusTemporaryRedirect:
		loc := resp.Header.Get("Location")
		drain(resp)
		return f.fetchEdge(ctx, loc)
	case http.StatusServiceUnavailable:
		msg := readErr(resp)
		// No live edge. If we were excluding nodes, our knowledge may be
		// stale (an excluded edge could have restarted); drop it so the
		// next attempt can use whatever the registry has.
		f.exclude = nil
		return nil, "", &FetchError{Retryable: true, Err: fmt.Errorf("no edge live: %s", msg)}
	default:
		msg := readErr(resp)
		return nil, "", &FetchError{Err: fmt.Errorf("registry status %s: %s", resp.Status, msg)}
	}
}

// fetchEdge performs the redirected leg against one edge.
func (f *StreamFetcher) fetchEdge(ctx context.Context, loc string) (*http.Response, string, error) {
	u, err := url.Parse(loc)
	if err != nil {
		return nil, "", &FetchError{Err: fmt.Errorf("bad redirect %q: %w", loc, err)}
	}
	host := u.Host
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, loc, nil)
	if err != nil {
		return nil, host, &FetchError{Edge: host, Err: err}
	}
	resp, err := f.noFollow.Do(req)
	if err != nil {
		// The edge refused the connection: it is dead or unreachable.
		// Tell the registry so it stops redirecting everyone else there,
		// and never ask for this host again ourselves.
		f.Fail(host)
		return nil, host, &FetchError{Edge: host, Retryable: true, Err: err}
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return resp, host, nil
	case resp.StatusCode >= 500:
		// Refused but reachable (draining, over capacity, origin pull
		// failed): exclude it for this session without declaring it dead.
		msg := readErr(resp)
		f.Exclude(host)
		return nil, host, &FetchError{Edge: host, Retryable: true, Err: fmt.Errorf("edge status %s: %s", resp.Status, msg)}
	default:
		msg := readErr(resp)
		return nil, host, &FetchError{Edge: host, Err: fmt.Errorf("edge status %s: %s", resp.Status, msg)}
	}
}

// Fail records that an edge died serving this session: it is excluded
// from future picks and reported to the registry (best effort) so other
// clients stop being routed there. Callers invoke it when a stream they
// were playing severs mid-session; Fetch calls it itself for connection
// failures.
func (f *StreamFetcher) Fail(host string) {
	f.Exclude(host)
	_ = ReportFailure(f.Client, f.Registry, host)
}

// Exclude adds a host to the session's exclude list without reporting
// it dead (used for refusals that are load, not death).
func (f *StreamFetcher) Exclude(host string) {
	for _, h := range f.exclude {
		if h == host {
			return
		}
	}
	f.exclude = append(f.exclude, host)
}

// Excluded returns the hosts this session will not be redirected to.
func (f *StreamFetcher) Excluded() []string { return append([]string(nil), f.exclude...) }

// WithStart returns target with its start query parameter set to at —
// the resume form of a stream path, seeking the server to the last
// media offset a failed-over client had received. Any prior start (a
// seek workload's original offset) is overridden: resuming clients
// seed their resume offset from StartOf(target), so at is never
// earlier than the original seek point.
func WithStart(target string, at time.Duration) string {
	path, query, _ := strings.Cut(target, "?")
	vals, err := url.ParseQuery(query)
	if err != nil {
		vals = url.Values{}
	}
	vals.Set(proto.ParamStart, proto.FormatStart(at))
	return path + "?" + vals.Encode()
}

// StartOf returns the start offset already present in target's query
// (a seek workload's seeded offset, or lodplay's -start), zero when
// absent or malformed. A failing-over client seeds its resume offset
// with it so a stream severed before any media arrived resumes at the
// original seek point instead of rewinding to 0:00.
func StartOf(target string) time.Duration {
	_, query, _ := strings.Cut(target, "?")
	vals, err := url.ParseQuery(query)
	if err != nil {
		return 0
	}
	at, err := proto.ParseStart(vals.Get(proto.ParamStart))
	if err != nil {
		return 0
	}
	return at
}

// FailoverBackoff returns the delay before retry attempt n (1-based):
// bounded exponential, base·2^(n-1), capped at 2s so a failing-over
// client rejoins within human reaction time rather than minutes.
func FailoverBackoff(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	d := base << uint(attempt-1)
	if max := 2 * time.Second; d > max || d <= 0 {
		return max
	}
	return d
}

// drain discards and closes a response body so its connection can be
// reused.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
}

// readErr returns a short error body and closes the response.
func readErr(resp *http.Response) string {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	return strings.TrimSpace(string(b))
}

package relay

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/proto"
	"repro/internal/streaming"
)

// syncCat is shorthand for building and applying a catalog version.
func syncCat(e *Edge, version uint64, assets []proto.CatalogAsset, groups []proto.CatalogGroup) []string {
	return e.SyncCatalog(proto.Catalog{Version: version, Assets: assets, Groups: groups})
}

// TestEdgeSyncCatalogInvalidatesStaleMirrors: an unpublished or
// republished asset must drop out of the edge's mirror so the next open
// re-fetches fresh bytes, while untouched mirrors stay resident.
func TestEdgeSyncCatalogInvalidatesStaleMirrors(t *testing.T) {
	_, originTS := newOriginWithAsset(t, "lec-a")
	data := encodeTestLecture(t, 2*time.Second, false)
	edgeSrv := streaming.NewServer(nil)
	edgeSrv.Pacing = false
	edge := NewEdge(originTS.URL, edgeSrv)

	// Baseline catalog, then mirror lec-a through the pull path.
	syncCat(edge, 1, []proto.CatalogAsset{{Name: "lec-a", Rev: 1}, {Name: "lec-b", Rev: 1}}, nil)
	if err := edge.MirrorAsset("lec-a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := edgeSrv.Asset("lec-a"); !ok {
		t.Fatal("lec-a not mirrored")
	}

	// lec-b changes, lec-a does not: the resident mirror survives.
	if inv := syncCat(edge, 2, []proto.CatalogAsset{{Name: "lec-a", Rev: 1}, {Name: "lec-b", Rev: 2}}, nil); len(inv) != 0 {
		t.Fatalf("invalidated %v, want nothing (lec-b was never mirrored)", inv)
	}
	if _, ok := edgeSrv.Asset("lec-a"); !ok {
		t.Fatal("untouched mirror dropped")
	}

	// lec-a is republished (Rev bump): the stale copy must go.
	if inv := syncCat(edge, 3, []proto.CatalogAsset{{Name: "lec-a", Rev: 3}, {Name: "lec-b", Rev: 2}}, nil); len(inv) != 1 || inv[0] != "lec-a" {
		t.Fatalf("invalidated %v, want [lec-a]", inv)
	}
	if _, ok := edgeSrv.Asset("lec-a"); ok {
		t.Fatal("stale mirror still resident after republish")
	}

	// Re-mirror, then unpublish entirely: dropped again.
	if err := edge.MirrorAsset("lec-a"); err != nil {
		t.Fatal(err)
	}
	if inv := syncCat(edge, 4, []proto.CatalogAsset{{Name: "lec-b", Rev: 2}}, nil); len(inv) != 1 || inv[0] != "lec-a" {
		t.Fatalf("invalidated %v, want [lec-a]", inv)
	}

	// Stale catalogs (a lagging replica) must not undo a newer sync.
	if inv := syncCat(edge, 2, []proto.CatalogAsset{{Name: "lec-a", Rev: 1}}, nil); inv != nil {
		t.Fatalf("stale catalog invalidated %v", inv)
	}
	if got := edge.CatalogVersion(); got != 4 {
		t.Fatalf("catalog version = %d, want 4", got)
	}

	// Direct registrations the catalog never tracked are never touched.
	if _, err := edgeSrv.RegisterAsset("local-only", asf.NewReader(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
	syncCat(edge, 5, nil, nil)
	if _, ok := edgeSrv.Asset("local-only"); !ok {
		t.Fatal("direct registration dropped by catalog sync")
	}
}

// TestEdgeSyncCatalogDropsRemovedGroups: when a group definition leaves
// the catalog (or is re-cut), the edge forgets the local group and
// drops its mirrored variants — unless another live entry still wants
// them.
func TestEdgeSyncCatalogDropsRemovedGroups(t *testing.T) {
	origin, originTS := newOriginWithAsset(t, "grp-1-lean")
	data := encodeTestLecture(t, 2*time.Second, false)
	rich, err := origin.RegisterAsset("grp-1-rich", asf.NewReader(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	lean, _ := origin.Asset("grp-1-lean")
	g, err := origin.CreateRateGroup("grp-1")
	if err != nil {
		t.Fatal(err)
	}
	g.AddVariant(lean)
	g.AddVariant(rich)

	edgeSrv := streaming.NewServer(nil)
	edgeSrv.Pacing = false
	edge := NewEdge(originTS.URL, edgeSrv)

	syncCat(edge, 1, nil, []proto.CatalogGroup{{Name: "grp-1", Variants: []string{"grp-1-lean", "grp-1-rich"}, Rev: 1}})
	if err := edge.MirrorGroup("grp-1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := edgeSrv.RateGroup("grp-1"); !ok {
		t.Fatal("group not mirrored")
	}

	// The group leaves the catalog, but grp-1-lean is republished as a
	// standalone asset: the group and the rich variant go, lean stays.
	inv := syncCat(edge, 2, []proto.CatalogAsset{{Name: "grp-1-lean", Rev: 1}}, nil)
	if len(inv) != 1 || inv[0] != "grp-1-rich" {
		t.Fatalf("invalidated %v, want [grp-1-rich]", inv)
	}
	if _, ok := edgeSrv.RateGroup("grp-1"); ok {
		t.Fatal("removed group still mirrored")
	}
	if _, ok := edgeSrv.Asset("grp-1-lean"); !ok {
		t.Fatal("variant still wanted by the catalog was dropped")
	}
	if _, ok := edgeSrv.Asset("grp-1-rich"); ok {
		t.Fatal("orphaned variant still resident")
	}
}

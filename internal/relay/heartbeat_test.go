package relay

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestHeartbeatsSurviveRegistryDowntime guards the startup-ordering
// bugfix: an edge whose heartbeat loop starts while the registry is
// down (connection refused) must keep retrying with bounded backoff and
// join once the registry comes up — historically the first registration
// failure was fatal and the edge silently fell out of the cluster
// forever.
func TestHeartbeatsSurviveRegistryDowntime(t *testing.T) {
	g := NewRegistry(nil)
	defer g.Close()
	var up atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !up.Load() {
			// Sever the connection without an HTTP answer — the closest
			// httptest gets to a dead registry process.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("response writer is not hijackable")
				return
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		g.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	hb := &Heartbeats{
		Registry:        ts.URL,
		Info:            NodeInfo{ID: "e1", URL: "http://edge1:8081"},
		Snapshot:        func() NodeStats { return NodeStats{} },
		Interval:        5 * time.Millisecond,
		RegisterBackoff: time.Millisecond,
	}
	go func() { done <- hb.Run(ctx) }()

	// Let the loop hit the dead registry a few times, then revive it.
	time.Sleep(20 * time.Millisecond)
	if n := len(g.Nodes()); n != 0 {
		t.Fatalf("registered %d nodes while registry was down", n)
	}
	up.Store(true)
	testutil.WaitUntil(t, 10*time.Second, func() bool {
		return len(g.Nodes()) == 1
	}, "edge never joined after the registry came up")

	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
}

// TestHeartbeatsRejectionIsFatal: a 4xx on registration means the
// registry understood the request and said no — retrying a malformed
// NodeInfo can never succeed, so the loop must return the error instead
// of spinning.
func TestHeartbeatsRejectionIsFatal(t *testing.T) {
	g := NewRegistry(nil)
	defer g.Close()
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	hb := &Heartbeats{
		Registry: ts.URL,
		Info:     NodeInfo{ID: "", URL: "not-a-url"}, // rejected with 400
		Snapshot: func() NodeStats { return NodeStats{} },
		Interval: time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hb.Run(ctx); err == nil || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v, want the registry's rejection", err)
	}
}

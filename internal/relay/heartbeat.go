package relay

import (
	"context"
	"errors"
	"net/http"
	"time"

	"repro/internal/vclock"
)

// Heartbeats is a node's registry membership loop: register, post load
// snapshots every Interval, rejoin after a registry restart, and
// surface catalog-version movement to the node.
//
// The loop survives registry downtime. Historically the initial
// registration was fatal — an edge whose heartbeat loop started while
// the registry was restarting (connection refused) silently fell out of
// the cluster forever. Now transport-level registration failures retry
// with the same bounded exponential backoff the client failover path
// uses (FailoverBackoff on the loop's Clock), and heartbeat failures
// simply retry on the next tick; only a protocol rejection of the
// registration itself (a 4xx — the registry understood us and said no)
// is fatal, since retrying a malformed NodeInfo can never succeed.
type Heartbeats struct {
	// Client for all registry calls; nil uses http.DefaultClient.
	Client *http.Client
	// Registry is the registry's base URL.
	Registry string
	// Info identifies this node; it is re-sent on every (re)registration.
	Info NodeInfo
	// Snapshot produces the load snapshot each heartbeat posts.
	Snapshot func() NodeStats
	// Interval between heartbeats; <= 0 defaults to 5s.
	Interval time.Duration
	// Clock paces the loop (ticks and registration backoff); nil is the
	// real clock.
	Clock vclock.Clock
	// OnCatalog, when set, is called from the loop whenever the
	// registry's catalog version (carried on every heartbeat answer)
	// exceeds the largest version previously observed — the node's cue
	// to re-fetch the catalog (Edge.SyncCatalogFrom). Never called
	// concurrently with itself.
	OnCatalog func(version uint64)
	// RegisterBackoff is the base backoff between registration retries;
	// <= 0 defaults to 100ms. Attempts back off exponentially, capped at
	// 2s (FailoverBackoff).
	RegisterBackoff time.Duration
}

// Run drives the loop until ctx is cancelled. The first registration is
// retried through registry downtime as described on Heartbeats; once
// registered, a snapshot is posted immediately — the registry balances
// on the node's real load from its very first redirect instead of
// scoring the newcomer zero for a whole interval (without it, a swarm
// of joins arriving right after an edge registers piles onto the
// newcomer). The same applies after a registry restart: the loop
// re-registers on ErrUnknownNode and posts an immediate snapshot.
//
// Run does not deregister on cancellation: a draining caller that wants
// the registry told right away calls Deregister itself (cmd/lodserver
// does on SIGTERM), while a crash-simulation harness (loadgen churn)
// cancels silently and lets death detection do its job.
func (h *Heartbeats) Run(ctx context.Context) error {
	clock := h.Clock
	if clock == nil {
		clock = vclock.Real{}
	}
	interval := h.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if err := h.register(ctx, clock); err != nil {
		return err
	}
	var lastCatalog uint64
	h.beat(&lastCatalog)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-clock.After(interval):
			err := h.beat(&lastCatalog)
			// Rejoin only while the node is actually staying up: once ctx
			// is cancelled the node is shutting down, and a heartbeat that
			// raced a deliberate Deregister must not resurrect the entry.
			if errors.Is(err, ErrUnknownNode) && ctx.Err() == nil {
				// The registry restarted without its durable state (or
				// pruned us); rejoin so the cluster keeps routing clients
				// here, with an immediate snapshot for the same
				// score-from-real-load reason as at startup. Transport
				// failures here retry on the next tick rather than
				// blocking the beat cadence in a backoff sleep.
				if RegisterWith(h.Client, h.Registry, h.Info) == nil {
					_ = h.beat(&lastCatalog)
				}
			}
		}
	}
}

// register announces the node, retrying transport failures with bounded
// exponential backoff until ctx is cancelled. Only a protocol rejection
// (4xx) is returned as fatal.
func (h *Heartbeats) register(ctx context.Context, clock vclock.Clock) error {
	backoff := h.RegisterBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	for attempt := 1; ; attempt++ {
		err := RegisterWith(h.Client, h.Registry, h.Info)
		if err == nil {
			return nil
		}
		var he *httpError
		if errors.As(err, &he) && he.Status >= 400 && he.Status < 500 {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-clock.After(FailoverBackoff(backoff, attempt)):
		}
	}
}

// beat posts one snapshot and relays a grown catalog version to
// OnCatalog.
func (h *Heartbeats) beat(lastCatalog *uint64) error {
	ver, err := Heartbeat(h.Client, h.Registry, h.Info.ID, h.Snapshot())
	if err != nil {
		return err
	}
	if ver > *lastCatalog {
		*lastCatalog = ver
		if h.OnCatalog != nil {
			h.OnCatalog(ver)
		}
	}
	return nil
}

// RunHeartbeats registers the node, posts one snapshot from snap
// immediately, and then posts a fresh snapshot every interval until ctx
// is cancelled — the plain-function form of Heartbeats.Run, kept for
// callers that need no catalog sync.
func RunHeartbeats(ctx context.Context, client *http.Client, base string, info NodeInfo, snap func() NodeStats, interval time.Duration, clock vclock.Clock) error {
	h := &Heartbeats{Client: client, Registry: base, Info: info, Snapshot: snap, Interval: interval, Clock: clock}
	return h.Run(ctx)
}

package relay

import (
	"container/list"
	"sync"
)

// assetCache is the edge's byte-capacity LRU accounting over mirrored
// assets. It tracks names and sizes only — the bytes themselves live in
// the edge's streaming.Server — and decides which mirrors to drop when
// the configured capacity is exceeded, so an edge can serve an
// effectively unbounded catalog with bounded memory.
//
// Eviction never selects a pinned entry (one with active sessions or a
// rate-group membership, per the edge's pin predicate) nor the entry
// being demanded right now, so in-flight sessions always survive
// capacity pressure. If pins alone exceed capacity the cache runs over
// budget rather than breaking sessions; the budget is re-enforced on
// every later demand, so residency shrinks back once the pins release.
type assetCache struct {
	mu      sync.Mutex
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	total   int64
}

type cacheEntry struct {
	name string
	size int64
}

func newAssetCache() *assetCache {
	return &assetCache{ll: list.New(), entries: make(map[string]*list.Element)}
}

// add inserts name at the most-recently-used position, or refreshes an
// existing entry's size and recency.
func (c *assetCache) add(name string, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[name]; ok {
		c.total += size - el.Value.(*cacheEntry).size
		el.Value.(*cacheEntry).size = size
		c.ll.MoveToFront(el)
		return
	}
	c.entries[name] = c.ll.PushFront(&cacheEntry{name: name, size: size})
	c.total += size
}

// enforce evicts least-recently-used entries until the total fits
// capacity, skipping pinned entries and the named exception (the asset
// being demanded right now). It returns the evicted names, oldest
// first; the caller unregisters them from its server and counts them. A
// capacity of zero or less means unbounded: nothing is evicted.
func (c *assetCache) enforce(capacity int64, except string, pinned func(string) bool) []string {
	if capacity <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var evicted []string
	for el := c.ll.Back(); el != nil && c.total > capacity; {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		if e.name != except && !pinned(e.name) {
			c.ll.Remove(el)
			delete(c.entries, e.name)
			c.total -= e.size
			evicted = append(evicted, e.name)
		}
		el = prev
	}
	return evicted
}

// remove drops name from the accounting (catalog invalidation — the
// caller unregisters the asset itself), reporting whether it was
// tracked.
func (c *assetCache) remove(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[name]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.entries, name)
	c.total -= el.Value.(*cacheEntry).size
	return true
}

// touch marks name most recently used; unknown names are ignored.
func (c *assetCache) touch(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[name]; ok {
		c.ll.MoveToFront(el)
	}
}

// bytes returns the tracked total size.
func (c *assetCache) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// names returns the cached names, most recently used first.
func (c *assetCache) names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).name)
	}
	return out
}

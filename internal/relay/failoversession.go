package relay

// This file is the failover half of the client: one churn-tolerant
// session shared by internal/loadgen's virtual clients and cmd/lodplay
// -failover, so the retry/resume protocol exists exactly once. It
// lives in relay (not player) because the streaming package's tests
// import player, and player importing relay would close an import
// cycle through relay's streaming dependency.

import (
	"context"
	"errors"
	"io"
	"time"

	"repro/internal/player"
	"repro/internal/vclock"
)

// FailoverSession plays one stream through a cluster registry with
// churn tolerance: each attempt resolves Target via the fetcher (which
// reports dead edges and excludes them from the next pick), a stream
// severed mid-play resumes stored content at the last received media
// offset via ?start= (live sessions just rejoin), and the segments'
// metrics merge into one session. The resume offset is seeded from any
// start offset already in Target, so a seek session severed before its
// first media packet resumes at the original seek point, not 0:00.
type FailoverSession struct {
	// Fetcher resolves Target through the registry; required.
	Fetcher *StreamFetcher
	// Target is the stream path plus optional query, e.g.
	// /vod/lec-1?start=2s, in either the /v1 or the legacy form
	// (internal/client builds it with proto.StreamPath).
	Target string
	// Live marks a broadcast join: a severed live session rejoins the
	// channel as-is instead of seeking.
	Live bool
	// Attempts is how many extra registry round trips are made after a
	// failure; zero means the first failure ends the session.
	Attempts int
	// Backoff is the base of the bounded exponential delay between
	// attempts (FailoverBackoff).
	Backoff time.Duration
	// Player configures each segment's playback.
	Player player.Options
	// WrapBody, when set, wraps each attempt's response body before it
	// reaches the player — loadgen's link shaping and first-byte stamp.
	WrapBody func(io.Reader) io.Reader
	// OnRetry, when set, observes each failure that will be retried:
	// edge names the failed edge host, empty when the registry leg
	// failed (no live edge, transport error).
	OnRetry func(edge string, err error)
	// Clock times the backoff between attempts; nil uses the real
	// clock. A simulated clock makes failover schedules deterministic
	// under test.
	Clock vclock.Clock
}

// Run executes the session until clean end, exhausted attempts, or ctx
// cancellation. It returns the merged metrics of every segment (never
// nil), the last edge host contacted, and the final error (nil when
// the stream completed).
func (s *FailoverSession) Run(ctx context.Context) (*player.Metrics, string, error) {
	clock := s.Clock
	if clock == nil {
		clock = vclock.Real{}
	}
	agg := &player.Metrics{}
	attempts := s.Attempts + 1
	resumeAt := StartOf(s.Target)
	resuming := false
	var lastEdge string
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		cur := s.Target
		if resuming && !s.Live {
			cur = WithStart(s.Target, resumeAt)
		}
		resp, edge, err := s.Fetcher.Fetch(ctx, cur)
		if edge != "" {
			lastEdge = edge
		}
		if err != nil {
			lastErr = err
			if !Retryable(err) || attempt == attempts || ctx.Err() != nil {
				break
			}
			if s.OnRetry != nil {
				var fe *FetchError
				errors.As(err, &fe)
				s.OnRetry(fe.Edge, err)
			}
			if !sleepCtx(ctx, clock, FailoverBackoff(s.Backoff, attempt)) {
				break
			}
			continue
		}

		body := io.Reader(resp.Body)
		if s.WrapBody != nil {
			body = s.WrapBody(body)
		}
		m, err := player.New(s.Player).Play(body)
		resp.Body.Close()
		if m != nil {
			if m.FinalURL == "" && resp.Request != nil && resp.Request.URL != nil {
				m.FinalURL = resp.Request.URL.String()
			}
			if last := m.LastPTS(); last > resumeAt {
				resumeAt = last
			}
			agg.Merge(m)
		}
		if err == nil {
			return agg, lastEdge, nil
		}
		// The stream severed mid-play: the edge died under us. Tell the
		// registry, never go back there, resume elsewhere.
		lastErr = err
		s.Fetcher.Fail(edge)
		if attempt == attempts || ctx.Err() != nil {
			break
		}
		if s.OnRetry != nil {
			s.OnRetry(edge, err)
		}
		resuming = true
		if !sleepCtx(ctx, clock, FailoverBackoff(s.Backoff, attempt)) {
			break
		}
	}
	return agg, lastEdge, lastErr
}

// sleepCtx waits for d or until ctx is cancelled, reporting whether the
// full wait elapsed.
func sleepCtx(ctx context.Context, clock vclock.Clock, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	select {
	case <-clock.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

package relay

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/vclock"
)

// TestRegistryServesBothAPIVersions pins the /v1 rollout rule: every
// registry route answers under the /v1 prefix and its legacy alias,
// and redirects preserve whichever form the client spoke — a /v1
// client lands on the edge's /v1 path, a legacy client on the legacy
// path.
func TestRegistryServesBothAPIVersions(t *testing.T) {
	g := NewRegistry(nil)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	mustRegister(t, g, NodeInfo{ID: "e1", URL: "http://edge1:8081"})

	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	for _, tc := range []struct{ path, wantLoc string }{
		{"/v1/vod/lec?start=2s", "http://edge1:8081/v1/vod/lec?start=2s"},
		{"/vod/lec?start=2s", "http://edge1:8081/vod/lec?start=2s"},
		{"/v1/live/class", "http://edge1:8081/v1/live/class"},
		{"/v1/group/g", "http://edge1:8081/v1/group/g"},
		{"/v1/vod/week%2F1", "http://edge1:8081/v1/vod/week%2F1"},
	} {
		resp, err := noFollow.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTemporaryRedirect {
			t.Fatalf("GET %s status = %d, want 307", tc.path, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != tc.wantLoc {
			t.Fatalf("GET %s Location = %q, want %q", tc.path, loc, tc.wantLoc)
		}
	}

	// The node listing answers on both forms with identical content.
	for _, path := range []string{proto.PathNodes, proto.Versioned(proto.PathNodes)} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var nodes []NodeStatus
		if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if len(nodes) != 1 || nodes[0].ID != "e1" || nodes[0].Health != proto.HealthAlive {
			t.Fatalf("GET %s nodes = %+v", path, nodes)
		}
	}
}

// TestRegistryNoEdgeErrorBody: the 503 refusal carries the typed proto
// error body on the redirect path.
func TestRegistryNoEdgeErrorBody(t *testing.T) {
	g := NewRegistry(nil)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/vod/lec")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	perr := proto.ReadError(resp)
	if perr.Status != http.StatusServiceUnavailable || perr.Message == "" {
		t.Fatalf("error body = %+v", perr)
	}
}

// TestRegistryNodesReportHealthAndAge covers the per-node health view:
// alive within TTL, dead past it (or on a failure report), draining
// after a deregistration, with heartbeat ages on the virtual clock.
func TestRegistryNodesReportHealthAndAge(t *testing.T) {
	clk := vclock.NewVirtual()
	g := NewRegistry(clk)
	mustRegister(t, g,
		NodeInfo{ID: "a", URL: "http://edge-a:8081"},
		NodeInfo{ID: "b", URL: "http://edge-b:8081"},
		NodeInfo{ID: "c", URL: "http://edge-c:8081"})

	clk.Advance(3 * time.Second)
	if err := g.Heartbeat("a", NodeStats{}); err != nil {
		t.Fatal(err)
	}
	g.ReportFailure("b")
	g.Deregister("c")

	byID := map[string]NodeStatus{}
	for _, n := range g.Nodes() {
		byID[n.ID] = n
	}
	if n := byID["a"]; n.Health != proto.HealthAlive || !n.Alive || n.HeartbeatAgeSec != 0 {
		t.Fatalf("a = %+v, want alive with a fresh heartbeat", n)
	}
	if n := byID["b"]; n.Health != proto.HealthDead || n.Alive || !n.Dead || n.HeartbeatAgeSec != 3 {
		t.Fatalf("b = %+v, want dead at age 3s", n)
	}
	if n := byID["c"]; n.Health != proto.HealthDraining || n.Alive {
		t.Fatalf("c = %+v, want draining", n)
	}

	// Past the TTL a silent node reads dead even without a report.
	clk.Advance(DefaultNodeTTL + time.Second)
	for _, n := range g.Nodes() {
		if n.ID == "a" && n.Health != proto.HealthDead {
			t.Fatalf("a past TTL = %+v, want dead", n)
		}
	}
}

// TestRegistryPrunesLongGoneNodes: Deregister marks rather than
// deletes, so pruning is the registry's only removal path — dead and
// drained nodes must fall out of the table after the grace window, or
// a long-lived registry fronting edges on ephemeral addresses would
// grow its node table (and every Nodes scan) without bound.
func TestRegistryPrunesLongGoneNodes(t *testing.T) {
	clk := vclock.NewVirtual()
	g := NewRegistry(clk)
	mustRegister(t, g,
		NodeInfo{ID: "stays", URL: "http://edge-a:8081"},
		NodeInfo{ID: "drained", URL: "http://edge-b:8081"},
		NodeInfo{ID: "crashed", URL: "http://edge-c:8081"})
	g.Deregister("drained")
	g.ReportFailure("crashed")

	// Within the grace window everything is still visible.
	clk.Advance(2 * DefaultNodeTTL)
	if err := g.Heartbeat("stays", NodeStats{}); err != nil {
		t.Fatal(err)
	}
	if got := len(g.Nodes()); got != 3 {
		t.Fatalf("nodes within grace window = %d, want 3", got)
	}

	// Past pruneAfterTTLs of silence the corpse and the drained node
	// fall out (unseen since t=0, now 5 TTLs ago); the node that kept
	// heartbeating survives — its silence is only 3 TTLs.
	clk.Advance(3*DefaultNodeTTL + time.Second)
	if err := g.Heartbeat("stays", NodeStats{}); err != nil {
		t.Fatal(err)
	}
	nodes := g.Nodes()
	if len(nodes) != 1 || nodes[0].ID != "stays" {
		t.Fatalf("nodes after prune = %+v, want only the live one", nodes)
	}
	// A pruned node is unknown again: its next heartbeat 404s and the
	// RunHeartbeats loop re-registers, exactly like after a registry
	// restart.
	if err := g.Heartbeat("crashed", NodeStats{}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("heartbeat for pruned node = %v, want ErrUnknownNode", err)
	}
	mustRegister(t, g, NodeInfo{ID: "crashed", URL: "http://edge-c:8081"})
	if got := len(g.Nodes()); got != 2 {
		t.Fatalf("nodes after rejoin = %d, want 2", got)
	}
}

package relay

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchRegistry builds a registry with n live edges.
func benchRegistry(b *testing.B, n int) *Registry {
	b.Helper()
	g := NewRegistry(nil)
	for i := 1; i <= n; i++ {
		if err := g.Register(NodeInfo{ID: fmt.Sprintf("edge-%d", i), URL: fmt.Sprintf("http://edge-%d.lod", i)}); err != nil {
			b.Fatal(err)
		}
	}
	return g
}

// BenchmarkRegistryPickFor measures the raw redirect decision — the
// consistent-hash lookup plus validation and load accounting — across
// fleet sizes. This is the number BENCH_scale.json's redirectsPerSec
// is bounded by; b.ReportAllocs keeps the alloc/op regression visible
// next to the ns/op one.
func BenchmarkRegistryPickFor(b *testing.B) {
	for _, edges := range []int{3, 16, 64} {
		b.Run(fmt.Sprintf("%dedges", edges), func(b *testing.B) {
			g := benchRegistry(b, edges)
			keys := make([]string, 256)
			for i := range keys {
				keys[i] = fmt.Sprintf("/vod/lec-%d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.PickFor(keys[i%len(keys)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRegistryPickForExcluded is the failover-path variant: a
// populated exclude list resolved through the byRef index instead of
// the old per-request scan over every node.
func BenchmarkRegistryPickForExcluded(b *testing.B) {
	g := benchRegistry(b, 16)
	exclude := []string{"edge-2.lod", "edge-5"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.PickFor("/vod/lec-1", exclude...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistryRedirect measures the full HTTP redirect surface —
// mux, exclude-header parse, keyed pick, Location header — the
// requests-per-second a single registry process can answer.
func BenchmarkRegistryRedirect(b *testing.B) {
	for _, edges := range []int{3, 16} {
		b.Run(fmt.Sprintf("%dedges", edges), func(b *testing.B) {
			g := benchRegistry(b, edges)
			h := g.Handler()
			req := httptest.NewRequest(http.MethodGet, "/v1/vod/lec-42?start=1500ms", nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusTemporaryRedirect {
					b.Fatalf("status %d", w.Code)
				}
			}
		})
	}
}

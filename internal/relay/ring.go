package relay

import (
	"sort"
	"strconv"
)

// ringVnodes is how many virtual nodes each edge contributes to the
// consistent-hash ring. More vnodes smooth the key distribution (the
// per-node share concentrates around 1/n as vnodes grow) at the cost of
// a larger sorted array; 128 keeps a 64-edge ring under 8k entries and
// the balance within the bounds the ring property tests state.
const ringVnodes = 128

// hashRing maps stream keys onto edge nodes with consistent hashing:
// every eligible node owns ringVnodes points on a 64-bit circle, and a
// key belongs to the first point clockwise from its own hash. Redirects
// become computable — an O(log n·v) binary search instead of a
// per-request scan of the node table — and each asset concentrates on
// one edge, so a 16-edge cluster mirrors an asset once instead of
// sixteen times.
//
// A ring is immutable after build. The Registry rebuilds it whenever
// eligibility membership changes (register, revive, death, drain,
// prune) and swaps it atomically; readers load the pointer without the
// registry lock, so a Pick never observes a torn ring. Liveness is NOT
// baked in: a ring entry can go stale (TTL expiry races no rebuild), so
// Pick re-validates the chosen node under the lock and falls back to
// least-loaded when the preferred node is dead, draining, expired, or
// excluded.
type hashRing struct {
	hashes []uint64   // sorted vnode positions
	nodes  []*regNode // nodes[i] owns hashes[i]
}

// buildRing constructs the ring over the given nodes. A ring over zero
// nodes is valid and matches nothing.
func buildRing(nodes []*regNode) *hashRing {
	r := &hashRing{
		hashes: make([]uint64, 0, len(nodes)*ringVnodes),
		nodes:  make([]*regNode, 0, len(nodes)*ringVnodes),
	}
	type point struct {
		hash uint64
		node *regNode
	}
	points := make([]point, 0, len(nodes)*ringVnodes)
	for _, n := range nodes {
		for v := 0; v < ringVnodes; v++ {
			h := fnv1a(n.info.ID + "#" + strconv.Itoa(v))
			points = append(points, point{hash: h, node: n})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Hash collisions between vnodes are astronomically unlikely but
		// must not make the ring build order-dependent.
		return points[i].node.info.ID < points[j].node.info.ID
	})
	for _, p := range points {
		r.hashes = append(r.hashes, p.hash)
		r.nodes = append(r.nodes, p.node)
	}
	return r
}

// pick returns the node owning key: the first vnode clockwise from the
// key's hash, wrapping at the top of the circle. Nil on an empty ring.
// Zero allocations — this is the redirect hot path.
func (r *hashRing) pick(key string) *regNode {
	if len(r.hashes) == 0 {
		return nil
	}
	h := fnv1a(key)
	// First vnode position >= h; sort.Search is alloc-free.
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.nodes[i]
}

// fnv1a is the 64-bit FNV-1a hash with a murmur-style finalizer,
// inlined over the string so the hot path never allocates a
// hash.Hash64. Raw FNV-1a clusters on short, similar strings (vnode
// labels and asset paths differ in a suffix digit or two), which skews
// ring positions badly; the fmix64 avalanche spreads them over the full
// 64-bit circle.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

package relay

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/proto"
	"repro/internal/vclock"
)

// openStore opens a catalog store rooted in dir, failing the test on error.
func openStore(t *testing.T, dir string) *catalog.Store {
	t.Helper()
	st, err := catalog.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRegistryRestoresNodesFromSnapshot: a restarted registry must serve
// redirects from its persisted node table before any edge re-heartbeats
// — that window is exactly what the durable control plane buys.
func TestRegistryRestoresNodesFromSnapshot(t *testing.T) {
	dir := t.TempDir()

	g1 := NewRegistryWithStore(nil, openStore(t, dir))
	if err := g1.Register(NodeInfo{ID: "e1", URL: "http://edge1:8081"}); err != nil {
		t.Fatal(err)
	}
	if err := g1.Register(NodeInfo{ID: "e2", URL: "http://edge2:8081"}); err != nil {
		t.Fatal(err)
	}
	g1.Close()

	g2 := NewRegistryWithStore(nil, openStore(t, dir))
	defer g2.Close()
	if got := len(g2.Nodes()); got != 2 {
		t.Fatalf("restored %d nodes, want 2", got)
	}

	// Redirects flow before any heartbeat, and each one is counted as
	// served on snapshot faith.
	if _, err := g2.PickFor("/vod/lec-1"); err != nil {
		t.Fatalf("pick from restored registry: %v", err)
	}
	snap := g2.Metrics().Snapshot()
	if got := snap.Get("lod_registry_snapshot_redirects_total"); got != 1 {
		t.Fatalf("snapshot redirects = %v, want 1", got)
	}

	// Once a node heartbeats it has spoken for itself: picks landing on
	// it stop counting as snapshot-served.
	for _, id := range []string{"e1", "e2"} {
		if err := g2.Heartbeat(id, NodeStats{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := g2.PickFor("/vod/lec-1"); err != nil {
			t.Fatal(err)
		}
	}
	snap = g2.Metrics().Snapshot()
	if got := snap.Get("lod_registry_snapshot_redirects_total"); got != 1 {
		t.Fatalf("snapshot redirects after heartbeats = %v, want still 1", got)
	}
}

// TestRegistryRestoredDrainingStaysDraining: a drain is the node's own
// deliberate exit; neither a registry restart nor a stray heartbeat may
// put the node back into rotation — only an explicit re-registration.
func TestRegistryRestoredDrainingStaysDraining(t *testing.T) {
	dir := t.TempDir()

	g1 := NewRegistryWithStore(nil, openStore(t, dir))
	if err := g1.Register(NodeInfo{ID: "e1", URL: "http://edge1:8081"}); err != nil {
		t.Fatal(err)
	}
	if !g1.Deregister("e1") {
		t.Fatal("deregister reported no-op")
	}
	g1.Close()

	g2 := NewRegistryWithStore(nil, openStore(t, dir))
	defer g2.Close()
	nodes := g2.Nodes()
	if len(nodes) != 1 || nodes[0].Health != proto.HealthDraining {
		t.Fatalf("restored nodes = %+v, want e1 draining", nodes)
	}
	if _, err := g2.Pick(); err == nil {
		t.Fatal("restored draining node was picked")
	}
	// A heartbeat racing the restart must not undo the drain either.
	if err := g2.Heartbeat("e1", NodeStats{}); err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Pick(); err == nil {
		t.Fatal("draining node picked after heartbeat")
	}
	// Re-registration is the deliberate comeback.
	if err := g2.Register(NodeInfo{ID: "e1", URL: "http://edge1:8081"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Pick(); err != nil {
		t.Fatalf("pick after re-registration: %v", err)
	}
}

// TestRegistryPruneRemovesFromStore: a node unseen for four TTLs falls
// out of the live table AND the durable record — otherwise a restart
// would resurrect corpses the running registry already forgot.
func TestRegistryPruneRemovesFromStore(t *testing.T) {
	dir := t.TempDir()
	clk := vclock.NewVirtual()

	g1 := NewRegistryWithStore(clk, openStore(t, dir))
	if err := g1.Register(NodeInfo{ID: "stale", URL: "http://stale:8081"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Duration(pruneAfterTTLs)*DefaultNodeTTL + time.Second)
	// Registering a fresh node triggers the prune sweep.
	if err := g1.Register(NodeInfo{ID: "fresh", URL: "http://fresh:8081"}); err != nil {
		t.Fatal(err)
	}
	if nodes := g1.Nodes(); len(nodes) != 1 || nodes[0].ID != "fresh" {
		t.Fatalf("nodes after prune = %+v, want only fresh", nodes)
	}
	g1.Close()

	g2 := NewRegistryWithStore(clk, openStore(t, dir))
	defer g2.Close()
	if nodes := g2.Nodes(); len(nodes) != 1 || nodes[0].ID != "fresh" {
		t.Fatalf("restored nodes = %+v, want only fresh (stale pruned from store)", nodes)
	}
}

// TestRegistryCatalogHTTPRoundTrip drives the catalog over the wire:
// publish, list, version header movement, unpublish, and the 404 for
// content the catalog never knew.
func TestRegistryCatalogHTTPRoundTrip(t *testing.T) {
	g := NewRegistry(nil)
	defer g.Close()
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	v1, err := PublishCatalog(nil, ts.URL, proto.PublishMsg{Asset: &proto.CatalogAsset{Name: "lec-1"}})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := PublishCatalog(nil, ts.URL, proto.PublishMsg{
		Group: &proto.CatalogGroup{Name: "grp-1", Variants: []string{"grp-1-lean", "grp-1-rich"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v2 <= v1 {
		t.Fatalf("catalog version did not advance: %d then %d", v1, v2)
	}

	cat, err := GetCatalog(nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Version != v2 || len(cat.Assets) != 1 || len(cat.Groups) != 1 {
		t.Fatalf("catalog = %+v", cat)
	}
	if cat.Assets[0].Name != "lec-1" || cat.Assets[0].Rev != v1 {
		t.Fatalf("asset entry = %+v, want lec-1 rev %d", cat.Assets[0], v1)
	}

	// Every heartbeat answer carries the current catalog version — the
	// change-propagation signal edges key their re-fetch on.
	if err := RegisterWith(nil, ts.URL, NodeInfo{ID: "e1", URL: "http://edge1:8081"}); err != nil {
		t.Fatal(err)
	}
	ver, err := Heartbeat(nil, ts.URL, "e1", NodeStats{})
	if err != nil {
		t.Fatal(err)
	}
	// Registration persisted a node record, so the version kept moving;
	// it can only be at or past the last publish.
	if ver < v2 {
		t.Fatalf("heartbeat catalog version = %d, want >= %d", ver, v2)
	}

	if _, err := UnpublishCatalog(nil, ts.URL, proto.UnpublishMsg{Asset: "lec-1"}); err != nil {
		t.Fatal(err)
	}
	cat, err = GetCatalog(nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Assets) != 0 {
		t.Fatalf("assets after unpublish = %+v", cat.Assets)
	}
	// Unknown names answer 404 — and recognizably so, since unpublish
	// tooling treats "already gone" as skippable (IsNotFound).
	if _, err := UnpublishCatalog(nil, ts.URL, proto.UnpublishMsg{Asset: "never-there"}); err == nil {
		t.Fatal("unpublishing unknown asset succeeded")
	} else if !IsNotFound(err) {
		t.Fatalf("unknown unpublish = %v, want a recognizable 404", err)
	}
}

// TestRegistryListingsServeCachedBytes: the node-health and catalog
// listings are served from persisted/cached bytes — zero marshal work
// per request on the hot path.
func TestRegistryListingsServeCachedBytes(t *testing.T) {
	g := NewRegistry(nil)
	defer g.Close()
	if err := g.Register(NodeInfo{ID: "e1", URL: "http://edge1:8081"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.PublishAsset("lec-1"); err != nil {
		t.Fatal(err)
	}

	// Prime both caches, then the steady state must not allocate.
	g.NodesJSON()
	g.CatalogJSON()
	if avg := testing.AllocsPerRun(100, func() { g.CatalogJSON() }); avg != 0 {
		t.Fatalf("CatalogJSON allocs/request = %v, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { g.NodesJSON() }); avg != 0 {
		t.Fatalf("NodesJSON allocs/request = %v, want 0", avg)
	}

	// A mutation must invalidate the cached nodes listing.
	before := string(g.NodesJSON())
	if err := g.Register(NodeInfo{ID: "e2", URL: "http://edge2:8081"}); err != nil {
		t.Fatal(err)
	}
	if after := string(g.NodesJSON()); after == before {
		t.Fatal("nodes listing unchanged after registration")
	}
}

// BenchmarkRegistryNodesJSON measures the cached node-listing hot path;
// run with -benchmem, the regression bound is 0 allocs/op.
func BenchmarkRegistryNodesJSON(b *testing.B) {
	g := NewRegistry(nil)
	defer g.Close()
	for i := 0; i < 16; i++ {
		if err := g.Register(NodeInfo{ID: string(rune('a' + i)), URL: "http://edge:8081"}); err != nil {
			b.Fatal(err)
		}
	}
	g.NodesJSON()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.NodesJSON()
	}
}

// BenchmarkRegistryCatalogJSON measures the persisted-bytes catalog
// listing; the regression bound is 0 allocs/op.
func BenchmarkRegistryCatalogJSON(b *testing.B) {
	g := NewRegistry(nil)
	defer g.Close()
	for i := 0; i < 32; i++ {
		if _, err := g.PublishAsset(string(rune('a' + i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CatalogJSON()
	}
}

// TestRegistryCatalogRollbackHTTP exercises the rollback endpoint end
// to end: publish, mutate, roll back to the earlier snapshot, and
// confirm the content is restored under a strictly higher catalog
// version. Unknown snapshot versions answer a recognizable 404.
func TestRegistryCatalogRollbackHTTP(t *testing.T) {
	dir := t.TempDir()
	g := NewRegistryWithStore(nil, openStore(t, dir))
	defer g.Close()
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	v1, err := PublishCatalog(nil, ts.URL, proto.PublishMsg{Asset: &proto.CatalogAsset{Name: "lec-1"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnpublishCatalog(nil, ts.URL, proto.UnpublishMsg{Asset: "lec-1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := PublishCatalog(nil, ts.URL, proto.PublishMsg{Asset: &proto.CatalogAsset{Name: "lec-2"}}); err != nil {
		t.Fatal(err)
	}

	ver, err := RollbackCatalog(nil, ts.URL, v1)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := GetCatalog(nil, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Version != ver || ver <= v1 {
		t.Fatalf("post-rollback version = %d (catalog %d), want > %d", ver, cat.Version, v1)
	}
	if len(cat.Assets) != 1 || cat.Assets[0].Name != "lec-1" {
		t.Fatalf("post-rollback assets = %+v, want only lec-1", cat.Assets)
	}

	if _, err := RollbackCatalog(nil, ts.URL, 9999); err == nil {
		t.Fatal("rollback to unknown version succeeded")
	} else if !IsNotFound(err) {
		t.Fatalf("unknown-version rollback = %v, want a recognizable 404", err)
	}
}

package relay

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/edgecache"
	"repro/internal/streaming"
	"repro/internal/testutil"
	"repro/internal/vclock"
)

// registerTestAsset encodes a small lecture and registers it on the
// origin under the given name.
func registerTestAsset(t *testing.T, origin *streaming.Server, name string) {
	t.Helper()
	data := encodeTestLecture(t, 2*time.Second, false)
	if _, err := origin.RegisterAsset(name, asf.NewReader(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeCacheAdmissionUnderPressure drives real mirror traffic
// through an edge whose byte budget holds fewer assets than the origin
// offers. Under the default TinyLFU policy the first-admitted asset is
// protected: the overflow demand loses the frequency duel against it
// and is admission-rejected, rather than the oldest mirror being
// evicted LRU-style.
func TestEdgeCacheAdmissionUnderPressure(t *testing.T) {
	origin := streaming.NewServer(nil)
	origin.Pacing = false
	const assets = 3
	for i := 0; i < assets; i++ {
		registerTestAsset(t, origin, fmt.Sprintf("lec%d", i))
	}
	originTS := httptest.NewServer(origin.Handler())
	defer originTS.Close()

	a, _ := origin.Asset("lec0")
	assetBytes := a.Bytes()

	edgeSrv := streaming.NewServer(nil)
	edgeSrv.Pacing = false
	edge := NewEdge(originTS.URL, edgeSrv)
	edge.CacheBytes = 2 * assetBytes // room for two of the three
	edgeTS := httptest.NewServer(edge.Handler())
	defer edgeTS.Close()

	// Demand all three. Mirroring lec2 overflows the budget: lec1 (the
	// window's coldest unpinned entry, frequency 1) duels lec0 (also
	// frequency 1) and loses the strictly-greater test, so lec1 is
	// rejected and lec0 keeps its seat.
	for i := 0; i < assets; i++ {
		readStream(t, edgeTS.URL+fmt.Sprintf("/vod/lec%d", i))
	}
	if _, ok := edgeSrv.Asset("lec0"); !ok {
		t.Fatal("lec0 lost its seat to a one-hit wonder")
	}
	if _, ok := edgeSrv.Asset("lec1"); ok {
		t.Fatal("lec1 survived the admission duel")
	}
	if _, ok := edgeSrv.Asset("lec2"); !ok {
		t.Fatal("lec2 missing right after its mirror")
	}
	if got := edge.inst.rejects.Value(); got != 1 {
		t.Fatalf("admission rejects = %d, want 1", got)
	}
	if got := edge.inst.evictions.Value(); got != 0 {
		t.Fatalf("evictions = %d, want 0 (rejection, not eviction)", got)
	}
	if got := edge.inst.misses.Value(); got != 3 {
		t.Fatalf("misses = %d, want 3", got)
	}
	if got := edge.inst.cacheBytes.Value(); got != 2*assetBytes {
		t.Fatalf("cache bytes gauge = %d, want %d", got, 2*assetBytes)
	}
	if got := edge.inst.originBytes.Value(); got <= 0 {
		t.Fatal("no origin bytes counted")
	}

	// A repeat demand of the protected asset is a pure cache hit and
	// raises its frequency estimate further.
	readStream(t, edgeTS.URL+"/vod/lec0")
	if got := edge.inst.hits.Value(); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}

	// Re-demanding the rejected asset re-mirrors it (a miss), and the
	// churn lands on lec2 — never on lec0, whose estimate is now higher.
	readStream(t, edgeTS.URL+"/vod/lec1")
	if _, ok := edgeSrv.Asset("lec0"); !ok {
		t.Fatal("hot lec0 displaced by cold churn")
	}
	if got := edge.inst.misses.Value(); got != 4 {
		t.Fatalf("misses after re-mirror = %d, want 4", got)
	}
	if got := origin.Stats().MirrorFetches; got != 4 {
		t.Fatalf("origin mirror fetches = %d, want 4", got)
	}
	stats := edge.CacheStats()
	if len(stats) == 0 || stats[0].Name != "lec0" {
		t.Fatalf("cache stats = %v, want lec0 first", stats)
	}
	if stats[0].Hits != 1 || stats[0].Pulls != 1 {
		t.Fatalf("lec0 ledger = %+v, want 1 hit / 1 pull", stats[0])
	}
}

// TestEdgeCacheLRUPolicyEvictsUnderPressure pins the edge to the plain
// LRU policy (the before/after baseline) and checks the classic
// behaviour: the least recently demanded mirror is evicted, and the
// evicted asset is re-pulled on its next demand.
func TestEdgeCacheLRUPolicyEvictsUnderPressure(t *testing.T) {
	origin := streaming.NewServer(nil)
	origin.Pacing = false
	const assets = 3
	for i := 0; i < assets; i++ {
		registerTestAsset(t, origin, fmt.Sprintf("lec%d", i))
	}
	originTS := httptest.NewServer(origin.Handler())
	defer originTS.Close()

	a, _ := origin.Asset("lec0")
	assetBytes := a.Bytes()

	edgeSrv := streaming.NewServer(nil)
	edgeSrv.Pacing = false
	edge := NewEdge(originTS.URL, edgeSrv)
	edge.ConfigureCache(edgecache.Config{Policy: edgecache.LRU})
	edge.CacheBytes = 2 * assetBytes
	edgeTS := httptest.NewServer(edge.Handler())
	defer edgeTS.Close()

	// Demand all three: mirroring lec2 must push out lec0 (the least
	// recently demanded).
	for i := 0; i < assets; i++ {
		readStream(t, edgeTS.URL+fmt.Sprintf("/vod/lec%d", i))
	}
	if _, ok := edgeSrv.Asset("lec0"); ok {
		t.Fatal("lec0 survived capacity pressure")
	}
	if got := edge.inst.evictions.Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := edge.inst.rejects.Value(); got != 0 {
		t.Fatalf("admission rejects = %d, want 0 under LRU", got)
	}
	if got := edge.inst.misses.Value(); got != 3 {
		t.Fatalf("misses = %d, want 3", got)
	}

	// The evicted asset is simply re-mirrored on its next demand (counted
	// as a miss), evicting the new LRU (lec1).
	readStream(t, edgeTS.URL+"/vod/lec0")
	if _, ok := edgeSrv.Asset("lec0"); !ok {
		t.Fatal("lec0 not re-mirrored after eviction")
	}
	if _, ok := edgeSrv.Asset("lec1"); ok {
		t.Fatal("lec1 survived the re-mirror of lec0")
	}
	if got := edge.inst.misses.Value(); got != 4 {
		t.Fatalf("misses after re-mirror = %d, want 4", got)
	}

	// A repeat demand of resident content is a pure cache hit.
	readStream(t, edgeTS.URL+"/vod/lec0")
	if got := edge.inst.hits.Value(); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if got := origin.Stats().MirrorFetches; got != 4 {
		t.Fatalf("origin mirror fetches = %d, want 4", got)
	}
}

// TestEdgeCoalescesConcurrentPulls holds the origin's /fetch response
// open while more demands for the same asset pile up: every later
// demand must attach to the in-flight pull instead of issuing its own,
// so the origin sees exactly one mirror fetch.
func TestEdgeCoalescesConcurrentPulls(t *testing.T) {
	origin := streaming.NewServer(nil)
	origin.Pacing = false
	registerTestAsset(t, origin, "hot")
	base := origin.Handler()

	arrived := make(chan struct{}, 1)
	release := make(chan struct{})
	originTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.Contains(r.URL.Path, "/fetch/") {
			arrived <- struct{}{}
			<-release
		}
		base.ServeHTTP(w, r)
	}))
	defer originTS.Close()

	edgeSrv := streaming.NewServer(nil)
	edgeSrv.Pacing = false
	edge := NewEdge(originTS.URL, edgeSrv)

	const demands = 9
	errs := make(chan error, demands)
	go func() { errs <- edge.MirrorAsset("hot") }()
	<-arrived // the leader's pull is in flight and parked at the origin
	for i := 1; i < demands; i++ {
		go func() { errs <- edge.MirrorAsset("hot") }()
	}
	// Give the followers a moment to reach the flight, then let the
	// leader's fetch finish. A straggler scheduled after completion
	// short-circuits as a cache hit — also fine, also not a second pull.
	time.Sleep(50 * time.Millisecond)
	close(release)
	for i := 0; i < demands; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("demand %d: %v", i, err)
		}
	}
	if got := origin.Stats().MirrorFetches; got != 1 {
		t.Fatalf("origin mirror fetches = %d, want 1", got)
	}
	// Every demand either led (1), attached (coalesced), or arrived
	// after completion (hit): the three must account for all of them.
	coalesced := edge.inst.coalesced.Value()
	hits := edge.inst.hits.Value()
	if coalesced+hits+1 != demands {
		t.Fatalf("coalesced %d + hits %d + 1 leader != %d demands", coalesced, hits, demands)
	}
	if coalesced == 0 {
		t.Fatal("no demand coalesced onto the in-flight pull")
	}
}

// TestEdgeCachePinsStreamingAsset parks a paced VOD session on a virtual
// clock mid-stream and applies eviction pressure: the streaming asset is
// pinned and must survive, and the parked session must then complete
// intact.
func TestEdgeCachePinsStreamingAsset(t *testing.T) {
	origin := streaming.NewServer(nil)
	origin.Pacing = false
	for _, name := range []string{"hot", "cold1", "cold2"} {
		registerTestAsset(t, origin, name)
	}
	originTS := httptest.NewServer(origin.Handler())
	defer originTS.Close()

	a, _ := origin.Asset("hot")
	assetBytes := a.Bytes()

	clk := vclock.NewVirtual()
	edgeSrv := streaming.NewServer(clk) // paced: sessions park on the virtual clock
	edge := NewEdge(originTS.URL, edgeSrv)
	edge.CacheBytes = 2 * assetBytes
	edgeTS := httptest.NewServer(edge.Handler())
	defer edgeTS.Close()

	// Start a session on "hot" and wait until it is booked as active; it
	// then sits in the pacing wait on the virtual clock.
	type result struct {
		pkts int
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(edgeTS.URL + "/vod/hot")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		r := asf.NewReader(resp.Body)
		if _, err := r.ReadHeader(); err != nil {
			done <- result{err: err}
			return
		}
		var pkts int
		for {
			if _, err := r.ReadPacket(); err != nil {
				done <- result{pkts: pkts}
				return
			}
			pkts++
		}
	}()
	testutil.WaitUntil(t, 10*time.Second, func() bool { return edgeSrv.AssetActiveSessions("hot") > 0 },
		"session on hot never started")

	// Two more mirrors exceed the budget while "hot" is mid-stream. The
	// capacity pressure must land on cold1, never on the pinned hot
	// asset.
	if err := edge.MirrorAsset("cold1"); err != nil {
		t.Fatal(err)
	}
	if err := edge.MirrorAsset("cold2"); err != nil {
		t.Fatal(err)
	}
	if _, ok := edgeSrv.Asset("hot"); !ok {
		t.Fatal("streaming asset was evicted")
	}
	if _, ok := edgeSrv.Asset("cold1"); ok {
		t.Fatal("cold1 survived although hot was pinned")
	}
	if got := edge.inst.evictions.Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}

	// Release the parked session: advance virtual time past the lecture
	// end and confirm the in-flight stream finished undamaged.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				clk.Advance(100 * time.Millisecond)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("pinned session failed: %v", res.err)
		}
		if res.pkts == 0 {
			t.Fatal("pinned session delivered no packets")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pinned session never finished")
	}
}

package relay

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/streaming"
	"repro/internal/testutil"
	"repro/internal/vclock"
)

func noPins(string) bool { return false }

func TestAssetCacheLRUOrdering(t *testing.T) {
	c := newAssetCache()
	// Three 10-byte entries under a 30-byte budget: everything fits.
	for _, name := range []string{"a", "b", "c"} {
		c.add(name, 10)
		if ev := c.enforce(30, name, noPins); ev != nil {
			t.Fatalf("add %s evicted %v under capacity", name, ev)
		}
	}
	if got := c.bytes(); got != 30 {
		t.Fatalf("cache bytes = %d, want 30", got)
	}
	// Touching "a" promotes it, so "b" is now least recently used and
	// goes first when "d" overflows the budget.
	c.touch("a")
	c.add("d", 10)
	if ev := c.enforce(30, "d", noPins); !reflect.DeepEqual(ev, []string{"b"}) {
		t.Fatalf("evicted %v, want [b]", ev)
	}
	// A big insert sweeps the tail oldest-first until the total fits:
	// c, then a, then d — everything but the newcomer.
	c.add("huge", 25)
	if ev := c.enforce(30, "huge", noPins); !reflect.DeepEqual(ev, []string{"c", "a", "d"}) {
		t.Fatalf("evicted %v, want [c a d]", ev)
	}
	if got := c.names(); !reflect.DeepEqual(got, []string{"huge"}) {
		t.Fatalf("cache contents = %v", got)
	}
	if got := c.bytes(); got != 25 {
		t.Fatalf("cache bytes = %d, want 25", got)
	}
	// Unbounded capacity never evicts.
	c.add("more", 1000)
	if ev := c.enforce(0, "more", noPins); ev != nil {
		t.Fatalf("unbounded enforce evicted %v", ev)
	}
}

func TestAssetCacheReAddRefreshesSize(t *testing.T) {
	c := newAssetCache()
	c.add("a", 10)
	c.add("a", 25)
	if got := c.bytes(); got != 25 {
		t.Fatalf("re-added size = %d, want 25", got)
	}
	if got := len(c.names()); got != 1 {
		t.Fatalf("re-add duplicated the entry: %v", c.names())
	}
}

func TestAssetCachePinnedSurvival(t *testing.T) {
	c := newAssetCache()
	pinned := func(name string) bool { return name == "a" || name == "b" }
	c.add("a", 10)
	c.add("b", 10)
	c.add("c", 10)
	// a and b are pinned and c is the demand in progress, so nothing may
	// go even though the budget is exceeded.
	if ev := c.enforce(25, "c", pinned); ev != nil {
		t.Fatalf("evicted %v despite pins", ev)
	}
	if got := c.names(); len(got) != 3 {
		t.Fatalf("pinned entries evicted: %v", got)
	}
	// Once a fourth unpinned entry exists, pressure lands on the oldest
	// unpinned one ("c") and never the pinned pair.
	c.add("d", 10)
	if ev := c.enforce(25, "d", pinned); !reflect.DeepEqual(ev, []string{"c"}) {
		t.Fatalf("evicted %v, want [c]", ev)
	}
	// With the pins released, a later enforcement (any demand) brings the
	// cache back under budget: the stale pinned pair drains LRU-first.
	if ev := c.enforce(10, "d", noPins); !reflect.DeepEqual(ev, []string{"a", "b"}) {
		t.Fatalf("evicted %v after pin release, want [a b]", ev)
	}
}

// registerTestAsset encodes a small lecture and registers it on the
// origin under the given name.
func registerTestAsset(t *testing.T, origin *streaming.Server, name string) {
	t.Helper()
	data := encodeTestLecture(t, 2*time.Second, false)
	if _, err := origin.RegisterAsset(name, asf.NewReader(bytes.NewReader(data))); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeCacheEvictsUnderPressure drives real mirror traffic through an
// edge whose byte budget holds fewer assets than the origin offers and
// checks eviction, re-mirroring, and the cache counters.
func TestEdgeCacheEvictsUnderPressure(t *testing.T) {
	origin := streaming.NewServer(nil)
	origin.Pacing = false
	const assets = 3
	for i := 0; i < assets; i++ {
		registerTestAsset(t, origin, fmt.Sprintf("lec%d", i))
	}
	originTS := httptest.NewServer(origin.Handler())
	defer originTS.Close()

	a, _ := origin.Asset("lec0")
	assetBytes := a.Bytes()

	edgeSrv := streaming.NewServer(nil)
	edgeSrv.Pacing = false
	edge := NewEdge(originTS.URL, edgeSrv)
	edge.CacheBytes = 2 * assetBytes // room for two of the three
	edgeTS := httptest.NewServer(edge.Handler())
	defer edgeTS.Close()

	// Demand all three: mirroring lec2 must push out lec0 (the least
	// recently demanded).
	for i := 0; i < assets; i++ {
		readStream(t, edgeTS.URL+fmt.Sprintf("/vod/lec%d", i))
	}
	if _, ok := edgeSrv.Asset("lec0"); ok {
		t.Fatal("lec0 survived capacity pressure")
	}
	if _, ok := edgeSrv.Asset("lec2"); !ok {
		t.Fatal("lec2 missing right after its mirror")
	}
	if got := edge.inst.evictions.Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := edge.inst.misses.Value(); got != 3 {
		t.Fatalf("misses = %d, want 3", got)
	}
	if got := edge.inst.cacheBytes.Value(); got != 2*assetBytes {
		t.Fatalf("cache bytes gauge = %d, want %d", got, 2*assetBytes)
	}
	if got := edge.inst.originBytes.Value(); got <= 0 {
		t.Fatal("no origin bytes counted")
	}

	// The evicted asset is simply re-mirrored on its next demand (counted
	// as a miss), evicting the new LRU (lec1).
	readStream(t, edgeTS.URL+"/vod/lec0")
	if _, ok := edgeSrv.Asset("lec0"); !ok {
		t.Fatal("lec0 not re-mirrored after eviction")
	}
	if _, ok := edgeSrv.Asset("lec1"); ok {
		t.Fatal("lec1 survived the re-mirror of lec0")
	}
	if got := edge.inst.misses.Value(); got != 4 {
		t.Fatalf("misses after re-mirror = %d, want 4", got)
	}

	// A repeat demand of resident content is a pure cache hit.
	readStream(t, edgeTS.URL+"/vod/lec0")
	if got := edge.inst.hits.Value(); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if got := origin.Stats().MirrorFetches; got != 4 {
		t.Fatalf("origin mirror fetches = %d, want 4", got)
	}
}

// TestEdgeCachePinsStreamingAsset parks a paced VOD session on a virtual
// clock mid-stream and applies eviction pressure: the streaming asset is
// pinned and must survive, and the parked session must then complete
// intact.
func TestEdgeCachePinsStreamingAsset(t *testing.T) {
	origin := streaming.NewServer(nil)
	origin.Pacing = false
	for _, name := range []string{"hot", "cold1", "cold2"} {
		registerTestAsset(t, origin, name)
	}
	originTS := httptest.NewServer(origin.Handler())
	defer originTS.Close()

	a, _ := origin.Asset("hot")
	assetBytes := a.Bytes()

	clk := vclock.NewVirtual()
	edgeSrv := streaming.NewServer(clk) // paced: sessions park on the virtual clock
	edge := NewEdge(originTS.URL, edgeSrv)
	edge.CacheBytes = 2 * assetBytes
	edgeTS := httptest.NewServer(edge.Handler())
	defer edgeTS.Close()

	// Start a session on "hot" and wait until it is booked as active; it
	// then sits in the pacing wait on the virtual clock.
	type result struct {
		pkts int
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(edgeTS.URL + "/vod/hot")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		r := asf.NewReader(resp.Body)
		if _, err := r.ReadHeader(); err != nil {
			done <- result{err: err}
			return
		}
		var pkts int
		for {
			if _, err := r.ReadPacket(); err != nil {
				done <- result{pkts: pkts}
				return
			}
			pkts++
		}
	}()
	testutil.WaitUntil(t, 10*time.Second, func() bool { return edgeSrv.AssetActiveSessions("hot") > 0 },
		"session on hot never started")

	// Two more mirrors exceed the budget while "hot" is mid-stream. The
	// eviction must land on cold1, never on the pinned hot asset.
	if err := edge.MirrorAsset("cold1"); err != nil {
		t.Fatal(err)
	}
	if err := edge.MirrorAsset("cold2"); err != nil {
		t.Fatal(err)
	}
	if _, ok := edgeSrv.Asset("hot"); !ok {
		t.Fatal("streaming asset was evicted")
	}
	if _, ok := edgeSrv.Asset("cold1"); ok {
		t.Fatal("cold1 survived although hot was pinned")
	}
	if got := edge.inst.evictions.Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}

	// Release the parked session: advance virtual time past the lecture
	// end and confirm the in-flight stream finished undamaged.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				clk.Advance(100 * time.Millisecond)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("pinned session failed: %v", res.err)
		}
		if res.pkts == 0 {
			t.Fatal("pinned session delivered no packets")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("pinned session never finished")
	}
}

package relay

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/asf"
	"repro/internal/edgecache"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/streaming"
)

// Edge is one edge node of the relay tier: a streaming.Server whose
// missing content is pulled through from an origin on first demand.
// Stored assets are mirrored whole via the origin's /fetch endpoint and
// cached for every later client; live channels are subscribed once via
// /live and re-fanned-out through a local Channel, so the origin carries
// one session per edge instead of one per viewer.
//
// The mirror cache is bounded when CacheBytes is set. Residency is
// decided by edgecache: under the default TinyLFU policy a freshly
// pulled asset sits in a small recency window and must beat the main
// segment's coldest resident on sketch-estimated frequency to displace
// it, so one-hit wonders churn through the window without evicting hot
// mirrors; ConfigureCache selects plain LRU instead. Assets with active
// sessions, an in-flight demand, or a rate-group membership are pinned
// and never dropped, so capacity pressure cannot fail an in-flight
// stream; a dropped asset is simply re-mirrored on its next demand.
// Concurrent demands for the same uncached asset coalesce onto a single
// origin pull, and an asset whose estimated frequency crosses the
// prewarm threshold has its rate-group siblings fetched ahead of
// demand. Cache traffic (hits, misses, evictions, admission rejects,
// coalesced pulls, prewarm fetches, resident bytes, origin bytes
// pulled, pulls in flight) is counted on the server's metrics registry.
type Edge struct {
	// Origin is the origin server's base URL, without a trailing slash.
	Origin string
	// Server is the edge's local streaming server; mirrored and relayed
	// content is registered here and served by its handlers.
	Server *streaming.Server
	// Client performs origin requests; nil means http.DefaultClient.
	Client *http.Client
	// CacheBytes bounds the summed payload bytes of mirrored assets;
	// 0 mirrors without limit. Set before serving traffic.
	CacheBytes int64

	flight edgecache.Flight
	cache  *edgecache.Cache
	inst   edgeInstruments

	mu sync.Mutex
	// demand counts the /vod/ requests currently between mirror and
	// serve for each asset, pinning them so eviction cannot win the race
	// against a session that is about to start.
	demand map[string]int

	// catMu guards the edge's view of the cluster catalog: the last
	// synced version and the per-entry revisions SyncCatalog diffs
	// against to find stale mirrors. Separate from mu — a catalog sync
	// calls RemoveAsset and budget accounting, which take mu themselves.
	catMu      sync.Mutex
	catVersion uint64
	catAssets  map[string]uint64 // name → Rev at last sync
	catGroups  map[string]catGroupRec
}

// catGroupRec is the edge's remembered view of one cataloged group.
type catGroupRec struct {
	rev      uint64
	variants []string
}

// defaultPrewarmThreshold is the sketch frequency estimate (out of a
// saturating 15) at which an asset counts as hot and its rate-group
// siblings are prewarmed.
const defaultPrewarmThreshold = 12

// edgeInstruments are the edge's metric handles on its server's
// registry.
type edgeInstruments struct {
	hits          *metrics.Counter
	misses        *metrics.Counter
	evictions     *metrics.Counter
	rejects       *metrics.Counter
	coalesced     *metrics.Counter
	prewarms      *metrics.Counter
	originBytes   *metrics.Counter
	invalidations *metrics.Counter
	pulls         *metrics.Gauge
	cacheBytes    *metrics.Gauge
}

// NewEdge creates an edge pulling through from the origin base URL. A nil
// server gets a fresh streaming.Server on the real clock. The mirror
// cache starts on the default TinyLFU policy with prewarm enabled; use
// ConfigureCache before serving to change policy or tuning.
func NewEdge(origin string, srv *streaming.Server) *Edge {
	if srv == nil {
		srv = streaming.NewServer(nil)
	}
	reg := srv.Metrics()
	e := &Edge{
		Origin: strings.TrimSuffix(origin, "/"),
		Server: srv,
		demand: make(map[string]int),
		inst: edgeInstruments{
			hits:          reg.Counter("lod_edge_cache_hits_total", "Mirror demands served from already-cached content."),
			misses:        reg.Counter("lod_edge_cache_misses_total", "Mirror demands that required an origin pull."),
			evictions:     reg.Counter("lod_edge_cache_evictions_total", "Mirrored assets dropped by byte-capacity pressure."),
			rejects:       reg.Counter("lod_edge_admission_rejects_total", "Window candidates dropped by the TinyLFU admission duel instead of displacing a hotter resident."),
			coalesced:     reg.Counter("lod_edge_coalesced_pulls_total", "Demands that attached to another demand's in-flight origin pull instead of issuing their own."),
			prewarms:      reg.Counter("lod_edge_prewarm_fetches_total", "Rate-group sibling assets fetched ahead of demand after an asset turned hot."),
			originBytes:   reg.Counter("lod_edge_origin_bytes_total", "Bytes pulled from the origin (mirrors, groups, live relays)."),
			invalidations: reg.Counter("lod_edge_catalog_invalidations_total", "Mirrored copies dropped because their catalog entry changed or vanished."),
			pulls:         reg.Gauge("lod_edge_pulls_in_flight", "Origin pulls currently in progress."),
			cacheBytes:    reg.Gauge("lod_edge_cache_bytes", "Payload bytes of mirrored assets resident in the cache."),
		},
	}
	e.ConfigureCache(edgecache.Config{PrewarmThreshold: defaultPrewarmThreshold})
	return e
}

// ConfigureCache replaces the edge's mirror cache with a fresh one
// built from cfg (policy, window fraction, sketch size, prewarm
// threshold). The edge wires its own prewarm hook unless cfg carries
// one. Call before serving traffic: booked residency does not carry
// over.
func (e *Edge) ConfigureCache(cfg edgecache.Config) {
	if cfg.OnHot == nil && cfg.PrewarmThreshold > 0 {
		cfg.OnHot = e.onHot
	}
	e.cache = edgecache.New(cfg)
}

// CacheStats returns the per-asset cache ledger — demands served
// locally and origin pulls performed, per asset, cumulative across
// evictions — sorted by total demand.
func (e *Edge) CacheStats() []edgecache.AssetStats {
	return e.cache.Stats()
}

func (e *Edge) client() *http.Client {
	if e.Client != nil {
		return e.Client
	}
	return http.DefaultClient
}

// ensure runs fetch under a per-key singleflight: the first caller for a
// key performs the fetch, concurrent callers attach to its outcome (and
// are counted as coalesced pulls), and later callers short-circuit via
// present. A nil ctx waits without cancellation; a non-nil ctx lets an
// attached caller give up early while the fetch continues for the rest.
func (e *Edge) ensure(ctx context.Context, key string, present func() bool, fetch func() error) error {
	attached := false
	for {
		if present() {
			return nil
		}
		shared, err := e.flight.Do(ctx, key, func() error {
			e.inst.pulls.Inc()
			defer e.inst.pulls.Dec()
			return fetch()
		})
		if !shared {
			return err
		}
		if !attached {
			attached = true
			e.inst.coalesced.Inc()
		}
		if err != nil {
			return err
		}
		// Re-check presence: the leader we attached to may have fetched
		// our key, or raced something else — loop decides.
	}
}

// MirrorAsset ensures the named asset is registered on the edge's server,
// fetching it from the origin on first demand (pull-through cache) and
// booking it into the admission-controlled mirror cache. Concurrent
// callers share one origin transfer; a demand for cached content counts
// as a hit and refreshes its recency and frequency. A missing origin
// asset returns streaming.ErrNotFound.
func (e *Edge) MirrorAsset(name string) error {
	return e.mirrorAsset(nil, name)
}

// mirrorAsset is MirrorAsset with a wait context: a nil ctx blocks
// until the (possibly shared) pull resolves, a request ctx lets this
// demand abandon a shared pull when its client goes away.
func (e *Edge) mirrorAsset(ctx context.Context, name string) error {
	if _, ok := e.Server.Asset(name); ok {
		e.inst.hits.Inc()
		e.cache.Touch(name)
		// Re-apply the budget on hits too: pins may have forced the cache
		// over capacity earlier and released since.
		e.enforceBudget(name)
		return nil
	}
	e.inst.misses.Inc()
	present := func() bool { _, ok := e.Server.Asset(name); return ok }
	return e.ensure(ctx, "asset/"+name, present, func() error { return e.fetchAsset(name) })
}

func (e *Edge) fetchAsset(name string) error {
	// The name came off a decoded request path; proto.StreamPath
	// re-escapes it so assets named like "lecture 1%" or containing ?/#
	// survive the origin URL. The origin handler's decode of its request
	// path is the symmetric inverse.
	resp, err := e.client().Get(e.Origin + proto.Versioned(proto.StreamPath(proto.StreamFetch, name)))
	if err != nil {
		return fmt.Errorf("relay: mirror %q: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w: origin asset %q", streaming.ErrNotFound, name)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("relay: mirror %q: origin status %s", name, resp.Status)
	}
	_, err = e.Server.RegisterAsset(name, asf.NewReader(e.countBytes(resp.Body)))
	if err != nil && !errors.Is(err, streaming.ErrDuplicate) {
		return err
	}
	// Duplicate means we raced a direct registration; either way the
	// asset is resident now and must be under cache accounting. The pull
	// itself is a frequency observation — without it an asset that is
	// always admission-rejected could never accumulate enough estimated
	// demand to win a later duel.
	e.cache.RecordPull(name)
	e.trackAsset(name)
	return nil
}

// trackAsset books a resident mirror into the cache and applies the
// byte budget.
func (e *Edge) trackAsset(name string) {
	a, ok := e.Server.Asset(name)
	if !ok {
		return
	}
	e.cache.Add(name, a.Bytes())
	e.enforceBudget(name)
}

// enforceBudget drops over-budget mirrors (never `except`, never pinned
// assets), unregistering each victim from the edge server and counting
// it — capacity evictions and admission rejections separately. A victim
// that gained a pin between the cache's decision and this removal (a
// demand raced in) is reinstated instead of removed.
func (e *Edge) enforceBudget(except string) {
	evicted, rejected := e.cache.Enforce(e.CacheBytes, except, e.pinned)
	e.dropVictims(evicted, e.inst.evictions)
	e.dropVictims(rejected, e.inst.rejects)
	e.inst.cacheBytes.Set(e.cache.Bytes())
}

func (e *Edge) dropVictims(victims []string, counter *metrics.Counter) {
	for _, victim := range victims {
		if e.pinned(victim) {
			if a, ok := e.Server.Asset(victim); ok {
				e.cache.Add(victim, a.Bytes())
				continue
			}
		}
		if e.Server.RemoveAsset(victim) {
			counter.Inc()
		}
	}
}

// onHot is the cache's prewarm hook: when an asset turns hot, fetch its
// rate-group siblings ahead of demand in the background. Siblings come
// from the synced cluster catalog and from locally mirrored groups.
func (e *Edge) onHot(name string) {
	siblings := e.groupSiblings(name)
	if len(siblings) == 0 {
		return
	}
	go func() {
		for _, sib := range siblings {
			if _, ok := e.Server.Asset(sib); ok {
				continue
			}
			present := func() bool { _, ok := e.Server.Asset(sib); return ok }
			if err := e.ensure(nil, "asset/"+sib, present, func() error { return e.fetchAsset(sib) }); err == nil {
				e.inst.prewarms.Inc()
			}
		}
	}()
}

// groupSiblings returns the other variants of every rate group that
// contains the named asset, deduplicated.
func (e *Edge) groupSiblings(name string) []string {
	seen := map[string]bool{name: true}
	var out []string
	collect := func(variants []string) {
		found := false
		for _, v := range variants {
			if v == name {
				found = true
				break
			}
		}
		if !found {
			return
		}
		for _, v := range variants {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	e.catMu.Lock()
	for _, rec := range e.catGroups {
		collect(rec.variants)
	}
	e.catMu.Unlock()
	for _, g := range e.Server.Groups() {
		collect(g.Variants)
	}
	return out
}

// pinDemand pins an asset for the duration of one demand; the returned
// func releases the pin and must be deferred.
func (e *Edge) pinDemand(name string) func() {
	e.mu.Lock()
	e.demand[name]++
	e.mu.Unlock()
	return func() {
		e.mu.Lock()
		if e.demand[name]--; e.demand[name] <= 0 {
			delete(e.demand, name)
		}
		e.mu.Unlock()
	}
}

// pinned reports whether an asset must survive eviction: it is being
// streamed or demanded right now, or a mirrored rate group references
// it (groups hold direct asset pointers, so dropping a variant would
// leave the group serving content the cache no longer accounts for).
func (e *Edge) pinned(name string) bool {
	e.mu.Lock()
	demanded := e.demand[name] > 0
	e.mu.Unlock()
	if demanded {
		return true
	}
	if e.Server.AssetActiveSessions(name) > 0 {
		return true
	}
	for _, g := range e.Server.Groups() {
		for _, v := range g.Variants {
			if v == name {
				return true
			}
		}
	}
	return false
}

// countBytes wraps an origin response body so every byte pulled from
// upstream lands in the lod_edge_origin_bytes_total counter.
func (e *Edge) countBytes(r io.Reader) io.Reader {
	return &countingReader{r: r, c: e.inst.originBytes}
}

type countingReader struct {
	r io.Reader
	c *metrics.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(int64(n))
	return n, err
}

// MirrorGroup ensures the named multi-rate group exists on the edge's
// server, mirroring every variant asset from the origin on first demand.
// A group the origin doesn't have returns streaming.ErrNotFound.
func (e *Edge) MirrorGroup(name string) error {
	return e.mirrorGroup(nil, name)
}

func (e *Edge) mirrorGroup(ctx context.Context, name string) error {
	present := func() bool { _, ok := e.Server.RateGroup(name); return ok }
	return e.ensure(ctx, "group/"+name, present, func() error { return e.fetchGroup(name) })
}

func (e *Edge) fetchGroup(name string) error {
	resp, err := e.client().Get(e.Origin + proto.Versioned(proto.PathGroups))
	if err != nil {
		return fmt.Errorf("relay: group %q: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("relay: group %q: origin status %s", name, resp.Status)
	}
	var groups []streaming.GroupInfo
	if err := json.NewDecoder(e.countBytes(resp.Body)).Decode(&groups); err != nil {
		return fmt.Errorf("relay: group %q: %w", name, err)
	}
	var variants []string
	found := false
	for _, g := range groups {
		if g.Name == name {
			variants, found = g.Variants, true
			break
		}
	}
	if !found {
		return fmt.Errorf("%w: origin group %q", streaming.ErrNotFound, name)
	}
	// Pin every variant for the whole group mirror: until CreateRateGroup
	// runs, the variants have no group membership, and under a tight
	// budget a later variant's pull could otherwise evict an earlier one,
	// registering a permanently incomplete group.
	for _, v := range variants {
		defer e.pinDemand(v)()
	}
	for _, v := range variants {
		if err := e.MirrorAsset(v); err != nil {
			return fmt.Errorf("relay: group %q variant: %w", name, err)
		}
	}
	g, err := e.Server.CreateRateGroup(name)
	if err != nil {
		if errors.Is(err, streaming.ErrDuplicate) {
			return nil // raced with a direct registration
		}
		return err
	}
	for _, v := range variants {
		if a, ok := e.Server.Asset(v); ok {
			g.AddVariant(a)
		}
	}
	return nil
}

// RelayChannel ensures a local live channel by the given name exists,
// subscribed to the origin's channel of the same name. It returns once
// the local channel is registered (joinable); packets are pumped in the
// background until the origin broadcast ends, which closes the local
// channel too. A missing origin channel returns streaming.ErrNotFound.
func (e *Edge) RelayChannel(name string) error {
	return e.relayChannel(nil, name)
}

func (e *Edge) relayChannel(ctx context.Context, name string) error {
	present := func() bool { _, ok := e.Server.Channel(name); return ok }
	return e.ensure(ctx, "live/"+name, present, func() error { return e.startRelay(name) })
}

func (e *Edge) startRelay(name string) error {
	// Escape like fetchAsset: the channel name is a decoded path segment.
	resp, err := e.client().Get(e.Origin + proto.Versioned(proto.StreamPath(proto.StreamLive, name)))
	if err != nil {
		return fmt.Errorf("relay: live %q: %w", name, err)
	}
	if resp.StatusCode == http.StatusNotFound {
		resp.Body.Close()
		return fmt.Errorf("%w: origin channel %q", streaming.ErrNotFound, name)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return fmt.Errorf("relay: live %q: origin status %s", name, resp.Status)
	}
	r := asf.NewReader(e.countBytes(resp.Body))
	h, err := r.ReadHeader()
	if err != nil {
		resp.Body.Close()
		return fmt.Errorf("relay: live %q: %w", name, err)
	}
	ch, err := e.Server.CreateChannel(name, h)
	if err != nil {
		resp.Body.Close()
		if errors.Is(err, streaming.ErrDuplicate) {
			return nil
		}
		return err
	}
	go func() {
		defer resp.Body.Close()
		defer ch.Close()
		for {
			p, err := r.ReadPacket()
			if err != nil {
				return // EOF: the origin broadcast ended
			}
			if ch.Publish(p) != nil {
				return
			}
		}
	}()
	return nil
}

// Handler wraps the edge server's handler with pull-through: a /vod/
// request for an unmirrored asset mirrors it first, a /group/ request for
// an unmirrored group mirrors its variants first, and a /live/ request
// for an unrelayed channel starts the relay first; then the request is
// served locally like any other. Pulls are coalesced per asset, and a
// demand whose request context dies while attached to a shared pull
// gives up without cancelling the pull. Everything else (listings,
// /fetch/) is served from the edge's local state only.
func (e *Edge) Handler() http.Handler {
	base := e.Server.Handler()
	mux := http.NewServeMux()
	mux.Handle("/", base)
	proto.HandleFunc(mux, proto.PrefixVOD, func(w http.ResponseWriter, r *http.Request) {
		name := proto.StreamName(r.URL.Path, proto.StreamVOD)
		defer e.pinDemand(name)()
		// An eviction decided before our pin landed can still remove the
		// asset after MirrorAsset sees it present; with the pin now held,
		// one re-mirror is stable.
		for attempt := 0; attempt < 2; attempt++ {
			if err := e.mirrorAsset(r.Context(), name); err != nil {
				pullError(w, r, err)
				return
			}
			if _, ok := e.Server.Asset(name); ok {
				break
			}
		}
		base.ServeHTTP(w, r)
	})
	proto.HandleFunc(mux, proto.PrefixGroup, func(w http.ResponseWriter, r *http.Request) {
		name := proto.StreamName(r.URL.Path, proto.StreamGroup)
		if err := e.mirrorGroup(r.Context(), name); err != nil {
			pullError(w, r, err)
			return
		}
		base.ServeHTTP(w, r)
	})
	proto.HandleFunc(mux, proto.PrefixLive, func(w http.ResponseWriter, r *http.Request) {
		name := proto.StreamName(r.URL.Path, proto.StreamLive)
		if err := e.relayChannel(r.Context(), name); err != nil {
			pullError(w, r, err)
			return
		}
		base.ServeHTTP(w, r)
	})
	return mux
}

// pullError maps an origin pull failure onto the client response: a
// missing upstream resource is the client's 404 (with the proto.Error
// JSON body every /v1 error carries), anything else means the edge
// could not reach or parse the origin — 502. A demand abandoned because
// its own request context died reports 499-style client disconnect as
// 502 too; the transport is gone either way.
func pullError(w http.ResponseWriter, _ *http.Request, err error) {
	if errors.Is(err, streaming.ErrNotFound) {
		proto.WriteError(w, http.StatusNotFound, err.Error())
		return
	}
	proto.WriteError(w, http.StatusBadGateway, err.Error())
}

package relay

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/asf"
	"repro/internal/streaming"
)

// Edge is one edge node of the relay tier: a streaming.Server whose
// missing content is pulled through from an origin on first demand.
// Stored assets are mirrored whole via the origin's /fetch endpoint and
// cached for every later client; live channels are subscribed once via
// /live and re-fanned-out through a local Channel, so the origin carries
// one session per edge instead of one per viewer.
type Edge struct {
	// Origin is the origin server's base URL, without a trailing slash.
	Origin string
	// Server is the edge's local streaming server; mirrored and relayed
	// content is registered here and served by its handlers.
	Server *streaming.Server
	// Client performs origin requests; nil means http.DefaultClient.
	Client *http.Client

	mu       sync.Mutex
	inflight map[string]*pull
}

// pull tracks one in-progress origin fetch so concurrent demands for the
// same content share a single upstream request.
type pull struct {
	done chan struct{}
	err  error
}

// NewEdge creates an edge pulling through from the origin base URL. A nil
// server gets a fresh streaming.Server on the real clock.
func NewEdge(origin string, srv *streaming.Server) *Edge {
	if srv == nil {
		srv = streaming.NewServer(nil)
	}
	return &Edge{
		Origin:   strings.TrimSuffix(origin, "/"),
		Server:   srv,
		inflight: make(map[string]*pull),
	}
}

func (e *Edge) client() *http.Client {
	if e.Client != nil {
		return e.Client
	}
	return http.DefaultClient
}

// ensure runs fetch under a per-key singleflight: the first caller for a
// key performs the fetch, concurrent callers wait for its outcome, and
// later callers short-circuit via present.
func (e *Edge) ensure(key string, present func() bool, fetch func() error) error {
	for {
		e.mu.Lock()
		if present() {
			e.mu.Unlock()
			return nil
		}
		if fl, ok := e.inflight[key]; ok {
			e.mu.Unlock()
			<-fl.done
			if fl.err != nil {
				return fl.err
			}
			continue // re-check presence; the winner may have fetched our key
		}
		fl := &pull{done: make(chan struct{})}
		e.inflight[key] = fl
		e.mu.Unlock()

		fl.err = fetch()
		e.mu.Lock()
		delete(e.inflight, key)
		e.mu.Unlock()
		close(fl.done)
		return fl.err
	}
}

// MirrorAsset ensures the named asset is registered on the edge's server,
// fetching it from the origin on first demand (pull-through cache).
// Concurrent callers share one origin transfer. A missing origin asset
// returns streaming.ErrNotFound.
func (e *Edge) MirrorAsset(name string) error {
	present := func() bool { _, ok := e.Server.Asset(name); return ok }
	return e.ensure("asset/"+name, present, func() error { return e.fetchAsset(name) })
}

func (e *Edge) fetchAsset(name string) error {
	resp, err := e.client().Get(e.Origin + "/fetch/" + name)
	if err != nil {
		return fmt.Errorf("relay: mirror %q: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w: origin asset %q", streaming.ErrNotFound, name)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("relay: mirror %q: origin status %s", name, resp.Status)
	}
	_, err = e.Server.RegisterAsset(name, asf.NewReader(resp.Body))
	if errors.Is(err, streaming.ErrDuplicate) {
		return nil // raced with a direct registration; the asset is there
	}
	return err
}

// MirrorGroup ensures the named multi-rate group exists on the edge's
// server, mirroring every variant asset from the origin on first demand.
// A group the origin doesn't have returns streaming.ErrNotFound.
func (e *Edge) MirrorGroup(name string) error {
	present := func() bool { _, ok := e.Server.RateGroup(name); return ok }
	return e.ensure("group/"+name, present, func() error { return e.fetchGroup(name) })
}

func (e *Edge) fetchGroup(name string) error {
	resp, err := e.client().Get(e.Origin + "/groups")
	if err != nil {
		return fmt.Errorf("relay: group %q: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("relay: group %q: origin status %s", name, resp.Status)
	}
	var groups []streaming.GroupInfo
	if err := json.NewDecoder(resp.Body).Decode(&groups); err != nil {
		return fmt.Errorf("relay: group %q: %w", name, err)
	}
	var variants []string
	found := false
	for _, g := range groups {
		if g.Name == name {
			variants, found = g.Variants, true
			break
		}
	}
	if !found {
		return fmt.Errorf("%w: origin group %q", streaming.ErrNotFound, name)
	}
	for _, v := range variants {
		if err := e.MirrorAsset(v); err != nil {
			return fmt.Errorf("relay: group %q variant: %w", name, err)
		}
	}
	g, err := e.Server.CreateRateGroup(name)
	if err != nil {
		if errors.Is(err, streaming.ErrDuplicate) {
			return nil // raced with a direct registration
		}
		return err
	}
	for _, v := range variants {
		if a, ok := e.Server.Asset(v); ok {
			g.AddVariant(a)
		}
	}
	return nil
}

// RelayChannel ensures a local live channel by the given name exists,
// subscribed to the origin's channel of the same name. It returns once
// the local channel is registered (joinable); packets are pumped in the
// background until the origin broadcast ends, which closes the local
// channel too. A missing origin channel returns streaming.ErrNotFound.
func (e *Edge) RelayChannel(name string) error {
	present := func() bool { _, ok := e.Server.Channel(name); return ok }
	return e.ensure("live/"+name, present, func() error { return e.startRelay(name) })
}

func (e *Edge) startRelay(name string) error {
	resp, err := e.client().Get(e.Origin + "/live/" + name)
	if err != nil {
		return fmt.Errorf("relay: live %q: %w", name, err)
	}
	if resp.StatusCode == http.StatusNotFound {
		resp.Body.Close()
		return fmt.Errorf("%w: origin channel %q", streaming.ErrNotFound, name)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return fmt.Errorf("relay: live %q: origin status %s", name, resp.Status)
	}
	r := asf.NewReader(resp.Body)
	h, err := r.ReadHeader()
	if err != nil {
		resp.Body.Close()
		return fmt.Errorf("relay: live %q: %w", name, err)
	}
	ch, err := e.Server.CreateChannel(name, h)
	if err != nil {
		resp.Body.Close()
		if errors.Is(err, streaming.ErrDuplicate) {
			return nil
		}
		return err
	}
	go func() {
		defer resp.Body.Close()
		defer ch.Close()
		for {
			p, err := r.ReadPacket()
			if err != nil {
				return // EOF: the origin broadcast ended
			}
			if ch.Publish(p) != nil {
				return
			}
		}
	}()
	return nil
}

// Handler wraps the edge server's handler with pull-through: a /vod/
// request for an unmirrored asset mirrors it first, a /group/ request for
// an unmirrored group mirrors its variants first, and a /live/ request
// for an unrelayed channel starts the relay first; then the request is
// served locally like any other. Everything else (listings, /fetch/) is
// served from the edge's local state only.
func (e *Edge) Handler() http.Handler {
	base := e.Server.Handler()
	mux := http.NewServeMux()
	mux.Handle("/", base)
	mux.HandleFunc("/vod/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/vod/")
		if err := e.MirrorAsset(name); err != nil {
			pullError(w, r, err)
			return
		}
		base.ServeHTTP(w, r)
	})
	mux.HandleFunc("/group/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/group/")
		if err := e.MirrorGroup(name); err != nil {
			pullError(w, r, err)
			return
		}
		base.ServeHTTP(w, r)
	})
	mux.HandleFunc("/live/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/live/")
		if err := e.RelayChannel(name); err != nil {
			pullError(w, r, err)
			return
		}
		base.ServeHTTP(w, r)
	})
	return mux
}

// pullError maps an origin pull failure onto the client response: a
// missing upstream resource is the client's 404, anything else means the
// edge could not reach or parse the origin — 502.
func pullError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, streaming.ErrNotFound) {
		http.NotFound(w, r)
		return
	}
	http.Error(w, err.Error(), http.StatusBadGateway)
}

package relay

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/asf"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/streaming"
)

// Edge is one edge node of the relay tier: a streaming.Server whose
// missing content is pulled through from an origin on first demand.
// Stored assets are mirrored whole via the origin's /fetch endpoint and
// cached for every later client; live channels are subscribed once via
// /live and re-fanned-out through a local Channel, so the origin carries
// one session per edge instead of one per viewer.
//
// The mirror cache is bounded when CacheBytes is set: mirrored assets
// are tracked in a byte-capacity LRU, and pulling a new asset past the
// budget evicts the least-recently-demanded mirrors. Assets with active
// sessions or a rate-group membership are pinned and never evicted, so
// capacity pressure cannot fail an in-flight stream; an evicted asset
// is simply re-mirrored on its next demand. Cache traffic (hits,
// misses, evictions, resident bytes, origin bytes pulled, pulls in
// flight) is counted on the server's metrics registry.
type Edge struct {
	// Origin is the origin server's base URL, without a trailing slash.
	Origin string
	// Server is the edge's local streaming server; mirrored and relayed
	// content is registered here and served by its handlers.
	Server *streaming.Server
	// Client performs origin requests; nil means http.DefaultClient.
	Client *http.Client
	// CacheBytes bounds the summed payload bytes of mirrored assets;
	// 0 mirrors without limit. Set before serving traffic.
	CacheBytes int64

	mu       sync.Mutex
	inflight map[string]*pull
	cache    *assetCache
	inst     edgeInstruments
	// demand counts the /vod/ requests currently between mirror and
	// serve for each asset, pinning them so eviction cannot win the race
	// against a session that is about to start.
	demand map[string]int

	// catMu guards the edge's view of the cluster catalog: the last
	// synced version and the per-entry revisions SyncCatalog diffs
	// against to find stale mirrors. Separate from mu — a catalog sync
	// calls RemoveAsset and budget accounting, which take mu themselves.
	catMu      sync.Mutex
	catVersion uint64
	catAssets  map[string]uint64 // name → Rev at last sync
	catGroups  map[string]catGroupRec
}

// catGroupRec is the edge's remembered view of one cataloged group.
type catGroupRec struct {
	rev      uint64
	variants []string
}

// edgeInstruments are the edge's metric handles on its server's
// registry.
type edgeInstruments struct {
	hits          *metrics.Counter
	misses        *metrics.Counter
	evictions     *metrics.Counter
	originBytes   *metrics.Counter
	invalidations *metrics.Counter
	pulls         *metrics.Gauge
	cacheBytes    *metrics.Gauge
}

// pull tracks one in-progress origin fetch so concurrent demands for the
// same content share a single upstream request.
type pull struct {
	done chan struct{}
	err  error
}

// NewEdge creates an edge pulling through from the origin base URL. A nil
// server gets a fresh streaming.Server on the real clock.
func NewEdge(origin string, srv *streaming.Server) *Edge {
	if srv == nil {
		srv = streaming.NewServer(nil)
	}
	reg := srv.Metrics()
	return &Edge{
		Origin:   strings.TrimSuffix(origin, "/"),
		Server:   srv,
		inflight: make(map[string]*pull),
		demand:   make(map[string]int),
		cache:    newAssetCache(),
		inst: edgeInstruments{
			hits:          reg.Counter("lod_edge_cache_hits_total", "Mirror demands served from already-cached content."),
			misses:        reg.Counter("lod_edge_cache_misses_total", "Mirror demands that required an origin pull."),
			evictions:     reg.Counter("lod_edge_cache_evictions_total", "Mirrored assets dropped by the byte-capacity LRU."),
			originBytes:   reg.Counter("lod_edge_origin_bytes_total", "Bytes pulled from the origin (mirrors, groups, live relays)."),
			invalidations: reg.Counter("lod_edge_catalog_invalidations_total", "Mirrored copies dropped because their catalog entry changed or vanished."),
			pulls:         reg.Gauge("lod_edge_pulls_in_flight", "Origin pulls currently in progress."),
			cacheBytes:    reg.Gauge("lod_edge_cache_bytes", "Payload bytes of mirrored assets resident in the cache."),
		},
	}
}

func (e *Edge) client() *http.Client {
	if e.Client != nil {
		return e.Client
	}
	return http.DefaultClient
}

// ensure runs fetch under a per-key singleflight: the first caller for a
// key performs the fetch, concurrent callers wait for its outcome, and
// later callers short-circuit via present.
func (e *Edge) ensure(key string, present func() bool, fetch func() error) error {
	for {
		e.mu.Lock()
		if present() {
			e.mu.Unlock()
			return nil
		}
		if fl, ok := e.inflight[key]; ok {
			e.mu.Unlock()
			<-fl.done
			if fl.err != nil {
				return fl.err
			}
			continue // re-check presence; the winner may have fetched our key
		}
		fl := &pull{done: make(chan struct{})}
		e.inflight[key] = fl
		e.mu.Unlock()

		e.inst.pulls.Inc()
		fl.err = fetch()
		e.inst.pulls.Dec()
		e.mu.Lock()
		delete(e.inflight, key)
		e.mu.Unlock()
		close(fl.done)
		return fl.err
	}
}

// MirrorAsset ensures the named asset is registered on the edge's server,
// fetching it from the origin on first demand (pull-through cache) and
// booking it into the LRU mirror cache. Concurrent callers share one
// origin transfer; a demand for cached content counts as a hit and
// refreshes its recency. A missing origin asset returns
// streaming.ErrNotFound.
func (e *Edge) MirrorAsset(name string) error {
	if _, ok := e.Server.Asset(name); ok {
		e.inst.hits.Inc()
		e.cache.touch(name)
		// Re-apply the budget on hits too: pins may have forced the cache
		// over capacity earlier and released since.
		e.enforceBudget(name)
		return nil
	}
	e.inst.misses.Inc()
	present := func() bool { _, ok := e.Server.Asset(name); return ok }
	return e.ensure("asset/"+name, present, func() error { return e.fetchAsset(name) })
}

func (e *Edge) fetchAsset(name string) error {
	// The name came off a decoded request path; proto.StreamPath
	// re-escapes it so assets named like "lecture 1%" or containing ?/#
	// survive the origin URL. The origin handler's decode of its request
	// path is the symmetric inverse.
	resp, err := e.client().Get(e.Origin + proto.Versioned(proto.StreamPath(proto.StreamFetch, name)))
	if err != nil {
		return fmt.Errorf("relay: mirror %q: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w: origin asset %q", streaming.ErrNotFound, name)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("relay: mirror %q: origin status %s", name, resp.Status)
	}
	_, err = e.Server.RegisterAsset(name, asf.NewReader(e.countBytes(resp.Body)))
	if err != nil && !errors.Is(err, streaming.ErrDuplicate) {
		return err
	}
	// Duplicate means we raced a direct registration; either way the
	// asset is resident now and must be under cache accounting.
	e.trackAsset(name)
	return nil
}

// trackAsset books a resident mirror into the LRU and applies the byte
// budget.
func (e *Edge) trackAsset(name string) {
	a, ok := e.Server.Asset(name)
	if !ok {
		return
	}
	e.cache.add(name, a.Bytes())
	e.enforceBudget(name)
}

// enforceBudget evicts over-budget mirrors (never `except`, never
// pinned assets), unregistering each victim from the edge server and
// counting it. A victim that gained a pin between the cache's decision
// and this removal (a demand raced in) is reinstated instead of
// removed.
func (e *Edge) enforceBudget(except string) {
	for _, victim := range e.cache.enforce(e.CacheBytes, except, e.pinned) {
		if e.pinned(victim) {
			if a, ok := e.Server.Asset(victim); ok {
				e.cache.add(victim, a.Bytes())
				continue
			}
		}
		if e.Server.RemoveAsset(victim) {
			e.inst.evictions.Inc()
		}
	}
	e.inst.cacheBytes.Set(e.cache.bytes())
}

// pinDemand pins an asset for the duration of one demand; the returned
// func releases the pin and must be deferred.
func (e *Edge) pinDemand(name string) func() {
	e.mu.Lock()
	e.demand[name]++
	e.mu.Unlock()
	return func() {
		e.mu.Lock()
		if e.demand[name]--; e.demand[name] <= 0 {
			delete(e.demand, name)
		}
		e.mu.Unlock()
	}
}

// pinned reports whether an asset must survive eviction: it is being
// streamed or demanded right now, or a mirrored rate group references
// it (groups hold direct asset pointers, so dropping a variant would
// leave the group serving content the cache no longer accounts for).
func (e *Edge) pinned(name string) bool {
	e.mu.Lock()
	demanded := e.demand[name] > 0
	e.mu.Unlock()
	if demanded {
		return true
	}
	if e.Server.AssetActiveSessions(name) > 0 {
		return true
	}
	for _, g := range e.Server.Groups() {
		for _, v := range g.Variants {
			if v == name {
				return true
			}
		}
	}
	return false
}

// countBytes wraps an origin response body so every byte pulled from
// upstream lands in the lod_edge_origin_bytes_total counter.
func (e *Edge) countBytes(r io.Reader) io.Reader {
	return &countingReader{r: r, c: e.inst.originBytes}
}

type countingReader struct {
	r io.Reader
	c *metrics.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(int64(n))
	return n, err
}

// MirrorGroup ensures the named multi-rate group exists on the edge's
// server, mirroring every variant asset from the origin on first demand.
// A group the origin doesn't have returns streaming.ErrNotFound.
func (e *Edge) MirrorGroup(name string) error {
	present := func() bool { _, ok := e.Server.RateGroup(name); return ok }
	return e.ensure("group/"+name, present, func() error { return e.fetchGroup(name) })
}

func (e *Edge) fetchGroup(name string) error {
	resp, err := e.client().Get(e.Origin + proto.Versioned(proto.PathGroups))
	if err != nil {
		return fmt.Errorf("relay: group %q: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("relay: group %q: origin status %s", name, resp.Status)
	}
	var groups []streaming.GroupInfo
	if err := json.NewDecoder(e.countBytes(resp.Body)).Decode(&groups); err != nil {
		return fmt.Errorf("relay: group %q: %w", name, err)
	}
	var variants []string
	found := false
	for _, g := range groups {
		if g.Name == name {
			variants, found = g.Variants, true
			break
		}
	}
	if !found {
		return fmt.Errorf("%w: origin group %q", streaming.ErrNotFound, name)
	}
	// Pin every variant for the whole group mirror: until CreateRateGroup
	// runs, the variants have no group membership, and under a tight
	// budget a later variant's pull could otherwise evict an earlier one,
	// registering a permanently incomplete group.
	for _, v := range variants {
		defer e.pinDemand(v)()
	}
	for _, v := range variants {
		if err := e.MirrorAsset(v); err != nil {
			return fmt.Errorf("relay: group %q variant: %w", name, err)
		}
	}
	g, err := e.Server.CreateRateGroup(name)
	if err != nil {
		if errors.Is(err, streaming.ErrDuplicate) {
			return nil // raced with a direct registration
		}
		return err
	}
	for _, v := range variants {
		if a, ok := e.Server.Asset(v); ok {
			g.AddVariant(a)
		}
	}
	return nil
}

// RelayChannel ensures a local live channel by the given name exists,
// subscribed to the origin's channel of the same name. It returns once
// the local channel is registered (joinable); packets are pumped in the
// background until the origin broadcast ends, which closes the local
// channel too. A missing origin channel returns streaming.ErrNotFound.
func (e *Edge) RelayChannel(name string) error {
	present := func() bool { _, ok := e.Server.Channel(name); return ok }
	return e.ensure("live/"+name, present, func() error { return e.startRelay(name) })
}

func (e *Edge) startRelay(name string) error {
	// Escape like fetchAsset: the channel name is a decoded path segment.
	resp, err := e.client().Get(e.Origin + proto.Versioned(proto.StreamPath(proto.StreamLive, name)))
	if err != nil {
		return fmt.Errorf("relay: live %q: %w", name, err)
	}
	if resp.StatusCode == http.StatusNotFound {
		resp.Body.Close()
		return fmt.Errorf("%w: origin channel %q", streaming.ErrNotFound, name)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return fmt.Errorf("relay: live %q: origin status %s", name, resp.Status)
	}
	r := asf.NewReader(e.countBytes(resp.Body))
	h, err := r.ReadHeader()
	if err != nil {
		resp.Body.Close()
		return fmt.Errorf("relay: live %q: %w", name, err)
	}
	ch, err := e.Server.CreateChannel(name, h)
	if err != nil {
		resp.Body.Close()
		if errors.Is(err, streaming.ErrDuplicate) {
			return nil
		}
		return err
	}
	go func() {
		defer resp.Body.Close()
		defer ch.Close()
		for {
			p, err := r.ReadPacket()
			if err != nil {
				return // EOF: the origin broadcast ended
			}
			if ch.Publish(p) != nil {
				return
			}
		}
	}()
	return nil
}

// Handler wraps the edge server's handler with pull-through: a /vod/
// request for an unmirrored asset mirrors it first, a /group/ request for
// an unmirrored group mirrors its variants first, and a /live/ request
// for an unrelayed channel starts the relay first; then the request is
// served locally like any other. Everything else (listings, /fetch/) is
// served from the edge's local state only.
func (e *Edge) Handler() http.Handler {
	base := e.Server.Handler()
	mux := http.NewServeMux()
	mux.Handle("/", base)
	proto.HandleFunc(mux, proto.PrefixVOD, func(w http.ResponseWriter, r *http.Request) {
		name := proto.StreamName(r.URL.Path, proto.StreamVOD)
		defer e.pinDemand(name)()
		// An eviction decided before our pin landed can still remove the
		// asset after MirrorAsset sees it present; with the pin now held,
		// one re-mirror is stable.
		for attempt := 0; attempt < 2; attempt++ {
			if err := e.MirrorAsset(name); err != nil {
				pullError(w, r, err)
				return
			}
			if _, ok := e.Server.Asset(name); ok {
				break
			}
		}
		base.ServeHTTP(w, r)
	})
	proto.HandleFunc(mux, proto.PrefixGroup, func(w http.ResponseWriter, r *http.Request) {
		name := proto.StreamName(r.URL.Path, proto.StreamGroup)
		if err := e.MirrorGroup(name); err != nil {
			pullError(w, r, err)
			return
		}
		base.ServeHTTP(w, r)
	})
	proto.HandleFunc(mux, proto.PrefixLive, func(w http.ResponseWriter, r *http.Request) {
		name := proto.StreamName(r.URL.Path, proto.StreamLive)
		if err := e.RelayChannel(name); err != nil {
			pullError(w, r, err)
			return
		}
		base.ServeHTTP(w, r)
	})
	return mux
}

// pullError maps an origin pull failure onto the client response: a
// missing upstream resource is the client's 404 (with the proto.Error
// JSON body every /v1 error carries), anything else means the edge
// could not reach or parse the origin — 502.
func pullError(w http.ResponseWriter, _ *http.Request, err error) {
	if errors.Is(err, streaming.ErrNotFound) {
		proto.WriteError(w, http.StatusNotFound, err.Error())
		return
	}
	proto.WriteError(w, http.StatusBadGateway, err.Error())
}

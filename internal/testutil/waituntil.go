// Package testutil holds small helpers shared by the repo's test
// suites. It must only be imported from _test.go files.
package testutil

import (
	"testing"
	"time"
)

// WaitUntil polls cond until it returns true, or fails the test with
// the formatted message once timeout has elapsed. Polling backs off
// from 200µs doubling to a 10ms cap, so fast conditions are caught in
// microseconds while slow ones don't spin a core. It replaces the
// hand-rolled `for !cond { time.Sleep(time.Millisecond) }` loops that
// make suites both slower (fixed 1ms grain) and flakier (silent
// fall-through when the deadline lapses without the condition).
//
// Must be called from the test's own goroutine: failure is reported
// via t.Fatalf.
func WaitUntil(t testing.TB, timeout time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	const maxBackoff = 10 * time.Millisecond
	for backoff := 200 * time.Microsecond; ; backoff *= 2 {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf(format, args...)
		}
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
		time.Sleep(backoff)
	}
}

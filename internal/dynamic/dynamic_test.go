package dynamic

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/asf"
	"repro/internal/capture"
	"repro/internal/codec"
	"repro/internal/contenttree"
	"repro/internal/encoder"
	"repro/internal/publish"
)

// fixture builds a 60 s, 9-slide lecture with its content tree and encoded
// asset.
type fixture struct {
	lec     *capture.Lecture
	tree    *contenttree.Tree
	header  asf.Header
	packets []asf.Packet
	index   asf.Index
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	p, err := codec.ByName("modem-56k")
	if err != nil {
		t.Fatal(err)
	}
	lec, err := capture.NewLecture(capture.LectureConfig{
		Title: "Dynamic lecture", Duration: 60 * time.Second, Profile: p,
		SlideCount: 9, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := publish.BuildContentTree(lec.Title, lec.Slides, lec.Duration, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := encoder.EncodeLecture(lec, encoder.Config{}, &buf); err != nil {
		t.Fatal(err)
	}
	h, pkts, ix, err := asf.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{lec: lec, tree: tree, header: h, packets: pkts, index: ix}
}

func TestPlanUnconstrainedWatchesEverything(t *testing.T) {
	fx := newFixture(t)
	plan, err := PlanFor(fx.tree, fx.lec.Slides, fx.lec.Duration, Audience{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Level != fx.tree.HighestLevel() {
		t.Fatalf("level = %d, want %d", plan.Level, fx.tree.HighestLevel())
	}
	if plan.Duration != fx.lec.Duration {
		t.Fatalf("duration = %v, want %v", plan.Duration, fx.lec.Duration)
	}
	if len(plan.Controls) != 0 {
		t.Fatalf("full watch needs no controls, got %v", plan.Controls)
	}
}

func TestPlanTimeBudgetPicksLevel(t *testing.T) {
	fx := newFixture(t)
	lv := fx.tree.LevelNodes()
	// Budget exactly the level-1 time: plan must pick level 1.
	plan, err := PlanFor(fx.tree, fx.lec.Slides, fx.lec.Duration, Audience{AvailableTime: lv[1]})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Level != 1 {
		t.Fatalf("level = %d, want 1 (budget %v)", plan.Level, lv[1])
	}
	if plan.Duration != lv[1] {
		t.Fatalf("plan duration %v, want %v", plan.Duration, lv[1])
	}
	// A budget below the summary is unsatisfiable.
	if _, err := PlanFor(fx.tree, fx.lec.Slides, fx.lec.Duration, Audience{AvailableTime: time.Second}); !errors.Is(err, ErrNoFit) {
		t.Fatalf("tiny budget err = %v, want ErrNoFit", err)
	}
}

func TestPlanBandwidthPicksProfile(t *testing.T) {
	fx := newFixture(t)
	plan, err := PlanFor(fx.tree, fx.lec.Slides, fx.lec.Duration, Audience{BandwidthBps: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Profile.Name != "modem-56k" {
		t.Fatalf("profile = %s, want modem-56k", plan.Profile.Name)
	}
	rich, err := PlanFor(fx.tree, fx.lec.Slides, fx.lec.Duration, Audience{BandwidthBps: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if rich.Profile.TotalBitsPerSecond() <= plan.Profile.TotalBitsPerSecond() {
		t.Fatal("richer link did not get a richer profile")
	}
}

func TestPlanReplayPlaysExactlySelectedIntervals(t *testing.T) {
	fx := newFixture(t)
	lv := fx.tree.LevelNodes()
	plan, err := PlanFor(fx.tree, fx.lec.Slides, fx.lec.Duration, Audience{AvailableTime: lv[1]})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Replay(fx.header, fx.packets, fx.index)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EventsInWallOrder() {
		t.Fatal("replay out of wall order")
	}
	// The session ends within the plan's duration (seeks snap to
	// keyframes, which can only start intervals earlier, never extend the
	// wall timeline beyond the budget).
	if res.EndedAt > plan.Duration {
		t.Fatalf("replay ran %v, plan budget %v", res.EndedAt, plan.Duration)
	}
	// Media outside the selected intervals must not be presented. Build
	// the selected set from the plan's segment IDs.
	selected := map[string][2]time.Duration{}
	for i, s := range fx.lec.Slides {
		end := fx.lec.Duration
		if i+1 < len(fx.lec.Slides) {
			end = fx.lec.Slides[i+1].At
		}
		selected[s.Name] = [2]time.Duration{s.At, end}
	}
	inPlan := func(pts time.Duration) bool {
		for _, id := range plan.SegmentIDs {
			key := id
			if id == fx.tree.Root().ID {
				key = fx.lec.Slides[0].Name
			}
			iv := selected[key]
			if pts >= iv[0] && pts < iv[1] {
				return true
			}
		}
		return false
	}
	late := 0
	for _, e := range res.Events {
		if !inPlan(e.PTS) {
			late++
		}
	}
	// Keyframe snapping may pull in a few frames before an interval
	// boundary, but never large swaths: allow under 5% spill.
	if late > len(res.Events)/20 {
		t.Fatalf("%d of %d presented events outside the plan", late, len(res.Events))
	}
}

func TestPlanErrorsOnEmptyTree(t *testing.T) {
	if _, err := PlanFor(contenttree.New(), nil, time.Second, Audience{}); err == nil {
		t.Fatal("empty tree accepted")
	}
}

package ocpn

import (
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/petri"
)

func seg(id string, start, dur time.Duration) media.Segment {
	return media.Segment{ID: id, Kind: media.KindVideo, Start: start, Duration: dur}
}

func TestClassifyAllRelations(t *testing.T) {
	s := time.Second
	tests := []struct {
		name    string
		a, b    media.Segment
		want    Relation
		swapped bool
	}{
		{"before", seg("a", 0, 2*s), seg("b", 5*s, 2*s), RelBefore, false},
		{"meets", seg("a", 0, 5*s), seg("b", 5*s, 2*s), RelMeets, false},
		{"overlaps", seg("a", 0, 5*s), seg("b", 3*s, 5*s), RelOverlaps, false},
		{"during", seg("a", 0, 10*s), seg("b", 3*s, 2*s), RelDuring, false},
		{"starts", seg("a", 0, 3*s), seg("b", 0, 7*s), RelStarts, false},
		{"finishes", seg("a", 0, 10*s), seg("b", 6*s, 4*s), RelFinishes, false},
		{"equals", seg("a", 2*s, 5*s), seg("b", 2*s, 5*s), RelEquals, false},
		{"before swapped", seg("a", 5*s, 2*s), seg("b", 0, 2*s), RelBefore, true},
		{"meets swapped", seg("a", 5*s, 2*s), seg("b", 0, 5*s), RelMeets, true},
		{"during swapped", seg("a", 3*s, 2*s), seg("b", 0, 10*s), RelDuring, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rel, swapped := Classify(tt.a, tt.b)
			if rel != tt.want || swapped != tt.swapped {
				t.Fatalf("Classify = %v,%v; want %v,%v", rel, swapped, tt.want, tt.swapped)
			}
		})
	}
}

func TestRelationString(t *testing.T) {
	if RelBefore.String() != "before" || RelEquals.String() != "equals" {
		t.Fatal("relation names wrong")
	}
	if got := Relation(42).String(); got != "relation(42)" {
		t.Fatalf("unknown relation = %q", got)
	}
}

func TestFromRelationBuildsCorrectPlayout(t *testing.T) {
	a := seg("a", 0, 5*time.Second)
	b := seg("b", 5*time.Second, 3*time.Second)
	model, err := FromRelation(RelMeets, a, b)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := model.Simulate(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := rep.Trace.PlayoutOf("media_a")
	pb, _ := rep.Trace.PlayoutOf("media_b")
	if pa.End != pb.Start {
		t.Fatalf("meets violated: a ends %v, b starts %v", pa.End, pb.Start)
	}
}

func TestFromRelationRejectsMismatch(t *testing.T) {
	a := seg("a", 0, 2*time.Second)
	b := seg("b", 10*time.Second, 2*time.Second)
	if _, err := FromRelation(RelMeets, a, b); err == nil {
		t.Fatal("mismatched relation accepted")
	}
	// Swapped operands must be rejected too.
	if _, err := FromRelation(RelBefore, b, a); err == nil {
		t.Fatal("swapped relation accepted")
	}
}

func TestFloorControlNetMutualExclusion(t *testing.T) {
	net, initial, err := FloorControlNet(3)
	if err != nil {
		t.Fatal(err)
	}
	// In every reachable marking at most one user is speaking.
	res := net.Reachability(initial, 100_000)
	if res.Truncated {
		t.Fatal("floor net exploration truncated")
	}
	// Check mutual exclusion by walking all reachable markings again.
	seen := map[string]bool{initial.Key(): true}
	queue := []petri.Marking{initial}
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		speaking := m["user0_speaking"] + m["user1_speaking"] + m["user2_speaking"]
		if speaking > 1 {
			t.Fatalf("marking %v has %d speakers", m, speaking)
		}
		if speaking == 1 && m["floor"] != 0 {
			t.Fatalf("marking %v: floor token present while someone speaks", m)
		}
		for _, tr := range net.Enabled(m) {
			next, err := net.Fire(m, tr)
			if err != nil {
				t.Fatal(err)
			}
			if !seen[next.Key()] {
				seen[next.Key()] = true
				queue = append(queue, next)
			}
		}
	}
}

func TestFloorControlNetPInvariants(t *testing.T) {
	net, initial, err := FloorControlNet(2)
	if err != nil {
		t.Fatal(err)
	}
	// P-invariants: floor + all speaking = 1, and per user
	// idle + waiting + speaking = 1, in every reachable marking.
	seen := map[string]bool{initial.Key(): true}
	queue := []petri.Marking{initial}
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		if m["floor"]+m["user0_speaking"]+m["user1_speaking"] != 1 {
			t.Fatalf("floor invariant violated in %v", m)
		}
		for _, u := range []string{"user0", "user1"} {
			if m[petri.PlaceID(u+"_idle")]+m[petri.PlaceID(u+"_waiting")]+m[petri.PlaceID(u+"_speaking")] != 1 {
				t.Fatalf("user invariant violated for %s in %v", u, m)
			}
		}
		for _, tr := range net.Enabled(m) {
			next, err := net.Fire(m, tr)
			if err != nil {
				t.Fatal(err)
			}
			if !seen[next.Key()] {
				seen[next.Key()] = true
				queue = append(queue, next)
			}
		}
	}
	// No deadlocks: someone can always act.
	if net.HasDeadlock(initial, 100_000) {
		t.Fatal("floor-control net deadlocks")
	}
}

func TestFloorControlNetValidation(t *testing.T) {
	if _, _, err := FloorControlNet(0); err == nil {
		t.Fatal("zero users accepted")
	}
}

func TestFloorControlGrantSequence(t *testing.T) {
	net, initial, err := FloorControlNet(2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := net.FireSequence(initial, "user0_request", "user0_grant", "user1_request")
	if err != nil {
		t.Fatal(err)
	}
	// user1 cannot be granted while user0 holds the floor.
	if net.EnabledIn(m, "user1_grant") {
		t.Fatal("user1 granted while user0 speaks")
	}
	m, err = net.FireSequence(m, "user0_release", "user1_grant")
	if err != nil {
		t.Fatal(err)
	}
	if m["user1_speaking"] != 1 {
		t.Fatalf("marking %v: user1 not speaking after release+grant", m)
	}
}

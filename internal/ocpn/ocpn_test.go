package ocpn

import (
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/petri"
)

// lecture returns a small lecture presentation: video in three segments
// with slide images meeting the video boundaries.
func lecture() media.Presentation {
	return media.Presentation{
		Title: "lecture",
		Segments: []media.Segment{
			{ID: "video1", Kind: media.KindVideo, Stream: media.StreamVideo, Start: 0, Duration: 10 * time.Second},
			{ID: "video2", Kind: media.KindVideo, Stream: media.StreamVideo, Start: 10 * time.Second, Duration: 10 * time.Second},
			{ID: "video3", Kind: media.KindVideo, Stream: media.StreamVideo, Start: 20 * time.Second, Duration: 10 * time.Second},
			{ID: "slide1", Kind: media.KindImage, Stream: media.StreamImage, Start: 0, Duration: 10 * time.Second},
			{ID: "slide2", Kind: media.KindImage, Stream: media.StreamImage, Start: 10 * time.Second, Duration: 10 * time.Second},
			{ID: "slide3", Kind: media.KindImage, Stream: media.StreamImage, Start: 20 * time.Second, Duration: 10 * time.Second},
		},
	}
}

func TestModelKindString(t *testing.T) {
	if OCPN.String() != "OCPN" || XOCPN.String() != "XOCPN" || Extended.String() != "ExtendedTimedPN" {
		t.Fatal("model names wrong")
	}
	if got := ModelKind(9).String(); got != "model(9)" {
		t.Fatalf("unknown model = %q", got)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(ModelKind(0), lecture()); err == nil {
		t.Error("invalid kind accepted")
	}
	if _, err := Build(OCPN, media.Presentation{Title: "empty"}); err == nil {
		t.Error("empty presentation accepted")
	}
	bad := media.Presentation{Segments: []media.Segment{{ID: "", Kind: media.KindVideo}}}
	if _, err := Build(OCPN, bad); err == nil {
		t.Error("invalid presentation accepted")
	}
}

func TestBuildStructuresPerKind(t *testing.T) {
	p := lecture()
	ocpnModel, err := Build(OCPN, p)
	if err != nil {
		t.Fatal(err)
	}
	if ocpnModel.Net.Place("chan_video1") != nil {
		t.Error("OCPN must not have channel places")
	}
	if ocpnModel.Net.Place("paused") != nil {
		t.Error("OCPN must not have a paused place")
	}

	xModel, err := Build(XOCPN, p)
	if err != nil {
		t.Fatal(err)
	}
	if xModel.Net.Place("chan_video1") == nil {
		t.Error("XOCPN missing channel place")
	}
	if xModel.Net.Place("paused") != nil {
		t.Error("XOCPN must not have a paused place")
	}

	eModel, err := Build(Extended, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []petri.PlaceID{"chan_video1", "paused", "pauseReq", "resumeReq", "skip_video1"} {
		if eModel.Net.Place(id) == nil {
			t.Errorf("Extended missing place %s", id)
		}
	}
	if err := eModel.Net.Validate(); err != nil {
		t.Errorf("extended net invalid: %v", err)
	}
}

func TestOCPNNominalPlayout(t *testing.T) {
	model, err := Build(OCPN, lecture())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := model.Simulate(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MisScheduled != 0 {
		t.Fatalf("nominal OCPN run mis-scheduled %d segments: %+v", rep.MisScheduled, rep.Segments)
	}
	pi, ok := rep.Trace.PlayoutOf("media_video2")
	if !ok {
		t.Fatal("video2 never played")
	}
	if pi.Start != 10*time.Second || pi.End != 20*time.Second {
		t.Fatalf("video2 playout [%v,%v], want [10s,20s]", pi.Start, pi.End)
	}
}

func TestOCPNIsSafeAndDeadlockFree(t *testing.T) {
	model, err := Build(OCPN, lecture())
	if err != nil {
		t.Fatal(err)
	}
	safe, complete := model.Net.IsSafe(model.Initial, 100_000)
	if !safe || !complete {
		t.Fatalf("OCPN net safe=%v complete=%v, want true,true", safe, complete)
	}
	bad := model.Net.DeadlocksExcept(model.Initial, "done", 100_000)
	if len(bad) != 0 {
		t.Fatalf("OCPN net has %d unexpected deadlocks", len(bad))
	}
}

func TestXOCPNWaitsForLateData(t *testing.T) {
	sc := Scenario{
		Arrivals: []Arrival{{SegmentID: "video2", At: 14 * time.Second}},
	}
	xModel, err := Build(XOCPN, lecture())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := xModel.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	// XOCPN handles transport: video2 starts exactly at its data arrival.
	if rep.MisScheduled != 0 {
		t.Fatalf("XOCPN mis-scheduled %d under late data: %+v", rep.MisScheduled, rep.Segments)
	}
	pi, _ := rep.Trace.PlayoutOf("media_video2")
	if pi.Start != 14*time.Second {
		t.Fatalf("video2 started at %v, want 14s", pi.Start)
	}

	// OCPN plays at the nominal time regardless — a mis-schedule.
	oModel, err := Build(OCPN, lecture())
	if err != nil {
		t.Fatal(err)
	}
	oRep, err := oModel.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if oRep.MisScheduled == 0 {
		t.Fatal("OCPN reported no mis-schedule under late data")
	}
}

func TestExtendedHandlesPause(t *testing.T) {
	sc := Scenario{
		Interactions: []Interaction{
			{Kind: Pause, At: 8 * time.Second},
			{Kind: Resume, At: 13 * time.Second},
		},
	}
	eModel, err := Build(Extended, lecture())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eModel.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MisScheduled != 0 {
		t.Fatalf("extended model mis-scheduled %d under pause: %+v", rep.MisScheduled, rep.Segments)
	}
	// video2 nominal 10s falls inside the pause window [8s,13s): deferred
	// to 13s.
	pi, _ := rep.Trace.PlayoutOf("media_video2")
	if pi.Start != 13*time.Second {
		t.Fatalf("video2 started at %v, want 13s (deferred by pause)", pi.Start)
	}
	// video3 nominal 20s is outside the window: unaffected.
	pi3, _ := rep.Trace.PlayoutOf("media_video3")
	if pi3.Start != 20*time.Second {
		t.Fatalf("video3 started at %v, want 20s", pi3.Start)
	}

	// Baselines ignore the pause and mis-schedule the deferred segments.
	for _, kind := range []ModelKind{OCPN, XOCPN} {
		m, err := Build(kind, lecture())
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Simulate(sc)
		if err != nil {
			t.Fatal(err)
		}
		if r.MisScheduled == 0 {
			t.Errorf("%s reported no mis-schedule under pause", kind)
		}
	}
}

func TestExtendedHandlesSkip(t *testing.T) {
	sc := Scenario{
		Interactions: []Interaction{{Kind: Skip, At: 2 * time.Second, SegmentID: "video2"}},
	}
	eModel, err := Build(Extended, lecture())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eModel.Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MisScheduled != 0 {
		t.Fatalf("extended model mis-scheduled %d under skip: %+v", rep.MisScheduled, rep.Segments)
	}
	if _, played := rep.Trace.PlayoutOf("media_video2"); played {
		t.Fatal("skipped segment video2 played anyway")
	}
	// The presentation still completes: done place marked.
	if rep.Trace.Final["done"] != 1 {
		t.Fatalf("final marking %v, want done=1", rep.Trace.Final)
	}
}

func TestCompareModelsE9Shape(t *testing.T) {
	// The E9 scenario: a pause window plus one late segment.
	sc := Scenario{
		Interactions: []Interaction{
			{Kind: Pause, At: 8 * time.Second},
			{Kind: Resume, At: 13 * time.Second},
		},
		Arrivals: []Arrival{{SegmentID: "video3", At: 24 * time.Second}},
	}
	reports, err := CompareModels(lecture(), sc)
	if err != nil {
		t.Fatal(err)
	}
	o, x, e := reports[OCPN].MisScheduled, reports[XOCPN].MisScheduled, reports[Extended].MisScheduled
	if e != 0 {
		t.Errorf("Extended mis-scheduled %d, want 0", e)
	}
	if x == 0 {
		t.Error("XOCPN should mis-schedule under interaction")
	}
	if o <= x {
		t.Errorf("OCPN (%d) should mis-schedule at least as much as XOCPN (%d) plus transport misses", o, x)
	}
}

func TestIntendedScheduleUnmatchedPause(t *testing.T) {
	segs := lecture().Segments
	plan := IntendedSchedule(segs, Scenario{
		Interactions: []Interaction{{Kind: Pause, At: 15 * time.Second}},
	})
	if plan["video1"].Play != true {
		t.Error("video1 starts before the pause; must play")
	}
	if plan["video3"].Play {
		t.Error("video3 starts after an unmatched pause; must not play")
	}
}

func TestIntendedScheduleChainedPauses(t *testing.T) {
	segs := []media.Segment{
		{ID: "s", Kind: media.KindVideo, Start: 5 * time.Second, Duration: time.Second},
	}
	plan := IntendedSchedule(segs, Scenario{
		Interactions: []Interaction{
			{Kind: Pause, At: 4 * time.Second},
			{Kind: Resume, At: 6 * time.Second},
			{Kind: Pause, At: 6 * time.Second},
			{Kind: Resume, At: 9 * time.Second},
		},
	})
	// Deferred from 5s to 6s by the first window, which lands inside the
	// second window, deferring again to 9s.
	if got := plan["s"].Start; got != 9*time.Second {
		t.Fatalf("chained defer start = %v, want 9s", got)
	}
}

func TestSimulateUnknownInteraction(t *testing.T) {
	eModel, err := Build(Extended, lecture())
	if err != nil {
		t.Fatal(err)
	}
	_, err = eModel.Simulate(Scenario{
		Interactions: []Interaction{{Kind: InteractionKind(99), At: time.Second}},
	})
	if err == nil {
		t.Fatal("unknown interaction accepted")
	}
}

func TestInteractionKindString(t *testing.T) {
	if Pause.String() != "pause" || Resume.String() != "resume" || Skip.String() != "skip" {
		t.Fatal("interaction names wrong")
	}
	if got := InteractionKind(7).String(); got != "interaction(7)" {
		t.Fatalf("unknown interaction = %q", got)
	}
}

func TestSegmentsAccessorSorted(t *testing.T) {
	p := media.Presentation{
		Title: "unsorted",
		Segments: []media.Segment{
			{ID: "b", Kind: media.KindVideo, Start: 10 * time.Second, Duration: time.Second},
			{ID: "a", Kind: media.KindVideo, Start: 0, Duration: time.Second},
		},
	}
	m, err := Build(OCPN, p)
	if err != nil {
		t.Fatal(err)
	}
	segs := m.Segments()
	if segs[0].ID != "a" || segs[1].ID != "b" {
		t.Fatalf("segments not sorted by start: %v, %v", segs[0].ID, segs[1].ID)
	}
}

package ocpn

import (
	"errors"
	"testing"
	"time"

	"repro/internal/media"
)

func composeSegs() []media.Segment {
	s := time.Second
	return []media.Segment{
		{ID: "video", Kind: media.KindVideo, Duration: 30 * s},
		{ID: "audio", Kind: media.KindAudio, Duration: 30 * s},
		{ID: "slide1", Kind: media.KindImage, Duration: 10 * s},
		{ID: "slide2", Kind: media.KindImage, Duration: 20 * s},
		{ID: "caption", Kind: media.KindText, Duration: 5 * s},
	}
}

func TestComposeLectureTimeline(t *testing.T) {
	s := time.Second
	p, err := Compose("composed", composeSegs(), []Constraint{
		{Rel: RelEquals, A: "video", B: "audio"},  // lip sync
		{Rel: RelStarts, A: "slide1", B: "video"}, // slide1 with video start
		{Rel: RelMeets, A: "slide1", B: "slide2"}, // slide2 follows slide1
		{Rel: RelDuring, A: "video", B: "caption", Offset: 12 * s},
	})
	if err != nil {
		t.Fatal(err)
	}
	starts := map[string]time.Duration{}
	for _, seg := range p.Segments {
		starts[seg.ID] = seg.Start
	}
	if starts["video"] != 0 || starts["audio"] != 0 {
		t.Fatalf("AV not aligned at 0: %v", starts)
	}
	if starts["slide1"] != 0 {
		t.Fatalf("slide1 start = %v", starts["slide1"])
	}
	if starts["slide2"] != 10*s {
		t.Fatalf("slide2 start = %v, want 10s", starts["slide2"])
	}
	if starts["caption"] != 12*s {
		t.Fatalf("caption start = %v, want 12s", starts["caption"])
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The composed presentation is directly buildable and schedulable.
	model, err := Build(OCPN, p)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := model.Simulate(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MisScheduled != 0 {
		t.Fatalf("composed presentation mis-scheduled: %+v", rep.Segments)
	}
}

func TestComposeNormalizesNegativeStarts(t *testing.T) {
	s := time.Second
	segs := []media.Segment{
		{ID: "b", Kind: media.KindVideo, Duration: 5 * s},
		{ID: "a", Kind: media.KindAudio, Duration: 5 * s},
	}
	// "a before b" with the anchor being b: a solves to a negative start,
	// which normalization shifts to zero.
	p, err := Compose("norm", segs, []Constraint{{Rel: RelBefore, A: "a", B: "b", Gap: 2 * s}})
	if err != nil {
		t.Fatal(err)
	}
	starts := map[string]time.Duration{}
	for _, seg := range p.Segments {
		starts[seg.ID] = seg.Start
	}
	if starts["a"] != 0 || starts["b"] != 7*s {
		t.Fatalf("starts = %v, want a=0 b=7s", starts)
	}
}

func TestComposeInconsistentCycle(t *testing.T) {
	s := time.Second
	segs := []media.Segment{
		{ID: "x", Kind: media.KindVideo, Duration: 10 * s},
		{ID: "y", Kind: media.KindVideo, Duration: 10 * s},
	}
	_, err := Compose("bad", segs, []Constraint{
		{Rel: RelMeets, A: "x", B: "y"},
		{Rel: RelEquals, A: "x", B: "y"},
	})
	if !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
}

func TestComposeUnderConstrained(t *testing.T) {
	segs := composeSegs()
	_, err := Compose("loose", segs, []Constraint{
		{Rel: RelEquals, A: "video", B: "audio"},
	})
	if !errors.Is(err, ErrUnderConstrained) {
		t.Fatalf("err = %v, want ErrUnderConstrained", err)
	}
}

func TestComposeUnknownSegment(t *testing.T) {
	_, err := Compose("ghost", composeSegs(), []Constraint{
		{Rel: RelMeets, A: "video", B: "nope"},
	})
	if !errors.Is(err, ErrUnknownSegment) {
		t.Fatalf("err = %v, want ErrUnknownSegment", err)
	}
}

func TestComposeRelationPreconditions(t *testing.T) {
	s := time.Second
	segs := []media.Segment{
		{ID: "long", Kind: media.KindVideo, Duration: 20 * s},
		{ID: "short", Kind: media.KindText, Duration: 5 * s},
	}
	bad := []Constraint{
		{Rel: RelEquals, A: "long", B: "short"},                   // unequal durations
		{Rel: RelStarts, A: "long", B: "short"},                   // A not shorter
		{Rel: RelFinishes, A: "short", B: "long"},                 // B not shorter
		{Rel: RelBefore, A: "long", B: "short"},                   // missing gap
		{Rel: RelOverlaps, A: "long", B: "short", Offset: 0},      // bad offset
		{Rel: RelOverlaps, A: "long", B: "short", Offset: 10 * s}, // B ends inside A
		{Rel: RelDuring, A: "long", B: "short", Offset: 18 * s},   // B ends past A
		{Rel: RelUnrelated, A: "long", B: "short"},                // unsupported
	}
	for i, c := range bad {
		if _, err := Compose("t", segs, []Constraint{c}); err == nil {
			t.Errorf("bad constraint %d accepted", i)
		}
	}
}

func TestComposeDuplicateSegments(t *testing.T) {
	s := time.Second
	segs := []media.Segment{
		{ID: "a", Kind: media.KindVideo, Duration: s},
		{ID: "a", Kind: media.KindVideo, Duration: s},
	}
	if _, err := Compose("dup", segs, nil); err == nil {
		t.Fatal("duplicate segments accepted")
	}
	if _, err := Compose("empty", nil, nil); err == nil {
		t.Fatal("empty segments accepted")
	}
}

func TestComposeRedundantConsistentConstraints(t *testing.T) {
	s := time.Second
	segs := []media.Segment{
		{ID: "a", Kind: media.KindVideo, Duration: 10 * s},
		{ID: "b", Kind: media.KindVideo, Duration: 10 * s},
	}
	// meets stated twice: consistent, accepted.
	p, err := Compose("redundant", segs, []Constraint{
		{Rel: RelMeets, A: "a", B: "b"},
		{Rel: RelMeets, A: "a", B: "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Segments[1].Start != 10*s {
		t.Fatalf("b start = %v", p.Segments[1].Start)
	}
}

package ocpn

import (
	"fmt"

	"repro/internal/media"
	"repro/internal/petri"
)

// Relation enumerates Allen's interval relations between two media
// segments, the vocabulary OCPN uses to express temporal composition
// (Little & Ghafoor's seven relations; inverses are obtained by swapping
// the operands).
type Relation int

// Allen relations (a Relation b).
const (
	RelBefore    Relation = iota + 1 // a ends strictly before b starts
	RelMeets                         // a ends exactly when b starts
	RelOverlaps                      // a starts first; b starts during a; a ends during b
	RelDuring                        // b lies strictly inside a
	RelStarts                        // same start; a ends first
	RelFinishes                      // same end; b starts first... see Classify
	RelEquals                        // identical intervals
	RelUnrelated                     // none of the above (after considering swap)
)

var relationNames = map[Relation]string{
	RelBefore:    "before",
	RelMeets:     "meets",
	RelOverlaps:  "overlaps",
	RelDuring:    "during",
	RelStarts:    "starts",
	RelFinishes:  "finishes",
	RelEquals:    "equals",
	RelUnrelated: "unrelated",
}

// String implements fmt.Stringer.
func (r Relation) String() string {
	if s, ok := relationNames[r]; ok {
		return s
	}
	return fmt.Sprintf("relation(%d)", int(r))
}

// Classify determines the Allen relation of a with respect to b. The
// returned swapped flag is true when the relation holds for (b, a) instead
// — i.e. the inverse relation holds for (a, b).
func Classify(a, b media.Segment) (rel Relation, swapped bool) {
	if r := classifyOrdered(a, b); r != RelUnrelated {
		return r, false
	}
	if r := classifyOrdered(b, a); r != RelUnrelated {
		return r, true
	}
	return RelUnrelated, false
}

func classifyOrdered(a, b media.Segment) Relation {
	switch {
	case a.Start == b.Start && a.End() == b.End():
		return RelEquals
	case a.Start == b.Start && a.End() < b.End():
		return RelStarts
	case a.End() == b.End() && a.Start < b.Start:
		return RelFinishes
	case a.End() < b.Start:
		return RelBefore
	case a.End() == b.Start:
		return RelMeets
	case a.Start < b.Start && b.Start < a.End() && a.End() < b.End():
		return RelOverlaps
	case a.Start < b.Start && b.End() < a.End():
		return RelDuring
	default:
		return RelUnrelated
	}
}

// FromRelation builds the textbook two-segment OCPN for a given Allen
// relation. The segments' Start/Duration fields must actually satisfy the
// relation (verified); the net is then the standard fork/delay/media/join
// construction whose simulated playout reproduces the intervals.
func FromRelation(rel Relation, a, b media.Segment) (*Model, error) {
	got, swapped := Classify(a, b)
	if got != rel || swapped {
		return nil, fmt.Errorf("ocpn: segments %s,%s realize %q (swapped=%v), not %q",
			a.ID, b.ID, got, swapped, rel)
	}
	p := media.Presentation{
		Title:    fmt.Sprintf("%s %s %s", a.ID, rel, b.ID),
		Segments: []media.Segment{a, b},
	}
	return Build(OCPN, p)
}

// FloorControlNet builds the floor-control Petri net of the paper's
// multi-user distance-learning scenario: n user subnets contend for a
// single floor token (a PlaceResource), guaranteeing mutual exclusion. The
// returned marking is the idle state: floor free, every user thinking.
//
// Per user i the net has places user<i>_idle, user<i>_waiting,
// user<i>_speaking and transitions user<i>_request, user<i>_grant,
// user<i>_release, and user<i>_cancel (withdrawing a pending request).
func FloorControlNet(n int) (*petri.Net, petri.Marking, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("ocpn: floor control needs at least one user, got %d", n)
	}
	net := petri.NewNet(fmt.Sprintf("floor-control-%d", n))
	if err := net.AddPlace(petri.Place{ID: "floor", Kind: petri.PlaceResource}); err != nil {
		return nil, nil, err
	}
	marking := petri.Marking{"floor": 1}
	for i := 0; i < n; i++ {
		idle := petri.PlaceID(fmt.Sprintf("user%d_idle", i))
		waiting := petri.PlaceID(fmt.Sprintf("user%d_waiting", i))
		speaking := petri.PlaceID(fmt.Sprintf("user%d_speaking", i))
		request := petri.TransitionID(fmt.Sprintf("user%d_request", i))
		grant := petri.TransitionID(fmt.Sprintf("user%d_grant", i))
		release := petri.TransitionID(fmt.Sprintf("user%d_release", i))
		cancel := petri.TransitionID(fmt.Sprintf("user%d_cancel", i))
		steps := []error{
			net.AddPlace(petri.Place{ID: idle}),
			net.AddPlace(petri.Place{ID: waiting}),
			net.AddPlace(petri.Place{ID: speaking}),
			net.AddTransition(petri.Transition{ID: request}),
			net.AddTransition(petri.Transition{ID: grant}),
			net.AddTransition(petri.Transition{ID: release}),
			net.AddInput(idle, request, 1),
			net.AddOutput(request, waiting, 1),
			net.AddInput(waiting, grant, 1),
			net.AddInput("floor", grant, 1),
			net.AddOutput(grant, speaking, 1),
			net.AddInput(speaking, release, 1),
			net.AddOutput(release, idle, 1),
			net.AddOutput(release, "floor", 1),
			net.AddTransition(petri.Transition{ID: cancel}),
			net.AddInput(waiting, cancel, 1),
			net.AddOutput(cancel, idle, 1),
		}
		for _, err := range steps {
			if err != nil {
				return nil, nil, err
			}
		}
		marking[idle] = 1
	}
	return net, marking, nil
}

package ocpn

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/media"
)

// randomPresentation builds a valid random presentation of sequential and
// overlapping segments.
func randomPresentation(seed int64, n int) media.Presentation {
	rng := rand.New(rand.NewSource(seed))
	p := media.Presentation{Title: "random"}
	var cursor time.Duration
	for i := 0; i < n; i++ {
		dur := time.Duration(1+rng.Intn(20)) * time.Second
		start := cursor
		if i > 0 && rng.Intn(3) == 0 {
			// Overlap with the previous segment.
			back := time.Duration(rng.Intn(5)) * time.Second
			if back > start {
				back = start
			}
			start -= back
		}
		p.Segments = append(p.Segments, media.Segment{
			ID:       fmt.Sprintf("seg%02d", i),
			Kind:     media.KindVideo,
			Start:    start,
			Duration: dur,
		})
		if end := start + dur; end > cursor {
			cursor = end
		}
	}
	return p
}

// TestAllModelsSafeOnRandomPresentations: every generated net is 1-bounded
// (safe) from its initial marking — the standard OCPN well-formedness
// property — and has no unexpected deadlocks.
func TestAllModelsSafeOnRandomPresentations(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		p := randomPresentation(seed, int(sz%6)+2)
		for _, kind := range []ModelKind{OCPN, XOCPN, Extended} {
			model, err := Build(kind, p)
			if err != nil {
				return false
			}
			// For XOCPN/Extended the channel tokens arrive by injection;
			// for the structural safety check, mark them present.
			initial := model.Initial.Clone()
			if kind != OCPN {
				for _, s := range model.Segments() {
					initial[chanPlace(s.ID)] = 1
				}
			}
			safe, _ := model.Net.IsSafe(initial, 50_000)
			if !safe {
				return false
			}
			bad := model.Net.DeadlocksExcept(initial, placeDone, 50_000)
			if len(bad) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestNominalScenarioNeverMisSchedules: with no interactions and on-time
// data, every model reproduces the nominal schedule exactly.
func TestNominalScenarioNeverMisSchedules(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		p := randomPresentation(seed, int(sz%6)+2)
		reports, err := CompareModels(p, Scenario{})
		if err != nil {
			return false
		}
		for _, rep := range reports {
			if rep.MisScheduled != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestExtendedAlwaysMatchesIntended: under random pause windows and late
// arrivals, the extended model matches the ground-truth intended schedule
// while OCPN never beats it.
func TestExtendedAlwaysMatchesIntended(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x7a11))
		p := randomPresentation(seed, int(sz%5)+2)
		total := p.Duration()
		if total == 0 {
			return true
		}
		var sc Scenario
		// One random pause window.
		pauseAt := time.Duration(rng.Int63n(int64(total)))
		resumeAt := pauseAt + time.Duration(1+rng.Intn(10))*time.Second
		sc.Interactions = []Interaction{
			{Kind: Pause, At: pauseAt},
			{Kind: Resume, At: resumeAt},
		}
		// One random late arrival.
		seg := p.Segments[rng.Intn(len(p.Segments))]
		sc.Arrivals = []Arrival{{
			SegmentID: seg.ID,
			At:        seg.Start + time.Duration(rng.Intn(8))*time.Second,
		}}

		reports, err := CompareModels(p, sc)
		if err != nil {
			return false
		}
		if reports[Extended].MisScheduled != 0 {
			return false
		}
		return reports[OCPN].MisScheduled >= reports[Extended].MisScheduled
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

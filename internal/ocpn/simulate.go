package ocpn

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/media"
	"repro/internal/petri"
)

// InteractionKind enumerates the user interactions of the extended model.
type InteractionKind int

// User interactions.
const (
	Pause InteractionKind = iota + 1
	Resume
	Skip
)

var interactionNames = map[InteractionKind]string{
	Pause:  "pause",
	Resume: "resume",
	Skip:   "skip",
}

// String implements fmt.Stringer.
func (k InteractionKind) String() string {
	if s, ok := interactionNames[k]; ok {
		return s
	}
	return fmt.Sprintf("interaction(%d)", int(k))
}

// Interaction is a timed user action on the presentation.
type Interaction struct {
	Kind InteractionKind
	At   time.Duration
	// SegmentID applies to Skip only.
	SegmentID string
}

// Arrival records when a segment's data becomes available at the client
// (the XOCPN channel token). Segments without an explicit arrival are
// assumed on time (arrival at nominal start).
type Arrival struct {
	SegmentID string
	At        time.Duration
}

// Scenario bundles the external events a simulation is subjected to.
type Scenario struct {
	Interactions []Interaction
	Arrivals     []Arrival
	// Horizon bounds the run; zero runs to quiescence.
	Horizon time.Duration
}

// SegmentOutcome compares a segment's intended schedule with what the
// model actually did.
type SegmentOutcome struct {
	ID      string
	Nominal time.Duration
	// Intended is when the segment should start under the ground-truth
	// semantics (deferred-start pause + wait-for-data + skip).
	Intended time.Duration
	// IntendedPlay is false when the ground truth says the segment must
	// not play at all (it was skipped).
	IntendedPlay bool
	// Actual is when the model started the segment (valid when Played).
	Actual time.Duration
	Played bool
	// MisScheduled is true when the model deviates from the ground truth.
	MisScheduled bool
	Reason       string
}

// Report is the outcome of simulating one model under one scenario.
type Report struct {
	Model    ModelKind
	Segments []SegmentOutcome
	// MisScheduled counts deviating segments.
	MisScheduled int
	Trace        *petri.Trace
}

// Simulate runs the model under the scenario and scores every segment
// against the ground-truth intended schedule. Models that lack places for
// an event class simply never see those events: OCPN ignores both arrivals
// and interactions, XOCPN sees arrivals only.
func (m *Model) Simulate(sc Scenario) (*Report, error) {
	sim := petri.NewSimulator(m.Net, m.Initial)

	// Channel arrivals: XOCPN and Extended consume them; on-time arrivals
	// are synthesized for segments without an explicit entry.
	if m.Kind == XOCPN || m.Kind == Extended {
		explicit := make(map[string]time.Duration, len(sc.Arrivals))
		for _, a := range sc.Arrivals {
			explicit[a.SegmentID] = a.At
		}
		for _, s := range m.segments {
			at, ok := explicit[s.ID]
			if !ok {
				at = s.Start
			}
			if err := sim.Schedule(petri.Injection{At: at, Place: chanPlace(s.ID), Tokens: 1}); err != nil {
				return nil, fmt.Errorf("ocpn: schedule arrival for %s: %w", s.ID, err)
			}
		}
	}

	// Interactions: only the extended model has the machinery.
	if m.Kind == Extended {
		for _, ia := range sc.Interactions {
			var place petri.PlaceID
			switch ia.Kind {
			case Pause:
				place = placePauseReq
			case Resume:
				place = placeResumeReq
			case Skip:
				place = skipPlace(ia.SegmentID)
			default:
				return nil, fmt.Errorf("ocpn: unknown interaction kind %d", int(ia.Kind))
			}
			if err := sim.Schedule(petri.Injection{At: ia.At, Place: place, Tokens: 1}); err != nil {
				return nil, fmt.Errorf("ocpn: schedule %s: %w", ia.Kind, err)
			}
		}
	}

	trace, err := sim.Run(sc.Horizon)
	if err != nil {
		return nil, fmt.Errorf("ocpn: simulate %s: %w", m.Kind, err)
	}
	return m.score(sc, trace), nil
}

// score compares the trace against the intended schedule.
func (m *Model) score(sc Scenario, trace *petri.Trace) *Report {
	intended := IntendedSchedule(m.segments, sc)
	rep := &Report{Model: m.Kind, Trace: trace}
	for _, s := range m.segments {
		out := SegmentOutcome{ID: s.ID, Nominal: s.Start}
		plan := intended[s.ID]
		out.Intended = plan.Start
		out.IntendedPlay = plan.Play

		if pi, ok := trace.PlayoutOf(mediaPlace(s.ID)); ok {
			out.Played = true
			out.Actual = pi.Start
		}

		switch {
		case out.IntendedPlay && !out.Played:
			out.MisScheduled = true
			out.Reason = "segment never played"
		case !out.IntendedPlay && out.Played:
			out.MisScheduled = true
			out.Reason = "skipped segment played anyway"
		case out.IntendedPlay && out.Played && out.Actual != out.Intended:
			out.MisScheduled = true
			if out.Actual < out.Intended {
				out.Reason = fmt.Sprintf("started %v early (data/interaction ignored)", out.Intended-out.Actual)
			} else {
				out.Reason = fmt.Sprintf("started %v late", out.Actual-out.Intended)
			}
		}
		if out.MisScheduled {
			rep.MisScheduled++
		}
		rep.Segments = append(rep.Segments, out)
	}
	return rep
}

// Planned is the ground-truth plan for one segment.
type Planned struct {
	Start time.Duration
	Play  bool
}

// IntendedSchedule computes the ground-truth schedule: each segment starts
// at the latest of its nominal start, its data arrival, and the end of any
// pause window covering that instant (deferred-start pause). Skipped
// segments do not play. The computation is independent of any Petri net so
// every model is judged against the same reference.
func IntendedSchedule(segments []media.Segment, sc Scenario) map[string]Planned {
	arrival := make(map[string]time.Duration, len(segments))
	for _, s := range segments {
		arrival[s.ID] = s.Start
	}
	for _, a := range sc.Arrivals {
		arrival[a.SegmentID] = a.At
	}
	skipped := make(map[string]bool)
	type window struct{ from, to time.Duration }
	var windows []window
	var pending *time.Duration
	ias := make([]Interaction, len(sc.Interactions))
	copy(ias, sc.Interactions)
	sort.SliceStable(ias, func(i, j int) bool { return ias[i].At < ias[j].At })
	for _, ia := range ias {
		switch ia.Kind {
		case Pause:
			if pending == nil {
				at := ia.At
				pending = &at
			}
		case Resume:
			if pending != nil {
				windows = append(windows, window{*pending, ia.At})
				pending = nil
			}
		case Skip:
			skipped[ia.SegmentID] = true
		}
	}

	out := make(map[string]Planned, len(segments))
	for _, s := range segments {
		if skipped[s.ID] {
			out[s.ID] = Planned{Play: false}
			continue
		}
		start := s.Start
		if at := arrival[s.ID]; at > start {
			start = at
		}
		// Apply pause windows repeatedly: deferring into a later window
		// defers again.
		moved := true
		for moved {
			moved = false
			for _, w := range windows {
				if start >= w.from && start < w.to {
					start = w.to
					moved = true
				}
			}
		}
		// An unmatched pause at the end freezes everything after it.
		if pending != nil && start >= *pending {
			out[s.ID] = Planned{Play: false}
			continue
		}
		out[s.ID] = Planned{Start: start, Play: true}
	}
	return out
}

// CompareModels builds all three models for the presentation, runs the same
// scenario through each, and returns the reports keyed by model kind. This
// is the E9 harness.
func CompareModels(p media.Presentation, sc Scenario) (map[ModelKind]*Report, error) {
	out := make(map[ModelKind]*Report, 3)
	for _, kind := range []ModelKind{OCPN, XOCPN, Extended} {
		model, err := Build(kind, p)
		if err != nil {
			return nil, fmt.Errorf("ocpn: build %s: %w", kind, err)
		}
		rep, err := model.Simulate(sc)
		if err != nil {
			return nil, err
		}
		out[kind] = rep
	}
	return out, nil
}

// Package ocpn builds the three multimedia synchronization models the paper
// discusses on top of the petri substrate:
//
//   - OCPN (Little & Ghafoor): media places with playout durations, fork and
//     join transitions encoding temporal relations among pre-orchestrated
//     media. No notion of transport or user interaction.
//   - XOCPN (Woo, Qazi & Ghafoor): OCPN plus per-segment channel places, so
//     a segment's playout also waits for its data to arrive over a network
//     channel set up with the segment's QoS.
//   - Extended timed Petri net (this paper): XOCPN plus user-interaction
//     places (pause/resume/skip) and floor control, covering exactly the
//     two deficiencies §1 identifies in OCPN/XOCPN — "lack methods to
//     describe … synchronization across distributed platforms and do not
//     deal with the schedule change caused by user interactions".
//
// The three models share one construction skeleton so experiment E9 can
// compare them on identical presentations, interactions, and network
// arrival schedules.
//
// Pause semantics: this package implements deferred-start pause — while
// paused, no new segment may start; segments whose nominal start falls
// inside a pause window start at the resume instant. Segments already
// playing finish (the paper's player flips slides between video segments,
// so segment-granularity gating matches the implementation in §3).
package ocpn

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/media"
	"repro/internal/petri"
)

// ModelKind selects which synchronization model to build.
type ModelKind int

// Model kinds, in historical order.
const (
	OCPN ModelKind = iota + 1
	XOCPN
	Extended
)

var modelNames = map[ModelKind]string{
	OCPN:     "OCPN",
	XOCPN:    "XOCPN",
	Extended: "ExtendedTimedPN",
}

// String implements fmt.Stringer.
func (k ModelKind) String() string {
	if s, ok := modelNames[k]; ok {
		return s
	}
	return fmt.Sprintf("model(%d)", int(k))
}

// Well-known place and transition naming used by the generated nets.
const (
	placeStart     petri.PlaceID      = "start"
	placeDone      petri.PlaceID      = "done"
	placePaused    petri.PlaceID      = "paused"
	placePauseReq  petri.PlaceID      = "pauseReq"
	placeResumeReq petri.PlaceID      = "resumeReq"
	transFork      petri.TransitionID = "fork"
	transJoin      petri.TransitionID = "join"
	transPause     petri.TransitionID = "tPause"
	transResume    petri.TransitionID = "tResume"
)

func delayPlace(id string) petri.PlaceID      { return petri.PlaceID("delay_" + id) }
func mediaPlace(id string) petri.PlaceID      { return petri.PlaceID("media_" + id) }
func donePlace(id string) petri.PlaceID       { return petri.PlaceID("done_" + id) }
func chanPlace(id string) petri.PlaceID       { return petri.PlaceID("chan_" + id) }
func skipPlace(id string) petri.PlaceID       { return petri.PlaceID("skip_" + id) }
func startTrans(id string) petri.TransitionID { return petri.TransitionID("tStart_" + id) }
func doneTrans(id string) petri.TransitionID  { return petri.TransitionID("tDone_" + id) }
func skipTrans(id string) petri.TransitionID  { return petri.TransitionID("tSkip_" + id) }

// Model is a constructed synchronization net for one presentation.
type Model struct {
	Kind         ModelKind
	Net          *petri.Net
	Initial      petri.Marking
	Presentation media.Presentation

	segments []media.Segment // sorted by (Start, ID)
}

// Build constructs the synchronization model of the given kind for a
// presentation.
func Build(kind ModelKind, p media.Presentation) (*Model, error) {
	if kind != OCPN && kind != XOCPN && kind != Extended {
		return nil, fmt.Errorf("ocpn: unknown model kind %d", int(kind))
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("ocpn: %w", err)
	}
	if len(p.Segments) == 0 {
		return nil, errors.New("ocpn: presentation has no segments")
	}

	segs := make([]media.Segment, len(p.Segments))
	copy(segs, p.Segments)
	sort.SliceStable(segs, func(i, j int) bool {
		if segs[i].Start != segs[j].Start {
			return segs[i].Start < segs[j].Start
		}
		return segs[i].ID < segs[j].ID
	})

	n := petri.NewNet(fmt.Sprintf("%s(%s)", kind, p.Title))
	m := &Model{Kind: kind, Net: n, Presentation: p, segments: segs}

	if err := m.buildSkeleton(); err != nil {
		return nil, err
	}
	if kind == XOCPN || kind == Extended {
		if err := m.addChannels(); err != nil {
			return nil, err
		}
	}
	if kind == Extended {
		if err := m.addInteractions(); err != nil {
			return nil, err
		}
	}
	m.Initial = petri.Marking{placeStart: 1}
	return m, nil
}

// buildSkeleton creates the shared OCPN core: a fork distributing a token
// to a per-segment delay place (duration = nominal start), a start
// transition into the media place (duration = segment duration), a done
// transition into the per-segment done place, and a final join.
func (m *Model) buildSkeleton() error {
	n := m.Net
	if err := n.AddPlace(petri.Place{ID: placeStart}); err != nil {
		return err
	}
	if err := n.AddPlace(petri.Place{ID: placeDone}); err != nil {
		return err
	}
	if err := n.AddTransition(petri.Transition{ID: transFork}); err != nil {
		return err
	}
	if err := n.AddTransition(petri.Transition{ID: transJoin}); err != nil {
		return err
	}
	if err := n.AddInput(placeStart, transFork, 1); err != nil {
		return err
	}
	if err := n.AddOutput(transJoin, placeDone, 1); err != nil {
		return err
	}
	for _, s := range m.segments {
		steps := []error{
			n.AddPlace(petri.Place{ID: delayPlace(s.ID), Duration: s.Start, Label: "delay for " + s.ID}),
			n.AddPlace(petri.Place{ID: mediaPlace(s.ID), Kind: petri.PlaceMedia, Duration: s.Duration, Label: s.ID}),
			n.AddPlace(petri.Place{ID: donePlace(s.ID)}),
			n.AddTransition(petri.Transition{ID: startTrans(s.ID), Label: "start " + s.ID}),
			n.AddTransition(petri.Transition{ID: doneTrans(s.ID), Label: "finish " + s.ID}),
			n.AddOutput(transFork, delayPlace(s.ID), 1),
			n.AddInput(delayPlace(s.ID), startTrans(s.ID), 1),
			n.AddOutput(startTrans(s.ID), mediaPlace(s.ID), 1),
			n.AddInput(mediaPlace(s.ID), doneTrans(s.ID), 1),
			n.AddOutput(doneTrans(s.ID), donePlace(s.ID), 1),
			n.AddInput(donePlace(s.ID), transJoin, 1),
		}
		for _, err := range steps {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// addChannels adds the XOCPN channel place per segment: the start transition
// additionally consumes a token representing the segment's data having
// arrived over its QoS channel.
func (m *Model) addChannels() error {
	n := m.Net
	for _, s := range m.segments {
		if err := n.AddPlace(petri.Place{
			ID:    chanPlace(s.ID),
			Kind:  petri.PlaceChannel,
			Label: fmt.Sprintf("channel %s (%d bps)", s.ID, s.QoS.BitsPerSecond),
		}); err != nil {
			return err
		}
		if err := n.AddInput(chanPlace(s.ID), startTrans(s.ID), 1); err != nil {
			return err
		}
	}
	return nil
}

// addInteractions adds the extended model's user-interaction machinery:
// a global paused place inhibiting every segment start, pause/resume
// request places with high-priority control transitions, and per-segment
// skip places with bypass transitions.
func (m *Model) addInteractions() error {
	n := m.Net
	steps := []error{
		n.AddPlace(petri.Place{ID: placePaused, Kind: petri.PlaceResource}),
		n.AddPlace(petri.Place{ID: placePauseReq}),
		n.AddPlace(petri.Place{ID: placeResumeReq}),
		n.AddTransition(petri.Transition{ID: transPause, Priority: 100}),
		n.AddTransition(petri.Transition{ID: transResume, Priority: 100}),
		n.AddInput(placePauseReq, transPause, 1),
		n.AddOutput(transPause, placePaused, 1),
		n.AddInput(placeResumeReq, transResume, 1),
		n.AddInput(placePaused, transResume, 1),
	}
	for _, err := range steps {
		if err != nil {
			return err
		}
	}
	for _, s := range m.segments {
		steps := []error{
			n.AddInhibitor(placePaused, startTrans(s.ID), 1),
			n.AddPlace(petri.Place{ID: skipPlace(s.ID)}),
			n.AddTransition(petri.Transition{ID: skipTrans(s.ID), Priority: 50}),
			n.AddInput(delayPlace(s.ID), skipTrans(s.ID), 1),
			n.AddInput(skipPlace(s.ID), skipTrans(s.ID), 1),
			n.AddOutput(skipTrans(s.ID), donePlace(s.ID), 1),
		}
		for _, err := range steps {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Segments returns the model's segments in schedule order.
func (m *Model) Segments() []media.Segment {
	out := make([]media.Segment, len(m.segments))
	copy(out, m.segments)
	return out
}

package ocpn

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/media"
)

// Constraint relates two segments by an Allen relation, the authoring
// vocabulary OCPN composition uses: instead of absolute start times, the
// presentation designer states "audio equals video", "slide2 meets
// slide1", "caption during video" and the composer solves the timeline.
type Constraint struct {
	// Rel is the temporal relation of A with respect to B.
	Rel Relation
	// A and B are segment IDs.
	A, B string
	// Gap applies to RelBefore: the silence between A's end and B's start.
	Gap time.Duration
	// Offset applies to RelOverlaps and RelDuring: B starts Offset after A.
	Offset time.Duration
}

// Errors returned by Compose.
var (
	ErrUnknownSegment   = errors.New("ocpn: constraint references unknown segment")
	ErrInconsistent     = errors.New("ocpn: inconsistent temporal constraints")
	ErrUnderConstrained = errors.New("ocpn: segments unreachable from the anchor")
)

// Compose solves a set of Allen-relation constraints over the given
// segments (whose Start fields are ignored) and returns a presentation
// with concrete start times, anchored so the earliest segment starts at
// zero. Every segment must be connected to the first segment through
// constraints, and cyclic constraints must agree.
func Compose(title string, segments []media.Segment, constraints []Constraint) (media.Presentation, error) {
	var p media.Presentation
	if len(segments) == 0 {
		return p, errors.New("ocpn: no segments to compose")
	}
	byID := make(map[string]media.Segment, len(segments))
	order := make([]string, 0, len(segments))
	for _, s := range segments {
		if _, dup := byID[s.ID]; dup {
			return p, fmt.Errorf("ocpn: duplicate segment %q", s.ID)
		}
		byID[s.ID] = s
		order = append(order, s.ID)
	}

	// Each constraint fixes startB - startA = delta(rel, durations).
	type edge struct {
		to    string
		delta time.Duration
	}
	adj := make(map[string][]edge, len(segments))
	addEdge := func(a, b string, delta time.Duration) {
		adj[a] = append(adj[a], edge{to: b, delta: delta})
		adj[b] = append(adj[b], edge{to: a, delta: -delta})
	}
	for i, c := range constraints {
		sa, okA := byID[c.A]
		sb, okB := byID[c.B]
		if !okA || !okB {
			return p, fmt.Errorf("%w: constraint %d (%s,%s)", ErrUnknownSegment, i, c.A, c.B)
		}
		delta, err := relationDelta(c, sa, sb)
		if err != nil {
			return p, fmt.Errorf("ocpn: constraint %d: %w", i, err)
		}
		addEdge(c.A, c.B, delta)
	}

	// Propagate from the first segment.
	starts := map[string]time.Duration{order[0]: 0}
	queue := []string{order[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			want := starts[cur] + e.delta
			if got, seen := starts[e.to]; seen {
				if got != want {
					return p, fmt.Errorf("%w: %s would start at both %v and %v",
						ErrInconsistent, e.to, got, want)
				}
				continue
			}
			starts[e.to] = want
			queue = append(queue, e.to)
		}
	}
	if len(starts) != len(segments) {
		var missing []string
		for _, id := range order {
			if _, ok := starts[id]; !ok {
				missing = append(missing, id)
			}
		}
		sort.Strings(missing)
		return p, fmt.Errorf("%w: %v", ErrUnderConstrained, missing)
	}

	// Normalize: earliest start becomes zero.
	min := starts[order[0]]
	for _, s := range starts {
		if s < min {
			min = s
		}
	}
	p.Title = title
	for _, id := range order {
		s := byID[id]
		s.Start = starts[id] - min
		p.Segments = append(p.Segments, s)
	}

	// Verify every constraint actually holds on the solved timeline.
	solved := make(map[string]media.Segment, len(p.Segments))
	for _, s := range p.Segments {
		solved[s.ID] = s
	}
	for i, c := range constraints {
		rel, swapped := Classify(solved[c.A], solved[c.B])
		if rel != c.Rel || swapped {
			return media.Presentation{}, fmt.Errorf(
				"%w: constraint %d solved to %s (swapped=%v), want %s",
				ErrInconsistent, i, rel, swapped, c.Rel)
		}
	}
	return p, nil
}

// relationDelta converts one constraint into the start-time difference
// startB - startA, validating relation-specific preconditions.
func relationDelta(c Constraint, a, b media.Segment) (time.Duration, error) {
	switch c.Rel {
	case RelEquals:
		if a.Duration != b.Duration {
			return 0, fmt.Errorf("equals requires equal durations (%v vs %v)", a.Duration, b.Duration)
		}
		return 0, nil
	case RelStarts:
		if a.Duration >= b.Duration {
			return 0, fmt.Errorf("starts requires %s shorter than %s", a.ID, b.ID)
		}
		return 0, nil
	case RelFinishes:
		if b.Duration >= a.Duration {
			return 0, fmt.Errorf("finishes requires %s shorter than %s", b.ID, a.ID)
		}
		return a.Duration - b.Duration, nil
	case RelMeets:
		return a.Duration, nil
	case RelBefore:
		if c.Gap <= 0 {
			return 0, errors.New("before requires a positive Gap")
		}
		return a.Duration + c.Gap, nil
	case RelOverlaps:
		if c.Offset <= 0 || c.Offset >= a.Duration {
			return 0, fmt.Errorf("overlaps requires Offset in (0,%v)", a.Duration)
		}
		if c.Offset+b.Duration <= a.Duration {
			return 0, errors.New("overlaps requires B to end after A")
		}
		return c.Offset, nil
	case RelDuring:
		if c.Offset <= 0 {
			return 0, errors.New("during requires a positive Offset")
		}
		if c.Offset+b.Duration >= a.Duration {
			return 0, errors.New("during requires B to end before A")
		}
		return c.Offset, nil
	default:
		return 0, fmt.Errorf("unsupported relation %s", c.Rel)
	}
}

package session

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
)

func apiServer(t *testing.T) (*Classroom, *httptest.Server) {
	t.Helper()
	class := NewClassroom("http-test", nil)
	ts := httptest.NewServer(NewAPI(class).Handler())
	t.Cleanup(ts.Close)
	return class, ts
}

func post(t *testing.T, ts *httptest.Server, path string, params url.Values) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path+"?"+params.Encode(), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp, body
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp, body
}

func TestAPIJoinAndState(t *testing.T) {
	_, ts := apiServer(t)
	resp, body := post(t, ts, "/class/join", url.Values{"user": {"prof"}, "role": {"teacher"}})
	if resp.StatusCode != 200 {
		t.Fatalf("join status %d: %s", resp.StatusCode, body)
	}
	var joined map[string]string
	if err := json.Unmarshal(body, &joined); err != nil {
		t.Fatal(err)
	}
	if joined["role"] != "teacher" {
		t.Fatalf("joined = %v", joined)
	}
	// Duplicate join conflicts.
	resp, _ = post(t, ts, "/class/join", url.Values{"user": {"prof"}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate join status %d", resp.StatusCode)
	}
	// State reflects attendance.
	_, body = get(t, ts, "/class/state")
	var state map[string]interface{}
	if err := json.Unmarshal(body, &state); err != nil {
		t.Fatal(err)
	}
	if state["attendees"].(float64) != 1 {
		t.Fatalf("state = %v", state)
	}
}

func TestAPIFloorWorkflow(t *testing.T) {
	_, ts := apiServer(t)
	post(t, ts, "/class/join", url.Values{"user": {"s1"}})
	post(t, ts, "/class/join", url.Values{"user": {"s2"}})

	resp, body := post(t, ts, "/class/floor/request", url.Values{"user": {"s1"}})
	if resp.StatusCode != 200 {
		t.Fatalf("request status %d", resp.StatusCode)
	}
	var granted map[string]bool
	if err := json.Unmarshal(body, &granted); err != nil {
		t.Fatal(err)
	}
	if !granted["granted"] {
		t.Fatal("first request not granted immediately")
	}
	// Second student queues.
	_, body = post(t, ts, "/class/floor/request", url.Values{"user": {"s2"}})
	if err := json.Unmarshal(body, &granted); err != nil {
		t.Fatal(err)
	}
	if granted["granted"] {
		t.Fatal("second request granted while floor held")
	}
	// Release by non-holder forbidden.
	resp, _ = post(t, ts, "/class/floor/release", url.Values{"user": {"s2"}})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("non-holder release status %d", resp.StatusCode)
	}
	// Holder releases; s2 promoted.
	resp, _ = post(t, ts, "/class/floor/release", url.Values{"user": {"s1"}})
	if resp.StatusCode != 200 {
		t.Fatalf("release status %d", resp.StatusCode)
	}
	_, body = get(t, ts, "/class/state")
	var state map[string]interface{}
	if err := json.Unmarshal(body, &state); err != nil {
		t.Fatal(err)
	}
	if state["holder"] != "s2" {
		t.Fatalf("holder = %v, want s2", state["holder"])
	}
	// Revoke reclaims from s2.
	resp, body = post(t, ts, "/class/floor/revoke", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("revoke status %d", resp.StatusCode)
	}
	var revoked map[string]string
	if err := json.Unmarshal(body, &revoked); err != nil {
		t.Fatal(err)
	}
	if revoked["revoked"] != "s2" {
		t.Fatalf("revoked = %v", revoked)
	}
	// Revoking a free floor is forbidden.
	resp, _ = post(t, ts, "/class/floor/revoke", nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("revoke free floor status %d", resp.StatusCode)
	}
}

func TestAPIAnnotations(t *testing.T) {
	_, ts := apiServer(t)
	post(t, ts, "/class/join", url.Values{"user": {"prof"}, "role": {"teacher"}})
	post(t, ts, "/class/join", url.Values{"user": {"s1"}})

	// Teacher annotates freely.
	for i := 0; i < 3; i++ {
		resp, _ := post(t, ts, "/class/annotate", url.Values{
			"user": {"prof"}, "text": {fmt.Sprintf("note %d", i)},
		})
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("annotate status %d", resp.StatusCode)
		}
	}
	// Student without the floor is forbidden.
	resp, _ := post(t, ts, "/class/annotate", url.Values{"user": {"s1"}, "text": {"q"}})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("floorless annotate status %d", resp.StatusCode)
	}
	// Empty text rejected.
	resp, _ = post(t, ts, "/class/annotate", url.Values{"user": {"prof"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty annotate status %d", resp.StatusCode)
	}
	// Ghost user 404s.
	resp, _ = post(t, ts, "/class/annotate", url.Values{"user": {"ghost"}, "text": {"x"}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost annotate status %d", resp.StatusCode)
	}

	// Polling with since.
	_, body := get(t, ts, "/class/annotations?since=1")
	var anns []map[string]interface{}
	if err := json.Unmarshal(body, &anns); err != nil {
		t.Fatal(err)
	}
	if len(anns) != 2 {
		t.Fatalf("since=1 returned %d annotations, want 2", len(anns))
	}
	if anns[0]["index"].(float64) != 1 || anns[0]["text"] != "note 1" {
		t.Fatalf("annotations = %v", anns)
	}
	// Bad since rejected.
	resp, _ = get(t, ts, "/class/annotations?since=-1")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since status %d", resp.StatusCode)
	}
}

func TestAPIMethodEnforcement(t *testing.T) {
	_, ts := apiServer(t)
	resp, _ := get(t, ts, "/class/join?user=x")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET join status %d", resp.StatusCode)
	}
}

func TestAPILeave(t *testing.T) {
	_, ts := apiServer(t)
	post(t, ts, "/class/join", url.Values{"user": {"s1"}})
	resp, _ := post(t, ts, "/class/leave", url.Values{"user": {"s1"}})
	if resp.StatusCode != 200 {
		t.Fatalf("leave status %d", resp.StatusCode)
	}
	resp, _ = post(t, ts, "/class/leave", url.Values{"user": {"s1"}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double leave status %d", resp.StatusCode)
	}
}

package session

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/vclock"
)

// Attendee is one user in a classroom.
type Attendee struct {
	ID   string
	Role Role
	// Annotations delivers annotation broadcasts; buffered so a slow
	// attendee does not stall the class (drops are counted).
	Annotations <-chan Annotation

	send chan Annotation
}

// Annotation is a timed comment broadcast to the class.
type Annotation struct {
	Author string
	Text   string
	At     time.Time
}

// Classroom is one live lecture session: attendees join and leave, the
// floor arbitrates who may annotate, and annotations are broadcast to
// everyone. Safe for concurrent use.
type Classroom struct {
	Name  string
	Floor *Floor

	clock vclock.Clock

	mu        sync.Mutex
	attendees map[string]*Attendee
	history   []Annotation
	dropped   int64
	buffer    int
}

// NewClassroom creates a classroom on the given clock (nil = real clock).
func NewClassroom(name string, clock vclock.Clock) *Classroom {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &Classroom{
		Name:      name,
		Floor:     NewFloor(clock),
		clock:     clock,
		attendees: make(map[string]*Attendee),
		buffer:    64,
	}
}

// Join adds a user to the class and returns their attendee handle.
func (c *Classroom) Join(id string, role Role) (*Attendee, error) {
	if id == "" {
		return nil, fmt.Errorf("session: empty user id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.attendees[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicate, id)
	}
	send := make(chan Annotation, c.buffer)
	a := &Attendee{ID: id, Role: role, Annotations: send, send: send}
	c.attendees[id] = a
	return a, nil
}

// Leave removes a user; any held floor is released.
func (c *Classroom) Leave(id string) error {
	c.mu.Lock()
	a, ok := c.attendees[id]
	if ok {
		delete(c.attendees, id)
		close(a.send)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotAttending, id)
	}
	if c.Floor.Holder() == id {
		return c.Floor.Release(id)
	}
	// A queued request is cancelled silently.
	_ = c.Floor.Cancel(id)
	return nil
}

// AttendeeCount returns the class size.
func (c *Classroom) AttendeeCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.attendees)
}

// Annotate broadcasts an annotation. The author must hold the floor,
// except teachers, who may always annotate (the paper's lecturer adds
// "annotations/comments" freely while students need the floor).
func (c *Classroom) Annotate(author, text string) error {
	c.mu.Lock()
	a, attending := c.attendees[author]
	c.mu.Unlock()
	if !attending {
		return fmt.Errorf("%w: %s", ErrNotAttending, author)
	}
	if a.Role != RoleTeacher && c.Floor.Holder() != author {
		return fmt.Errorf("%w: %s", ErrNotHolder, author)
	}
	ann := Annotation{Author: author, Text: text, At: c.clock.Now()}
	c.mu.Lock()
	c.history = append(c.history, ann)
	for _, att := range c.attendees {
		select {
		case att.send <- ann:
		default:
			c.dropped++
		}
	}
	c.mu.Unlock()
	return nil
}

// History returns all annotations so far.
func (c *Classroom) History() []Annotation {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Annotation, len(c.history))
	copy(out, c.history)
	return out
}

// Dropped returns annotation deliveries dropped due to slow attendees.
func (c *Classroom) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Close ends the session, closing every attendee channel.
func (c *Classroom) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, a := range c.attendees {
		close(a.send)
		delete(c.attendees, id)
	}
}

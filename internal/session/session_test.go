package session

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/vclock"
)

func TestRoleString(t *testing.T) {
	if RoleTeacher.String() != "teacher" || RoleStudent.String() != "student" {
		t.Fatal("role names wrong")
	}
	if got := Role(9).String(); got != "role(9)" {
		t.Fatalf("unknown role = %q", got)
	}
}

func TestFloorImmediateGrant(t *testing.T) {
	f := NewFloor(nil)
	granted, err := f.Request("alice")
	if err != nil || !granted {
		t.Fatalf("Request = %v,%v; want true,nil", granted, err)
	}
	if f.Holder() != "alice" {
		t.Fatalf("holder = %q", f.Holder())
	}
}

func TestFloorFIFOQueue(t *testing.T) {
	f := NewFloor(nil)
	if _, err := f.Request("alice"); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"bob", "carol", "dave"} {
		granted, err := f.Request(u)
		if err != nil || granted {
			t.Fatalf("Request(%s) = %v,%v; want queued", u, granted, err)
		}
	}
	if f.QueueLength() != 3 {
		t.Fatalf("queue = %d", f.QueueLength())
	}
	order := []string{"bob", "carol", "dave"}
	for _, want := range order {
		if err := f.Release(f.Holder()); err != nil {
			t.Fatal(err)
		}
		if f.Holder() != want {
			t.Fatalf("holder = %q, want %q (FIFO)", f.Holder(), want)
		}
	}
}

func TestFloorDoubleRequestRejected(t *testing.T) {
	f := NewFloor(nil)
	if _, err := f.Request("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Request("alice"); !errors.Is(err, ErrAlreadyHeld) {
		t.Fatalf("holder re-request = %v", err)
	}
	if _, err := f.Request("bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Request("bob"); !errors.Is(err, ErrAlreadyHeld) {
		t.Fatalf("queued re-request = %v", err)
	}
	if _, err := f.Request(""); err == nil {
		t.Fatal("empty user accepted")
	}
}

func TestFloorReleaseByNonHolder(t *testing.T) {
	f := NewFloor(nil)
	if _, err := f.Request("alice"); err != nil {
		t.Fatal(err)
	}
	if err := f.Release("bob"); !errors.Is(err, ErrNotHolder) {
		t.Fatalf("release by non-holder = %v", err)
	}
}

func TestFloorRevoke(t *testing.T) {
	f := NewFloor(nil)
	if _, err := f.Request("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Request("bob"); err != nil {
		t.Fatal(err)
	}
	was, err := f.Revoke()
	if err != nil || was != "alice" {
		t.Fatalf("Revoke = %q,%v", was, err)
	}
	if f.Holder() != "bob" {
		t.Fatalf("holder after revoke = %q", f.Holder())
	}
	st := f.Stats()
	if st.Revocations != 1 {
		t.Fatalf("revocations = %d", st.Revocations)
	}
	// Revoke with free floor fails.
	if err := f.Release("bob"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Revoke(); !errors.Is(err, ErrNotHolder) {
		t.Fatalf("revoke free floor = %v", err)
	}
}

func TestFloorCancel(t *testing.T) {
	f := NewFloor(nil)
	if _, err := f.Request("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Request("bob"); err != nil {
		t.Fatal(err)
	}
	if err := f.Cancel("bob"); err != nil {
		t.Fatal(err)
	}
	if err := f.Release("alice"); err != nil {
		t.Fatal(err)
	}
	if f.Holder() != "" {
		t.Fatalf("holder = %q after cancelled queue", f.Holder())
	}
	if err := f.Cancel("ghost"); err == nil {
		t.Fatal("cancel of unqueued user accepted")
	}
}

func TestFloorWaitStatsOnVirtualClock(t *testing.T) {
	clk := vclock.NewVirtual()
	f := NewFloor(clk)
	if _, err := f.Request("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Request("bob"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(7 * time.Second)
	if err := f.Release("alice"); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.MaxWait != 7*time.Second {
		t.Fatalf("MaxWait = %v, want 7s", st.MaxWait)
	}
	if st.Grants != 2 || st.Requests != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFloorVerifyAgainstModel(t *testing.T) {
	f := NewFloor(nil)
	users := []string{"alice", "bob", "carol"}
	// A busy session: everyone requests, floor passes around twice.
	for _, u := range users {
		if _, err := f.Request(u); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		for range users {
			holder := f.Holder()
			if err := f.Release(holder); err != nil {
				t.Fatal(err)
			}
			if f.Holder() == "" && f.QueueLength() == 0 {
				if _, err := f.Request(holder); err != nil {
					t.Fatal(err)
				}
			} else if _, err := f.Request(holder); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.VerifyAgainstModel(); err != nil {
		t.Fatalf("runtime log deviates from Petri-net model: %v", err)
	}
}

func TestFloorConcurrentSafety(t *testing.T) {
	f := NewFloor(nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", id)
			for j := 0; j < 50; j++ {
				granted, err := f.Request(user)
				if err != nil {
					continue
				}
				if !granted {
					// Wait until we become the holder or give up.
					for k := 0; k < 1000 && f.Holder() != user; k++ {
						time.Sleep(10 * time.Microsecond)
					}
					if f.Holder() != user {
						if err := f.Cancel(user); err != nil {
							// Granted between the check and the cancel.
							_ = f.Release(user)
						}
						continue
					}
				}
				_ = f.Release(user)
			}
		}(i)
	}
	wg.Wait()
	// The log must still be a legal model trace.
	if err := f.VerifyAgainstModel(); err != nil {
		t.Fatalf("concurrent log deviates from model: %v", err)
	}
}

func TestClassroomJoinLeave(t *testing.T) {
	c := NewClassroom("dist-sys", nil)
	teacher, err := c.Join("prof", RoleTeacher)
	if err != nil {
		t.Fatal(err)
	}
	if teacher.Role != RoleTeacher {
		t.Fatal("role lost")
	}
	if _, err := c.Join("prof", RoleTeacher); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate join = %v", err)
	}
	if _, err := c.Join("", RoleStudent); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := c.Join("s1", RoleStudent); err != nil {
		t.Fatal(err)
	}
	if c.AttendeeCount() != 2 {
		t.Fatalf("count = %d", c.AttendeeCount())
	}
	if err := c.Leave("s1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Leave("s1"); !errors.Is(err, ErrNotAttending) {
		t.Fatalf("double leave = %v", err)
	}
}

func TestClassroomAnnotationBroadcast(t *testing.T) {
	c := NewClassroom("class", nil)
	if _, err := c.Join("prof", RoleTeacher); err != nil {
		t.Fatal(err)
	}
	s1, err := c.Join("s1", RoleStudent)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Join("s2", RoleStudent)
	if err != nil {
		t.Fatal(err)
	}

	// Teacher annotates without the floor.
	if err := c.Annotate("prof", "welcome"); err != nil {
		t.Fatal(err)
	}
	for _, a := range []*Attendee{s1, s2} {
		select {
		case ann := <-a.Annotations:
			if ann.Author != "prof" || ann.Text != "welcome" {
				t.Fatalf("annotation = %+v", ann)
			}
		default:
			t.Fatal("annotation not delivered")
		}
	}

	// Student needs the floor.
	if err := c.Annotate("s1", "question"); !errors.Is(err, ErrNotHolder) {
		t.Fatalf("floorless student annotate = %v", err)
	}
	if _, err := c.Floor.Request("s1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Annotate("s1", "question"); err != nil {
		t.Fatal(err)
	}
	if got := c.History(); len(got) != 2 || got[1].Author != "s1" {
		t.Fatalf("history = %+v", got)
	}

	// Non-attendee cannot annotate.
	if err := c.Annotate("ghost", "boo"); !errors.Is(err, ErrNotAttending) {
		t.Fatalf("ghost annotate = %v", err)
	}
}

func TestClassroomLeaveReleasesFloor(t *testing.T) {
	c := NewClassroom("class", nil)
	if _, err := c.Join("s1", RoleStudent); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join("s2", RoleStudent); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Floor.Request("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Floor.Request("s2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Leave("s1"); err != nil {
		t.Fatal(err)
	}
	if c.Floor.Holder() != "s2" {
		t.Fatalf("floor holder = %q, want s2 after holder left", c.Floor.Holder())
	}
}

func TestClassroomSlowAttendeeDrops(t *testing.T) {
	c := NewClassroom("class", nil)
	c.buffer = 1
	if _, err := c.Join("prof", RoleTeacher); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join("slow", RoleStudent); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Annotate("prof", "note"); err != nil {
			t.Fatal(err)
		}
	}
	// Buffers of 1 across two attendees: 2 delivered, 8 dropped.
	if c.Dropped() != 8 {
		t.Fatalf("dropped = %d, want 8", c.Dropped())
	}
}

func TestClassroomClose(t *testing.T) {
	c := NewClassroom("class", nil)
	a, err := c.Join("s1", RoleStudent)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, open := <-a.Annotations; open {
		t.Fatal("attendee channel open after Close")
	}
	if c.AttendeeCount() != 0 {
		t.Fatal("attendees remain after Close")
	}
}

// Package session implements the multi-user machinery of the paper's
// distance-learning scenario: classroom sessions with many attendees,
// floor control (who may speak/annotate), and annotation broadcast to all
// attendees. The floor-control policy is the Petri-net mutual-exclusion
// model from package ocpn; the runtime keeps an event log that can be
// replayed onto that net to verify the implementation against the model.
package session

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ocpn"
	"repro/internal/petri"
	"repro/internal/vclock"
)

// Errors.
var (
	ErrNotAttending = errors.New("session: user not attending")
	ErrNotHolder    = errors.New("session: user does not hold the floor")
	ErrAlreadyHeld  = errors.New("session: user already holds or awaits the floor")
	ErrDuplicate    = errors.New("session: user already attending")
)

// Role distinguishes the lecturer from students.
type Role int

// Roles.
const (
	RoleTeacher Role = iota + 1
	RoleStudent
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleTeacher:
		return "teacher"
	case RoleStudent:
		return "student"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// FloorEventKind enumerates floor-control events.
type FloorEventKind int

// Floor events.
const (
	FloorRequested FloorEventKind = iota + 1
	FloorGranted
	FloorReleased
	FloorRevoked
	FloorCancelled
)

// FloorEvent is one entry of the floor-control log.
type FloorEvent struct {
	Kind FloorEventKind
	User string
	At   time.Time
}

// FloorStats summarizes floor activity.
type FloorStats struct {
	Requests    int
	Grants      int
	Revocations int
	// MaxWait is the longest time a user waited between request and grant.
	MaxWait time.Duration
	// TotalWait accumulates all waits (divide by Grants for the mean).
	TotalWait time.Duration
}

// Floor is a FIFO floor-control arbiter: one holder at a time, waiters
// queue in request order (so grant order is fair), and the teacher may
// revoke. Safe for concurrent use.
type Floor struct {
	clock vclock.Clock

	mu        sync.Mutex
	holder    string
	queue     []string
	requested map[string]time.Time
	log       []FloorEvent
	stats     FloorStats
}

// NewFloor creates a floor arbiter on the given clock (nil = real clock).
func NewFloor(clock vclock.Clock) *Floor {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &Floor{clock: clock, requested: make(map[string]time.Time)}
}

// Holder returns the current floor holder ("" when free).
func (f *Floor) Holder() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.holder
}

// QueueLength returns the number of waiting users.
func (f *Floor) QueueLength() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.queue)
}

// Request asks for the floor on behalf of user. It returns true when the
// floor was granted immediately; otherwise the user is queued and will be
// granted on a future Release/Revoke.
func (f *Floor) Request(user string) (bool, error) {
	if user == "" {
		return false, errors.New("session: empty user id")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.holder == user {
		return false, fmt.Errorf("%w: %s", ErrAlreadyHeld, user)
	}
	if _, waiting := f.requested[user]; waiting {
		return false, fmt.Errorf("%w: %s", ErrAlreadyHeld, user)
	}
	now := f.clock.Now()
	f.stats.Requests++
	f.log = append(f.log, FloorEvent{Kind: FloorRequested, User: user, At: now})
	f.requested[user] = now
	if f.holder == "" {
		f.grantLocked(user, now)
		return true, nil
	}
	f.queue = append(f.queue, user)
	return false, nil
}

// grantLocked hands the floor to user; f.mu must be held.
func (f *Floor) grantLocked(user string, now time.Time) {
	f.holder = user
	wait := now.Sub(f.requested[user])
	delete(f.requested, user)
	f.stats.Grants++
	f.stats.TotalWait += wait
	if wait > f.stats.MaxWait {
		f.stats.MaxWait = wait
	}
	f.log = append(f.log, FloorEvent{Kind: FloorGranted, User: user, At: now})
}

// Release gives up the floor; the next queued user (if any) is granted.
func (f *Floor) Release(user string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.holder != user {
		return fmt.Errorf("%w: %s", ErrNotHolder, user)
	}
	now := f.clock.Now()
	f.log = append(f.log, FloorEvent{Kind: FloorReleased, User: user, At: now})
	f.holder = ""
	f.promoteLocked(now)
	return nil
}

// Revoke forcibly reclaims the floor (teacher action); the next queued
// user is granted.
func (f *Floor) Revoke() (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.holder == "" {
		return "", ErrNotHolder
	}
	was := f.holder
	now := f.clock.Now()
	f.stats.Revocations++
	f.log = append(f.log, FloorEvent{Kind: FloorRevoked, User: was, At: now})
	f.holder = ""
	f.promoteLocked(now)
	return was, nil
}

// promoteLocked grants the floor to the head of the queue; f.mu held.
func (f *Floor) promoteLocked(now time.Time) {
	if len(f.queue) == 0 {
		return
	}
	next := f.queue[0]
	f.queue = f.queue[1:]
	f.grantLocked(next, now)
}

// Cancel removes a queued (not yet granted) request.
func (f *Floor) Cancel(user string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, u := range f.queue {
		if u == user {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			delete(f.requested, user)
			f.log = append(f.log, FloorEvent{Kind: FloorCancelled, User: user, At: f.clock.Now()})
			return nil
		}
	}
	return fmt.Errorf("%w: %s not queued", ErrNotHolder, user)
}

// Stats returns a snapshot of the floor statistics.
func (f *Floor) Stats() FloorStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Log returns a copy of the event log.
func (f *Floor) Log() []FloorEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FloorEvent, len(f.log))
	copy(out, f.log)
	return out
}

// VerifyAgainstModel replays the event log onto the ocpn floor-control
// Petri net and reports the first deviation, or nil when the runtime's
// behaviour is a legal firing sequence of the model. This ties the
// implementation to the paper's extended-timed-Petri-net floor semantics.
func (f *Floor) VerifyAgainstModel() error {
	log := f.Log()
	users := map[string]int{}
	order := []string{}
	for _, e := range log {
		if _, ok := users[e.User]; !ok {
			users[e.User] = len(order)
			order = append(order, e.User)
		}
	}
	sort.Strings(order)
	idx := make(map[string]int, len(order))
	for i, u := range order {
		idx[u] = i
	}
	net, marking, err := ocpn.FloorControlNet(len(order))
	if err != nil {
		return err
	}
	fire := func(t petri.TransitionID) error {
		next, err := net.Fire(marking, t)
		if err != nil {
			return fmt.Errorf("session: log deviates from model at %s: %w", t, err)
		}
		marking = next
		return nil
	}
	for _, e := range log {
		i := idx[e.User]
		switch e.Kind {
		case FloorRequested:
			if err := fire(petri.TransitionID(fmt.Sprintf("user%d_request", i))); err != nil {
				return err
			}
		case FloorGranted:
			if err := fire(petri.TransitionID(fmt.Sprintf("user%d_grant", i))); err != nil {
				return err
			}
		case FloorReleased, FloorRevoked:
			if err := fire(petri.TransitionID(fmt.Sprintf("user%d_release", i))); err != nil {
				return err
			}
		case FloorCancelled:
			if err := fire(petri.TransitionID(fmt.Sprintf("user%d_cancel", i))); err != nil {
				return err
			}
		}
	}
	return nil
}

package session

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/proto"
)

// API exposes a Classroom over HTTP so distributed students participate
// through plain web requests, matching the paper's web-based architecture:
//
//	POST /class/join?user=U&role=teacher|student
//	POST /class/leave?user=U
//	POST /class/floor/request?user=U        → {"granted": bool}
//	POST /class/floor/release?user=U
//	POST /class/floor/revoke                → {"revoked": "U"}
//	POST /class/annotate?user=U&text=T
//	GET  /class/annotations?since=N         → annotations with index ≥ N
//	GET  /class/state                       → holder, queue length, size
type API struct {
	class *Classroom
}

// NewAPI wraps a classroom.
func NewAPI(class *Classroom) *API { return &API{class: class} }

// Handler returns the HTTP handler for the classroom API.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/class/join", a.handleJoin)
	mux.HandleFunc("/class/leave", a.handleLeave)
	mux.HandleFunc("/class/floor/request", a.handleFloorRequest)
	mux.HandleFunc("/class/floor/release", a.handleFloorRelease)
	mux.HandleFunc("/class/floor/revoke", a.handleFloorRevoke)
	mux.HandleFunc("/class/annotate", a.handleAnnotate)
	mux.HandleFunc("/class/annotations", a.handleAnnotations)
	mux.HandleFunc("/class/state", a.handleState)
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		proto.WriteError(w, http.StatusInternalServerError, err.Error())
	}
}

// statusFor maps session errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotAttending):
		return http.StatusNotFound
	case errors.Is(err, ErrDuplicate), errors.Is(err, ErrAlreadyHeld):
		return http.StatusConflict
	case errors.Is(err, ErrNotHolder):
		return http.StatusForbidden
	default:
		return http.StatusBadRequest
	}
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		proto.WriteError(w, http.StatusMethodNotAllowed, "method not allowed")
		return false
	}
	return true
}

func (a *API) handleJoin(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	user := r.URL.Query().Get("user")
	role := RoleStudent
	if r.URL.Query().Get("role") == "teacher" {
		role = RoleTeacher
	}
	if _, err := a.class.Join(user, role); err != nil {
		proto.WriteError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, map[string]string{"user": user, "role": role.String()})
}

func (a *API) handleLeave(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	user := r.URL.Query().Get("user")
	if err := a.class.Leave(user); err != nil {
		proto.WriteError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, map[string]string{"left": user})
}

func (a *API) handleFloorRequest(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	user := r.URL.Query().Get("user")
	granted, err := a.class.Floor.Request(user)
	if err != nil {
		proto.WriteError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, map[string]bool{"granted": granted})
}

func (a *API) handleFloorRelease(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	user := r.URL.Query().Get("user")
	if err := a.class.Floor.Release(user); err != nil {
		proto.WriteError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, map[string]string{"released": user})
}

func (a *API) handleFloorRevoke(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	was, err := a.class.Floor.Revoke()
	if err != nil {
		proto.WriteError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, map[string]string{"revoked": was})
}

func (a *API) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	user := r.URL.Query().Get("user")
	text := r.URL.Query().Get("text")
	if text == "" {
		proto.WriteError(w, http.StatusBadRequest, "empty text")
		return
	}
	if err := a.class.Annotate(user, text); err != nil {
		proto.WriteError(w, statusFor(err), err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// annotationJSON is the wire form of one annotation.
type annotationJSON struct {
	Index  int       `json:"index"`
	Author string    `json:"author"`
	Text   string    `json:"text"`
	At     time.Time `json:"at"`
}

func (a *API) handleAnnotations(w http.ResponseWriter, r *http.Request) {
	since := 0
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			proto.WriteError(w, http.StatusBadRequest, "bad since parameter")
			return
		}
		since = v
	}
	history := a.class.History()
	out := make([]annotationJSON, 0, len(history))
	for i := since; i < len(history); i++ {
		out = append(out, annotationJSON{
			Index: i, Author: history[i].Author, Text: history[i].Text, At: history[i].At,
		})
	}
	writeJSON(w, out)
}

func (a *API) handleState(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]interface{}{
		"holder":    a.class.Floor.Holder(),
		"queue":     a.class.Floor.QueueLength(),
		"attendees": a.class.AttendeeCount(),
	})
}

// Package media defines the multimedia object model shared by the whole
// Lecture-on-Demand system: segment kinds (video, audio, image, text,
// annotation), stream identities, timed samples, and the QoS specification
// the XOCPN-style channel set-up uses when reserving network resources.
package media

import (
	"errors"
	"fmt"
	"time"
)

// Kind enumerates the media object types the paper's presentations combine
// ("collection of text, video, audio, image…").
type Kind int

// Media object kinds.
const (
	KindVideo Kind = iota + 1
	KindAudio
	KindImage
	KindText
	KindAnnotation
	KindScript
)

var kindNames = map[Kind]string{
	KindVideo:      "video",
	KindAudio:      "audio",
	KindImage:      "image",
	KindText:       "text",
	KindAnnotation: "annotation",
	KindScript:     "script",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Valid reports whether k is a defined media kind.
func (k Kind) Valid() bool {
	_, ok := kindNames[k]
	return ok
}

// StreamID identifies one elementary stream inside a multiplexed asset.
// Stream 0 is reserved for container control traffic.
type StreamID uint16

// Conventional stream numbering used by the encoder and publisher.
const (
	StreamControl StreamID = 0
	StreamVideo   StreamID = 1
	StreamAudio   StreamID = 2
	StreamScript  StreamID = 3
	StreamImage   StreamID = 4
)

// QoS captures the per-stream quality-of-service requirements that XOCPN
// channel set-up negotiates before a presentation starts.
type QoS struct {
	// BitsPerSecond is the sustained bandwidth the stream needs.
	BitsPerSecond int64
	// MaxSkew is the largest tolerable presentation-time offset between this
	// stream and the presentation master clock (lip-sync bound).
	MaxSkew time.Duration
	// MaxJitter is the largest tolerable inter-packet delay variation.
	MaxJitter time.Duration
	// MaxLossRate is the tolerable fraction of lost packets in [0, 1].
	MaxLossRate float64
}

// Validate checks the QoS values for internal consistency.
func (q QoS) Validate() error {
	if q.BitsPerSecond < 0 {
		return fmt.Errorf("qos: negative bandwidth %d", q.BitsPerSecond)
	}
	if q.MaxSkew < 0 {
		return fmt.Errorf("qos: negative max skew %v", q.MaxSkew)
	}
	if q.MaxJitter < 0 {
		return fmt.Errorf("qos: negative max jitter %v", q.MaxJitter)
	}
	if q.MaxLossRate < 0 || q.MaxLossRate > 1 {
		return fmt.Errorf("qos: loss rate %v outside [0,1]", q.MaxLossRate)
	}
	return nil
}

// Segment is one presentation segment: a contiguous run of a single medium
// with a start offset and duration on the presentation timeline. Segments
// are the atoms both the content tree and the Petri-net models schedule.
type Segment struct {
	// ID is a presentation-unique label, e.g. "S0" in the paper's examples.
	ID string
	// Kind is the medium of this segment.
	Kind Kind
	// Stream is the elementary stream carrying the segment's samples.
	Stream StreamID
	// Start is the offset from presentation start at which this segment
	// becomes active.
	Start time.Duration
	// Duration is how long the segment plays.
	Duration time.Duration
	// QoS are the transport requirements for this segment's stream.
	QoS QoS
	// Payload optionally carries the literal content (slide text, annotation
	// body); bulk audio/video data travels as Samples instead.
	Payload []byte
}

// End returns the presentation time at which the segment finishes.
func (s Segment) End() time.Duration { return s.Start + s.Duration }

// Validate checks the segment for structural problems.
func (s Segment) Validate() error {
	if s.ID == "" {
		return errors.New("segment: empty ID")
	}
	if !s.Kind.Valid() {
		return fmt.Errorf("segment %s: invalid kind %d", s.ID, int(s.Kind))
	}
	if s.Start < 0 {
		return fmt.Errorf("segment %s: negative start %v", s.ID, s.Start)
	}
	if s.Duration < 0 {
		return fmt.Errorf("segment %s: negative duration %v", s.ID, s.Duration)
	}
	if err := s.QoS.Validate(); err != nil {
		return fmt.Errorf("segment %s: %w", s.ID, err)
	}
	return nil
}

// Overlaps reports whether two segments overlap in presentation time.
func (s Segment) Overlaps(o Segment) bool {
	return s.Start < o.End() && o.Start < s.End()
}

// Sample is one timed unit of media data: a compressed video frame, an audio
// block, an image, or a script payload, stamped with its presentation time.
type Sample struct {
	Stream StreamID
	Kind   Kind
	// PTS is the presentation timestamp relative to presentation start.
	PTS time.Duration
	// Duration is how long the sample covers (frame interval, audio block).
	Duration time.Duration
	// Keyframe marks samples a decoder can start from (video I-frames,
	// images, every audio block).
	Keyframe bool
	// Data is the (simulated) compressed payload.
	Data []byte
}

// Validate checks sample invariants.
func (s Sample) Validate() error {
	if !s.Kind.Valid() {
		return fmt.Errorf("sample: invalid kind %d", int(s.Kind))
	}
	if s.PTS < 0 {
		return fmt.Errorf("sample: negative pts %v", s.PTS)
	}
	if s.Duration < 0 {
		return fmt.Errorf("sample: negative duration %v", s.Duration)
	}
	return nil
}

// Presentation is an ordered collection of segments with a title, the flat
// form from which both the content tree and the synchronization model are
// built.
type Presentation struct {
	Title    string
	Segments []Segment
}

// Duration returns the end time of the latest-ending segment.
func (p Presentation) Duration() time.Duration {
	var max time.Duration
	for _, s := range p.Segments {
		if s.End() > max {
			max = s.End()
		}
	}
	return max
}

// Validate checks every segment and that IDs are unique.
func (p Presentation) Validate() error {
	seen := make(map[string]bool, len(p.Segments))
	for _, s := range p.Segments {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("presentation %q: %w", p.Title, err)
		}
		if seen[s.ID] {
			return fmt.Errorf("presentation %q: duplicate segment id %q", p.Title, s.ID)
		}
		seen[s.ID] = true
	}
	return nil
}

// ByStream groups the presentation's segments per stream.
func (p Presentation) ByStream() map[StreamID][]Segment {
	out := make(map[StreamID][]Segment)
	for _, s := range p.Segments {
		out[s.Stream] = append(out[s.Stream], s)
	}
	return out
}

package media

import (
	"strings"
	"testing"
	"time"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindVideo, "video"},
		{KindAudio, "audio"},
		{KindImage, "image"},
		{KindText, "text"},
		{KindAnnotation, "annotation"},
		{KindScript, "script"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}

func TestKindValid(t *testing.T) {
	if Kind(0).Valid() {
		t.Error("zero Kind must be invalid")
	}
	if !KindVideo.Valid() {
		t.Error("KindVideo must be valid")
	}
	if Kind(42).Valid() {
		t.Error("Kind(42) must be invalid")
	}
}

func TestQoSValidate(t *testing.T) {
	tests := []struct {
		name    string
		qos     QoS
		wantErr string
	}{
		{"zero value", QoS{}, ""},
		{"good", QoS{BitsPerSecond: 300_000, MaxSkew: 80 * time.Millisecond, MaxJitter: 20 * time.Millisecond, MaxLossRate: 0.01}, ""},
		{"negative bandwidth", QoS{BitsPerSecond: -1}, "negative bandwidth"},
		{"negative skew", QoS{MaxSkew: -time.Second}, "negative max skew"},
		{"negative jitter", QoS{MaxJitter: -time.Second}, "negative max jitter"},
		{"loss above one", QoS{MaxLossRate: 1.5}, "outside [0,1]"},
		{"loss below zero", QoS{MaxLossRate: -0.1}, "outside [0,1]"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.qos.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestSegmentEndAndOverlap(t *testing.T) {
	a := Segment{ID: "a", Kind: KindVideo, Start: 0, Duration: 10 * time.Second}
	b := Segment{ID: "b", Kind: KindAudio, Start: 5 * time.Second, Duration: 10 * time.Second}
	c := Segment{ID: "c", Kind: KindImage, Start: 10 * time.Second, Duration: time.Second}

	if got, want := a.End(), 10*time.Second; got != want {
		t.Errorf("a.End() = %v, want %v", got, want)
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b must overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c touch at boundary only; must not overlap")
	}
}

func TestSegmentValidate(t *testing.T) {
	good := Segment{ID: "S0", Kind: KindVideo, Duration: time.Second}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid segment rejected: %v", err)
	}
	tests := []struct {
		name string
		seg  Segment
	}{
		{"empty id", Segment{Kind: KindVideo}},
		{"bad kind", Segment{ID: "x", Kind: Kind(0)}},
		{"negative start", Segment{ID: "x", Kind: KindVideo, Start: -1}},
		{"negative duration", Segment{ID: "x", Kind: KindVideo, Duration: -1}},
		{"bad qos", Segment{ID: "x", Kind: KindVideo, QoS: QoS{BitsPerSecond: -5}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.seg.Validate(); err == nil {
				t.Fatal("Validate() accepted an invalid segment")
			}
		})
	}
}

func TestSampleValidate(t *testing.T) {
	good := Sample{Kind: KindVideo, PTS: time.Second, Duration: 40 * time.Millisecond}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid sample rejected: %v", err)
	}
	bad := []Sample{
		{Kind: Kind(0)},
		{Kind: KindVideo, PTS: -time.Second},
		{Kind: KindVideo, Duration: -time.Second},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad sample %d accepted", i)
		}
	}
}

func TestPresentationDuration(t *testing.T) {
	p := Presentation{
		Title: "demo",
		Segments: []Segment{
			{ID: "a", Kind: KindVideo, Start: 0, Duration: 30 * time.Second},
			{ID: "b", Kind: KindImage, Start: 25 * time.Second, Duration: 10 * time.Second},
		},
	}
	if got, want := p.Duration(), 35*time.Second; got != want {
		t.Fatalf("Duration() = %v, want %v", got, want)
	}
	var empty Presentation
	if empty.Duration() != 0 {
		t.Fatal("empty presentation must have zero duration")
	}
}

func TestPresentationValidateDuplicateID(t *testing.T) {
	p := Presentation{
		Title: "dup",
		Segments: []Segment{
			{ID: "a", Kind: KindVideo, Duration: time.Second},
			{ID: "a", Kind: KindAudio, Duration: time.Second},
		},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("duplicate segment IDs accepted")
	}
}

func TestPresentationByStream(t *testing.T) {
	p := Presentation{
		Segments: []Segment{
			{ID: "v1", Kind: KindVideo, Stream: StreamVideo, Duration: time.Second},
			{ID: "v2", Kind: KindVideo, Stream: StreamVideo, Start: time.Second, Duration: time.Second},
			{ID: "a1", Kind: KindAudio, Stream: StreamAudio, Duration: 2 * time.Second},
		},
	}
	by := p.ByStream()
	if len(by[StreamVideo]) != 2 {
		t.Errorf("video stream has %d segments, want 2", len(by[StreamVideo]))
	}
	if len(by[StreamAudio]) != 1 {
		t.Errorf("audio stream has %d segments, want 1", len(by[StreamAudio]))
	}
}

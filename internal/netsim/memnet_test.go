package netsim

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// serveMem mounts h on the named memnet host and tears it down with the
// test.
func serveMem(t *testing.T, m *MemNet, host string, h http.Handler) {
	t.Helper()
	l, err := m.Listen(host)
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
}

func TestMemNetHTTPRoundTrip(t *testing.T) {
	m := NewMemNet()
	defer m.Close()
	serveMem(t, m, "origin.lod", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hello %s", r.URL.Path)
	}))

	client := m.Client()
	resp, err := client.Get("http://origin.lod/vod/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "hello /vod/x" {
		t.Fatalf("body = %q", body)
	}
}

func TestMemNetFollowsRedirectsAcrossHosts(t *testing.T) {
	m := NewMemNet()
	defer m.Close()
	serveMem(t, m, "edge-1.lod", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "served by edge")
	}))
	serveMem(t, m, "registry.lod", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "http://edge-1.lod"+r.URL.Path, http.StatusTemporaryRedirect)
	}))

	resp, err := m.Client().Get("http://registry.lod/vod/demo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "served by edge" {
		t.Fatalf("redirected body = %q", body)
	}
	if got := resp.Request.URL.Host; got != "edge-1.lod" {
		t.Fatalf("final host = %q, want edge-1.lod", got)
	}
}

func TestMemNetManyConcurrentClients(t *testing.T) {
	m := NewMemNet()
	defer m.Close()
	serveMem(t, m, "srv.lod", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	client := m.Client()
	const n = 200
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			resp, err := client.Get("http://srv.lod/")
			if err != nil {
				errs[id] = err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

func TestMemNetErrors(t *testing.T) {
	m := NewMemNet()
	if _, err := m.DialContext(context.Background(), "tcp", "ghost.lod:80"); err == nil {
		t.Fatal("dial to unknown host succeeded")
	}
	if _, err := m.Listen(""); err == nil {
		t.Fatal("empty host accepted")
	}
	if _, err := m.Listen("a.lod"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Listen("a.lod"); err == nil {
		t.Fatal("duplicate host accepted")
	}

	// A cancelled dial context must not hang even when nobody accepts.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := m.DialContext(ctx, "tcp", "a.lod:80"); err == nil {
		t.Fatal("dial with no acceptor and cancelled context succeeded")
	}

	m.Close()
	if _, err := m.Listen("b.lod"); err == nil {
		t.Fatal("listen on closed memnet succeeded")
	}
	if _, err := m.DialContext(context.Background(), "tcp", "a.lod:80"); err == nil {
		t.Fatal("dial on closed memnet succeeded")
	}
}

package netsim

import (
	"io"
	"time"

	"repro/internal/vclock"
)

// maxRetransmits bounds the per-chunk retransmission loop; a valid
// LossRate (< 1) makes hitting it astronomically unlikely.
const maxRetransmits = 64

// LinkReader shapes a byte stream through a Link: every Read is
// modeled as one packet transmitted over the link (serialization at
// the link bandwidth, propagation latency, jitter), and the reader
// sleeps on its clock until the modeled arrival instant. A lost packet
// is treated as a TCP-style retransmission — the bytes are delivered,
// after the cost of transmitting them again — so stream contents are
// never corrupted, only delayed.
//
// Packets pipeline through the link the way they do on a real path:
// serialization delays accumulate in the link's queue, but propagation
// latency offsets each packet's arrival without blocking the next
// packet's departure (the reader is not store-and-forward). The
// reader's own shaping sleeps are therefore excluded from the modeled
// send times — without that, a stream of many small packets would pay
// the full latency per packet and drift unboundedly late even on an
// otherwise idle link.
//
// LinkReader takes exclusive ownership of its Link: Link is not safe
// for concurrent use, so the link must not be shared with any other
// reader or Transmit caller (clone a prototype with Link.Clone for
// each flow, as internal/loadgen does per virtual client). The reader
// itself must also be confined to one goroutine, like any io.Reader.
type LinkReader struct {
	r     io.Reader
	link  *Link
	clock vclock.Clock

	started bool
	start   time.Time
	// slept is the artificial shaping delay injected so far; modeled
	// send times are wall elapsed minus this, so shaping sleeps never
	// push later packets' departures (pipelining).
	slept time.Duration
}

// NewLinkReader wraps r in the link's delivery model on the given
// clock (nil = real clock). A nil link returns an unshaped pass-through
// reader. The link must be exclusively owned by the returned reader.
func NewLinkReader(r io.Reader, link *Link, clock vclock.Clock) *LinkReader {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &LinkReader{r: r, link: link, clock: clock}
}

// Read implements io.Reader, delaying delivery of each chunk by the
// link's modeled transit time.
func (lr *LinkReader) Read(p []byte) (int, error) {
	n, err := lr.r.Read(p)
	if n <= 0 || lr.link == nil {
		return n, err
	}
	if !lr.started {
		lr.started = true
		lr.start = lr.clock.Now()
	}
	now := lr.clock.Now().Sub(lr.start)
	// The sender had this data at `now` minus our own injected delays;
	// with send times on that timeline, the link's arrival instants map
	// back to wall time directly (transit = ArrivedAt - sendAt, and
	// sendAt is the wall availability).
	d := lr.link.Transmit(now-lr.slept, n)
	// Retransmit lost copies from their departure instants. The attempt
	// cap keeps a pathological link (LossRate at or near 1, constructed
	// without Validate) from spinning forever; past it the chunk is
	// delivered at its last departure plus the propagation latency.
	for tries := 0; d.Lost; tries++ {
		if tries >= maxRetransmits {
			d.ArrivedAt = d.DepartedAt + lr.link.Latency
			break
		}
		d = lr.link.Transmit(d.DepartedAt, n)
	}
	if wait := d.ArrivedAt - now; wait > 0 {
		lr.clock.Sleep(wait)
		lr.slept += wait
	}
	return n, err
}

package netsim

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/vclock"
)

// drain reads everything from r while advancing the virtual clock from
// another goroutine, returning the virtual time that elapsed.
func drain(t *testing.T, r io.Reader, clk *vclock.Virtual) time.Duration {
	t.Helper()
	start := clk.Now()
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, r)
		done <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			return clk.Now().Sub(start)
		default:
			if next, ok := clk.NextDeadline(); ok {
				clk.AdvanceTo(next)
			} else {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
	t.Fatal("drain did not finish")
	return 0
}

func TestLinkReaderPacesToBandwidth(t *testing.T) {
	clk := vclock.NewVirtual()
	payload := bytes.Repeat([]byte{0xAB}, 8000) // 64 kbit
	link := &Link{BitsPerSecond: 64_000, Seed: 1}
	lr := NewLinkReader(bytes.NewReader(payload), link, clk)

	elapsed := drain(t, lr, clk)
	// 64 kbit over a 64 kbps link ≈ 1 s of serialization.
	if elapsed < 900*time.Millisecond || elapsed > 1100*time.Millisecond {
		t.Fatalf("shaped read took %v, want ≈1s", elapsed)
	}
}

// chunked caps every Read at n bytes so the link sees many packets.
type chunked struct {
	r io.Reader
	n int
}

func (c chunked) Read(p []byte) (int, error) {
	if len(p) > c.n {
		p = p[:c.n]
	}
	return c.r.Read(p)
}

func TestLinkReaderDeliversEverythingDespiteLoss(t *testing.T) {
	clk := vclock.NewVirtual()
	payload := bytes.Repeat([]byte{0x5A}, 4096)
	lossy := &Link{BitsPerSecond: 256_000, Latency: 5 * time.Millisecond, LossRate: 0.3, Seed: 7}
	clean := &Link{BitsPerSecond: 256_000, Latency: 5 * time.Millisecond, Seed: 7}

	var got bytes.Buffer
	lr := NewLinkReader(chunked{io.TeeReader(bytes.NewReader(payload), &got), 256}, lossy, clk)
	lossyTime := drain(t, lr, clk)
	if got.Len() != len(payload) {
		t.Fatalf("lossy link delivered %d bytes, want %d", got.Len(), len(payload))
	}

	clk2 := vclock.NewVirtual()
	cleanTime := drain(t, NewLinkReader(chunked{bytes.NewReader(payload), 256}, clean, clk2), clk2)
	if lossyTime <= cleanTime {
		t.Fatalf("loss cost nothing: lossy %v vs clean %v", lossyTime, cleanTime)
	}
}

func TestLinkReaderTotalLossDoesNotHang(t *testing.T) {
	// An invalid always-lose link (bypassing Validate) must still
	// deliver after the retransmission cap instead of spinning forever.
	clk := vclock.NewVirtual()
	dead := &Link{BitsPerSecond: 1_000_000, Latency: time.Millisecond, LossRate: 1, Seed: 3}
	lr := NewLinkReader(chunked{bytes.NewReader(bytes.Repeat([]byte{1}, 1024)), 256}, dead, clk)
	done := make(chan struct{})
	var n int64
	go func() {
		defer close(done)
		n, _ = io.Copy(io.Discard, lr)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case <-done:
			if n != 1024 {
				t.Fatalf("delivered %d bytes, want 1024", n)
			}
			return
		default:
			if next, ok := clk.NextDeadline(); ok {
				clk.AdvanceTo(next)
			} else {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}
	t.Fatal("total-loss link hung the reader")
}

func TestLinkReaderNilLinkPassesThrough(t *testing.T) {
	lr := NewLinkReader(bytes.NewReader([]byte("abc")), nil, nil)
	out, err := io.ReadAll(lr)
	if err != nil || string(out) != "abc" {
		t.Fatalf("passthrough = %q, %v", out, err)
	}
}

func TestLinkClone(t *testing.T) {
	proto := &Link{BitsPerSecond: 1000, Latency: time.Millisecond, Jitter: time.Millisecond, LossRate: 0.1, Seed: 1}
	// Warm the prototype so it carries queue state a clone must not inherit.
	proto.Transmit(0, 10_000)

	c := proto.Clone(42)
	if c.BitsPerSecond != proto.BitsPerSecond || c.Latency != proto.Latency ||
		c.Jitter != proto.Jitter || c.LossRate != proto.LossRate {
		t.Fatalf("clone parameters differ: %+v vs %+v", c, proto)
	}
	if c.Seed != 42 {
		t.Fatalf("clone seed = %d, want 42", c.Seed)
	}
	// A fresh clone starts with an idle queue: its first packet departs
	// after exactly one serialization time, not behind the prototype's
	// backlog.
	d := c.Transmit(0, 125) // 1000 bits at 1000 bps = 1s
	if d.DepartedAt != time.Second {
		t.Fatalf("clone first departure %v, want 1s (idle queue)", d.DepartedAt)
	}
}

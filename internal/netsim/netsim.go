// Package netsim simulates network links so every experiment can sweep
// bandwidth, latency, jitter, and loss deterministically on one machine,
// substituting for the paper's campus network testbed.
//
// Four complementary tools:
//
//   - Link: an analytic, stateful packet-delivery model (serialization
//     delay + propagation latency + uniform jitter + Bernoulli loss) used
//     by the synchronization and scalability experiments.
//   - ThrottledWriter: an io.Writer wrapper that paces real byte streams to
//     a configured bandwidth against any vclock.Clock, used on the HTTP
//     streaming path.
//   - LinkReader: the receive-side counterpart — an io.Reader that delays
//     each chunk by a Link's modeled transit time, shaping a client's
//     download the way ThrottledWriter shapes a server's upload.
//   - MemNet: an in-process network of named net.Listeners over net.Pipe,
//     so cluster-scale load generation (internal/loadgen) runs thousands
//     of concurrent HTTP sessions without consuming TCP ports.
//
// Concurrency: ThrottledWriter and MemNet are safe for concurrent use.
// Link is NOT — it carries serialization-queue and RNG state, so each
// simulated flow must own its own Link (clone a shared prototype with
// Link.Clone); LinkReader assumes exclusive ownership of its Link and,
// like any io.Reader, confinement to a single goroutine.
package netsim

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/vclock"
)

// Link is a deterministic single-queue network link model. The zero value
// is an infinitely fast, lossless, zero-latency link.
//
// Link is NOT safe for concurrent use: Transmit mutates the
// serialization queue (busyUntil) and the random streams, so two
// goroutines sharing one Link race and corrupt each other's delivery
// times. Each simulated flow must own a private Link — derive one per
// flow from a shared prototype with Clone, which is how
// internal/loadgen gives every virtual client its own shaped link.
type Link struct {
	// BitsPerSecond is the serialization rate; zero means infinite.
	BitsPerSecond int64
	// Latency is the fixed propagation delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter) per packet.
	Jitter time.Duration
	// LossRate drops packets with this probability in [0, 1).
	LossRate float64
	// Seed makes jitter and loss reproducible.
	Seed int64

	rng       *rand.Rand
	busyUntil time.Duration
}

// Validate checks the link parameters.
func (l *Link) Validate() error {
	switch {
	case l.BitsPerSecond < 0:
		return fmt.Errorf("netsim: negative bandwidth %d", l.BitsPerSecond)
	case l.Latency < 0:
		return fmt.Errorf("netsim: negative latency %v", l.Latency)
	case l.Jitter < 0:
		return fmt.Errorf("netsim: negative jitter %v", l.Jitter)
	case l.LossRate < 0 || l.LossRate >= 1:
		return fmt.Errorf("netsim: loss rate %v outside [0,1)", l.LossRate)
	}
	return nil
}

// Delivery is the outcome of transmitting one packet.
type Delivery struct {
	// SentAt is when the packet was handed to the link.
	SentAt time.Duration
	// DepartedAt is when serialization finished (queueing included).
	DepartedAt time.Duration
	// ArrivedAt is when the packet reached the far end (valid if !Lost).
	ArrivedAt time.Duration
	// Lost reports the packet was dropped.
	Lost bool
	// Bytes is the packet size.
	Bytes int
}

// Transit returns the end-to-end delay experienced by the packet.
func (d Delivery) Transit() time.Duration { return d.ArrivedAt - d.SentAt }

// Transmit models sending size bytes at time sendAt and returns the
// delivery outcome. Calls must be made in non-decreasing sendAt order for
// the serialization queue to be meaningful.
func (l *Link) Transmit(sendAt time.Duration, size int) Delivery {
	if l.rng == nil {
		l.rng = rand.New(rand.NewSource(l.Seed))
	}
	d := Delivery{SentAt: sendAt, Bytes: size}

	start := sendAt
	if l.busyUntil > start {
		start = l.busyUntil
	}
	var tx time.Duration
	if l.BitsPerSecond > 0 {
		tx = time.Duration(float64(size*8) / float64(l.BitsPerSecond) * float64(time.Second))
	}
	l.busyUntil = start + tx
	d.DepartedAt = l.busyUntil

	// Consume randomness in a fixed order so loss and jitter streams are
	// stable regardless of parameters.
	lossDraw := l.rng.Float64()
	var jitter time.Duration
	if l.Jitter > 0 {
		jitter = time.Duration(l.rng.Int63n(int64(l.Jitter)))
	}
	if l.LossRate > 0 && lossDraw < l.LossRate {
		d.Lost = true
		return d
	}
	d.ArrivedAt = d.DepartedAt + l.Latency + jitter
	return d
}

// Reset clears queue state and reseeds the random streams.
func (l *Link) Reset() {
	l.busyUntil = 0
	l.rng = rand.New(rand.NewSource(l.Seed))
}

// Clone returns a fresh Link with the same parameters but its own
// queue state and random streams, seeded with seed. It is the
// concurrency guard for fan-out users: keep one prototype Link and
// hand each concurrent flow a Clone to own exclusively.
func (l *Link) Clone(seed int64) *Link {
	return &Link{
		BitsPerSecond: l.BitsPerSecond,
		Latency:       l.Latency,
		Jitter:        l.Jitter,
		LossRate:      l.LossRate,
		Seed:          seed,
	}
}

// Presets mirroring the codec profile audiences.
var (
	// LinkModem56k is a 56 kbps dial-up line.
	LinkModem56k = Link{BitsPerSecond: 56_000, Latency: 120 * time.Millisecond, Jitter: 40 * time.Millisecond, Seed: 1}
	// LinkDSL is consumer DSL.
	LinkDSL = Link{BitsPerSecond: 768_000, Latency: 30 * time.Millisecond, Jitter: 10 * time.Millisecond, Seed: 1}
	// LinkLAN is a campus LAN.
	LinkLAN = Link{BitsPerSecond: 10_000_000, Latency: 2 * time.Millisecond, Jitter: time.Millisecond, Seed: 1}
	// LinkLossyWiFi is a congested wireless link.
	LinkLossyWiFi = Link{BitsPerSecond: 2_000_000, Latency: 20 * time.Millisecond, Jitter: 30 * time.Millisecond, LossRate: 0.05, Seed: 1}
)

// ThrottledWriter paces writes to an underlying writer at a fixed
// bandwidth, sleeping on the supplied clock. It is safe for concurrent use.
type ThrottledWriter struct {
	mu            sync.Mutex
	w             io.Writer
	clock         vclock.Clock
	bitsPerSecond int64
	debt          time.Duration
	last          time.Time
	started       bool
}

// NewThrottledWriter wraps w at the given bandwidth. A nil clock uses the
// real clock; bitsPerSecond <= 0 disables throttling.
func NewThrottledWriter(w io.Writer, bitsPerSecond int64, clock vclock.Clock) *ThrottledWriter {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &ThrottledWriter{w: w, clock: clock, bitsPerSecond: bitsPerSecond}
}

// Write implements io.Writer, sleeping as needed so the long-run rate does
// not exceed the configured bandwidth.
func (t *ThrottledWriter) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bitsPerSecond <= 0 {
		return t.w.Write(p)
	}
	now := t.clock.Now()
	if !t.started {
		t.started = true
		t.last = now
	}
	// Pay down debt with elapsed time.
	elapsed := now.Sub(t.last)
	t.last = now
	t.debt -= elapsed
	if t.debt < 0 {
		t.debt = 0
	}
	n, err := t.w.Write(p)
	t.debt += time.Duration(float64(n*8) / float64(t.bitsPerSecond) * float64(time.Second))
	if t.debt > 0 {
		t.clock.Sleep(t.debt)
		t.last = t.clock.Now()
		t.debt = 0
	}
	return n, err
}

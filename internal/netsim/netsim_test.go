package netsim

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/vclock"
)

func TestLinkValidate(t *testing.T) {
	good := Link{BitsPerSecond: 1000, Latency: time.Millisecond, Jitter: time.Millisecond, LossRate: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	bad := []Link{
		{BitsPerSecond: -1},
		{Latency: -time.Second},
		{Jitter: -time.Second},
		{LossRate: -0.1},
		{LossRate: 1.0},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad link %d accepted", i)
		}
	}
}

func TestZeroLinkIsTransparent(t *testing.T) {
	var l Link
	d := l.Transmit(5*time.Second, 1_000_000)
	if d.Lost || d.ArrivedAt != 5*time.Second || d.DepartedAt != 5*time.Second {
		t.Fatalf("zero link delivery = %+v", d)
	}
}

func TestSerializationDelay(t *testing.T) {
	l := Link{BitsPerSecond: 8000} // 1000 bytes/s
	d := l.Transmit(0, 500)
	if want := 500 * time.Millisecond; d.ArrivedAt != want {
		t.Fatalf("500B over 1kB/s arrived at %v, want %v", d.ArrivedAt, want)
	}
}

func TestQueueingBuildsUp(t *testing.T) {
	l := Link{BitsPerSecond: 8000} // 1000 bytes/s
	first := l.Transmit(0, 1000)   // occupies [0s, 1s]
	second := l.Transmit(0, 1000)  // must queue behind: [1s, 2s]
	if first.DepartedAt != time.Second {
		t.Fatalf("first departed at %v", first.DepartedAt)
	}
	if second.DepartedAt != 2*time.Second {
		t.Fatalf("second departed at %v, want 2s (queued)", second.DepartedAt)
	}
	// A later packet after the queue drains is not delayed.
	third := l.Transmit(10*time.Second, 8)
	if third.DepartedAt != 10*time.Second+8*time.Millisecond {
		t.Fatalf("third departed at %v", third.DepartedAt)
	}
}

func TestLatencyAdded(t *testing.T) {
	l := Link{Latency: 100 * time.Millisecond}
	d := l.Transmit(time.Second, 100)
	if d.ArrivedAt != time.Second+100*time.Millisecond {
		t.Fatalf("arrival %v", d.ArrivedAt)
	}
	if d.Transit() != 100*time.Millisecond {
		t.Fatalf("transit %v", d.Transit())
	}
}

func TestJitterBoundedAndDeterministic(t *testing.T) {
	l1 := Link{Jitter: 50 * time.Millisecond, Seed: 9}
	l2 := Link{Jitter: 50 * time.Millisecond, Seed: 9}
	for i := 0; i < 100; i++ {
		d1 := l1.Transmit(time.Duration(i)*time.Second, 100)
		d2 := l2.Transmit(time.Duration(i)*time.Second, 100)
		if d1.ArrivedAt != d2.ArrivedAt {
			t.Fatal("same seed produced different jitter")
		}
		j := d1.ArrivedAt - d1.SentAt
		if j < 0 || j >= 50*time.Millisecond {
			t.Fatalf("jitter %v outside [0,50ms)", j)
		}
	}
}

func TestLossRateApproximate(t *testing.T) {
	l := Link{LossRate: 0.2, Seed: 123}
	lost := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if l.Transmit(time.Duration(i)*time.Millisecond, 100).Lost {
			lost++
		}
	}
	got := float64(lost) / n
	if math.Abs(got-0.2) > 0.03 {
		t.Fatalf("observed loss %.3f, want ≈0.20", got)
	}
}

func TestResetRestoresDeterminism(t *testing.T) {
	l := Link{Jitter: 10 * time.Millisecond, LossRate: 0.3, Seed: 5}
	var first []Delivery
	for i := 0; i < 20; i++ {
		first = append(first, l.Transmit(time.Duration(i)*time.Second, 64))
	}
	l.Reset()
	for i := 0; i < 20; i++ {
		d := l.Transmit(time.Duration(i)*time.Second, 64)
		if d != first[i] {
			t.Fatalf("delivery %d differs after Reset", i)
		}
	}
}

func TestPresetsValid(t *testing.T) {
	for _, l := range []Link{LinkModem56k, LinkDSL, LinkLAN, LinkLossyWiFi} {
		if err := l.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
}

func TestThrottledWriterPacesOnVirtualClock(t *testing.T) {
	clk := vclock.NewVirtual()
	var buf bytes.Buffer
	// 8000 bps = 1000 bytes per second.
	tw := NewThrottledWriter(&buf, 8000, clk)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			if _, err := tw.Write(make([]byte, 500)); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()
	// Drive the clock until the writer goroutine finishes (it sleeps once
	// more after its final write; each 500B write costs 500 ms of virtual
	// time).
	deadline := time.Now().Add(10 * time.Second)
drive:
	for time.Now().Before(deadline) {
		select {
		case <-done:
			break drive
		default:
			if clk.PendingWaiters() > 0 {
				clk.Advance(500 * time.Millisecond)
			} else {
				time.Sleep(time.Millisecond)
			}
		}
	}
	select {
	case <-done:
	default:
		t.Fatal("writer goroutine did not finish")
	}
	if buf.Len() != 2000 {
		t.Fatalf("wrote %d bytes, want 2000", buf.Len())
	}
	// The virtual clock must have advanced ≈2 s of serialization time.
	elapsed := clk.Now().Sub(vclock.Epoch)
	if elapsed < 1500*time.Millisecond {
		t.Fatalf("virtual time advanced only %v; throttling not applied", elapsed)
	}
}

func TestThrottledWriterUnlimited(t *testing.T) {
	var buf bytes.Buffer
	tw := NewThrottledWriter(&buf, 0, nil)
	start := time.Now()
	if _, err := tw.Write(make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("unthrottled write slept")
	}
	if buf.Len() != 1<<20 {
		t.Fatalf("wrote %d", buf.Len())
	}
}

package netsim

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
)

// MemNet is an in-process network of named listeners. Every connection
// is a net.Pipe, so a whole origin + registry + N-edge cluster plus
// thousands of HTTP clients runs inside one process without consuming
// a single TCP port — the transport internal/loadgen drives its swarms
// over, where real sockets would exhaust the ephemeral port range.
//
// Hosts are arbitrary names ("origin.lod", "edge-1.lod"); the port part
// of a dial address is ignored, so ordinary http://host URLs work
// unchanged. MemNet is safe for concurrent use.
type MemNet struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	closed    bool
}

// NewMemNet creates an empty in-process network.
func NewMemNet() *MemNet {
	return &MemNet{listeners: make(map[string]*memListener)}
}

// Listen registers a listener for the given host name (no port). It
// fails if the host is already taken or the network is closed.
func (m *MemNet) Listen(host string) (net.Listener, error) {
	if host == "" {
		return nil, fmt.Errorf("netsim: empty memnet host")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("netsim: memnet closed")
	}
	if _, ok := m.listeners[host]; ok {
		return nil, fmt.Errorf("netsim: memnet host %q already listening", host)
	}
	l := &memListener{host: host, conns: make(chan net.Conn), done: make(chan struct{}), net: m}
	m.listeners[host] = l
	return l, nil
}

// DialContext connects to the named host, satisfying the signature of
// http.Transport.DialContext. The port in addr is ignored.
func (m *MemNet) DialContext(ctx context.Context, _, addr string) (net.Conn, error) {
	host := addr
	if h, _, err := net.SplitHostPort(addr); err == nil {
		host = h
	}
	m.mu.Lock()
	l, ok := m.listeners[host]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("netsim: memnet host %q not listening", host)
	}
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("netsim: memnet host %q closed", host)
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
}

// Client returns an http.Client whose transport dials through the
// in-process network. Each call returns a fresh client (and connection
// pool); clients may be shared by any number of goroutines.
func (m *MemNet) Client() *http.Client {
	return &http.Client{Transport: &http.Transport{
		DialContext:         m.DialContext,
		MaxIdleConnsPerHost: 64,
	}}
}

// Close shuts every listener down; in-flight connections are left to
// their owners.
func (m *MemNet) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	for _, l := range m.listeners {
		l.closeLocked()
	}
	m.listeners = make(map[string]*memListener)
}

// memListener implements net.Listener over a channel of pipe ends.
type memListener struct {
	host  string
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
	net   *MemNet
}

// Accept implements net.Listener.
func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("netsim: memnet listener %q closed", l.host)
	}
}

// Close implements net.Listener and releases the host name for reuse.
func (l *memListener) Close() error {
	l.net.mu.Lock()
	if l.net.listeners[l.host] == l {
		delete(l.net.listeners, l.host)
	}
	l.net.mu.Unlock()
	l.closeLocked()
	return nil
}

func (l *memListener) closeLocked() { l.once.Do(func() { close(l.done) }) }

// Addr implements net.Listener.
func (l *memListener) Addr() net.Addr { return memAddr(l.host) }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

package petri

import (
	"testing"
)

func TestIncidenceMatrix(t *testing.T) {
	n := buildCycleNet(t) // p1 -> t12 -> p2 -> t21 -> p1
	c := n.IncidenceMatrix()
	// Rows: p1, p2. Cols: t12, t21.
	want := [][]int{
		{-1, 1},
		{1, -1},
	}
	for i := range want {
		for j := range want[i] {
			if c[i][j] != want[i][j] {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, c[i][j], want[i][j])
			}
		}
	}
}

func TestIncidenceMatrixIgnoresInhibitors(t *testing.T) {
	n := NewNet("inh")
	mustAdd(t, n.AddPlace(Place{ID: "p"}))
	mustAdd(t, n.AddPlace(Place{ID: "q"}))
	mustAdd(t, n.AddTransition(Transition{ID: "t"}))
	mustAdd(t, n.AddInput("p", "t", 1))
	mustAdd(t, n.AddInhibitor("q", "t", 1))
	c := n.IncidenceMatrix()
	if c[1][0] != 0 {
		t.Fatalf("inhibitor arc moved tokens: C[q][t] = %d", c[1][0])
	}
}

func TestPInvariantsCycle(t *testing.T) {
	n := buildCycleNet(t)
	invs := n.PInvariants()
	if len(invs) == 0 {
		t.Fatal("cycle has no P-invariant")
	}
	// The cycle's invariant is p1 + p2 = const.
	found := false
	for _, inv := range invs {
		if inv["p1"] == 1 && inv["p2"] == 1 && len(inv) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected invariant p1+p2; got %v", invs)
	}
	// Check the invariant over an actual firing.
	m0 := Marking{"p1": 1}
	m1, err := n.Fire(m0, "t12")
	if err != nil {
		t.Fatal(err)
	}
	for _, inv := range invs {
		if !CheckPInvariant(inv, m0, m1) {
			t.Fatalf("invariant %v violated by firing", inv)
		}
	}
}

func TestPInvariantsLinearNetHasNoneCoveringAll(t *testing.T) {
	// p1 -> t -> p2 -> t2 -> p3 (a pure pipeline still conserves p1+p2+p3).
	n := NewNet("line")
	mustAdd(t, n.AddPlace(Place{ID: "p1"}))
	mustAdd(t, n.AddPlace(Place{ID: "p2"}))
	mustAdd(t, n.AddPlace(Place{ID: "p3"}))
	mustAdd(t, n.AddTransition(Transition{ID: "t1"}))
	mustAdd(t, n.AddTransition(Transition{ID: "t2"}))
	mustAdd(t, n.AddInput("p1", "t1", 1))
	mustAdd(t, n.AddOutput("t1", "p2", 1))
	mustAdd(t, n.AddInput("p2", "t2", 1))
	mustAdd(t, n.AddOutput("t2", "p3", 1))
	invs := n.PInvariants()
	found := false
	for _, inv := range invs {
		if inv["p1"] == 1 && inv["p2"] == 1 && inv["p3"] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("pipeline invariant p1+p2+p3 not found: %v", invs)
	}
}

func TestPInvariantsWeighted(t *testing.T) {
	// t consumes 1 from a and produces 2 into b: invariant 2a + b.
	n := NewNet("weighted")
	mustAdd(t, n.AddPlace(Place{ID: "a"}))
	mustAdd(t, n.AddPlace(Place{ID: "b"}))
	mustAdd(t, n.AddTransition(Transition{ID: "t"}))
	mustAdd(t, n.AddInput("a", "t", 1))
	mustAdd(t, n.AddOutput("t", "b", 2))
	invs := n.PInvariants()
	found := false
	for _, inv := range invs {
		if inv["a"] == 2 && inv["b"] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("weighted invariant 2a+b not found: %v", invs)
	}
	m0 := Marking{"a": 3}
	m1, err := n.Fire(m0, "t")
	if err != nil {
		t.Fatal(err)
	}
	if InvariantSum(map[PlaceID]int{"a": 2, "b": 1}, m0) != InvariantSum(map[PlaceID]int{"a": 2, "b": 1}, m1) {
		t.Fatal("weighted sum changed across firing")
	}
}

func TestPInvariantsSourceSinkHasNone(t *testing.T) {
	// A transition that only produces (no conservation possible over its
	// output place).
	n := NewNet("sink")
	mustAdd(t, n.AddPlace(Place{ID: "in"}))
	mustAdd(t, n.AddPlace(Place{ID: "gone"}))
	mustAdd(t, n.AddTransition(Transition{ID: "t"}))
	mustAdd(t, n.AddInput("in", "t", 1))
	// no outputs: tokens vanish
	invs := n.PInvariants()
	for _, inv := range invs {
		if inv["in"] != 0 {
			t.Fatalf("token-destroying place appears in invariant: %v", inv)
		}
	}
}

// TestFloorControlInvariantsDiscovered ties the invariant computation to
// the paper's floor-control net: the computed basis must include the
// mutual-exclusion invariant (floor + all speaking places) and each user's
// state invariant.
func TestFloorControlInvariantsDiscovered(t *testing.T) {
	n := NewNet("floor2")
	mustAdd(t, n.AddPlace(Place{ID: "floor"}))
	for _, u := range []string{"u0", "u1"} {
		mustAdd(t, n.AddPlace(Place{ID: PlaceID(u + "_idle")}))
		mustAdd(t, n.AddPlace(Place{ID: PlaceID(u + "_wait")}))
		mustAdd(t, n.AddPlace(Place{ID: PlaceID(u + "_speak")}))
		mustAdd(t, n.AddTransition(Transition{ID: TransitionID(u + "_req")}))
		mustAdd(t, n.AddTransition(Transition{ID: TransitionID(u + "_grant")}))
		mustAdd(t, n.AddTransition(Transition{ID: TransitionID(u + "_rel")}))
		mustAdd(t, n.AddInput(PlaceID(u+"_idle"), TransitionID(u+"_req"), 1))
		mustAdd(t, n.AddOutput(TransitionID(u+"_req"), PlaceID(u+"_wait"), 1))
		mustAdd(t, n.AddInput(PlaceID(u+"_wait"), TransitionID(u+"_grant"), 1))
		mustAdd(t, n.AddInput("floor", TransitionID(u+"_grant"), 1))
		mustAdd(t, n.AddOutput(TransitionID(u+"_grant"), PlaceID(u+"_speak"), 1))
		mustAdd(t, n.AddInput(PlaceID(u+"_speak"), TransitionID(u+"_rel"), 1))
		mustAdd(t, n.AddOutput(TransitionID(u+"_rel"), PlaceID(u+"_idle"), 1))
		mustAdd(t, n.AddOutput(TransitionID(u+"_rel"), "floor", 1))
	}
	invs := n.PInvariants()
	hasMutex, hasUser0 := false, false
	for _, inv := range invs {
		if inv["floor"] == 1 && inv["u0_speak"] == 1 && inv["u1_speak"] == 1 &&
			inv["u0_idle"] == 0 && inv["u1_idle"] == 0 {
			hasMutex = true
		}
		if inv["u0_idle"] == 1 && inv["u0_wait"] == 1 && inv["u0_speak"] == 1 && inv["floor"] == 0 {
			hasUser0 = true
		}
	}
	if !hasMutex {
		t.Errorf("mutual-exclusion invariant not discovered in %v", invs)
	}
	if !hasUser0 {
		t.Errorf("user-state invariant not discovered in %v", invs)
	}
}

func TestTInvariantsCycle(t *testing.T) {
	n := buildCycleNet(t)
	invs := n.TInvariants()
	found := false
	for _, inv := range invs {
		if inv["t12"] == 1 && inv["t21"] == 1 && len(inv) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("cycle T-invariant t12+t21 not found: %v", invs)
	}
	// Firing the invariant reproduces the marking.
	m0 := Marking{"p1": 1}
	m1, err := n.FireSequence(m0, "t12", "t21")
	if err != nil {
		t.Fatal(err)
	}
	if !m0.Equal(m1) {
		t.Fatal("firing the T-invariant did not reproduce the marking")
	}
}

func TestTInvariantsAcyclicNetHasNone(t *testing.T) {
	n := buildSimpleNet(t) // p1 -> t1 -> p2, no cycle
	if invs := n.TInvariants(); len(invs) != 0 {
		t.Fatalf("acyclic net reported T-invariants: %v", invs)
	}
}

func TestTInvariantsFloorRotation(t *testing.T) {
	// One user's request+grant+release is a T-invariant of the floor net.
	n := NewNet("floor1")
	mustAdd(t, n.AddPlace(Place{ID: "floor"}))
	mustAdd(t, n.AddPlace(Place{ID: "idle"}))
	mustAdd(t, n.AddPlace(Place{ID: "wait"}))
	mustAdd(t, n.AddPlace(Place{ID: "speak"}))
	mustAdd(t, n.AddTransition(Transition{ID: "req"}))
	mustAdd(t, n.AddTransition(Transition{ID: "grant"}))
	mustAdd(t, n.AddTransition(Transition{ID: "rel"}))
	mustAdd(t, n.AddInput("idle", "req", 1))
	mustAdd(t, n.AddOutput("req", "wait", 1))
	mustAdd(t, n.AddInput("wait", "grant", 1))
	mustAdd(t, n.AddInput("floor", "grant", 1))
	mustAdd(t, n.AddOutput("grant", "speak", 1))
	mustAdd(t, n.AddInput("speak", "rel", 1))
	mustAdd(t, n.AddOutput("rel", "idle", 1))
	mustAdd(t, n.AddOutput("rel", "floor", 1))

	invs := n.TInvariants()
	found := false
	for _, inv := range invs {
		if inv["req"] == 1 && inv["grant"] == 1 && inv["rel"] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("floor rotation T-invariant not found: %v", invs)
	}
	m0 := Marking{"floor": 1, "idle": 1}
	m1, err := n.FireSequence(m0, "req", "grant", "rel")
	if err != nil {
		t.Fatal(err)
	}
	if !m0.Equal(m1) {
		t.Fatal("floor rotation did not reproduce the marking")
	}
}

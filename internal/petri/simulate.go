package petri

import (
	"fmt"
	"sort"
	"time"
)

// FireEvent records one transition firing during simulation.
type FireEvent struct {
	At         time.Duration
	Transition TransitionID
}

// PlayoutInterval records a token's residence in a media place: the
// half-open interval [Start, Start+Duration) during which the segment the
// place models is being presented.
type PlayoutInterval struct {
	Place PlaceID
	Start time.Duration
	End   time.Duration
}

// Injection schedules external token arrivals, the mechanism by which user
// interactions (pause/resume/skip) and network events (packet arrival)
// enter the extended timed model.
type Injection struct {
	At     time.Duration
	Place  PlaceID
	Tokens int
}

// Trace is the full record of one simulation run.
type Trace struct {
	Fires    []FireEvent
	Playouts []PlayoutInterval
	// Final is the marking when the run stopped.
	Final Marking
	// EndedAt is the simulation time when the run stopped.
	EndedAt time.Duration
	// Quiescent reports whether the run ended because nothing remained to
	// do (as opposed to hitting the horizon or step limit).
	Quiescent bool
}

// FiredAt returns the first firing time of the given transition and true,
// or zero and false if it never fired.
func (tr *Trace) FiredAt(t TransitionID) (time.Duration, bool) {
	for _, f := range tr.Fires {
		if f.Transition == t {
			return f.At, true
		}
	}
	return 0, false
}

// PlayoutOf returns the first playout interval of the given place.
func (tr *Trace) PlayoutOf(p PlaceID) (PlayoutInterval, bool) {
	for _, pi := range tr.Playouts {
		if pi.Place == p {
			return pi, true
		}
	}
	return PlayoutInterval{}, false
}

// Simulator executes a timed Petri net deterministically. Tokens arriving
// in a place mature after the place's Duration; a transition fires as soon
// as every input place holds enough mature tokens (and inhibitor conditions
// hold), with conflicts resolved by priority then transition ID.
type Simulator struct {
	net *Net
	// tokens[p] holds the ready-times of tokens currently in p, sorted.
	tokens     map[PlaceID][]time.Duration
	injections []Injection
	now        time.Duration
	trace      Trace
	// MaxSteps bounds total firings to guard against non-terminating nets;
	// zero means the default of 1_000_000.
	MaxSteps int
}

// NewSimulator creates a simulator with the initial marking; initial tokens
// arrive at time zero and mature through their place's duration.
func NewSimulator(n *Net, initial Marking) *Simulator {
	s := &Simulator{
		net:    n,
		tokens: make(map[PlaceID][]time.Duration),
	}
	for pid, count := range initial {
		p := n.Place(pid)
		if p == nil {
			continue
		}
		for i := 0; i < count; i++ {
			s.addToken(pid, 0)
		}
	}
	return s
}

// Schedule queues an external token injection. Must be called before Run.
func (s *Simulator) Schedule(inj Injection) error {
	if s.net.Place(inj.Place) == nil {
		return fmt.Errorf("%w: %s", ErrUnknownPlace, inj.Place)
	}
	if inj.Tokens < 1 {
		return fmt.Errorf("petri: injection of %d tokens", inj.Tokens)
	}
	if inj.At < 0 {
		return fmt.Errorf("petri: injection at negative time %v", inj.At)
	}
	s.injections = append(s.injections, inj)
	return nil
}

func (s *Simulator) addToken(pid PlaceID, arrival time.Duration) {
	p := s.net.Place(pid)
	ready := arrival + p.Duration
	list := s.tokens[pid]
	idx := sort.Search(len(list), func(i int) bool { return list[i] > ready })
	list = append(list, 0)
	copy(list[idx+1:], list[idx:])
	list[idx] = ready
	s.tokens[pid] = list
	if p.Kind == PlaceMedia {
		s.trace.Playouts = append(s.trace.Playouts, PlayoutInterval{
			Place: pid, Start: arrival, End: ready,
		})
	}
}

// matureCount returns how many tokens in p are mature at time t.
func (s *Simulator) matureCount(pid PlaceID, t time.Duration) int {
	list := s.tokens[pid]
	return sort.Search(len(list), func(i int) bool { return list[i] > t })
}

// enabledAt reports whether transition tid can fire at time t.
func (s *Simulator) enabledAt(tid TransitionID, t time.Duration) bool {
	arcs := s.net.inputs[tid]
	if len(arcs) == 0 {
		return false
	}
	for _, a := range arcs {
		if a.Inhibitor {
			if len(s.tokens[a.Place]) >= a.Weight {
				return false
			}
		} else if s.matureCount(a.Place, t) < a.Weight {
			return false
		}
	}
	return true
}

// fireAt consumes and produces tokens for transition tid at time t.
func (s *Simulator) fireAt(tid TransitionID, t time.Duration) {
	for _, a := range s.net.inputs[tid] {
		if a.Inhibitor {
			continue
		}
		// Consume the earliest-mature tokens.
		s.tokens[a.Place] = s.tokens[a.Place][a.Weight:]
	}
	for _, a := range s.net.outputs[tid] {
		for i := 0; i < a.Weight; i++ {
			s.addToken(a.Place, t)
		}
	}
	s.trace.Fires = append(s.trace.Fires, FireEvent{At: t, Transition: tid})
}

// Run executes the net until the horizon, quiescence, or the step limit,
// and returns the trace. A zero horizon means run to quiescence (bounded by
// MaxSteps).
func (s *Simulator) Run(horizon time.Duration) (*Trace, error) {
	maxSteps := s.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	sort.SliceStable(s.injections, func(i, j int) bool {
		return s.injections[i].At < s.injections[j].At
	})
	injIdx := 0
	steps := 0

	for {
		// Deliver injections due now.
		for injIdx < len(s.injections) && s.injections[injIdx].At <= s.now {
			inj := s.injections[injIdx]
			for i := 0; i < inj.Tokens; i++ {
				s.addToken(inj.Place, inj.At)
			}
			injIdx++
		}

		// Fire everything enabled at the current time, deterministically.
		fired := true
		for fired {
			fired = false
			for _, tid := range s.enabledOrder(s.now) {
				if steps >= maxSteps {
					return s.finish(false), fmt.Errorf("petri: step limit %d reached", maxSteps)
				}
				if s.enabledAt(tid, s.now) {
					s.fireAt(tid, s.now)
					steps++
					fired = true
					break // re-evaluate enablement from scratch
				}
			}
		}

		// Find the next interesting instant: earliest immature token or
		// pending injection.
		next, ok := s.nextInstant(injIdx)
		if !ok {
			return s.finish(true), nil
		}
		if horizon > 0 && next > horizon {
			s.now = horizon
			return s.finish(false), nil
		}
		s.now = next
	}
}

// enabledOrder returns transitions in deterministic firing order at time t.
func (s *Simulator) enabledOrder(t time.Duration) []TransitionID {
	var out []TransitionID
	for _, tid := range s.net.transOrder {
		if s.enabledAt(tid, t) {
			out = append(out, tid)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := s.net.transitions[out[i]].Priority, s.net.transitions[out[j]].Priority
		if pi != pj {
			return pi > pj
		}
		return out[i] < out[j]
	})
	return out
}

func (s *Simulator) nextInstant(injIdx int) (time.Duration, bool) {
	var next time.Duration
	found := false
	for _, list := range s.tokens {
		for _, ready := range list {
			if ready > s.now {
				if !found || ready < next {
					next, found = ready, true
				}
				break // list is sorted
			}
		}
	}
	if injIdx < len(s.injections) {
		at := s.injections[injIdx].At
		if at > s.now && (!found || at < next) {
			next, found = at, true
		}
	}
	return next, found
}

func (s *Simulator) finish(quiescent bool) *Trace {
	final := make(Marking)
	for pid, list := range s.tokens {
		if len(list) > 0 {
			final[pid] = len(list)
		}
	}
	s.trace.Final = final
	s.trace.EndedAt = s.now
	s.trace.Quiescent = quiescent
	sort.SliceStable(s.trace.Playouts, func(i, j int) bool {
		if s.trace.Playouts[i].Start != s.trace.Playouts[j].Start {
			return s.trace.Playouts[i].Start < s.trace.Playouts[j].Start
		}
		return s.trace.Playouts[i].Place < s.trace.Playouts[j].Place
	})
	return &s.trace
}

package petri

import (
	"testing"
)

// buildCycleNet builds a two-place cycle: p1 -> t12 -> p2 -> t21 -> p1.
func buildCycleNet(t *testing.T) *Net {
	t.Helper()
	n := NewNet("cycle")
	mustAdd(t, n.AddPlace(Place{ID: "p1"}))
	mustAdd(t, n.AddPlace(Place{ID: "p2"}))
	mustAdd(t, n.AddTransition(Transition{ID: "t12"}))
	mustAdd(t, n.AddTransition(Transition{ID: "t21"}))
	mustAdd(t, n.AddInput("p1", "t12", 1))
	mustAdd(t, n.AddOutput("t12", "p2", 1))
	mustAdd(t, n.AddInput("p2", "t21", 1))
	mustAdd(t, n.AddOutput("t21", "p1", 1))
	return n
}

func TestReachabilityLinear(t *testing.T) {
	n := buildSimpleNet(t)
	res := n.Reachability(Marking{"p1": 1}, 0)
	if res.States != 2 {
		t.Fatalf("States = %d, want 2", res.States)
	}
	if res.Truncated {
		t.Fatal("tiny net truncated")
	}
	if len(res.Deadlocks) != 1 {
		t.Fatalf("Deadlocks = %d, want 1 (terminal marking)", len(res.Deadlocks))
	}
	if !res.Deadlocks[0].Equal(Marking{"p2": 1}) {
		t.Fatalf("deadlock marking = %v, want p2=1", res.Deadlocks[0])
	}
}

func TestReachabilityCycleHasNoDeadlock(t *testing.T) {
	n := buildCycleNet(t)
	res := n.Reachability(Marking{"p1": 1}, 0)
	if res.States != 2 {
		t.Fatalf("States = %d, want 2", res.States)
	}
	if len(res.Deadlocks) != 0 {
		t.Fatalf("cycle reported %d deadlocks", len(res.Deadlocks))
	}
	if n.HasDeadlock(Marking{"p1": 1}, 0) {
		t.Fatal("HasDeadlock true for live cycle")
	}
}

func TestReachabilityTruncation(t *testing.T) {
	// Unbounded producer: t consumes from p and puts 2 back.
	n := NewNet("unbounded")
	mustAdd(t, n.AddPlace(Place{ID: "p"}))
	mustAdd(t, n.AddTransition(Transition{ID: "t"}))
	mustAdd(t, n.AddInput("p", "t", 1))
	mustAdd(t, n.AddOutput("t", "p", 2))
	res := n.Reachability(Marking{"p": 1}, 10)
	if !res.Truncated {
		t.Fatal("unbounded net not truncated at limit")
	}
	if res.States > 10 {
		t.Fatalf("visited %d states, limit 10", res.States)
	}
}

func TestIsKBoundedAndSafe(t *testing.T) {
	n := buildCycleNet(t)
	safe, complete := n.IsSafe(Marking{"p1": 1}, 0)
	if !safe || !complete {
		t.Fatalf("IsSafe = %v,%v; want true,true", safe, complete)
	}
	bounded, _ := n.IsKBounded(Marking{"p1": 2}, 1, 0)
	if bounded {
		t.Fatal("2-token cycle reported 1-bounded")
	}
	bounded, complete = n.IsKBounded(Marking{"p1": 2}, 2, 0)
	if !bounded || !complete {
		t.Fatal("2-token cycle must be 2-bounded")
	}
}

func TestDeadlocksExcept(t *testing.T) {
	n := buildSimpleNet(t)
	bad := n.DeadlocksExcept(Marking{"p1": 1}, "p2", 0)
	if len(bad) != 0 {
		t.Fatalf("terminal marking flagged as bad deadlock: %v", bad)
	}
	bad = n.DeadlocksExcept(Marking{"p1": 1}, "p1", 0)
	if len(bad) != 1 {
		t.Fatalf("unexpected deadlock not reported; got %v", bad)
	}
}

func TestConservative(t *testing.T) {
	if !buildCycleNet(t).Conservative(Marking{"p1": 1}, 1000) {
		t.Fatal("token-preserving cycle reported non-conservative")
	}
	// A net that duplicates tokens is not conservative.
	n := NewNet("dup")
	mustAdd(t, n.AddPlace(Place{ID: "a"}))
	mustAdd(t, n.AddPlace(Place{ID: "b"}))
	mustAdd(t, n.AddTransition(Transition{ID: "t"}))
	mustAdd(t, n.AddInput("a", "t", 1))
	mustAdd(t, n.AddOutput("t", "b", 2))
	if n.Conservative(Marking{"a": 1}, 1000) {
		t.Fatal("duplicating net reported conservative")
	}
}

func TestLiveTransitions(t *testing.T) {
	n := NewNet("live")
	mustAdd(t, n.AddPlace(Place{ID: "p1"}))
	mustAdd(t, n.AddPlace(Place{ID: "p2"}))
	mustAdd(t, n.AddPlace(Place{ID: "never"}))
	mustAdd(t, n.AddTransition(Transition{ID: "t1"}))
	mustAdd(t, n.AddTransition(Transition{ID: "tDead"}))
	mustAdd(t, n.AddInput("p1", "t1", 1))
	mustAdd(t, n.AddOutput("t1", "p2", 1))
	mustAdd(t, n.AddInput("never", "tDead", 1))

	live := n.LiveTransitions(Marking{"p1": 1}, 1000)
	if !live["t1"] {
		t.Fatal("t1 should be live")
	}
	if live["tDead"] {
		t.Fatal("tDead should be dead")
	}
}

func TestFireSequence(t *testing.T) {
	n := buildCycleNet(t)
	final, err := n.FireSequence(Marking{"p1": 1}, "t12", "t21", "t12")
	if err != nil {
		t.Fatalf("FireSequence: %v", err)
	}
	if !final.Equal(Marking{"p2": 1}) {
		t.Fatalf("final = %v, want p2=1", final)
	}
	if _, err := n.FireSequence(Marking{"p1": 1}, "t21"); err == nil {
		t.Fatal("disabled sequence accepted")
	}
}

package petri

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// randomTimedNet builds a random fork/join style timed net.
func randomTimedNet(seed int64) (*Net, Marking) {
	rng := rand.New(rand.NewSource(seed))
	n := NewNet("rand")
	_ = n.AddPlace(Place{ID: "start"})
	_ = n.AddPlace(Place{ID: "end"})
	_ = n.AddTransition(Transition{ID: "fork"})
	_ = n.AddTransition(Transition{ID: "join"})
	_ = n.AddInput("start", "fork", 1)
	_ = n.AddOutput("join", "end", 1)
	branches := 2 + rng.Intn(4)
	for i := 0; i < branches; i++ {
		pid := PlaceID("m" + string(rune('a'+i)))
		_ = n.AddPlace(Place{
			ID:       pid,
			Kind:     PlaceMedia,
			Duration: time.Duration(1+rng.Intn(10)) * time.Second,
		})
		_ = n.AddOutput("fork", pid, 1)
		_ = n.AddInput(pid, "join", 1)
	}
	return n, Marking{"start": 1}
}

// TestSimulatorDeterministic: identical nets and schedules produce
// identical traces, run after run.
func TestSimulatorDeterministic(t *testing.T) {
	prop := func(seed int64) bool {
		n1, m1 := randomTimedNet(seed)
		n2, m2 := randomTimedNet(seed)
		s1 := NewSimulator(n1, m1)
		s2 := NewSimulator(n2, m2)
		inj := Injection{At: 2 * time.Second, Place: "start", Tokens: 1}
		if err := s1.Schedule(inj); err != nil {
			return false
		}
		if err := s2.Schedule(inj); err != nil {
			return false
		}
		t1, err1 := s1.Run(0)
		t2, err2 := s2.Run(0)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if len(t1.Fires) != len(t2.Fires) || len(t1.Playouts) != len(t2.Playouts) {
			return false
		}
		for i := range t1.Fires {
			if t1.Fires[i] != t2.Fires[i] {
				return false
			}
		}
		for i := range t1.Playouts {
			if t1.Playouts[i] != t2.Playouts[i] {
				return false
			}
		}
		return t1.EndedAt == t2.EndedAt && t1.Final.Equal(t2.Final)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSimulatorJoinFiresAtMaxBranch: the join of a random fork/join net
// always fires at the maximum branch duration — the OCPN synchronization
// point semantics.
func TestSimulatorJoinFiresAtMaxBranch(t *testing.T) {
	prop := func(seed int64) bool {
		n, m := randomTimedNet(seed)
		sim := NewSimulator(n, m)
		tr, err := sim.Run(0)
		if err != nil {
			return false
		}
		var maxEnd time.Duration
		for _, p := range tr.Playouts {
			if p.End > maxEnd {
				maxEnd = p.End
			}
		}
		at, ok := tr.FiredAt("join")
		return ok && at == maxEnd
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Package petri implements the Petri-net machinery underlying the paper's
// synchronization models: classic place/transition nets, timed semantics
// (tokens mature in a place for the place's duration, modelling media
// playout as in OCPN), structural analysis (boundedness, reachability,
// deadlock detection), and a deterministic event-driven simulator on a
// virtual clock.
//
// Model lineage (paper §1): Petri net → timed Petri net → OCPN → XOCPN →
// the paper's extended timed Petri net. This package provides the common
// substrate; package ocpn builds the three concrete models on top of it.
package petri

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// PlaceID names a place.
type PlaceID string

// TransitionID names a transition.
type TransitionID string

// PlaceKind classifies places for model construction and rendering.
type PlaceKind int

// Place kinds.
const (
	// PlaceMedia represents active playout of a media segment; its duration
	// is the segment duration (OCPN semantics).
	PlaceMedia PlaceKind = iota + 1
	// PlaceControl is an instantaneous control/synchronization place.
	PlaceControl
	// PlaceResource models a shared resource (floor token, decoder).
	PlaceResource
	// PlaceChannel models an XOCPN network channel buffer.
	PlaceChannel
)

var placeKindNames = map[PlaceKind]string{
	PlaceMedia:    "media",
	PlaceControl:  "control",
	PlaceResource: "resource",
	PlaceChannel:  "channel",
}

// String implements fmt.Stringer.
func (k PlaceKind) String() string {
	if s, ok := placeKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("placekind(%d)", int(k))
}

// Place is a node holding tokens. Duration is how long an arriving token
// takes to mature (become available to output transitions); zero means
// immediately available. Capacity 0 means unbounded.
type Place struct {
	ID       PlaceID
	Kind     PlaceKind
	Duration time.Duration
	Capacity int
	// Label is a free-form annotation (e.g. the media segment ID).
	Label string
}

// Transition is an instantaneous firing node. Priority breaks conflicts:
// higher priorities fire first (the prioritized-PN extension the paper
// cites from Guan et al.). Ties break lexicographically by ID so runs are
// deterministic.
type Transition struct {
	ID       TransitionID
	Priority int
	// Label is a free-form annotation.
	Label string
}

// Arc connects a place to a transition (input) or a transition to a place
// (output) with a weight (tokens consumed/produced per firing).
type Arc struct {
	Place      PlaceID
	Transition TransitionID
	Weight     int
	// ToTransition is true for input arcs (place→transition) and false for
	// output arcs (transition→place).
	ToTransition bool
	// Inhibitor marks an inhibitor arc: the transition is enabled only if
	// the place holds fewer than Weight tokens. Only valid for input arcs.
	Inhibitor bool
}

// Errors returned by net construction and firing.
var (
	ErrUnknownPlace      = errors.New("petri: unknown place")
	ErrUnknownTransition = errors.New("petri: unknown transition")
	ErrDuplicate         = errors.New("petri: duplicate id")
	ErrNotEnabled        = errors.New("petri: transition not enabled")
	ErrCapacity          = errors.New("petri: place capacity exceeded")
)

// Net is an immutable-after-build Petri net structure. Build with NewNet
// and the Add* methods; run markings through Enabled/Fire or a Simulator.
type Net struct {
	Name        string
	places      map[PlaceID]*Place
	transitions map[TransitionID]*Transition
	inputs      map[TransitionID][]Arc // place→transition arcs
	outputs     map[TransitionID][]Arc // transition→place arcs
	placeOrder  []PlaceID
	transOrder  []TransitionID
}

// NewNet returns an empty net with the given name.
func NewNet(name string) *Net {
	return &Net{
		Name:        name,
		places:      make(map[PlaceID]*Place),
		transitions: make(map[TransitionID]*Transition),
		inputs:      make(map[TransitionID][]Arc),
		outputs:     make(map[TransitionID][]Arc),
	}
}

// AddPlace adds a place to the net.
func (n *Net) AddPlace(p Place) error {
	if p.ID == "" {
		return errors.New("petri: empty place id")
	}
	if _, ok := n.places[p.ID]; ok {
		return fmt.Errorf("%w: place %s", ErrDuplicate, p.ID)
	}
	if p.Duration < 0 {
		return fmt.Errorf("petri: place %s has negative duration", p.ID)
	}
	if p.Capacity < 0 {
		return fmt.Errorf("petri: place %s has negative capacity", p.ID)
	}
	if p.Kind == 0 {
		p.Kind = PlaceControl
	}
	cp := p
	n.places[p.ID] = &cp
	n.placeOrder = append(n.placeOrder, p.ID)
	return nil
}

// AddTransition adds a transition to the net.
func (n *Net) AddTransition(t Transition) error {
	if t.ID == "" {
		return errors.New("petri: empty transition id")
	}
	if _, ok := n.transitions[t.ID]; ok {
		return fmt.Errorf("%w: transition %s", ErrDuplicate, t.ID)
	}
	ct := t
	n.transitions[t.ID] = &ct
	n.transOrder = append(n.transOrder, t.ID)
	return nil
}

// AddInput adds a place→transition arc with the given weight (≥1).
func (n *Net) AddInput(p PlaceID, t TransitionID, weight int) error {
	return n.addArc(Arc{Place: p, Transition: t, Weight: weight, ToTransition: true})
}

// AddInhibitor adds an inhibitor arc: t is enabled only while p holds fewer
// than weight tokens.
func (n *Net) AddInhibitor(p PlaceID, t TransitionID, weight int) error {
	return n.addArc(Arc{Place: p, Transition: t, Weight: weight, ToTransition: true, Inhibitor: true})
}

// AddOutput adds a transition→place arc with the given weight (≥1).
func (n *Net) AddOutput(t TransitionID, p PlaceID, weight int) error {
	return n.addArc(Arc{Place: p, Transition: t, Weight: weight, ToTransition: false})
}

func (n *Net) addArc(a Arc) error {
	if a.Weight < 1 {
		return fmt.Errorf("petri: arc weight %d < 1", a.Weight)
	}
	if _, ok := n.places[a.Place]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPlace, a.Place)
	}
	if _, ok := n.transitions[a.Transition]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTransition, a.Transition)
	}
	if a.ToTransition {
		n.inputs[a.Transition] = append(n.inputs[a.Transition], a)
	} else {
		n.outputs[a.Transition] = append(n.outputs[a.Transition], a)
	}
	return nil
}

// Place returns the place with the given ID, or nil.
func (n *Net) Place(id PlaceID) *Place { return n.places[id] }

// Transition returns the transition with the given ID, or nil.
func (n *Net) Transition(id TransitionID) *Transition { return n.transitions[id] }

// Places returns place IDs in insertion order.
func (n *Net) Places() []PlaceID {
	out := make([]PlaceID, len(n.placeOrder))
	copy(out, n.placeOrder)
	return out
}

// Transitions returns transition IDs in insertion order.
func (n *Net) Transitions() []TransitionID {
	out := make([]TransitionID, len(n.transOrder))
	copy(out, n.transOrder)
	return out
}

// Inputs returns the input arcs of a transition.
func (n *Net) Inputs(t TransitionID) []Arc {
	arcs := n.inputs[t]
	out := make([]Arc, len(arcs))
	copy(out, arcs)
	return out
}

// Outputs returns the output arcs of a transition.
func (n *Net) Outputs(t TransitionID) []Arc {
	arcs := n.outputs[t]
	out := make([]Arc, len(arcs))
	copy(out, arcs)
	return out
}

// Validate checks structural sanity: every transition has at least one arc,
// and arc endpoints exist (guaranteed by construction, re-checked for
// defence in depth).
func (n *Net) Validate() error {
	for _, tid := range n.transOrder {
		if len(n.inputs[tid]) == 0 && len(n.outputs[tid]) == 0 {
			return fmt.Errorf("petri: transition %s has no arcs", tid)
		}
	}
	return nil
}

// Marking maps each place to its token count. Missing entries mean zero.
type Marking map[PlaceID]int

// Clone returns a deep copy of the marking.
func (m Marking) Clone() Marking {
	c := make(Marking, len(m))
	for k, v := range m {
		if v != 0 {
			c[k] = v
		}
	}
	return c
}

// Total returns the total token count.
func (m Marking) Total() int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Equal reports whether two markings assign identical counts.
func (m Marking) Equal(o Marking) bool {
	for k, v := range m {
		if o[k] != v {
			return false
		}
	}
	for k, v := range o {
		if m[k] != v {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for reachability sets.
func (m Marking) Key() string {
	keys := make([]string, 0, len(m))
	for k, v := range m {
		if v != 0 {
			keys = append(keys, fmt.Sprintf("%s=%d", k, v))
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// EnabledIn reports whether transition t is enabled in marking m
// (untimed semantics: all tokens immediately available).
func (n *Net) EnabledIn(m Marking, t TransitionID) bool {
	arcs, ok := n.inputs[t]
	if !ok || n.transitions[t] == nil {
		return false
	}
	if len(arcs) == 0 {
		return false // source transitions are disallowed in this system
	}
	for _, a := range arcs {
		have := m[a.Place]
		if a.Inhibitor {
			if have >= a.Weight {
				return false
			}
		} else if have < a.Weight {
			return false
		}
	}
	return true
}

// Enabled returns all transitions enabled in m, ordered by descending
// priority then ascending ID (the deterministic conflict-resolution order).
func (n *Net) Enabled(m Marking) []TransitionID {
	var out []TransitionID
	for _, tid := range n.transOrder {
		if n.EnabledIn(m, tid) {
			out = append(out, tid)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := n.transitions[out[i]].Priority, n.transitions[out[j]].Priority
		if pi != pj {
			return pi > pj
		}
		return out[i] < out[j]
	})
	return out
}

// Fire fires transition t in marking m, returning the successor marking.
// The input marking is not modified.
func (n *Net) Fire(m Marking, t TransitionID) (Marking, error) {
	if !n.EnabledIn(m, t) {
		return nil, fmt.Errorf("%w: %s", ErrNotEnabled, t)
	}
	next := m.Clone()
	for _, a := range n.inputs[t] {
		if a.Inhibitor {
			continue
		}
		next[a.Place] -= a.Weight
		if next[a.Place] == 0 {
			delete(next, a.Place)
		}
	}
	for _, a := range n.outputs[t] {
		next[a.Place] += a.Weight
		if cap := n.places[a.Place].Capacity; cap > 0 && next[a.Place] > cap {
			return nil, fmt.Errorf("%w: %s (firing %s)", ErrCapacity, a.Place, t)
		}
	}
	return next, nil
}

// Dot renders the net in Graphviz dot format for documentation.
func (n *Net) Dot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", n.Name)
	for _, pid := range n.placeOrder {
		p := n.places[pid]
		fmt.Fprintf(&b, "  %q [shape=circle,label=\"%s\\n%v\"];\n", string(pid), pid, p.Duration)
	}
	for _, tid := range n.transOrder {
		fmt.Fprintf(&b, "  %q [shape=box,style=filled,fillcolor=gray];\n", string(tid))
	}
	for _, tid := range n.transOrder {
		for _, a := range n.inputs[tid] {
			style := ""
			if a.Inhibitor {
				style = ",arrowhead=odot"
			}
			fmt.Fprintf(&b, "  %q -> %q [label=\"%d\"%s];\n", string(a.Place), string(tid), a.Weight, style)
		}
		for _, a := range n.outputs[tid] {
			fmt.Fprintf(&b, "  %q -> %q [label=\"%d\"];\n", string(tid), string(a.Place), a.Weight)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

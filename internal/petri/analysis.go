package petri

import (
	"fmt"
)

// ReachabilityResult summarizes a bounded reachability exploration.
type ReachabilityResult struct {
	// States is the number of distinct markings found (including initial).
	States int
	// Truncated reports whether exploration stopped at the state limit.
	Truncated bool
	// Deadlocks are reachable markings with no enabled transition.
	Deadlocks []Marking
	// MaxTokens is the largest token count observed in any single place.
	MaxTokens int
}

// Reachability explores the reachability graph from the initial marking
// using breadth-first search, visiting at most maxStates distinct markings.
// maxStates <= 0 defaults to 10_000.
func (n *Net) Reachability(initial Marking, maxStates int) ReachabilityResult {
	if maxStates <= 0 {
		maxStates = 10_000
	}
	seen := map[string]bool{initial.Key(): true}
	queue := []Marking{initial.Clone()}
	res := ReachabilityResult{States: 1}
	for _, v := range initial {
		if v > res.MaxTokens {
			res.MaxTokens = v
		}
	}

	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		enabled := n.Enabled(m)
		if len(enabled) == 0 {
			res.Deadlocks = append(res.Deadlocks, m)
			continue
		}
		for _, t := range enabled {
			next, err := n.Fire(m, t)
			if err != nil {
				continue // capacity-violating successor: treat as disabled
			}
			key := next.Key()
			if seen[key] {
				continue
			}
			if res.States >= maxStates {
				res.Truncated = true
				return res
			}
			seen[key] = true
			res.States++
			for _, v := range next {
				if v > res.MaxTokens {
					res.MaxTokens = v
				}
			}
			queue = append(queue, next)
		}
	}
	return res
}

// IsKBounded reports whether every place holds at most k tokens in every
// reachable marking (within the exploration limit). The second return is
// false when the exploration was truncated, meaning the answer is only a
// lower-bound observation.
func (n *Net) IsKBounded(initial Marking, k, maxStates int) (bounded, complete bool) {
	res := n.Reachability(initial, maxStates)
	return res.MaxTokens <= k, !res.Truncated
}

// IsSafe reports whether the net is 1-bounded (safe) from the initial
// marking, the standard property for OCPN presentation nets.
func (n *Net) IsSafe(initial Marking, maxStates int) (safe, complete bool) {
	return n.IsKBounded(initial, 1, maxStates)
}

// HasDeadlock reports whether any reachable marking enables no transition.
// A final "sink" marking is a deadlock by this definition; callers that
// have a designated final place should use DeadlocksExcept.
func (n *Net) HasDeadlock(initial Marking, maxStates int) bool {
	res := n.Reachability(initial, maxStates)
	return len(res.Deadlocks) > 0
}

// DeadlocksExcept returns reachable dead markings that are NOT the expected
// terminal marking (a token in the final place and nothing else pending).
// Presentation nets terminate intentionally; only other dead states are
// synchronization bugs.
func (n *Net) DeadlocksExcept(initial Marking, final PlaceID, maxStates int) []Marking {
	res := n.Reachability(initial, maxStates)
	var bad []Marking
	for _, d := range res.Deadlocks {
		if d[final] >= 1 && d.Total() == d[final] {
			continue
		}
		bad = append(bad, d)
	}
	return bad
}

// Conservative reports whether the total token count is invariant across
// all reachable markings (token conservation), a property of resource
// (floor-control) subnets.
func (n *Net) Conservative(initial Marking, maxStates int) bool {
	want := initial.Total()
	seen := map[string]bool{initial.Key(): true}
	queue := []Marking{initial.Clone()}
	visited := 1
	for len(queue) > 0 && visited < maxStates {
		m := queue[0]
		queue = queue[1:]
		for _, t := range n.Enabled(m) {
			next, err := n.Fire(m, t)
			if err != nil {
				continue
			}
			if next.Total() != want {
				return false
			}
			key := next.Key()
			if !seen[key] {
				seen[key] = true
				visited++
				queue = append(queue, next)
			}
		}
	}
	return true
}

// LiveTransitions returns the set of transitions that fire in at least one
// reachable marking (L1-liveness). Transitions absent from the result are
// dead from the initial marking.
func (n *Net) LiveTransitions(initial Marking, maxStates int) map[TransitionID]bool {
	live := make(map[TransitionID]bool)
	seen := map[string]bool{initial.Key(): true}
	queue := []Marking{initial.Clone()}
	visited := 1
	for len(queue) > 0 && visited < maxStates {
		m := queue[0]
		queue = queue[1:]
		for _, t := range n.Enabled(m) {
			live[t] = true
			next, err := n.Fire(m, t)
			if err != nil {
				continue
			}
			key := next.Key()
			if !seen[key] {
				seen[key] = true
				visited++
				queue = append(queue, next)
			}
		}
	}
	return live
}

// FireSequence fires the given transitions in order from the initial
// marking, returning the final marking or an error identifying the first
// transition that was not enabled.
func (n *Net) FireSequence(initial Marking, seq ...TransitionID) (Marking, error) {
	m := initial.Clone()
	for i, t := range seq {
		next, err := n.Fire(m, t)
		if err != nil {
			return m, fmt.Errorf("step %d (%s): %w", i, t, err)
		}
		m = next
	}
	return m, nil
}

package petri

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// buildSimpleNet returns p1 -> t1 -> p2, with p1 initially marked.
func buildSimpleNet(t *testing.T) *Net {
	t.Helper()
	n := NewNet("simple")
	mustAdd(t, n.AddPlace(Place{ID: "p1"}))
	mustAdd(t, n.AddPlace(Place{ID: "p2"}))
	mustAdd(t, n.AddTransition(Transition{ID: "t1"}))
	mustAdd(t, n.AddInput("p1", "t1", 1))
	mustAdd(t, n.AddOutput("t1", "p2", 1))
	return n
}

func mustAdd(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestAddDuplicates(t *testing.T) {
	n := NewNet("dup")
	mustAdd(t, n.AddPlace(Place{ID: "p"}))
	if err := n.AddPlace(Place{ID: "p"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate place = %v, want ErrDuplicate", err)
	}
	mustAdd(t, n.AddTransition(Transition{ID: "t"}))
	if err := n.AddTransition(Transition{ID: "t"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate transition = %v, want ErrDuplicate", err)
	}
}

func TestAddArcValidation(t *testing.T) {
	n := NewNet("arcs")
	mustAdd(t, n.AddPlace(Place{ID: "p"}))
	mustAdd(t, n.AddTransition(Transition{ID: "t"}))
	if err := n.AddInput("missing", "t", 1); !errors.Is(err, ErrUnknownPlace) {
		t.Errorf("unknown place = %v, want ErrUnknownPlace", err)
	}
	if err := n.AddInput("p", "missing", 1); !errors.Is(err, ErrUnknownTransition) {
		t.Errorf("unknown transition = %v, want ErrUnknownTransition", err)
	}
	if err := n.AddInput("p", "t", 0); err == nil {
		t.Error("zero-weight arc accepted")
	}
}

func TestPlaceValidation(t *testing.T) {
	n := NewNet("pv")
	if err := n.AddPlace(Place{ID: ""}); err == nil {
		t.Error("empty place id accepted")
	}
	if err := n.AddPlace(Place{ID: "x", Duration: -time.Second}); err == nil {
		t.Error("negative duration accepted")
	}
	if err := n.AddPlace(Place{ID: "y", Capacity: -1}); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestEnabledAndFire(t *testing.T) {
	n := buildSimpleNet(t)
	m := Marking{"p1": 1}
	enabled := n.Enabled(m)
	if len(enabled) != 1 || enabled[0] != "t1" {
		t.Fatalf("Enabled = %v, want [t1]", enabled)
	}
	next, err := n.Fire(m, "t1")
	if err != nil {
		t.Fatalf("Fire: %v", err)
	}
	if next["p1"] != 0 || next["p2"] != 1 {
		t.Fatalf("after fire marking = %v, want p2=1", next)
	}
	// Original marking untouched.
	if m["p1"] != 1 {
		t.Fatal("Fire mutated the input marking")
	}
	if _, err := n.Fire(next, "t1"); !errors.Is(err, ErrNotEnabled) {
		t.Fatalf("fire disabled = %v, want ErrNotEnabled", err)
	}
}

func TestFireWeights(t *testing.T) {
	n := NewNet("weights")
	mustAdd(t, n.AddPlace(Place{ID: "in"}))
	mustAdd(t, n.AddPlace(Place{ID: "out"}))
	mustAdd(t, n.AddTransition(Transition{ID: "t"}))
	mustAdd(t, n.AddInput("in", "t", 2))
	mustAdd(t, n.AddOutput("t", "out", 3))

	if n.EnabledIn(Marking{"in": 1}, "t") {
		t.Fatal("enabled with insufficient tokens")
	}
	next, err := n.Fire(Marking{"in": 2}, "t")
	if err != nil {
		t.Fatal(err)
	}
	if next["out"] != 3 {
		t.Fatalf("out = %d, want 3", next["out"])
	}
}

func TestInhibitorArc(t *testing.T) {
	n := NewNet("inhibit")
	mustAdd(t, n.AddPlace(Place{ID: "go"}))
	mustAdd(t, n.AddPlace(Place{ID: "blocker"}))
	mustAdd(t, n.AddPlace(Place{ID: "done"}))
	mustAdd(t, n.AddTransition(Transition{ID: "t"}))
	mustAdd(t, n.AddInput("go", "t", 1))
	mustAdd(t, n.AddInhibitor("blocker", "t", 1))
	mustAdd(t, n.AddOutput("t", "done", 1))

	if n.EnabledIn(Marking{"go": 1, "blocker": 1}, "t") {
		t.Fatal("enabled despite inhibitor")
	}
	if !n.EnabledIn(Marking{"go": 1}, "t") {
		t.Fatal("not enabled with empty inhibitor place")
	}
	next, err := n.Fire(Marking{"go": 1}, "t")
	if err != nil {
		t.Fatal(err)
	}
	if next["done"] != 1 || next["blocker"] != 0 {
		t.Fatalf("marking = %v", next)
	}
}

func TestCapacityEnforced(t *testing.T) {
	n := NewNet("cap")
	mustAdd(t, n.AddPlace(Place{ID: "src"}))
	mustAdd(t, n.AddPlace(Place{ID: "dst", Capacity: 1}))
	mustAdd(t, n.AddTransition(Transition{ID: "t"}))
	mustAdd(t, n.AddInput("src", "t", 1))
	mustAdd(t, n.AddOutput("t", "dst", 1))

	if _, err := n.Fire(Marking{"src": 1, "dst": 1}, "t"); !errors.Is(err, ErrCapacity) {
		t.Fatalf("capacity fire = %v, want ErrCapacity", err)
	}
}

func TestPriorityConflictResolution(t *testing.T) {
	n := NewNet("conflict")
	mustAdd(t, n.AddPlace(Place{ID: "p"}))
	mustAdd(t, n.AddPlace(Place{ID: "a"}))
	mustAdd(t, n.AddPlace(Place{ID: "b"}))
	mustAdd(t, n.AddTransition(Transition{ID: "tLow", Priority: 1}))
	mustAdd(t, n.AddTransition(Transition{ID: "tHigh", Priority: 9}))
	mustAdd(t, n.AddInput("p", "tLow", 1))
	mustAdd(t, n.AddInput("p", "tHigh", 1))
	mustAdd(t, n.AddOutput("tLow", "a", 1))
	mustAdd(t, n.AddOutput("tHigh", "b", 1))

	enabled := n.Enabled(Marking{"p": 1})
	if len(enabled) != 2 || enabled[0] != "tHigh" {
		t.Fatalf("Enabled = %v, want tHigh first", enabled)
	}
}

func TestMarkingHelpers(t *testing.T) {
	m := Marking{"a": 2, "b": 1}
	c := m.Clone()
	c["a"] = 5
	if m["a"] != 2 {
		t.Fatal("Clone shares storage")
	}
	if m.Total() != 3 {
		t.Fatalf("Total = %d, want 3", m.Total())
	}
	if !m.Equal(Marking{"a": 2, "b": 1, "c": 0}) {
		t.Fatal("Equal must ignore zero entries")
	}
	if m.Equal(Marking{"a": 2}) {
		t.Fatal("Equal missed a difference")
	}
	if m.Key() != "a=2,b=1" {
		t.Fatalf("Key = %q", m.Key())
	}
}

func TestValidate(t *testing.T) {
	n := NewNet("v")
	mustAdd(t, n.AddTransition(Transition{ID: "orphan"}))
	if err := n.Validate(); err == nil {
		t.Fatal("orphan transition accepted")
	}
	n2 := buildSimpleNet(t)
	if err := n2.Validate(); err != nil {
		t.Fatalf("valid net rejected: %v", err)
	}
}

func TestDotRendering(t *testing.T) {
	n := buildSimpleNet(t)
	dot := n.Dot()
	for _, want := range []string{"digraph", `"p1"`, `"t1"`, "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestAccessors(t *testing.T) {
	n := buildSimpleNet(t)
	if got := n.Places(); len(got) != 2 || got[0] != "p1" {
		t.Fatalf("Places = %v", got)
	}
	if got := n.Transitions(); len(got) != 1 || got[0] != "t1" {
		t.Fatalf("Transitions = %v", got)
	}
	if n.Place("p1") == nil || n.Place("nope") != nil {
		t.Fatal("Place lookup broken")
	}
	if n.Transition("t1") == nil || n.Transition("nope") != nil {
		t.Fatal("Transition lookup broken")
	}
	if got := n.Inputs("t1"); len(got) != 1 || got[0].Place != "p1" {
		t.Fatalf("Inputs = %v", got)
	}
	if got := n.Outputs("t1"); len(got) != 1 || got[0].Place != "p2" {
		t.Fatalf("Outputs = %v", got)
	}
}

func TestPlaceKindString(t *testing.T) {
	if PlaceMedia.String() != "media" || PlaceChannel.String() != "channel" {
		t.Fatal("kind names wrong")
	}
	if got := PlaceKind(42).String(); got != "placekind(42)" {
		t.Fatalf("unknown kind = %q", got)
	}
}

package petri

import (
	"strings"
	"testing"
	"time"
)

// buildSequenceNet models two media segments in sequence:
// start(marked) -> tStart -> mediaA(3s) -> tAB -> mediaB(2s) -> tEnd -> done.
func buildSequenceNet(t *testing.T) *Net {
	t.Helper()
	n := NewNet("sequence")
	mustAdd(t, n.AddPlace(Place{ID: "start"}))
	mustAdd(t, n.AddPlace(Place{ID: "mediaA", Kind: PlaceMedia, Duration: 3 * time.Second}))
	mustAdd(t, n.AddPlace(Place{ID: "mediaB", Kind: PlaceMedia, Duration: 2 * time.Second}))
	mustAdd(t, n.AddPlace(Place{ID: "done"}))
	mustAdd(t, n.AddTransition(Transition{ID: "tStart"}))
	mustAdd(t, n.AddTransition(Transition{ID: "tAB"}))
	mustAdd(t, n.AddTransition(Transition{ID: "tEnd"}))
	mustAdd(t, n.AddInput("start", "tStart", 1))
	mustAdd(t, n.AddOutput("tStart", "mediaA", 1))
	mustAdd(t, n.AddInput("mediaA", "tAB", 1))
	mustAdd(t, n.AddOutput("tAB", "mediaB", 1))
	mustAdd(t, n.AddInput("mediaB", "tEnd", 1))
	mustAdd(t, n.AddOutput("tEnd", "done", 1))
	return n
}

func TestSimulateSequenceTiming(t *testing.T) {
	n := buildSequenceNet(t)
	sim := NewSimulator(n, Marking{"start": 1})
	tr, err := sim.Run(0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !tr.Quiescent {
		t.Fatal("run did not reach quiescence")
	}
	if !tr.Final.Equal(Marking{"done": 1}) {
		t.Fatalf("final marking = %v, want done=1", tr.Final)
	}
	if at, ok := tr.FiredAt("tStart"); !ok || at != 0 {
		t.Errorf("tStart fired at %v, want 0", at)
	}
	if at, ok := tr.FiredAt("tAB"); !ok || at != 3*time.Second {
		t.Errorf("tAB fired at %v, want 3s", at)
	}
	if at, ok := tr.FiredAt("tEnd"); !ok || at != 5*time.Second {
		t.Errorf("tEnd fired at %v, want 5s", at)
	}
	if tr.EndedAt != 5*time.Second {
		t.Errorf("EndedAt = %v, want 5s", tr.EndedAt)
	}
}

func TestSimulatePlayoutIntervals(t *testing.T) {
	n := buildSequenceNet(t)
	sim := NewSimulator(n, Marking{"start": 1})
	tr, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := tr.PlayoutOf("mediaA")
	if !ok {
		t.Fatal("no playout for mediaA")
	}
	if a.Start != 0 || a.End != 3*time.Second {
		t.Errorf("mediaA playout [%v,%v], want [0,3s]", a.Start, a.End)
	}
	b, ok := tr.PlayoutOf("mediaB")
	if !ok {
		t.Fatal("no playout for mediaB")
	}
	if b.Start != 3*time.Second || b.End != 5*time.Second {
		t.Errorf("mediaB playout [%v,%v], want [3s,5s]", b.Start, b.End)
	}
}

// TestSimulateParallelJoin models the OCPN lip-sync pattern: video (4s) and
// audio (3s) fork from one start transition and join at the end; the join
// must fire at max(4s, 3s) = 4s.
func TestSimulateParallelJoin(t *testing.T) {
	n := NewNet("parallel")
	mustAdd(t, n.AddPlace(Place{ID: "start"}))
	mustAdd(t, n.AddPlace(Place{ID: "video", Kind: PlaceMedia, Duration: 4 * time.Second}))
	mustAdd(t, n.AddPlace(Place{ID: "audio", Kind: PlaceMedia, Duration: 3 * time.Second}))
	mustAdd(t, n.AddPlace(Place{ID: "done"}))
	mustAdd(t, n.AddTransition(Transition{ID: "fork"}))
	mustAdd(t, n.AddTransition(Transition{ID: "join"}))
	mustAdd(t, n.AddInput("start", "fork", 1))
	mustAdd(t, n.AddOutput("fork", "video", 1))
	mustAdd(t, n.AddOutput("fork", "audio", 1))
	mustAdd(t, n.AddInput("video", "join", 1))
	mustAdd(t, n.AddInput("audio", "join", 1))
	mustAdd(t, n.AddOutput("join", "done", 1))

	sim := NewSimulator(n, Marking{"start": 1})
	tr, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if at, ok := tr.FiredAt("join"); !ok || at != 4*time.Second {
		t.Fatalf("join fired at %v, want 4s", at)
	}
}

func TestSimulateInjectionDelaysFiring(t *testing.T) {
	// tGo needs both "ready" (immediate) and "grant" (injected at 7s).
	n := NewNet("inject")
	mustAdd(t, n.AddPlace(Place{ID: "ready"}))
	mustAdd(t, n.AddPlace(Place{ID: "grant"}))
	mustAdd(t, n.AddPlace(Place{ID: "out"}))
	mustAdd(t, n.AddTransition(Transition{ID: "tGo"}))
	mustAdd(t, n.AddInput("ready", "tGo", 1))
	mustAdd(t, n.AddInput("grant", "tGo", 1))
	mustAdd(t, n.AddOutput("tGo", "out", 1))

	sim := NewSimulator(n, Marking{"ready": 1})
	if err := sim.Schedule(Injection{At: 7 * time.Second, Place: "grant", Tokens: 1}); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if at, ok := tr.FiredAt("tGo"); !ok || at != 7*time.Second {
		t.Fatalf("tGo fired at %v, want 7s", at)
	}
}

func TestScheduleValidation(t *testing.T) {
	n := buildSimpleNet(t)
	sim := NewSimulator(n, nil)
	if err := sim.Schedule(Injection{Place: "nope", Tokens: 1}); err == nil {
		t.Error("unknown place accepted")
	}
	if err := sim.Schedule(Injection{Place: "p1", Tokens: 0}); err == nil {
		t.Error("zero tokens accepted")
	}
	if err := sim.Schedule(Injection{Place: "p1", Tokens: 1, At: -time.Second}); err == nil {
		t.Error("negative time accepted")
	}
}

func TestSimulateHorizonStopsRun(t *testing.T) {
	n := buildSequenceNet(t)
	sim := NewSimulator(n, Marking{"start": 1})
	tr, err := sim.Run(1 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Quiescent {
		t.Fatal("truncated run reported quiescent")
	}
	if _, fired := tr.FiredAt("tEnd"); fired {
		t.Fatal("tEnd fired before the horizon allows")
	}
	if tr.EndedAt != 1*time.Second {
		t.Fatalf("EndedAt = %v, want 1s", tr.EndedAt)
	}
}

func TestSimulateStepLimit(t *testing.T) {
	// Zero-duration cycle fires forever; the step limit must stop it.
	n := buildCycleNet(t)
	sim := NewSimulator(n, Marking{"p1": 1})
	sim.MaxSteps = 10
	_, err := sim.Run(0)
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v, want step limit error", err)
	}
}

func TestSimulatePriorityWithinInstant(t *testing.T) {
	n := NewNet("prio")
	mustAdd(t, n.AddPlace(Place{ID: "p"}))
	mustAdd(t, n.AddPlace(Place{ID: "low"}))
	mustAdd(t, n.AddPlace(Place{ID: "high"}))
	mustAdd(t, n.AddTransition(Transition{ID: "tLow", Priority: 0}))
	mustAdd(t, n.AddTransition(Transition{ID: "tHigh", Priority: 5}))
	mustAdd(t, n.AddInput("p", "tLow", 1))
	mustAdd(t, n.AddInput("p", "tHigh", 1))
	mustAdd(t, n.AddOutput("tLow", "low", 1))
	mustAdd(t, n.AddOutput("tHigh", "high", 1))

	sim := NewSimulator(n, Marking{"p": 1})
	tr, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Final["high"] != 1 || tr.Final["low"] != 0 {
		t.Fatalf("final = %v; high-priority transition must win the conflict", tr.Final)
	}
}

func TestSimulateInhibitorHoldsUntilDrained(t *testing.T) {
	// tRun is inhibited while "paused" holds a token; a drain transition
	// consumes the pause token when "resume" is injected.
	n := NewNet("pause")
	mustAdd(t, n.AddPlace(Place{ID: "job"}))
	mustAdd(t, n.AddPlace(Place{ID: "paused"}))
	mustAdd(t, n.AddPlace(Place{ID: "resume"}))
	mustAdd(t, n.AddPlace(Place{ID: "out"}))
	mustAdd(t, n.AddTransition(Transition{ID: "tRun"}))
	mustAdd(t, n.AddTransition(Transition{ID: "tResume", Priority: 10}))
	mustAdd(t, n.AddInput("job", "tRun", 1))
	mustAdd(t, n.AddInhibitor("paused", "tRun", 1))
	mustAdd(t, n.AddOutput("tRun", "out", 1))
	mustAdd(t, n.AddInput("paused", "tResume", 1))
	mustAdd(t, n.AddInput("resume", "tResume", 1))

	sim := NewSimulator(n, Marking{"job": 1, "paused": 1})
	if err := sim.Schedule(Injection{At: 4 * time.Second, Place: "resume", Tokens: 1}); err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if at, ok := tr.FiredAt("tRun"); !ok || at != 4*time.Second {
		t.Fatalf("tRun fired at %v, want 4s (after resume)", at)
	}
}

func TestSimulatorIgnoresUnknownInitialPlaces(t *testing.T) {
	n := buildSimpleNet(t)
	sim := NewSimulator(n, Marking{"ghost": 3, "p1": 1})
	tr, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Final.Equal(Marking{"p2": 1}) {
		t.Fatalf("final = %v", tr.Final)
	}
}

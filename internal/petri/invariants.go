package petri

import (
	"fmt"
	"strings"
)

// IncidenceMatrix returns the net's incidence matrix C with one row per
// place (in insertion order) and one column per transition (in insertion
// order): C[p][t] = W(t→p) − W(p→t). Inhibitor arcs do not move tokens and
// are excluded.
func (n *Net) IncidenceMatrix() [][]int {
	placeIdx := make(map[PlaceID]int, len(n.placeOrder))
	for i, p := range n.placeOrder {
		placeIdx[p] = i
	}
	c := make([][]int, len(n.placeOrder))
	for i := range c {
		c[i] = make([]int, len(n.transOrder))
	}
	for j, tid := range n.transOrder {
		for _, a := range n.inputs[tid] {
			if a.Inhibitor {
				continue
			}
			c[placeIdx[a.Place]][j] -= a.Weight
		}
		for _, a := range n.outputs[tid] {
			c[placeIdx[a.Place]][j] += a.Weight
		}
	}
	return c
}

// PInvariants returns a basis of non-negative place invariants: integer
// weight vectors y ≥ 0, y ≠ 0 with yᵀC = 0. For each invariant, the
// weighted token sum Σ y[p]·M(p) is constant over all reachable markings.
// The result maps each invariant to its weights by place.
//
// The computation is the Farkas/Martinez-Silva style positive-basis
// construction; for the small presentation and floor-control nets in this
// system it is exact and fast. Large dense nets may produce a
// non-minimal (but still valid) set.
func (n *Net) PInvariants() []map[PlaceID]int {
	c := n.IncidenceMatrix()
	rows := len(c)
	if rows == 0 {
		return nil
	}
	cols := len(c[0])

	// Working table [D | B]: D starts as C, B as the identity. We
	// eliminate columns of D by forming positive combinations of rows.
	type row struct {
		d []int // remaining incidence part
		b []int // combination of original rows (the candidate invariant)
	}
	table := make([]row, rows)
	for i := 0; i < rows; i++ {
		d := make([]int, cols)
		copy(d, c[i])
		b := make([]int, rows)
		b[i] = 1
		table[i] = row{d: d, b: b}
	}

	for j := 0; j < cols; j++ {
		var next []row
		var pos, neg []row
		for _, r := range table {
			switch {
			case r.d[j] == 0:
				next = append(next, r)
			case r.d[j] > 0:
				pos = append(pos, r)
			default:
				neg = append(neg, r)
			}
		}
		// Pair every positive row with every negative row.
		for _, rp := range pos {
			for _, rn := range neg {
				a, b := rp.d[j], -rn.d[j]
				g := gcd(a, b)
				ka, kb := b/g, a/g
				nd := make([]int, cols)
				nb := make([]int, rows)
				for k := 0; k < cols; k++ {
					nd[k] = ka*rp.d[k] + kb*rn.d[k]
				}
				for k := 0; k < rows; k++ {
					nb[k] = ka*rp.b[k] + kb*rn.b[k]
				}
				reduceRow(nd, nb)
				next = append(next, row{d: nd, b: nb})
			}
		}
		table = next
		if len(table) == 0 {
			return nil
		}
	}

	var out []map[PlaceID]int
	seen := make(map[string]bool)
	for _, r := range table {
		inv := make(map[PlaceID]int)
		nonzero := false
		for i, w := range r.b {
			if w != 0 {
				inv[n.placeOrder[i]] = w
				nonzero = true
			}
		}
		if !nonzero {
			continue
		}
		key := invKey(inv)
		if !seen[key] {
			seen[key] = true
			out = append(out, inv)
		}
	}
	return out
}

// TInvariants returns a basis of non-negative transition invariants:
// integer vectors x ≥ 0, x ≠ 0 with Cx = 0. Firing every transition t
// exactly x[t] times (in some enabled order) reproduces the starting
// marking — the cyclic behaviours of the net, e.g. one full
// request→grant→release rotation of the floor-control net.
func (n *Net) TInvariants() []map[TransitionID]int {
	c := n.IncidenceMatrix()
	if len(c) == 0 || len(c[0]) == 0 {
		return nil
	}
	// T-invariants of C are P-invariants of Cᵀ: reuse the same positive
	// basis construction on the transpose.
	rows := len(c[0]) // one row per transition
	cols := len(c)    // one column per place
	type row struct {
		d []int
		b []int
	}
	table := make([]row, rows)
	for i := 0; i < rows; i++ {
		d := make([]int, cols)
		for j := 0; j < cols; j++ {
			d[j] = c[j][i]
		}
		b := make([]int, rows)
		b[i] = 1
		table[i] = row{d: d, b: b}
	}
	for j := 0; j < cols; j++ {
		var next, pos, neg []row
		for _, r := range table {
			switch {
			case r.d[j] == 0:
				next = append(next, r)
			case r.d[j] > 0:
				pos = append(pos, r)
			default:
				neg = append(neg, r)
			}
		}
		for _, rp := range pos {
			for _, rn := range neg {
				a, b := rp.d[j], -rn.d[j]
				g := gcd(a, b)
				ka, kb := b/g, a/g
				nd := make([]int, cols)
				nb := make([]int, rows)
				for k := 0; k < cols; k++ {
					nd[k] = ka*rp.d[k] + kb*rn.d[k]
				}
				for k := 0; k < rows; k++ {
					nb[k] = ka*rp.b[k] + kb*rn.b[k]
				}
				reduceRow(nd, nb)
				next = append(next, row{d: nd, b: nb})
			}
		}
		table = next
		if len(table) == 0 {
			return nil
		}
	}
	var out []map[TransitionID]int
	seen := make(map[string]bool)
	for _, r := range table {
		inv := make(map[TransitionID]int)
		nonzero := false
		for i, w := range r.b {
			if w != 0 {
				inv[n.transOrder[i]] = w
				nonzero = true
			}
		}
		if !nonzero {
			continue
		}
		parts := make([]string, 0, len(inv))
		for t, w := range inv {
			parts = append(parts, fmt.Sprintf("%s:%d", t, w))
		}
		sortStrings(parts)
		key := strings.Join(parts, ",")
		if !seen[key] {
			seen[key] = true
			out = append(out, inv)
		}
	}
	return out
}

// CheckPInvariant verifies that the weighted token sum is identical for
// two markings under the given invariant.
func CheckPInvariant(inv map[PlaceID]int, a, b Marking) bool {
	return weightedSum(inv, a) == weightedSum(inv, b)
}

// InvariantSum returns the weighted token sum of a marking under inv.
func InvariantSum(inv map[PlaceID]int, m Marking) int {
	return weightedSum(inv, m)
}

func weightedSum(inv map[PlaceID]int, m Marking) int {
	s := 0
	for p, w := range inv {
		s += w * m[p]
	}
	return s
}

func invKey(inv map[PlaceID]int) string {
	parts := make([]string, 0, len(inv))
	for p, w := range inv {
		parts = append(parts, fmt.Sprintf("%s:%d", p, w))
	}
	// Order-independent key.
	sortStrings(parts)
	return strings.Join(parts, ",")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// reduceRow divides both vectors by the gcd of all their entries.
func reduceRow(d, b []int) {
	g := 0
	for _, v := range d {
		g = gcd(g, abs(v))
	}
	for _, v := range b {
		g = gcd(g, abs(v))
	}
	if g > 1 {
		for i := range d {
			d[i] /= g
		}
		for i := range b {
			b[i] /= g
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

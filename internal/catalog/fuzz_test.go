package catalog

import (
	"reflect"
	"testing"

	"repro/internal/proto"
)

// FuzzStateRoundTrip guards the restore path's strictness: any input
// DecodeState accepts must re-encode and decode to the identical state
// (the history is a fixed point of the codec), and obviously damaged
// documents — truncations, trailing garbage, wrong schema — must be
// rejected so Open walks back to the previous history entry instead of
// restoring a half-read state.
func FuzzStateRoundTrip(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"schema":"lod-state/1","version":1,"nodes":[],"assets":[],"groups":[]}`))
	f.Add(EncodeState(State{Schema: StateSchema, Version: 3,
		Nodes:  []NodeRecord{{ID: "edge-1", URL: "http://e1", Draining: true}},
		Assets: []proto.CatalogAsset{{Name: "lec-1", Rev: 2}},
		Groups: []proto.CatalogGroup{{Name: "grp-1", Variants: []string{"a", "b"}, Rev: 3}}}))
	seed := EncodeState(State{Schema: StateSchema, Version: 7, SavedAt: "2026-01-01T00:00:00Z"})
	f.Add(seed)
	f.Add(seed[:len(seed)/2])                             // truncated
	f.Add(append(append([]byte{}, seed...), '{'))         // trailing data
	f.Add([]byte(`{"schema":"lod-state/0","version":1}`)) // wrong schema
	f.Add([]byte(`{"schema":"lod-state/1","version":1,"bogus":true}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeState(data)
		if err != nil {
			return
		}
		if st.Schema != StateSchema || st.Version == 0 {
			t.Fatalf("decode accepted invalid schema/version: %+v", st)
		}
		re := EncodeState(st)
		st2, err := DecodeState(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded state failed: %v\ninput: %q\nre-encoded: %q", err, data, re)
		}
		if !reflect.DeepEqual(st, st2) {
			t.Fatalf("round trip not a fixed point:\n got %+v\nwant %+v", st2, st)
		}
	})
}

package catalog

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func mustApply(t *testing.T, s *Store, mut func(*State)) State {
	t.Helper()
	st, err := s.Apply(mut)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return st
}

func TestStoreRestoresAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, s, func(st *State) {
		st.UpsertNode(NodeRecord{ID: "edge-b", URL: "http://b"})
		st.UpsertNode(NodeRecord{ID: "edge-a", URL: "http://a"})
	})
	mustApply(t, s, func(st *State) { st.PublishAsset("lec-1") })
	mustApply(t, s, func(st *State) { st.PublishGroup("grp-1", []string{"grp-1-lean", "grp-1-rich"}) })
	want := s.State()
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.State()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored state = %+v, want %+v", got, want)
	}
	if got.Version != 3 {
		t.Fatalf("restored version = %d, want 3", got.Version)
	}
	if len(got.Nodes) != 2 || got.Nodes[0].ID != "edge-a" {
		t.Fatalf("nodes not sorted/restored: %+v", got.Nodes)
	}
	if !bytes.Equal(s2.CatalogJSON(), s.CatalogJSON()) {
		t.Fatalf("catalog bytes differ after restore")
	}
}

func TestStoreWalksBackPastCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, s, func(st *State) { st.PublishAsset("lec-1") })
	mustApply(t, s, func(st *State) { st.PublishAsset("lec-2") })
	s.Close()

	// Truncate the newest entry mid-document, as a crash during write
	// would (tmp+rename normally prevents this; simulate disk damage).
	newest := filepath.Join(dir, stateFileName(2))
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.State()
	if st.Version != 1 {
		t.Fatalf("restored version = %d, want walkback to 1", st.Version)
	}
	if len(st.Assets) != 1 || st.Assets[0].Name != "lec-1" {
		t.Fatalf("walkback state assets = %+v, want [lec-1]", st.Assets)
	}
}

func TestStoreStartsFreshWhenWholeHistoryCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, stateFileName(1)), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, currentFile), []byte(stateFileName(1)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if v := s.Version(); v != 0 {
		t.Fatalf("version = %d, want fresh 0", v)
	}
}

func TestStoreNoOpMutationSkipsVersionBump(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustApply(t, s, func(st *State) { st.UpsertNode(NodeRecord{ID: "e", URL: "http://e"}) })
	st := mustApply(t, s, func(st *State) { st.UpsertNode(NodeRecord{ID: "e", URL: "http://e"}) })
	if st.Version != 1 {
		t.Fatalf("version after no-op re-register = %d, want 1", st.Version)
	}
	if _, err := os.Stat(filepath.Join(dir, stateFileName(2))); !os.IsNotExist(err) {
		t.Fatalf("no-op mutation persisted a new history entry")
	}
	// Removing a node that isn't there is a no-op too.
	st = mustApply(t, s, func(st *State) { st.RemoveNode("ghost") })
	if st.Version != 1 {
		t.Fatalf("version after no-op remove = %d, want 1", st.Version)
	}
}

func TestStoreDrainingSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, s, func(st *State) { st.UpsertNode(NodeRecord{ID: "e", URL: "http://e"}) })
	mustApply(t, s, func(st *State) { st.SetNodeDraining("e", true) })
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.State()
	if len(st.Nodes) != 1 || !st.Nodes[0].Draining {
		t.Fatalf("restored node = %+v, want draining", st.Nodes)
	}
	// Re-registration clears the durable mark.
	mustApply(t, s2, func(st *State) { st.UpsertNode(NodeRecord{ID: "e", URL: "http://e"}) })
	if st := s2.State(); st.Nodes[0].Draining {
		t.Fatalf("re-register did not clear draining: %+v", st.Nodes)
	}
}

func TestStorePrunesHistory(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.keep = 3
	for i := 0; i < 6; i++ {
		mustApply(t, s, func(st *State) { st.PublishAsset("lec-" + string(rune('a'+i))) })
	}
	got := historyVersions(dir)
	want := []uint64{6, 5, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("history versions = %v, want %v", got, want)
	}
	if name := readCurrent(dir); name != stateFileName(6) {
		t.Fatalf("current = %q, want %q", name, stateFileName(6))
	}
}

func TestStoreMemoryOnly(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := mustApply(t, s, func(st *State) { st.PublishAsset("lec-1") })
	if st.Version != 1 || s.Version() != 1 {
		t.Fatalf("memory store version = %d/%d, want 1", st.Version, s.Version())
	}
}

func TestStoreApplyAfterClose(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Apply(func(*State) {}); err != ErrClosed {
		t.Fatalf("Apply after Close = %v, want ErrClosed", err)
	}
}

func TestPublishRevTracksVersion(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustApply(t, s, func(st *State) { st.PublishAsset("lec-1") })
	st := mustApply(t, s, func(st *State) { st.PublishAsset("lec-1") }) // republish
	if st.Version != 2 || st.Assets[0].Rev != 2 {
		t.Fatalf("republish version/rev = %d/%d, want 2/2", st.Version, st.Assets[0].Rev)
	}
	if !st.UnpublishAsset("lec-1") {
		t.Fatalf("unpublish existing asset reported false")
	}
	if st.UnpublishAsset("lec-1") {
		t.Fatalf("unpublish absent asset reported true")
	}
}

func TestStoreRollbackRestoresContent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustApply(t, s, func(st *State) { st.UpsertNode(NodeRecord{ID: "edge-a", URL: "http://a"}) })
	v2 := mustApply(t, s, func(st *State) {
		st.PublishAsset("lec-1")
		st.PublishGroup("grp-1", []string{"grp-1-lean", "grp-1-rich"})
	})
	mustApply(t, s, func(st *State) { st.UnpublishAsset("lec-1") })
	mustApply(t, s, func(st *State) { st.UnpublishGroup("grp-1") })
	mustApply(t, s, func(st *State) { st.UpsertNode(NodeRecord{ID: "edge-b", URL: "http://b"}) })

	st, err := s.Rollback(v2.Version)
	if err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	// Content restored from v2 under a fresh, higher version; the node
	// added after v2 is preserved.
	if st.Version != 6 {
		t.Fatalf("post-rollback version = %d, want 6", st.Version)
	}
	if !reflect.DeepEqual(st.Assets, v2.Assets) {
		t.Fatalf("assets = %+v, want %+v", st.Assets, v2.Assets)
	}
	if !reflect.DeepEqual(st.Groups, v2.Groups) {
		t.Fatalf("groups = %+v, want %+v", st.Groups, v2.Groups)
	}
	if len(st.Nodes) != 2 {
		t.Fatalf("nodes = %+v, want both preserved", st.Nodes)
	}

	// Rolling back to the state we are already at is a no-op Apply.
	again, err := s.Rollback(st.Version)
	if err != nil {
		t.Fatalf("no-op Rollback: %v", err)
	}
	if again.Version != st.Version {
		t.Fatalf("no-op rollback bumped version to %d", again.Version)
	}
}

func TestStoreRollbackUnknownVersion(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustApply(t, s, func(st *State) { st.PublishAsset("lec-1") })
	if _, err := s.Rollback(99); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("unknown version rollback err = %v, want ErrNoSnapshot", err)
	}

	mem, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if _, err := mem.Rollback(1); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("memory-only rollback err = %v, want ErrNoSnapshot", err)
	}
}

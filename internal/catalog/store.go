package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
)

// currentFile is the pointer file naming the history entry to restore;
// stateFilePrefix/-Suffix frame the entries themselves
// (state-<version>.json).
const (
	currentFile     = "current"
	stateFilePrefix = "state-"
	stateFileSuffix = ".json"
)

// defaultKeepHistory is how many history entries survive pruning. More
// than one so a corrupt newest file has somewhere to walk back to;
// bounded so a long-lived registry doesn't grow the directory forever.
const defaultKeepHistory = 8

// ErrClosed is returned by Apply after Close.
var ErrClosed = errors.New("catalog: store closed")

// ErrNoSnapshot is returned by Rollback when the requested version has
// no retained history entry — memory-only store, a version that never
// persisted, or one already pruned past the keep horizon.
var ErrNoSnapshot = errors.New("catalog: no snapshot for version")

// Snapshot pairs one immutable state version with its pre-marshaled
// catalog listing — the bytes PathCatalog serves verbatim, rendered
// once at swap time rather than per request.
type Snapshot struct {
	State       State
	CatalogJSON []byte
	// VersionString is proto.FormatCatalogVersion(State.Version),
	// pre-rendered so setting CatalogVersionHeader on the redirect hot
	// path allocates nothing.
	VersionString string
}

// Store owns the durable control-plane state. Readers load the current
// Snapshot from an atomic pointer (lock-free, always fully consistent);
// writers funnel through Apply, which hands the mutation to the single
// update goroutine.
type Store struct {
	dir  string // "" = memory-only (tests, registries run without -state-dir)
	keep int

	cur  atomic.Pointer[Snapshot]
	reqs chan applyReq

	closeOnce sync.Once
	closed    chan struct{} // closed by Close; loop drains and exits
	done      chan struct{} // closed when the loop has exited
}

type applyReq struct {
	mut  func(*State)
	resp chan applyResp
}

type applyResp struct {
	st  State
	err error
}

// Open restores a store from dir, creating the directory if needed. The
// `current` pointer names the entry to load; if it is missing,
// unreadable, or names a corrupt/truncated file, Open walks the history
// newest-version-first and restores the first entry that decodes — and
// starts fresh only when none do. dir == "" opens a memory-only store
// with no persistence (every Apply still versions and swaps
// atomically).
func Open(dir string) (*Store, error) {
	s := &Store{
		dir:    dir,
		keep:   defaultKeepHistory,
		reqs:   make(chan applyReq),
		closed: make(chan struct{}),
		done:   make(chan struct{}),
	}
	st := State{Schema: StateSchema}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("catalog: open %s: %w", dir, err)
		}
		st = restore(dir)
	}
	s.cur.Store(newSnapshot(st))
	go s.loop()
	return s, nil
}

func newSnapshot(st State) *Snapshot {
	return &Snapshot{
		State:         st,
		CatalogJSON:   marshalCatalog(st),
		VersionString: proto.FormatCatalogVersion(st.Version),
	}
}

func marshalCatalog(st State) []byte {
	data, err := json.Marshal(st.Catalog())
	if err != nil {
		panic("catalog: marshal catalog: " + err.Error())
	}
	return append(data, '\n')
}

// restore loads the best available history entry from dir; see Open.
func restore(dir string) State {
	if name := readCurrent(dir); name != "" {
		if st, err := loadStateFile(filepath.Join(dir, name)); err == nil {
			return st
		}
	}
	for _, v := range historyVersions(dir) {
		if st, err := loadStateFile(filepath.Join(dir, stateFileName(v))); err == nil {
			return st
		}
	}
	return State{Schema: StateSchema}
}

func readCurrent(dir string) string {
	b, err := os.ReadFile(filepath.Join(dir, currentFile))
	if err != nil {
		return ""
	}
	name := strings.TrimSpace(string(b))
	// The pointer names a file in dir, nothing else.
	if name == "" || name != filepath.Base(name) {
		return ""
	}
	return name
}

func loadStateFile(path string) (State, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return State{}, err
	}
	return DecodeState(b)
}

// historyVersions lists the state-file versions present in dir, newest
// first.
func historyVersions(dir string) []uint64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []uint64
	for _, e := range entries {
		if v, ok := parseStateFileName(e.Name()); ok {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

func stateFileName(version uint64) string {
	return stateFilePrefix + strconv.FormatUint(version, 10) + stateFileSuffix
}

func parseStateFileName(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, stateFilePrefix)
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, stateFileSuffix)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseUint(rest, 10, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return v, true
}

// Apply runs one mutation through the update goroutine and returns the
// state it produced. The goroutine clones the current state, bumps the
// version, applies mut to the clone (so mut sees the successor's
// Version — catalog revs stamp from it), persists it, and swaps it in.
// A mutation that changes nothing is a no-op: no version bump, no disk
// write, and the returned state is the current one. A persist failure
// rejects the mutation — the returned error — and keeps the current
// state.
func (s *Store) Apply(mut func(*State)) (State, error) {
	req := applyReq{mut: mut, resp: make(chan applyResp, 1)}
	select {
	case s.reqs <- req:
	case <-s.closed:
		return State{}, ErrClosed
	}
	select {
	case resp := <-req.resp:
		return resp.st, resp.err
	case <-s.closed:
		// The loop drains racing requests after Close and answers them
		// with ErrClosed, so the response still arrives.
		resp := <-req.resp
		return resp.st, resp.err
	}
}

// Rollback restores the published content (assets and groups) of a
// retained on-disk snapshot, applied as a regular mutation through the
// update goroutine: node membership is preserved — live nodes would be
// stale the moment an old snapshot resurrected them — and the catalog
// version keeps growing, so consumers never see the version header move
// backwards. Rolling back to content identical to the current state is
// a no-op like any other Apply. An unretained version returns
// ErrNoSnapshot.
func (s *Store) Rollback(version uint64) (State, error) {
	if s.dir == "" {
		return State{}, fmt.Errorf("%w %d: store has no history directory", ErrNoSnapshot, version)
	}
	old, err := loadStateFile(filepath.Join(s.dir, stateFileName(version)))
	if err != nil || old.Version != version {
		return State{}, fmt.Errorf("%w %d", ErrNoSnapshot, version)
	}
	return s.Apply(func(st *State) {
		st.Assets = append([]proto.CatalogAsset(nil), old.Assets...)
		st.Groups = make([]proto.CatalogGroup, len(old.Groups))
		for i, g := range old.Groups {
			g.Variants = append([]string(nil), g.Variants...)
			st.Groups[i] = g
		}
	})
}

// Current returns the current snapshot: the state plus its
// pre-marshaled catalog bytes.
func (s *Store) Current() *Snapshot { return s.cur.Load() }

// State returns the current state.
func (s *Store) State() State { return s.cur.Load().State }

// Version returns the current state version.
func (s *Store) Version() uint64 { return s.cur.Load().State.Version }

// CatalogJSON returns the pre-marshaled catalog listing. Callers serve
// it verbatim and must not mutate it.
func (s *Store) CatalogJSON() []byte { return s.cur.Load().CatalogJSON }

// Dir returns the history directory ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

// Close stops the update goroutine; subsequent Applys return ErrClosed.
// It does not remove the history — a successor Open(dir) restores it.
func (s *Store) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
	<-s.done
}

func (s *Store) loop() {
	defer close(s.done)
	for {
		select {
		case req := <-s.reqs:
			req.resp <- s.apply(req.mut)
		case <-s.closed:
			// Answer senders that won the race against Close, then exit.
			for {
				select {
				case req := <-s.reqs:
					req.resp <- applyResp{err: ErrClosed}
				default:
					return
				}
			}
		}
	}
}

// apply builds the successor state aside, persists it, and swaps it in.
// Runs only on the update goroutine.
func (s *Store) apply(mut func(*State)) applyResp {
	cur := s.cur.Load()
	next := cur.State.Clone()
	next.Version++
	// The history timestamp is provenance for operators reading the
	// files, not an ordering signal; it is genuinely wall time.
	next.SavedAt = time.Now().UTC().Format(time.RFC3339) //lodlint:allow wall-clock
	mut(&next)
	next.Schema = StateSchema
	if next.sameContent(cur.State) {
		return applyResp{st: cur.State}
	}
	if s.dir != "" {
		if err := s.persist(next); err != nil {
			return applyResp{err: err}
		}
	}
	s.cur.Store(newSnapshot(next))
	return applyResp{st: next}
}

// persist writes the successor to the history: the state file first,
// then the `current` pointer, both atomically via tmp+rename, then
// prunes entries older than the keep window. Failing before the pointer
// flip leaves `current` naming the previous good entry.
func (s *Store) persist(st State) error {
	name := stateFileName(st.Version)
	if err := writeFileAtomic(filepath.Join(s.dir, name), EncodeState(st)); err != nil {
		return fmt.Errorf("catalog: persist state %d: %w", st.Version, err)
	}
	if err := writeFileAtomic(filepath.Join(s.dir, currentFile), []byte(name+"\n")); err != nil {
		return fmt.Errorf("catalog: persist current pointer: %w", err)
	}
	for _, v := range historyVersions(s.dir) {
		if st.Version-v >= uint64(s.keep) {
			_ = os.Remove(filepath.Join(s.dir, stateFileName(v)))
		}
	}
	return nil
}

func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Package catalog is the durable control-plane state of the cluster:
// the registry's node table and the published-content catalog, held as
// an immutable versioned State that is snapshotted to an on-disk
// history and restored on start.
//
// The design follows the contentserver pattern named in ROADMAP item 3.
// A Store owns the current *State behind an atomic pointer; every
// mutation is funneled through one update goroutine that clones the
// state aside, applies the mutation, persists the successor
// (state-<version>.json plus a `current` pointer file, both written
// tmp+rename), and only then swaps the pointer — readers never see a
// partially applied or partially persisted state, and a persist failure
// rejects the mutation outright. Open restores the newest history entry
// on start, walking back to the previous one when the newest file is
// corrupt or truncated (the rollback path FuzzStateRoundTrip guards).
// The catalog listing served over HTTP is pre-marshaled at swap time so
// the serving path hands out stored bytes with zero re-marshaling.
package catalog

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/proto"
)

// StateSchema identifies the persisted state document format. Decoding
// rejects any other value, so a future format change can bump it and
// old registries will treat new files as corrupt (and walk back) rather
// than misread them.
const StateSchema = "lod-state/1"

// NodeRecord is the durable slice of one registered node: identity plus
// the draining mark, which must survive a registry restart (a drained
// node's heartbeats cannot resurrect it — only an explicit
// re-registration can). Liveness (last-seen, death marks, load) is
// deliberately not persisted: it is re-learned from heartbeats within
// one TTL and would be stale the moment the snapshot was written.
type NodeRecord struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Draining bool   `json:"draining,omitempty"`
}

// State is one immutable version of the control-plane state. Values are
// only ever constructed by the Store's update goroutine (or decoded
// from disk); everyone else reads.
type State struct {
	Schema  string `json:"schema"`
	Version uint64 `json:"version"`
	// SavedAt is a human-facing provenance timestamp (RFC 3339); nothing
	// orders or expires on it.
	SavedAt string               `json:"savedAt,omitempty"`
	Nodes   []NodeRecord         `json:"nodes"`
	Assets  []proto.CatalogAsset `json:"assets"`
	Groups  []proto.CatalogGroup `json:"groups"`
}

// Clone deep-copies the state so a mutation can build its successor
// aside without aliasing slices of the published version.
func (st State) Clone() State {
	out := st
	out.Nodes = append([]NodeRecord(nil), st.Nodes...)
	out.Assets = append([]proto.CatalogAsset(nil), st.Assets...)
	out.Groups = make([]proto.CatalogGroup, len(st.Groups))
	for i, g := range st.Groups {
		g.Variants = append([]string(nil), g.Variants...)
		out.Groups[i] = g
	}
	return out
}

// sameContent reports whether two states carry identical content,
// ignoring Version/SavedAt — the no-op detection that lets the Store
// skip a version bump and a disk write for mutations that change
// nothing (a re-register with unchanged URL, a periodic prune that
// pruned nobody).
func (st State) sameContent(other State) bool {
	if len(st.Nodes) != len(other.Nodes) || len(st.Assets) != len(other.Assets) || len(st.Groups) != len(other.Groups) {
		return false
	}
	for i, n := range st.Nodes {
		if n != other.Nodes[i] {
			return false
		}
	}
	for i, a := range st.Assets {
		if a != other.Assets[i] {
			return false
		}
	}
	for i, g := range st.Groups {
		o := other.Groups[i]
		if g.Name != o.Name || g.Rev != o.Rev || len(g.Variants) != len(o.Variants) {
			return false
		}
		for j, v := range g.Variants {
			if v != o.Variants[j] {
				return false
			}
		}
	}
	return true
}

// Catalog renders the published-content view of the state as the wire
// DTO. Slices are non-nil so the listing marshals as [] rather than
// null.
func (st State) Catalog() proto.Catalog {
	c := proto.Catalog{
		Version: st.Version,
		Assets:  st.Assets,
		Groups:  st.Groups,
	}
	if c.Assets == nil {
		c.Assets = []proto.CatalogAsset{}
	}
	if c.Groups == nil {
		c.Groups = []proto.CatalogGroup{}
	}
	return c
}

// UpsertNode inserts or updates a node record (sorted by ID), clearing
// any draining mark — registration is the one act that revives a
// drained node.
func (st *State) UpsertNode(rec NodeRecord) {
	i := sort.Search(len(st.Nodes), func(i int) bool { return st.Nodes[i].ID >= rec.ID })
	if i < len(st.Nodes) && st.Nodes[i].ID == rec.ID {
		st.Nodes[i] = rec
		return
	}
	st.Nodes = append(st.Nodes, NodeRecord{})
	copy(st.Nodes[i+1:], st.Nodes[i:])
	st.Nodes[i] = rec
}

// RemoveNode deletes a node record, reporting whether it existed.
func (st *State) RemoveNode(id string) bool {
	i := sort.Search(len(st.Nodes), func(i int) bool { return st.Nodes[i].ID >= id })
	if i >= len(st.Nodes) || st.Nodes[i].ID != id {
		return false
	}
	st.Nodes = append(st.Nodes[:i], st.Nodes[i+1:]...)
	return true
}

// SetNodeDraining marks or clears the durable draining flag of a node,
// reporting whether the node exists.
func (st *State) SetNodeDraining(id string, draining bool) bool {
	i := sort.Search(len(st.Nodes), func(i int) bool { return st.Nodes[i].ID >= id })
	if i >= len(st.Nodes) || st.Nodes[i].ID != id {
		return false
	}
	st.Nodes[i].Draining = draining
	return true
}

// PublishAsset inserts or replaces an asset entry (sorted by name),
// stamping it with the state's version as its revision — the successor
// state's version, since mutations run after the bump.
func (st *State) PublishAsset(name string) {
	rec := proto.CatalogAsset{Name: name, Rev: st.Version}
	i := sort.Search(len(st.Assets), func(i int) bool { return st.Assets[i].Name >= name })
	if i < len(st.Assets) && st.Assets[i].Name == name {
		st.Assets[i] = rec
		return
	}
	st.Assets = append(st.Assets, proto.CatalogAsset{})
	copy(st.Assets[i+1:], st.Assets[i:])
	st.Assets[i] = rec
}

// UnpublishAsset removes an asset entry, reporting whether it existed.
func (st *State) UnpublishAsset(name string) bool {
	i := sort.Search(len(st.Assets), func(i int) bool { return st.Assets[i].Name >= name })
	if i >= len(st.Assets) || st.Assets[i].Name != name {
		return false
	}
	st.Assets = append(st.Assets[:i], st.Assets[i+1:]...)
	return true
}

// PublishGroup inserts or replaces a rate-group entry (sorted by name)
// with the given variant list, stamped like PublishAsset.
func (st *State) PublishGroup(name string, variants []string) {
	rec := proto.CatalogGroup{
		Name:     name,
		Variants: append([]string(nil), variants...),
		Rev:      st.Version,
	}
	i := sort.Search(len(st.Groups), func(i int) bool { return st.Groups[i].Name >= name })
	if i < len(st.Groups) && st.Groups[i].Name == name {
		st.Groups[i] = rec
		return
	}
	st.Groups = append(st.Groups, proto.CatalogGroup{})
	copy(st.Groups[i+1:], st.Groups[i:])
	st.Groups[i] = rec
}

// UnpublishGroup removes a rate-group entry, reporting whether it
// existed.
func (st *State) UnpublishGroup(name string) bool {
	i := sort.Search(len(st.Groups), func(i int) bool { return st.Groups[i].Name >= name })
	if i >= len(st.Groups) || st.Groups[i].Name != name {
		return false
	}
	st.Groups = append(st.Groups[:i], st.Groups[i+1:]...)
	return true
}

// EncodeState serializes a state for the on-disk history.
func EncodeState(st State) []byte {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		// State holds only plain data types; Marshal cannot fail on it.
		panic("catalog: encode state: " + err.Error())
	}
	return append(data, '\n')
}

// DecodeState parses a persisted state document strictly: unknown
// fields, a wrong schema, trailing data, and malformed records are all
// rejected, so a truncated or corrupt history file fails here and Open
// walks back to the previous entry instead of restoring garbage.
func DecodeState(data []byte) (State, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var st State
	if err := dec.Decode(&st); err != nil {
		return State{}, fmt.Errorf("catalog: decode state: %w", err)
	}
	if dec.More() {
		return State{}, errors.New("catalog: decode state: trailing data after document")
	}
	if st.Schema != StateSchema {
		return State{}, fmt.Errorf("catalog: decode state: schema %q, want %q", st.Schema, StateSchema)
	}
	if st.Version == 0 {
		return State{}, errors.New("catalog: decode state: version 0")
	}
	seenNodes := make(map[string]bool, len(st.Nodes))
	for _, n := range st.Nodes {
		if n.ID == "" || n.URL == "" {
			return State{}, errors.New("catalog: decode state: node record missing id or url")
		}
		if seenNodes[n.ID] {
			return State{}, fmt.Errorf("catalog: decode state: duplicate node %q", n.ID)
		}
		seenNodes[n.ID] = true
	}
	seenAssets := make(map[string]bool, len(st.Assets))
	for _, a := range st.Assets {
		if a.Name == "" {
			return State{}, errors.New("catalog: decode state: asset record missing name")
		}
		if seenAssets[a.Name] {
			return State{}, fmt.Errorf("catalog: decode state: duplicate asset %q", a.Name)
		}
		seenAssets[a.Name] = true
	}
	seenGroups := make(map[string]bool, len(st.Groups))
	for _, g := range st.Groups {
		if g.Name == "" {
			return State{}, errors.New("catalog: decode state: group record missing name")
		}
		if seenGroups[g.Name] {
			return State{}, fmt.Errorf("catalog: decode state: duplicate group %q", g.Name)
		}
		seenGroups[g.Name] = true
	}
	return st, nil
}

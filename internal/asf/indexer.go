package asf

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Indexer is the stored-file post-processing utility of §2.1: "Script
// commands can be … added to stored files through either Windows Media ASF
// Indexer or the command-line utilities." It rewrites a stored container,
// merging new script commands into the header table and optionally
// emitting them in-band on the script stream.
type Indexer struct {
	// InBand controls whether merged commands are also written as packets
	// on the script stream (in addition to the header table). In-band
	// commands survive mid-stream joins of live broadcasts; header-table
	// commands are only visible to clients that saw the header.
	InBand bool
	// ScriptStream is the stream ID used for in-band commands.
	ScriptStream ScriptStreamID
}

// ScriptStreamID aliases the media stream id type for the indexer options.
type ScriptStreamID = uint16

// AddScripts copies the container from src to dst, merging the given
// commands into the header's script table (kept sorted by time). It
// returns the total number of script commands in the rewritten header.
func (ix Indexer) AddScripts(src io.Reader, dst io.Writer, cmds []ScriptCommand) (int, error) {
	for i, c := range cmds {
		if c.At < 0 {
			return 0, fmt.Errorf("asf: indexer: command %d at negative time %v", i, c.At)
		}
		if c.Type == "" {
			return 0, fmt.Errorf("asf: indexer: command %d has empty type", i)
		}
	}
	r := NewReader(src)
	h, err := r.ReadHeader()
	if err != nil {
		return 0, fmt.Errorf("asf: indexer: %w", err)
	}
	merged := make([]ScriptCommand, 0, len(h.Scripts)+len(cmds))
	merged = append(merged, h.Scripts...)
	merged = append(merged, cmds...)
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].At < merged[j].At })
	h.Scripts = merged

	w, err := NewWriter(dst, h)
	if err != nil {
		return 0, fmt.Errorf("asf: indexer: %w", err)
	}

	// Interleave in-band script packets by send time with copied packets.
	pending := make([]ScriptCommand, 0, len(cmds))
	if ix.InBand {
		pending = append(pending, cmds...)
		sort.SliceStable(pending, func(i, j int) bool { return pending[i].At < pending[j].At })
	}
	flushScripts := func(upTo time.Duration) error {
		for len(pending) > 0 && pending[0].At <= upTo {
			if err := WriteScriptPacket(w, pending[0], ix.ScriptStream); err != nil {
				return err
			}
			pending = pending[1:]
		}
		return nil
	}

	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("asf: indexer: read: %w", err)
		}
		if err := flushScripts(p.SendAt); err != nil {
			return 0, err
		}
		if _, err := w.WritePacket(p); err != nil {
			return 0, fmt.Errorf("asf: indexer: copy packet: %w", err)
		}
	}
	if err := flushScripts(1<<62 - 1); err != nil {
		return 0, err
	}
	if err := w.Close(); err != nil {
		return 0, fmt.Errorf("asf: indexer: finalize: %w", err)
	}
	return len(merged), nil
}

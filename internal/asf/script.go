package asf

import (
	"bufio"
	"bytes"
	"fmt"

	"repro/internal/media"
)

// WriteScriptPacket writes the command as an in-band packet on the given
// stream. In-band commands are how live encoder sessions deliver slide
// flips and annotations to clients that joined mid-broadcast.
func WriteScriptPacket(w *Writer, cmd ScriptCommand, stream uint16) error {
	payload, err := encodeScriptPayload(cmd)
	if err != nil {
		return err
	}
	_, err = w.WritePacket(Packet{
		Stream:  media.StreamID(stream),
		Kind:    media.KindScript,
		Flags:   PacketKeyframe,
		PTS:     cmd.At,
		SendAt:  cmd.At,
		Payload: payload,
	})
	return err
}

// ScriptPacket builds (without writing) an in-band script packet.
func ScriptPacket(cmd ScriptCommand, stream media.StreamID) (Packet, error) {
	payload, err := encodeScriptPayload(cmd)
	if err != nil {
		return Packet{}, err
	}
	return Packet{
		Stream:  stream,
		Kind:    media.KindScript,
		Flags:   PacketKeyframe,
		PTS:     cmd.At,
		SendAt:  cmd.At,
		Payload: payload,
	}, nil
}

// ParseScriptPacket decodes an in-band script command from a packet on the
// script stream.
func ParseScriptPacket(p Packet) (ScriptCommand, error) {
	if p.Kind != media.KindScript {
		return ScriptCommand{}, fmt.Errorf("asf: packet kind %s is not a script", p.Kind)
	}
	s := &scanner{r: bufio.NewReader(bytes.NewReader(p.Payload))}
	cmd := ScriptCommand{At: p.PTS}
	cmd.Type = s.str16()
	cmd.Param = s.str16()
	if s.err != nil {
		return ScriptCommand{}, fmt.Errorf("%w: script payload: %v", ErrCorrupt, s.err)
	}
	if cmd.Type == "" {
		return ScriptCommand{}, fmt.Errorf("%w: script with empty type", ErrCorrupt)
	}
	return cmd, nil
}

func encodeScriptPayload(cmd ScriptCommand) ([]byte, error) {
	if cmd.Type == "" {
		return nil, fmt.Errorf("asf: script with empty type")
	}
	if cmd.At < 0 {
		return nil, fmt.Errorf("asf: script at negative time %v", cmd.At)
	}
	c := &cursor{buf: &bytes.Buffer{}}
	if err := c.str16(cmd.Type); err != nil {
		return nil, err
	}
	if err := c.str16(cmd.Param); err != nil {
		return nil, err
	}
	return c.buf.Bytes(), nil
}

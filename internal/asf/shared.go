package asf

import (
	"fmt"
	"time"

	"repro/internal/media"
)

// packetWireSize is the fixed wire size of a packet before its payload:
// "PK" magic, stream, kind, flags, three i64 timings, seq, crc, length.
const packetWireSize = 2 + 2 + 1 + 1 + 8 + 8 + 8 + 4 + 4 + 4

// Shared is an immutable, pre-encoded packet: the wire bytes (header,
// CRC, payload) are built exactly once, and every consumer — each live
// subscriber, each VOD session, each edge re-fan-out — writes the same
// underlying buffer. This is the zero-copy half of the serving path:
// fan-out to N subscribers costs N writes of one buffer, not N
// re-encodes and N CRC passes.
//
// Ownership rules (enforced by construction, checked by the race suite):
//
//   - NewShared copies the payload into the wire image, so the caller
//     may reuse or mutate its payload buffer the moment NewShared
//     returns.
//   - After construction nothing may write to the Shared: Wire and the
//     Packet view's Payload alias the same buffer that is concurrently
//     being written to other subscribers' connections.
type Shared struct {
	wire []byte // full wire image: fixed header + payload
	pkt  Packet // decoded view; Payload aliases wire's tail
}

// NewShared validates p and encodes it once, payload copied in. The
// packet's Seq is preserved as assigned by the publisher — a Shared is
// the same bytes for every consumer by definition, so no downstream
// writer may re-sequence it.
func NewShared(p Packet) (*Shared, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sp := &Shared{
		wire: appendPacket(make([]byte, 0, packetWireSize+len(p.Payload)), p),
		pkt:  p,
	}
	sp.pkt.Payload = sp.wire[packetWireSize:]
	return sp, nil
}

// Packet returns the decoded view of the shared packet. The view's
// Payload aliases the shared wire image: treat it as read-only.
func (s *Shared) Packet() Packet { return s.pkt }

// Wire returns the complete wire encoding (header + CRC + payload).
// The buffer is shared with every other consumer: never modify it.
func (s *Shared) Wire() []byte { return s.wire }

// WireLen is the full on-the-wire size in bytes.
func (s *Shared) WireLen() int { return len(s.wire) }

// PayloadLen is the payload size in bytes.
func (s *Shared) PayloadLen() int { return len(s.pkt.Payload) }

// Seq is the publisher-assigned container sequence number.
func (s *Shared) Seq() uint32 { return s.pkt.Seq }

// Kind is the packet's media kind.
func (s *Shared) Kind() media.Kind { return s.pkt.Kind }

// PTS is the packet's presentation timestamp.
func (s *Shared) PTS() time.Duration { return s.pkt.PTS }

// SendAt is the packet's transmission deadline.
func (s *Shared) SendAt() time.Duration { return s.pkt.SendAt }

// Keyframe reports whether the packet is a decoder entry point.
func (s *Shared) Keyframe() bool { return s.pkt.Keyframe() }

// Last reports whether the packet ends its stream.
func (s *Shared) Last() bool { return s.pkt.Last() }

// WriteShared writes a pre-encoded packet: the shared wire image goes
// out as-is — no re-encode, no CRC pass, no re-sequencing — so every
// consumer of the same Shared receives identical bytes. Keyframes still
// land in the writer's index for the trailing seek table, and the
// writer's own sequence counter follows the shared packet's, so
// WritePacket and WriteShared may interleave on one stream.
func (w *Writer) WriteShared(sp *Shared) error {
	if w.closed {
		return ErrClosed
	}
	if err := w.ensureHeader(); err != nil {
		return err
	}
	if _, err := w.w.Write(sp.wire); err != nil {
		return fmt.Errorf("asf: write packet %d: %w", sp.pkt.Seq, err)
	}
	if sp.pkt.Keyframe() {
		w.index = append(w.index, IndexEntry{PTS: sp.pkt.PTS, Seq: sp.pkt.Seq})
	}
	w.seq = sp.pkt.Seq + 1
	return nil
}

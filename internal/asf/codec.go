package asf

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/media"
)

// --- low-level encode helpers ---

type cursor struct {
	buf *bytes.Buffer
}

func (c *cursor) u8(v uint8) { c.buf.WriteByte(v) }
func (c *cursor) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	c.buf.Write(b[:])
}
func (c *cursor) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	c.buf.Write(b[:])
}
func (c *cursor) i64(v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	c.buf.Write(b[:])
}

func (c *cursor) str16(s string) error {
	if len(s) >= MaxStrings {
		return fmt.Errorf("%w: string of %d bytes", ErrLimit, len(s))
	}
	c.u16(uint16(len(s)))
	c.buf.WriteString(s)
	return nil
}

// --- low-level decode helpers ---

type scanner struct {
	r   *bufio.Reader
	err error
}

func (s *scanner) bytes(n int) []byte {
	if s.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(s.r, b); err != nil {
		s.err = err
		return nil
	}
	return b
}

func (s *scanner) u8() uint8 {
	b := s.bytes(1)
	if s.err != nil {
		return 0
	}
	return b[0]
}

func (s *scanner) u16() uint16 {
	b := s.bytes(2)
	if s.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (s *scanner) u32() uint32 {
	b := s.bytes(4)
	if s.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (s *scanner) i64() int64 {
	b := s.bytes(8)
	if s.err != nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (s *scanner) str16() string {
	n := s.u16()
	if s.err != nil {
		return ""
	}
	return string(s.bytes(int(n)))
}

func (s *scanner) dur() time.Duration {
	v := s.i64()
	if s.err != nil {
		return 0
	}
	d, err := i64ToDur(v)
	if err != nil {
		s.err = err
		return 0
	}
	return d
}

// scratchPool recycles the encode scratch buffers: header and index
// objects are encoded once per session (or per seek), and the payload
// is length-prefixed so it must be staged before the final copy. The
// pool keeps those stagings from costing a fresh buffer per session.
var scratchPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// EncodeHeader serializes the header object.
func EncodeHeader(h Header) ([]byte, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	buf := scratchPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer scratchPool.Put(buf)
	payload := &cursor{buf: buf}
	payload.u16(Version)
	payload.u16(h.Flags)
	payload.u32(h.PacketAlign)
	payload.i64(durToI64(h.Duration))
	if err := payload.str16(h.Title); err != nil {
		return nil, err
	}
	payload.u16(uint16(len(h.Streams)))
	for _, st := range h.Streams {
		payload.u16(uint16(st.ID))
		payload.u8(uint8(st.Kind))
		if err := payload.str16(st.Codec); err != nil {
			return nil, err
		}
		payload.i64(st.BitsPerSecond)
		payload.i64(durToI64(st.MaxSkew))
		payload.i64(durToI64(st.MaxJitter))
	}
	payload.u32(uint32(len(h.Scripts)))
	for _, sc := range h.Scripts {
		payload.i64(durToI64(sc.At))
		if err := payload.str16(sc.Type); err != nil {
			return nil, err
		}
		if err := payload.str16(sc.Param); err != nil {
			return nil, err
		}
	}

	out := make([]byte, 0, len(headerMagic)+4+buf.Len())
	out = append(out, headerMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(buf.Len()))
	return append(out, buf.Bytes()...), nil
}

// DecodeHeader reads and parses a header object from r.
func DecodeHeader(r *bufio.Reader) (Header, error) {
	var h Header
	s := &scanner{r: r}
	magic := s.bytes(4)
	if s.err != nil {
		return h, fmt.Errorf("asf: read header magic: %w", s.err)
	}
	if !bytes.Equal(magic, headerMagic[:]) {
		return h, fmt.Errorf("%w: header %q", ErrBadMagic, magic)
	}
	size := s.u32()
	if s.err != nil {
		return h, fmt.Errorf("asf: read header size: %w", s.err)
	}
	if size > MaxPayload {
		return h, fmt.Errorf("%w: header %d bytes", ErrLimit, size)
	}
	body := s.bytes(int(size))
	if s.err != nil {
		return h, fmt.Errorf("asf: read header body: %w", s.err)
	}
	bs := &scanner{r: bufio.NewReader(bytes.NewReader(body))}

	if v := bs.u16(); v != Version {
		if bs.err == nil {
			return h, fmt.Errorf("%w: %d", ErrBadVersion, v)
		}
	}
	h.Flags = bs.u16()
	h.PacketAlign = bs.u32()
	h.Duration = bs.dur()
	h.Title = bs.str16()
	nStreams := int(bs.u16())
	if nStreams > MaxStreams {
		return h, fmt.Errorf("%w: %d streams", ErrLimit, nStreams)
	}
	for i := 0; i < nStreams && bs.err == nil; i++ {
		st := StreamProps{
			ID:   media.StreamID(bs.u16()),
			Kind: media.Kind(bs.u8()),
		}
		st.Codec = bs.str16()
		st.BitsPerSecond = bs.i64()
		st.MaxSkew = bs.dur()
		st.MaxJitter = bs.dur()
		h.Streams = append(h.Streams, st)
	}
	nScripts := int(bs.u32())
	if nScripts > MaxScripts {
		return h, fmt.Errorf("%w: %d scripts", ErrLimit, nScripts)
	}
	for i := 0; i < nScripts && bs.err == nil; i++ {
		sc := ScriptCommand{At: bs.dur()}
		sc.Type = bs.str16()
		sc.Param = bs.str16()
		h.Scripts = append(h.Scripts, sc)
	}
	if bs.err != nil {
		return h, fmt.Errorf("%w: truncated header: %v", ErrCorrupt, bs.err)
	}
	if err := h.Validate(); err != nil {
		return h, err
	}
	return h, nil
}

// appendPacket appends p's complete wire encoding (fixed header, CRC,
// payload) to dst in one pass — the header and payload land in the same
// buffer, so one Write sends both (the writev-style coalescing the
// serving path relies on).
func appendPacket(dst []byte, p Packet) []byte {
	dst = append(dst, packetMagic[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(p.Stream))
	dst = append(dst, uint8(p.Kind), p.Flags)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(durToI64(p.PTS)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(durToI64(p.Dur)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(durToI64(p.SendAt)))
	dst = binary.LittleEndian.AppendUint32(dst, p.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, payloadCRC(p.Payload))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.Payload)))
	return append(dst, p.Payload...)
}

// EncodePacket serializes a packet including its CRC. One allocation,
// exactly sized.
func EncodePacket(p Packet) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return appendPacket(make([]byte, 0, packetWireSize+len(p.Payload)), p), nil
}

// decodePacketAfterMagic parses a packet body once the "PK" magic has been
// consumed.
func decodePacketAfterMagic(s *scanner) (Packet, error) {
	var p Packet
	p.Stream = media.StreamID(s.u16())
	p.Kind = media.Kind(s.u8())
	p.Flags = s.u8()
	p.PTS = s.dur()
	p.Dur = s.dur()
	p.SendAt = s.dur()
	p.Seq = s.u32()
	crc := s.u32()
	n := s.u32()
	if s.err != nil {
		return p, fmt.Errorf("%w: truncated packet: %v", ErrCorrupt, s.err)
	}
	if n > MaxPayload {
		return p, fmt.Errorf("%w: payload %d bytes", ErrLimit, n)
	}
	p.Payload = s.bytes(int(n))
	if s.err != nil {
		return p, fmt.Errorf("%w: truncated payload: %v", ErrCorrupt, s.err)
	}
	if payloadCRC(p.Payload) != crc {
		return p, ErrChecksum
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// EncodeIndex serializes the index object. One allocation, exactly
// sized.
func EncodeIndex(ix Index) ([]byte, error) {
	if len(ix) > MaxIndexEntries {
		return nil, fmt.Errorf("%w: %d index entries", ErrLimit, len(ix))
	}
	out := make([]byte, 0, len(indexMagic)+4+len(ix)*(8+4))
	out = append(out, indexMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(ix)))
	for _, e := range ix {
		out = binary.LittleEndian.AppendUint64(out, uint64(durToI64(e.PTS)))
		out = binary.LittleEndian.AppendUint32(out, e.Seq)
	}
	return out, nil
}

// decodeIndexAfterMagic parses an index body once "IX" has been consumed.
func decodeIndexAfterMagic(s *scanner) (Index, error) {
	n := s.u32()
	if s.err != nil {
		return nil, fmt.Errorf("%w: truncated index: %v", ErrCorrupt, s.err)
	}
	if n > MaxIndexEntries {
		return nil, fmt.Errorf("%w: %d index entries", ErrLimit, n)
	}
	ix := make(Index, 0, n)
	for i := uint32(0); i < n; i++ {
		e := IndexEntry{PTS: s.dur()}
		e.Seq = s.u32()
		if s.err != nil {
			return nil, fmt.Errorf("%w: truncated index entry: %v", ErrCorrupt, s.err)
		}
		ix = append(ix, e)
	}
	return ix, nil
}

// Writer emits a container to an io.Writer: header first, then packets,
// then (for stored content) the index on Close.
type Writer struct {
	w       io.Writer
	header  Header
	seq     uint32
	index   Index
	started bool
	closed  bool
}

// NewWriter creates a Writer; the header is written on the first call to
// WritePacket or Flush so callers may construct writers cheaply.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &Writer{w: w, header: h}, nil
}

// Header returns the writer's header.
func (w *Writer) Header() Header { return w.header }

func (w *Writer) ensureHeader() error {
	if w.started {
		return nil
	}
	b, err := EncodeHeader(w.header)
	if err != nil {
		return err
	}
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("asf: write header: %w", err)
	}
	w.started = true
	return nil
}

// WriteHeader forces the header object out immediately. Without it the
// header is written lazily on the first packet; live sessions call it on
// join so clients can parse stream properties before any media flows.
func (w *Writer) WriteHeader() error {
	if w.closed {
		return ErrClosed
	}
	return w.ensureHeader()
}

// WritePacket assigns the packet its sequence number, records keyframes in
// the index, and writes it out. The packet's Seq field is overwritten.
func (w *Writer) WritePacket(p Packet) (uint32, error) {
	if w.closed {
		return 0, ErrClosed
	}
	if err := w.ensureHeader(); err != nil {
		return 0, err
	}
	p.Seq = w.seq
	b, err := EncodePacket(p)
	if err != nil {
		return 0, err
	}
	if _, err := w.w.Write(b); err != nil {
		return 0, fmt.Errorf("asf: write packet %d: %w", p.Seq, err)
	}
	if p.Keyframe() {
		w.index = append(w.index, IndexEntry{PTS: p.PTS, Seq: p.Seq})
	}
	w.seq++
	return p.Seq, nil
}

// PacketCount returns the number of packets written so far.
func (w *Writer) PacketCount() uint32 { return w.seq }

// Close writes the index object (omitted for live streams) and marks the
// writer finished. It does not close the underlying io.Writer.
func (w *Writer) Close() error {
	if w.closed {
		return ErrClosed
	}
	if err := w.ensureHeader(); err != nil {
		return err
	}
	w.closed = true
	if w.header.Live() {
		return nil
	}
	b, err := EncodeIndex(w.index)
	if err != nil {
		return err
	}
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("asf: write index: %w", err)
	}
	return nil
}

// Reader parses a container from an io.Reader incrementally, suitable for
// both stored files and live HTTP streams.
type Reader struct {
	r         *bufio.Reader
	header    Header
	hasHeader bool
	index     Index
	done      bool
}

// NewReader wraps r; call ReadHeader before ReadPacket.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10)}
}

// ReadHeader parses the header object.
func (r *Reader) ReadHeader() (Header, error) {
	if r.hasHeader {
		return r.header, nil
	}
	h, err := DecodeHeader(r.r)
	if err != nil {
		return h, err
	}
	r.header = h
	r.hasHeader = true
	return h, nil
}

// ReadPacket returns the next packet, or io.EOF after the last packet (and
// after parsing a trailing index object, if present).
func (r *Reader) ReadPacket() (Packet, error) {
	if !r.hasHeader {
		return Packet{}, ErrNoHeader
	}
	if r.done {
		return Packet{}, io.EOF
	}
	s := &scanner{r: r.r}
	magic := s.bytes(2)
	if s.err != nil {
		r.done = true
		// Only a pure EOF — zero bytes exactly on a frame boundary — is a
		// clean end of stream. An ErrUnexpectedEOF means the transport was
		// severed (a dying edge mid-stream): it must surface as an error,
		// or a failover-capable client would mistake the truncation for a
		// complete session and never resume.
		if errors.Is(s.err, io.EOF) && !errors.Is(s.err, io.ErrUnexpectedEOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("asf: read packet magic: %w", s.err)
	}
	switch {
	case bytes.Equal(magic, packetMagic[:]):
		return decodePacketAfterMagic(s)
	case bytes.Equal(magic, indexMagic[:]):
		ix, err := decodeIndexAfterMagic(s)
		if err != nil {
			r.done = true
			return Packet{}, err
		}
		r.index = ix
		r.done = true
		return Packet{}, io.EOF
	default:
		r.done = true
		return Packet{}, fmt.Errorf("%w: packet %q", ErrBadMagic, magic)
	}
}

// Index returns the trailing index, available only after ReadPacket has
// returned io.EOF on a stored file.
func (r *Reader) Index() Index { return r.index }

// ReadAll parses a complete container from r: header, all packets, and the
// trailing index if present. When the stored file carries no index (live
// captures), one is rebuilt from the keyframe packets so callers can
// always seek.
func ReadAll(r io.Reader) (Header, []Packet, Index, error) {
	reader := NewReader(r)
	h, err := reader.ReadHeader()
	if err != nil {
		return h, nil, nil, err
	}
	var packets []Packet
	for {
		p, err := reader.ReadPacket()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return h, packets, nil, err
		}
		packets = append(packets, p)
	}
	ix := reader.Index()
	if len(ix) == 0 {
		for _, p := range packets {
			if p.Keyframe() {
				ix = append(ix, IndexEntry{PTS: p.PTS, Seq: p.Seq})
			}
		}
	}
	return h, packets, ix, nil
}

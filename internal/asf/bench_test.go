package asf

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/media"
)

func benchPacket(tb testing.TB, flags uint8) Packet {
	tb.Helper()
	return Packet{
		Stream:  1,
		Kind:    media.KindVideo,
		Flags:   flags,
		PTS:     time.Second,
		Dur:     66 * time.Millisecond,
		SendAt:  time.Second,
		Seq:     42,
		Payload: bytes.Repeat([]byte{0xCD}, 1024),
	}
}

// BenchmarkPacketClone contrasts the two ways a server can hand one
// packet to another consumer: re-encoding it (a fresh buffer, a fresh
// CRC pass — the per-subscriber cost before zero-copy fan-out) versus
// handing out the pre-built shared wire image (a pointer copy). The gap
// between the two sub-benchmarks is the per-subscriber saving that
// multiplies by fan-out width on the live path.
func BenchmarkPacketClone(b *testing.B) {
	p := benchPacket(b, PacketKeyframe)

	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(p.Payload)))
		for i := 0; i < b.N; i++ {
			if _, err := EncodePacket(p); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("shared", func(b *testing.B) {
		sp, err := NewShared(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.SetBytes(int64(len(p.Payload)))
		var sink []byte
		for i := 0; i < b.N; i++ {
			sink = sp.Wire()
		}
		_ = sink
	})
}

// TestWriteSharedAllocFree pins the serving-side half of the zero-copy
// contract: streaming a pre-encoded packet through a Writer performs no
// heap allocations — the shared wire image goes straight to the
// underlying writer. Uses a non-keyframe packet so the writer's seek
// index (which grows amortized on keyframes) stays out of the
// measurement.
func TestWriteSharedAllocFree(t *testing.T) {
	w, err := NewWriter(io.Discard, Header{Title: "allocs", PacketAlign: 2048})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewShared(benchPacket(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteShared(sp); err != nil { // first write emits the header
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := w.WriteShared(sp); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("WriteShared allocates %.2f times per packet; want 0", avg)
	}
}

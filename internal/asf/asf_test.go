package asf

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/media"
)

func sampleHeader() Header {
	return Header{
		Title:       "Lecture 1: Petri Nets",
		Duration:    60 * time.Second,
		PacketAlign: 1400,
		Streams: []StreamProps{
			{ID: media.StreamVideo, Kind: media.KindVideo, Codec: "sim-mpeg4", BitsPerSecond: 300_000,
				MaxSkew: 80 * time.Millisecond, MaxJitter: 20 * time.Millisecond},
			{ID: media.StreamAudio, Kind: media.KindAudio, Codec: "sim-acelp", BitsPerSecond: 16_000,
				MaxSkew: 80 * time.Millisecond},
			{ID: media.StreamScript, Kind: media.KindScript, Codec: "script"},
		},
		Scripts: []ScriptCommand{
			{At: 0, Type: "slide", Param: "slide01.png"},
			{At: 20 * time.Second, Type: "slide", Param: "slide02.png"},
			{At: 30 * time.Second, Type: "annotation", Param: "see chapter 3"},
		},
	}
}

func samplePackets() []Packet {
	return []Packet{
		{Stream: media.StreamVideo, Kind: media.KindVideo, Flags: PacketKeyframe,
			PTS: 0, Dur: 40 * time.Millisecond, SendAt: 0, Payload: bytes.Repeat([]byte{0xAB}, 512)},
		{Stream: media.StreamAudio, Kind: media.KindAudio, Flags: PacketKeyframe,
			PTS: 0, Dur: 100 * time.Millisecond, SendAt: 0, Payload: bytes.Repeat([]byte{0x01}, 64)},
		{Stream: media.StreamVideo, Kind: media.KindVideo,
			PTS: 40 * time.Millisecond, Dur: 40 * time.Millisecond, SendAt: 10 * time.Millisecond,
			Payload: bytes.Repeat([]byte{0xCD}, 128)},
		{Stream: media.StreamVideo, Kind: media.KindVideo, Flags: PacketKeyframe | PacketLast,
			PTS: 80 * time.Millisecond, Dur: 40 * time.Millisecond, SendAt: 40 * time.Millisecond,
			Payload: []byte{}},
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := sampleHeader()
	data, err := EncodeHeader(h)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	r := NewReader(bytes.NewReader(data))
	got, err := r.ReadHeader()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Title != h.Title || got.Duration != h.Duration || got.PacketAlign != h.PacketAlign {
		t.Fatalf("header mismatch: %+v vs %+v", got, h)
	}
	if len(got.Streams) != 3 || len(got.Scripts) != 3 {
		t.Fatalf("streams=%d scripts=%d, want 3,3", len(got.Streams), len(got.Scripts))
	}
	if got.Streams[0].Codec != "sim-mpeg4" || got.Streams[0].MaxSkew != 80*time.Millisecond {
		t.Fatalf("stream[0] = %+v", got.Streams[0])
	}
	if got.Scripts[1].Param != "slide02.png" || got.Scripts[1].At != 20*time.Second {
		t.Fatalf("script[1] = %+v", got.Scripts[1])
	}
}

func TestHeaderFlags(t *testing.T) {
	h := Header{Flags: FlagLive | FlagDRM}
	if !h.Live() || !h.DRM() {
		t.Fatal("flag accessors broken")
	}
	var plain Header
	if plain.Live() || plain.DRM() {
		t.Fatal("zero header reports flags")
	}
}

func TestHeaderValidate(t *testing.T) {
	good := sampleHeader()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	dup := sampleHeader()
	dup.Streams = append(dup.Streams, dup.Streams[0])
	if err := dup.Validate(); err == nil {
		t.Error("duplicate stream accepted")
	}
	badKind := sampleHeader()
	badKind.Streams[0].Kind = media.Kind(0)
	if err := badKind.Validate(); err == nil {
		t.Error("invalid stream kind accepted")
	}
	badScript := sampleHeader()
	badScript.Scripts[0].Type = ""
	if err := badScript.Validate(); err == nil {
		t.Error("empty script type accepted")
	}
	negDur := sampleHeader()
	negDur.Duration = -time.Second
	if err := negDur.Validate(); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestStreamByID(t *testing.T) {
	h := sampleHeader()
	if st, ok := h.StreamByID(media.StreamAudio); !ok || st.Codec != "sim-acelp" {
		t.Fatalf("StreamByID(audio) = %+v,%v", st, ok)
	}
	if _, ok := h.StreamByID(77); ok {
		t.Fatal("found non-existent stream")
	}
}

func TestFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range samplePackets() {
		if _, err := w.WritePacket(p); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if w.PacketCount() != 4 {
		t.Fatalf("PacketCount = %d, want 4", w.PacketCount())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := r.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	var got []Packet
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		got = append(got, p)
	}
	want := samplePackets()
	if len(got) != len(want) {
		t.Fatalf("read %d packets, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Stream != want[i].Stream || got[i].PTS != want[i].PTS ||
			!bytes.Equal(got[i].Payload, want[i].Payload) || got[i].Flags != want[i].Flags {
			t.Errorf("packet %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
		if got[i].Seq != uint32(i) {
			t.Errorf("packet %d has seq %d", i, got[i].Seq)
		}
	}
	// Index has entries for the three keyframes.
	ix := r.Index()
	if len(ix) != 3 {
		t.Fatalf("index has %d entries, want 3", len(ix))
	}
	// Two keyframes share PTS 0 (video seq 0, audio seq 1); Locate returns
	// the last keyframe at or before the requested time.
	if seq, ok := ix.Locate(50 * time.Millisecond); !ok || seq != 1 {
		t.Fatalf("Locate(50ms) = %d,%v; want 1,true", seq, ok)
	}
	if seq, ok := ix.Locate(90 * time.Millisecond); !ok || seq != 3 {
		t.Fatalf("Locate(90ms) = %d,%v; want 3,true", seq, ok)
	}
}

func TestIndexLocateBeforeFirst(t *testing.T) {
	ix := Index{{PTS: 10 * time.Second, Seq: 5}}
	if _, ok := ix.Locate(5 * time.Second); ok {
		t.Fatal("Locate before first entry must fail")
	}
}

func TestLiveStreamOmitsIndex(t *testing.T) {
	h := sampleHeader()
	h.Flags |= FlagLive
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WritePacket(samplePackets()[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := r.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := r.ReadPacket(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if len(r.Index()) != 0 {
		t.Fatal("live stream has an index")
	}
}

func TestWriterClosedRejectsWrites(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.WritePacket(samplePackets()[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close = %v, want ErrClosed", err)
	}
	if err := w.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close = %v, want ErrClosed", err)
	}
}

func TestReadPacketBeforeHeader(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.ReadPacket(); !errors.Is(err, ErrNoHeader) {
		t.Fatalf("err = %v, want ErrNoHeader", err)
	}
}

func TestCorruptionDetection(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WritePacket(samplePackets()[0]); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte inside the payload (near the end of the buffer).
	data[len(data)-10] ^= 0xFF
	r := NewReader(bytes.NewReader(data))
	if _, err := r.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted packet err = %v, want ErrChecksum", err)
	}
}

func TestBadMagicDetection(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOPE....")))
	if _, err := r.ReadHeader(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	h := sampleHeader()
	data, err := EncodeHeader(h)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(data[:len(data)-5]))
	if _, err := r.ReadHeader(); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestPacketValidate(t *testing.T) {
	bad := []Packet{
		{Kind: media.Kind(0)},
		{Kind: media.KindVideo, PTS: -1},
		{Kind: media.KindVideo, Dur: -1},
		{Kind: media.KindVideo, SendAt: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad packet %d accepted", i)
		}
	}
}

func TestPacketFlagHelpers(t *testing.T) {
	p := Packet{Flags: PacketKeyframe}
	if !p.Keyframe() || p.Last() {
		t.Fatal("flag helpers broken")
	}
	p.Flags = PacketLast
	if p.Keyframe() || !p.Last() {
		t.Fatal("flag helpers broken")
	}
}

func TestScriptPacketRoundTrip(t *testing.T) {
	cmd := ScriptCommand{At: 12 * time.Second, Type: "slide", Param: "intro.png"}
	pkt, err := ScriptPacket(cmd, media.StreamScript)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.PTS != cmd.At || pkt.SendAt != cmd.At || !pkt.Keyframe() {
		t.Fatalf("script packet timing wrong: %+v", pkt)
	}
	got, err := ParseScriptPacket(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got != cmd {
		t.Fatalf("round trip = %+v, want %+v", got, cmd)
	}
}

func TestScriptPacketValidation(t *testing.T) {
	if _, err := ScriptPacket(ScriptCommand{Type: ""}, media.StreamScript); err == nil {
		t.Error("empty type accepted")
	}
	if _, err := ScriptPacket(ScriptCommand{Type: "x", At: -time.Second}, media.StreamScript); err == nil {
		t.Error("negative time accepted")
	}
	notScript := Packet{Kind: media.KindVideo}
	if _, err := ParseScriptPacket(notScript); err == nil {
		t.Error("non-script packet parsed")
	}
}

func TestIndexerMergesScripts(t *testing.T) {
	// Build a source file with one header script.
	var src bytes.Buffer
	h := sampleHeader()
	h.Scripts = h.Scripts[:1]
	w, err := NewWriter(&src, h)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range samplePackets() {
		if _, err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var dst bytes.Buffer
	ixer := Indexer{}
	n, err := ixer.AddScripts(bytes.NewReader(src.Bytes()), &dst, []ScriptCommand{
		{At: 10 * time.Second, Type: "slide", Param: "added.png"},
		{At: 5 * time.Second, Type: "annotation", Param: "hello"},
	})
	if err != nil {
		t.Fatalf("AddScripts: %v", err)
	}
	if n != 3 {
		t.Fatalf("merged count = %d, want 3", n)
	}

	r := NewReader(bytes.NewReader(dst.Bytes()))
	got, err := r.ReadHeader()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Scripts) != 3 {
		t.Fatalf("rewritten header has %d scripts, want 3", len(got.Scripts))
	}
	// Sorted by time: 0s, 5s, 10s.
	for i := 1; i < len(got.Scripts); i++ {
		if got.Scripts[i].At < got.Scripts[i-1].At {
			t.Fatal("scripts not sorted by time")
		}
	}
	// All original packets preserved.
	count := 0
	for {
		if _, err := r.ReadPacket(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != len(samplePackets()) {
		t.Fatalf("rewritten file has %d packets, want %d", count, len(samplePackets()))
	}
}

func TestIndexerInBand(t *testing.T) {
	var src bytes.Buffer
	w, err := NewWriter(&src, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range samplePackets() {
		if _, err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var dst bytes.Buffer
	ixer := Indexer{InBand: true, ScriptStream: uint16(media.StreamScript)}
	if _, err := ixer.AddScripts(bytes.NewReader(src.Bytes()), &dst, []ScriptCommand{
		{At: 5 * time.Millisecond, Type: "slide", Param: "mid.png"},
	}); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(dst.Bytes()))
	if _, err := r.ReadHeader(); err != nil {
		t.Fatal(err)
	}
	scriptSeen := false
	total := 0
	for {
		p, err := r.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total++
		if p.Kind == media.KindScript {
			scriptSeen = true
			cmd, err := ParseScriptPacket(p)
			if err != nil {
				t.Fatal(err)
			}
			if cmd.Param != "mid.png" {
				t.Fatalf("in-band command = %+v", cmd)
			}
		}
	}
	if !scriptSeen {
		t.Fatal("no in-band script packet written")
	}
	if total != len(samplePackets())+1 {
		t.Fatalf("total packets = %d, want %d", total, len(samplePackets())+1)
	}
}

func TestIndexerValidation(t *testing.T) {
	var dst bytes.Buffer
	ixer := Indexer{}
	if _, err := ixer.AddScripts(bytes.NewReader(nil), &dst, []ScriptCommand{{At: -1, Type: "x"}}); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := ixer.AddScripts(bytes.NewReader(nil), &dst, []ScriptCommand{{At: 1, Type: ""}}); err == nil {
		t.Error("empty type accepted")
	}
}

package asf

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/media"
)

// FuzzReader feeds arbitrary bytes to the container reader; it must never
// panic or allocate unboundedly, only return errors or packets.
func FuzzReader(f *testing.F) {
	// Seed with a valid small file.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{
		Title: "seed",
		Streams: []StreamProps{
			{ID: media.StreamVideo, Kind: media.KindVideo, Codec: "c", BitsPerSecond: 1000},
		},
		Scripts: []ScriptCommand{{At: time.Second, Type: "slide", Param: "s.png"}},
	})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := w.WritePacket(Packet{
		Stream: media.StreamVideo, Kind: media.KindVideo, Flags: PacketKeyframe,
		PTS: time.Second, Payload: []byte("data"),
	}); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("WMP1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		if _, err := r.ReadHeader(); err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			if _, err := r.ReadPacket(); err != nil {
				if err != io.EOF {
					return
				}
				break
			}
		}
	})
}

// FuzzScriptPacket feeds arbitrary payloads to the script parser.
func FuzzScriptPacket(f *testing.F) {
	good, err := encodeScriptPayload(ScriptCommand{At: time.Second, Type: "slide", Param: "x"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, payload []byte) {
		pkt := Packet{Kind: media.KindScript, PTS: time.Second, Payload: payload}
		_, _ = ParseScriptPacket(pkt)
	})
}

package asf

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/media"
)

var validKinds = []media.Kind{
	media.KindVideo, media.KindAudio, media.KindImage,
	media.KindText, media.KindAnnotation, media.KindScript,
}

func randomPacket(rng *rand.Rand) Packet {
	payload := make([]byte, rng.Intn(2048))
	rng.Read(payload)
	var flags uint8
	if rng.Intn(2) == 0 {
		flags |= PacketKeyframe
	}
	return Packet{
		Stream:  media.StreamID(rng.Intn(8)),
		Kind:    validKinds[rng.Intn(len(validKinds))],
		Flags:   flags,
		PTS:     time.Duration(rng.Int63n(int64(time.Hour))),
		Dur:     time.Duration(rng.Int63n(int64(time.Second))),
		SendAt:  time.Duration(rng.Int63n(int64(time.Hour))),
		Payload: payload,
	}
}

// TestPacketRoundTripProperty: every valid packet survives encode/decode
// byte-for-byte.
func TestPacketRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPacket(rng)
		p.Seq = rng.Uint32()
		data, err := EncodePacket(p)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		buf.Write(data)
		r := NewReader(&buf)
		r.hasHeader = true // bypass header for raw packet decoding
		got, err := r.ReadPacket()
		if err != nil {
			return false
		}
		return got.Stream == p.Stream && got.Kind == p.Kind && got.Flags == p.Flags &&
			got.PTS == p.PTS && got.Dur == p.Dur && got.SendAt == p.SendAt &&
			got.Seq == p.Seq && bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFileRoundTripProperty: random files (header + packets) survive a full
// write/read cycle with index integrity.
func TestFileRoundTripProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := Header{
			Title:       "prop",
			Duration:    time.Minute,
			PacketAlign: 1400,
			Streams: []StreamProps{
				{ID: 1, Kind: media.KindVideo, Codec: "c", BitsPerSecond: 1000},
			},
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, h)
		if err != nil {
			return false
		}
		count := int(n%32) + 1
		var keyframes int
		for i := 0; i < count; i++ {
			p := randomPacket(rng)
			if p.Keyframe() {
				keyframes++
			}
			if _, err := w.WritePacket(p); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r := NewReader(bytes.NewReader(buf.Bytes()))
		if _, err := r.ReadHeader(); err != nil {
			return false
		}
		read := 0
		for {
			_, err := r.ReadPacket()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			read++
		}
		return read == count && len(r.Index()) == keyframes
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTruncationNeverPanics: arbitrary prefixes of a valid file produce
// errors, never panics or bogus packets beyond the cut.
func TestTruncationNeverPanics(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, sampleHeader())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range samplePackets() {
		if _, err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 7 {
		r := NewReader(bytes.NewReader(full[:cut]))
		if _, err := r.ReadHeader(); err != nil {
			continue // truncated within header: fine
		}
		for {
			if _, err := r.ReadPacket(); err != nil {
				break // io.EOF or corruption error: both acceptable
			}
		}
	}
}

// TestRandomGarbageNeverPanics: feeding random bytes to the reader returns
// errors gracefully.
func TestRandomGarbageNeverPanics(t *testing.T) {
	prop := func(seed int64, size uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		junk := make([]byte, int(size%4096))
		rng.Read(junk)
		r := NewReader(bytes.NewReader(junk))
		if _, err := r.ReadHeader(); err != nil {
			return true
		}
		for i := 0; i < 100; i++ {
			if _, err := r.ReadPacket(); err != nil {
				return true
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package codec

import (
	"testing"
	"time"
)

func TestLadderOrderedAndValid(t *testing.T) {
	ps := Ladder()
	if len(ps) < 5 {
		t.Fatalf("ladder has %d profiles, want at least 5", len(ps))
	}
	for i, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if i > 0 && ps[i].TotalBitsPerSecond() <= ps[i-1].TotalBitsPerSecond() {
			t.Errorf("ladder not strictly ascending at %s", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("dsl-300k")
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalBitsPerSecond() != 300_000 {
		t.Fatalf("dsl-300k total = %d, want 300000", p.TotalBitsPerSecond())
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestForBandwidth(t *testing.T) {
	tests := []struct {
		bw   int64
		want string
	}{
		{10_000, "modem-28k"}, // below smallest: fall back to smallest
		{28_800, "modem-28k"},
		{60_000, "modem-56k"},
		{400_000, "dsl-300k"},
		{100_000_000, "lan-10m"},
	}
	for _, tt := range tests {
		if got := ForBandwidth(tt.bw); got.Name != tt.want {
			t.Errorf("ForBandwidth(%d) = %s, want %s", tt.bw, got.Name, tt.want)
		}
	}
}

func TestQualityMonotoneInLadder(t *testing.T) {
	ps := Ladder()
	for i := 1; i < len(ps); i++ {
		qPrev, q := ps[i-1].Quality(), ps[i].Quality()
		if q < qPrev-0.5 {
			t.Errorf("quality dropped from %s (%.1f dB) to %s (%.1f dB)",
				ps[i-1].Name, qPrev, ps[i].Name, q)
		}
	}
	// Rough calibration bounds.
	if q := ps[0].Quality(); q < 25 || q > 40 {
		t.Errorf("lowest profile quality %.1f dB outside [25,40]", q)
	}
	if q := ps[len(ps)-1].Quality(); q < 38 || q > 50 {
		t.Errorf("highest profile quality %.1f dB outside [38,50]", q)
	}
}

func TestProfileValidate(t *testing.T) {
	good, _ := ByName("dsl-300k")
	bad := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.VideoBitsPerSecond = 0 },
		func(p *Profile) { p.AudioBitsPerSecond = 0 },
		func(p *Profile) { p.Width = 0 },
		func(p *Profile) { p.FrameRate = 0 },
		func(p *Profile) { p.GOPFrames = 0 },
		func(p *Profile) { p.AudioBlock = 0 },
	}
	for i, mutate := range bad {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestVideoEncoderRateControl(t *testing.T) {
	p, _ := ByName("dsl-300k")
	enc, err := NewVideoEncoder(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	samples := enc.EncodeDuration(10 * time.Second)
	wantFrames := 10 * p.FrameRate
	if len(samples) != wantFrames {
		t.Fatalf("encoded %d frames, want %d", len(samples), wantFrames)
	}
	var total int64
	for _, s := range samples {
		total += int64(len(s.Data))
	}
	gotBps := total * 8 / 10
	// Rate control within ±20% of the video budget.
	lo, hi := p.VideoBitsPerSecond*8/10, p.VideoBitsPerSecond*12/10
	if gotBps < lo || gotBps > hi {
		t.Fatalf("measured %d bps, want within [%d,%d]", gotBps, lo, hi)
	}
}

func TestVideoEncoderGOPStructure(t *testing.T) {
	p, _ := ByName("isdn-128k")
	enc, err := NewVideoEncoder(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	samples := enc.EncodeDuration(10 * time.Second)
	for i, s := range samples {
		wantKey := i%p.GOPFrames == 0
		if s.Keyframe != wantKey {
			t.Fatalf("frame %d keyframe=%v, want %v", i, s.Keyframe, wantKey)
		}
		info, err := DecodeVideoFrame(s.Data)
		if err != nil {
			t.Fatalf("frame %d undecodable: %v", i, err)
		}
		if info.Index != uint32(i) {
			t.Fatalf("frame %d carries index %d", i, info.Index)
		}
	}
	// I-frames are materially larger than neighboring P-frames.
	iBytes := len(samples[0].Data)
	pBytes := len(samples[1].Data)
	if iBytes < 3*pBytes {
		t.Fatalf("I-frame %dB not >> P-frame %dB", iBytes, pBytes)
	}
}

func TestVideoEncoderDeterministic(t *testing.T) {
	p, _ := ByName("dsl-300k")
	a, _ := NewVideoEncoder(p, 42)
	b, _ := NewVideoEncoder(p, 42)
	for i := 0; i < 50; i++ {
		sa, sb := a.NextFrame(), b.NextFrame()
		if len(sa.Data) != len(sb.Data) || sa.PTS != sb.PTS {
			t.Fatalf("frame %d differs across identical seeds", i)
		}
	}
}

func TestVideoEncoderTimestamps(t *testing.T) {
	p, _ := ByName("dsl-300k")
	enc, _ := NewVideoEncoder(p, 1)
	s0, s1 := enc.NextFrame(), enc.NextFrame()
	if s0.PTS != 0 || s1.PTS != p.FrameInterval() {
		t.Fatalf("PTS sequence %v,%v", s0.PTS, s1.PTS)
	}
	if s0.Duration != p.FrameInterval() {
		t.Fatalf("frame duration %v, want %v", s0.Duration, p.FrameInterval())
	}
}

func TestNewVideoEncoderRejectsBadProfile(t *testing.T) {
	if _, err := NewVideoEncoder(Profile{}, 0); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestDecodeVideoFrameErrors(t *testing.T) {
	if _, err := DecodeVideoFrame([]byte{1, 2}); err != ErrTruncatedFrame {
		t.Fatalf("short frame err = %v", err)
	}
	p, _ := ByName("dsl-300k")
	enc, _ := NewVideoEncoder(p, 1)
	frame := enc.NextFrame().Data
	frame[4] = 'X' // invalid type
	if _, err := DecodeVideoFrame(frame); err == nil {
		t.Fatal("corrupt type accepted")
	}
	frame[4] = 'I'
	short := frame[:len(frame)-3] // body length mismatch
	if _, err := DecodeVideoFrame(short); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestVideoDecoderLossChains(t *testing.T) {
	p, _ := ByName("isdn-128k")
	enc, _ := NewVideoEncoder(p, 3)
	samples := enc.EncodeDuration(10 * time.Second) // 150 frames, GOP 75

	var dec VideoDecoder
	for i, s := range samples {
		if i == 10 { // lose one P-frame early in GOP 1
			dec.Lose()
			continue
		}
		dec.Feed(s.Data)
	}
	if dec.Total() != len(samples) {
		t.Fatalf("decoder accounted %d frames, want %d", dec.Total(), len(samples))
	}
	// Frames 11..74 are broken (chain), frame 75 (next I) recovers.
	wantBroken := 1 + (75 - 11)
	if dec.Broken != wantBroken {
		t.Fatalf("Broken = %d, want %d", dec.Broken, wantBroken)
	}
	if dec.Decodable != len(samples)-wantBroken {
		t.Fatalf("Decodable = %d, want %d", dec.Decodable, len(samples)-wantBroken)
	}
}

func TestVideoDecoderCorruptFeed(t *testing.T) {
	var dec VideoDecoder
	dec.Feed([]byte{0xde, 0xad})
	if dec.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", dec.Corrupt)
	}
}

func TestAudioEncoderCBR(t *testing.T) {
	p, _ := ByName("dsl-300k")
	enc, err := NewAudioEncoder(p)
	if err != nil {
		t.Fatal(err)
	}
	blocks := enc.EncodeDuration(10 * time.Second)
	wantBlocks := int(10 * time.Second / p.AudioBlock)
	if len(blocks) != wantBlocks {
		t.Fatalf("%d blocks, want %d", len(blocks), wantBlocks)
	}
	var total int64
	for i, b := range blocks {
		if len(b.Data) != enc.BlockBytes() {
			t.Fatalf("block %d has %d bytes, want constant %d", i, len(b.Data), enc.BlockBytes())
		}
		idx, err := DecodeAudioBlock(b.Data)
		if err != nil {
			t.Fatalf("block %d undecodable: %v", i, err)
		}
		if idx != uint32(i) {
			t.Fatalf("block %d carries index %d", i, idx)
		}
		if !b.Keyframe {
			t.Fatalf("audio block %d not a keyframe", i)
		}
		total += int64(len(b.Data))
	}
	gotBps := total * 8 / 10
	lo, hi := p.AudioBitsPerSecond*9/10, p.AudioBitsPerSecond*11/10
	if gotBps < lo || gotBps > hi {
		t.Fatalf("audio rate %d bps outside [%d,%d]", gotBps, lo, hi)
	}
}

func TestDecodeAudioBlockErrors(t *testing.T) {
	if _, err := DecodeAudioBlock([]byte{1}); err != ErrTruncatedBlock {
		t.Fatalf("short block err = %v", err)
	}
	p, _ := ByName("dsl-300k")
	enc, _ := NewAudioEncoder(p)
	data := enc.NextBlock().Data
	if _, err := DecodeAudioBlock(data[:len(data)-1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestNewAudioEncoderRejectsBadProfile(t *testing.T) {
	if _, err := NewAudioEncoder(Profile{}); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestSortByRate(t *testing.T) {
	ps := Ladder()
	// Reverse, then sort.
	for i, j := 0, len(ps)-1; i < j; i, j = i+1, j-1 {
		ps[i], ps[j] = ps[j], ps[i]
	}
	SortByRate(ps)
	for i := 1; i < len(ps); i++ {
		if ps[i].TotalBitsPerSecond() < ps[i-1].TotalBitsPerSecond() {
			t.Fatal("SortByRate failed")
		}
	}
}

// Package codec provides the system's bandwidth profiles and deterministic
// simulated codecs. The paper uses the Windows Media codec family purely as
// a bandwidth-shaping black box: the user "can select the profile that best
// describes the content", where a higher bit rate yields higher-resolution
// content (§2.5). These simulated codecs reproduce the externally visible
// behaviour — rate control, GOP structure, frame sizing, decoder loss
// handling — without any proprietary compression, so the mux, pacing, and
// synchronization paths above them are exercised exactly as with real
// codecs.
package codec

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Profile is one entry of the encoder's bandwidth ladder (§2.5 "the
// different bandwidth profile selection window").
type Profile struct {
	// Name identifies the profile, e.g. "dsl-300k".
	Name string
	// Audience describes the target connection.
	Audience string
	// VideoBitsPerSecond is the video substream budget.
	VideoBitsPerSecond int64
	// AudioBitsPerSecond is the audio substream budget.
	AudioBitsPerSecond int64
	// Width and Height are the encoded video resolution.
	Width, Height int
	// FrameRate is frames per second.
	FrameRate int
	// GOPFrames is the I-frame interval in frames.
	GOPFrames int
	// AudioBlock is the duration of one audio access unit.
	AudioBlock time.Duration
}

// TotalBitsPerSecond is the profile's aggregate media bit rate.
func (p Profile) TotalBitsPerSecond() int64 {
	return p.VideoBitsPerSecond + p.AudioBitsPerSecond
}

// FrameInterval is the duration of one video frame.
func (p Profile) FrameInterval() time.Duration {
	return time.Second / time.Duration(p.FrameRate)
}

// Validate checks the profile for usability.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("codec: profile with empty name")
	case p.VideoBitsPerSecond <= 0:
		return fmt.Errorf("codec: profile %s: video bit rate %d", p.Name, p.VideoBitsPerSecond)
	case p.AudioBitsPerSecond <= 0:
		return fmt.Errorf("codec: profile %s: audio bit rate %d", p.Name, p.AudioBitsPerSecond)
	case p.Width <= 0 || p.Height <= 0:
		return fmt.Errorf("codec: profile %s: resolution %dx%d", p.Name, p.Width, p.Height)
	case p.FrameRate <= 0:
		return fmt.Errorf("codec: profile %s: frame rate %d", p.Name, p.FrameRate)
	case p.GOPFrames <= 0:
		return fmt.Errorf("codec: profile %s: GOP %d", p.Name, p.GOPFrames)
	case p.AudioBlock <= 0:
		return fmt.Errorf("codec: profile %s: audio block %v", p.Name, p.AudioBlock)
	}
	return nil
}

// The standard ladder, ordered by total bit rate. The 2002-era audiences
// mirror the profiles Windows Media Encoder offered.
var ladder = []Profile{
	{
		Name: "modem-28k", Audience: "28.8 kbps dial-up",
		VideoBitsPerSecond: 20_000, AudioBitsPerSecond: 8_000,
		Width: 160, Height: 120, FrameRate: 8, GOPFrames: 40,
		AudioBlock: 200 * time.Millisecond,
	},
	{
		Name: "modem-56k", Audience: "56 kbps dial-up",
		VideoBitsPerSecond: 37_000, AudioBitsPerSecond: 11_000,
		Width: 176, Height: 144, FrameRate: 10, GOPFrames: 50,
		AudioBlock: 200 * time.Millisecond,
	},
	{
		Name: "isdn-128k", Audience: "dual ISDN",
		VideoBitsPerSecond: 100_000, AudioBitsPerSecond: 16_000,
		Width: 240, Height: 180, FrameRate: 15, GOPFrames: 75,
		AudioBlock: 100 * time.Millisecond,
	},
	{
		Name: "dsl-300k", Audience: "DSL / cable",
		VideoBitsPerSecond: 268_000, AudioBitsPerSecond: 32_000,
		Width: 320, Height: 240, FrameRate: 25, GOPFrames: 100,
		AudioBlock: 100 * time.Millisecond,
	},
	{
		Name: "dsl-768k", Audience: "fast DSL",
		VideoBitsPerSecond: 700_000, AudioBitsPerSecond: 64_000,
		Width: 480, Height: 360, FrameRate: 25, GOPFrames: 100,
		AudioBlock: 50 * time.Millisecond,
	},
	{
		Name: "lan-1.5m", Audience: "campus LAN",
		VideoBitsPerSecond: 1_400_000, AudioBitsPerSecond: 96_000,
		Width: 640, Height: 480, FrameRate: 30, GOPFrames: 120,
		AudioBlock: 50 * time.Millisecond,
	},
	{
		Name: "lan-10m", Audience: "switched LAN / studio",
		VideoBitsPerSecond: 9_800_000, AudioBitsPerSecond: 192_000,
		Width: 720, Height: 576, FrameRate: 30, GOPFrames: 120,
		AudioBlock: 50 * time.Millisecond,
	},
}

// Ladder returns the standard profiles ordered by ascending total bit rate.
func Ladder() []Profile {
	out := make([]Profile, len(ladder))
	copy(out, ladder)
	return out
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range ladder {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("codec: unknown profile %q", name)
}

// ForBandwidth returns the richest profile whose total bit rate fits within
// the given link bandwidth, falling back to the smallest profile.
func ForBandwidth(bitsPerSecond int64) Profile {
	best := ladder[0]
	for _, p := range ladder {
		if p.TotalBitsPerSecond() <= bitsPerSecond {
			best = p
		}
	}
	return best
}

// Quality returns a PSNR-like quality proxy in dB for the profile,
// combining a resolution term (richer profiles encode more pixels) with a
// bits-per-pixel term (how generously those pixels are coded), calibrated
// so the ladder spans roughly 37–49 dB monotonically. It exists to give E8
// a "higher bit rate ⇒ higher quality/resolution" column, as §2.5 claims
// qualitatively.
func (p Profile) Quality() float64 {
	pixelsPerSecond := float64(p.Width*p.Height) * float64(p.FrameRate)
	bpp := float64(p.VideoBitsPerSecond) / pixelsPerSecond
	resolution := 2.2 * math.Log2(float64(p.Height)/120)
	return 30.0 + resolution + 14.0*logistic(6*(bpp-0.12))
}

func logistic(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

// SortByRate sorts profiles ascending by total bit rate (in place).
func SortByRate(ps []Profile) {
	sort.SliceStable(ps, func(i, j int) bool {
		return ps[i].TotalBitsPerSecond() < ps[j].TotalBitsPerSecond()
	})
}

package codec

import (
	"encoding/binary"
	"errors"
	"time"

	"repro/internal/media"
)

// AudioCodecName stands in for the paper's Sipro Labs ACELP / MP3 audio
// codecs.
const AudioCodecName = "sim-acelp"

// audioHeaderSize is the embedded per-block header: u32 block index,
// u32 body length.
const audioHeaderSize = 4 + 4

// AudioEncoder is a deterministic simulated audio encoder producing
// constant-bit-rate access units; every block is independently decodable
// (audio has no prediction chain in this simulation).
type AudioEncoder struct {
	profile  Profile
	blockIdx int
}

// NewAudioEncoder creates an encoder for the profile.
func NewAudioEncoder(p Profile) (*AudioEncoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &AudioEncoder{profile: p}, nil
}

// BlockBytes is the constant encoded size of one audio block.
func (e *AudioEncoder) BlockBytes() int {
	bytesPerSecond := float64(e.profile.AudioBitsPerSecond) / 8
	n := int(bytesPerSecond * e.profile.AudioBlock.Seconds())
	if n < audioHeaderSize {
		n = audioHeaderSize
	}
	return n
}

// NextBlock encodes and returns the next audio block.
func (e *AudioEncoder) NextBlock() media.Sample {
	size := e.BlockBytes()
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(e.blockIdx))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(size-audioHeaderSize))
	for i := audioHeaderSize; i < size; i++ {
		buf[i] = byte(e.blockIdx*31 + i)
	}
	s := media.Sample{
		Stream:   media.StreamAudio,
		Kind:     media.KindAudio,
		PTS:      time.Duration(e.blockIdx) * e.profile.AudioBlock,
		Duration: e.profile.AudioBlock,
		Keyframe: true,
		Data:     buf,
	}
	e.blockIdx++
	return s
}

// EncodeDuration produces all blocks covering the given duration.
func (e *AudioEncoder) EncodeDuration(d time.Duration) []media.Sample {
	blocks := int(d / e.profile.AudioBlock)
	out := make([]media.Sample, 0, blocks)
	for i := 0; i < blocks; i++ {
		out = append(out, e.NextBlock())
	}
	return out
}

// ErrTruncatedBlock reports an audio payload shorter than its header.
var ErrTruncatedBlock = errors.New("codec: truncated audio block")

// DecodeAudioBlock validates one audio block payload and returns its index.
func DecodeAudioBlock(data []byte) (uint32, error) {
	if len(data) < audioHeaderSize {
		return 0, ErrTruncatedBlock
	}
	idx := binary.LittleEndian.Uint32(data[0:4])
	bodyLen := binary.LittleEndian.Uint32(data[4:8])
	if int(bodyLen) != len(data)-audioHeaderSize {
		return 0, ErrTruncatedBlock
	}
	return idx, nil
}

package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/media"
)

// Video frame types.
const (
	frameI byte = 'I'
	frameP byte = 'P'
)

// VideoCodecName is the codec identifier written into stream properties,
// standing in for the paper's MPEG-4 video codec.
const VideoCodecName = "sim-mpeg4"

// frameHeaderSize is the fixed per-frame header this simulated codec
// embeds in each payload: u32 frame index, u8 type, u32 body length.
const frameHeaderSize = 4 + 1 + 4

// VideoEncoder is a deterministic simulated video encoder. It emits one
// sample per frame with MPEG-4-like GOP structure: I-frames at the GOP
// boundary carrying several times the bytes of P-frames, with mild
// pseudo-random complexity variation, rate-controlled so that each GOP's
// total size matches the profile's video bit-rate budget.
type VideoEncoder struct {
	profile  Profile
	rng      *rand.Rand
	frameIdx int
	// iWeight is how many P-frame "units" an I-frame costs.
	iWeight int
}

// NewVideoEncoder creates an encoder for the profile; the seed makes frame
// size variation reproducible.
func NewVideoEncoder(p Profile, seed int64) (*VideoEncoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &VideoEncoder{
		profile: p,
		rng:     rand.New(rand.NewSource(seed)),
		iWeight: 8,
	}, nil
}

// Profile returns the encoder's profile.
func (e *VideoEncoder) Profile() Profile { return e.profile }

// frameBudget returns the byte budget for the frame at the given GOP
// position: the GOP's byte budget split into iWeight units for the I-frame
// and 1 unit per P-frame.
func (e *VideoEncoder) frameBudget(gopPos int) int {
	gopBytes := float64(e.profile.VideoBitsPerSecond) / 8 *
		float64(e.profile.GOPFrames) / float64(e.profile.FrameRate)
	units := float64(e.iWeight + (e.profile.GOPFrames - 1))
	unit := gopBytes / units
	if gopPos == 0 {
		return int(unit * float64(e.iWeight))
	}
	return int(unit)
}

// NextFrame encodes and returns the next video frame as a timed sample.
func (e *VideoEncoder) NextFrame() media.Sample {
	gopPos := e.frameIdx % e.profile.GOPFrames
	budget := e.frameBudget(gopPos)
	// ±15% deterministic complexity variation, floor of the header size.
	jitter := 1 + (e.rng.Float64()-0.5)*0.3
	size := int(float64(budget) * jitter)
	if size < frameHeaderSize {
		size = frameHeaderSize
	}
	ftype := frameP
	if gopPos == 0 {
		ftype = frameI
	}
	payload := e.buildFrame(uint32(e.frameIdx), ftype, size-frameHeaderSize)

	s := media.Sample{
		Stream:   media.StreamVideo,
		Kind:     media.KindVideo,
		PTS:      time.Duration(e.frameIdx) * e.profile.FrameInterval(),
		Duration: e.profile.FrameInterval(),
		Keyframe: ftype == frameI,
		Data:     payload,
	}
	e.frameIdx++
	return s
}

// buildFrame constructs the simulated bitstream: header + deterministic
// filler bytes.
func (e *VideoEncoder) buildFrame(idx uint32, ftype byte, bodyLen int) []byte {
	buf := make([]byte, frameHeaderSize+bodyLen)
	binary.LittleEndian.PutUint32(buf[0:4], idx)
	buf[4] = ftype
	binary.LittleEndian.PutUint32(buf[5:9], uint32(bodyLen))
	for i := 0; i < bodyLen; i++ {
		buf[frameHeaderSize+i] = byte(idx + uint32(i)*2654435761)
	}
	return buf
}

// EncodeDuration produces all frames covering the given duration.
func (e *VideoEncoder) EncodeDuration(d time.Duration) []media.Sample {
	frames := int(d / e.profile.FrameInterval())
	out := make([]media.Sample, 0, frames)
	for i := 0; i < frames; i++ {
		out = append(out, e.NextFrame())
	}
	return out
}

// VideoFrameInfo is the decoder's view of one frame.
type VideoFrameInfo struct {
	Index    uint32
	Keyframe bool
	Bytes    int
}

// Errors returned by the decoder.
var (
	ErrTruncatedFrame = errors.New("codec: truncated video frame")
	ErrFrameCorrupt   = errors.New("codec: corrupt video frame")
)

// DecodeVideoFrame validates one simulated frame payload.
func DecodeVideoFrame(data []byte) (VideoFrameInfo, error) {
	if len(data) < frameHeaderSize {
		return VideoFrameInfo{}, ErrTruncatedFrame
	}
	idx := binary.LittleEndian.Uint32(data[0:4])
	ftype := data[4]
	bodyLen := binary.LittleEndian.Uint32(data[5:9])
	if ftype != frameI && ftype != frameP {
		return VideoFrameInfo{}, fmt.Errorf("%w: frame type %q", ErrFrameCorrupt, ftype)
	}
	if int(bodyLen) != len(data)-frameHeaderSize {
		return VideoFrameInfo{}, fmt.Errorf("%w: body length %d, payload %d",
			ErrFrameCorrupt, bodyLen, len(data)-frameHeaderSize)
	}
	return VideoFrameInfo{Index: idx, Keyframe: ftype == frameI, Bytes: len(data)}, nil
}

// VideoDecoder tracks decodability across a frame sequence with losses:
// after a lost or corrupt frame, P-frames are undecodable until the next
// I-frame (MPEG-style prediction chains).
type VideoDecoder struct {
	// Decodable counts frames that could be presented.
	Decodable int
	// Broken counts frames skipped due to a broken prediction chain.
	Broken int
	// Corrupt counts frames that failed validation.
	Corrupt int
	chainOK bool
}

// Feed consumes the next received frame payload.
func (d *VideoDecoder) Feed(data []byte) {
	info, err := DecodeVideoFrame(data)
	if err != nil {
		d.Corrupt++
		d.chainOK = false
		return
	}
	if info.Keyframe {
		d.chainOK = true
	}
	if d.chainOK {
		d.Decodable++
	} else {
		d.Broken++
	}
}

// Lose informs the decoder that a frame was lost in transport.
func (d *VideoDecoder) Lose() {
	d.chainOK = false
	d.Broken++
}

// Total returns the number of frames the decoder has accounted for.
func (d *VideoDecoder) Total() int { return d.Decodable + d.Broken + d.Corrupt }
